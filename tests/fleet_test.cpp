// Tests for fleet serving and live model hot-swap: the placement-policy seam
// (per-tenant replica counts, every tenant >= 1), the Fleet registry/routing
// contract (immutable after start, default tenant, unknown names refused),
// the ModelHub publication seam (versions, snapshot pinning, publish during
// sustained concurrent load with no torn reads — the TSan target), replica
// failover (in-flight request requeued to survivors, or failed truthfully
// when the last replica dies), and the multi-tenant wire path end to end
// (two tenants with different topologies behind one socket, plus the
// client-side read timeout).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "core/snapshot.h"
#include "core/teal_scheme.h"
#include "net/client.h"
#include "net/server.h"
#include "net/wire.h"
#include "serve/fleet.h"
#include "serve/placement.h"
#include "serve/replica.h"
#include "serve/server.h"
#include "sim/served.h"
#include "net_test_util.h"
#include "util/socket.h"

namespace teal {
namespace {

core::TealScheme make_teal(const te::Problem& pb, std::uint64_t seed = 42) {
  return core::TealScheme(
      pb, std::make_unique<core::TealModel>(core::TealModelConfig{}, pb.k_paths(), seed),
      core::TealSchemeConfig{});
}

std::unique_ptr<core::TealModel> make_model(const te::Problem& pb, std::uint64_t seed) {
  return std::make_unique<core::TealModel>(core::TealModelConfig{}, pb.k_paths(), seed);
}

void expect_bit_identical(const te::Allocation& a, const te::Allocation& b) {
  ASSERT_EQ(a.split.size(), b.split.size());
  for (std::size_t i = 0; i < a.split.size(); ++i) {
    EXPECT_EQ(a.split[i], b.split[i]) << "split index " << i;
  }
}

bool allocs_equal(const te::Allocation& a, const te::Allocation& b) {
  if (a.split.size() != b.split.size()) return false;
  for (std::size_t i = 0; i < a.split.size(); ++i) {
    if (a.split[i] != b.split[i]) return false;
  }
  return true;
}

// ---- Placement policies -----------------------------------------------------

std::vector<serve::TenantDemand> three_tenants() {
  return {
      {"a", /*n_demands=*/10, /*total_paths=*/40, /*offered_weight=*/1.0, 0},
      {"b", 20, 80, 1.0, 0},
      {"c", 40, 160, 1.0, 0},
  };
}

TEST(Placement, StaticHonorsRequestedCountsAndFloorsAtOne) {
  auto tenants = three_tenants();
  tenants[0].requested_replicas = 3;
  tenants[1].requested_replicas = 0;  // 0 = one
  tenants[2].requested_replicas = 2;
  serve::StaticPolicy policy;
  const auto counts = policy.assign(tenants, /*total=*/100);  // budget ignored
  ASSERT_EQ(counts.size(), 3u);
  EXPECT_EQ(counts[0], 3u);
  EXPECT_EQ(counts[1], 1u);
  EXPECT_EQ(counts[2], 2u);
}

TEST(Placement, RoundRobinDealsTheBudgetEvenly) {
  serve::RoundRobinPolicy policy;
  const auto counts = policy.assign(three_tenants(), 7);
  ASSERT_EQ(counts.size(), 3u);
  EXPECT_EQ(std::accumulate(counts.begin(), counts.end(), std::size_t{0}), 7u);
  // Dealt one at a time in order: 3, 2, 2.
  EXPECT_EQ(counts[0], 3u);
  EXPECT_EQ(counts[1], 2u);
  EXPECT_EQ(counts[2], 2u);
}

TEST(Placement, BudgetBelowTenantCountStillGivesEveryoneOne) {
  serve::RoundRobinPolicy rr;
  serve::LoadProportionalPolicy lp;
  for (const serve::PlacementPolicy* policy :
       {static_cast<const serve::PlacementPolicy*>(&rr),
        static_cast<const serve::PlacementPolicy*>(&lp)}) {
    const auto counts = policy->assign(three_tenants(), /*total=*/1);
    ASSERT_EQ(counts.size(), 3u);
    for (const std::size_t c : counts) EXPECT_GE(c, 1u);
  }
}

TEST(Placement, LoadProportionalFollowsPathCountTimesWeight) {
  // Costs 40/80/160 at equal weight: budget 7 splits 1/2/4.
  serve::LoadProportionalPolicy policy;
  const auto counts = policy.assign(three_tenants(), 7);
  ASSERT_EQ(counts.size(), 3u);
  EXPECT_EQ(counts[0], 1u);
  EXPECT_EQ(counts[1], 2u);
  EXPECT_EQ(counts[2], 4u);

  // Doubling one tenant's offered rate doubles its effective weight.
  auto tenants = three_tenants();
  tenants[0].offered_weight = 8.0;  // cost 320 vs 80 vs 160
  const auto skewed = policy.assign(tenants, 7);
  EXPECT_GT(skewed[0], skewed[2]);
  EXPECT_EQ(std::accumulate(skewed.begin(), skewed.end(), std::size_t{0}), 7u);
}

TEST(Placement, LoadProportionalAllZeroWeightsDegradesToRoundRobin) {
  auto tenants = three_tenants();
  for (auto& t : tenants) {
    t.offered_weight = 0.0;
    t.n_demands = 0;
    t.total_paths = 0;
  }
  serve::LoadProportionalPolicy policy;
  const auto counts = policy.assign(tenants, 6);
  ASSERT_EQ(counts.size(), 3u);
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 2u);
  EXPECT_EQ(counts[2], 2u);
}

TEST(Placement, FactoryResolvesNamesAndRejectsUnknown) {
  EXPECT_EQ(serve::make_placement_policy("static")->name(), "static");
  EXPECT_EQ(serve::make_placement_policy("round-robin")->name(), "round-robin");
  EXPECT_EQ(serve::make_placement_policy("load-proportional")->name(),
            "load-proportional");
  EXPECT_THROW(serve::make_placement_policy("best-effort"), std::invalid_argument);
}

// ---- ModelHub / publish_model ----------------------------------------------

TEST(ModelHub, PublishBumpsVersionAndOldSnapshotsStayPinned) {
  auto g = topo::make_b4();
  te::Problem pb(std::move(g), te::all_pairs_demands(topo::make_b4()), 4);
  core::ModelHub hub(std::shared_ptr<core::Model>(make_model(pb, 42)));
  EXPECT_EQ(hub.version(), 1u);

  const core::ModelSnapshot pinned = hub.acquire();
  EXPECT_EQ(pinned.version, 1u);
  const core::Model* old_model = pinned.model.get();

  EXPECT_EQ(hub.publish(std::shared_ptr<core::Model>(make_model(pb, 43))), 2u);
  EXPECT_EQ(hub.version(), 2u);
  // The pre-publish snapshot is untouched: same version, same object, still
  // alive — the property in-flight solves rely on.
  EXPECT_EQ(pinned.version, 1u);
  EXPECT_EQ(pinned.model.get(), old_model);
  EXPECT_NE(hub.acquire().model.get(), old_model);

  EXPECT_THROW(hub.publish(nullptr), std::invalid_argument);
  EXPECT_THROW(core::ModelHub(nullptr), std::invalid_argument);
}

TEST(HotSwap, RepublishingIdenticalWeightsIsBitIdentical) {
  auto s = test::net_setup("B4", 40, 1);
  auto scheme = make_teal(s.pb, /*seed=*/42);
  EXPECT_EQ(scheme.model_version(), 1u);
  const auto baseline = scheme.solve(s.pb, s.trace.at(0));

  // A different model changes the answer...
  EXPECT_EQ(scheme.publish_model(make_model(s.pb, 43)), 2u);
  const auto swapped = scheme.solve(s.pb, s.trace.at(0));
  EXPECT_FALSE(allocs_equal(baseline, swapped));

  // ...and republishing the original weights (same deterministic init seed)
  // restores it exactly: the solve path depends only on the published model,
  // not on swap history or workspace reuse.
  EXPECT_EQ(scheme.publish_model(make_model(s.pb, 42)), 3u);
  const auto restored = scheme.solve(s.pb, s.trace.at(0));
  expect_bit_identical(baseline, restored);
}

// The hot-swap atomicity hammer (and the TSan target): solver threads hammer
// solve_replica while a publisher thread flips the model between two weight
// sets. Every result must equal exactly one of the two per-version baselines
// — a solve that observed the swap mid-flight (torn read of the model
// pointer, or forward passes split across versions) would match neither.
TEST(HotSwap, ConcurrentPublishNeverTearsASolve) {
  auto s = test::net_setup("B4", 40, 1);
  auto scheme = make_teal(s.pb, /*seed=*/42);
  const auto tm = s.trace.at(0);

  auto baseline_a = scheme.solve(s.pb, tm);  // version 1 (seed 42)
  scheme.publish_model(make_model(s.pb, 43));
  auto baseline_b = scheme.solve(s.pb, tm);  // version 2 (seed 43)
  ASSERT_FALSE(allocs_equal(baseline_a, baseline_b));

  constexpr int kSolvers = 3;
  constexpr int kSolvesPerThread = 12;
  std::atomic<bool> stop_publisher{false};
  std::atomic<int> torn{0};
  std::vector<std::thread> solvers;
  for (int t = 0; t < kSolvers; ++t) {
    solvers.emplace_back([&] {
      core::SolveWorkspace ws;
      te::Allocation out;
      for (int i = 0; i < kSolvesPerThread; ++i) {
        scheme.solve_replica(ws, s.pb, tm, out);
        if (!allocs_equal(out, baseline_a) && !allocs_equal(out, baseline_b)) {
          torn.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  std::thread publisher([&] {
    std::uint64_t seed = 42;
    while (!stop_publisher.load(std::memory_order_acquire)) {
      scheme.publish_model(make_model(s.pb, seed));
      seed = (seed == 42) ? 43 : 42;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  for (auto& t : solvers) t.join();
  stop_publisher.store(true, std::memory_order_release);
  publisher.join();
  EXPECT_EQ(torn.load(), 0);
  EXPECT_GE(scheme.model_version(), 2u);
}

// Publish during sustained serving load: every offered request is accepted
// and completes (zero shed, zero failures — a swap must never cost a
// request), and each allocation matches one of the two version baselines.
TEST(HotSwap, PublishUnderServingLoadLosesNothing) {
  auto s = test::net_setup("B4", 40, 2);
  auto scheme = make_teal(s.pb, /*seed=*/42);
  const auto tm = s.trace.at(0);
  auto baseline_a = scheme.solve(s.pb, tm);
  scheme.publish_model(make_model(s.pb, 43));
  auto baseline_b = scheme.solve(s.pb, tm);
  scheme.publish_model(make_model(s.pb, 42));  // start the run on version A

  constexpr int kRequests = 24;
  serve::ServeConfig cfg;
  cfg.queue_capacity = kRequests;  // no shedding: the ledger must stay clean
  serve::Server server(s.pb, serve::make_replicas(scheme, 2), cfg);

  std::atomic<bool> stop_publisher{false};
  std::thread publisher([&] {
    std::uint64_t seed = 43;
    while (!stop_publisher.load(std::memory_order_acquire)) {
      scheme.publish_model(make_model(s.pb, seed));
      seed = (seed == 42) ? 43 : 42;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  std::vector<te::Allocation> out(kRequests);
  for (int i = 0; i < kRequests; ++i) {
    ASSERT_TRUE(server.submit(tm, out[static_cast<std::size_t>(i)]));
  }
  server.drain();
  stop_publisher.store(true, std::memory_order_release);
  publisher.join();
  const auto stats = server.stop();
  EXPECT_EQ(stats.offered, static_cast<std::uint64_t>(kRequests));
  EXPECT_EQ(stats.shed, 0u);
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_EQ(stats.completed, static_cast<std::uint64_t>(kRequests));
  for (const auto& a : out) {
    EXPECT_TRUE(allocs_equal(a, baseline_a) || allocs_equal(a, baseline_b))
        << "allocation matches neither published version";
  }
}

// ---- Replica failover -------------------------------------------------------

// Throws on its first (and only) solve, after optionally signalling a gate.
class DyingReplica final : public serve::Replica {
 public:
  explicit DyingReplica(std::atomic<bool>* died_flag = nullptr) : died_(died_flag) {}
  void solve(const te::Problem&, const te::TrafficMatrix&, te::Allocation&,
             double*) override {
    if (died_ != nullptr) died_->store(true, std::memory_order_release);
    throw std::runtime_error("replica hardware gave out");
  }

 private:
  std::atomic<bool>* died_;
};

// Completes instantly, but holds its first solve until `gate` opens — so the
// dying replica is guaranteed to pick up a request of its own.
class GatedReplica final : public serve::Replica {
 public:
  explicit GatedReplica(std::atomic<bool>* gate) : gate_(gate) {}
  void solve(const te::Problem&, const te::TrafficMatrix& tm, te::Allocation& out,
             double* seconds) override {
    if (!first_done_) {
      while (!gate_->load(std::memory_order_acquire)) std::this_thread::yield();
      first_done_ = true;
    }
    out.split.assign(1, tm.volume.empty() ? 0.0 : tm.volume[0]);
    if (seconds != nullptr) *seconds = 0.0;
  }

 private:
  std::atomic<bool>* gate_;
  bool first_done_ = false;
};

TEST(Failover, DeadReplicasRequestIsRequeuedToSurvivors) {
  auto s = test::net_setup("B4", 20, 1);
  std::atomic<bool> thrower_died{false};
  std::vector<serve::ReplicaPtr> replicas;
  replicas.push_back(std::make_unique<GatedReplica>(&thrower_died));
  replicas.push_back(std::make_unique<DyingReplica>(&thrower_died));
  serve::ServeConfig cfg;
  cfg.queue_capacity = 16;
  serve::Server server(s.pb, std::move(replicas), cfg);

  constexpr int kRequests = 6;  // >= 2 so both replicas pop one concurrently
  std::vector<te::Allocation> out(kRequests);
  std::atomic<int> failures{0};
  for (int i = 0; i < kRequests; ++i) {
    ASSERT_EQ(server.submit(s.trace.at(0), out[static_cast<std::size_t>(i)],
                            [&](double solve_s) {
                              if (solve_s < 0.0) {
                                failures.fetch_add(1, std::memory_order_relaxed);
                              }
                            }),
              serve::SubmitResult::kAccepted);
  }
  server.drain();
  const auto stats = server.stop();
  // The dying replica took exactly one request; it was requeued, not lost.
  EXPECT_EQ(stats.replica_deaths, 1u);
  EXPECT_EQ(stats.requeued, 1u);
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(stats.completed, static_cast<std::uint64_t>(kRequests));
  std::uint64_t solved = 0;
  for (const auto& r : stats.replicas) solved += r.solved;
  EXPECT_EQ(solved + stats.failed, stats.completed);
  for (const auto& a : out) EXPECT_FALSE(a.split.empty());
}

TEST(Failover, LastReplicaDeathFailsTheBacklogTruthfully) {
  auto s = test::net_setup("B4", 20, 1);
  std::vector<serve::ReplicaPtr> replicas;
  replicas.push_back(std::make_unique<DyingReplica>());
  serve::Server server(s.pb, std::move(replicas), {});

  constexpr int kRequests = 4;
  std::vector<te::Allocation> out(kRequests);
  std::atomic<int> failures{0};
  int accepted = 0;
  for (int i = 0; i < kRequests; ++i) {
    if (server.submit(s.trace.at(0), out[static_cast<std::size_t>(i)],
                      [&](double solve_s) {
                        if (solve_s < 0.0) {
                          failures.fetch_add(1, std::memory_order_relaxed);
                        }
                      }) == serve::SubmitResult::kAccepted) {
      ++accepted;
    }
  }
  ASSERT_GE(accepted, 1);
  server.drain();  // must terminate: failed requests count as completed
  const auto stats = server.stop();
  EXPECT_EQ(stats.replica_deaths, 1u);
  EXPECT_EQ(stats.requeued, 0u);
  EXPECT_EQ(stats.failed, static_cast<std::uint64_t>(accepted));
  EXPECT_EQ(stats.completed, stats.accepted);
  EXPECT_EQ(failures.load(), accepted);

  // With every replica dead the queue is closed: new work is refused, not
  // blackholed.
  te::Allocation refused;
  EXPECT_FALSE(server.submit(s.trace.at(0), refused));
}

// ---- Fleet registry & routing ----------------------------------------------

serve::TenantConfig instant_tenant(const std::string& name, const te::Problem& pb) {
  serve::TenantConfig tc;
  tc.name = name;
  tc.pb = &pb;
  tc.make_replicas_fn = [](std::size_t n) {
    struct Echo final : serve::Replica {
      void solve(const te::Problem&, const te::TrafficMatrix& tm, te::Allocation& out,
                 double* seconds) override {
        out.split.assign(1, tm.volume.empty() ? 0.0 : tm.volume[0]);
        if (seconds != nullptr) *seconds = 0.0;
      }
    };
    std::vector<serve::ReplicaPtr> replicas;
    for (std::size_t i = 0; i < n; ++i) replicas.push_back(std::make_unique<Echo>());
    return replicas;
  };
  return tc;
}

TEST(Fleet, RegistryValidatesAndFreezesAtStart) {
  auto a = test::net_setup("B4", 20, 1);
  auto b = test::net_setup("SWAN", 30, 1);
  serve::FleetConfig cfg;
  cfg.total_replicas = 2;
  cfg.policy = "round-robin";
  serve::Fleet fleet(std::move(cfg));

  serve::TenantConfig null_pb = instant_tenant("x", a.pb);
  null_pb.pb = nullptr;
  EXPECT_THROW(fleet.add_tenant(std::move(null_pb)), std::invalid_argument);
  serve::TenantConfig no_builder;
  no_builder.name = "y";
  no_builder.pb = &a.pb;
  EXPECT_THROW(fleet.add_tenant(std::move(no_builder)), std::invalid_argument);

  fleet.add_tenant(instant_tenant("wan-us", a.pb));
  EXPECT_THROW(fleet.add_tenant(instant_tenant("wan-us", b.pb)),
               std::invalid_argument);  // duplicate name
  fleet.add_tenant(instant_tenant("wan-eu", b.pb));
  EXPECT_FALSE(fleet.started());

  fleet.start();
  EXPECT_TRUE(fleet.started());
  EXPECT_EQ(fleet.n_tenants(), 2u);
  EXPECT_THROW(fleet.add_tenant(instant_tenant("late", a.pb)), std::logic_error);
  EXPECT_THROW(fleet.start(), std::logic_error);

  // Routing: named, default ("" = first registered), unknown.
  EXPECT_EQ(fleet.route("wan-us").pb, &a.pb);
  EXPECT_EQ(fleet.route("wan-eu").pb, &b.pb);
  EXPECT_EQ(fleet.route("").pb, &a.pb);
  EXPECT_EQ(fleet.route("wan-mars").server, nullptr);
  EXPECT_EQ(fleet.route("wan-mars").pb, nullptr);

  EXPECT_EQ(fleet.replicas("wan-us") + fleet.replicas("wan-eu"), 2u);
  EXPECT_EQ(fleet.replicas("wan-mars"), 0u);

  const auto stats = fleet.stop();
  EXPECT_EQ(stats.policy, "round-robin");
  ASSERT_EQ(stats.tenants.size(), 2u);
  const auto again = fleet.stop();  // idempotent
  EXPECT_EQ(again.tenants.size(), 2u);
}

TEST(Fleet, EmptyFleetRefusesToStart) {
  serve::Fleet fleet;
  EXPECT_THROW(fleet.start(), std::logic_error);
}

// Two tenants with different topologies replayed through one fleet: each
// tenant's results are bit-identical to its own scheme solving sequentially,
// and both per-tenant ledgers balance.
TEST(Fleet, TwoTopologyReplayMatchesSequentialPerTenant) {
  auto a = test::net_setup("B4", 30, 2);
  auto b = test::net_setup("SWAN", 50, 2);
  auto scheme_a = make_teal(a.pb, 42);
  auto scheme_b = make_teal(b.pb, 43);

  sim::ServedFleetConfig cfg;
  cfg.total_replicas = 2;
  cfg.policy = "load-proportional";
  cfg.serve.queue_capacity = 64;
  std::vector<sim::ServedTenant> tenants(2);
  tenants[0] = {"wan-us", &a.pb, &a.trace, &scheme_a, nullptr, 1.0, 0};
  tenants[1] = {"wan-eu", &b.pb, &b.trace, &scheme_b, nullptr, 1.0, 0};
  const auto res = sim::run_served_fleet(tenants, cfg);

  ASSERT_EQ(res.tenants.size(), 2u);
  ASSERT_EQ(res.stats.tenants.size(), 2u);
  EXPECT_EQ(res.stats.shed(), 0u);
  EXPECT_EQ(res.stats.completed(), res.stats.accepted());
  for (int t = 0; t < a.trace.size(); ++t) {
    ASSERT_TRUE(res.tenants[0].accepted[static_cast<std::size_t>(t)]);
    expect_bit_identical(scheme_a.solve(a.pb, a.trace.at(t)),
                         res.tenants[0].allocs[static_cast<std::size_t>(t)]);
  }
  for (int t = 0; t < b.trace.size(); ++t) {
    ASSERT_TRUE(res.tenants[1].accepted[static_cast<std::size_t>(t)]);
    expect_bit_identical(scheme_b.solve(b.pb, b.trace.at(t)),
                         res.tenants[1].allocs[static_cast<std::size_t>(t)]);
  }
}

// ---- Multi-tenant wire path -------------------------------------------------

// One teal_serve-shaped process serving two tenants with different
// topologies (different demand counts, so cross-routing would be caught by
// the demand-count validation): named routing, default-tenant routing,
// demand-count mismatch per tenant, and unknown-tenant refusal.
TEST(FleetNet, TwoTenantsBehindOneSocket) {
  auto a = test::net_setup("B4", 30, 1);
  auto b = test::net_setup("SWAN", 50, 1);
  ASSERT_NE(a.pb.num_demands(), b.pb.num_demands());
  auto scheme_a = make_teal(a.pb, 42);
  auto scheme_b = make_teal(b.pb, 43);
  const auto want_a = scheme_a.solve(a.pb, a.trace.at(0));
  const auto want_b = scheme_b.solve(b.pb, b.trace.at(0));

  serve::Fleet fleet;
  {
    serve::TenantConfig tc;
    tc.name = "wan-us";
    tc.pb = &a.pb;
    tc.scheme = &scheme_a;
    fleet.add_tenant(std::move(tc));
  }
  {
    serve::TenantConfig tc;
    tc.name = "wan-eu";
    tc.pb = &b.pb;
    tc.scheme = &scheme_b;
    fleet.add_tenant(std::move(tc));
  }
  fleet.start();
  net::Server server(fleet);  // declared after fleet: destroyed first
  net::Client client("127.0.0.1", server.port());

  // Named tenants solve on their own topology, bit-identical to sequential.
  auto ra = client.solve(a.trace.at(0), "wan-us");
  ASSERT_EQ(ra.kind, net::Client::Reply::Kind::kResponse);
  expect_bit_identical(want_a, ra.alloc);
  auto rb = client.solve(b.trace.at(0), "wan-eu");
  ASSERT_EQ(rb.kind, net::Client::Reply::Kind::kResponse);
  expect_bit_identical(want_b, rb.alloc);

  // The empty tenant is the first registered one.
  auto rd = client.solve(a.trace.at(0), "");
  ASSERT_EQ(rd.kind, net::Client::Reply::Kind::kResponse);
  expect_bit_identical(want_a, rd.alloc);

  // A matrix sized for tenant A sent to tenant B is a per-tenant
  // demand-count mismatch, not a crash or a wrong-topology answer.
  auto rx = client.solve(a.trace.at(0), "wan-eu");
  ASSERT_EQ(rx.kind, net::Client::Reply::Kind::kError);
  EXPECT_EQ(rx.error_code, net::ErrorCode::kBadDemandCount);

  // Unknown tenants are refused by name.
  auto ru = client.solve(a.trace.at(0), "wan-mars");
  ASSERT_EQ(ru.kind, net::Client::Reply::Kind::kError);
  EXPECT_EQ(ru.error_code, net::ErrorCode::kUnknownTenant);
  EXPECT_NE(ru.error_message.find("wan-mars"), std::string::npos);

  client.close();
  server.stop();
  const auto fstats = fleet.stop();
  EXPECT_EQ(fstats.completed(), 3u);  // the three accepted solves
}

// Single-tenant servers refuse named tenants rather than silently serving
// their only topology: a client asking for "wan-eu" must not get "wan-us"
// allocations.
TEST(FleetNet, SingleTenantServerRejectsNamedTenants) {
  auto s = test::net_setup("B4", 20, 1);
  auto scheme = make_teal(s.pb);
  test::NetFixture fx(s.pb, serve::make_replicas(scheme, 1));
  auto client = fx.connect();
  auto r = client.solve(s.trace.at(0), "wan-eu");
  ASSERT_EQ(r.kind, net::Client::Reply::Kind::kError);
  EXPECT_EQ(r.error_code, net::ErrorCode::kUnknownTenant);
  auto ok = client.solve(s.trace.at(0));
  EXPECT_EQ(ok.kind, net::Client::Reply::Kind::kResponse);
}

// A replica death behind the wire surfaces as an explicit kInternal error
// frame — the client is told, not left waiting for a dropped response.
TEST(FleetNet, ReplicaDeathSurfacesAsInternalError) {
  auto s = test::net_setup("B4", 20, 1);
  std::vector<serve::ReplicaPtr> replicas;
  replicas.push_back(std::make_unique<DyingReplica>());
  test::NetFixture fx(s.pb, std::move(replicas));
  auto client = fx.connect();
  auto r = client.solve(s.trace.at(0));
  ASSERT_EQ(r.kind, net::Client::Reply::Kind::kError);
  EXPECT_EQ(r.error_code, net::ErrorCode::kInternal);
}

// ---- Client read timeout ----------------------------------------------------

TEST(ClientTimeout, BoundedWaitGivesUpAgainstAWedgedServer) {
  // A listener that accepts and then never replies.
  std::uint16_t port = 0;
  util::Socket listener = util::listen_tcp("127.0.0.1", 0, &port);
  std::atomic<bool> stop{false};
  std::thread acceptor([&] {
    util::Socket peer;  // held open, never written to
    while (!stop.load(std::memory_order_acquire)) {
      if (!peer.valid()) peer = util::accept_tcp(listener);
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  });

  net::Client client("127.0.0.1", port);
  EXPECT_DOUBLE_EQ(client.read_timeout(), 0.0);  // default: block forever
  client.set_read_timeout(0.2);
  EXPECT_DOUBLE_EQ(client.read_timeout(), 0.2);

  te::TrafficMatrix tm;
  tm.volume.assign(4, 1.0);
  const auto before = std::chrono::steady_clock::now();
  client.send_solve(tm);
  EXPECT_THROW(client.wait_reply(), std::runtime_error);
  const double waited =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - before).count();
  EXPECT_GE(waited, 0.15);
  EXPECT_LT(waited, 2.0);  // gave up near the timeout, not the test timeout

  EXPECT_FALSE(client.ping());  // ping times out instead of hanging

  stop.store(true, std::memory_order_release);
  client.close();
  acceptor.join();
}

}  // namespace
}  // namespace teal
