// Unit tests for the LP substrate: sparse matrix, simplex (reference),
// PDHG-vs-simplex optimality, TE path LPs, min-MLU bisection.
#include <gtest/gtest.h>

#include <cmath>

#include "lp/path_lp.h"
#include "lp/pdhg.h"
#include "lp/simplex.h"
#include "lp/sparse.h"
#include "te/objective.h"
#include "topo/topology.h"
#include "traffic/traffic.h"
#include "util/rng.h"

namespace teal {
namespace {

TEST(Sparse, MultiplyAndTranspose) {
  // A = [1 2 0; 0 0 3]
  lp::SparseMatrix a(2, 3, {{0, 0, 1.0}, {0, 1, 2.0}, {1, 2, 3.0}});
  std::vector<double> x = {1, 1, 1}, y;
  a.multiply(x, y);
  ASSERT_EQ(y.size(), 2u);
  EXPECT_DOUBLE_EQ(y[0], 3.0);
  EXPECT_DOUBLE_EQ(y[1], 3.0);
  std::vector<double> yy = {1, 2}, xt;
  a.multiply_transpose(yy, xt);
  EXPECT_DOUBLE_EQ(xt[0], 1.0);
  EXPECT_DOUBLE_EQ(xt[1], 2.0);
  EXPECT_DOUBLE_EQ(xt[2], 6.0);
  EXPECT_DOUBLE_EQ(a.row_abs_sum(0), 3.0);
  EXPECT_DOUBLE_EQ(a.col_abs_sum(2), 3.0);
  EXPECT_EQ(a.nnz(), 3u);
}

TEST(Sparse, OutOfRangeTripletThrows) {
  EXPECT_THROW(lp::SparseMatrix(1, 1, {{1, 0, 1.0}}), std::out_of_range);
}

TEST(Simplex, SolvesTextbookLp) {
  // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18 -> optimum 36 at (2, 6).
  auto res = lp::simplex_max({{1, 0}, {0, 2}, {3, 2}}, {4, 12, 18}, {3, 5});
  ASSERT_TRUE(res.optimal);
  EXPECT_NEAR(res.objective, 36.0, 1e-9);
  EXPECT_NEAR(res.x[0], 2.0, 1e-9);
  EXPECT_NEAR(res.x[1], 6.0, 1e-9);
}

TEST(Simplex, ZeroRhsGivesZero) {
  auto res = lp::simplex_max({{1.0}}, {0.0}, {1.0});
  ASSERT_TRUE(res.optimal);
  EXPECT_NEAR(res.objective, 0.0, 1e-12);
}

TEST(Simplex, RejectsNegativeRhs) {
  EXPECT_THROW(lp::simplex_max({{1.0}}, {-1.0}, {1.0}), std::invalid_argument);
}

TEST(Pdhg, MatchesSimplexOnRandomPackingLps) {
  // Property check: on random packing LPs the first-order solver reaches the
  // simplex optimum within its gap tolerance.
  util::Rng rng(21);
  for (int trial = 0; trial < 10; ++trial) {
    const int m = 5 + trial, n = 8 + trial;
    std::vector<std::vector<double>> ad(m, std::vector<double>(n, 0.0));
    std::vector<lp::Triplet> trips;
    for (int i = 0; i < m; ++i) {
      for (int j = 0; j < n; ++j) {
        if (rng.uniform() < 0.4) {
          double v = rng.uniform(0.1, 2.0);
          ad[i][j] = v;
          trips.push_back({i, j, v});
        }
      }
    }
    std::vector<double> b(m), c(n), u(n, 10.0);
    for (auto& bi : b) bi = rng.uniform(1.0, 5.0);
    for (auto& cj : c) cj = rng.uniform(0.1, 1.0);

    // The simplex form has no upper bounds on x; emulate x <= u with rows.
    std::vector<std::vector<double>> a_ext = ad;
    std::vector<double> b_ext = b;
    for (int j = 0; j < n; ++j) {
      std::vector<double> row(n, 0.0);
      row[j] = 1.0;
      a_ext.push_back(row);
      b_ext.push_back(u[j]);
    }
    auto exact = lp::simplex_max(a_ext, b_ext, c);
    ASSERT_TRUE(exact.optimal);

    lp::SparseMatrix a(m, n, trips);
    lp::PdhgOptions opt;
    opt.rel_gap_tol = 1e-3;
    opt.max_iterations = 200000;
    auto approx = lp::pdhg_packing(a, b, c, u, opt);
    EXPECT_NEAR(approx.objective, exact.objective,
                5e-3 * std::max(1.0, exact.objective))
        << "trial " << trial;
    // Feasibility of the returned primal point.
    std::vector<double> ax;
    a.multiply(approx.x, ax);
    for (int i = 0; i < m; ++i) EXPECT_LE(ax[i], b[i] + 1e-9);
    // Dual bound really is an upper bound.
    EXPECT_GE(approx.dual_bound, exact.objective - 1e-6);
  }
}

TEST(Pdhg, WarmStartConverges) {
  lp::SparseMatrix a(1, 2, {{0, 0, 1.0}, {0, 1, 1.0}});
  std::vector<double> b = {1.0}, c = {1.0, 0.5}, u = {1.0, 1.0};
  std::vector<double> warm = {0.9, 0.0};
  auto res = lp::pdhg_packing(a, b, c, u, {}, &warm);
  EXPECT_NEAR(res.objective, 1.0, 1e-2);
}

te::Problem b4_problem() {
  auto g = topo::make_b4();
  return te::Problem(std::move(g), te::all_pairs_demands(topo::make_b4()), 4);
}

TEST(PathLp, FeasibleAndBeatsShortestPath) {
  auto pb = b4_problem();
  traffic::TraceConfig tcfg;
  tcfg.n_intervals = 5;
  auto trace = traffic::generate_trace(pb, tcfg);
  traffic::calibrate_capacities(pb, trace, 1.5);
  const auto& tm = trace.at(0);

  lp::FlowLpInfo info;
  auto alloc = lp::solve_flow_lp(pb, tm, {}, {}, &info);
  pb.validate_allocation(alloc);
  // Strict feasibility of intended loads.
  auto load = te::edge_loads(pb, tm, alloc);
  auto caps = pb.capacities();
  for (std::size_t e = 0; e < load.size(); ++e) EXPECT_LE(load[e], caps[e] + 1e-6);

  double lp_flow = te::total_feasible_flow(pb, tm, alloc);
  double sp_flow = te::total_feasible_flow(pb, tm, pb.shortest_path_allocation());
  EXPECT_GE(lp_flow, sp_flow - 1e-6);
  EXPECT_NEAR(lp_flow, info.objective, 1e-6 * std::max(1.0, lp_flow));
}

TEST(PathLp, SubsetOnlyAllocatesSubset) {
  auto pb = b4_problem();
  traffic::TraceConfig tcfg;
  tcfg.n_intervals = 2;
  auto trace = traffic::generate_trace(pb, tcfg);
  lp::FlowLpSpec spec;
  spec.demand_subset = {0, 5, 7};
  auto alloc = lp::solve_flow_lp(pb, trace.at(0), spec);
  for (int d = 0; d < pb.num_demands(); ++d) {
    bool in = d == 0 || d == 5 || d == 7;
    double sum = 0.0;
    for (int p = pb.path_begin(d); p < pb.path_end(d); ++p) {
      sum += alloc.split[static_cast<std::size_t>(p)];
    }
    if (!in) EXPECT_DOUBLE_EQ(sum, 0.0);
  }
}

TEST(PathLp, CapacityOverrideRespected) {
  auto pb = b4_problem();
  traffic::TraceConfig tcfg;
  tcfg.n_intervals = 2;
  auto trace = traffic::generate_trace(pb, tcfg);
  auto caps = pb.capacities();
  for (double& c : caps) c *= 0.1;
  lp::FlowLpSpec spec;
  spec.capacities = caps;
  auto alloc = lp::solve_flow_lp(pb, trace.at(0), spec);
  auto load = te::edge_loads(pb, trace.at(0), alloc);
  for (std::size_t e = 0; e < load.size(); ++e) EXPECT_LE(load[e], caps[e] + 1e-6);
}

TEST(PathLp, MatchesSimplexOptimumOnTinyInstance) {
  // Tiny 4-node problem solvable by the dense simplex for cross-validation.
  topo::Graph g("tiny");
  g.add_nodes(4);
  g.add_link(0, 1, 10, 1);
  g.add_link(1, 3, 10, 1);
  g.add_link(0, 2, 10, 1);
  g.add_link(2, 3, 10, 1);
  te::Problem pb(std::move(g), {{0, 3}, {3, 0}}, 4);
  te::TrafficMatrix tm;
  tm.volume = {30.0, 5.0};

  auto alloc = lp::solve_flow_lp(pb, tm);
  double flow = te::total_feasible_flow(pb, tm, alloc);
  // Optimum: demand 0 limited by two 10-capacity disjoint paths = 20; demand
  // 1 fully routed = 5.
  EXPECT_NEAR(flow, 25.0, 0.2);
}

TEST(MinMlu, MatchesKnownOptimumOnDiamond) {
  // Two disjoint 2-hop paths with equal latency; demand 12 vs capacity 10
  // per path: best MLU splits evenly -> 6/10.
  topo::Graph g("mlu-diamond");
  g.add_nodes(4);
  g.add_link(0, 1, 10, 1);
  g.add_link(1, 3, 10, 1);
  g.add_link(0, 2, 10, 1);
  g.add_link(2, 3, 10, 1);
  te::Problem pb(std::move(g), {{0, 3}}, 4);
  te::TrafficMatrix tm;
  tm.volume = {12.0};
  te::Allocation a;
  double mlu = lp::solve_min_mlu(pb, tm, {}, &a);
  EXPECT_NEAR(mlu, 0.6, 0.05);
  // All traffic routed.
  double sum = 0.0;
  for (int p = pb.path_begin(0); p < pb.path_end(0); ++p) {
    sum += a.split[static_cast<std::size_t>(p)];
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(MinMlu, NeverWorseThanShortestPathRouting) {
  auto pb = b4_problem();
  traffic::TraceConfig tcfg;
  tcfg.n_intervals = 3;
  auto trace = traffic::generate_trace(pb, tcfg);
  traffic::calibrate_capacities(pb, trace, 2.0);
  for (int t = 0; t < 3; ++t) {
    double sp = te::max_link_utilization(pb, trace.at(t), pb.shortest_path_allocation());
    double opt = lp::solve_min_mlu(pb, trace.at(t));
    EXPECT_LE(opt, sp + 1e-6);
  }
}

TEST(LatencyWeights, ShorterPathsWeighMore) {
  auto pb = b4_problem();
  auto w = lp::latency_penalty_weights(pb, 0.5);
  ASSERT_EQ(static_cast<int>(w.size()), pb.total_paths());
  for (int d = 0; d < pb.num_demands(); ++d) {
    for (int p = pb.path_begin(d) + 1; p < pb.path_end(d); ++p) {
      // Yen returns paths in nondecreasing latency, so weights nonincreasing.
      EXPECT_GE(w[static_cast<std::size_t>(p - 1)], w[static_cast<std::size_t>(p)] - 1e-12);
    }
  }
  for (double x : w) {
    EXPECT_GE(x, 0.0);
    EXPECT_LE(x, 1.0);
  }
}

}  // namespace
}  // namespace teal
