// Tests for intra-solve demand sharding (core::ShardPlan).
//
// The load-bearing property is shard-count invariance: a sharded solve must
// produce a byte-identical allocation to the sequential path for *every*
// shard count on *every* bundled topology — sharding is a latency knob, not
// a semantics knob. Alongside it: ShardPlan partition properties (including
// boundaries landing on empty-demand rows), the auto-shard cost model, the
// per-shard workspace accounting, the serving-layer shard path, and the
// pool-composition guarantees (nested fan-out runs inline; submitting from a
// thread that already holds a pool slot throws instead of oversubscribing).
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "core/shard.h"
#include "core/teal_scheme.h"
#include "sim/served.h"
#include "topo/topology.h"
#include "traffic/traffic.h"
#include "util/thread_pool.h"

namespace teal {
namespace {

struct Setup {
  te::Problem pb;
  traffic::Trace trace;
};

// A demand-capped instance of any bundled topology: every code path is
// identical to full scale (DESIGN.md substitution #5), only the demand
// sample is smaller so the five-topology sweep stays test-sized.
Setup topo_setup(const std::string& name, int n_demands = 150, int n_intervals = 3) {
  auto g = topo::make_topology(name);
  auto demands = traffic::sample_demands(g, n_demands, /*seed=*/7);
  te::Problem pb(std::move(g), std::move(demands), 4);
  traffic::TraceConfig cfg;
  cfg.n_intervals = n_intervals;
  cfg.seed = 11;
  auto trace = traffic::generate_trace(pb, cfg);
  traffic::calibrate_capacities(pb, trace, 1.5);
  return Setup{std::move(pb), std::move(trace)};
}

// Untrained Teal pipeline: deterministic init, and the sharding contract is
// independent of training (same pattern as workspace_test).
core::TealScheme make_teal(const te::Problem& pb) {
  return core::TealScheme(pb,
                          std::make_unique<core::TealModel>(core::TealModelConfig{},
                                                            pb.k_paths()),
                          core::TealSchemeConfig{});
}

void expect_bit_identical(const te::Allocation& a, const te::Allocation& b,
                          const std::string& what) {
  ASSERT_EQ(a.split.size(), b.split.size()) << what;
  // True byte comparison (not double ==, which conflates +0.0/-0.0):
  // sharding must not perturb a single bit.
  if (!a.split.empty() &&
      std::memcmp(a.split.data(), b.split.data(),
                  a.split.size() * sizeof(double)) != 0) {
    for (std::size_t i = 0; i < a.split.size(); ++i) {
      ASSERT_EQ(std::memcmp(&a.split[i], &b.split[i], sizeof(double)), 0)
          << what << ", split index " << i << " (" << a.split[i] << " vs "
          << b.split[i] << ")";
    }
  }
}

TEST(ShardPlan, PartitionsTheIndexSpace) {
  for (int n : {0, 1, 2, 5, 7, 132, 6000}) {
    for (int s : {1, 2, 3, 7, 64, n, n + 5}) {
      auto plan = core::ShardPlan::make(n, s);
      ASSERT_GE(plan.n_shards, 1);
      if (n > 0) {
        ASSERT_LE(plan.n_shards, std::max(1, std::min(s, n)));
      }
      // Contiguous cover of [0, n), every shard non-empty when n > 0.
      int expect_begin = 0;
      for (int i = 0; i < plan.n_shards; ++i) {
        EXPECT_EQ(plan.begin(i), expect_begin);
        if (n > 0) EXPECT_LT(plan.begin(i), plan.end(i)) << "empty shard " << i;
        expect_begin = plan.end(i);
      }
      EXPECT_EQ(expect_begin, std::max(0, n));
    }
  }
  // Degenerate requests clamp instead of faulting.
  EXPECT_EQ(core::ShardPlan::make(10, 0).n_shards, 1);
  EXPECT_EQ(core::ShardPlan::make(10, -3).n_shards, 1);
  EXPECT_EQ(core::ShardPlan::make(0, 8).n_shards, 1);
  EXPECT_EQ(core::ShardPlan::make(0, 8).end(0), 0);
}

TEST(ShardPlan, AutoShardCountCostModel) {
  // No threads or no demands: sequential.
  EXPECT_EQ(core::auto_shard_count(1000, 4000, 1), 1);
  EXPECT_EQ(core::auto_shard_count(1, 4, 8), 1);
  EXPECT_EQ(core::auto_shard_count(0, 0, 8), 1);
  // Too little work to amortize a barrier: sequential even with threads.
  EXPECT_EQ(core::auto_shard_count(10, 40, 8), 1);
  // Plenty of work: capped by threads...
  EXPECT_EQ(core::auto_shard_count(6000, 24000, 8), 8);
  // ...and by the demand count.
  EXPECT_EQ(core::auto_shard_count(4, 100000, 8), 4);
  // Work-limited in between.
  EXPECT_EQ(core::auto_shard_count(300, 1200, 8), 4);
}

TEST(Shard, SolveBitIdenticalAcrossShardCountsOnEveryTopology) {
  const int hw = static_cast<int>(
      std::max(1u, std::thread::hardware_concurrency()));
  for (const std::string& name : {"B4", "SWAN", "UsCarrier", "Kdl", "ASN"}) {
    auto s = topo_setup(name);
    auto scheme = make_teal(s.pb);
    core::SolveWorkspace ref_ws;
    te::Allocation ref;
    scheme.solve_replica(ref_ws, s.pb, s.trace.at(0), ref, nullptr, /*shard_count=*/1);
    EXPECT_EQ(ref_ws.plan.n_shards, 1);
    for (int shards : {2, 7, hw, s.pb.num_demands(), s.pb.num_demands() + 9}) {
      core::SolveWorkspace ws;
      te::Allocation got;
      scheme.solve_replica(ws, s.pb, s.trace.at(0), got, nullptr, shards);
      expect_bit_identical(ref, got, name + " @ " + std::to_string(shards) + " shards");
      // The workspace records the executed plan and per-shard accounting.
      EXPECT_EQ(ws.plan.n_shards,
                core::ShardPlan::make(s.pb.num_demands(), shards).n_shards);
      ASSERT_GE(ws.shard_stats.size(), static_cast<std::size_t>(ws.plan.n_shards));
      for (int i = 0; i < ws.plan.n_shards; ++i) {
        EXPECT_GT(ws.shard_stats[static_cast<std::size_t>(i)].stages, 0u)
            << name << " shard " << i << " never ran a stage";
      }
    }
  }
}

TEST(Shard, EmptyDemandRowsAtShardBoundaries) {
  auto s = topo_setup("B4");
  auto scheme = make_teal(s.pb);
  const int nd = s.pb.num_demands();

  // Zero out a band of demands straddling every boundary of a 7-shard plan,
  // plus the first and last row — boundary shards then start or end on
  // empty rows (zero volume ⇒ zero path features and a zero ADMM QP).
  auto plan7 = core::ShardPlan::make(nd, 7);
  te::TrafficMatrix tm = s.trace.at(0);
  tm.volume[0] = 0.0;
  tm.volume[static_cast<std::size_t>(nd - 1)] = 0.0;
  for (int sh = 1; sh < plan7.n_shards; ++sh) {
    const int b = plan7.begin(sh);
    for (int d = std::max(0, b - 1); d <= std::min(nd - 1, b + 1); ++d) {
      tm.volume[static_cast<std::size_t>(d)] = 0.0;
    }
  }

  core::SolveWorkspace ref_ws;
  te::Allocation ref;
  scheme.solve_replica(ref_ws, s.pb, tm, ref, nullptr, 1);
  s.pb.validate_allocation(ref);
  for (int shards : {2, 7, nd}) {
    core::SolveWorkspace ws;
    te::Allocation got;
    scheme.solve_replica(ws, s.pb, tm, got, nullptr, shards);
    expect_bit_identical(ref, got, "zero-band @ " + std::to_string(shards));
  }

  // The fully empty matrix is the extreme case: every shard is all empty
  // rows.
  te::TrafficMatrix zero;
  zero.volume.assign(static_cast<std::size_t>(nd), 0.0);
  core::SolveWorkspace zref_ws;
  te::Allocation zref;
  scheme.solve_replica(zref_ws, s.pb, zero, zref, nullptr, 1);
  for (int shards : {7, nd + 3}) {
    core::SolveWorkspace ws;
    te::Allocation got;
    scheme.solve_replica(ws, s.pb, zero, got, nullptr, shards);
    expect_bit_identical(zref, got, "all-zero @ " + std::to_string(shards));
  }
}

TEST(Shard, SchemeKnobAndTraits) {
  auto s = topo_setup("B4");
  auto scheme = make_teal(s.pb);
  EXPECT_TRUE(scheme.supports_demand_sharding());
  EXPECT_EQ(scheme.shard_count(), 0) << "default is auto";

  auto auto_alloc = scheme.solve(s.pb, s.trace.at(0));
  scheme.set_shard_count(4);
  EXPECT_EQ(scheme.shard_count(), 4);
  auto sharded = scheme.solve(s.pb, s.trace.at(0));
  scheme.set_shard_count(1);
  auto sequential = scheme.solve(s.pb, s.trace.at(0));
  expect_bit_identical(sequential, auto_alloc, "auto vs sequential");
  expect_bit_identical(sequential, sharded, "4 shards vs sequential");

  // solve_batch with the knob engaged still matches the solve() loop.
  scheme.set_shard_count(3);
  auto batch = scheme.solve_batch(s.pb, std::span(s.trace.matrices));
  ASSERT_EQ(static_cast<int>(batch.allocs.size()), s.trace.size());
  for (int t = 0; t < s.trace.size(); ++t) {
    auto seq = scheme.solve(s.pb, s.trace.at(t));
    expect_bit_identical(seq, batch.allocs[static_cast<std::size_t>(t)],
                         "batch @ t=" + std::to_string(t));
  }
}

TEST(Shard, ServedShardedMatchesSequential) {
  auto s = topo_setup("B4");
  auto scheme = make_teal(s.pb);
  for (int shard_count : {0, 4}) {  // auto and explicit
    sim::ServedConfig cfg;
    cfg.n_replicas = 1;
    cfg.shard_count = shard_count;
    cfg.serve.queue_capacity = static_cast<std::size_t>(s.trace.size());
    auto res = sim::run_served(scheme, s.pb, s.trace, cfg);
    EXPECT_EQ(res.stats.shed, 0u);
    for (int t = 0; t < s.trace.size(); ++t) {
      ASSERT_TRUE(res.accepted[static_cast<std::size_t>(t)]);
      auto seq = scheme.solve(s.pb, s.trace.at(t));
      expect_bit_identical(seq, res.allocs[static_cast<std::size_t>(t)],
                           "served shard_count=" + std::to_string(shard_count));
    }
  }
}

TEST(Shard, PickReplicaShardsCostModel) {
  // More than one replica: the throughput axis owns the threads.
  EXPECT_EQ(serve::pick_replica_shards(2, 6000, 24000), 1);
  EXPECT_EQ(serve::pick_replica_shards(8, 6000, 24000), 1);
  // A lone replica gets the auto work/threads trade-off (>= 1 always).
  EXPECT_GE(serve::pick_replica_shards(1, 6000, 24000), 1);
  EXPECT_EQ(serve::pick_replica_shards(1, 10, 40), 1);
}

// ---- Pool-composition regression tests (the oversubscription hazard). ----

TEST(PoolComposition, NestedParallelChunksRunsInline) {
  auto& pool = util::ThreadPool::global();
  std::atomic<int> outer_chunks{0};
  std::atomic<bool> nested_inline{true};
  pool.parallel_chunks(64, [&](std::size_t b, std::size_t e) {
    outer_chunks.fetch_add(1);
    const auto outer_thread = std::this_thread::get_id();
    // A nested region from inside a chunk must run inline on this thread,
    // as one chunk covering the whole range.
    int calls = 0;
    pool.parallel_chunks(32, [&](std::size_t nb, std::size_t ne) {
      ++calls;
      if (std::this_thread::get_id() != outer_thread) nested_inline = false;
      if (nb != 0 || ne != 32) nested_inline = false;
    });
    if (calls != 1) nested_inline = false;
    (void)b;
    (void)e;
  });
  EXPECT_GE(outer_chunks.load(), 1);
  EXPECT_TRUE(nested_inline.load());
}

TEST(PoolComposition, SubmitFromPoolSlotThrows) {
  auto& pool = util::ThreadPool::global();
  // From a worker running a submitted task.
  auto fut = pool.submit([&pool] {
    bool threw = false;
    try {
      pool.submit([] {});
    } catch (const std::logic_error&) {
      threw = true;
    }
    return threw;
  });
  EXPECT_TRUE(fut.get()) << "submit from a pool worker must throw";
  // From an inline scope (a serving replica's shape).
  {
    util::ThreadPool::ScopedInline inline_scope;
    EXPECT_TRUE(util::ThreadPool::in_pool_worker());
    EXPECT_THROW(pool.submit([] {}), std::logic_error);
    EXPECT_EQ(util::ThreadPool::available_parallelism(), 1u);
  }
  // Restored outside the scope.
  EXPECT_FALSE(util::ThreadPool::in_pool_worker());
  EXPECT_GE(util::ThreadPool::available_parallelism(), 1u);
}

TEST(PoolComposition, SolveBatchFromPoolSlotFallsBackSequentially) {
  auto s = topo_setup("B4");
  auto scheme = make_teal(s.pb);
  auto reference = scheme.solve_batch(s.pb, std::span(s.trace.matrices));
  // solve_batch invoked while this thread holds a pool slot must neither
  // deadlock nor submit (which now throws) — it falls back to the
  // sequential loop, and sharded stages run inline.
  util::ThreadPool::ScopedInline inline_scope;
  scheme.set_shard_count(4);
  auto nested = scheme.solve_batch(s.pb, std::span(s.trace.matrices));
  ASSERT_EQ(nested.allocs.size(), reference.allocs.size());
  for (std::size_t t = 0; t < nested.allocs.size(); ++t) {
    expect_bit_identical(reference.allocs[t], nested.allocs[t],
                         "nested batch @ t=" + std::to_string(t));
  }
}

}  // namespace
}  // namespace teal
