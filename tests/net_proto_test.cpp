// Tests for the wire protocol (net/wire.h), no sockets involved: codec
// round-trips for every frame type, byte-exact golden frames pinning the
// on-wire layout (so an accidental format change cannot pass review as a
// refactor), and a malformed-input battery — truncated header, oversized
// declared length, bad magic/version/type, payload/count mismatches, and
// split-across-read reassembly down to one byte at a time. The decoder must
// reject bad input from the header alone and never read past what was fed
// (the ASan CI leg runs this battery to enforce "never" mechanically).
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "net/wire.h"

namespace teal {
namespace {

using net::DecodeStatus;
using net::ErrorCode;
using net::Frame;
using net::FrameDecoder;
using net::FrameType;
using net::ShedReason;

// Feeds `bytes` whole and expects exactly one complete frame.
Frame decode_one(const std::vector<std::uint8_t>& bytes) {
  FrameDecoder d;
  d.feed(bytes.data(), bytes.size());
  Frame f;
  EXPECT_EQ(d.next(f), DecodeStatus::kFrame);
  EXPECT_EQ(d.buffered(), 0u) << "frame should consume every byte";
  return f;
}

TEST(NetProto, PingPongRoundTrip) {
  for (auto type : {FrameType::kPing, FrameType::kPong}) {
    std::vector<std::uint8_t> bytes;
    if (type == FrameType::kPing) {
      net::encode_ping(bytes, 42);
    } else {
      net::encode_pong(bytes, 42);
    }
    ASSERT_EQ(bytes.size(), net::kHeaderSize);
    Frame f = decode_one(bytes);
    EXPECT_EQ(f.type, type);
    EXPECT_EQ(f.request_id, 42u);
    EXPECT_TRUE(f.payload.empty());
  }
}

TEST(NetProto, SolveRequestRoundTripIsByteExact) {
  te::TrafficMatrix tm;
  // Values chosen to catch any non-bit-preserving path: negative zero, a
  // denormal, an ordinary irrational-ish double.
  tm.volume = {0.1, -0.0, 5e-324, 123456.789};
  std::vector<std::uint8_t> bytes;
  net::encode_solve_request(bytes, 7, tm);
  Frame f = decode_one(bytes);
  EXPECT_EQ(f.type, FrameType::kSolveRequest);
  te::TrafficMatrix back;
  std::string tenant;
  ASSERT_TRUE(net::parse_solve_request(f.payload, back, tenant));
  EXPECT_TRUE(tenant.empty());
  ASSERT_EQ(back.volume.size(), tm.volume.size());
  EXPECT_EQ(std::memcmp(back.volume.data(), tm.volume.data(),
                        tm.volume.size() * sizeof(double)),
            0)
      << "f64 payloads must survive the wire bit-for-bit";
}

TEST(NetProto, SolveRequestTenantRoundTrips) {
  te::TrafficMatrix tm;
  tm.volume = {1.0, 2.0, 3.0};
  std::vector<std::uint8_t> bytes;
  net::encode_solve_request(bytes, 8, tm, "wan-eu");
  Frame f = decode_one(bytes);
  te::TrafficMatrix back;
  std::string tenant = "stale";  // parser must overwrite, not append
  ASSERT_TRUE(net::parse_solve_request(f.payload, back, tenant));
  EXPECT_EQ(tenant, "wan-eu");
  EXPECT_EQ(back.volume, tm.volume);
}

TEST(NetProto, SolveResponseRoundTripIsByteExact) {
  te::Allocation alloc;
  alloc.split = {0.25, 0.75, -0.0, 1e-300};
  std::vector<std::uint8_t> bytes;
  net::encode_solve_response(bytes, 9, alloc, 0.00125);
  Frame f = decode_one(bytes);
  EXPECT_EQ(f.type, FrameType::kSolveResponse);
  te::Allocation back;
  double seconds = 0.0;
  ASSERT_TRUE(net::parse_solve_response(f.payload, back, seconds));
  EXPECT_DOUBLE_EQ(seconds, 0.00125);
  ASSERT_EQ(back.split.size(), alloc.split.size());
  EXPECT_EQ(std::memcmp(back.split.data(), alloc.split.data(),
                        alloc.split.size() * sizeof(double)),
            0);
}

TEST(NetProto, ShedRoundTrip) {
  for (auto reason :
       {ShedReason::kAdmission, ShedReason::kQueueFull, ShedReason::kStopping}) {
    std::vector<std::uint8_t> bytes;
    net::encode_shed(bytes, 3, reason);
    Frame f = decode_one(bytes);
    EXPECT_EQ(f.type, FrameType::kShed);
    ShedReason back{};
    ASSERT_TRUE(net::parse_shed(f.payload, back));
    EXPECT_EQ(back, reason);
  }
}

TEST(NetProto, ErrorRoundTrip) {
  std::vector<std::uint8_t> bytes;
  net::encode_error(bytes, 11, ErrorCode::kBadDemandCount, "expected 132 demands");
  Frame f = decode_one(bytes);
  EXPECT_EQ(f.type, FrameType::kError);
  ErrorCode code{};
  std::string message;
  ASSERT_TRUE(net::parse_error(f.payload, code, message));
  EXPECT_EQ(code, ErrorCode::kBadDemandCount);
  EXPECT_EQ(message, "expected 132 demands");
}

// --- golden frames: the wire layout, byte for byte -------------------------

TEST(NetProto, GoldenPingFrame) {
  std::vector<std::uint8_t> bytes;
  net::encode_ping(bytes, 0x01020304u);
  const std::vector<std::uint8_t> golden = {
      0x54, 0x4C,              // magic "TL" little-endian
      0x02,                    // version (v2: tenant id in solve requests)
      0x01,                    // type: ping
      0x04, 0x03, 0x02, 0x01,  // request id 0x01020304 LE
      0x00, 0x00, 0x00, 0x00,  // payload length 0
  };
  EXPECT_EQ(bytes, golden);
}

TEST(NetProto, GoldenSolveRequestFrame) {
  te::TrafficMatrix tm;
  tm.volume = {1.0, 2.5};
  std::vector<std::uint8_t> bytes;
  net::encode_solve_request(bytes, 7, tm, "eu");
  const std::vector<std::uint8_t> golden = {
      0x54, 0x4C, 0x02, 0x03,                          // magic, v2, solve_request
      0x07, 0x00, 0x00, 0x00,                          // request id 7
      0x1A, 0x00, 0x00, 0x00,                          // payload length 26
      0x02, 0x00, 0x00, 0x00,                          // tenant length 2
      0x65, 0x75,                                      // "eu"
      0x02, 0x00, 0x00, 0x00,                          // n_demands 2
      0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0xF0, 0x3F,  // 1.0 (IEEE-754 LE)
      0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x04, 0x40,  // 2.5
  };
  EXPECT_EQ(bytes, golden);
}

TEST(NetProto, GoldenShedFrame) {
  std::vector<std::uint8_t> bytes;
  net::encode_shed(bytes, 1, ShedReason::kQueueFull);
  const std::vector<std::uint8_t> golden = {
      0x54, 0x4C, 0x02, 0x05, 0x01, 0x00, 0x00, 0x00,
      0x04, 0x00, 0x00, 0x00, 0x02, 0x00, 0x00, 0x00,
  };
  EXPECT_EQ(bytes, golden);
}

// Backward compat is explicit refusal: a v1 peer (PR 7, no tenant field) is
// rejected from the first header byte that differs — never misparsed, where
// its demand count would be read as a tenant length.
TEST(NetProto, V1FramesAreRejectedByVersion) {
  std::vector<std::uint8_t> bytes;
  net::encode_ping(bytes, 1);
  bytes[2] = 1;  // rewrite the version byte to v1
  FrameDecoder d;
  d.feed(bytes.data(), bytes.size());
  Frame f;
  EXPECT_EQ(d.next(f), DecodeStatus::kMalformed);
  EXPECT_TRUE(d.poisoned());
  EXPECT_NE(d.error().find("unsupported version 1"), std::string::npos);
}

// --- reassembly ------------------------------------------------------------

TEST(NetProto, ReassemblesFramesSplitAcrossReads) {
  // Every frame type concatenated, then fed one byte at a time — the
  // harshest split a TCP stream can produce.
  te::TrafficMatrix tm;
  tm.volume = {3.0, 4.0, 5.0};
  te::Allocation alloc;
  alloc.split = {0.5, 0.5};
  std::vector<std::uint8_t> stream;
  net::encode_ping(stream, 1);
  net::encode_solve_request(stream, 2, tm);
  net::encode_solve_response(stream, 3, alloc, 0.5);
  net::encode_shed(stream, 4, ShedReason::kAdmission);
  net::encode_error(stream, 5, ErrorCode::kMalformed, "x");
  net::encode_pong(stream, 6);

  FrameDecoder d;
  std::vector<Frame> frames;
  for (std::uint8_t b : stream) {
    d.feed(&b, 1);
    Frame f;
    while (d.next(f) == DecodeStatus::kFrame) frames.push_back(f);
  }
  ASSERT_EQ(frames.size(), 6u);
  EXPECT_EQ(frames[0].type, FrameType::kPing);
  EXPECT_EQ(frames[1].type, FrameType::kSolveRequest);
  EXPECT_EQ(frames[2].type, FrameType::kSolveResponse);
  EXPECT_EQ(frames[3].type, FrameType::kShed);
  EXPECT_EQ(frames[4].type, FrameType::kError);
  EXPECT_EQ(frames[5].type, FrameType::kPong);
  for (std::size_t i = 0; i < frames.size(); ++i) {
    EXPECT_EQ(frames[i].request_id, i + 1);
  }
  te::TrafficMatrix tm_back;
  std::string tenant_back;
  ASSERT_TRUE(net::parse_solve_request(frames[1].payload, tm_back, tenant_back));
  EXPECT_EQ(tm_back.volume, tm.volume);
  EXPECT_EQ(d.buffered(), 0u);
}

TEST(NetProto, NeedMoreUntilTheLastByte) {
  te::TrafficMatrix tm;
  tm.volume = {1.0, 2.0};
  std::vector<std::uint8_t> bytes;
  net::encode_solve_request(bytes, 1, tm);
  FrameDecoder d;
  Frame f;
  for (std::size_t i = 0; i + 1 < bytes.size(); ++i) {
    d.feed(&bytes[i], 1);
    EXPECT_EQ(d.next(f), DecodeStatus::kNeedMore) << "after byte " << i;
  }
  d.feed(&bytes.back(), 1);
  EXPECT_EQ(d.next(f), DecodeStatus::kFrame);
}

// --- malformed-input battery ------------------------------------------------

TEST(NetProto, TruncatedHeaderIsNeedMoreNotError) {
  std::vector<std::uint8_t> bytes;
  net::encode_ping(bytes, 1);
  FrameDecoder d;
  d.feed(bytes.data(), 5);
  Frame f;
  EXPECT_EQ(d.next(f), DecodeStatus::kNeedMore);
  EXPECT_EQ(d.buffered(), 5u);
  EXPECT_FALSE(d.poisoned());
}

TEST(NetProto, BadMagicIsMalformedAndSticky) {
  std::vector<std::uint8_t> bytes;
  net::encode_ping(bytes, 1);
  bytes[0] = 0xFF;
  FrameDecoder d;
  d.feed(bytes.data(), bytes.size());
  Frame f;
  EXPECT_EQ(d.next(f), DecodeStatus::kMalformed);
  EXPECT_TRUE(d.poisoned());
  EXPECT_NE(d.error().find("magic"), std::string::npos);
  // Sticky: feeding a perfectly valid frame afterwards cannot revive it (a
  // length-prefixed stream has no resync point).
  std::vector<std::uint8_t> good;
  net::encode_ping(good, 2);
  d.feed(good.data(), good.size());
  EXPECT_EQ(d.next(f), DecodeStatus::kMalformed);
}

TEST(NetProto, BadVersionIsMalformed) {
  std::vector<std::uint8_t> bytes;
  net::encode_ping(bytes, 1);
  bytes[2] = 9;
  FrameDecoder d;
  d.feed(bytes.data(), bytes.size());
  Frame f;
  EXPECT_EQ(d.next(f), DecodeStatus::kMalformed);
  EXPECT_NE(d.error().find("version"), std::string::npos);
}

TEST(NetProto, UnknownTypeIsMalformed) {
  for (std::uint8_t bad : {std::uint8_t{0}, std::uint8_t{7}, std::uint8_t{255}}) {
    std::vector<std::uint8_t> bytes;
    net::encode_ping(bytes, 1);
    bytes[3] = bad;
    FrameDecoder d;
    d.feed(bytes.data(), bytes.size());
    Frame f;
    EXPECT_EQ(d.next(f), DecodeStatus::kMalformed) << "type " << int{bad};
  }
}

TEST(NetProto, OversizedLengthRejectedFromHeaderAlone) {
  // Only the 12 header bytes are fed; the decoder must refuse rather than
  // wait for (and buffer) a bogus multi-gigabyte payload.
  FrameDecoder d(/*max_payload=*/64);
  std::vector<std::uint8_t> bytes;
  net::encode_ping(bytes, 1);
  bytes[8] = 65;  // payload length 65 > limit 64
  d.feed(bytes.data(), net::kHeaderSize);
  Frame f;
  EXPECT_EQ(d.next(f), DecodeStatus::kMalformed);
  EXPECT_NE(d.error().find("exceeds"), std::string::npos);
}

TEST(NetProto, PayloadAtLimitIsAccepted) {
  te::TrafficMatrix tm;
  tm.volume = {1.0};  // payload = 4 (tenant len) + 4 (count) + 8 = 16 bytes
  std::vector<std::uint8_t> bytes;
  net::encode_solve_request(bytes, 1, tm);
  FrameDecoder d(/*max_payload=*/16);
  d.feed(bytes.data(), bytes.size());
  Frame f;
  EXPECT_EQ(d.next(f), DecodeStatus::kFrame);
}

TEST(NetProto, SolveRequestCountMismatchFailsParse) {
  te::TrafficMatrix tm;
  tm.volume = {1.0, 2.0};
  std::vector<std::uint8_t> bytes;
  net::encode_solve_request(bytes, 1, tm);
  Frame f = decode_one(bytes);
  // Payload layout with an empty tenant: [0..3] tenant length, [4..7]
  // n_demands. Declare 3 demands but carry 2: the parser must reject
  // instead of reading 8 bytes past the payload.
  f.payload[4] = 3;
  te::TrafficMatrix back;
  std::string tenant;
  EXPECT_FALSE(net::parse_solve_request(f.payload, back, tenant));
  // Declare 1 but carry 2 (trailing junk) — also rejected.
  f.payload[4] = 1;
  EXPECT_FALSE(net::parse_solve_request(f.payload, back, tenant));
  f.payload[4] = 2;
  EXPECT_TRUE(net::parse_solve_request(f.payload, back, tenant));
}

TEST(NetProto, SolveRequestTenantLengthOverrunFailsParse) {
  te::TrafficMatrix tm;
  tm.volume = {1.0};
  std::vector<std::uint8_t> bytes;
  net::encode_solve_request(bytes, 1, tm, "ab");
  Frame f = decode_one(bytes);
  // Inflate the declared tenant length past the payload end: the parser
  // must bound-check it before reading the demand count that follows.
  f.payload[0] = 200;
  te::TrafficMatrix back;
  std::string tenant;
  EXPECT_FALSE(net::parse_solve_request(f.payload, back, tenant));
}

TEST(NetProto, TruncatedPayloadsFailEveryParser) {
  te::TrafficMatrix tm_empty;  // short payloads: 4 bytes of count only
  std::vector<std::uint8_t> tiny = {0x01};
  te::TrafficMatrix tm;
  std::string tenant;
  EXPECT_FALSE(net::parse_solve_request(tiny, tm, tenant));
  te::Allocation alloc;
  double s;
  EXPECT_FALSE(net::parse_solve_response(tiny, alloc, s));
  ShedReason reason;
  EXPECT_FALSE(net::parse_shed(tiny, reason));
  ErrorCode code;
  std::string msg;
  EXPECT_FALSE(net::parse_error(tiny, code, msg));
  // Error frame whose declared text length overruns the payload.
  std::vector<std::uint8_t> err = {0x01, 0, 0, 0, /*len=*/10, 0, 0, 0, 'h', 'i'};
  EXPECT_FALSE(net::parse_error(err, code, msg));
  // Shed with an out-of-range reason.
  std::vector<std::uint8_t> shed = {99, 0, 0, 0};
  EXPECT_FALSE(net::parse_shed(shed, reason));
  (void)tm_empty;
}

TEST(NetProto, EmptySolveRequestRoundTrips) {
  te::TrafficMatrix tm;  // zero demands is a wire-valid (if useless) request
  std::vector<std::uint8_t> bytes;
  net::encode_solve_request(bytes, 1, tm);
  Frame f = decode_one(bytes);
  te::TrafficMatrix back;
  back.volume = {1.0, 2.0};  // parser must shrink it
  std::string tenant;
  ASSERT_TRUE(net::parse_solve_request(f.payload, back, tenant));
  EXPECT_TRUE(back.volume.empty());
}

TEST(NetProto, DecoderCompactsConsumedPrefix) {
  // A standing connection streaming many frames must not grow its buffer
  // without bound; after full consumption buffered() is 0 and the internal
  // storage is reused.
  FrameDecoder d;
  Frame f;
  for (int i = 0; i < 10000; ++i) {
    std::vector<std::uint8_t> bytes;
    net::encode_ping(bytes, static_cast<std::uint32_t>(i));
    d.feed(bytes.data(), bytes.size());
    ASSERT_EQ(d.next(f), DecodeStatus::kFrame);
    ASSERT_EQ(f.request_id, static_cast<std::uint32_t>(i));
  }
  EXPECT_EQ(d.buffered(), 0u);
}

}  // namespace
}  // namespace teal
