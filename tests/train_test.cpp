// Tests for the workspace-batched training pipeline (core::TrainContext).
//
// Three load-bearing properties:
//   1. Fidelity: with one worker and the default rollout batch of 1, the
//      workspace path (forward_ws / backward_ws / per-slot accumulators)
//      trains parameters byte-identical to a reference trainer that drives
//      the allocating forward_m / backward_m interface with the same,
//      documented semantics. The references below ARE that contract, written
//      against the public Model API only.
//   2. Worker-count invariance: the `workers` knob is pure throughput —
//      byte-identical parameters for 1/2/4 workers on multiple bundled
//      topologies (the per-(rollout, demand) noise keying plus the ordered
//      sequential gradient reduction; same contract as core::ShardPlan).
//   3. Allocation-freedom: optimizer steps after the first perform zero heap
//      allocations on the workspace path (TrainStats::warm_step_allocs,
//      measured by the trainers themselves via util::alloc_hook).
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "core/coma.h"
#include "core/direct_loss.h"
#include "core/model.h"
#include "core/reward.h"
#include "core/train_context.h"
#include "core/variants.h"
#include "lp/path_lp.h"
#include "nn/module.h"
#include "te/objective.h"
#include "topo/topology.h"
#include "traffic/traffic.h"
#include "util/alloc_hook.h"
#include "util/rng.h"

namespace teal {
namespace {

struct Setup {
  te::Problem pb;
  traffic::Trace trace;
};

// Demand-capped instance of any bundled topology (same pattern as
// shard_test): every code path is full-scale, only the demand sample is
// test-sized.
Setup topo_setup(const std::string& name, int n_demands = 120, int n_intervals = 6) {
  auto g = topo::make_topology(name);
  auto demands = traffic::sample_demands(g, n_demands, /*seed=*/7);
  te::Problem pb(std::move(g), std::move(demands), 4);
  traffic::TraceConfig cfg;
  cfg.n_intervals = n_intervals;
  cfg.seed = 11;
  auto trace = traffic::generate_trace(pb, cfg);
  traffic::calibrate_capacities(pb, trace, 2.0);
  return Setup{std::move(pb), std::move(trace)};
}

core::TealModel make_model(const te::Problem& pb) {
  return core::TealModel(core::TealModelConfig{}, pb.k_paths(), /*seed=*/3);
}

void expect_params_bit_identical(core::Model& a, core::Model& b, const std::string& what) {
  auto pa = a.params();
  auto pb_ = b.params();
  ASSERT_EQ(pa.size(), pb_.size()) << what;
  for (std::size_t i = 0; i < pa.size(); ++i) {
    ASSERT_EQ(pa[i]->w.size(), pb_[i]->w.size()) << what << " param " << i;
    EXPECT_EQ(std::memcmp(pa[i]->w.data().data(), pb_[i]->w.data().data(),
                          pa[i]->w.size() * sizeof(double)),
              0)
        << what << ": param " << i << " differs";
  }
}

// Test-local copy of the trainers' masked row softmax.
void row_softmax(const double* z, const double* mask, int k, double* out) {
  double mx = -1e300;
  for (int c = 0; c < k; ++c) {
    if (mask[c] != 0.0) mx = std::max(mx, z[c]);
  }
  double denom = 0.0;
  for (int c = 0; c < k; ++c) {
    if (mask[c] != 0.0) {
      out[c] = std::exp(z[c] - mx);
      denom += out[c];
    } else {
      out[c] = 0.0;
    }
  }
  if (denom > 0.0) {
    for (int c = 0; c < k; ++c) out[c] /= denom;
  }
}

// Reference COMA* trainer over the allocating Model API: per-matrix Adam
// steps, exploration streams keyed by core::coma_noise_seed exactly as
// documented in coma.h. train_coma with workers = 1, rollout_batch = 1 must
// match this byte for byte.
void reference_coma(core::Model& model, const te::Problem& pb, const traffic::Trace& train,
                    const core::ComaConfig& cfg) {
  const int k = model.k_paths();
  const int nd = pb.num_demands();
  nn::Adam adam(model.params(), cfg.lr);
  core::RewardSimulator sim(pb, te::Objective::kTotalFlow);
  auto scratch = sim.make_scratch();
  const std::vector<double> caps = pb.capacities();
  std::vector<double> zc(static_cast<std::size_t>(k)), cand(static_cast<std::size_t>(k));
  for (int epoch = 0; epoch < cfg.epochs; ++epoch) {
    for (int t = 0; t < train.size(); ++t) {
      const te::TrafficMatrix& tm = train.at(t);
      auto fwd = model.forward_m(pb, tm, &caps);
      nn::Mat z(nd, k), splits(nd, k);
      for (int d = 0; d < nd; ++d) {
        util::CounterRng rng(
            core::coma_noise_seed(cfg.seed, epoch, t, 2 * static_cast<std::uint64_t>(d)));
        for (int c = 0; c < k; ++c) {
          z.at(d, c) = fwd.logits.at(d, c) +
                       (fwd.mask.at(d, c) != 0.0 ? cfg.sigma * rng.normal() : 0.0);
        }
        row_softmax(z.row_ptr(d), fwd.mask.row_ptr(d), k, splits.row_ptr(d));
      }
      sim.set_state(tm, caps, splits);
      std::vector<double> advantage(static_cast<std::size_t>(nd), 0.0);
      for (int d = 0; d < nd; ++d) {
        util::CounterRng rng(core::coma_noise_seed(cfg.seed, epoch, t,
                                            2 * static_cast<std::uint64_t>(d) + 1));
        const double base = sim.value_of(d, splits.row_ptr(d), scratch);
        double baseline = 0.0;
        for (int m = 0; m < cfg.mc_samples; ++m) {
          for (int c = 0; c < k; ++c) {
            zc[static_cast<std::size_t>(c)] =
                fwd.logits.at(d, c) +
                (fwd.mask.at(d, c) != 0.0 ? cfg.sigma * rng.normal() : 0.0);
          }
          row_softmax(zc.data(), fwd.mask.row_ptr(d), k, cand.data());
          baseline += sim.value_of(d, cand.data(), scratch);
        }
        baseline /= std::max(1, cfg.mc_samples);
        advantage[static_cast<std::size_t>(d)] = base - baseline;
      }
      double sq = 0.0;
      for (double a : advantage) sq += a * a;
      const double scale = 1.0 / (std::sqrt(sq / std::max(1, nd)) + cfg.adv_norm_eps);
      nn::Mat grad_logits(nd, k);
      const double inv_var = 1.0 / (cfg.sigma * cfg.sigma);
      for (int d = 0; d < nd; ++d) {
        const double a = advantage[static_cast<std::size_t>(d)] * scale;
        for (int c = 0; c < k; ++c) {
          if (fwd.mask.at(d, c) != 0.0) {
            grad_logits.at(d, c) = -a * (z.at(d, c) - fwd.logits.at(d, c)) * inv_var;
          }
        }
      }
      adam.zero_grad();
      model.backward_m(pb, fwd, grad_logits);
      adam.clip_grad_norm(cfg.grad_clip);
      adam.step();
    }
  }
}

// Reference direct-loss trainer over the allocating Model API (the seed
// semantics: per-matrix steps, surrogate gradient through the softmax).
void reference_direct_loss(core::Model& model, const te::Problem& pb,
                           const traffic::Trace& train, const core::DirectLossConfig& cfg) {
  const int k = model.k_paths();
  const int nd = pb.num_demands();
  nn::Adam adam(model.params(), cfg.lr);
  const std::vector<double> caps = pb.capacities();
  std::vector<double> weight(static_cast<std::size_t>(pb.total_paths()), 1.0);
  for (int epoch = 0; epoch < cfg.epochs; ++epoch) {
    for (int t = 0; t < train.size(); ++t) {
      const te::TrafficMatrix& tm = train.at(t);
      auto fwd = model.forward_m(pb, tm, &caps);
      nn::Mat splits = core::splits_from_logits(fwd.logits, fwd.mask);
      te::Allocation a = core::allocation_from_splits(pb, splits);
      auto load = te::edge_loads(pb, tm, a);
      std::vector<char> violated(load.size(), 0);
      for (std::size_t e = 0; e < load.size(); ++e) {
        violated[e] = load[e] > caps[e] ? 1 : 0;
      }
      nn::Mat grad_splits(nd, k);
      for (int d = 0; d < nd; ++d) {
        const double vol = tm.volume[static_cast<std::size_t>(d)];
        int slot = 0;
        for (int p = pb.path_begin(d); p < pb.path_end(d) && slot < k; ++p, ++slot) {
          int n_viol = 0;
          for (topo::EdgeId e : pb.path_edges(p)) {
            n_viol += violated[static_cast<std::size_t>(e)];
          }
          grad_splits.at(d, slot) =
              -vol * (weight[static_cast<std::size_t>(p)] - static_cast<double>(n_viol));
        }
      }
      nn::Mat grad_logits;
      nn::softmax_rows_backward(splits, grad_splits, grad_logits);
      adam.zero_grad();
      model.backward_m(pb, fwd, grad_logits);
      adam.clip_grad_norm(cfg.grad_clip);
      adam.step();
    }
  }
}

TEST(TrainWorkspace, ComaMatchesReferenceSingleWorker) {
  auto s = topo_setup("B4");
  auto ws_model = make_model(s.pb);
  auto ref_model = make_model(s.pb);
  core::ComaConfig cfg;
  cfg.epochs = 2;
  cfg.workers = 1;
  cfg.rollout_batch = 1;
  core::train_coma(ws_model, s.pb, s.trace, te::Objective::kTotalFlow, cfg);
  reference_coma(ref_model, s.pb, s.trace, cfg);
  expect_params_bit_identical(ws_model, ref_model, "coma ws-vs-reference");
}

TEST(TrainWorkspace, DirectLossMatchesReferenceSingleWorker) {
  auto s = topo_setup("B4");
  auto ws_model = make_model(s.pb);
  auto ref_model = make_model(s.pb);
  core::DirectLossConfig cfg;
  cfg.epochs = 2;
  cfg.workers = 1;
  cfg.rollout_batch = 1;
  core::train_direct_loss(ws_model, s.pb, s.trace, te::Objective::kTotalFlow, cfg);
  reference_direct_loss(ref_model, s.pb, s.trace, cfg);
  expect_params_bit_identical(ws_model, ref_model, "direct-loss ws-vs-reference");
}

// The worker knob must be pure throughput: byte-identical trained parameters
// for every worker count, on multiple bundled topologies, for both trainers.
TEST(TrainWorkspace, ComaWorkerCountInvariance) {
  for (const std::string topo : {"B4", "SWAN"}) {
    auto s = topo_setup(topo);
    auto baseline = make_model(s.pb);
    core::ComaConfig cfg;
    cfg.epochs = 2;
    cfg.rollout_batch = 4;
    cfg.workers = 1;
    core::train_coma(baseline, s.pb, s.trace, te::Objective::kTotalFlow, cfg);
    for (int workers : {2, 4}) {
      auto model = make_model(s.pb);
      cfg.workers = workers;
      core::train_coma(model, s.pb, s.trace, te::Objective::kTotalFlow, cfg);
      expect_params_bit_identical(model, baseline,
                                  topo + " coma workers=" + std::to_string(workers));
    }
  }
}

TEST(TrainWorkspace, DirectLossWorkerCountInvariance) {
  for (const std::string topo : {"B4", "SWAN"}) {
    auto s = topo_setup(topo);
    auto baseline = make_model(s.pb);
    core::DirectLossConfig cfg;
    cfg.epochs = 2;
    cfg.rollout_batch = 4;
    cfg.workers = 1;
    core::train_direct_loss(baseline, s.pb, s.trace, te::Objective::kTotalFlow, cfg);
    for (int workers : {2, 4}) {
      auto model = make_model(s.pb);
      cfg.workers = workers;
      core::train_direct_loss(model, s.pb, s.trace, te::Objective::kTotalFlow, cfg);
      expect_params_bit_identical(model, baseline,
                                  topo + " direct workers=" + std::to_string(workers));
    }
  }
}

// Rollout batching changes step granularity, never rollout math: the auto
// worker count (0) must match the explicit sequential run too.
TEST(TrainWorkspace, AutoWorkersMatchSequential) {
  auto s = topo_setup("B4");
  auto baseline = make_model(s.pb);
  auto model = make_model(s.pb);
  core::ComaConfig cfg;
  cfg.epochs = 1;
  cfg.rollout_batch = 3;
  cfg.workers = 1;
  core::train_coma(baseline, s.pb, s.trace, te::Objective::kTotalFlow, cfg);
  cfg.workers = 0;  // auto
  core::train_coma(model, s.pb, s.trace, te::Objective::kTotalFlow, cfg);
  expect_params_bit_identical(model, baseline, "coma auto workers");
}

// Warm optimizer steps on the workspace path are allocation-free — the
// trainers measure it themselves (steps after the first, validation and
// epoch accounting excluded).
TEST(TrainWorkspace, ComaWarmStepsAllocationFree) {
  auto s = topo_setup("B4");
  auto model = make_model(s.pb);
  core::ComaConfig cfg;
  cfg.epochs = 2;
  cfg.rollout_batch = 2;
  core::TrainStats stats =
      core::train_coma(model, s.pb, s.trace, te::Objective::kTotalFlow, cfg);
  EXPECT_EQ(stats.warm_step_allocs, 0u)
      << "warm COMA* training steps must not allocate";
}

TEST(TrainWorkspace, DirectLossWarmStepsAllocationFree) {
  auto s = topo_setup("B4");
  auto model = make_model(s.pb);
  core::DirectLossConfig cfg;
  cfg.epochs = 2;
  cfg.rollout_batch = 2;
  core::DirectLossStats stats =
      core::train_direct_loss(model, s.pb, s.trace, te::Objective::kTotalFlow, cfg);
  EXPECT_EQ(stats.warm_step_allocs, 0u)
      << "warm direct-loss training steps must not allocate";
}

// Cold-start contract: TrainContext::prepare bump-allocates the slot array,
// every per-slot gradient accumulator and the backward scratch out of the
// context's own arenas — O(1) heap allocations for the spin-up, and again
// for a re-prepare (which re-bumps the retained chunks).
TEST(TrainWorkspace, ContextPrepareIsO1Allocations) {
  auto s = topo_setup("B4", 60, 4);
  auto model = make_model(s.pb);
  core::TrainContext ctx;
  {
    util::AllocCounter allocs;
    ctx.prepare(model, s.pb, /*rollout_batch=*/4, /*workers=*/2);
    EXPECT_LE(allocs.count(), 5u)
        << "TrainContext spin-up must stay O(1) heap allocations";
  }
  ASSERT_TRUE(ctx.ws_path());
  EXPECT_EQ(ctx.rollout_batch(), 4);
  {
    util::AllocCounter allocs;
    ctx.prepare(model, s.pb, /*rollout_batch=*/4, /*workers=*/2);
    EXPECT_LE(allocs.count(), 5u)
        << "re-prepare must re-bump retained chunks, not re-malloc";
  }
}

// Models without the workspace seam (the Figure 14 ablation variants) fall
// back to the sequential backward_m path: any worker request must produce
// the same parameters as workers = 1 (the context forces sequential).
TEST(TrainWorkspace, LegacyModelFallbackIsWorkerInvariant) {
  auto s = topo_setup("B4", 60, 4);
  core::NaiveGnnModel baseline({}, s.pb, 3);
  core::NaiveGnnModel model({}, s.pb, 3);
  ASSERT_FALSE(baseline.supports_train_ws());
  core::ComaConfig cfg;
  cfg.epochs = 1;
  cfg.rollout_batch = 2;
  cfg.workers = 1;
  core::train_coma(baseline, s.pb, s.trace, te::Objective::kTotalFlow, cfg);
  cfg.workers = 4;
  core::train_coma(model, s.pb, s.trace, te::Objective::kTotalFlow, cfg);
  expect_params_bit_identical(model, baseline, "legacy fallback workers=4");
}

// Unit seam check: backward_acc accumulates the same values into external
// buffers that backward() accumulates into Param::g.
TEST(TrainWorkspace, LinearBackwardAccMatchesBackward) {
  util::Rng rng(5);
  nn::Linear lin(6, 4, rng);
  nn::Mat x(8, 6), gy(8, 4);
  for (auto& v : x.data()) v = rng.normal();
  for (auto& v : gy.data()) v = rng.normal();

  nn::Mat gx_ref;
  for (auto* p : lin.params()) p->zero_grad();
  lin.backward(x, gy, gx_ref);

  nn::Mat gx(0, 0), gw(4, 6), gb(1, 4);
  lin.backward_acc(x, gy, gx, gw, gb);

  auto params = lin.params();
  EXPECT_EQ(std::memcmp(gw.data().data(), params[0]->g.data().data(),
                        gw.size() * sizeof(double)),
            0);
  EXPECT_EQ(std::memcmp(gb.data().data(), params[1]->g.data().data(),
                        gb.size() * sizeof(double)),
            0);
  EXPECT_EQ(std::memcmp(gx.data().data(), gx_ref.data().data(),
                        gx.size() * sizeof(double)),
            0);
}

// GradAccum reduction: Param::g after reduce_into equals direct accumulation
// (zero + one set), and per-set refs address the right shapes.
TEST(TrainWorkspace, GradAccumReduceMatchesDirect) {
  util::Rng rng(9);
  nn::Linear lin(5, 3, rng);
  auto params = lin.params();
  nn::GradAccum acc;
  acc.prepare(params);
  auto refs = acc.refs();
  ASSERT_EQ(refs.size(), params.size());
  for (std::size_t i = 0; i < refs.size(); ++i) {
    ASSERT_TRUE(refs[i]->same_shape(params[i]->g));
    for (auto& v : refs[i]->data()) v = rng.normal();
  }
  for (auto* p : params) p->zero_grad();
  acc.reduce_into(params);
  for (std::size_t i = 0; i < refs.size(); ++i) {
    EXPECT_EQ(std::memcmp(params[i]->g.data().data(), refs[i]->data().data(),
                          refs[i]->size() * sizeof(double)),
              0);
  }
}

}  // namespace
}  // namespace teal
