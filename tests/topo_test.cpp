// Unit tests for the topology substrate: graph, shortest paths, Yen's KSP,
// generators (Table 1 counts), statistics (Table 3 / Fig 17).
#include <gtest/gtest.h>

#include <set>

#include "topo/graph.h"
#include "topo/shortest_path.h"
#include "topo/topo_stats.h"
#include "topo/topology.h"

namespace teal {
namespace {

topo::Graph diamond() {
  // 0 -> 1 -> 3 and 0 -> 2 -> 3, plus a direct long edge 0 -> 3.
  topo::Graph g("diamond");
  g.add_nodes(4);
  g.add_edge(0, 1, 10, 1.0);
  g.add_edge(1, 3, 10, 1.0);
  g.add_edge(0, 2, 10, 1.5);
  g.add_edge(2, 3, 10, 1.5);
  g.add_edge(0, 3, 10, 10.0);
  return g;
}

TEST(Graph, AddAndQuery) {
  topo::Graph g;
  g.add_nodes(3);
  auto e = g.add_edge(0, 1, 5.0, 2.0);
  EXPECT_EQ(g.num_nodes(), 3);
  EXPECT_EQ(g.num_edges(), 1);
  EXPECT_EQ(g.edge(e).src, 0);
  EXPECT_EQ(g.edge(e).dst, 1);
  EXPECT_DOUBLE_EQ(g.edge(e).capacity, 5.0);
  EXPECT_EQ(g.find_edge(0, 1), e);
  EXPECT_EQ(g.find_edge(1, 0), topo::kInvalidEdge);
}

TEST(Graph, AddLinkCreatesBothDirections) {
  topo::Graph g;
  g.add_nodes(2);
  g.add_link(0, 1, 7.0, 3.0);
  EXPECT_EQ(g.num_edges(), 2);
  EXPECT_NE(g.find_edge(0, 1), topo::kInvalidEdge);
  EXPECT_NE(g.find_edge(1, 0), topo::kInvalidEdge);
}

TEST(Graph, RejectsInvalidEdges) {
  topo::Graph g;
  g.add_nodes(2);
  EXPECT_THROW(g.add_edge(0, 0, 1.0), std::invalid_argument);
  EXPECT_THROW(g.add_edge(0, 5, 1.0), std::out_of_range);
  EXPECT_THROW(g.add_edge(0, 1, -1.0), std::invalid_argument);
}

TEST(Graph, ScaleCapacities) {
  topo::Graph g = diamond();
  g.scale_capacities(0.5);
  for (const auto& e : g.edges()) EXPECT_DOUBLE_EQ(e.capacity, 5.0);
}

TEST(Graph, StrongConnectivity) {
  topo::Graph g;
  g.add_nodes(2);
  g.add_edge(0, 1, 1.0);
  EXPECT_FALSE(g.is_strongly_connected());
  g.add_edge(1, 0, 1.0);
  EXPECT_TRUE(g.is_strongly_connected());
}

TEST(ShortestPath, PicksMinLatency) {
  auto g = diamond();
  auto p = topo::shortest_path(g, 0, 3);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->size(), 2u);  // 0->1->3, total 2.0
  EXPECT_DOUBLE_EQ(topo::path_latency(g, *p), 2.0);
  topo::validate_path(g, *p, 0, 3);
}

TEST(ShortestPath, UnreachableReturnsNullopt) {
  topo::Graph g;
  g.add_nodes(3);
  g.add_edge(0, 1, 1.0);
  EXPECT_FALSE(topo::shortest_path(g, 1, 0).has_value());
  EXPECT_FALSE(topo::shortest_path(g, 0, 2).has_value());
}

TEST(Yen, FindsKDistinctPathsInOrder) {
  auto g = diamond();
  auto paths = topo::yen_ksp(g, 0, 3, 4);
  ASSERT_EQ(paths.size(), 3u);  // only 3 simple paths exist
  double prev = 0.0;
  std::set<topo::Path> distinct;
  for (const auto& p : paths) {
    topo::validate_path(g, p, 0, 3);
    double lat = topo::path_latency(g, p);
    EXPECT_GE(lat, prev);
    prev = lat;
    distinct.insert(p);
  }
  EXPECT_EQ(distinct.size(), paths.size());
}

TEST(Yen, RespectsKLimit) {
  auto g = diamond();
  auto paths = topo::yen_ksp(g, 0, 3, 2);
  EXPECT_EQ(paths.size(), 2u);
  EXPECT_DOUBLE_EQ(topo::path_latency(g, paths[0]), 2.0);
  EXPECT_DOUBLE_EQ(topo::path_latency(g, paths[1]), 3.0);
}

TEST(Yen, MatchesBruteForceOnGrid) {
  // 3x3 grid, unit latencies; compare Yen's k=6 against brute-force DFS
  // enumeration of simple paths sorted by latency.
  topo::Graph g;
  g.add_nodes(9);
  auto id = [](int r, int c) { return r * 3 + c; };
  for (int r = 0; r < 3; ++r) {
    for (int c = 0; c < 3; ++c) {
      if (c + 1 < 3) g.add_link(id(r, c), id(r, c + 1), 1.0, 1.0);
      if (r + 1 < 3) g.add_link(id(r, c), id(r + 1, c), 1.0, 1.0);
    }
  }
  auto yen = topo::yen_ksp(g, 0, 8, 6);
  ASSERT_EQ(yen.size(), 6u);

  // Brute force.
  std::vector<double> all_costs;
  std::vector<char> visited(9, 0);
  std::function<void(int, double)> dfs = [&](int v, double cost) {
    if (v == 8) {
      all_costs.push_back(cost);
      return;
    }
    visited[v] = 1;
    for (topo::EdgeId e : g.out_edges(v)) {
      int u = g.edge(e).dst;
      if (!visited[u]) dfs(u, cost + g.edge(e).latency);
    }
    visited[v] = 0;
  };
  dfs(0, 0.0);
  std::sort(all_costs.begin(), all_costs.end());
  for (std::size_t i = 0; i < yen.size(); ++i) {
    EXPECT_DOUBLE_EQ(topo::path_latency(g, yen[i]), all_costs[i]);
  }
}

TEST(Yen, PathsAreSimple) {
  auto g = topo::make_swan_like(1);
  auto paths = topo::yen_ksp(g, 0, g.num_nodes() - 1, 4);
  for (const auto& p : paths) {
    EXPECT_NO_THROW(topo::validate_path(g, p, 0, g.num_nodes() - 1));
  }
}

TEST(Topologies, Table1Counts) {
  EXPECT_EQ(topo::make_b4().num_nodes(), 12);
  EXPECT_EQ(topo::make_b4().num_edges(), 38);
  auto swan = topo::make_swan_like(1);
  EXPECT_EQ(swan.num_nodes(), 110);
  EXPECT_EQ(swan.num_edges(), 390);
  auto usc = topo::make_uscarrier_like(2);
  EXPECT_EQ(usc.num_nodes(), 158);
  EXPECT_EQ(usc.num_edges(), 378);
  auto kdl = topo::make_kdl_like(3);
  EXPECT_EQ(kdl.num_nodes(), 754);
  EXPECT_EQ(kdl.num_edges(), 1790);
  auto asn = topo::make_asn_like(4);
  EXPECT_EQ(asn.num_nodes(), 1739);
  EXPECT_EQ(asn.num_edges(), 8558);
}

TEST(Topologies, AllStronglyConnected) {
  EXPECT_TRUE(topo::make_b4().is_strongly_connected());
  EXPECT_TRUE(topo::make_swan_like(1).is_strongly_connected());
  EXPECT_TRUE(topo::make_uscarrier_like(2).is_strongly_connected());
  EXPECT_TRUE(topo::make_kdl_like(3).is_strongly_connected());
  EXPECT_TRUE(topo::make_asn_like(4).is_strongly_connected());
}

TEST(Topologies, DispatchByName) {
  EXPECT_EQ(topo::make_topology("B4").name(), "B4");
  EXPECT_EQ(topo::make_topology("ASN").num_nodes(), 1739);
  EXPECT_THROW(topo::make_topology("nope"), std::invalid_argument);
}

TEST(TopoStats, Table3Shapes) {
  // Hop statistics should land in the neighborhoods the paper reports
  // (Table 3); these are structure-matched synthetics, so assert ranges.
  auto b4 = topo::compute_stats(topo::make_b4());
  EXPECT_GT(b4.avg_shortest_path, 1.2);
  EXPECT_LT(b4.avg_shortest_path, 3.5);
  EXPECT_LE(b4.diameter, 6);

  auto usc = topo::compute_stats(topo::make_uscarrier_like(2));
  EXPECT_GT(usc.avg_shortest_path, 7.0);
  EXPECT_GT(usc.diameter, 18);

  auto asn = topo::compute_stats(topo::make_asn_like(4));
  EXPECT_LT(asn.avg_shortest_path, 5.0);  // star clusters => short paths
  EXPECT_LE(asn.diameter, 10);
}

TEST(TopoStats, RoutableDemandShare) {
  auto g = diamond();
  // One demand 0->3 with paths over edges {0,1} and {2,3}.
  std::vector<std::vector<topo::Path>> paths = {{{0, 1}, {2, 3}}};
  auto share = topo::routable_demand_share(g, paths);
  EXPECT_DOUBLE_EQ(share[0], 100.0);
  EXPECT_DOUBLE_EQ(share[2], 100.0);
  EXPECT_DOUBLE_EQ(share[4], 0.0);  // the direct 0->3 edge is unused
}

TEST(TopoStats, EmptyPathsGiveZeroShare) {
  auto g = diamond();
  auto share = topo::routable_demand_share(g, {});
  for (double s : share) EXPECT_DOUBLE_EQ(s, 0.0);
}

}  // namespace
}  // namespace teal
