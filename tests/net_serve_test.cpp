// End-to-end tests for the network serving layer over loopback TCP: an
// allocation served through net::Server must be byte-equal to a direct
// solve_into() on every bundled topology (the wire carries f64 bit patterns,
// so TCP is not allowed to perturb a single bit); overload must come back as
// an explicit shed frame with the serve-side ledger still balanced; an
// abrupt client disconnect mid-request must leak no replica and leave the
// server serving; and a protocol violation must poison only its own
// connection. Every fixture binds an ephemeral port (tests/net_test_util.h),
// so this binary is parallel-safe under `ctest -j` and runs in the TSan and
// ASan CI legs.
#include <gtest/gtest.h>

#include <sys/socket.h>

#include <cstring>
#include <thread>

#include "core/teal_scheme.h"
#include "net_test_util.h"
#include "net/slap.h"
#include "serve/replica.h"

namespace teal {
namespace {

using test::eventually;
using test::net_setup;
using test::NetFixture;

core::TealScheme make_teal(const te::Problem& pb) {
  return core::TealScheme(pb,
                          std::make_unique<core::TealModel>(core::TealModelConfig{},
                                                            pb.k_paths()),
                          core::TealSchemeConfig{});
}

void expect_bit_identical(const te::Allocation& a, const te::Allocation& b,
                          const std::string& what) {
  ASSERT_EQ(a.split.size(), b.split.size()) << what;
  if (!a.split.empty()) {
    EXPECT_EQ(std::memcmp(a.split.data(), b.split.data(),
                          a.split.size() * sizeof(double)),
              0)
        << what;
  }
}

// A replica that takes a fixed wall-clock time per solve (same shape as
// serve_test's) so overload and in-flight-disconnect timing are
// controllable independent of any real scheme.
class SlowReplica final : public serve::Replica {
 public:
  explicit SlowReplica(double seconds) : seconds_(seconds) {}
  void solve(const te::Problem& pb, const te::TrafficMatrix& tm, te::Allocation& out,
             double* seconds) override {
    std::this_thread::sleep_for(std::chrono::duration<double>(seconds_));
    out.split.assign(static_cast<std::size_t>(pb.total_paths()),
                     tm.volume.empty() ? 0.0 : tm.volume[0]);
    if (seconds != nullptr) *seconds = seconds_;
  }

 private:
  double seconds_;
};

TEST(NetServe, LoopbackSolveIsByteEqualToDirectSolveIntoOnAllTopologies) {
  for (const std::string& name : {"B4", "SWAN", "UsCarrier", "Kdl", "ASN"}) {
    auto s = net_setup(name);
    auto scheme = make_teal(s.pb);
    NetFixture fx(s.pb, serve::make_replicas(scheme, 2));
    auto client = fx.connect();
    for (int t = 0; t < s.trace.size(); ++t) {
      auto reply = client.solve(s.trace.at(t));
      ASSERT_EQ(reply.kind, net::Client::Reply::Kind::kResponse)
          << name << " interval " << t;
      EXPECT_GE(reply.solve_seconds, 0.0);
      te::Allocation direct;
      scheme.solve_into(s.pb, s.trace.at(t), direct);
      expect_bit_identical(direct, reply.alloc,
                           name + " interval " + std::to_string(t));
    }
  }
}

TEST(NetServe, PingPongOnAStandingConnection) {
  auto s = net_setup("B4", 60, 1);
  auto scheme = make_teal(s.pb);
  NetFixture fx(s.pb, serve::make_replicas(scheme, 1));
  auto client = fx.connect();
  for (int i = 0; i < 3; ++i) EXPECT_TRUE(client.ping());
  // The connection still serves solves after pings.
  EXPECT_EQ(client.solve(s.trace.at(0)).kind, net::Client::Reply::Kind::kResponse);
  auto stats = fx.server.stats();
  EXPECT_EQ(stats.sessions.pings, 3u);
}

TEST(NetServe, OverloadShedsWithExplicitShedFrame) {
  auto s = net_setup("B4", 60, 1);
  std::vector<serve::ReplicaPtr> replicas;
  replicas.push_back(std::make_unique<SlowReplica>(0.02));
  serve::ServeConfig scfg;
  scfg.queue_capacity = 64;
  // Depth bound 1: a request is admitted only while the queue is empty, so a
  // back-to-back burst must shed most of itself.
  scfg.deadline_seconds = 1.0;
  scfg.expected_solve_seconds = 1.0;
  NetFixture fx(s.pb, std::move(replicas), scfg);

  auto client = fx.connect();
  const int n = 12;
  for (int i = 0; i < n; ++i) client.send_solve(s.trace.at(0));
  int responses = 0, shed = 0;
  for (int i = 0; i < n; ++i) {
    auto reply = client.wait_reply();
    if (reply.kind == net::Client::Reply::Kind::kResponse) {
      ++responses;
    } else {
      ASSERT_EQ(reply.kind, net::Client::Reply::Kind::kShed);
      EXPECT_EQ(reply.shed_reason, net::ShedReason::kAdmission);
      ++shed;
    }
  }
  EXPECT_GE(responses, 1) << "an idle server must admit the first request";
  EXPECT_GT(shed, 0) << "a burst against depth bound 1 must shed";
  EXPECT_EQ(responses + shed, n) << "every request gets exactly one reply";

  // The serving ledger balances through the socket path too.
  fx.server.stop();
  auto stats = fx.backend.stop();
  EXPECT_EQ(stats.offered, static_cast<std::uint64_t>(n));
  EXPECT_EQ(stats.accepted + stats.shed, stats.offered);
  EXPECT_EQ(stats.completed, stats.accepted);
  auto net_stats = fx.server.stats();
  EXPECT_EQ(net_stats.sessions.requests, static_cast<std::uint64_t>(responses));
  EXPECT_EQ(net_stats.sessions.shed, static_cast<std::uint64_t>(shed));
}

TEST(NetServe, AbruptDisconnectMidRequestLeaksNoReplicaAndServerKeepsServing) {
  auto s = net_setup("B4", 60, 1);
  std::vector<serve::ReplicaPtr> replicas;
  replicas.push_back(std::make_unique<SlowReplica>(0.1));
  NetFixture fx(s.pb, std::move(replicas));

  {
    auto doomed = fx.connect();
    doomed.send_solve(s.trace.at(0));
    doomed.close();  // walk away while the replica is (about to be) solving
  }
  // The request completes inside the backend — into buffers the pending slot
  // owns, not the dead session — and is counted as a dropped response. Polled,
  // not drained: drain() can return before the I/O thread has even submitted
  // the request, so the drop count is the only honest signal of completion.
  ASSERT_TRUE(eventually([&] { return fx.server.stats().dropped_responses == 1; }));

  // The replica survived: a fresh client gets served on the same server.
  auto client = fx.connect();
  auto reply = client.solve(s.trace.at(0));
  ASSERT_EQ(reply.kind, net::Client::Reply::Kind::kResponse);
  EXPECT_EQ(reply.alloc.split.size(), static_cast<std::size_t>(s.pb.total_paths()));

  auto stats = fx.backend.stop();
  EXPECT_EQ(stats.offered, 2u);
  EXPECT_EQ(stats.completed, 2u) << "the disconnected request must still complete";
}

TEST(NetServe, MalformedStreamGetsErrorFrameAndOnlyThatConnectionDies) {
  auto s = net_setup("B4", 60, 1);
  auto scheme = make_teal(s.pb);
  NetFixture fx(s.pb, serve::make_replicas(scheme, 1));

  auto vandal = util::connect_tcp("127.0.0.1", fx.server.port());
  const char garbage[] = "GET / HTTP/1.1\r\n\r\n";
  ASSERT_TRUE(util::write_all(vandal, garbage, sizeof(garbage) - 1));
  // The server answers with an error frame naming the violation, then closes.
  net::FrameDecoder decoder;
  net::Frame f;
  std::uint8_t buf[4096];
  bool got_error = false, closed = false;
  while (!closed) {
    const int n = util::read_some(vandal, buf, sizeof(buf));
    if (n == 0) {
      closed = true;
    } else if (n > 0) {
      decoder.feed(buf, static_cast<std::size_t>(n));
      if (decoder.next(f) == net::DecodeStatus::kFrame) {
        EXPECT_EQ(f.type, net::FrameType::kError);
        net::ErrorCode code{};
        std::string message;
        ASSERT_TRUE(net::parse_error(f.payload, code, message));
        EXPECT_EQ(code, net::ErrorCode::kMalformed);
        got_error = true;
      }
    }
  }
  EXPECT_TRUE(got_error);

  // Other connections are unaffected.
  auto client = fx.connect();
  EXPECT_EQ(client.solve(s.trace.at(0)).kind, net::Client::Reply::Kind::kResponse);
  auto stats = fx.server.stats();
  EXPECT_GE(stats.sessions.protocol_errors, 1u);
}

TEST(NetServe, WrongDemandCountGetsTypedErrorAndConnectionSurvives) {
  auto s = net_setup("B4", 60, 1);
  auto scheme = make_teal(s.pb);
  NetFixture fx(s.pb, serve::make_replicas(scheme, 1));
  auto client = fx.connect();

  te::TrafficMatrix wrong;
  wrong.volume.assign(static_cast<std::size_t>(s.pb.num_demands()) + 3, 1.0);
  auto reply = client.solve(wrong);
  ASSERT_EQ(reply.kind, net::Client::Reply::Kind::kError);
  EXPECT_EQ(reply.error_code, net::ErrorCode::kBadDemandCount);
  EXPECT_NE(reply.error_message.find("demands"), std::string::npos);

  // Same connection, correct request: still served.
  EXPECT_EQ(client.solve(s.trace.at(0)).kind, net::Client::Reply::Kind::kResponse);
  auto stats = fx.server.stats();
  EXPECT_EQ(stats.sessions.bad_requests, 1u);
}

// Regression: a malformed solve-request *payload* (well-framed, inconsistent
// contents) must end the conversation like any other protocol violation —
// frames already buffered behind it stay unanswered. The decoder is not
// poisoned on this path, so the session itself has to stop decoding.
TEST(NetServe, NoFramesAreAnsweredAfterAMalformedSolvePayload) {
  auto s = net_setup("B4", 60, 1);
  auto scheme = make_teal(s.pb);
  NetFixture fx(s.pb, serve::make_replicas(scheme, 1));

  auto sock = util::connect_tcp("127.0.0.1", fx.server.port());
  // Hand-built frame: valid header declaring a 4-byte solve-request payload
  // whose contents claim a 5-byte tenant name but carry nothing after the
  // length — parse_solve_request must reject it. A valid ping rides in the
  // same write right behind it.
  std::vector<std::uint8_t> bytes;
  auto put_u32 = [&bytes](std::uint32_t v) {
    for (int i = 0; i < 4; ++i) bytes.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  };
  bytes.push_back(static_cast<std::uint8_t>(net::kWireMagic));
  bytes.push_back(static_cast<std::uint8_t>(net::kWireMagic >> 8));
  bytes.push_back(net::kWireVersion);
  bytes.push_back(static_cast<std::uint8_t>(net::FrameType::kSolveRequest));
  put_u32(9);  // request id
  put_u32(4);  // payload length
  put_u32(5);  // "5 demands follow" — they do not
  net::encode_ping(bytes, 10);
  ASSERT_TRUE(util::write_all(sock, bytes.data(), bytes.size()));

  // Exactly one error frame comes back, then EOF — never a pong.
  net::FrameDecoder decoder;
  net::Frame f;
  std::uint8_t buf[4096];
  int frames = 0;
  bool closed = false;
  while (!closed) {
    const int n = util::read_some(sock, buf, sizeof(buf));
    if (n == 0) {
      closed = true;
    } else if (n > 0) {
      decoder.feed(buf, static_cast<std::size_t>(n));
      while (decoder.next(f) == net::DecodeStatus::kFrame) {
        ++frames;
        EXPECT_EQ(f.type, net::FrameType::kError);
        EXPECT_EQ(f.request_id, 9u);
        net::ErrorCode code{};
        std::string message;
        ASSERT_TRUE(net::parse_error(f.payload, code, message));
        EXPECT_EQ(code, net::ErrorCode::kMalformed);
      }
    }
  }
  EXPECT_EQ(frames, 1) << "the ping behind the violation must stay unanswered";
  auto stats = fx.server.stats();
  EXPECT_EQ(stats.sessions.pings, 0u);
}

// Regression: the slow-reader cap used to only arm close-after-flush, but a
// peer that is not reading never drains the outbox, so the advertised
// disconnect never happened and the session kept answering — per-connection
// memory grew without bound. The overflow must hard-close: done() without
// waiting for a drain, and no frame handled after the cap trips.
TEST(NetServe, OutboxOverflowHardClosesWithoutWaitingForDrain) {
  auto s = net_setup("B4", 60, 1);
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  util::Socket server_end(fds[0]);
  util::Socket peer(fds[1]);
  // Tiny cap, and no flush() calls below: the outbox can only grow, exactly
  // like a non-reading peer behind full kernel buffers.
  net::Session session(1, std::move(server_end), net::kDefaultMaxPayload,
                       /*max_outbox=*/64);
  int submits = 0;
  const net::Session::SubmitFn submit =
      [&](net::Session&, std::uint32_t, const std::string&, te::TrafficMatrix&&,
          net::ShedReason&, int&) {
        ++submits;
        return net::SubmitOutcome::kAccepted;
      };

  std::vector<std::uint8_t> bytes;
  for (std::uint32_t i = 0; i < 32; ++i) net::encode_ping(bytes, i);
  ASSERT_TRUE(util::write_all(peer, bytes.data(), bytes.size()));
  EXPECT_TRUE(session.on_readable(submit));

  EXPECT_TRUE(session.wants_write()) << "outbox must still hold undelivered pongs";
  EXPECT_TRUE(session.done()) << "overflow must finish the session undrained";
  const auto tripped = session.stats();
  EXPECT_LT(tripped.pings, 32u) << "the cap must stop frame handling mid-burst";

  // Whatever the peer sends now is discarded, not decoded or answered.
  bytes.clear();
  net::encode_ping(bytes, 99);
  ASSERT_TRUE(util::write_all(peer, bytes.data(), bytes.size()));
  EXPECT_TRUE(session.on_readable(submit));
  EXPECT_EQ(session.stats().pings, tripped.pings);
  EXPECT_EQ(submits, 0);
}

// Same protection end-to-end: a client that floods pings and never reads its
// pongs gets disconnected by the server instead of growing its outbox.
TEST(NetServe, ServerDisconnectsAClientThatNeverReads) {
  auto s = net_setup("B4", 60, 1);
  auto scheme = make_teal(s.pb);
  net::NetServerConfig ncfg;
  ncfg.max_outbox_bytes = 1024;
  NetFixture fx(s.pb, serve::make_replicas(scheme, 1), {}, ncfg);

  auto sock = util::connect_tcp("127.0.0.1", fx.server.port());
  std::vector<std::uint8_t> bytes;
  for (std::uint32_t i = 0; i < 10000; ++i) net::encode_ping(bytes, i);
  // The server may hard-close mid-write (that is the point), so the send is
  // allowed to fail partway — only the disconnect below is asserted.
  (void)util::write_all(sock, bytes.data(), bytes.size());
  EXPECT_TRUE(eventually([&] { return fx.server.stats().connections_closed == 1; }))
      << "a never-reading client must be hard-closed, not buffered forever";

  // The server survives it and keeps serving well-behaved clients.
  auto client = fx.connect();
  EXPECT_EQ(client.solve(s.trace.at(0)).kind, net::Client::Reply::Kind::kResponse);
}

// Regression: when the backend stops independently of the net server, the
// shed frame must name kStopping — not an admission/queue-full guess made
// from the server's configuration.
TEST(NetServe, BackendStoppedIndependentlyShedsWithStoppingReason) {
  auto s = net_setup("B4", 60, 1);
  auto scheme = make_teal(s.pb);
  NetFixture fx(s.pb, serve::make_replicas(scheme, 1));
  auto client = fx.connect();
  EXPECT_EQ(client.solve(s.trace.at(0)).kind, net::Client::Reply::Kind::kResponse);

  fx.backend.stop();  // net server still up; its queue refusals now say why
  auto reply = client.solve(s.trace.at(0));
  ASSERT_EQ(reply.kind, net::Client::Reply::Kind::kShed);
  EXPECT_EQ(reply.shed_reason, net::ShedReason::kStopping);
}

TEST(NetServe, ClientSendingServerOnlyFramesGetsUnsupportedType) {
  auto s = net_setup("B4", 60, 1);
  auto scheme = make_teal(s.pb);
  NetFixture fx(s.pb, serve::make_replicas(scheme, 1));

  auto sock = util::connect_tcp("127.0.0.1", fx.server.port());
  std::vector<std::uint8_t> bytes;
  net::encode_pong(bytes, 77);  // clients have no business ponging first
  ASSERT_TRUE(util::write_all(sock, bytes.data(), bytes.size()));
  net::FrameDecoder decoder;
  net::Frame f;
  std::uint8_t buf[4096];
  for (;;) {
    const int n = util::read_some(sock, buf, sizeof(buf));
    ASSERT_GT(n, 0) << "connection must stay open for unsupported-type errors";
    decoder.feed(buf, static_cast<std::size_t>(n));
    if (decoder.next(f) == net::DecodeStatus::kFrame) break;
  }
  EXPECT_EQ(f.type, net::FrameType::kError);
  net::ErrorCode code{};
  std::string message;
  ASSERT_TRUE(net::parse_error(f.payload, code, message));
  EXPECT_EQ(code, net::ErrorCode::kUnsupportedType);
  EXPECT_EQ(f.request_id, 77u);
}

TEST(NetServe, AccountingBalancesAcrossConnections) {
  auto s = net_setup("B4", 60, 2);
  auto scheme = make_teal(s.pb);
  NetFixture fx(s.pb, serve::make_replicas(scheme, 2));
  {
    auto a = fx.connect();
    auto b = fx.connect();
    for (int i = 0; i < 3; ++i) {
      EXPECT_EQ(a.solve(s.trace.at(0)).kind, net::Client::Reply::Kind::kResponse);
      EXPECT_EQ(b.solve(s.trace.at(1)).kind, net::Client::Reply::Kind::kResponse);
    }
    EXPECT_TRUE(a.ping());
    auto stats = fx.server.stats();
    EXPECT_EQ(stats.connections_accepted, 2u);
    EXPECT_EQ(stats.sessions.requests, 6u);
    EXPECT_EQ(stats.sessions.responses, 6u);
    EXPECT_EQ(stats.sessions.pings, 1u);
    EXPECT_EQ(stats.sessions.frames_in, 7u);
    EXPECT_EQ(stats.sessions.frames_out, 7u);
  }
  // Both clients hung up; the server notices and retires the sessions with
  // their accounting folded into the totals.
  EXPECT_TRUE(eventually([&] { return fx.server.stats().connections_closed == 2; }));
  auto stats = fx.server.stats();
  EXPECT_EQ(stats.sessions.requests, 6u);
  EXPECT_EQ(stats.sessions.responses, 6u);
}

TEST(NetServe, StopIsIdempotentAndRefusesLateClients) {
  auto s = net_setup("B4", 60, 1);
  auto scheme = make_teal(s.pb);
  NetFixture fx(s.pb, serve::make_replicas(scheme, 1));
  auto client = fx.connect();
  EXPECT_EQ(client.solve(s.trace.at(0)).kind, net::Client::Reply::Kind::kResponse);
  fx.server.stop();
  fx.server.stop();  // idempotent
  EXPECT_THROW(
      {
        auto late = fx.connect();
        late.solve(s.trace.at(0));
      },
      std::exception);  // refused connect or immediate close — either is fine
}

TEST(NetServe, SlapOpenLoopLedgerBalances) {
  auto s = net_setup("B4", 60, 2);
  auto scheme = make_teal(s.pb);
  NetFixture fx(s.pb, serve::make_replicas(scheme, 2));

  net::SlapConfig cfg;
  cfg.port = fx.server.port();
  cfg.connections = 2;
  cfg.target_rps = 200.0;
  cfg.duration_seconds = 0.5;
  std::vector<te::TrafficMatrix> requests = {s.trace.at(0), s.trace.at(1)};
  auto stats = net::run_slap(cfg, requests);
  EXPECT_GT(stats.offered, 0u);
  EXPECT_EQ(stats.offered, stats.responses + stats.shed + stats.errors + stats.dropped);
  EXPECT_EQ(stats.errors, 0u);
  EXPECT_EQ(stats.dropped, 0u);
  EXPECT_EQ(stats.latency.count(), stats.responses);
  EXPECT_GT(stats.latency.percentile(50.0), 0.0);
}

}  // namespace
}  // namespace teal
