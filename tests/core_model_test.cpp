// Tests for FlowGNN, the policy network, and the end-to-end TealModel —
// including a full finite-difference gradient check through message passing,
// DNN coordination layers, widening, and the policy head.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>

#include "core/model.h"
#include "core/teal_scheme.h"
#include "topo/topology.h"
#include "traffic/traffic.h"

namespace teal {
namespace {

te::Problem tiny_problem() {
  topo::Graph g("tiny");
  g.add_nodes(4);
  g.add_link(0, 1, 10, 1.0);
  g.add_link(1, 3, 12, 1.0);
  g.add_link(0, 2, 8, 1.2);
  g.add_link(2, 3, 9, 1.1);
  g.add_link(1, 2, 7, 0.9);
  return te::Problem(std::move(g), {{0, 3}, {3, 0}, {1, 2}}, 4);
}

te::TrafficMatrix tiny_tm() {
  te::TrafficMatrix tm;
  tm.volume = {5.0, 3.0, 2.0};
  return tm;
}

TEST(FlowGnn, ForwardShapes) {
  auto pb = tiny_problem();
  util::Rng rng(1);
  core::FlowGnnConfig cfg;
  cfg.n_blocks = 6;
  core::FlowGnn gnn(cfg, 4, rng);
  auto fwd = gnn.forward(pb, tiny_tm());
  EXPECT_EQ(fwd.final_paths.rows(), pb.total_paths());
  EXPECT_EQ(fwd.final_paths.cols(), 6);
  EXPECT_EQ(static_cast<int>(fwd.blocks.size()), 6);
  // Block l works at dim l+1.
  for (int l = 0; l < 6; ++l) {
    EXPECT_EQ(fwd.blocks[static_cast<std::size_t>(l)].path_in.cols(), l + 1);
  }
}

TEST(FlowGnn, EmbeddingsDependOnDemandVolume) {
  auto pb = tiny_problem();
  util::Rng rng(1);
  core::FlowGnn gnn({}, 4, rng);
  auto tm1 = tiny_tm();
  auto f1 = gnn.forward(pb, tm1);
  auto tm2 = tiny_tm();
  tm2.volume[0] *= 3.0;
  auto f2 = gnn.forward(pb, tm2);
  double diff = 0.0;
  for (std::size_t i = 0; i < f1.final_paths.data().size(); ++i) {
    diff += std::abs(f1.final_paths.data()[i] - f2.final_paths.data()[i]);
  }
  EXPECT_GT(diff, 1e-6);
}

TEST(FlowGnn, EmbeddingsDependOnCapacities) {
  auto pb = tiny_problem();
  util::Rng rng(1);
  core::FlowGnn gnn({}, 4, rng);
  auto caps = pb.capacities();
  auto f1 = gnn.forward(pb, tiny_tm(), &caps);
  caps[0] = 0.0;  // fail a link
  auto f2 = gnn.forward(pb, tiny_tm(), &caps);
  double diff = 0.0;
  for (std::size_t i = 0; i < f1.final_paths.data().size(); ++i) {
    diff += std::abs(f1.final_paths.data()[i] - f2.final_paths.data()[i]);
  }
  EXPECT_GT(diff, 1e-6);
}

TEST(TealModel, EndToEndGradCheck) {
  // Full finite-difference check of d(loss)/d(theta) for a random linear
  // loss on the logits, through policy net + FlowGNN.
  auto pb = tiny_problem();
  core::TealModelConfig cfg;
  cfg.gnn.n_blocks = 3;  // smaller model keeps the check fast
  cfg.policy.hidden_dim = 8;
  core::TealModel model(cfg, pb.k_paths(), 7);
  auto tm = tiny_tm();

  util::Rng rng(3);
  nn::Mat coef(pb.num_demands(), pb.k_paths());
  for (auto& v : coef.data()) v = rng.normal();

  auto eval = [&] {
    auto fwd = model.forward(pb, tm);
    double s = 0.0;
    for (std::size_t i = 0; i < fwd.logits.data().size(); ++i) {
      s += fwd.logits.data()[i] * coef.data()[i];
    }
    return s;
  };

  auto fwd = model.forward(pb, tm);
  for (auto* p : model.params()) p->zero_grad();
  model.backward(pb, fwd, coef);

  const double eps = 1e-6;
  int checked = 0;
  for (auto* p : model.params()) {
    // Spot-check a handful of entries per parameter to keep runtime sane.
    for (std::size_t i = 0; i < p->w.data().size(); i += std::max<std::size_t>(1, p->w.data().size() / 4)) {
      double orig = p->w.data()[i];
      p->w.data()[i] = orig + eps;
      double up = eval();
      p->w.data()[i] = orig - eps;
      double down = eval();
      p->w.data()[i] = orig;
      double numeric = (up - down) / (2 * eps);
      EXPECT_NEAR(p->g.data()[i], numeric, 1e-4 * std::max(1.0, std::abs(numeric)));
      ++checked;
    }
  }
  EXPECT_GT(checked, 20);
}

TEST(TealModel, MaskZeroesMissingPaths) {
  // A demand pair with fewer than 4 simple paths must get zero splits there.
  topo::Graph g("line");
  g.add_nodes(3);
  g.add_link(0, 1, 10, 1.0);
  g.add_link(1, 2, 10, 1.0);
  te::Problem pb(std::move(g), {{0, 2}}, 4);
  ASSERT_EQ(pb.num_paths(0), 1);  // only one simple path exists
  core::TealModel model({}, pb.k_paths(), 5);
  te::TrafficMatrix tm;
  tm.volume = {1.0};
  auto fwd = model.forward(pb, tm);
  auto splits = core::splits_from_logits(fwd.logits, fwd.mask);
  EXPECT_NEAR(splits.at(0, 0), 1.0, 1e-12);
  for (int c = 1; c < 4; ++c) EXPECT_DOUBLE_EQ(splits.at(0, c), 0.0);
}

TEST(TealModel, SplitsFormValidAllocation) {
  auto pb = tiny_problem();
  core::TealModel model({}, pb.k_paths(), 11);
  auto fwd = model.forward(pb, tiny_tm());
  auto splits = core::splits_from_logits(fwd.logits, fwd.mask);
  auto alloc = core::allocation_from_splits(pb, splits);
  EXPECT_NO_THROW(pb.validate_allocation(alloc));
  // Softmax routes everything: per-demand sums are exactly 1.
  for (int d = 0; d < pb.num_demands(); ++d) {
    double sum = 0.0;
    for (int p = pb.path_begin(d); p < pb.path_end(d); ++p) {
      sum += alloc.split[static_cast<std::size_t>(p)];
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST(TealModel, SaveLoadPreservesOutputs) {
  auto pb = tiny_problem();
  core::TealModel a({}, pb.k_paths(), 21);
  auto path = (std::filesystem::temp_directory_path() / "teal_model_test.bin").string();
  a.save(path);
  core::TealModel b({}, pb.k_paths(), 99);  // different init
  ASSERT_TRUE(b.load(path));
  auto fa = a.forward(pb, tiny_tm());
  auto fb = b.forward(pb, tiny_tm());
  for (std::size_t i = 0; i < fa.logits.data().size(); ++i) {
    EXPECT_DOUBLE_EQ(fa.logits.data()[i], fb.logits.data()[i]);
  }
  std::filesystem::remove(path);
}

TEST(PolicyNet, LayerCountConfigurable) {
  util::Rng rng(31);
  for (int layers : {1, 2, 4}) {
    core::PolicyConfig pc;
    pc.n_hidden_layers = layers;
    core::PolicyNet net(pc, 24, 4, rng);
    nn::Mat x(5, 24, 0.1);
    auto fwd = net.forward(x);
    EXPECT_EQ(fwd.logits.rows(), 5);
    EXPECT_EQ(fwd.logits.cols(), 4);
  }
}

TEST(MaskGuard, FullyMaskedRowWithPathsThrows) {
  // The policy-boundary contract: a demand that owns paths must keep at
  // least one nonzero mask entry, otherwise the masked softmax emits an
  // all-zero split row that downstream ADMM consumes silently.
  auto pb = tiny_problem();
  nn::Mat mask(pb.num_demands(), pb.k_paths(), 1.0);
  EXPECT_NO_THROW(core::check_policy_mask_rows(pb, mask, 0, pb.num_demands()));
  for (int c = 0; c < pb.k_paths(); ++c) mask.at(1, c) = 0.0;
  EXPECT_THROW(core::check_policy_mask_rows(pb, mask, 0, pb.num_demands()),
               std::logic_error);
  // A slice that does not cover the offending demand stays clean (the solve
  // path checks per shard slice).
  EXPECT_NO_THROW(core::check_policy_mask_rows(pb, mask, 2, pb.num_demands()));
}

// A model that zeroes the mask row of demand 0 — which does have paths —
// mimicking a buggy masked-variant or corrupted path structure.
class ZeroMaskModel : public core::TealModel {
 public:
  using core::TealModel::TealModel;
  void forward_ws(const te::Problem& pb, const te::TrafficMatrix& tm,
                  const std::vector<double>* capacities, core::ModelForward& fwd,
                  const core::ShardPlan& shards,
                  core::ShardStat* stats) const override {
    core::TealModel::forward_ws(pb, tm, capacities, fwd, shards, stats);
    for (int c = 0; c < fwd.mask.cols(); ++c) fwd.mask.at(0, c) = 0.0;
  }
};

TEST(MaskGuard, SchemeSolveRejectsFullyMaskedDemand) {
  // Regression for the silent-zero-allocation bug: the solve must throw at
  // the policy boundary instead of handing ADMM an all-zero split row.
  auto pb = tiny_problem();
  core::TealScheme scheme(
      pb, std::make_unique<ZeroMaskModel>(core::TealModelConfig{}, pb.k_paths(), 5),
      core::TealSchemeConfig{});
  EXPECT_THROW(scheme.solve(pb, tiny_tm()), std::logic_error);
}

TEST(MaskGuard, ValidModelSolvesClean) {
  // The guard must not fire on the healthy pipeline (every demand here has
  // at least one path, so every mask row has a nonzero entry).
  auto pb = tiny_problem();
  core::TealScheme scheme(
      pb, std::make_unique<core::TealModel>(core::TealModelConfig{}, pb.k_paths(), 5),
      core::TealSchemeConfig{});
  EXPECT_NO_THROW(scheme.solve(pb, tiny_tm()));
}

TEST(FlowGnn, ComputationIndependentOfTrafficValues) {
  // §5.2: Teal's flop count does not depend on the traffic matrix values —
  // identical shapes in, identical shapes out, no data-dependent branching.
  auto pb = tiny_problem();
  util::Rng rng(1);
  core::FlowGnn gnn({}, 4, rng);
  auto tm_small = tiny_tm();
  auto tm_large = tiny_tm();
  for (auto& v : tm_large.volume) v *= 1000.0;
  auto f1 = gnn.forward(pb, tm_small);
  auto f2 = gnn.forward(pb, tm_large);
  EXPECT_TRUE(f1.final_paths.same_shape(f2.final_paths));
}

}  // namespace
}  // namespace teal
