// Parameterized property suites (TEST_P): invariants that must hold across
// topologies, seeds, objectives and schemes.
#include <gtest/gtest.h>

#include <memory>

#include "baselines/lp_schemes.h"
#include "baselines/ncflow.h"
#include "baselines/pop.h"
#include "core/admm.h"
#include "core/model.h"
#include "te/objective.h"
#include "topo/topology.h"
#include "traffic/traffic.h"

namespace teal {
namespace {

struct Instance {
  std::string topo;
  int n_demands;
  double util;
  std::uint64_t seed;
};

std::string instance_name(const testing::TestParamInfo<Instance>& info) {
  return info.param.topo + "_d" + std::to_string(info.param.n_demands) + "_s" +
         std::to_string(info.param.seed);
}

struct Built {
  te::Problem pb;
  traffic::Trace trace;
};

Built build(const Instance& in) {
  auto g = topo::make_topology(in.topo, in.seed);
  auto demands = traffic::sample_demands(g, in.n_demands, in.seed + 1);
  te::Problem pb(std::move(g), std::move(demands), 4);
  traffic::TraceConfig cfg;
  cfg.n_intervals = 4;
  cfg.seed = in.seed + 2;
  auto trace = traffic::generate_trace(pb, cfg);
  traffic::calibrate_capacities(pb, trace, in.util);
  return Built{std::move(pb), std::move(trace)};
}

class SchemeProperties : public testing::TestWithParam<Instance> {};

TEST_P(SchemeProperties, ProblemStructureInvariants) {
  auto b = build(GetParam());
  const auto& pb = b.pb;
  EXPECT_GT(pb.num_demands(), 0);
  for (int d = 0; d < pb.num_demands(); ++d) {
    ASSERT_GE(pb.num_paths(d), 1);
    ASSERT_LE(pb.num_paths(d), 4);
    double prev = -1.0;
    for (int p = pb.path_begin(d); p < pb.path_end(d); ++p) {
      EXPECT_EQ(pb.demand_of_path(p), d);
      topo::validate_path(pb.graph(), pb.path_edges(p), pb.demand(d).src, pb.demand(d).dst);
      // Yen returns nondecreasing latency.
      EXPECT_GE(pb.path_latency(p), prev - 1e-12);
      prev = pb.path_latency(p);
    }
  }
  // Inverted index consistency.
  for (topo::EdgeId e = 0; e < pb.graph().num_edges(); ++e) {
    for (int p : pb.paths_on_edge(e)) {
      bool found = false;
      for (topo::EdgeId pe : pb.path_edges(p)) found |= pe == e;
      EXPECT_TRUE(found);
    }
  }
}

TEST_P(SchemeProperties, LpIsFeasibleAndDominant) {
  auto b = build(GetParam());
  baselines::LpAllScheme lp_all;
  baselines::LpTopScheme lp_top;
  baselines::PopConfig pop_cfg;
  pop_cfg.k = 4;
  baselines::PopScheme pop(pop_cfg);
  const auto& tm = b.trace.at(0);
  auto a_all = lp_all.solve(b.pb, tm);
  b.pb.validate_allocation(a_all, 1e-6);
  double f_all = te::total_feasible_flow(b.pb, tm, a_all);
  for (te::Scheme* s : std::initializer_list<te::Scheme*>{&lp_top, &pop}) {
    auto a = s->solve(b.pb, tm);
    b.pb.validate_allocation(a, 1e-6);
    double f = te::total_feasible_flow(b.pb, tm, a);
    EXPECT_LE(f, f_all * 1.01) << s->name();
    EXPECT_GE(f, 0.0) << s->name();
  }
}

TEST_P(SchemeProperties, RepairAlwaysFeasible) {
  auto b = build(GetParam());
  const auto& tm = b.trace.at(0);
  // Worst-case allocation: everything on the shortest path.
  auto a = te::repair_to_feasible(b.pb, tm, b.pb.shortest_path_allocation());
  auto load = te::edge_loads(b.pb, tm, a);
  auto caps = b.pb.capacities();
  for (std::size_t e = 0; e < load.size(); ++e) {
    EXPECT_LE(load[e], caps[e] * (1.0 + 1e-9)) << "edge " << e;
  }
  b.pb.validate_allocation(a, 1e-9);
}

TEST_P(SchemeProperties, RepairedFlowNeverExceedsDelivered) {
  // Feasible repair is conservative: it can only lose intended flow, and its
  // post-repair delivered flow equals its intended flow.
  auto b = build(GetParam());
  const auto& tm = b.trace.at(0);
  auto raw = b.pb.shortest_path_allocation();
  auto fixed = te::repair_to_feasible(b.pb, tm, raw);
  double intended = 0.0;
  for (int p = 0; p < b.pb.total_paths(); ++p) {
    intended += fixed.split[static_cast<std::size_t>(p)] *
                tm.volume[static_cast<std::size_t>(b.pb.demand_of_path(p))];
  }
  EXPECT_NEAR(te::total_feasible_flow(b.pb, tm, fixed), intended, 1e-6 * (1.0 + intended));
}

TEST_P(SchemeProperties, AdmmNeverBreaksDemandConstraint) {
  auto b = build(GetParam());
  core::Admm admm(b.pb, {});
  auto a = b.pb.shortest_path_allocation();
  admm.fine_tune(b.trace.at(0), b.pb.capacities(), a);
  EXPECT_NO_THROW(b.pb.validate_allocation(a, 1e-6));
}

TEST_P(SchemeProperties, UntrainedModelStillProducesValidSplits) {
  auto b = build(GetParam());
  core::TealModel model({}, b.pb.k_paths(), GetParam().seed);
  auto fwd = model.forward_m(b.pb, b.trace.at(0));
  auto splits = core::splits_from_logits(fwd.logits, fwd.mask);
  auto a = core::allocation_from_splits(b.pb, splits);
  EXPECT_NO_THROW(b.pb.validate_allocation(a, 1e-9));
}

INSTANTIATE_TEST_SUITE_P(
    Topologies, SchemeProperties,
    testing::Values(Instance{"B4", 1 << 20, 1.5, 1}, Instance{"B4", 1 << 20, 3.0, 2},
                    Instance{"SWAN", 800, 1.8, 3}, Instance{"SWAN", 800, 1.2, 4},
                    Instance{"UsCarrier", 500, 1.8, 5}),
    instance_name);

// ---- Objective sweep: evaluation functions behave sanely for any objective.

class ObjectiveProperties
    : public testing::TestWithParam<std::tuple<te::Objective, std::uint64_t>> {};

TEST_P(ObjectiveProperties, ScoreMonotoneInCapacity) {
  auto [obj, seed] = GetParam();
  auto b = build(Instance{"B4", 1 << 20, 2.0, seed});
  const auto& tm = b.trace.at(0);
  auto a = b.pb.shortest_path_allocation();
  auto caps = b.pb.capacities();
  double base = te::objective_score(b.pb, tm, a, obj, &caps);
  // Doubling capacities can only help (or tie) every objective.
  for (double& c : caps) c *= 2.0;
  double richer = te::objective_score(b.pb, tm, a, obj, &caps);
  EXPECT_GE(richer, base - 1e-9);
}

TEST_P(ObjectiveProperties, EmptyAllocationScoresZeroFlow) {
  auto [obj, seed] = GetParam();
  auto b = build(Instance{"B4", 1 << 20, 2.0, seed});
  auto empty = b.pb.empty_allocation();
  const auto& tm = b.trace.at(0);
  if (obj == te::Objective::kMinMaxLinkUtil) {
    EXPECT_DOUBLE_EQ(te::max_link_utilization(b.pb, tm, empty), 0.0);
  } else {
    EXPECT_DOUBLE_EQ(te::objective_score(b.pb, tm, empty, obj), 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Objectives, ObjectiveProperties,
    testing::Combine(testing::Values(te::Objective::kTotalFlow,
                                     te::Objective::kMinMaxLinkUtil,
                                     te::Objective::kLatencyPenalizedFlow),
                     testing::Values(11u, 12u)));

// ---- Feasibility-repair randomized sweep.

class RandomAllocationProperties : public testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomAllocationProperties, RepairHandlesArbitrarySplits) {
  auto b = build(Instance{"B4", 1 << 20, 1.5, GetParam()});
  util::Rng rng(GetParam() * 7919);
  auto a = b.pb.empty_allocation();
  for (double& s : a.split) s = rng.uniform(0.0, 1.0);
  const auto& tm = b.trace.at(0);
  auto fixed = te::repair_to_feasible(b.pb, tm, a);
  b.pb.validate_allocation(fixed, 1e-9);
  auto load = te::edge_loads(b.pb, tm, fixed);
  auto caps = b.pb.capacities();
  for (std::size_t e = 0; e < load.size(); ++e) {
    EXPECT_LE(load[e], caps[e] * (1.0 + 1e-9));
  }
}

TEST_P(RandomAllocationProperties, DeliveredNeverExceedsIntendedOrDemand) {
  auto b = build(Instance{"SWAN", 600, 1.5, GetParam()});
  util::Rng rng(GetParam() * 104729);
  auto a = b.pb.empty_allocation();
  for (int d = 0; d < b.pb.num_demands(); ++d) {
    double rest = 1.0;
    for (int p = b.pb.path_begin(d); p < b.pb.path_end(d); ++p) {
      double s = rng.uniform(0.0, rest);
      a.split[static_cast<std::size_t>(p)] = s;
      rest -= s;
    }
  }
  const auto& tm = b.trace.at(0);
  auto delivered = te::delivered_per_path(b.pb, tm, a);
  for (int p = 0; p < b.pb.total_paths(); ++p) {
    double intended = a.split[static_cast<std::size_t>(p)] *
                      tm.volume[static_cast<std::size_t>(b.pb.demand_of_path(p))];
    EXPECT_LE(delivered[static_cast<std::size_t>(p)], intended + 1e-9);
  }
  EXPECT_LE(te::total_feasible_flow(b.pb, tm, a), tm.total() + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomAllocationProperties, testing::Values(1u, 2u, 3u, 4u));

}  // namespace
}  // namespace teal
