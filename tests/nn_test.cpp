// Unit tests for the NN substrate, including finite-difference gradient
// checks of every layer primitive.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <limits>

#include "nn/mat.h"
#include "nn/module.h"
#include "nn/packed.h"
#include "util/rng.h"

namespace teal {
namespace {

// Finite-difference gradient check helper: perturbs each entry of `param`,
// evaluates the scalar loss via `eval`, and compares to `analytic`.
template <typename Param, typename Analytic, typename Eval>
void check_grad(Param& param, const Analytic& analytic,
                Eval eval, double eps = 1e-6, double tol = 1e-5) {
  ASSERT_EQ(param.size(), analytic.size());
  for (std::size_t i = 0; i < param.size(); ++i) {
    double orig = param[i];
    param[i] = orig + eps;
    double up = eval();
    param[i] = orig - eps;
    double down = eval();
    param[i] = orig;
    double numeric = (up - down) / (2 * eps);
    EXPECT_NEAR(analytic[i], numeric, tol * std::max(1.0, std::abs(numeric)))
        << "param index " << i;
  }
}

TEST(Mat, FloatInstantiationShapeAndAccess) {
  nn::MatF m(2, 3, 1.5f);
  EXPECT_EQ(m.rows(), 2);
  EXPECT_EQ(m.cols(), 3);
  m.at(1, 2) = 7.0f;
  EXPECT_FLOAT_EQ(m.at(1, 2), 7.0f);
  EXPECT_FLOAT_EQ(m.at(0, 0), 1.5f);
  m.zero();
  EXPECT_FLOAT_EQ(m.at(1, 2), 0.0f);
}

TEST(Mat, FloatLinearForwardKnownValues) {
  nn::MatF x(1, 2);
  x.at(0, 0) = 1.0f;
  x.at(0, 1) = 2.0f;
  nn::MatF w(1, 2);
  w.at(0, 0) = 3.0f;
  w.at(0, 1) = 4.0f;
  nn::MatF y;
  nn::linear_forward(x, w, std::vector<float>{0.5f}, y);
  EXPECT_FLOAT_EQ(y.at(0, 0), 11.5f);
}

TEST(Mat, FloatSoftmaxRowsSumToOne) {
  nn::MatF logits(1, 3);
  logits.at(0, 0) = 1.0f;
  logits.at(0, 1) = 2.0f;
  logits.at(0, 2) = 3.0f;
  nn::MatF empty_mask, probs;
  nn::softmax_rows(logits, empty_mask, probs);
  EXPECT_NEAR(probs.at(0, 0) + probs.at(0, 1) + probs.at(0, 2), 1.0f, 1e-6f);
  EXPECT_GT(probs.at(0, 2), probs.at(0, 0));
}

TEST(Mat, ResizePoisonContractUnderDebugMat) {
  // Under TEAL_DEBUG_MAT every resize — including a warm same-shape one —
  // poison-fills with signaling NaNs, enforcing the documented "element
  // values are unspecified" contract. Without the option the contract is
  // still "unspecified", so this test only asserts the poison when the
  // build enables it.
  if (!nn::debug_mat_enabled()) {
    GTEST_SKIP() << "TEAL_DEBUG_MAT is off in this build";
  }
  nn::Mat m(2, 2, 1.0);
  m.resize(2, 2);  // same shape: still poisons
  for (double v : m.data()) EXPECT_TRUE(std::isnan(v));
  nn::MatF f(1, 3, 1.0f);
  f.resize(2, 3);
  for (float v : f.data()) EXPECT_TRUE(std::isnan(v));
}

TEST(Mat, NegativeShapeThrowsInvalidArgument) {
  // The documented exception, before any size_t wrap-around reaches the
  // vector (a -1 dimension would otherwise request ~1e19 elements).
  EXPECT_THROW(nn::Mat(-1, 3), std::invalid_argument);
  EXPECT_THROW(nn::Mat(3, -1), std::invalid_argument);
  EXPECT_THROW(nn::MatF(-1, -1), std::invalid_argument);
  nn::Mat m(2, 2);
  EXPECT_THROW(m.resize(-1, 2), std::invalid_argument);
  EXPECT_EQ(m.rows(), 2);  // failed resize leaves the shape untouched
}

TEST(Mat, PoisonFillsSignalingNaNs) {
  nn::Mat m(2, 3, 1.0);
  m.poison();
  for (double v : m.data()) EXPECT_TRUE(std::isnan(v));
}

TEST(LinearF32, SnapshotMatchesDoubleForward) {
  util::Rng rng(15);
  nn::Linear lin(6, 4, rng);
  nn::Mat x(3, 6);
  for (auto& v : x.data()) v = rng.normal();
  nn::Mat y;
  lin.forward(x, y);

  nn::LinearF32 snap = lin.snapshot_f32();
  EXPECT_EQ(snap.in_features(), 6);
  EXPECT_EQ(snap.out_features(), 4);
  nn::MatF xf(3, 6), yf(3, 4);
  for (std::size_t i = 0; i < x.data().size(); ++i) {
    xf.data()[i] = static_cast<float>(x.data()[i]);
  }
  snap.forward_rows(xf, yf, 0, 3);
  for (std::size_t i = 0; i < y.data().size(); ++i) {
    EXPECT_NEAR(static_cast<double>(yf.data()[i]), y.data()[i], 1e-5);
  }
}

// ---- bf16 storage type ---------------------------------------------------

TEST(Bf16, WidenIsExactRoundTrip) {
  // bf16 is f32 with the low mantissa bits dropped, so widening a bf16 and
  // re-narrowing it must be the identity (every bf16 value is exactly
  // representable in f32).
  for (std::uint32_t hi : {0x0000u, 0x3F80u, 0xC2C8u, 0x7F80u, 0x0001u, 0x8000u}) {
    nn::bf16 h{static_cast<std::uint16_t>(hi)};
    EXPECT_EQ(nn::bf16_from_f32(nn::f32_from_bf16(h)).bits, h.bits) << hi;
  }
  EXPECT_FLOAT_EQ(nn::f32_from_bf16(nn::bf16{0x3F80}), 1.0f);
  EXPECT_FLOAT_EQ(nn::f32_from_bf16(nn::bf16{0xC2C8}), -100.0f);
}

TEST(Bf16, RoundsToNearestEven) {
  // 1.0f + one ulp-of-bf16/2 sits exactly between two bf16 values: RNE must
  // pick the even low bit. 0x3F808000 is the midpoint between 0x3F80 (even)
  // and 0x3F81 (odd) -> rounds down; 0x3F818000 is the midpoint between
  // 0x3F81 and 0x3F82 -> rounds up to the even 0x3F82.
  EXPECT_EQ(nn::bf16_from_f32(std::bit_cast<float>(0x3F808000u)).bits, 0x3F80);
  EXPECT_EQ(nn::bf16_from_f32(std::bit_cast<float>(0x3F818000u)).bits, 0x3F82);
  // Just past the midpoint rounds away.
  EXPECT_EQ(nn::bf16_from_f32(std::bit_cast<float>(0x3F808001u)).bits, 0x3F81);
  // Relative rounding error is bounded by 2^-8 (8-bit mantissa).
  util::Rng rng(37);
  for (int i = 0; i < 1000; ++i) {
    const float v = static_cast<float>(rng.normal());
    const float w = nn::f32_from_bf16(nn::bf16_from_f32(v));
    EXPECT_LE(std::abs(w - v), std::abs(v) * (1.0f / 256.0f) + 1e-30f) << v;
  }
}

TEST(Bf16, NaNStaysNaNAndInfStaysInf) {
  // The RNE integer add must not carry a NaN payload into the exponent
  // (which would turn NaN into inf) and must keep infinities exact.
  const float qnan = std::numeric_limits<float>::quiet_NaN();
  EXPECT_TRUE(std::isnan(nn::f32_from_bf16(nn::bf16_from_f32(qnan))));
  const float snan_payload = std::bit_cast<float>(0x7F800001u);
  EXPECT_TRUE(std::isnan(nn::f32_from_bf16(nn::bf16_from_f32(snan_payload))));
  const float inf = std::numeric_limits<float>::infinity();
  EXPECT_EQ(nn::f32_from_bf16(nn::bf16_from_f32(inf)), inf);
  EXPECT_EQ(nn::f32_from_bf16(nn::bf16_from_f32(-inf)), -inf);
  // The poison pattern widens to a NaN, as the TEAL_DEBUG_MAT contract needs.
  EXPECT_TRUE(std::isnan(nn::f32_from_bf16(nn::kBf16SignalingNaN)));
}

// ---- blocked panels ------------------------------------------------------

TEST(PackedMat, PackZeroesPaddingLanes) {
  // out = 10 needs two 8-lane panels; lanes 10..15 are padding and must pack
  // to exact zero so they contribute nothing downstream.
  util::Rng rng(41);
  const int out = 10, in = 5;
  nn::MatF w(out, in);
  for (auto& v : w.data()) v = static_cast<float>(rng.normal());
  nn::PackedMatF p;
  nn::pack_weights(w, p);
  ASSERT_EQ(p.rows(), out);
  ASSERT_EQ(p.cols(), in);
  ASSERT_EQ(p.panels(), 2);
  constexpr int L = nn::PackedMatF::kLanes;
  for (int pi = 0; pi < p.panels(); ++pi) {
    const float* panel = p.panel_ptr(pi);
    for (int i = 0; i < in; ++i) {
      for (int l = 0; l < L; ++l) {
        const int o = pi * L + l;
        const float got = panel[i * L + l];
        if (o < out) {
          EXPECT_EQ(got, w.at(o, i));
        } else {
          EXPECT_EQ(got, 0.0f) << "padding lane must be zero";
        }
      }
    }
  }
  // Same layout for the bf16 packing, with RNE narrowing on the live lanes.
  nn::PackedMatBf16 pb;
  nn::pack_weights(w, pb);
  for (int i = 0; i < in; ++i) {
    EXPECT_EQ(pb.panel_ptr(0)[i * L].bits, nn::bf16_from_f32(w.at(0, i)).bits);
    EXPECT_EQ(pb.panel_ptr(1)[i * L + (out % L)].bits, 0) << "bf16 padding lane";
  }
}

TEST(PackedMat, ResizePoisonContractUnderDebugMat) {
  if (!nn::debug_mat_enabled()) {
    GTEST_SKIP() << "TEAL_DEBUG_MAT is off in this build";
  }
  nn::PackedMatF p;
  p.resize(9, 3);
  for (float v : p.data()) EXPECT_TRUE(std::isnan(v));
  nn::PackedMatBf16 pb;
  pb.resize(4, 2);
  for (nn::bf16 h : pb.data()) EXPECT_TRUE(std::isnan(nn::f32_from_bf16(h)));
}

TEST(PackedMat, BlockedForwardMatchesUnblockedWithinUlps) {
  // The blocked kernel keeps single-accumulator ascending-input order per
  // output, so it computes the same reduction as the row-major f32 kernel.
  // Equality is to a few ulps, not bits: the runtime-dispatched clones may
  // contract mul+add into FMA, which drops one intermediate rounding.
  util::Rng rng(43);
  const int n = 65, in = 24, out = 24;  // non-multiple of the row block
  nn::MatF x(n, in), w(out, in);
  std::vector<float> b(out);
  for (auto& v : x.data()) v = static_cast<float>(rng.normal());
  for (auto& v : w.data()) v = static_cast<float>(rng.normal());
  for (auto& v : b) v = static_cast<float>(rng.normal());
  nn::MatF ref, y;
  nn::linear_forward(x, w, b, ref);
  nn::PackedMatF p;
  nn::pack_weights(w, p);
  nn::linear_forward_blocked(x, p, b, y);
  ASSERT_EQ(y.rows(), n);
  ASSERT_EQ(y.cols(), out);
  for (std::size_t i = 0; i < ref.data().size(); ++i) {
    EXPECT_NEAR(y.data()[i], ref.data()[i], 1e-4f * std::max(1.0f, std::abs(ref.data()[i])))
        << "i=" << i;
  }
}

TEST(PackedMat, BlockedRowPartitionIsBitIdentical) {
  // The shard contract on the blocked kernel: any row partition — including
  // splits that break up the 4-row register blocks — produces the same bytes
  // as the full-range run, in f32 and in bf16 storage.
  util::Rng rng(47);
  const int n = 101, in = 16, out = 12;
  nn::MatF x(n, in), w(out, in);
  std::vector<float> b(out);
  for (auto& v : x.data()) v = static_cast<float>(rng.normal());
  for (auto& v : w.data()) v = static_cast<float>(rng.normal());
  for (auto& v : b) v = static_cast<float>(rng.normal());
  nn::PackedMatF pf;
  nn::pack_weights(w, pf);
  nn::PackedMatBf16 ph;
  nn::pack_weights(w, ph);

  nn::MatF full(n, out), ranged(n, out);
  nn::linear_forward_rows_blocked(x, pf, b, full, 0, n);
  nn::linear_forward_rows_blocked(x, pf, b, ranged, 0, 2);   // mid-block split
  nn::linear_forward_rows_blocked(x, pf, b, ranged, 2, 37);
  nn::linear_forward_rows_blocked(x, pf, b, ranged, 37, n);
  EXPECT_EQ(0, std::memcmp(full.data().data(), ranged.data().data(),
                           full.data().size() * sizeof(float)));

  nn::MatF full_h(n, out), ranged_h(n, out);
  nn::linear_forward_rows_blocked(x, ph, b, full_h, 0, n);
  nn::linear_forward_rows_blocked(x, ph, b, ranged_h, 0, 51);
  nn::linear_forward_rows_blocked(x, ph, b, ranged_h, 51, n);
  EXPECT_EQ(0, std::memcmp(full_h.data().data(), ranged_h.data().data(),
                           full_h.data().size() * sizeof(float)));
}

TEST(PackedMat, BlockedForwardValidatesShapes) {
  nn::MatF x(4, 3), y(4, 2);
  nn::MatF w(2, 3);
  nn::PackedMatF p;
  nn::pack_weights(w, p);
  std::vector<float> b(2);
  EXPECT_NO_THROW(nn::linear_forward_rows_blocked(x, p, b, y, 0, 4));
  nn::MatF bad_x(4, 5);
  EXPECT_THROW(nn::linear_forward_rows_blocked(bad_x, p, b, y, 0, 4),
               std::invalid_argument);
  std::vector<float> bad_b(3);
  EXPECT_THROW(nn::linear_forward_rows_blocked(x, p, bad_b, y, 0, 4),
               std::invalid_argument);
  nn::MatF bad_y(4, 3);
  EXPECT_THROW(nn::linear_forward_rows_blocked(x, p, b, bad_y, 0, 4),
               std::invalid_argument);
  EXPECT_THROW(nn::PackedMatF{}.resize(-1, 2), std::invalid_argument);
}

TEST(PackedLinear, SnapshotsMatchDoubleForward) {
  util::Rng rng(53);
  nn::Linear lin(6, 10, rng);  // out = 10: padded second panel in play
  nn::Mat x(5, 6);
  for (auto& v : x.data()) v = rng.normal();
  nn::Mat y;
  lin.forward(x, y);
  nn::MatF xf(5, 6), yf(5, 10);
  for (std::size_t i = 0; i < x.data().size(); ++i) {
    xf.data()[i] = static_cast<float>(x.data()[i]);
  }

  nn::LinearPackedF32 snap = lin.snapshot_packed_f32();
  snap.forward_rows(xf, yf, 0, 5);
  for (std::size_t i = 0; i < y.data().size(); ++i) {
    EXPECT_NEAR(static_cast<double>(yf.data()[i]), y.data()[i], 1e-5);
  }

  // The bf16 snapshot rounds each weight to 8 mantissa bits; with in = 6 the
  // accumulated relative error stays well under 2^-7.
  nn::LinearBf16 half = lin.snapshot_bf16();
  nn::MatF yh(5, 10);
  half.forward_rows(xf, yh, 0, 5);
  for (std::size_t i = 0; i < y.data().size(); ++i) {
    EXPECT_NEAR(static_cast<double>(yh.data()[i]), y.data()[i],
                1e-1 * std::max(1.0, std::abs(y.data()[i])));
    EXPECT_NE(yh.data()[i], 0.0f);
  }
}

TEST(Mat, ShapeAndAccess) {
  nn::Mat m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2);
  EXPECT_EQ(m.cols(), 3);
  m.at(1, 2) = 7.0;
  EXPECT_DOUBLE_EQ(m.at(1, 2), 7.0);
  EXPECT_DOUBLE_EQ(m.at(0, 0), 1.5);
  m.zero();
  EXPECT_DOUBLE_EQ(m.at(1, 2), 0.0);
}

TEST(Mat, LinearForwardKnownValues) {
  nn::Mat x(1, 2);
  x.at(0, 0) = 1.0;
  x.at(0, 1) = 2.0;
  nn::Mat w(1, 2);  // one output
  w.at(0, 0) = 3.0;
  w.at(0, 1) = 4.0;
  nn::Mat y;
  const double bias[] = {0.5};
  nn::linear_forward(x, w, bias, y);
  EXPECT_DOUBLE_EQ(y.at(0, 0), 11.5);
}

TEST(Mat, LinearGradCheck) {
  util::Rng rng(3);
  const int n = 3, in = 4, out = 2;
  nn::Mat x(n, in), w(out, in);
  std::vector<double> b(out);
  for (auto& v : x.data()) v = rng.normal();
  for (auto& v : w.data()) v = rng.normal();
  for (auto& v : b) v = rng.normal();
  // Loss = sum of y entries weighted by fixed random coefficients.
  nn::Mat coef(n, out);
  for (auto& v : coef.data()) v = rng.normal();

  auto eval = [&] {
    nn::Mat y;
    nn::linear_forward(x, w, b, y);
    double s = 0;
    for (std::size_t i = 0; i < y.data().size(); ++i) s += y.data()[i] * coef.data()[i];
    return s;
  };
  nn::Mat gx, gw(out, in);
  std::vector<double> gb(out, 0.0);
  nn::linear_backward(x, w, coef, gx, gw, gb);
  check_grad(w.data(), gw.data(), eval);
  check_grad(x.data(), gx.data(), eval);
  check_grad(b, gb, eval);
}

TEST(Mat, LeakyReluGradCheck) {
  util::Rng rng(5);
  nn::Mat x(2, 5);
  for (auto& v : x.data()) v = rng.normal();
  nn::Mat coef(2, 5);
  for (auto& v : coef.data()) v = rng.normal();
  auto eval = [&] {
    nn::Mat y;
    nn::leaky_relu_forward(x, y, 0.01);
    double s = 0;
    for (std::size_t i = 0; i < y.data().size(); ++i) s += y.data()[i] * coef.data()[i];
    return s;
  };
  nn::Mat gx;
  nn::leaky_relu_backward(x, coef, gx, 0.01);
  check_grad(x.data(), gx.data(), eval);
}

TEST(Mat, SoftmaxRowsSumToOneAndMask) {
  nn::Mat logits(2, 3);
  logits.at(0, 0) = 1.0;
  logits.at(0, 1) = 2.0;
  logits.at(0, 2) = 3.0;
  logits.at(1, 0) = 0.0;
  logits.at(1, 1) = 5.0;
  logits.at(1, 2) = -1.0;
  nn::Mat mask(2, 3, 1.0);
  mask.at(1, 1) = 0.0;  // mask out the largest logit in row 1
  nn::Mat probs;
  nn::softmax_rows(logits, mask, probs);
  EXPECT_NEAR(probs.at(0, 0) + probs.at(0, 1) + probs.at(0, 2), 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(probs.at(1, 1), 0.0);
  EXPECT_NEAR(probs.at(1, 0) + probs.at(1, 2), 1.0, 1e-12);
  EXPECT_GT(probs.at(0, 2), probs.at(0, 0));
}

TEST(Mat, SoftmaxGradCheck) {
  util::Rng rng(7);
  nn::Mat logits(3, 4);
  for (auto& v : logits.data()) v = rng.normal();
  nn::Mat coef(3, 4);
  for (auto& v : coef.data()) v = rng.normal();
  nn::Mat empty_mask;
  auto eval = [&] {
    nn::Mat p;
    nn::softmax_rows(logits, empty_mask, p);
    double s = 0;
    for (std::size_t i = 0; i < p.data().size(); ++i) s += p.data()[i] * coef.data()[i];
    return s;
  };
  nn::Mat p, gx;
  nn::softmax_rows(logits, empty_mask, p);
  nn::softmax_rows_backward(p, coef, gx);
  check_grad(logits.data(), gx.data(), eval);
}

TEST(Linear, ModuleGradCheck) {
  util::Rng rng(9);
  nn::Linear lin(3, 2, rng);
  nn::Mat x(4, 3);
  for (auto& v : x.data()) v = rng.normal();
  nn::Mat coef(4, 2);
  for (auto& v : coef.data()) v = rng.normal();
  auto eval = [&] {
    nn::Mat y;
    lin.forward(x, y);
    double s = 0;
    for (std::size_t i = 0; i < y.data().size(); ++i) s += y.data()[i] * coef.data()[i];
    return s;
  };
  for (auto* p : lin.params()) p->zero_grad();
  nn::Mat gx;
  lin.backward(x, coef, gx);
  auto params = lin.params();
  check_grad(params[0]->w.data(), params[0]->g.data(), eval);
  check_grad(params[1]->w.data(), params[1]->g.data(), eval);
  check_grad(x.data(), gx.data(), eval);
}

TEST(Adam, MinimizesQuadratic) {
  // One 1x1 parameter; loss (w - 3)^2. Adam should reach w ~ 3.
  nn::Param w(1, 1);
  w.w.at(0, 0) = -5.0;
  nn::Adam adam({&w}, 0.1);
  for (int i = 0; i < 500; ++i) {
    adam.zero_grad();
    w.g.at(0, 0) = 2.0 * (w.w.at(0, 0) - 3.0);
    adam.step();
  }
  EXPECT_NEAR(w.w.at(0, 0), 3.0, 0.05);
}

TEST(Adam, GradClipBoundsNorm) {
  nn::Param w(1, 2);
  w.g.at(0, 0) = 30.0;
  w.g.at(0, 1) = 40.0;  // norm 50
  nn::Adam adam({&w}, 0.1);
  adam.clip_grad_norm(5.0);
  double norm = std::hypot(w.g.at(0, 0), w.g.at(0, 1));
  EXPECT_NEAR(norm, 5.0, 1e-9);
}

TEST(Params, SaveLoadRoundTrip) {
  util::Rng rng(11);
  nn::Param a(2, 3), b(1, 4);
  for (auto& v : a.w.data()) v = rng.normal();
  for (auto& v : b.w.data()) v = rng.normal();
  auto path = (std::filesystem::temp_directory_path() / "teal_params_test.bin").string();
  nn::save_params(path, {&a, &b});

  nn::Param a2(2, 3), b2(1, 4);
  ASSERT_TRUE(nn::load_params(path, {&a2, &b2}));
  for (std::size_t i = 0; i < a.w.data().size(); ++i) {
    EXPECT_DOUBLE_EQ(a2.w.data()[i], a.w.data()[i]);
  }
  // Shape mismatch is rejected.
  nn::Param wrong(3, 2);
  EXPECT_FALSE(nn::load_params(path, {&wrong, &b2}));
  std::filesystem::remove(path);
}

TEST(Params, LoadMissingFileFails) {
  nn::Param a(1, 1);
  EXPECT_FALSE(nn::load_params("/nonexistent/teal.bin", {&a}));
}

TEST(Xavier, BoundsScaleWithFanInOut) {
  util::Rng rng(13);
  nn::Mat w(100, 100);
  nn::xavier_init(w, rng);
  double bound = std::sqrt(6.0 / 200.0);
  for (double v : w.data()) {
    EXPECT_GE(v, -bound - 1e-12);
    EXPECT_LE(v, bound + 1e-12);
  }
}

}  // namespace
}  // namespace teal
