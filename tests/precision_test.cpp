// Precision suite for the f32/SIMD compute backend: tolerance comparison of
// f32 vs f64 solves on all five bundled topologies (flow-allocation error
// bound + objective delta), determinism and shard-invariance of the narrowed
// path, knob semantics, and bit-stability of the f64 reference kernels
// against strictly ordered scalar re-implementations (which is what pins the
// f64 path to the seed arithmetic under TEAL_SIMD=ON).
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "baselines/lp_schemes.h"
#include "core/teal_scheme.h"
#include "core/variants.h"
#include "nn/mat.h"
#include "sim/online.h"
#include "sim/served.h"
#include "te/objective.h"
#include "topo/topology.h"
#include "traffic/traffic.h"
#include "util/alloc_hook.h"
#include "util/arena.h"

namespace teal {
namespace {

// Error bounds for the f32 narrowed forward. The solve's split ratios come
// out of an f64 softmax over f32-rounded logits, then ADMM (all f64) pulls
// them toward feasibility, so per-path split perturbations stay within a few
// float ulps of the logit scale. The bounds are deliberately slack (10-100x
// the observed error, recorded in the EXPERIMENTS.md Precision/SIMD ledger)
// so the test pins the *contract*, not one compiler's rounding.
constexpr double kSplitAbsBound = 5e-3;
constexpr double kObjectiveRelBound = 2e-3;

// bf16 bounds are wider: the stored weights carry 8 mantissa bits (relative
// rounding ~2^-9 per weight under RNE), which perturbs the logits by orders
// of magnitude more than f32's 24-bit rounding. Activations and accumulation
// stay f32, so the error does not compound beyond the weight rounding. As
// with the f32 bounds these are deliberately slack vs. the observed errors
// in the EXPERIMENTS.md ledger.
constexpr double kBf16SplitAbsBound = 5e-2;
constexpr double kBf16ObjectiveRelBound = 2e-2;

struct SmallInstance {
  std::string name;
  te::Problem pb;
  te::TrafficMatrix tm;
};

SmallInstance make_small(const std::string& topo, int n_demands) {
  auto g = topo::make_topology(topo);
  auto demands = traffic::sample_demands(g, n_demands, 7);
  te::Problem pb(std::move(g), std::move(demands), 4);
  traffic::TraceConfig tc;
  tc.n_intervals = 1;
  auto trace = traffic::generate_trace(pb, tc);
  traffic::calibrate_capacities(pb, trace, 1.6);
  return {topo, std::move(pb), trace.at(0)};
}

core::TealScheme make_untrained(const te::Problem& pb, std::uint64_t seed = 42) {
  return core::TealScheme(
      pb, std::make_unique<core::TealModel>(core::TealModelConfig{}, pb.k_paths(), seed),
      core::TealSchemeConfig{});
}

bool bytes_equal(const te::Allocation& a, const te::Allocation& b) {
  return a.split.size() == b.split.size() &&
         (a.split.empty() ||
          std::memcmp(a.split.data(), b.split.data(),
                      a.split.size() * sizeof(double)) == 0);
}

TEST(Precision, F32WithinBoundsOnAllTopologies) {
  // The five bundled WANs (Table 1), scaled to small demand sets so the
  // whole suite stays fast; every code path matches full scale.
  const std::vector<std::pair<std::string, int>> topos = {
      {"B4", 40}, {"SWAN", 80}, {"UsCarrier", 80}, {"Kdl", 50}, {"ASN", 50}};
  for (const auto& [name, nd] : topos) {
    SCOPED_TRACE(name);
    auto inst = make_small(name, nd);
    auto scheme = make_untrained(inst.pb);

    te::Allocation a64 = scheme.solve(inst.pb, inst.tm);
    scheme.set_precision(te::Precision::f32);
    ASSERT_EQ(scheme.precision(), te::Precision::f32);
    te::Allocation a32 = scheme.solve(inst.pb, inst.tm);

    ASSERT_EQ(a32.split.size(), a64.split.size());
    double max_abs = 0.0;
    for (std::size_t i = 0; i < a64.split.size(); ++i) {
      max_abs = std::max(max_abs, std::abs(a64.split[i] - a32.split[i]));
    }
    EXPECT_LE(max_abs, kSplitAbsBound) << "max split error " << max_abs;

    const double f64_obj = te::total_feasible_flow(inst.pb, inst.tm, a64);
    const double f32_obj = te::total_feasible_flow(inst.pb, inst.tm, a32);
    ASSERT_GT(f64_obj, 0.0);
    EXPECT_LE(std::abs(f64_obj - f32_obj) / f64_obj, kObjectiveRelBound)
        << "f64 " << f64_obj << " vs f32 " << f32_obj;

    // Switching back restores the reference path bit-for-bit: the f32 run
    // must not have perturbed any f64 state.
    scheme.set_precision(te::Precision::f64);
    te::Allocation again = scheme.solve(inst.pb, inst.tm);
    EXPECT_TRUE(bytes_equal(a64, again));
  }
}

TEST(Precision, Bf16WithinBoundsOnAllTopologies) {
  // Same contract as the f32 sweep, at the bf16 storage bounds, and the f64
  // reference must come back byte-identical after the bf16 run (toggling the
  // knob must not perturb any f64 state).
  const std::vector<std::pair<std::string, int>> topos = {
      {"B4", 40}, {"SWAN", 80}, {"UsCarrier", 80}, {"Kdl", 50}, {"ASN", 50}};
  for (const auto& [name, nd] : topos) {
    SCOPED_TRACE(name);
    auto inst = make_small(name, nd);
    auto scheme = make_untrained(inst.pb);

    te::Allocation a64 = scheme.solve(inst.pb, inst.tm);
    scheme.set_precision(te::Precision::bf16);
    ASSERT_EQ(scheme.precision(), te::Precision::bf16);
    te::Allocation a16 = scheme.solve(inst.pb, inst.tm);

    ASSERT_EQ(a16.split.size(), a64.split.size());
    double max_abs = 0.0;
    for (std::size_t i = 0; i < a64.split.size(); ++i) {
      max_abs = std::max(max_abs, std::abs(a64.split[i] - a16.split[i]));
    }
    EXPECT_LE(max_abs, kBf16SplitAbsBound) << "max split error " << max_abs;

    const double f64_obj = te::total_feasible_flow(inst.pb, inst.tm, a64);
    const double b16_obj = te::total_feasible_flow(inst.pb, inst.tm, a16);
    ASSERT_GT(f64_obj, 0.0);
    EXPECT_LE(std::abs(f64_obj - b16_obj) / f64_obj, kBf16ObjectiveRelBound)
        << "f64 " << f64_obj << " vs bf16 " << b16_obj;

    scheme.set_precision(te::Precision::f64);
    te::Allocation again = scheme.solve(inst.pb, inst.tm);
    EXPECT_TRUE(bytes_equal(a64, again));
  }
}

TEST(Precision, Bf16SolveDeterministicAndShardInvariant) {
  auto inst = make_small("SWAN", 80);
  auto scheme = make_untrained(inst.pb);
  scheme.set_precision(te::Precision::bf16);

  scheme.set_shard_count(1);
  te::Allocation seq = scheme.solve(inst.pb, inst.tm);
  te::Allocation seq2 = scheme.solve(inst.pb, inst.tm);
  EXPECT_TRUE(bytes_equal(seq, seq2)) << "bf16 solve must be deterministic";

  for (int shards : {2, 3, 5}) {
    SCOPED_TRACE(shards);
    scheme.set_shard_count(shards);
    te::Allocation sharded = scheme.solve(inst.pb, inst.tm);
    EXPECT_TRUE(bytes_equal(seq, sharded));
  }
}

TEST(Precision, Bf16DiffersFromBothF64AndF32) {
  // bf16 must be a genuinely third arithmetic: not silently f64, and not
  // silently the f32 path with unrounded weights.
  auto inst = make_small("SWAN", 80);
  auto scheme = make_untrained(inst.pb);
  te::Allocation a64 = scheme.solve(inst.pb, inst.tm);
  scheme.set_precision(te::Precision::f32);
  te::Allocation a32 = scheme.solve(inst.pb, inst.tm);
  scheme.set_precision(te::Precision::bf16);
  te::Allocation a16 = scheme.solve(inst.pb, inst.tm);
  EXPECT_FALSE(bytes_equal(a64, a16));
  EXPECT_FALSE(bytes_equal(a32, a16));
}

TEST(Precision, F32SolveDeterministicAndShardInvariant) {
  auto inst = make_small("SWAN", 80);
  auto scheme = make_untrained(inst.pb);
  scheme.set_precision(te::Precision::f32);

  scheme.set_shard_count(1);
  te::Allocation seq = scheme.solve(inst.pb, inst.tm);
  te::Allocation seq2 = scheme.solve(inst.pb, inst.tm);
  EXPECT_TRUE(bytes_equal(seq, seq2)) << "f32 solve must be deterministic";

  // The sharding bit-identity contract extends to the narrowed path: shards
  // write disjoint rows and reductions stay sequential, in f32 exactly as in
  // f64.
  for (int shards : {2, 3, 5}) {
    SCOPED_TRACE(shards);
    scheme.set_shard_count(shards);
    te::Allocation sharded = scheme.solve(inst.pb, inst.tm);
    EXPECT_TRUE(bytes_equal(seq, sharded));
  }
}

TEST(Precision, F32ActuallyDiffersFromF64) {
  // Guard against the f32 path silently degrading to f64 (e.g. a future
  // refactor dropping the narrowed kernels): logits pass through float
  // rounding, so on a real topology at least one split must move.
  auto inst = make_small("SWAN", 80);
  auto scheme = make_untrained(inst.pb);
  te::Allocation a64 = scheme.solve(inst.pb, inst.tm);
  scheme.set_precision(te::Precision::f32);
  te::Allocation a32 = scheme.solve(inst.pb, inst.tm);
  EXPECT_FALSE(bytes_equal(a64, a32));
}

TEST(Precision, KnobSemantics) {
  auto inst = make_small("B4", 30);
  auto scheme = make_untrained(inst.pb);
  EXPECT_TRUE(scheme.supports_precision(te::Precision::f64));
  EXPECT_TRUE(scheme.supports_precision(te::Precision::f32));
  EXPECT_TRUE(scheme.supports_precision(te::Precision::bf16));
  EXPECT_EQ(scheme.precision(), te::Precision::f64);

  // LP baselines are f64-only and ignore the knob.
  baselines::LpAllScheme lp_all;
  EXPECT_TRUE(lp_all.supports_precision(te::Precision::f64));
  EXPECT_FALSE(lp_all.supports_precision(te::Precision::f32));
  EXPECT_FALSE(lp_all.supports_precision(te::Precision::bf16));
  lp_all.set_precision(te::Precision::f32);
  EXPECT_EQ(lp_all.precision(), te::Precision::f64);
  lp_all.set_precision(te::Precision::bf16);
  EXPECT_EQ(lp_all.precision(), te::Precision::f64);

  EXPECT_STREQ(te::precision_name(te::Precision::f32), "f32");
  EXPECT_STREQ(te::precision_name(te::Precision::f64), "f64");
  EXPECT_STREQ(te::precision_name(te::Precision::bf16), "bf16");
}

TEST(Precision, SchemeOverVariantModelReportsNoF32) {
  // Regression: a TealScheme wrapping a Figure 14 ablation model (no
  // narrowed forward) must not claim f32 support — otherwise an f32-vs-f64
  // comparison against it would silently measure f64 twice. set_precision
  // follows the knob contract: unsupported values are ignored, so
  // precision() stays honest about what solves actually run.
  auto inst = make_small("B4", 30);
  core::TealScheme scheme(
      inst.pb, std::make_unique<core::NaiveDnnModel>(core::NaiveDnnConfig{}, inst.pb),
      core::TealSchemeConfig{}, "Teal-DNN");
  EXPECT_FALSE(scheme.supports_precision(te::Precision::f32));
  EXPECT_FALSE(scheme.supports_precision(te::Precision::bf16));
  scheme.set_precision(te::Precision::f32);
  EXPECT_EQ(scheme.precision(), te::Precision::f64);
  scheme.set_precision(te::Precision::bf16);
  EXPECT_EQ(scheme.precision(), te::Precision::f64);
  EXPECT_NO_THROW(scheme.solve(inst.pb, inst.tm));
}

TEST(Precision, OnlineConfigAppliesAndRestoresPrecision) {
  // The config knob is scoped: the run executes at f32, the scheme's own
  // setting comes back afterwards (same discipline as the shard knob).
  auto g = topo::make_b4();
  auto demands = traffic::sample_demands(g, 30, 7);
  te::Problem pb(std::move(g), std::move(demands), 4);
  traffic::TraceConfig tc;
  tc.n_intervals = 3;
  auto trace = traffic::generate_trace(pb, tc);
  auto scheme = make_untrained(pb);

  sim::OnlineConfig cfg;
  cfg.precision = te::Precision::f32;
  auto res = sim::run_online(scheme, pb, trace, cfg);
  EXPECT_EQ(static_cast<int>(res.intervals.size()), trace.size());
  EXPECT_EQ(scheme.precision(), te::Precision::f64) << "knob must be restored";

  // Default config leaves a scheme-level f32 setting untouched.
  scheme.set_precision(te::Precision::f32);
  (void)sim::run_online(scheme, pb, trace, sim::OnlineConfig{});
  EXPECT_EQ(scheme.precision(), te::Precision::f32);
}

TEST(Precision, ServedConfigAppliesAndRestoresPrecision) {
  auto g = topo::make_b4();
  auto demands = traffic::sample_demands(g, 30, 7);
  te::Problem pb(std::move(g), std::move(demands), 4);
  traffic::TraceConfig tc;
  tc.n_intervals = 4;
  auto trace = traffic::generate_trace(pb, tc);
  auto scheme = make_untrained(pb);

  sim::ServedConfig cfg;
  cfg.n_replicas = 1;
  cfg.precision = te::Precision::f32;
  auto res = sim::run_served(scheme, pb, trace, cfg);
  EXPECT_EQ(res.stats.completed, res.stats.accepted);
  EXPECT_EQ(scheme.precision(), te::Precision::f64) << "knob must be restored";

  // The served f32 allocations match a direct f32 solve (same narrowed
  // path through a replica workspace).
  scheme.set_precision(te::Precision::f32);
  for (int t = 0; t < trace.size(); ++t) {
    if (res.accepted[static_cast<std::size_t>(t)] == 0) continue;
    te::Allocation direct = scheme.solve(pb, trace.at(t));
    EXPECT_TRUE(bytes_equal(direct, res.allocs[static_cast<std::size_t>(t)]));
  }
}

TEST(Precision, OnlineAndServedConfigsPlumbBf16) {
  // The scoped-precision discipline of the PR 4 f32 knob carries to bf16
  // unchanged: the run executes narrowed, the scheme's own setting returns.
  auto g = topo::make_b4();
  auto demands = traffic::sample_demands(g, 30, 7);
  te::Problem pb(std::move(g), std::move(demands), 4);
  traffic::TraceConfig tc;
  tc.n_intervals = 3;
  auto trace = traffic::generate_trace(pb, tc);
  auto scheme = make_untrained(pb);

  sim::OnlineConfig ocfg;
  ocfg.precision = te::Precision::bf16;
  auto ores = sim::run_online(scheme, pb, trace, ocfg);
  EXPECT_EQ(static_cast<int>(ores.intervals.size()), trace.size());
  EXPECT_EQ(scheme.precision(), te::Precision::f64) << "knob must be restored";

  sim::ServedConfig scfg;
  scfg.n_replicas = 1;
  scfg.precision = te::Precision::bf16;
  auto sres = sim::run_served(scheme, pb, trace, scfg);
  EXPECT_EQ(sres.stats.completed, sres.stats.accepted);
  EXPECT_EQ(scheme.precision(), te::Precision::f64) << "knob must be restored";

  // Served bf16 allocations match a direct bf16 solve through the same
  // narrowed path.
  scheme.set_precision(te::Precision::bf16);
  for (int t = 0; t < trace.size(); ++t) {
    if (sres.accepted[static_cast<std::size_t>(t)] == 0) continue;
    te::Allocation direct = scheme.solve(pb, trace.at(t));
    EXPECT_TRUE(bytes_equal(direct, sres.allocs[static_cast<std::size_t>(t)]));
  }
}

TEST(Precision, WarmNarrowedSolvesAllocateNothing) {
  // The blocked kernels and the packed panels live inside the workspace
  // allocation contract: once warm, f32 and bf16 solves must not touch the
  // heap at all (panels are model-side snapshots built at set_precision
  // time, outside any solve).
  auto inst = make_small("B4", 30);
  auto scheme = make_untrained(inst.pb);
  te::Allocation out;
  for (te::Precision p : {te::Precision::f32, te::Precision::bf16}) {
    SCOPED_TRACE(te::precision_name(p));
    scheme.set_precision(p);
    scheme.solve_into(inst.pb, inst.tm, out);
    scheme.solve_into(inst.pb, inst.tm, out);  // second pass: steady state
    util::AllocCounter allocs;
    scheme.solve_into(inst.pb, inst.tm, out);
    EXPECT_EQ(allocs.count(), 0u)
        << "warm narrowed solve_into must not touch the heap";
  }
}

TEST(Precision, ColdArenaNarrowedSolveStaysO1Allocations) {
  // Replica cold-start with the narrowed forward: a fresh workspace against
  // a bound arena grows everything — including the blocked activations in
  // fwd32 — in O(1) heap allocations, same budget as the f64 contract in
  // tests/workspace_test.cpp. set_precision runs before the window: weight
  // packing is a model-side, once-per-process cost, not a replica cost.
  auto inst = make_small("B4", 30);
  auto scheme = make_untrained(inst.pb);
  for (te::Precision p : {te::Precision::f32, te::Precision::bf16}) {
    SCOPED_TRACE(te::precision_name(p));
    scheme.set_precision(p);
    te::Allocation ref, out;
    {
      core::SolveWorkspace heap_ws;
      scheme.solve_replica(heap_ws, inst.pb, inst.tm, ref);
    }
    out = ref;  // pre-sized output, as in the f64 cold-start test
    util::Arena arena;
    arena.reserve(1u << 20);
    util::ArenaScope bind(&arena);
    core::SolveWorkspace ws;
    util::AllocCounter allocs;
    scheme.solve_replica(ws, inst.pb, inst.tm, out);
    EXPECT_LE(allocs.count(), 5u)
        << "cold narrowed solve against a bound arena must stay O(1) heap allocations";
    EXPECT_GT(arena.used(), 0u);
    EXPECT_TRUE(bytes_equal(ref, out)) << "arena must not change the arithmetic";
    allocs.reset();
    scheme.solve_replica(ws, inst.pb, inst.tm, out);
    EXPECT_EQ(allocs.count(), 0u);
  }
}

TEST(Precision, ForwardF32RequiresPreparedWeights) {
  auto inst = make_small("B4", 30);
  core::TealModel model({}, inst.pb.k_paths(), 42);
  core::ModelForward fwd;
  const core::ShardPlan plan = core::ShardPlan::sequential(inst.pb.num_demands());
  EXPECT_THROW(model.forward_ws_f32(inst.pb, inst.tm, nullptr, fwd, plan),
               std::logic_error);
  model.prepare_f32();
  EXPECT_NO_THROW(model.forward_ws_f32(inst.pb, inst.tm, nullptr, fwd, plan));
}

TEST(Precision, ForwardBf16RequiresPreparedWeights) {
  auto inst = make_small("B4", 30);
  core::TealModel model({}, inst.pb.k_paths(), 42);
  core::ModelForward fwd;
  const core::ShardPlan plan = core::ShardPlan::sequential(inst.pb.num_demands());
  EXPECT_THROW(model.forward_ws_bf16(inst.pb, inst.tm, nullptr, fwd, plan),
               std::logic_error);
  // prepare_f32 alone is not enough — the bf16 snapshots are separate state.
  model.prepare_f32();
  EXPECT_THROW(model.forward_ws_bf16(inst.pb, inst.tm, nullptr, fwd, plan),
               std::logic_error);
  model.prepare_bf16();
  EXPECT_NO_THROW(model.forward_ws_bf16(inst.pb, inst.tm, nullptr, fwd, plan));
}

TEST(Precision, F32LogitsTrackF64Logits) {
  auto inst = make_small("B4", 30);
  core::TealModel model({}, inst.pb.k_paths(), 42);
  model.prepare_f32();
  const core::ShardPlan plan = core::ShardPlan::sequential(inst.pb.num_demands());
  core::ModelForward f64fwd, f32fwd;
  model.forward_ws(inst.pb, inst.tm, nullptr, f64fwd, plan);
  model.forward_ws_f32(inst.pb, inst.tm, nullptr, f32fwd, plan);
  ASSERT_EQ(f32fwd.logits.rows(), f64fwd.logits.rows());
  ASSERT_EQ(f32fwd.logits.cols(), f64fwd.logits.cols());
  for (std::size_t i = 0; i < f64fwd.logits.data().size(); ++i) {
    EXPECT_NEAR(f32fwd.logits.data()[i], f64fwd.logits.data()[i], 1e-3);
  }
  // The mask is precision-oblivious: identical bytes.
  ASSERT_EQ(f32fwd.mask.data().size(), f64fwd.mask.data().size());
  EXPECT_EQ(0, std::memcmp(f32fwd.mask.data().data(), f64fwd.mask.data().data(),
                           f64fwd.mask.data().size() * sizeof(double)));
}

TEST(Precision, BackwardRejectsF32Cache) {
  // An f32 inference cache holds float activations; back-propagating through
  // it would reinterpret garbage. The boundary throws instead.
  auto inst = make_small("B4", 30);
  core::TealModel model({}, inst.pb.k_paths(), 42);
  model.prepare_f32();
  core::ModelForward fwd;
  model.forward_ws_f32(inst.pb, inst.tm, nullptr, fwd,
                       core::ShardPlan::sequential(inst.pb.num_demands()));
  nn::Mat grad(fwd.logits.rows(), fwd.logits.cols(), 1.0);
  EXPECT_THROW(model.backward_m(inst.pb, fwd, grad), std::logic_error);
}

// ---- f64 kernel bit-stability (the TEAL_SIMD=ON identity guard) ----------

// Strictly ordered scalar references, written independently of mat.cpp. The
// f64 kernels must match them to the bit under every build flag — this is
// what "TEAL_SIMD only vectorizes f32 reductions" means operationally.
void ref_linear_forward(const nn::Mat& x, const nn::Mat& w, const std::vector<double>& b,
                        nn::Mat& y) {
  y.resize(x.rows(), w.rows());
  for (int r = 0; r < x.rows(); ++r) {
    for (int o = 0; o < w.rows(); ++o) {
      double acc = b[static_cast<std::size_t>(o)];
      for (int i = 0; i < x.cols(); ++i) acc += x.at(r, i) * w.at(o, i);
      y.at(r, o) = acc;
    }
  }
}

TEST(Precision, F64LinearForwardBitIdenticalToOrderedReference) {
  util::Rng rng(17);
  const int n = 600, in = 24, out = 24;  // above the pool-parallel threshold
  nn::Mat x(n, in), w(out, in);
  std::vector<double> b(out);
  for (auto& v : x.data()) v = rng.normal();
  for (auto& v : w.data()) v = rng.normal();
  for (auto& v : b) v = rng.normal();
  nn::Mat y, ref;
  nn::linear_forward(x, w, b, y);
  ref_linear_forward(x, w, b, ref);
  ASSERT_EQ(y.data().size(), ref.data().size());
  EXPECT_EQ(0, std::memcmp(y.data().data(), ref.data().data(),
                           y.data().size() * sizeof(double)));
}

TEST(Precision, F64LeakyReluBitIdenticalToOrderedReference) {
  util::Rng rng(19);
  nn::Mat x(64, 48);
  for (auto& v : x.data()) v = rng.normal();
  nn::Mat y;
  nn::leaky_relu_forward(x, y, 0.01);
  for (std::size_t i = 0; i < x.data().size(); ++i) {
    const double expect = x.data()[i] >= 0.0 ? x.data()[i] : 0.01 * x.data()[i];
    EXPECT_EQ(y.data()[i], expect);
  }
}

TEST(Precision, F64SoftmaxBitIdenticalToOrderedReference) {
  util::Rng rng(23);
  const int n = 40, k = 4;
  nn::Mat logits(n, k), mask(n, k, 1.0);
  for (auto& v : logits.data()) v = rng.normal();
  mask.at(3, 1) = 0.0;
  nn::Mat probs;
  nn::softmax_rows(logits, mask, probs);
  for (int r = 0; r < n; ++r) {
    double mx = std::numeric_limits<double>::lowest();
    for (int c = 0; c < k; ++c) {
      if (mask.at(r, c) != 0.0) mx = std::max(mx, logits.at(r, c));
    }
    double denom = 0.0;
    std::vector<double> e(static_cast<std::size_t>(k), 0.0);
    for (int c = 0; c < k; ++c) {
      if (mask.at(r, c) != 0.0) {
        e[static_cast<std::size_t>(c)] = std::exp(logits.at(r, c) - mx);
        denom += e[static_cast<std::size_t>(c)];
      }
    }
    for (int c = 0; c < k; ++c) {
      EXPECT_EQ(probs.at(r, c), denom > 0.0 ? e[static_cast<std::size_t>(c)] / denom : 0.0);
    }
  }
}

// ---- f32 kernels ---------------------------------------------------------

TEST(Precision, F32LinearForwardMatchesF64WithinTolerance) {
  util::Rng rng(29);
  const int n = 600, in = 24, out = 24;
  nn::Mat x(n, in), w(out, in);
  std::vector<double> b(out);
  for (auto& v : x.data()) v = rng.normal();
  for (auto& v : w.data()) v = rng.normal();
  for (auto& v : b) v = rng.normal();
  nn::MatF xf(n, in), wf(out, in);
  std::vector<float> bf(b.size());
  for (std::size_t i = 0; i < x.data().size(); ++i) xf.data()[i] = static_cast<float>(x.data()[i]);
  for (std::size_t i = 0; i < w.data().size(); ++i) wf.data()[i] = static_cast<float>(w.data()[i]);
  for (std::size_t i = 0; i < b.size(); ++i) bf[i] = static_cast<float>(b[i]);
  nn::Mat y;
  nn::MatF yf;
  nn::linear_forward(x, w, b, y);
  nn::linear_forward(xf, wf, bf, yf);
  for (std::size_t i = 0; i < y.data().size(); ++i) {
    EXPECT_NEAR(static_cast<double>(yf.data()[i]), y.data()[i], 1e-4)
        << "i=" << i;
  }
}

TEST(Precision, F32RowRangeKernelsMatchFullKernels) {
  // Row-partition invariance of the f32 kernels (the property the sharded
  // narrowed forward rests on): computing [0,n) in two ranges must equal the
  // full-kernel bytes.
  util::Rng rng(31);
  const int n = 101, in = 16, out = 8;
  nn::MatF x(n, in), w(out, in);
  std::vector<float> b(out);
  for (auto& v : x.data()) v = static_cast<float>(rng.normal());
  for (auto& v : w.data()) v = static_cast<float>(rng.normal());
  for (auto& v : b) v = static_cast<float>(rng.normal());
  nn::MatF full, ranged(n, out);
  nn::linear_forward(x, w, b, full);
  nn::linear_forward_rows(x, w, b, ranged, 0, 37);
  nn::linear_forward_rows(x, w, b, ranged, 37, n);
  EXPECT_EQ(0, std::memcmp(full.data().data(), ranged.data().data(),
                           full.data().size() * sizeof(float)));
}

}  // namespace
}  // namespace teal
