// Tests for the workspace-based solve path: reusing a SolveWorkspace must be
// observationally pure (bit-identical allocations across repeated solves),
// solve_batch must match the sequential solve loop exactly for Teal and the
// LP baselines, and a warm TealScheme::solve_into must perform zero heap
// allocations (the alloc_hook counter verifies the claim directly).
#include <gtest/gtest.h>

#include "baselines/lp_schemes.h"
#include "core/teal_scheme.h"
#include "sim/online.h"
#include "topo/topology.h"
#include "traffic/traffic.h"
#include "util/alloc_hook.h"
#include "util/arena.h"

namespace teal {
namespace {

struct Setup {
  te::Problem pb;
  traffic::Trace trace;
};

Setup b4_setup() {
  auto g = topo::make_b4();
  te::Problem pb(std::move(g), te::all_pairs_demands(topo::make_b4()), 4);
  traffic::TraceConfig cfg;
  cfg.n_intervals = 6;
  auto trace = traffic::generate_trace(pb, cfg);
  traffic::calibrate_capacities(pb, trace, 1.5);
  return Setup{std::move(pb), std::move(trace)};
}

// An untrained Teal pipeline: initialization is deterministic (fixed seed),
// and the workspace contract is independent of training.
core::TealScheme make_teal(const te::Problem& pb) {
  return core::TealScheme(pb,
                          std::make_unique<core::TealModel>(core::TealModelConfig{},
                                                            pb.k_paths()),
                          core::TealSchemeConfig{});
}

void expect_bit_identical(const te::Allocation& a, const te::Allocation& b) {
  ASSERT_EQ(a.split.size(), b.split.size());
  for (std::size_t i = 0; i < a.split.size(); ++i) {
    // Exact comparison on purpose: workspace reuse must not perturb a single
    // bit of the result.
    EXPECT_EQ(a.split[i], b.split[i]) << "split index " << i;
  }
}

TEST(Workspace, RepeatedSolveIsBitIdentical) {
  auto s = b4_setup();
  auto scheme = make_teal(s.pb);
  auto first = scheme.solve(s.pb, s.trace.at(0));
  auto again = scheme.solve(s.pb, s.trace.at(0));
  expect_bit_identical(first, again);
  // Solving a different matrix in between must not leak state into a repeat.
  scheme.solve(s.pb, s.trace.at(1));
  auto after_other = scheme.solve(s.pb, s.trace.at(0));
  expect_bit_identical(first, after_other);
}

TEST(Workspace, ColdAndWarmWorkspaceAgree) {
  auto s = b4_setup();
  auto scheme = make_teal(s.pb);
  auto warm = scheme.solve(s.pb, s.trace.at(2));
  scheme.reset_workspace();
  auto cold = scheme.solve(s.pb, s.trace.at(2));
  expect_bit_identical(warm, cold);
}

TEST(Workspace, SolveBatchMatchesSequentialTeal) {
  auto s = b4_setup();
  auto scheme = make_teal(s.pb);
  auto batch = scheme.solve_batch(s.pb, std::span(s.trace.matrices));
  ASSERT_EQ(static_cast<int>(batch.allocs.size()), s.trace.size());
  ASSERT_EQ(batch.solve_seconds.size(), batch.allocs.size());
  for (int t = 0; t < s.trace.size(); ++t) {
    auto seq = scheme.solve(s.pb, s.trace.at(t));
    expect_bit_identical(seq, batch.allocs[static_cast<std::size_t>(t)]);
  }
}

TEST(Workspace, SolveBatchMatchesSequentialLpAll) {
  auto s = b4_setup();
  baselines::LpAllScheme lp;
  auto batch = lp.solve_batch(s.pb, std::span(s.trace.matrices));
  ASSERT_EQ(static_cast<int>(batch.allocs.size()), s.trace.size());
  for (int t = 0; t < s.trace.size(); ++t) {
    auto seq = lp.solve(s.pb, s.trace.at(t));
    expect_bit_identical(seq, batch.allocs[static_cast<std::size_t>(t)]);
  }
}

TEST(Workspace, DefaultSolveIntoMatchesSolve) {
  auto s = b4_setup();
  baselines::LpAllScheme lp;
  auto direct = lp.solve(s.pb, s.trace.at(0));
  te::Allocation into;
  lp.solve_into(s.pb, s.trace.at(0), into);
  expect_bit_identical(direct, into);
}

TEST(Workspace, WarmSolveIntoAllocatesNothing) {
  auto s = b4_setup();
  auto scheme = make_teal(s.pb);
  te::Allocation out;
  // Two warm-up solves: the first sizes every buffer, the second catches any
  // buffer that only reaches steady state after one full pass.
  scheme.solve_into(s.pb, s.trace.at(0), out);
  scheme.solve_into(s.pb, s.trace.at(1), out);
  util::AllocCounter allocs;
  scheme.solve_into(s.pb, s.trace.at(0), out);
  EXPECT_EQ(allocs.count(), 0u)
      << "warm TealScheme::solve_into must not touch the heap";
}

TEST(ArenaWorkspace, ColdSpinUpIsO1AllocationsAndBitIdentical) {
  auto s = b4_setup();
  auto scheme = make_teal(s.pb);
  // Heap reference + warm-up: faults pool/statics, sizes out.split, and
  // gives the byte-level ground truth an arena solve must reproduce.
  te::Allocation ref, out;
  {
    core::SolveWorkspace heap_ws;
    scheme.solve_replica(heap_ws, s.pb, s.trace.at(0), ref);
  }
  out = ref;  // pre-sized output: the window measures workspace cold-start only
  util::Arena arena;
  arena.reserve(1u << 20);  // chunk growth out of the measured window
  util::ArenaScope bind(&arena);
  core::SolveWorkspace ws;
  util::AllocCounter allocs;
  scheme.solve_replica(ws, s.pb, s.trace.at(0), out);
  // The cold-start contract: the whole workspace grows out of the arena in
  // O(1) heap allocations (caps snapshot + the model's shared forward cache).
  EXPECT_LE(allocs.count(), 5u)
      << "cold solve against a bound arena must stay O(1) heap allocations";
  EXPECT_GT(arena.used(), 0u);
  expect_bit_identical(ref, out);
  // And the now-warm arena-backed workspace keeps the zero-alloc contract.
  allocs.reset();
  scheme.solve_replica(ws, s.pb, s.trace.at(1), out);
  EXPECT_EQ(allocs.count(), 0u);
}

TEST(ArenaWorkspace, TopologySwapReusesRetainedChunks) {
  // Same replica slot re-pointed at a different topology: clear() + reset()
  // must rebuild the workspace out of the chunks the first warm-up faulted.
  auto a = b4_setup();
  auto ga = topo::make_swan_like(7);
  te::Problem pb_b(std::move(ga), traffic::sample_demands(topo::make_swan_like(7), 120, 8), 4);
  traffic::TraceConfig cfg;
  cfg.n_intervals = 2;
  cfg.seed = 9;
  auto trace_b = traffic::generate_trace(pb_b, cfg);

  auto scheme_a = make_teal(a.pb);
  auto scheme_b = make_teal(pb_b);
  te::Allocation ref_b, out;
  {
    core::SolveWorkspace heap_ws;
    scheme_b.solve_replica(heap_ws, pb_b, trace_b.at(0), ref_b);
  }
  util::Arena arena;
  arena.reserve(4u << 20);
  util::ArenaScope bind(&arena);
  core::SolveWorkspace ws;
  scheme_a.solve_replica(ws, a.pb, a.trace.at(0), out);
  const std::size_t chunks_after_a = arena.chunk_count();

  ws.clear();    // containers first (their deallocs are provenance no-ops)…
  arena.reset(); // …then rewind, retaining every chunk
  out = ref_b;
  util::AllocCounter allocs;
  scheme_b.solve_replica(ws, pb_b, trace_b.at(0), out);
  EXPECT_LE(allocs.count(), 5u)
      << "topology swap must re-bump retained chunks, not re-malloc";
  EXPECT_EQ(arena.chunk_count(), chunks_after_a);
  expect_bit_identical(ref_b, out);
}

TEST(ArenaWorkspace, SolveAgainstArenaMatchesHeapOnEveryTopology) {
  // The arena changes where buffers live, never what arithmetic runs: on
  // every bundled topology, sequential and sharded (whose fan-out runs on
  // unbound pool threads), the f64 solve is byte-equal heap vs arena.
  for (const std::string& name : {"B4", "SWAN", "UsCarrier", "Kdl", "ASN"}) {
    auto g = topo::make_topology(name);
    auto demands = traffic::sample_demands(g, 80, /*seed=*/5);
    te::Problem pb(std::move(g), std::move(demands), 4);
    traffic::TraceConfig cfg;
    cfg.n_intervals = 1;
    cfg.seed = 6;
    auto trace = traffic::generate_trace(pb, cfg);
    auto scheme = make_teal(pb);
    for (int shards : {1, 3}) {
      te::Allocation ref, out;
      core::SolveWorkspace heap_ws;
      scheme.solve_replica(heap_ws, pb, trace.at(0), ref, nullptr, shards);
      util::Arena arena;
      util::ArenaScope bind(&arena);
      core::SolveWorkspace ws;
      scheme.solve_replica(ws, pb, trace.at(0), out, nullptr, shards);
      expect_bit_identical(ref, out);
    }
  }
}

TEST(Workspace, RunOnlineUsesBatchedSolves) {
  auto s = b4_setup();
  auto scheme = make_teal(s.pb);
  auto res = sim::run_online(scheme, s.pb, s.trace, {});
  ASSERT_EQ(static_cast<int>(res.intervals.size()), s.trace.size());
  // Teal is fast: every interval deploys a fresh allocation.
  for (const auto& iv : res.intervals) EXPECT_TRUE(iv.started_solve);
}

}  // namespace
}  // namespace teal
