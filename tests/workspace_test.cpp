// Tests for the workspace-based solve path: reusing a SolveWorkspace must be
// observationally pure (bit-identical allocations across repeated solves),
// solve_batch must match the sequential solve loop exactly for Teal and the
// LP baselines, and a warm TealScheme::solve_into must perform zero heap
// allocations (the alloc_hook counter verifies the claim directly).
#include <gtest/gtest.h>

#include "baselines/lp_schemes.h"
#include "core/teal_scheme.h"
#include "sim/online.h"
#include "topo/topology.h"
#include "traffic/traffic.h"
#include "util/alloc_hook.h"

namespace teal {
namespace {

struct Setup {
  te::Problem pb;
  traffic::Trace trace;
};

Setup b4_setup() {
  auto g = topo::make_b4();
  te::Problem pb(std::move(g), te::all_pairs_demands(topo::make_b4()), 4);
  traffic::TraceConfig cfg;
  cfg.n_intervals = 6;
  auto trace = traffic::generate_trace(pb, cfg);
  traffic::calibrate_capacities(pb, trace, 1.5);
  return Setup{std::move(pb), std::move(trace)};
}

// An untrained Teal pipeline: initialization is deterministic (fixed seed),
// and the workspace contract is independent of training.
core::TealScheme make_teal(const te::Problem& pb) {
  return core::TealScheme(pb,
                          std::make_unique<core::TealModel>(core::TealModelConfig{},
                                                            pb.k_paths()),
                          core::TealSchemeConfig{});
}

void expect_bit_identical(const te::Allocation& a, const te::Allocation& b) {
  ASSERT_EQ(a.split.size(), b.split.size());
  for (std::size_t i = 0; i < a.split.size(); ++i) {
    // Exact comparison on purpose: workspace reuse must not perturb a single
    // bit of the result.
    EXPECT_EQ(a.split[i], b.split[i]) << "split index " << i;
  }
}

TEST(Workspace, RepeatedSolveIsBitIdentical) {
  auto s = b4_setup();
  auto scheme = make_teal(s.pb);
  auto first = scheme.solve(s.pb, s.trace.at(0));
  auto again = scheme.solve(s.pb, s.trace.at(0));
  expect_bit_identical(first, again);
  // Solving a different matrix in between must not leak state into a repeat.
  scheme.solve(s.pb, s.trace.at(1));
  auto after_other = scheme.solve(s.pb, s.trace.at(0));
  expect_bit_identical(first, after_other);
}

TEST(Workspace, ColdAndWarmWorkspaceAgree) {
  auto s = b4_setup();
  auto scheme = make_teal(s.pb);
  auto warm = scheme.solve(s.pb, s.trace.at(2));
  scheme.reset_workspace();
  auto cold = scheme.solve(s.pb, s.trace.at(2));
  expect_bit_identical(warm, cold);
}

TEST(Workspace, SolveBatchMatchesSequentialTeal) {
  auto s = b4_setup();
  auto scheme = make_teal(s.pb);
  auto batch = scheme.solve_batch(s.pb, std::span(s.trace.matrices));
  ASSERT_EQ(static_cast<int>(batch.allocs.size()), s.trace.size());
  ASSERT_EQ(batch.solve_seconds.size(), batch.allocs.size());
  for (int t = 0; t < s.trace.size(); ++t) {
    auto seq = scheme.solve(s.pb, s.trace.at(t));
    expect_bit_identical(seq, batch.allocs[static_cast<std::size_t>(t)]);
  }
}

TEST(Workspace, SolveBatchMatchesSequentialLpAll) {
  auto s = b4_setup();
  baselines::LpAllScheme lp;
  auto batch = lp.solve_batch(s.pb, std::span(s.trace.matrices));
  ASSERT_EQ(static_cast<int>(batch.allocs.size()), s.trace.size());
  for (int t = 0; t < s.trace.size(); ++t) {
    auto seq = lp.solve(s.pb, s.trace.at(t));
    expect_bit_identical(seq, batch.allocs[static_cast<std::size_t>(t)]);
  }
}

TEST(Workspace, DefaultSolveIntoMatchesSolve) {
  auto s = b4_setup();
  baselines::LpAllScheme lp;
  auto direct = lp.solve(s.pb, s.trace.at(0));
  te::Allocation into;
  lp.solve_into(s.pb, s.trace.at(0), into);
  expect_bit_identical(direct, into);
}

TEST(Workspace, WarmSolveIntoAllocatesNothing) {
  auto s = b4_setup();
  auto scheme = make_teal(s.pb);
  te::Allocation out;
  // Two warm-up solves: the first sizes every buffer, the second catches any
  // buffer that only reaches steady state after one full pass.
  scheme.solve_into(s.pb, s.trace.at(0), out);
  scheme.solve_into(s.pb, s.trace.at(1), out);
  util::AllocCounter allocs;
  scheme.solve_into(s.pb, s.trace.at(0), out);
  EXPECT_EQ(allocs.count(), 0u)
      << "warm TealScheme::solve_into must not touch the heap";
}

TEST(Workspace, RunOnlineUsesBatchedSolves) {
  auto s = b4_setup();
  auto scheme = make_teal(s.pb);
  auto res = sim::run_online(scheme, s.pb, s.trace, {});
  ASSERT_EQ(static_cast<int>(res.intervals.size()), s.trace.size());
  // Teal is fast: every interval deploys a fresh allocation.
  for (const auto& iv : res.intervals) EXPECT_TRUE(iv.started_solve);
}

}  // namespace
}  // namespace teal
