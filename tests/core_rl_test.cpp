// Tests for the RL machinery: RewardSimulator consistency and the COMA* /
// direct-loss trainers actually improving the TE objective.
#include <gtest/gtest.h>

#include <filesystem>

#include "core/coma.h"
#include "core/direct_loss.h"
#include "core/model.h"
#include "core/reward.h"
#include "core/teal_scheme.h"
#include "lp/path_lp.h"
#include "topo/topology.h"
#include "traffic/traffic.h"

namespace teal {
namespace {

struct Setup {
  te::Problem pb;
  traffic::Trace trace;
};

Setup b4_setup(double util = 1.8, int n_intervals = 12) {
  auto g = topo::make_b4();
  te::Problem pb(std::move(g), te::all_pairs_demands(topo::make_b4()), 4);
  traffic::TraceConfig cfg;
  cfg.n_intervals = n_intervals;
  auto trace = traffic::generate_trace(pb, cfg);
  traffic::calibrate_capacities(pb, trace, util);
  return Setup{std::move(pb), std::move(trace)};
}

nn::Mat uniform_splits(const te::Problem& pb, int k) {
  nn::Mat s(pb.num_demands(), k);
  for (int d = 0; d < pb.num_demands(); ++d) {
    int np = pb.num_paths(d);
    for (int c = 0; c < np && c < k; ++c) {
      s.at(d, c) = 1.0 / static_cast<double>(np);
    }
  }
  return s;
}

TEST(RewardSimulator, GlobalRewardMatchesObjective) {
  auto s = b4_setup();
  core::RewardSimulator sim(s.pb, te::Objective::kTotalFlow);
  auto splits = uniform_splits(s.pb, 4);
  sim.set_state(s.trace.at(0), s.pb.capacities(), splits);
  auto alloc = core::allocation_from_splits(s.pb, splits);
  EXPECT_NEAR(sim.global_reward(), te::total_feasible_flow(s.pb, s.trace.at(0), alloc),
              1e-9);
}

TEST(RewardSimulator, LocalValuePrefersMoreFlowWhenUncongested) {
  auto s = b4_setup(1.0);  // ample capacity
  core::RewardSimulator sim(s.pb, te::Objective::kTotalFlow);
  auto splits = uniform_splits(s.pb, 4);
  sim.set_state(s.trace.at(0), s.pb.capacities(), splits);
  auto scratch = sim.make_scratch();
  // Candidate A: route everything; candidate B: route half.
  double full[4] = {0.25, 0.25, 0.25, 0.25};
  double half[4] = {0.125, 0.125, 0.125, 0.125};
  int d = 0;
  EXPECT_GT(sim.value_of(d, full, scratch), sim.value_of(d, half, scratch));
}

TEST(RewardSimulator, LocalValuePenalizesCongestingOthers) {
  // Demand 0 and a large background demand share a bottleneck; pushing all of
  // demand 0 onto the shared shortest path should score worse than avoiding
  // it when the alternative is free.
  topo::Graph g("shared");
  g.add_nodes(4);
  g.add_link(0, 1, 10, 1.0);   // bottleneck
  g.add_link(1, 3, 50, 1.0);
  g.add_link(0, 2, 50, 2.0);   // longer but empty detour
  g.add_link(2, 3, 50, 2.0);
  te::Problem pb(std::move(g), {{0, 3}, {0, 1}}, 4);
  te::TrafficMatrix tm;
  tm.volume = {8.0, 9.0};  // together they overflow the 10-capacity link

  core::RewardSimulator sim(pb, te::Objective::kTotalFlow);
  nn::Mat splits(2, 4);
  splits.at(0, 0) = 1.0;  // demand 0 on the shared path (via edge 0->1)
  splits.at(1, 0) = 1.0;  // background demand pinned on 0->1
  sim.set_state(tm, pb.capacities(), splits);
  auto scratch = sim.make_scratch();
  double on_shared[4] = {1.0, 0.0, 0.0, 0.0};
  double on_detour[4] = {0.0, 1.0, 0.0, 0.0};
  EXPECT_GT(sim.value_of(0, on_detour, scratch), sim.value_of(0, on_shared, scratch));
}

TEST(RewardSimulator, ValueOfIsSideEffectFree) {
  auto s = b4_setup();
  core::RewardSimulator sim(s.pb, te::Objective::kTotalFlow);
  auto splits = uniform_splits(s.pb, 4);
  sim.set_state(s.trace.at(0), s.pb.capacities(), splits);
  auto scratch = sim.make_scratch();
  double cand[4] = {1.0, 0.0, 0.0, 0.0};
  double v1 = sim.value_of(3, cand, scratch);
  double v2 = sim.value_of(3, cand, scratch);
  EXPECT_DOUBLE_EQ(v1, v2);
  EXPECT_DOUBLE_EQ(sim.global_reward(), sim.global_reward());
}

TEST(TrainComa, ImprovesSatisfiedDemand) {
  auto s = b4_setup(2.5, 16);  // congested enough that allocation matters
  core::TealModelConfig mc;
  core::TealModel model(mc, s.pb.k_paths(), 3);

  // Untrained performance on the last matrix.
  auto before_fwd = model.forward(s.pb, s.trace.at(15));
  auto before = core::allocation_from_splits(
      s.pb, core::splits_from_logits(before_fwd.logits, before_fwd.mask));
  double before_pct = te::satisfied_demand_pct(s.pb, s.trace.at(15), before);

  core::ComaConfig cfg;
  cfg.epochs = 10;
  cfg.lr = 3e-3;
  auto stats = core::train_coma(model, s.pb, s.trace, te::Objective::kTotalFlow, cfg);
  ASSERT_EQ(static_cast<int>(stats.epoch_reward.size()), 10);

  auto after_fwd = model.forward(s.pb, s.trace.at(15));
  auto after = core::allocation_from_splits(
      s.pb, core::splits_from_logits(after_fwd.logits, after_fwd.mask));
  double after_pct = te::satisfied_demand_pct(s.pb, s.trace.at(15), after);
  EXPECT_GT(after_pct, before_pct);
  // Learning curve should trend up: last-epoch reward above first-epoch.
  EXPECT_GT(stats.epoch_reward.back(), stats.epoch_reward.front());
}

TEST(TrainDirectLoss, ImprovesSurrogate) {
  auto s = b4_setup(2.5, 16);
  core::TealModel model({}, s.pb.k_paths(), 3);
  core::DirectLossConfig cfg;
  cfg.epochs = 8;
  cfg.lr = 3e-3;
  auto stats = core::train_direct_loss(model, s.pb, s.trace, te::Objective::kTotalFlow, cfg);
  ASSERT_EQ(static_cast<int>(stats.epoch_surrogate.size()), 8);
  EXPECT_GT(stats.epoch_surrogate.back(), stats.epoch_surrogate.front());
}

TEST(TrainDirectLoss, RejectsMlu) {
  auto s = b4_setup();
  core::TealModel model({}, s.pb.k_paths(), 3);
  EXPECT_THROW(
      core::train_direct_loss(model, s.pb, s.trace, te::Objective::kMinMaxLinkUtil, {}),
      std::invalid_argument);
}

TEST(TealScheme, SolveIsFastAndValid) {
  auto s = b4_setup(2.0, 8);
  core::TealSchemeConfig cfg;
  core::TealTrainOptions opts;
  opts.trainer = core::Trainer::kDirectLoss;  // fast for this smoke test
  opts.direct.epochs = 2;
  auto scheme = core::make_teal_scheme(s.pb, s.trace, cfg, opts);
  auto alloc = scheme->solve(s.pb, s.trace.at(0));
  EXPECT_NO_THROW(s.pb.validate_allocation(alloc));
  EXPECT_GT(scheme->last_solve_seconds(), 0.0);
  EXPECT_LT(scheme->last_solve_seconds(), 5.0);
}

TEST(TealScheme, NearOptimalOnB4AfterTraining) {
  // The headline property at unit scale: Teal's satisfied demand lands close
  // to LP-all's on B4.
  auto s = b4_setup(1.8, 20);
  core::TealSchemeConfig cfg;
  core::TealTrainOptions opts;
  opts.coma.epochs = 12;
  opts.coma.lr = 3e-3;
  auto scheme = core::make_teal_scheme(s.pb, s.trace, cfg, opts);

  double teal_sum = 0.0, lp_sum = 0.0;
  for (int t = 16; t < 20; ++t) {
    auto teal_alloc = scheme->solve(s.pb, s.trace.at(t));
    auto lp_alloc = lp::solve_flow_lp(s.pb, s.trace.at(t));
    teal_sum += te::satisfied_demand_pct(s.pb, s.trace.at(t), teal_alloc);
    lp_sum += te::satisfied_demand_pct(s.pb, s.trace.at(t), lp_alloc);
  }
  EXPECT_GT(teal_sum / 4.0, 0.85 * lp_sum / 4.0);
}

TEST(TealScheme, ModelCacheRoundTrip) {
  auto s = b4_setup(2.0, 6);
  auto cache = (std::filesystem::temp_directory_path() / "teal_cache_test.bin").string();
  std::filesystem::remove(cache);
  core::TealSchemeConfig cfg;
  core::TealTrainOptions opts;
  opts.trainer = core::Trainer::kDirectLoss;
  opts.direct.epochs = 1;
  opts.cache_path = cache;
  auto s1 = core::make_teal_scheme(s.pb, s.trace, cfg, opts);
  ASSERT_TRUE(std::filesystem::exists(cache));
  auto s2 = core::make_teal_scheme(s.pb, s.trace, cfg, opts);  // loads
  auto a1 = s1->solve(s.pb, s.trace.at(0));
  auto a2 = s2->solve(s.pb, s.trace.at(0));
  for (std::size_t i = 0; i < a1.split.size(); ++i) {
    EXPECT_DOUBLE_EQ(a1.split[i], a2.split[i]);
  }
  std::filesystem::remove(cache);
}

}  // namespace
}  // namespace teal
