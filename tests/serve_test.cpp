// Tests for the serving layer: served results must be bit-identical to
// sequential solve() over the same trace (the replica-pool commutativity
// contract), admission control must shed under overload instead of queueing
// doomed work, and the stats ledger must balance (offered == accepted + shed,
// completed == accepted after drain, histogram counts == completed). The
// util pieces the server is built from (bounded MPMC queue, latency
// histogram, thread-name helper) are covered here too.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "baselines/lp_schemes.h"
#include "core/teal_scheme.h"
#include "serve/replica.h"
#include "serve/server.h"
#include "sim/served.h"
#include "topo/topology.h"
#include "traffic/traffic.h"
#include "util/histogram.h"
#include "util/mpmc_queue.h"
#include "util/thread_name.h"

namespace teal {
namespace {

struct Setup {
  te::Problem pb;
  traffic::Trace trace;
};

Setup b4_setup(int n_intervals = 6) {
  auto g = topo::make_b4();
  te::Problem pb(std::move(g), te::all_pairs_demands(topo::make_b4()), 4);
  traffic::TraceConfig cfg;
  cfg.n_intervals = n_intervals;
  auto trace = traffic::generate_trace(pb, cfg);
  traffic::calibrate_capacities(pb, trace, 1.5);
  return Setup{std::move(pb), std::move(trace)};
}

// Untrained Teal pipeline: deterministic init, and the serving contract is
// independent of training (same as workspace_test).
core::TealScheme make_teal(const te::Problem& pb) {
  return core::TealScheme(pb,
                          std::make_unique<core::TealModel>(core::TealModelConfig{},
                                                            pb.k_paths()),
                          core::TealSchemeConfig{});
}

void expect_bit_identical(const te::Allocation& a, const te::Allocation& b) {
  ASSERT_EQ(a.split.size(), b.split.size());
  for (std::size_t i = 0; i < a.split.size(); ++i) {
    EXPECT_EQ(a.split[i], b.split[i]) << "split index " << i;
  }
}

void expect_ledger_balanced(const serve::ServeStats& s) {
  EXPECT_EQ(s.accepted + s.shed, s.offered);
  EXPECT_EQ(s.completed, s.accepted);  // after drain()
  EXPECT_EQ(s.queue_wait.count(), s.completed);
  EXPECT_EQ(s.solve.count(), s.completed);
  EXPECT_EQ(s.response.count(), s.completed);
  std::uint64_t per_replica = 0;
  for (const auto& r : s.replicas) per_replica += r.solved;
  EXPECT_EQ(per_replica, s.completed);
}

TEST(Serve, ServedResultsMatchSequentialTeal) {
  auto s = b4_setup();
  auto scheme = make_teal(s.pb);
  sim::ServedConfig cfg;
  cfg.n_replicas = 3;
  cfg.serve.queue_capacity = static_cast<std::size_t>(s.trace.size());
  auto res = sim::run_served(scheme, s.pb, s.trace, cfg);
  ASSERT_EQ(static_cast<int>(res.allocs.size()), s.trace.size());
  expect_ledger_balanced(res.stats);
  EXPECT_EQ(res.stats.shed, 0u);
  ASSERT_EQ(res.stats.replicas.size(), 3u);
  for (int t = 0; t < s.trace.size(); ++t) {
    EXPECT_TRUE(res.accepted[static_cast<std::size_t>(t)]);
    auto seq = scheme.solve(s.pb, s.trace.at(t));
    expect_bit_identical(seq, res.allocs[static_cast<std::size_t>(t)]);
  }
}

TEST(Serve, ServedResultsMatchSequentialLpViaFactory) {
  auto s = b4_setup();
  baselines::LpAllScheme reference;
  sim::ServedConfig cfg;
  cfg.n_replicas = 2;
  cfg.serve.queue_capacity = static_cast<std::size_t>(s.trace.size());
  auto res = sim::run_served(reference, s.pb, s.trace, cfg,
                             [] { return std::make_unique<baselines::LpAllScheme>(); });
  expect_ledger_balanced(res.stats);
  EXPECT_EQ(res.stats.shed, 0u);
  for (int t = 0; t < s.trace.size(); ++t) {
    auto seq = reference.solve(s.pb, s.trace.at(t));
    expect_bit_identical(seq, res.allocs[static_cast<std::size_t>(t)]);
  }
}

TEST(Serve, MakeReplicasRequiresFactoryForSequentialSchemes) {
  baselines::LpAllScheme lp;
  EXPECT_THROW(serve::make_replicas(lp, 2), std::invalid_argument);
}

TEST(Serve, ServerRequiresAtLeastOneReplica) {
  auto s = b4_setup(1);
  EXPECT_THROW(serve::Server(s.pb, std::vector<serve::ReplicaPtr>{}, serve::ServeConfig{}),
               std::invalid_argument);
}

// A replica that takes a fixed (wall-clock) time per solve, so overload and
// admission behaviour are controllable independent of any real scheme.
class SlowReplica final : public serve::Replica {
 public:
  explicit SlowReplica(double seconds) : seconds_(seconds) {}
  void solve(const te::Problem&, const te::TrafficMatrix& tm, te::Allocation& out,
             double* seconds) override {
    std::this_thread::sleep_for(std::chrono::duration<double>(seconds_));
    out.split.assign(1, tm.volume.empty() ? 0.0 : tm.volume[0]);
    if (seconds != nullptr) *seconds = seconds_;
  }

 private:
  double seconds_;
};

TEST(Serve, AdmissionControlShedsUnderOverload) {
  auto s = b4_setup(2);
  std::vector<serve::ReplicaPtr> replicas;
  replicas.push_back(std::make_unique<SlowReplica>(0.003));
  serve::ServeConfig cfg;
  cfg.queue_capacity = 64;
  // Deadline buys exactly one expected solve: the depth bound is 1, so a
  // request is admitted only when the queue is empty.
  cfg.deadline_seconds = 1.0;
  cfg.expected_solve_seconds = 1.0;
  serve::Server server(s.pb, std::move(replicas), cfg);
  EXPECT_EQ(server.admission_depth_bound(), 1u);

  const int n_requests = 32;
  std::vector<te::Allocation> out(n_requests);
  int accepted = 0;
  for (int i = 0; i < n_requests; ++i) {
    if (server.submit(s.trace.at(0), out[static_cast<std::size_t>(i)])) ++accepted;
  }
  server.drain();
  auto stats = server.stop();
  expect_ledger_balanced(stats);
  EXPECT_EQ(stats.offered, static_cast<std::uint64_t>(n_requests));
  EXPECT_EQ(stats.accepted, static_cast<std::uint64_t>(accepted));
  EXPECT_GE(stats.accepted, 1u);  // an idle server always admits
  EXPECT_GT(stats.shed, 0u);      // a burst against depth bound 1 must shed
}

TEST(Serve, QueueBoundShedsWithoutDeadline) {
  auto s = b4_setup(2);
  std::vector<serve::ReplicaPtr> replicas;
  replicas.push_back(std::make_unique<SlowReplica>(0.005));
  serve::ServeConfig cfg;
  cfg.queue_capacity = 2;  // no deadline: only the queue bound sheds
  serve::Server server(s.pb, std::move(replicas), cfg);
  EXPECT_EQ(server.admission_depth_bound(), 0u);
  std::vector<te::Allocation> out(16);
  for (std::size_t i = 0; i < out.size(); ++i) server.submit(s.trace.at(0), out[i]);
  server.drain();
  auto stats = server.stop();
  expect_ledger_balanced(stats);
  EXPECT_GT(stats.shed, 0u);
  EXPECT_LE(stats.accepted, stats.offered);
}

TEST(Serve, SubmitAfterStopIsShed) {
  auto s = b4_setup(2);
  std::vector<serve::ReplicaPtr> replicas;
  replicas.push_back(std::make_unique<SlowReplica>(0.0));
  serve::Server server(s.pb, std::move(replicas), {});
  server.stop();
  te::Allocation out;
  EXPECT_FALSE(server.submit(s.trace.at(0), out));
  // And the refusal names its true cause — not a guessed admission/queue
  // shed — which is what the net layer forwards to clients.
  EXPECT_EQ(server.submit(s.trace.at(0), out, nullptr),
            serve::SubmitResult::kShedStopping);
  auto stats = server.stop();  // idempotent; stats from the first stop()
  EXPECT_EQ(stats.completed, 0u);
}

// Regression test for the shutdown race: stop() used to flip a plain bool and
// join threads without serializing against concurrent stop() callers or
// against submitters mid-flight between the offered++ and the accepted/shed
// increments, so two racing stoppers could double-join and the published
// ledger could be caught unbalanced. Now stop() is mutex-serialized,
// idempotent (every caller gets the same stats), and spins until the counter
// ledger balances before publishing it.
TEST(Serve, ConcurrentStopAndSubmitIsSafe) {
  auto s = b4_setup(1);
  const int n_submitters = 4;
  const int n_per_submitter = 50;
  for (int round = 0; round < 10; ++round) {
    // Output buffers outlive the server (the submit contract: `out` must stay
    // valid until the request completes, and a stop() racing the submitters
    // decides which requests complete).
    std::vector<std::vector<te::Allocation>> outs(
        n_submitters, std::vector<te::Allocation>(n_per_submitter));
    std::vector<serve::ReplicaPtr> replicas;
    replicas.push_back(std::make_unique<SlowReplica>(0.0));
    serve::Server server(s.pb, std::move(replicas), {});

    std::atomic<bool> go{false};
    std::vector<std::thread> submitters;
    for (int t = 0; t < n_submitters; ++t) {
      submitters.emplace_back([&server, &s, &go, &slots = outs[static_cast<std::size_t>(t)]] {
        while (!go.load(std::memory_order_acquire)) {}
        for (int i = 0; i < n_per_submitter; ++i) {
          server.submit(s.trace.at(0), slots[static_cast<std::size_t>(i)]);
        }
      });
    }
    serve::ServeStats from_a, from_b;
    std::thread stop_a([&] {
      while (!go.load(std::memory_order_acquire)) {}
      from_a = server.stop();
    });
    std::thread stop_b([&] {
      while (!go.load(std::memory_order_acquire)) {}
      from_b = server.stop();
    });
    go.store(true, std::memory_order_release);
    for (auto& t : submitters) t.join();
    stop_a.join();
    stop_b.join();

    // Both stoppers observed the same final stats, and the ledger balances no
    // matter where the race landed. (Submits racing past stop() are shed, so
    // offered keeps counting; completed == accepted only covers work that was
    // admitted before the queue closed.)
    EXPECT_EQ(from_a.offered, from_b.offered);
    EXPECT_EQ(from_a.accepted, from_b.accepted);
    EXPECT_EQ(from_a.shed, from_b.shed);
    auto final_stats = server.stop();
    EXPECT_EQ(final_stats.accepted + final_stats.shed, final_stats.offered);
    EXPECT_EQ(final_stats.completed, final_stats.accepted);
  }
}

TEST(Serve, SubmitDoneCallbackRunsOnceWithSolveSeconds) {
  auto s = b4_setup(1);
  std::vector<serve::ReplicaPtr> replicas;
  replicas.push_back(std::make_unique<SlowReplica>(0.001));
  serve::Server server(s.pb, std::move(replicas), {});
  std::atomic<int> calls{0};
  std::atomic<double> seen{-1.0};
  te::Allocation out;
  ASSERT_EQ(server.submit(s.trace.at(0), out,
                          [&](double solve_s) {
                            seen.store(solve_s, std::memory_order_relaxed);
                            calls.fetch_add(1, std::memory_order_relaxed);
                          }),
            serve::SubmitResult::kAccepted);
  server.drain();
  // drain() returning implies the callback already ran (it fires before the
  // completion count the drain waits on).
  EXPECT_EQ(calls.load(), 1);
  EXPECT_DOUBLE_EQ(seen.load(), 0.001);  // SlowReplica reports its configured time
  auto stats = server.stop();
  expect_ledger_balanced(stats);
}

TEST(MpmcQueue, BoundedFifoAndCloseSemantics) {
  util::MpmcQueue<int> q(3);
  EXPECT_TRUE(q.try_push(1));
  EXPECT_TRUE(q.try_push(2));
  EXPECT_TRUE(q.try_push(3));
  EXPECT_FALSE(q.try_push(4)) << "bounded queue must reject when full";
  int v = 0;
  EXPECT_TRUE(q.pop(v));
  EXPECT_EQ(v, 1);
  q.close();
  EXPECT_FALSE(q.try_push(5)) << "closed queue must reject pushes";
  // Items queued before close() still drain, in FIFO order.
  EXPECT_TRUE(q.pop(v));
  EXPECT_EQ(v, 2);
  EXPECT_TRUE(q.pop(v));
  EXPECT_EQ(v, 3);
  EXPECT_FALSE(q.pop(v)) << "closed and drained queue must return false";
}

TEST(MpmcQueue, CloseWakesBlockedConsumer) {
  util::MpmcQueue<int> q(1);
  std::thread consumer([&] {
    int v;
    EXPECT_FALSE(q.pop(v));
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  q.close();
  consumer.join();
}

TEST(LatencyHistogram, PercentilesWithinBucketResolution) {
  util::LatencyHistogram h;
  for (int i = 1; i <= 1000; ++i) h.record(static_cast<double>(i) * 1e-3);  // 1ms..1s
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_DOUBLE_EQ(h.min_seconds(), 1e-3);
  EXPECT_DOUBLE_EQ(h.max_seconds(), 1.0);
  // Geometric buckets at ratio 2^(1/4) ≈ 19% resolution; allow 25%.
  EXPECT_NEAR(h.percentile(50.0), 0.5, 0.5 * 0.25);
  EXPECT_NEAR(h.percentile(99.0), 0.99, 0.99 * 0.25);
  EXPECT_LE(h.percentile(100.0), h.max_seconds());
  EXPECT_GE(h.percentile(0.0), h.min_seconds());
}

TEST(LatencyHistogram, MergeAccumulates) {
  util::LatencyHistogram a, b;
  a.record(0.001);
  a.record(0.002);
  b.record(1.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_DOUBLE_EQ(a.max_seconds(), 1.0);
  EXPECT_DOUBLE_EQ(a.min_seconds(), 0.001);
  EXPECT_NEAR(a.sum_seconds(), 1.003, 1e-12);
}

TEST(ThreadName, HelperRoundTripsAndServesReplicas) {
  std::thread t([] {
    util::set_current_thread_name("teal-serve", 7);
    EXPECT_EQ(util::current_thread_name(), "teal-serve/7");
  });
  t.join();
}

}  // namespace
}  // namespace teal
