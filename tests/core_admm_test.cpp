// Tests for ADMM fine-tuning (§3.4, Appendix C): violation reduction,
// demand-constraint preservation, objective improvement from a warm start,
// and the cold-start observation that motivates warm-starting.
#include <gtest/gtest.h>

#include "core/admm.h"
#include "te/objective.h"
#include "topo/topology.h"
#include "traffic/traffic.h"

namespace teal {
namespace {

te::Problem b4_problem(double util = 1.5, traffic::Trace* trace_out = nullptr) {
  auto g = topo::make_b4();
  te::Problem pb(std::move(g), te::all_pairs_demands(topo::make_b4()), 4);
  traffic::TraceConfig cfg;
  cfg.n_intervals = 5;
  auto trace = traffic::generate_trace(pb, cfg);
  traffic::calibrate_capacities(pb, trace, util);
  if (trace_out) *trace_out = trace;
  return pb;
}

// An intentionally violating allocation: every demand fully on its shortest
// path (overloads popular links when demand exceeds capacity).
te::Allocation violating_allocation(const te::Problem& pb) {
  return pb.shortest_path_allocation();
}

TEST(Admm, DefaultIterationCountsFollowPaper) {
  EXPECT_EQ(core::default_admm_iterations(12), 2);
  EXPECT_EQ(core::default_admm_iterations(99), 2);
  EXPECT_EQ(core::default_admm_iterations(100), 5);
  EXPECT_EQ(core::default_admm_iterations(1739), 5);
}

TEST(Admm, ReducesConstraintViolation) {
  traffic::Trace trace;
  auto pb = b4_problem(3.0, &trace);  // heavily oversubscribed
  core::AdmmConfig cfg;
  cfg.iterations = 5;
  core::Admm admm(pb, cfg);
  auto a = violating_allocation(pb);
  auto res = admm.fine_tune(trace.at(0), pb.capacities(), a);
  EXPECT_GT(res.before, 0.0);
  EXPECT_LT(res.after, res.before);
}

TEST(Admm, KeepsDemandConstraint) {
  traffic::Trace trace;
  auto pb = b4_problem(2.0, &trace);
  core::Admm admm(pb, {});
  auto a = violating_allocation(pb);
  admm.fine_tune(trace.at(0), pb.capacities(), a);
  EXPECT_NO_THROW(pb.validate_allocation(a, 1e-6));
}

TEST(Admm, ImprovesFeasibleFlowOfOverloadedStart) {
  traffic::Trace trace;
  auto pb = b4_problem(3.0, &trace);
  core::AdmmConfig cfg;
  cfg.iterations = 5;
  core::Admm admm(pb, cfg);
  const auto& tm = trace.at(0);
  auto raw = violating_allocation(pb);
  double before = te::total_feasible_flow(pb, tm, raw);
  auto tuned = raw;
  admm.fine_tune(tm, pb.capacities(), tuned);
  double after = te::total_feasible_flow(pb, tm, tuned);
  // Rebalancing away from overloaded shortest paths must help under heavy
  // oversubscription.
  EXPECT_GT(after, before);
}

TEST(Admm, MoreIterationsNoWorseViolation) {
  traffic::Trace trace;
  auto pb = b4_problem(3.0, &trace);
  const auto& tm = trace.at(0);
  double prev = 1e18;
  for (int iters : {1, 3, 8, 20}) {
    core::AdmmConfig cfg;
    cfg.iterations = iters;
    core::Admm admm(pb, cfg);
    auto a = violating_allocation(pb);
    auto res = admm.fine_tune(tm, pb.capacities(), a);
    EXPECT_LE(res.after, prev * 1.05);  // monotone up to small numeric noise
    prev = res.after;
  }
}

TEST(Admm, ColdStartNeedsManyIterations) {
  // §3.4: "using ADMM alone does not accelerate TE optimization" — from a
  // cold (uniform) start, 5 iterations leave substantially more violation
  // than 60 iterations do. This is the motivation for warm-starting.
  traffic::Trace trace;
  auto pb = b4_problem(3.0, &trace);
  const auto& tm = trace.at(0);
  te::Allocation uniform = pb.empty_allocation();
  for (int d = 0; d < pb.num_demands(); ++d) {
    for (int p = pb.path_begin(d); p < pb.path_end(d); ++p) {
      uniform.split[static_cast<std::size_t>(p)] =
          1.0 / static_cast<double>(pb.num_paths(d));
    }
  }
  core::AdmmConfig few;
  few.iterations = 5;
  auto a_few = uniform;
  auto res_few = core::Admm(pb, few).fine_tune(tm, pb.capacities(), a_few);

  core::AdmmConfig many;
  many.iterations = 60;
  auto a_many = uniform;
  auto res_many = core::Admm(pb, many).fine_tune(tm, pb.capacities(), a_many);

  EXPECT_LT(res_many.after, res_few.after);
}

TEST(Admm, RespectsCapacityOverride) {
  traffic::Trace trace;
  auto pb = b4_problem(2.0, &trace);
  core::AdmmConfig cfg;
  cfg.iterations = 30;
  core::Admm admm(pb, cfg);
  auto caps = pb.capacities();
  caps[0] = 0.0;  // failed link
  auto a = violating_allocation(pb);
  admm.fine_tune(trace.at(0), caps, a);
  // Traffic on the failed edge should be (nearly) removed.
  auto load = te::edge_loads(pb, trace.at(0), a);
  double total = trace.at(0).total();
  EXPECT_LT(load[0], 0.05 * total);
}

TEST(Admm, NoViolationIsStable) {
  // Starting from an allocation far inside the feasible region, ADMM should
  // not introduce violations.
  traffic::Trace trace;
  auto pb = b4_problem(1.2, &trace);
  core::Admm admm(pb, {});
  auto a = pb.empty_allocation();  // route nothing
  auto res = admm.fine_tune(trace.at(0), pb.capacities(), a);
  EXPECT_DOUBLE_EQ(res.before, 0.0);
  // And it should start routing traffic (objective pressure), not stay at 0.
  double routed = 0.0;
  for (double s : a.split) routed += s;
  EXPECT_GT(routed, 0.0);
}

}  // namespace
}  // namespace teal
