// Tests for the Fleischer approximation solver and topology serialization.
#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>

#include "lp/fleischer.h"
#include "lp/path_lp.h"
#include "te/objective.h"
#include "topo/topo_io.h"
#include "topo/topology.h"
#include "traffic/traffic.h"

namespace teal {
namespace {

struct Setup {
  te::Problem pb;
  traffic::Trace trace;
};

Setup b4_setup(double sp_target = 72.0) {
  auto g = topo::make_b4();
  te::Problem pb(g, te::all_pairs_demands(g), 4);
  traffic::TraceConfig cfg;
  cfg.n_intervals = 6;
  auto trace = traffic::generate_trace(pb, cfg);
  traffic::calibrate_capacities_to_satisfied(pb, trace, sp_target);
  return Setup{std::move(pb), std::move(trace)};
}

TEST(Fleischer, FeasibleAllocation) {
  auto s = b4_setup();
  const auto& tm = s.trace.at(0);
  lp::FleischerResult res;
  auto a = lp::fleischer_max_flow(s.pb, tm, {}, &res);
  EXPECT_NO_THROW(s.pb.validate_allocation(a, 1e-6));
  auto load = te::edge_loads(s.pb, tm, a);
  auto caps = s.pb.capacities();
  for (std::size_t e = 0; e < load.size(); ++e) {
    EXPECT_LE(load[e], caps[e] * (1.0 + 1e-9));
  }
  EXPECT_GT(res.objective, 0.0);
  EXPECT_GT(res.iterations, 0);
}

TEST(Fleischer, ApproachesLpOptimum) {
  auto s = b4_setup();
  const auto& tm = s.trace.at(0);
  lp::FlowLpInfo lp_info;
  lp::solve_flow_lp(s.pb, tm, {}, {}, &lp_info);
  lp::FleischerOptions opt;
  opt.eps = 0.05;
  lp::FleischerResult res;
  lp::fleischer_max_flow(s.pb, tm, opt, &res);
  // (1 - O(eps)) guarantee plus repair slack: expect within 20% here.
  EXPECT_GT(res.objective, 0.8 * lp_info.objective);
  EXPECT_LE(res.objective, lp_info.objective * 1.01);
}

TEST(Fleischer, SmallerEpsMoreIterationsBetterQuality) {
  // The §2.1 tradeoff: tightening eps inflates the iteration count.
  auto s = b4_setup();
  const auto& tm = s.trace.at(0);
  lp::FleischerOptions loose;
  loose.eps = 0.4;
  lp::FleischerOptions tight;
  tight.eps = 0.05;
  lp::FleischerResult r_loose, r_tight;
  lp::fleischer_max_flow(s.pb, tm, loose, &r_loose);
  lp::fleischer_max_flow(s.pb, tm, tight, &r_tight);
  EXPECT_GT(r_tight.iterations, r_loose.iterations);
  EXPECT_GE(r_tight.objective, r_loose.objective * 0.95);
}

TEST(Fleischer, ZeroDemandsGiveEmptyAllocation) {
  auto s = b4_setup();
  te::TrafficMatrix tm;
  tm.volume.assign(static_cast<std::size_t>(s.pb.num_demands()), 0.0);
  lp::FleischerResult res;
  auto a = lp::fleischer_max_flow(s.pb, tm, {}, &res);
  EXPECT_DOUBLE_EQ(res.objective, 0.0);
  for (double sp : a.split) EXPECT_DOUBLE_EQ(sp, 0.0);
}

TEST(TopoIo, RoundTripExact) {
  auto g = topo::make_swan_like(3);
  std::stringstream ss;
  topo::save_topology(g, ss);
  auto g2 = topo::load_topology(ss, "SWAN");
  ASSERT_EQ(g2.num_nodes(), g.num_nodes());
  ASSERT_EQ(g2.num_edges(), g.num_edges());
  for (topo::EdgeId e = 0; e < g.num_edges(); ++e) {
    EXPECT_EQ(g2.edge(e).src, g.edge(e).src);
    EXPECT_EQ(g2.edge(e).dst, g.edge(e).dst);
    EXPECT_DOUBLE_EQ(g2.edge(e).capacity, g.edge(e).capacity);
    EXPECT_DOUBLE_EQ(g2.edge(e).latency, g.edge(e).latency);
  }
}

TEST(TopoIo, FileRoundTrip) {
  auto g = topo::make_b4();
  auto path = (std::filesystem::temp_directory_path() / "teal_topo_test.txt").string();
  topo::save_topology_file(g, path);
  auto g2 = topo::load_topology_file(path);
  EXPECT_EQ(g2.num_nodes(), 12);
  EXPECT_EQ(g2.num_edges(), 38);
  EXPECT_TRUE(g2.is_strongly_connected());
  std::filesystem::remove(path);
}

TEST(TopoIo, RejectsMalformedInput) {
  {
    std::stringstream ss("edge 0 1 1.0 1.0\n");  // edge before nodes
    EXPECT_THROW(topo::load_topology(ss), std::runtime_error);
  }
  {
    std::stringstream ss("nodes 2\nedge 0\n");  // truncated edge
    EXPECT_THROW(topo::load_topology(ss), std::runtime_error);
  }
  {
    std::stringstream ss("nodes 2\nfrobnicate\n");  // unknown directive
    EXPECT_THROW(topo::load_topology(ss), std::runtime_error);
  }
  EXPECT_THROW(topo::load_topology_file("/nonexistent/t.txt"), std::runtime_error);
}

TEST(TopoIo, CommentsAndBlankLinesIgnored) {
  std::stringstream ss("# hello\n\nnodes 2\n# mid comment\nedge 0 1 5.0 2.0\n");
  auto g = topo::load_topology(ss, "t");
  EXPECT_EQ(g.num_nodes(), 2);
  EXPECT_EQ(g.num_edges(), 1);
  EXPECT_DOUBLE_EQ(g.edge(0).capacity, 5.0);
}

}  // namespace
}  // namespace teal
