// Tests for the analysis tooling (exact t-SNE used by Figure 16).
#include <gtest/gtest.h>

#include <cmath>

#include "analysis/tsne.h"
#include "util/rng.h"

namespace teal {
namespace {

TEST(Tsne, EmptyAndTrivialInputs) {
  EXPECT_TRUE(analysis::tsne_2d({}).empty());
}

TEST(Tsne, SeparatesTwoGaussianClusters) {
  util::Rng rng(3);
  std::vector<std::vector<double>> pts;
  const int per_cluster = 60;
  for (int i = 0; i < per_cluster; ++i) {
    pts.push_back({rng.normal(0.0, 0.3), rng.normal(0.0, 0.3), rng.normal(0.0, 0.3)});
  }
  for (int i = 0; i < per_cluster; ++i) {
    pts.push_back({rng.normal(8.0, 0.3), rng.normal(8.0, 0.3), rng.normal(8.0, 0.3)});
  }
  analysis::TsneConfig cfg;
  cfg.n_iterations = 300;
  cfg.perplexity = 15.0;
  auto y = analysis::tsne_2d(pts, cfg);
  ASSERT_EQ(y.size(), pts.size());

  // Mean intra-cluster distance should be far below inter-cluster distance.
  auto dist = [&](std::size_t i, std::size_t j) {
    return std::hypot(y[i][0] - y[j][0], y[i][1] - y[j][1]);
  };
  double intra = 0.0, inter = 0.0;
  int ni = 0, nx = 0;
  for (std::size_t i = 0; i < y.size(); i += 3) {
    for (std::size_t j = i + 1; j < y.size(); j += 3) {
      bool same = (i < per_cluster) == (j < per_cluster);
      if (same) {
        intra += dist(i, j);
        ++ni;
      } else {
        inter += dist(i, j);
        ++nx;
      }
    }
  }
  intra /= ni;
  inter /= nx;
  EXPECT_GT(inter, 2.0 * intra);
}

TEST(Tsne, RaggedInputThrows) {
  EXPECT_THROW(analysis::tsne_2d({{1.0, 2.0}, {1.0}}), std::invalid_argument);
}

TEST(Tsne, DeterministicForFixedSeed) {
  std::vector<std::vector<double>> pts;
  util::Rng rng(9);
  for (int i = 0; i < 30; ++i) pts.push_back({rng.normal(), rng.normal()});
  analysis::TsneConfig cfg;
  cfg.n_iterations = 50;
  auto a = analysis::tsne_2d(pts, cfg);
  auto b = analysis::tsne_2d(pts, cfg);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i][0], b[i][0]);
    EXPECT_DOUBLE_EQ(a[i][1], b[i][1]);
  }
}

}  // namespace
}  // namespace teal
