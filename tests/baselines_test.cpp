// Tests for the baseline TE schemes: LP-all optimality dominance, LP-top's
// demand-pinning structure, NCFlow decomposition, POP replication, TEAVAR*.
#include <gtest/gtest.h>

#include "baselines/lp_schemes.h"
#include "baselines/ncflow.h"
#include "baselines/pop.h"
#include "baselines/teavar.h"
#include "topo/topology.h"
#include "traffic/traffic.h"

namespace teal {
namespace {

struct Setup {
  te::Problem pb;
  traffic::Trace trace;
};

Setup make_setup(const std::string& topo_name, int n_demands, double util = 1.8,
                 int intervals = 4) {
  auto g = topo::make_topology(topo_name);
  auto demands = traffic::sample_demands(g, n_demands, 7);
  te::Problem pb(std::move(g), std::move(demands), 4);
  traffic::TraceConfig cfg;
  cfg.n_intervals = intervals;
  auto trace = traffic::generate_trace(pb, cfg);
  traffic::calibrate_capacities(pb, trace, util);
  return Setup{std::move(pb), std::move(trace)};
}

TEST(LpAll, FeasibleAndDominatesHeuristics) {
  auto s = make_setup("B4", 1 << 20);
  baselines::LpAllScheme lp_all;
  baselines::LpTopScheme lp_top;
  const auto& tm = s.trace.at(0);
  auto a_all = lp_all.solve(s.pb, tm);
  auto a_top = lp_top.solve(s.pb, tm);
  s.pb.validate_allocation(a_all);
  double f_all = te::total_feasible_flow(s.pb, tm, a_all);
  double f_top = te::total_feasible_flow(s.pb, tm, a_top);
  // LP-all solves the full problem: offline it must be at least as good
  // (within solver tolerance).
  EXPECT_GE(f_all, f_top * 0.995);
  EXPECT_GT(lp_all.last_solve_seconds(), 0.0);
}

TEST(LpTop, PinsTailDemandsToShortestPaths) {
  auto s = make_setup("B4", 1 << 20);
  baselines::LpTopScheme lp_top(0.10);
  const auto& tm = s.trace.at(0);
  auto a = lp_top.solve(s.pb, tm);
  // Find a demand outside the top 10%: its allocation must be exactly the
  // shortest path.
  std::vector<int> order(static_cast<std::size_t>(s.pb.num_demands()));
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int x, int y) {
    return tm.volume[static_cast<std::size_t>(x)] > tm.volume[static_cast<std::size_t>(y)];
  });
  int tail_demand = order.back();
  EXPECT_DOUBLE_EQ(a.split[static_cast<std::size_t>(s.pb.path_begin(tail_demand))], 1.0);
  for (int p = s.pb.path_begin(tail_demand) + 1; p < s.pb.path_end(tail_demand); ++p) {
    EXPECT_DOUBLE_EQ(a.split[static_cast<std::size_t>(p)], 0.0);
  }
}

TEST(Partition, CoversAllNodesConnected) {
  auto g = topo::make_uscarrier_like(2);
  auto part = baselines::partition_nodes(g, 10, 3);
  ASSERT_EQ(static_cast<int>(part.size()), g.num_nodes());
  std::set<int> used(part.begin(), part.end());
  EXPECT_GE(static_cast<int>(used.size()), 8);  // most clusters non-empty
  for (int c : part) {
    EXPECT_GE(c, 0);
    EXPECT_LT(c, 10);
  }
}

TEST(NcFlow, ProducesFeasibleAllocation) {
  auto s = make_setup("UsCarrier", 600);
  baselines::NcFlowConfig cfg;
  cfg.pdhg.max_iterations = 4000;
  baselines::NcFlowScheme ncflow(s.pb, cfg);
  EXPECT_GT(ncflow.n_clusters(), 1);
  const auto& tm = s.trace.at(0);
  auto a = ncflow.solve(s.pb, tm);
  s.pb.validate_allocation(a);
  // The merge step repairs to feasibility.
  auto load = te::edge_loads(s.pb, tm, a);
  auto caps = s.pb.capacities();
  for (std::size_t e = 0; e < load.size(); ++e) EXPECT_LE(load[e], caps[e] * 1.0 + 1e-6);
}

TEST(NcFlow, LosesQualityVersusLpAll) {
  // The decomposition tradeoff (§2.1): NCFlow should not beat LP-all offline.
  auto s = make_setup("UsCarrier", 400);
  baselines::NcFlowScheme ncflow(s.pb, {});
  baselines::LpAllScheme lp_all;
  const auto& tm = s.trace.at(0);
  double f_nc = te::total_feasible_flow(s.pb, tm, ncflow.solve(s.pb, tm));
  double f_all = te::total_feasible_flow(s.pb, tm, lp_all.solve(s.pb, tm));
  EXPECT_LE(f_nc, f_all * 1.005);
}

TEST(Pop, DefaultReplicaCountsFollowPaper) {
  EXPECT_EQ(baselines::default_pop_replicas(12), 1);     // B4
  EXPECT_EQ(baselines::default_pop_replicas(110), 1);    // SWAN
  EXPECT_EQ(baselines::default_pop_replicas(158), 4);    // UsCarrier
  EXPECT_EQ(baselines::default_pop_replicas(754), 128);  // Kdl
  EXPECT_EQ(baselines::default_pop_replicas(1739), 128); // ASN
}

TEST(Pop, FeasibleByConstructionWithReplicas) {
  auto s = make_setup("UsCarrier", 500);
  baselines::PopConfig cfg;
  cfg.k = 4;
  baselines::PopScheme pop(cfg);
  const auto& tm = s.trace.at(0);
  auto a = pop.solve(s.pb, tm);
  s.pb.validate_allocation(a);
  auto load = te::edge_loads(s.pb, tm, a);
  auto caps = s.pb.capacities();
  for (std::size_t e = 0; e < load.size(); ++e) {
    EXPECT_LE(load[e], caps[e] + 1e-6) << "edge " << e;
  }
}

TEST(Pop, KOneEqualsLpAll) {
  auto s = make_setup("B4", 1 << 20);
  baselines::PopConfig cfg;
  cfg.k = 1;
  baselines::PopScheme pop(cfg);
  baselines::LpAllScheme lp_all;
  const auto& tm = s.trace.at(0);
  double f_pop = te::total_feasible_flow(s.pb, tm, pop.solve(s.pb, tm));
  double f_all = te::total_feasible_flow(s.pb, tm, lp_all.solve(s.pb, tm));
  EXPECT_NEAR(f_pop, f_all, 0.01 * f_all);
}

TEST(Pop, MoreReplicasLosePerformance) {
  // The k-vs-quality tradeoff that motivates Teal (§2.1): large k hurts.
  auto s = make_setup("UsCarrier", 400, 2.5);
  const auto& tm = s.trace.at(0);
  baselines::PopConfig c1;
  c1.k = 1;
  baselines::PopConfig c16;
  c16.k = 16;
  double f1 = te::total_feasible_flow(s.pb, tm, baselines::PopScheme(c1).solve(s.pb, tm));
  double f16 = te::total_feasible_flow(s.pb, tm, baselines::PopScheme(c16).solve(s.pb, tm));
  EXPECT_LE(f16, f1 * 1.01);
}

TEST(Teavar, SacrificesUtilizationForAvailability) {
  auto s = make_setup("B4", 1 << 20, 2.0);
  baselines::TeavarStarScheme teavar;
  baselines::LpAllScheme lp_all;
  const auto& tm = s.trace.at(0);
  auto a_tv = teavar.solve(s.pb, tm);
  s.pb.validate_allocation(a_tv);
  double f_tv = te::total_feasible_flow(s.pb, tm, a_tv);
  double f_all = te::total_feasible_flow(s.pb, tm, lp_all.solve(s.pb, tm));
  // Figure 8: TEAVAR* trails the utilization-maximizing schemes.
  EXPECT_LT(f_tv, f_all);
  EXPECT_GT(f_tv, 0.5 * f_all);  // but it is not unreasonable
}

TEST(Teavar, PrefersShortReliablePaths) {
  auto s = make_setup("B4", 1 << 20, 1.0);  // uncongested: weights decide
  baselines::TeavarConfig cfg;
  cfg.theta = 8.0;
  baselines::TeavarStarScheme teavar(cfg);
  const auto& tm = s.trace.at(0);
  auto a = teavar.solve(s.pb, tm);
  // Aggregate: volume-weighted average hop count of used paths should not
  // exceed that of LP-all (which is indifferent to path length).
  baselines::LpAllScheme lp_all;
  auto a_lp = lp_all.solve(s.pb, tm);
  auto mean_hops = [&](const te::Allocation& al) {
    double num = 0.0, den = 0.0;
    for (int p = 0; p < s.pb.total_paths(); ++p) {
      double f = al.split[static_cast<std::size_t>(p)] *
                 tm.volume[static_cast<std::size_t>(s.pb.demand_of_path(p))];
      num += f * static_cast<double>(s.pb.path_edges(p).size());
      den += f;
    }
    return den > 0.0 ? num / den : 0.0;
  };
  EXPECT_LE(mean_hops(a), mean_hops(a_lp) + 0.05);
}

}  // namespace
}  // namespace teal
