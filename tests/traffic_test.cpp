// Unit tests for the traffic substrate: demand sampling, trace generation
// (heavy-tail calibration per §5.1), §5.4 perturbations, capacity calibration.
#include <gtest/gtest.h>

#include <set>

#include "te/objective.h"
#include "topo/topology.h"
#include "traffic/traffic.h"

namespace teal {
namespace {

te::Problem small_problem() {
  return te::Problem(topo::make_b4(), te::all_pairs_demands(topo::make_b4()), 4);
}

TEST(SampleDemands, ReturnsAllPairsWhenAsked) {
  auto g = topo::make_b4();
  auto d = traffic::sample_demands(g, 1000000, 1);
  EXPECT_EQ(d.size(), 12u * 11u);
}

TEST(SampleDemands, DistinctPairsAndCount) {
  auto g = topo::make_swan_like(1);
  auto d = traffic::sample_demands(g, 500, 2);
  EXPECT_EQ(d.size(), 500u);
  std::set<std::pair<int, int>> pairs;
  for (const auto& dem : d) {
    EXPECT_NE(dem.src, dem.dst);
    pairs.insert({dem.src, dem.dst});
  }
  EXPECT_EQ(pairs.size(), 500u);
}

TEST(Trace, ShapeAndPositivity) {
  auto pb = small_problem();
  traffic::TraceConfig cfg;
  cfg.n_intervals = 50;
  auto trace = traffic::generate_trace(pb, cfg);
  ASSERT_EQ(trace.size(), 50);
  for (const auto& tm : trace.matrices) {
    ASSERT_EQ(static_cast<int>(tm.volume.size()), pb.num_demands());
    for (double v : tm.volume) EXPECT_GE(v, 0.0);
    EXPECT_GT(tm.total(), 0.0);
  }
}

TEST(Trace, Deterministic) {
  auto pb = small_problem();
  traffic::TraceConfig cfg;
  cfg.n_intervals = 10;
  auto a = traffic::generate_trace(pb, cfg);
  auto b = traffic::generate_trace(pb, cfg);
  for (int t = 0; t < 10; ++t) {
    for (std::size_t d = 0; d < a.at(t).volume.size(); ++d) {
      EXPECT_DOUBLE_EQ(a.at(t).volume[d], b.at(t).volume[d]);
    }
  }
}

TEST(Trace, HeavyTailCalibration) {
  // §5.1: top 10% of demands carry ~88.4% of volume. Our lognormal sigma is
  // calibrated for that in expectation; allow sampling slack.
  auto g = topo::make_swan_like(1);
  te::Problem pb(g, traffic::sample_demands(g, 2000, 3), 4);
  traffic::TraceConfig cfg;
  cfg.n_intervals = 20;
  auto trace = traffic::generate_trace(pb, cfg);
  double share = traffic::top_share(trace, 0.10);
  EXPECT_GT(share, 0.78);
  EXPECT_LT(share, 0.97);
}

TEST(TraceSplit, Proportions) {
  auto pb = small_problem();
  traffic::TraceConfig cfg;
  cfg.n_intervals = 100;
  auto trace = traffic::generate_trace(pb, cfg);
  auto split = traffic::split_trace(trace);
  EXPECT_EQ(split.train.size(), 70);
  EXPECT_EQ(split.val.size(), 10);
  EXPECT_EQ(split.test.size(), 20);
  // Consecutive and disjoint.
  EXPECT_DOUBLE_EQ(split.train.at(0).volume[0], trace.at(0).volume[0]);
  EXPECT_DOUBLE_EQ(split.test.at(0).volume[0], trace.at(80).volume[0]);
}

TEST(PerturbTemporal, IncreasesVariance) {
  auto pb = small_problem();
  traffic::TraceConfig cfg;
  cfg.n_intervals = 60;
  auto trace = traffic::generate_trace(pb, cfg);
  auto shaken = traffic::perturb_temporal(trace, 10.0, 99);
  ASSERT_EQ(shaken.size(), trace.size());
  // Compare variance of consecutive deltas for the first demand.
  auto delta_var = [](const traffic::Trace& tr, std::size_t d) {
    std::vector<double> deltas;
    for (int t = 1; t < tr.size(); ++t) {
      deltas.push_back(tr.at(t).volume[d] - tr.at(t - 1).volume[d]);
    }
    double m = 0;
    for (double x : deltas) m += x;
    m /= static_cast<double>(deltas.size());
    double v = 0;
    for (double x : deltas) v += (x - m) * (x - m);
    return v / static_cast<double>(deltas.size());
  };
  // Aggregate over demands to avoid flakiness.
  double base = 0, pert = 0;
  for (std::size_t d = 0; d < 30; ++d) {
    base += delta_var(trace, d);
    pert += delta_var(shaken, d);
  }
  EXPECT_GT(pert, 2.0 * base);
  for (const auto& tm : shaken.matrices) {
    for (double v : tm.volume) EXPECT_GE(v, 0.0);
  }
}

TEST(PerturbTemporal, FactorZeroKeepsNonNegativeAndClose) {
  auto pb = small_problem();
  traffic::TraceConfig cfg;
  cfg.n_intervals = 10;
  auto trace = traffic::generate_trace(pb, cfg);
  auto same = traffic::perturb_temporal(trace, 0.0, 5);
  for (int t = 0; t < 10; ++t) {
    for (std::size_t d = 0; d < same.at(t).volume.size(); ++d) {
      EXPECT_DOUBLE_EQ(same.at(t).volume[d], trace.at(t).volume[d]);
    }
  }
}

TEST(PerturbSpatial, HitsTargetShareAndPreservesTotal) {
  auto g = topo::make_swan_like(1);
  te::Problem pb(g, traffic::sample_demands(g, 1000, 3), 4);
  traffic::TraceConfig cfg;
  cfg.n_intervals = 12;
  auto trace = traffic::generate_trace(pb, cfg);
  auto original_top = traffic::top_demand_indices(trace, 0.10);
  for (double target : {0.8, 0.6, 0.4, 0.2}) {
    auto redist = traffic::perturb_spatial(trace, target);
    // §5.4 re-targets the share of the *original* top-10% set.
    EXPECT_NEAR(traffic::share_of(redist, original_top), target, 0.02);
    for (int t = 0; t < trace.size(); ++t) {
      EXPECT_NEAR(redist.at(t).total(), trace.at(t).total(),
                  1e-6 * trace.at(t).total());
    }
  }
}

TEST(PerturbSpatial, RejectsBadTarget) {
  auto pb = small_problem();
  traffic::TraceConfig cfg;
  cfg.n_intervals = 5;
  auto trace = traffic::generate_trace(pb, cfg);
  EXPECT_THROW(traffic::perturb_spatial(trace, 0.0), std::invalid_argument);
  EXPECT_THROW(traffic::perturb_spatial(trace, 1.0), std::invalid_argument);
}

TEST(CalibrateCapacities, SetsShortestPathPeakUtil) {
  auto pb = small_problem();
  traffic::TraceConfig cfg;
  cfg.n_intervals = 10;
  auto trace = traffic::generate_trace(pb, cfg);
  traffic::calibrate_capacities(pb, trace, 1.5);

  te::TrafficMatrix mean_tm;
  mean_tm.volume.assign(trace.at(0).volume.size(), 0.0);
  for (const auto& tm : trace.matrices) {
    for (std::size_t d = 0; d < mean_tm.volume.size(); ++d) {
      mean_tm.volume[d] += tm.volume[d] / trace.size();
    }
  }
  double mlu = te::max_link_utilization(pb, mean_tm, pb.shortest_path_allocation());
  EXPECT_NEAR(mlu, 1.5, 1e-6);
}

}  // namespace
}  // namespace teal
