// Randomized consistency checks for the RewardSimulator's edge-local
// counterfactual values against exact global recomputation: for the total
// flow objective, the *difference* of local values between two candidate
// actions of one agent must track the difference of exact global rewards
// (same sign for clear-cut cases, bounded error in general). This is the
// property COMA*'s advantages rely on.
#include <gtest/gtest.h>

#include "core/model.h"
#include "core/reward.h"
#include "topo/topology.h"
#include "traffic/traffic.h"
#include "util/rng.h"

namespace teal {
namespace {

struct Env {
  te::Problem pb;
  traffic::Trace trace;
};

Env make_env(std::uint64_t seed) {
  auto g = topo::make_swan_like(seed);
  te::Problem pb(std::move(g), traffic::sample_demands(g, 300, seed + 1), 4);
  traffic::TraceConfig cfg;
  cfg.n_intervals = 3;
  cfg.seed = seed + 2;
  auto trace = traffic::generate_trace(pb, cfg);
  traffic::calibrate_capacities_to_satisfied(pb, trace, 70.0);
  return Env{std::move(pb), std::move(trace)};
}

// Exact global reward with demand d's splits replaced by `cand`.
double exact_with(const te::Problem& pb, const te::TrafficMatrix& tm,
                  const nn::Mat& splits, int d, const double* cand) {
  nn::Mat s = splits;
  for (int c = 0; c < s.cols(); ++c) s.at(d, c) = cand[c];
  auto a = core::allocation_from_splits(pb, s);
  return te::total_feasible_flow(pb, tm, a);
}

class RewardConsistency : public testing::TestWithParam<std::uint64_t> {};

TEST_P(RewardConsistency, LocalDeltasTrackExactDeltas) {
  Env env = make_env(GetParam());
  const auto& tm = env.trace.at(0);
  util::Rng rng(GetParam() * 31337);

  // Random joint action.
  const int k = 4;
  nn::Mat splits(env.pb.num_demands(), k);
  for (int d = 0; d < env.pb.num_demands(); ++d) {
    double rest = 1.0;
    for (int c = 0; c < env.pb.num_paths(d) && c < k; ++c) {
      double s = rng.uniform(0.0, rest);
      splits.at(d, c) = s;
      rest -= s;
    }
  }
  core::RewardSimulator sim(env.pb, te::Objective::kTotalFlow);
  sim.set_state(tm, env.pb.capacities(), splits);
  auto scratch = sim.make_scratch();

  int sign_ok = 0, trials = 0;
  for (int trial = 0; trial < 80; ++trial) {
    int d = static_cast<int>(rng.uniform_int(0, env.pb.num_demands() - 1));
    // Two random candidate actions.
    double a1[4] = {0, 0, 0, 0}, a2[4] = {0, 0, 0, 0};
    auto fill = [&](double* a) {
      double rest = 1.0;
      for (int c = 0; c < env.pb.num_paths(d) && c < 4; ++c) {
        a[c] = rng.uniform(0.0, rest);
        rest -= a[c];
      }
    };
    fill(a1);
    fill(a2);

    double local_delta = sim.value_of(d, a1, scratch) - sim.value_of(d, a2, scratch);
    double exact_delta = exact_with(env.pb, tm, splits, d, a1) -
                         exact_with(env.pb, tm, splits, d, a2);
    // Only score clear-cut cases (deltas above numeric noise).
    double mag = std::max(std::abs(local_delta), std::abs(exact_delta));
    if (mag < 1e-6 * tm.total()) continue;
    ++trials;
    if (local_delta * exact_delta > 0.0 ||
        std::abs(local_delta - exact_delta) < 0.2 * mag) {
      ++sign_ok;
    }
  }
  ASSERT_GT(trials, 5);
  // The estimator is approximate (edge-local externalities), but must agree
  // on direction for the overwhelming majority of action comparisons.
  EXPECT_GE(static_cast<double>(sign_ok) / trials, 0.78)
      << sign_ok << "/" << trials << " consistent";
}

INSTANTIATE_TEST_SUITE_P(Seeds, RewardConsistency, testing::Values(2u, 4u, 8u));

}  // namespace
}  // namespace teal
