// Tests for the Figure 14 ablation models: shapes, gradient flow (training
// reduces loss), and the global policy's memory-budget failure on large
// problems (the paper's "memory errors" on ASN).
#include <gtest/gtest.h>

#include "core/direct_loss.h"
#include "core/teal_scheme.h"
#include "core/variants.h"
#include "topo/topology.h"
#include "traffic/traffic.h"

namespace teal {
namespace {

struct Setup {
  te::Problem pb;
  traffic::Trace trace;
};

Setup b4_setup() {
  auto g = topo::make_b4();
  te::Problem pb(std::move(g), te::all_pairs_demands(topo::make_b4()), 4);
  traffic::TraceConfig cfg;
  cfg.n_intervals = 10;
  auto trace = traffic::generate_trace(pb, cfg);
  traffic::calibrate_capacities(pb, trace, 2.2);
  return Setup{std::move(pb), std::move(trace)};
}

TEST(NaiveDnn, ForwardShapesAndMask) {
  auto s = b4_setup();
  core::NaiveDnnModel model({}, s.pb, 3);
  auto fwd = model.forward_m(s.pb, s.trace.at(0));
  EXPECT_EQ(fwd.logits.rows(), s.pb.num_demands());
  EXPECT_EQ(fwd.logits.cols(), 4);
  EXPECT_EQ(fwd.mask.rows(), s.pb.num_demands());
}

TEST(NaiveDnn, TrainsWithDirectLoss) {
  auto s = b4_setup();
  core::NaiveDnnModel model({}, s.pb, 3);
  core::DirectLossConfig cfg;
  cfg.epochs = 6;
  cfg.lr = 3e-3;
  auto stats = core::train_direct_loss(model, s.pb, s.trace, te::Objective::kTotalFlow, cfg);
  EXPECT_GT(stats.epoch_surrogate.back(), stats.epoch_surrogate.front());
}

TEST(NaiveDnn, RejectsMismatchedProblem) {
  auto s = b4_setup();
  core::NaiveDnnModel model({}, s.pb, 3);
  auto g2 = topo::make_b4();
  te::Problem other(std::move(g2), {{0, 1}}, 4);
  te::TrafficMatrix tm;
  tm.volume = {1.0};
  EXPECT_THROW(model.forward_m(other, tm), std::invalid_argument);
}

TEST(NaiveGnn, ForwardDependsOnTopologyFeatures) {
  auto s = b4_setup();
  core::NaiveGnnModel model({}, s.pb, 3);
  auto caps = s.pb.capacities();
  auto f1 = model.forward_m(s.pb, s.trace.at(0), &caps);
  caps[0] *= 0.01;
  auto f2 = model.forward_m(s.pb, s.trace.at(0), &caps);
  double diff = 0.0;
  for (std::size_t i = 0; i < f1.logits.data().size(); ++i) {
    diff += std::abs(f1.logits.data()[i] - f2.logits.data()[i]);
  }
  EXPECT_GT(diff, 1e-9);
}

TEST(NaiveGnn, TrainsWithDirectLoss) {
  auto s = b4_setup();
  core::NaiveGnnModel model({}, s.pb, 3);
  core::DirectLossConfig cfg;
  cfg.epochs = 6;
  cfg.lr = 3e-3;
  auto stats = core::train_direct_loss(model, s.pb, s.trace, te::Objective::kTotalFlow, cfg);
  EXPECT_GT(stats.epoch_surrogate.back(), stats.epoch_surrogate.front());
}

TEST(GlobalPolicy, WorksOnSmallProblem) {
  auto s = b4_setup();
  core::GlobalPolicyConfig cfg;
  cfg.hidden_dim = 32;
  core::GlobalPolicyModel model(cfg, s.pb, 3);
  auto fwd = model.forward_m(s.pb, s.trace.at(0));
  EXPECT_EQ(fwd.logits.rows(), s.pb.num_demands());
  auto splits = core::splits_from_logits(fwd.logits, fwd.mask);
  auto alloc = core::allocation_from_splits(s.pb, splits);
  EXPECT_NO_THROW(s.pb.validate_allocation(alloc));
}

TEST(GlobalPolicy, MemoryBudgetThrowsOnLargeProblems) {
  // Reproduces the §5.7 finding that the global policy has "memory errors"
  // at scale: a tiny budget makes even B4 refuse.
  auto s = b4_setup();
  core::GlobalPolicyConfig cfg;
  cfg.max_params = 1000;
  EXPECT_THROW(core::GlobalPolicyModel(cfg, s.pb, 3), std::length_error);
}

TEST(Variants, PlugIntoTealScheme) {
  auto s = b4_setup();
  core::TealSchemeConfig scfg;
  auto model = std::make_unique<core::NaiveDnnModel>(core::NaiveDnnConfig{}, s.pb, 3);
  core::TealScheme scheme(s.pb, std::move(model), scfg, "Teal w/ naive DNN");
  EXPECT_EQ(scheme.name(), "Teal w/ naive DNN");
  auto alloc = scheme.solve(s.pb, s.trace.at(0));
  EXPECT_NO_THROW(s.pb.validate_allocation(alloc));
}

TEST(Variants, ComaTrainsNaiveGnn) {
  auto s = b4_setup();
  core::NaiveGnnModel model({}, s.pb, 3);
  core::ComaConfig cfg;
  cfg.epochs = 3;
  cfg.lr = 3e-3;
  auto stats = core::train_coma(model, s.pb, s.trace, te::Objective::kTotalFlow, cfg);
  EXPECT_EQ(static_cast<int>(stats.epoch_reward.size()), 3);
}

}  // namespace
}  // namespace teal
