// Unit tests for the util substrate: thread pool, RNG, statistics, tables.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <set>

#include "util/csv.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace teal {
namespace {

TEST(ThreadPool, RunsAllIndices) {
  util::ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(1000, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ChunksCoverRangeExactlyOnce) {
  util::ThreadPool pool(7);
  std::atomic<std::int64_t> sum{0};
  pool.parallel_chunks(12345, [&](std::size_t b, std::size_t e) {
    std::int64_t local = 0;
    for (std::size_t i = b; i < e; ++i) local += static_cast<std::int64_t>(i);
    sum += local;
  });
  EXPECT_EQ(sum.load(), 12345LL * 12344 / 2);
}

TEST(ThreadPool, SubmitReturnsValue) {
  util::ThreadPool pool(2);
  auto fut = pool.submit([] { return 41 + 1; });
  EXPECT_EQ(fut.get(), 42);
}

TEST(ThreadPool, ZeroAndOneElementRanges) {
  util::ThreadPool pool(3);
  int count = 0;
  pool.parallel_for(0, [&](std::size_t) { ++count; });
  EXPECT_EQ(count, 0);
  pool.parallel_for(1, [&](std::size_t) { ++count; });
  EXPECT_EQ(count, 1);
}

TEST(ThreadPool, EnvOverrideParsesValidValues) {
  EXPECT_EQ(util::pool_threads_from_env("1"), 1u);
  EXPECT_EQ(util::pool_threads_from_env("8"), 8u);
  EXPECT_EQ(util::pool_threads_from_env("  8"), 8u);   // leading whitespace (strtoll)
  EXPECT_EQ(util::pool_threads_from_env("8 "), 8u);    // trailing whitespace (shell export)
  EXPECT_EQ(util::pool_threads_from_env("+4"), 4u);
  EXPECT_EQ(util::pool_threads_from_env("1024"), 1024u);  // at the ceiling
}

TEST(ThreadPool, EnvOverrideRejectsGarbage) {
  // 0 is the ThreadPool constructor's "size to the hardware" sentinel — the
  // fallback available_parallelism() resolves to.
  EXPECT_EQ(util::pool_threads_from_env(nullptr), 0u);
  EXPECT_EQ(util::pool_threads_from_env(""), 0u);
  EXPECT_EQ(util::pool_threads_from_env("abc"), 0u);
  EXPECT_EQ(util::pool_threads_from_env("8x"), 0u);          // trailing garbage
  EXPECT_EQ(util::pool_threads_from_env("4 workers"), 0u);   // ditto
  EXPECT_EQ(util::pool_threads_from_env("3.5"), 0u);         // not an integer
  EXPECT_EQ(util::pool_threads_from_env(" "), 0u);
}

TEST(ThreadPool, EnvOverrideRejectsNonPositiveAndOverflow) {
  EXPECT_EQ(util::pool_threads_from_env("0"), 0u);
  EXPECT_EQ(util::pool_threads_from_env("-3"), 0u);
  EXPECT_EQ(util::pool_threads_from_env("-9999999999999999999"), 0u);
  // Above the sanity ceiling: would otherwise ask the OS for that many
  // threads at static-init time.
  EXPECT_EQ(util::pool_threads_from_env("1025"), 0u);
  EXPECT_EQ(util::pool_threads_from_env("1000000"), 0u);
  // Overflows long long entirely (strtoll saturates + ERANGE).
  EXPECT_EQ(util::pool_threads_from_env("99999999999999999999999999"), 0u);
}

TEST(Rng, Deterministic) {
  util::Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
}

TEST(Rng, ForkDecorrelates) {
  util::Rng root(7);
  util::Rng a = root.fork(1);
  util::Rng b = root.fork(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.uniform() == b.uniform()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(Rng, UniformIntBounds) {
  util::Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    auto v = rng.uniform_int(-2, 5);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 5);
  }
}

TEST(Rng, CategoricalRespectsWeights) {
  util::Rng rng(9);
  std::vector<double> w = {0.0, 10.0, 0.0};
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.categorical(w), 1u);
}

TEST(Rng, CategoricalEmptyThrows) {
  util::Rng rng(9);
  EXPECT_THROW(rng.categorical({}), std::invalid_argument);
}

TEST(Rng, SampleWithoutReplacementDistinct) {
  util::Rng rng(11);
  auto s = rng.sample_without_replacement(50, 20);
  std::set<std::size_t> set(s.begin(), s.end());
  EXPECT_EQ(set.size(), 20u);
  for (auto v : s) EXPECT_LT(v, 50u);
}

TEST(Rng, NormalMoments) {
  util::Rng rng(13);
  std::vector<double> xs(20000);
  for (auto& x : xs) x = rng.normal(2.0, 3.0);
  EXPECT_NEAR(util::mean(xs), 2.0, 0.1);
  EXPECT_NEAR(util::stddev(xs), 3.0, 0.1);
}

TEST(Stats, PercentileInterpolation) {
  std::vector<double> xs = {1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(util::percentile(xs, 0), 1.0);
  EXPECT_DOUBLE_EQ(util::percentile(xs, 100), 5.0);
  EXPECT_DOUBLE_EQ(util::percentile(xs, 50), 3.0);
  EXPECT_DOUBLE_EQ(util::percentile(xs, 25), 2.0);
}

TEST(Stats, CdfMonotone) {
  auto cdf = util::make_cdf({3.0, 1.0, 2.0, 2.0});
  ASSERT_EQ(cdf.values.size(), 4u);
  EXPECT_TRUE(std::is_sorted(cdf.values.begin(), cdf.values.end()));
  EXPECT_DOUBLE_EQ(cdf.probs.back(), 1.0);
  EXPECT_DOUBLE_EQ(cdf.prob_at(0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf.prob_at(2.0), 0.75);
  EXPECT_DOUBLE_EQ(cdf.prob_at(10.0), 1.0);
}

TEST(Stats, EmptyThrows) {
  EXPECT_THROW(util::mean({}), std::invalid_argument);
  EXPECT_THROW(util::percentile({}, 50), std::invalid_argument);
}

TEST(Table, RendersAndWritesCsv) {
  util::Table t({"scheme", "time"});
  t.add_row({"Teal", "0.97"});
  t.add_row({"LP-all", "585"});
  std::string s = t.to_string();
  EXPECT_NE(s.find("Teal"), std::string::npos);
  EXPECT_NE(s.find("585"), std::string::npos);

  auto path = std::filesystem::temp_directory_path() / "teal_table_test.csv";
  t.write_csv(path.string());
  std::ifstream f(path);
  std::string line;
  std::getline(f, line);
  EXPECT_EQ(line, "scheme,time");
  std::filesystem::remove(path);
}

TEST(Table, RowSizeMismatchThrows) {
  util::Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(Timer, MeasuresElapsed) {
  util::Timer t;
  volatile double x = 0;
  for (int i = 0; i < 100000; ++i) x = x + 1.0;
  EXPECT_GE(t.seconds(), 0.0);
}

TEST(StopWatch, Accumulates) {
  util::StopWatch sw;
  sw.start();
  sw.stop();
  sw.start();
  sw.stop();
  EXPECT_GE(sw.total_seconds(), 0.0);
  sw.clear();
  EXPECT_EQ(sw.total_seconds(), 0.0);
}

}  // namespace
}  // namespace teal
