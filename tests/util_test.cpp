// Unit tests for the util substrate: thread pool, RNG, arena, statistics,
// tables.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <set>

#include "util/alloc_hook.h"
#include "util/arena.h"
#include "util/csv.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace teal {
namespace {

TEST(ThreadPool, RunsAllIndices) {
  util::ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(1000, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ChunksCoverRangeExactlyOnce) {
  util::ThreadPool pool(7);
  std::atomic<std::int64_t> sum{0};
  pool.parallel_chunks(12345, [&](std::size_t b, std::size_t e) {
    std::int64_t local = 0;
    for (std::size_t i = b; i < e; ++i) local += static_cast<std::int64_t>(i);
    sum += local;
  });
  EXPECT_EQ(sum.load(), 12345LL * 12344 / 2);
}

TEST(ThreadPool, SubmitReturnsValue) {
  util::ThreadPool pool(2);
  auto fut = pool.submit([] { return 41 + 1; });
  EXPECT_EQ(fut.get(), 42);
}

TEST(ThreadPool, ZeroAndOneElementRanges) {
  util::ThreadPool pool(3);
  int count = 0;
  pool.parallel_for(0, [&](std::size_t) { ++count; });
  EXPECT_EQ(count, 0);
  pool.parallel_for(1, [&](std::size_t) { ++count; });
  EXPECT_EQ(count, 1);
}

TEST(ThreadPool, EnvOverrideParsesValidValues) {
  EXPECT_EQ(util::pool_threads_from_env("1"), 1u);
  EXPECT_EQ(util::pool_threads_from_env("8"), 8u);
  EXPECT_EQ(util::pool_threads_from_env("  8"), 8u);   // leading whitespace (strtoll)
  EXPECT_EQ(util::pool_threads_from_env("8 "), 8u);    // trailing whitespace (shell export)
  EXPECT_EQ(util::pool_threads_from_env("+4"), 4u);
  EXPECT_EQ(util::pool_threads_from_env("1024"), 1024u);  // at the ceiling
}

TEST(ThreadPool, EnvOverrideRejectsGarbage) {
  // 0 is the ThreadPool constructor's "size to the hardware" sentinel — the
  // fallback available_parallelism() resolves to.
  EXPECT_EQ(util::pool_threads_from_env(nullptr), 0u);
  EXPECT_EQ(util::pool_threads_from_env(""), 0u);
  EXPECT_EQ(util::pool_threads_from_env("abc"), 0u);
  EXPECT_EQ(util::pool_threads_from_env("8x"), 0u);          // trailing garbage
  EXPECT_EQ(util::pool_threads_from_env("4 workers"), 0u);   // ditto
  EXPECT_EQ(util::pool_threads_from_env("3.5"), 0u);         // not an integer
  EXPECT_EQ(util::pool_threads_from_env(" "), 0u);
}

TEST(ThreadPool, EnvOverrideRejectsNonPositiveAndOverflow) {
  EXPECT_EQ(util::pool_threads_from_env("0"), 0u);
  EXPECT_EQ(util::pool_threads_from_env("-3"), 0u);
  EXPECT_EQ(util::pool_threads_from_env("-9999999999999999999"), 0u);
  // Above the sanity ceiling: would otherwise ask the OS for that many
  // threads at static-init time.
  EXPECT_EQ(util::pool_threads_from_env("1025"), 0u);
  EXPECT_EQ(util::pool_threads_from_env("1000000"), 0u);
  // Overflows long long entirely (strtoll saturates + ERANGE).
  EXPECT_EQ(util::pool_threads_from_env("99999999999999999999999999"), 0u);
}

TEST(Rng, Deterministic) {
  util::Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
}

TEST(Rng, ForkDecorrelates) {
  util::Rng root(7);
  util::Rng a = root.fork(1);
  util::Rng b = root.fork(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.uniform() == b.uniform()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(Rng, UniformIntBounds) {
  util::Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    auto v = rng.uniform_int(-2, 5);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 5);
  }
}

TEST(Rng, CategoricalRespectsWeights) {
  util::Rng rng(9);
  std::vector<double> w = {0.0, 10.0, 0.0};
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.categorical(w), 1u);
}

TEST(Rng, CategoricalEmptyThrows) {
  util::Rng rng(9);
  EXPECT_THROW(rng.categorical({}), std::invalid_argument);
}

TEST(Rng, SampleWithoutReplacementDistinct) {
  util::Rng rng(11);
  auto s = rng.sample_without_replacement(50, 20);
  std::set<std::size_t> set(s.begin(), s.end());
  EXPECT_EQ(set.size(), 20u);
  for (auto v : s) EXPECT_LT(v, 50u);
}

TEST(Rng, NormalMoments) {
  util::Rng rng(13);
  std::vector<double> xs(20000);
  for (auto& x : xs) x = rng.normal(2.0, 3.0);
  EXPECT_NEAR(util::mean(xs), 2.0, 0.1);
  EXPECT_NEAR(util::stddev(xs), 3.0, 0.1);
}

TEST(Stats, PercentileInterpolation) {
  std::vector<double> xs = {1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(util::percentile(xs, 0), 1.0);
  EXPECT_DOUBLE_EQ(util::percentile(xs, 100), 5.0);
  EXPECT_DOUBLE_EQ(util::percentile(xs, 50), 3.0);
  EXPECT_DOUBLE_EQ(util::percentile(xs, 25), 2.0);
}

TEST(Stats, CdfMonotone) {
  auto cdf = util::make_cdf({3.0, 1.0, 2.0, 2.0});
  ASSERT_EQ(cdf.values.size(), 4u);
  EXPECT_TRUE(std::is_sorted(cdf.values.begin(), cdf.values.end()));
  EXPECT_DOUBLE_EQ(cdf.probs.back(), 1.0);
  EXPECT_DOUBLE_EQ(cdf.prob_at(0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf.prob_at(2.0), 0.75);
  EXPECT_DOUBLE_EQ(cdf.prob_at(10.0), 1.0);
}

TEST(Stats, EmptyThrows) {
  EXPECT_THROW(util::mean({}), std::invalid_argument);
  EXPECT_THROW(util::percentile({}, 50), std::invalid_argument);
}

TEST(Table, RendersAndWritesCsv) {
  util::Table t({"scheme", "time"});
  t.add_row({"Teal", "0.97"});
  t.add_row({"LP-all", "585"});
  std::string s = t.to_string();
  EXPECT_NE(s.find("Teal"), std::string::npos);
  EXPECT_NE(s.find("585"), std::string::npos);

  auto path = std::filesystem::temp_directory_path() / "teal_table_test.csv";
  t.write_csv(path.string());
  std::ifstream f(path);
  std::string line;
  std::getline(f, line);
  EXPECT_EQ(line, "scheme,time");
  std::filesystem::remove(path);
}

TEST(Table, RowSizeMismatchThrows) {
  util::Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(Arena, AlignmentHonored) {
  util::Arena a;
  for (std::size_t align : {1u, 2u, 8u, 16u, 64u, 128u}) {
    void* p = a.allocate(24, align);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % align, 0u)
        << "align " << align;
  }
  // Blocks must not overlap: write patterns, then verify them all.
  char* p1 = static_cast<char*>(a.allocate(64, 8));
  char* p2 = static_cast<char*>(a.allocate(64, 8));
  std::fill_n(p1, 64, 'a');
  std::fill_n(p2, 64, 'b');
  EXPECT_EQ(p1[63], 'a');
  EXPECT_EQ(p2[0], 'b');
}

TEST(Arena, GrowsByAppendingChunks) {
  util::Arena a(/*first_chunk_bytes=*/1024);
  EXPECT_EQ(a.chunk_count(), 0u);  // lazy: no chunk until the first allocate
  a.allocate(512, 8);
  EXPECT_EQ(a.chunk_count(), 1u);
  // Overflow the first chunk; the arena must keep every earlier block live.
  for (int i = 0; i < 64; ++i) a.allocate(512, 8);
  EXPECT_GT(a.chunk_count(), 1u);
  EXPECT_GE(a.capacity(), 65u * 512u);
  EXPECT_GE(a.used(), 65u * 512u);
}

TEST(Arena, LargeSingleAllocationServed) {
  util::Arena a(/*first_chunk_bytes=*/1024);
  // Far bigger than the next scheduled chunk: must land in a dedicated
  // chunk, aligned, without disturbing the bump sequence.
  const std::size_t big = 3u * 1024u * 1024u;
  char* p = static_cast<char*>(a.allocate(big, 64));
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % 64, 0u);
  p[0] = 'x';
  p[big - 1] = 'y';
  EXPECT_GE(a.capacity(), big);
}

TEST(Arena, ResetRetainsCapacityAndAvoidsHeap) {
  util::Arena a(/*first_chunk_bytes=*/1024);
  for (int i = 0; i < 32; ++i) a.allocate(256, 8);
  const std::size_t cap = a.capacity();
  const std::size_t chunks = a.chunk_count();
  a.reset();
  EXPECT_EQ(a.used(), 0u);
  EXPECT_EQ(a.capacity(), cap);
  EXPECT_EQ(a.chunk_count(), chunks);
  // The rewound arena serves the same demand out of retained chunks: the
  // O(1)-allocation topology swap this class exists for.
  util::AllocCounter allocs;
  for (int i = 0; i < 32; ++i) a.allocate(256, 8);
  EXPECT_EQ(allocs.count(), 0u);
  EXPECT_EQ(a.chunk_count(), chunks);
}

TEST(Arena, ReserveTakesGrowthOutOfLaterWindows) {
  util::Arena a;
  a.reserve(64u * 1024u);
  EXPECT_GE(a.capacity(), 64u * 1024u);
  util::AllocCounter allocs;
  a.allocate(32u * 1024u, 64);
  EXPECT_EQ(allocs.count(), 0u);
}

TEST(ArenaScope, BindsAndNests) {
  util::Arena a;
  EXPECT_EQ(util::current_arena(), nullptr);
  {
    util::ArenaScope outer(&a);
    EXPECT_EQ(util::current_arena(), &a);
    {
      // Binding nullptr shields an inner region from the outer scope.
      util::ArenaScope shield(nullptr);
      EXPECT_EQ(util::current_arena(), nullptr);
    }
    EXPECT_EQ(util::current_arena(), &a);
  }
  EXPECT_EQ(util::current_arena(), nullptr);
}

TEST(ArenaAlloc, BoundVectorBumpsInsteadOfMalloc) {
  util::Arena a;
  a.reserve(64u * 1024u);
  util::ArenaScope bind(&a);
  const std::size_t used_before = a.used();
  util::AllocCounter allocs;
  util::AVec<double> v(1000, 1.5);
  EXPECT_EQ(allocs.count(), 0u);
  EXPECT_GT(a.used(), used_before);
  EXPECT_DOUBLE_EQ(v[999], 1.5);
}

TEST(ArenaAlloc, UnboundVectorUsesHeap) {
  util::Arena a;
  std::size_t used;
  {
    util::AVec<double> v(1000, 2.0);  // no scope: heap-backed
    used = a.used();
    EXPECT_DOUBLE_EQ(v[0], 2.0);
  }  // heap provenance: destruction frees normally (ASan leg polices this)
  EXPECT_EQ(used, 0u);
}

TEST(ArenaAlloc, ContainerMayOutliveBinding) {
  util::Arena a;
  util::AVec<int> v;
  {
    util::ArenaScope bind(&a);
    v.assign(500, 7);
  }
  // Grown under the binding, used and destroyed after it ended: the
  // provenance header (not the binding) routes the deallocation, which is a
  // no-op for arena blocks.
  EXPECT_EQ(v[499], 7);
  v = {};
  EXPECT_GT(a.used(), 0u);  // mem-root semantics: reclaimed only by reset()
}

TEST(CounterRng, DeterministicAndSeedSeparated) {
  util::CounterRng a(42), b(42), c(43);
  bool diverged = false;
  for (int i = 0; i < 100; ++i) {
    const std::uint64_t x = a.next_u64();
    EXPECT_EQ(x, b.next_u64());
    if (x != c.next_u64()) diverged = true;
  }
  EXPECT_TRUE(diverged);
}

TEST(CounterRng, UniformInUnitInterval) {
  util::CounterRng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(CounterRng, NormalMoments) {
  util::CounterRng rng(99);
  const int n = 100000;
  std::vector<double> xs(n);
  for (auto& x : xs) x = rng.normal(2.0, 3.0);
  EXPECT_NEAR(util::mean(xs), 2.0, 0.05);
  EXPECT_NEAR(util::stddev(xs), 3.0, 0.05);
}

TEST(CounterRng, AdjacentSeedsUncorrelated) {
  // The draw sites key one CounterRng per (epoch, rollout, demand, phase)
  // tag, so mixed seeds differing by one must yield independent streams.
  const int n = 10000;
  std::vector<double> xs(n), ys(n);
  util::CounterRng a(1000), b(1001);
  for (int i = 0; i < n; ++i) {
    xs[static_cast<std::size_t>(i)] = a.normal();
    ys[static_cast<std::size_t>(i)] = b.normal();
  }
  const double mx = util::mean(xs), my = util::mean(ys);
  double cov = 0.0;
  for (int i = 0; i < n; ++i) {
    cov += (xs[static_cast<std::size_t>(i)] - mx) * (ys[static_cast<std::size_t>(i)] - my);
  }
  cov /= n;
  const double corr = cov / (util::stddev(xs) * util::stddev(ys));
  EXPECT_LT(std::abs(corr), 0.05);
}

TEST(Rng, NormalVaryingParamsMatchesScaledUnit) {
  // normal(mean, stddev) must be exactly mean + stddev * (a unit draw from
  // the same underlying stream): the spare caching may never leak one
  // call's parameters into the next.
  util::Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    const double mean = i * 0.5, sd = 1.0 + i * 0.25;
    EXPECT_DOUBLE_EQ(a.normal(mean, sd), mean + sd * b.normal());
  }
}

TEST(Timer, MeasuresElapsed) {
  util::Timer t;
  volatile double x = 0;
  for (int i = 0; i < 100000; ++i) x = x + 1.0;
  EXPECT_GE(t.seconds(), 0.0);
}

TEST(StopWatch, Accumulates) {
  util::StopWatch sw;
  sw.start();
  sw.stop();
  sw.start();
  sw.stop();
  EXPECT_GE(sw.total_seconds(), 0.0);
  sw.clear();
  EXPECT_EQ(sw.total_seconds(), 0.0);
}

}  // namespace
}  // namespace teal
