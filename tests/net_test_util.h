// net_test_util.h — hermetic loopback fixtures for the net tests.
//
// Every fixture binds 127.0.0.1 port 0 (kernel-chosen ephemeral port), so
// any number of test binaries — and any number of fixtures within one binary
// — run in parallel under `ctest -j` without ever colliding on an address.
// Teardown order matters and the fixture owns it: the net server goes down
// first (member order: backend before server → destruction joins the I/O
// thread before the replicas), so no session can submit into a destroyed
// backend.
#pragma once

#include <chrono>
#include <functional>
#include <thread>
#include <utility>
#include <vector>

#include "net/client.h"
#include "net/server.h"
#include "serve/replica.h"
#include "serve/server.h"
#include "te/problem.h"
#include "topo/topology.h"
#include "traffic/traffic.h"

namespace teal::test {

// Problem + trace on any bundled topology, demand-capped the same way
// shard_test does it (DESIGN.md substitution #5 — identical code paths,
// test-sized instance).
struct NetSetup {
  te::Problem pb;
  traffic::Trace trace;
};

inline NetSetup net_setup(const std::string& topo_name, int n_demands = 120,
                          int n_intervals = 2) {
  auto g = topo::make_topology(topo_name);
  auto demands = traffic::sample_demands(g, n_demands, /*seed=*/7);
  te::Problem pb(std::move(g), std::move(demands), 4);
  traffic::TraceConfig cfg;
  cfg.n_intervals = n_intervals;
  cfg.seed = 11;
  auto trace = traffic::generate_trace(pb, cfg);
  traffic::calibrate_capacities(pb, trace, 1.5);
  return NetSetup{std::move(pb), std::move(trace)};
}

// serve::Server + net::Server on an ephemeral loopback port.
struct NetFixture {
  const te::Problem& pb;
  serve::Server backend;
  net::Server server;

  NetFixture(const te::Problem& problem, std::vector<serve::ReplicaPtr> replicas,
             serve::ServeConfig serve_cfg = {}, net::NetServerConfig net_cfg = {})
      : pb(problem),
        backend(problem, std::move(replicas), serve_cfg),
        server(backend, problem, net_cfg) {}

  net::Client connect() { return net::Client("127.0.0.1", server.port()); }
};

// Polls `pred` until it holds or ~2 s pass — for the few assertions that
// depend on the I/O thread noticing an event (e.g. an EOF) asynchronously.
inline bool eventually(const std::function<bool()>& pred,
                       double timeout_seconds = 2.0) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(timeout_seconds);
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return pred();
}

}  // namespace teal::test
