// Tests for the scenario factory (src/scenario/): generator properties
// (connectedness, locality, degree tails, capacity bounds), determinism
// (byte-identical regeneration from the same seed, distinct output across
// seeds), traffic invariants (nonnegative demands, exact gravity marginals,
// bitwise diurnal periodicity, flash-crowd/shift localization), rolling
// failure schedules (well-formedness, caps, step-vs-jump order determinism),
// the topo_io round-trip fixpoint, the scenario driver's serving contracts —
// including shard- and replica-count bit-identity on a generated topology
// more than twice ASN's size — and the latent-assumption audit regressions
// (path-id overflow, auto-shard overflow signature).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "core/shard.h"
#include "core/teal_scheme.h"
#include "scenario/scenario.h"
#include "topo/topo_io.h"
#include "topo/topology.h"
#include "traffic/traffic.h"

namespace teal {
namespace {

// Untrained Teal pipeline: deterministic init; the serving/sharding/replica
// contracts are training-independent (same convention as shard_test).
core::TealScheme make_teal(const te::Problem& pb, std::uint64_t seed = 42) {
  return core::TealScheme(
      pb, std::make_unique<core::TealModel>(core::TealModelConfig{}, pb.k_paths(), seed),
      core::TealSchemeConfig{});
}

void expect_bit_identical(const te::Allocation& a, const te::Allocation& b,
                          const std::string& what) {
  ASSERT_EQ(a.split.size(), b.split.size()) << what;
  if (!a.split.empty() &&
      std::memcmp(a.split.data(), b.split.data(),
                  a.split.size() * sizeof(double)) != 0) {
    for (std::size_t i = 0; i < a.split.size(); ++i) {
      ASSERT_EQ(std::memcmp(&a.split[i], &b.split[i], sizeof(double)), 0)
          << what << ", split index " << i << " (" << a.split[i] << " vs "
          << b.split[i] << ")";
    }
  }
}

bool traces_bit_identical(const traffic::Trace& a, const traffic::Trace& b) {
  if (a.size() != b.size()) return false;
  for (int t = 0; t < a.size(); ++t) {
    const auto& va = a.at(t).volume;
    const auto& vb = b.at(t).volume;
    if (va.size() != vb.size()) return false;
    if (!va.empty() &&
        std::memcmp(va.data(), vb.data(), va.size() * sizeof(double)) != 0) {
      return false;
    }
  }
  return true;
}

double mean_latency(const topo::Graph& g) {
  double sum = 0.0;
  for (const auto& e : g.edges()) sum += e.latency;
  return sum / static_cast<double>(g.num_edges());
}

// ---- Capacity distribution --------------------------------------------------

TEST(ScenarioGenerators, CapacityDistRespectsHardBounds) {
  for (auto kind : {scenario::CapacityDist::Kind::kUniform,
                    scenario::CapacityDist::Kind::kLognormal,
                    scenario::CapacityDist::Kind::kBimodal}) {
    scenario::CapacityDist dist;
    dist.kind = kind;
    dist.lo = 100.0;
    dist.hi = 900.0;
    util::CounterRng rng(7);
    for (int i = 0; i < 500; ++i) {
      const double c = dist.sample(rng);
      ASSERT_GE(c, dist.lo);
      ASSERT_LE(c, dist.hi);
      if (kind == scenario::CapacityDist::Kind::kBimodal) {
        ASSERT_TRUE(c == dist.lo || c == dist.hi) << c;
      }
    }
  }
}

TEST(ScenarioGenerators, CapacityDistValidateRejectsBadConfigs) {
  scenario::CapacityDist d;
  d.lo = 0.0;
  EXPECT_THROW(d.validate(), std::invalid_argument);
  d = {};
  d.hi = d.lo - 1.0;
  EXPECT_THROW(d.validate(), std::invalid_argument);
  d = {};
  d.sigma = -0.1;
  EXPECT_THROW(d.validate(), std::invalid_argument);
  d = {};
  d.hi_fraction = 1.5;
  EXPECT_THROW(d.validate(), std::invalid_argument);
  d = {};
  EXPECT_NO_THROW(d.validate());
}

// ---- Waxman -----------------------------------------------------------------

TEST(ScenarioGenerators, WaxmanConnectedWithRequestedSize) {
  for (int n : {20, 120}) {
    for (std::uint64_t seed : {1ull, 9ull}) {
      scenario::WaxmanConfig cfg;
      cfg.n_nodes = n;
      cfg.seed = seed;
      const auto g = scenario::make_waxman(cfg);
      EXPECT_EQ(g.num_nodes(), n);
      // Default n_links = 2 * n bidirectional links = 4 * n directed edges.
      EXPECT_EQ(g.num_edges(), 4 * n) << "n=" << n << " seed=" << seed;
      EXPECT_TRUE(g.is_strongly_connected()) << "n=" << n << " seed=" << seed;
      for (const auto& e : g.edges()) {
        EXPECT_GE(e.capacity, cfg.capacity.lo);
        EXPECT_LE(e.capacity, cfg.capacity.hi);
        EXPECT_GT(e.latency, 0.0);
      }
    }
  }
}

TEST(ScenarioGenerators, WaxmanLocalityFollowsBeta) {
  // Smaller beta penalizes long links harder, so the mean link length (and
  // with it the latency, a fixed multiple of length) must drop.
  scenario::WaxmanConfig tight, loose;
  tight.n_nodes = loose.n_nodes = 150;
  tight.seed = loose.seed = 3;
  tight.beta = 0.08;
  loose.beta = 1.0;
  const double lat_tight = mean_latency(scenario::make_waxman(tight));
  const double lat_loose = mean_latency(scenario::make_waxman(loose));
  EXPECT_LT(lat_tight, lat_loose);
}

TEST(ScenarioGenerators, WaxmanInfeasibleConfigsThrowLoudly) {
  scenario::WaxmanConfig cfg;
  cfg.n_nodes = 1;
  EXPECT_THROW(scenario::make_waxman(cfg), std::invalid_argument);
  cfg = {};
  cfg.n_nodes = 50;
  cfg.n_links = 10;  // below the n - 1 backbone
  EXPECT_THROW(scenario::make_waxman(cfg), std::invalid_argument);
  cfg = {};
  cfg.alpha = 0.0;
  EXPECT_THROW(scenario::make_waxman(cfg), std::invalid_argument);
  cfg = {};
  cfg.beta = 1.5;
  EXPECT_THROW(scenario::make_waxman(cfg), std::invalid_argument);
  cfg = {};
  cfg.aspect = 0.5;
  EXPECT_THROW(scenario::make_waxman(cfg), std::invalid_argument);

  // Unreachable density: nearly the full clique at a vanishing acceptance
  // probability must hit the attempt cap and throw, never return a silently
  // sparser graph.
  cfg = {};
  cfg.n_nodes = 40;
  cfg.n_links = 40 * 39 / 2;
  cfg.alpha = 0.01;
  cfg.beta = 0.05;
  EXPECT_THROW(scenario::make_waxman(cfg), std::runtime_error);
}

// ---- Power law --------------------------------------------------------------

TEST(ScenarioGenerators, PowerLawConnectedWithExactLinkCount) {
  for (int n : {50, 400}) {
    for (int m : {2, 3}) {
      scenario::PowerLawConfig cfg;
      cfg.n_nodes = n;
      cfg.m = m;
      const auto g = scenario::make_power_law(cfg);
      EXPECT_EQ(g.num_nodes(), n);
      EXPECT_EQ(g.num_edges(), 2 * scenario::power_law_links(cfg));
      EXPECT_TRUE(g.is_strongly_connected());
      for (const auto& e : g.edges()) {
        EXPECT_GE(e.latency, cfg.latency_lo);
        EXPECT_LE(e.latency, cfg.latency_hi);
      }
    }
  }
}

TEST(ScenarioGenerators, PowerLawDegreeDistributionIsHeavyTailed) {
  scenario::PowerLawConfig cfg;
  cfg.n_nodes = 400;
  cfg.m = 2;
  const auto g = scenario::make_power_law(cfg);
  std::vector<int> degree(static_cast<std::size_t>(g.num_nodes()));
  for (topo::NodeId v = 0; v < g.num_nodes(); ++v) {
    degree[static_cast<std::size_t>(v)] = static_cast<int>(g.out_edges(v).size());
  }
  std::sort(degree.begin(), degree.end());
  const int median = degree[degree.size() / 2];
  const int max_deg = degree.back();
  // Preferential attachment concentrates degree on early hubs; a flat
  // (Erdős–Rényi-like) graph at mean degree ~2m would have max ≈ median.
  EXPECT_GE(median, cfg.m);
  EXPECT_GT(max_deg, 3 * median)
      << "median=" << median << " max=" << max_deg;
}

TEST(ScenarioGenerators, PowerLawInvalidConfigsThrow) {
  scenario::PowerLawConfig cfg;
  cfg.m = 0;
  EXPECT_THROW(scenario::make_power_law(cfg), std::invalid_argument);
  cfg = {};
  cfg.n_nodes = cfg.m + 1;
  EXPECT_THROW(scenario::make_power_law(cfg), std::invalid_argument);
  cfg = {};
  cfg.latency_lo = 0.0;
  EXPECT_THROW(scenario::make_power_law(cfg), std::invalid_argument);
}

// ---- Regeneration determinism ----------------------------------------------

TEST(ScenarioGenerators, SameSeedRegeneratesByteIdenticalGraphs) {
  scenario::WaxmanConfig w;
  w.n_nodes = 80;
  w.seed = 17;
  EXPECT_TRUE(scenario::graphs_bit_identical(scenario::make_waxman(w),
                                             scenario::make_waxman(w)));
  scenario::PowerLawConfig p;
  p.n_nodes = 120;
  p.seed = 17;
  EXPECT_TRUE(scenario::graphs_bit_identical(scenario::make_power_law(p),
                                             scenario::make_power_law(p)));
}

TEST(ScenarioGenerators, DistinctSeedsProduceDistinctGraphs) {
  scenario::WaxmanConfig w1, w2;
  w1.n_nodes = w2.n_nodes = 80;
  w1.seed = 1;
  w2.seed = 2;
  EXPECT_FALSE(scenario::graphs_bit_identical(scenario::make_waxman(w1),
                                              scenario::make_waxman(w2)));
  scenario::PowerLawConfig p1, p2;
  p1.n_nodes = p2.n_nodes = 120;
  p1.seed = 1;
  p2.seed = 2;
  EXPECT_FALSE(scenario::graphs_bit_identical(scenario::make_power_law(p1),
                                              scenario::make_power_law(p2)));
}

// ---- topo_io round trip -----------------------------------------------------

TEST(ScenarioTopoIo, SaveLoadSaveIsAByteIdenticalFixpoint) {
  scenario::WaxmanConfig cfg;
  cfg.n_nodes = 30;
  cfg.seed = 5;
  cfg.capacity.kind = scenario::CapacityDist::Kind::kLognormal;
  const auto g = scenario::make_waxman(cfg);

  std::ostringstream first;
  topo::save_topology(g, first);
  std::istringstream in(first.str());
  const auto loaded = topo::load_topology(in);
  std::ostringstream second;
  topo::save_topology(loaded, second);

  EXPECT_EQ(first.str(), second.str());
  EXPECT_EQ(loaded.name(), g.name());  // header carries the name
  EXPECT_TRUE(scenario::graphs_bit_identical(g, loaded));
}

TEST(ScenarioTopoIo, FileRoundTripPrefersHeaderNameOverFilename) {
  scenario::PowerLawConfig cfg;
  cfg.n_nodes = 25;
  const auto g = scenario::make_power_law(cfg);
  const std::string path = "scenario_test_roundtrip.topo";
  topo::save_topology_file(g, path);
  const auto loaded = topo::load_topology_file(path);
  std::remove(path.c_str());
  EXPECT_EQ(loaded.name(), g.name());
  EXPECT_TRUE(scenario::graphs_bit_identical(g, loaded));
}

TEST(ScenarioTopoIo, ExplicitNameAlwaysWinsAndLoadedIsNotASentinel) {
  // An explicit name wins over the header — even the name "loaded", which an
  // earlier revision treated as a no-explicit-name sentinel.
  std::istringstream in1("# topology fancy\nnodes 2\nedge 0 1 1.0 1.0\n");
  EXPECT_EQ(topo::load_topology(in1, "loaded").name(), "loaded");
  // No explicit name: the header names the graph…
  std::istringstream in2("# topology fancy\nnodes 1\n");
  EXPECT_EQ(topo::load_topology(in2).name(), "fancy");
  // …and without a header the fallback name applies.
  std::istringstream in3("nodes 1\n");
  EXPECT_EQ(topo::load_topology(in3).name(), "topology");

  // A file whose header legitimately names the graph "loaded" keeps that
  // name instead of falling back to the filename.
  topo::Graph g("loaded");
  g.add_nodes(2);
  g.add_edge(0, 1, 3.0, 1.0);
  const std::string path = "scenario_test_loaded_name.topo";
  topo::save_topology_file(g, path);
  const auto from_file = topo::load_topology_file(path);
  std::remove(path.c_str());
  EXPECT_EQ(from_file.name(), "loaded");
}

// ---- Gravity traffic --------------------------------------------------------

struct TrafficSetup {
  te::Problem pb;
};

TrafficSetup traffic_setup(int n_nodes = 60, int n_demands = 150) {
  scenario::PowerLawConfig cfg;
  cfg.n_nodes = n_nodes;
  auto g = scenario::make_power_law(cfg);
  auto demands = traffic::sample_demands(g, n_demands, /*seed=*/7);
  return TrafficSetup{te::Problem(std::move(g), std::move(demands), 4)};
}

TEST(ScenarioTraffic, TraceIsNonnegativeAndByteIdenticalAcrossRegeneration) {
  const auto s = traffic_setup();
  scenario::GravityTrafficConfig cfg;
  cfg.n_intervals = 10;
  cfg.noise_sigma = 0.2;
  cfg.diurnal_amplitude = 0.4;
  cfg.diurnal_period = 5;
  const auto a = scenario::generate_gravity_trace(s.pb, cfg);
  const auto b = scenario::generate_gravity_trace(s.pb, cfg);
  EXPECT_TRUE(traces_bit_identical(a, b));
  for (int t = 0; t < a.size(); ++t) {
    for (double v : a.at(t).volume) ASSERT_GT(v, 0.0);
  }
  scenario::GravityTrafficConfig other = cfg;
  other.seed = cfg.seed + 1;
  EXPECT_FALSE(
      traces_bit_identical(a, scenario::generate_gravity_trace(s.pb, other)));
}

TEST(ScenarioTraffic, UnmodulatedTraceMatchesGravityMarginalsExactly) {
  const auto s = traffic_setup();
  scenario::GravityTrafficConfig cfg;
  cfg.n_intervals = 4;
  cfg.noise_sigma = 0.0;  // modulators all off: volume(t, d) == base(d)
  const auto base = scenario::gravity_base_volumes(s.pb, cfg);
  const auto trace = scenario::generate_gravity_trace(s.pb, cfg);
  ASSERT_EQ(base.size(), static_cast<std::size_t>(s.pb.num_demands()));
  for (int t = 0; t < trace.size(); ++t) {
    const auto& v = trace.at(t).volume;
    ASSERT_EQ(v.size(), base.size());
    for (std::size_t d = 0; d < base.size(); ++d) {
      ASSERT_EQ(v[d], base[d]) << "t=" << t << " d=" << d;
    }
  }
}

TEST(ScenarioTraffic, DiurnalCycleIsBitwisePeriodicWithoutNoise) {
  const auto s = traffic_setup();
  scenario::GravityTrafficConfig cfg;
  cfg.n_intervals = 24;
  cfg.diurnal_amplitude = 0.4;
  cfg.diurnal_period = 8;
  const auto trace = scenario::generate_gravity_trace(s.pb, cfg);
  for (int t = 0; t + cfg.diurnal_period < trace.size(); ++t) {
    const auto& a = trace.at(t).volume;
    const auto& b = trace.at(t + cfg.diurnal_period).volume;
    ASSERT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof(double)), 0)
        << "t=" << t;
  }
  // And the cycle actually modulates: intervals within one period differ.
  EXPECT_NE(trace.at(0).volume[0], trace.at(2).volume[0]);
}

TEST(ScenarioTraffic, FlashCrowdScalesOnlyHotDemandsInsideTheWindow) {
  const auto s = traffic_setup();
  scenario::GravityTrafficConfig off;
  off.n_intervals = 12;
  scenario::GravityTrafficConfig on = off;
  on.flash = scenario::FlashCrowd{/*t_start=*/4, /*duration=*/3,
                                  /*magnitude=*/4.0, /*hot_fraction=*/0.1};

  const auto hot = scenario::flash_hot_demands(s.pb, on);
  const auto base = scenario::gravity_base_volumes(s.pb, on);
  const auto nd = static_cast<std::size_t>(s.pb.num_demands());
  ASSERT_EQ(hot.size(), static_cast<std::size_t>(
                            std::ceil(0.1 * static_cast<double>(nd))));
  // Hot set = top-k by base volume: every hot demand's base >= every cold one.
  double min_hot = 1e300, max_cold = -1e300;
  std::vector<char> is_hot(nd, 0);
  for (std::size_t d : hot) is_hot[d] = 1;
  for (std::size_t d = 0; d < nd; ++d) {
    if (is_hot[d]) {
      min_hot = std::min(min_hot, base[d]);
    } else {
      max_cold = std::max(max_cold, base[d]);
    }
  }
  EXPECT_GE(min_hot, max_cold);

  const auto ta = scenario::generate_gravity_trace(s.pb, off);
  const auto tb = scenario::generate_gravity_trace(s.pb, on);
  for (int t = 0; t < ta.size(); ++t) {
    const bool in_window = t >= 4 && t < 7;
    for (std::size_t d = 0; d < nd; ++d) {
      const double expect = in_window && is_hot[d]
                                ? ta.at(t).volume[d] * (1.0 + 4.0)
                                : ta.at(t).volume[d];
      ASSERT_EQ(tb.at(t).volume[d], expect) << "t=" << t << " d=" << d;
    }
  }
}

TEST(ScenarioTraffic, SustainedShiftScalesTheKeyedSubsetFromItsStart) {
  const auto s = traffic_setup();
  scenario::GravityTrafficConfig off;
  off.n_intervals = 10;
  scenario::GravityTrafficConfig on = off;
  on.shift = scenario::DemandShift{/*t_start=*/6, /*factor=*/2.5,
                                   /*shifted_fraction=*/0.3};

  const auto shifted = scenario::shift_demand_set(s.pb, on);
  const auto nd = static_cast<std::size_t>(s.pb.num_demands());
  // Keyed Bernoulli(0.3) subset: deterministic, and statistically sane.
  EXPECT_EQ(shifted, scenario::shift_demand_set(s.pb, on));
  EXPECT_GT(shifted.size(), nd / 10);
  EXPECT_LT(shifted.size(), nd / 2);
  std::vector<char> in_set(nd, 0);
  for (std::size_t d : shifted) in_set[d] = 1;

  const auto ta = scenario::generate_gravity_trace(s.pb, off);
  const auto tb = scenario::generate_gravity_trace(s.pb, on);
  for (int t = 0; t < ta.size(); ++t) {
    for (std::size_t d = 0; d < nd; ++d) {
      const double expect = (t >= 6 && in_set[d]) ? ta.at(t).volume[d] * 2.5
                                                  : ta.at(t).volume[d];
      ASSERT_EQ(tb.at(t).volume[d], expect) << "t=" << t << " d=" << d;
    }
  }
}

TEST(ScenarioTraffic, ValidateRejectsOutOfRangeConfigs) {
  const auto s = traffic_setup(30, 40);
  scenario::GravityTrafficConfig cfg;
  cfg.diurnal_amplitude = 1.0;
  EXPECT_THROW(scenario::generate_gravity_trace(s.pb, cfg), std::invalid_argument);
  cfg = {};
  cfg.diurnal_period = 1;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = {};
  cfg.mean_volume = 0.0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = {};
  cfg.n_intervals = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = {};
  cfg.flash = scenario::FlashCrowd{0, 2, 1.0, /*hot_fraction=*/0.0};
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = {};
  cfg.shift = scenario::DemandShift{0, /*factor=*/0.0, 0.3};
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

// ---- Rolling failures -------------------------------------------------------

scenario::RollingFailureConfig churn_config() {
  scenario::RollingFailureConfig cfg;
  cfg.seed = 99;
  cfg.hazard = 0.08;
  cfg.repair_after = 3;
  cfg.max_concurrent = 2;
  return cfg;
}

TEST(ScenarioFailures, ScheduleIsDeterministicAndWellFormed) {
  scenario::PowerLawConfig pcfg;
  pcfg.n_nodes = 80;
  const auto g = scenario::make_power_law(pcfg);
  const auto cfg = churn_config();
  const auto events = scenario::make_rolling_failures(g, 30, cfg);
  ASSERT_FALSE(events.empty());
  EXPECT_EQ(events.size(), scenario::make_rolling_failures(g, 30, cfg).size());

  int prev = -1;
  for (const auto& ev : events) {
    EXPECT_GE(ev.interval, prev);  // sorted by interval
    prev = ev.interval;
    // The pair really is one physical link, both directions.
    const auto& fe = g.edge(ev.fwd);
    EXPECT_LT(fe.src, fe.dst);
    EXPECT_EQ(ev.rev, g.find_edge(fe.dst, fe.src));
  }

  // Every failure inside the horizon repairs exactly repair_after later.
  std::map<topo::EdgeId, int> down_since;
  for (const auto& ev : events) {
    if (ev.fail) {
      ASSERT_EQ(down_since.count(ev.fwd), 0u) << "double failure";
      down_since[ev.fwd] = ev.interval;
    } else {
      ASSERT_EQ(down_since.count(ev.fwd), 1u) << "repair of a healthy link";
      EXPECT_EQ(ev.interval, down_since[ev.fwd] + cfg.repair_after);
      down_since.erase(ev.fwd);
    }
  }
  for (const auto& [e, t] : down_since) {
    EXPECT_GE(t + cfg.repair_after, 30) << "missing repair for edge " << e;
  }
}

TEST(ScenarioFailures, ConcurrencyCapIsNeverExceeded) {
  scenario::PowerLawConfig pcfg;
  pcfg.n_nodes = 120;
  const auto g = scenario::make_power_law(pcfg);
  auto cfg = churn_config();
  cfg.hazard = 0.5;  // aggressive churn to stress the cap
  const auto events = scenario::make_rolling_failures(g, 25, cfg);
  int down = 0;
  for (const auto& ev : events) {
    down += ev.fail ? 1 : -1;
    ASSERT_GE(down, 0);
    ASSERT_LE(down, cfg.max_concurrent);
  }
  // The cap must actually bind under 50% hazard on ~230 links.
  EXPECT_FALSE(events.empty());
}

TEST(ScenarioFailures, StateStepJumpAndReplayAgree) {
  scenario::PowerLawConfig pcfg;
  pcfg.n_nodes = 60;
  const auto g = scenario::make_power_law(pcfg);
  const int horizon = 20;
  const auto events = scenario::make_rolling_failures(g, horizon, churn_config());
  ASSERT_FALSE(events.empty());

  scenario::FailureState stepped(g, events);
  for (int t = 0; t < horizon; ++t) {
    const auto& a = stepped.capacities_at(t);
    scenario::FailureState jumped(g, events);  // random access from scratch
    const auto& b = jumped.capacities_at(t);
    ASSERT_EQ(a.size(), b.size());
    ASSERT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof(double)), 0)
        << "t=" << t;
    ASSERT_EQ(stepped.failed_links(), jumped.failed_links()) << "t=" << t;
  }
  // Decreasing t replays from scratch instead of returning stale state.
  const auto at0 = stepped.capacities_at(0);
  scenario::FailureState fresh(g, events);
  EXPECT_EQ(std::memcmp(at0.data(), fresh.capacities_at(0).data(),
                        at0.size() * sizeof(double)),
            0);

  const auto starts = scenario::failure_epoch_starts(events);
  ASSERT_FALSE(starts.empty());
  for (std::size_t i = 1; i < starts.size(); ++i) {
    EXPECT_LT(starts[i - 1], starts[i]);
  }
  std::set<int> intervals;
  for (const auto& ev : events) intervals.insert(ev.interval);
  EXPECT_EQ(starts.size(), intervals.size());
}

// Regression: run_scenario writes each epoch's capacities — including the
// 0.0 of a failed link — back into the live graph before querying the next
// epoch. FailureState must restore the *pre-failure* capacity on repair from
// its construction-time snapshot, not re-read the (zeroed) live graph.
TEST(ScenarioFailures, RepairRestoresPreFailureCapacityAfterGraphMutation) {
  scenario::PowerLawConfig pcfg;
  pcfg.n_nodes = 20;
  auto g = scenario::make_power_law(pcfg);

  topo::EdgeId fwd = topo::kInvalidEdge, rev = topo::kInvalidEdge;
  for (topo::EdgeId e = 0; e < g.num_edges(); ++e) {
    const auto& ed = g.edge(e);
    if (ed.src >= ed.dst) continue;
    rev = g.find_edge(ed.dst, ed.src);
    if (rev != topo::kInvalidEdge) {
      fwd = e;
      break;
    }
  }
  ASSERT_NE(fwd, topo::kInvalidEdge);
  const double orig_cap = g.edge(fwd).capacity;
  ASSERT_GT(orig_cap, 0.0);

  const std::vector<scenario::FailureEvent> events = {{0, true, fwd, rev},
                                                      {4, false, fwd, rev}};
  scenario::FailureState state(g, events);

  // The run_scenario interleave: apply epoch capacities to the graph, then
  // ask for the next epoch.
  for (int t : {0, 4}) {
    const auto& caps = state.capacities_at(t);
    if (t == 0) {
      EXPECT_EQ(caps[static_cast<std::size_t>(fwd)], 0.0);
      EXPECT_EQ(caps[static_cast<std::size_t>(rev)], 0.0);
    }
    for (topo::EdgeId e = 0; e < g.num_edges(); ++e) {
      g.set_capacity(e, caps[static_cast<std::size_t>(e)]);
    }
  }
  EXPECT_EQ(g.edge(fwd).capacity, orig_cap);
  EXPECT_EQ(g.edge(rev).capacity, orig_cap);
  EXPECT_EQ(state.failed_links(), 0);

  // reset() (triggered by a decreasing t) must replay from the snapshot too,
  // even with the live graph poisoned.
  g.set_capacity(fwd, 0.0);
  g.set_capacity(rev, 0.0);
  EXPECT_EQ(state.capacities_at(0)[static_cast<std::size_t>(fwd)], 0.0);
  EXPECT_EQ(state.capacities_at(4)[static_cast<std::size_t>(fwd)], orig_cap);
  EXPECT_EQ(state.capacities_at(4)[static_cast<std::size_t>(rev)], orig_cap);
}

TEST(ScenarioFailures, ConfigAndEventOrderValidation) {
  scenario::RollingFailureConfig cfg;
  cfg.hazard = 1.5;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = {};
  cfg.repair_after = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = {};
  cfg.max_concurrent = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);

  scenario::PowerLawConfig pcfg;
  pcfg.n_nodes = 10;
  const auto g = scenario::make_power_law(pcfg);
  std::vector<scenario::FailureEvent> unsorted = {
      {5, true, 0, 1}, {2, true, 2, 3}};
  EXPECT_THROW(scenario::FailureState(g, unsorted), std::invalid_argument);
}

// ---- Scenario driver --------------------------------------------------------

TEST(ScenarioDriver, NamedScenariosBuildAndUnknownNamesThrow) {
  for (const auto& name : scenario::scenario_names()) {
    const auto spec = scenario::named_scenario(name, 60);
    const auto sc = scenario::build_scenario(spec);
    EXPECT_EQ(sc.pb.graph().num_nodes(), 60) << name;
    EXPECT_TRUE(sc.pb.graph().is_strongly_connected()) << name;
    EXPECT_EQ(sc.trace.size(), 24) << name;
    if (name == "rolling-failure") {
      EXPECT_FALSE(sc.failures.empty()) << name;
    } else {
      EXPECT_TRUE(sc.failures.empty()) << name;
    }
  }
  EXPECT_THROW(scenario::named_scenario("no-such-scenario", 60),
               std::invalid_argument);
}

TEST(ScenarioDriver, BuildScenarioRegeneratesByteIdentically) {
  const auto spec = scenario::named_scenario("rolling-failure", 80, /*seed=*/5);
  const auto a = scenario::build_scenario(spec);
  const auto b = scenario::build_scenario(spec);
  EXPECT_TRUE(scenario::graphs_bit_identical(a.pb.graph(), b.pb.graph()));
  EXPECT_TRUE(traces_bit_identical(a.trace, b.trace));
  ASSERT_EQ(a.pb.num_demands(), b.pb.num_demands());
  for (int d = 0; d < a.pb.num_demands(); ++d) {
    EXPECT_EQ(a.pb.demand(d).src, b.pb.demand(d).src);
    EXPECT_EQ(a.pb.demand(d).dst, b.pb.demand(d).dst);
  }
  ASSERT_EQ(a.failures.size(), b.failures.size());
  for (std::size_t i = 0; i < a.failures.size(); ++i) {
    EXPECT_EQ(a.failures[i].interval, b.failures[i].interval);
    EXPECT_EQ(a.failures[i].fail, b.failures[i].fail);
    EXPECT_EQ(a.failures[i].fwd, b.failures[i].fwd);
    EXPECT_EQ(a.failures[i].rev, b.failures[i].rev);
  }
}

TEST(ScenarioDriver, ColdSchemesAndFactoriesResolveByName) {
  const auto spec = scenario::named_scenario("baseline", 30);
  const auto sc = scenario::build_scenario(spec);
  for (const char* name : {"Teal", "LP-all", "LP-top"}) {
    EXPECT_NE(scenario::make_cold_scheme(name, sc.pb), nullptr) << name;
  }
  EXPECT_TRUE(scenario::make_cold_scheme("Teal", sc.pb)->has_warm_state());
  EXPECT_EQ(scenario::cold_scheme_factory("Teal", sc.pb), nullptr);
  const auto factory = scenario::cold_scheme_factory("LP-top", sc.pb);
  ASSERT_NE(factory, nullptr);
  EXPECT_NE(factory(), nullptr);
  EXPECT_THROW(scenario::make_cold_scheme("Gurobi", sc.pb), std::invalid_argument);
  EXPECT_THROW(scenario::cold_scheme_factory("Gurobi", sc.pb),
               std::invalid_argument);
}

TEST(ScenarioDriver, RunScenarioBalancesLedgerAndRestoresCapacities) {
  auto sc = scenario::build_scenario(scenario::named_scenario("rolling-failure", 60));
  ASSERT_FALSE(sc.failures.empty());
  const auto caps_before = sc.pb.capacities();

  auto scheme = make_teal(sc.pb);
  sim::ServedConfig cfg;
  cfg.n_replicas = 1;
  cfg.serve.queue_capacity = static_cast<std::size_t>(sc.trace.size());
  const auto res = scenario::run_scenario(scheme, sc, cfg);

  EXPECT_GT(res.n_epochs, 1);  // churn actually split the replay
  EXPECT_EQ(res.stats.offered, static_cast<std::uint64_t>(sc.trace.size()));
  EXPECT_EQ(res.stats.accepted + res.stats.shed, res.stats.offered);
  EXPECT_EQ(res.stats.completed, res.stats.accepted);
  ASSERT_EQ(res.allocs.size(), static_cast<std::size_t>(sc.trace.size()));
  ASSERT_EQ(res.satisfied_pct.size(), res.allocs.size());
  for (std::size_t i = 0; i < res.satisfied_pct.size(); ++i) {
    EXPECT_GE(res.satisfied_pct[i], 0.0);
    EXPECT_LE(res.satisfied_pct[i], 100.0);
  }
  EXPECT_GT(res.mean_satisfied_pct, 0.0);

  const auto caps_after = sc.pb.capacities();
  ASSERT_EQ(caps_before.size(), caps_after.size());
  EXPECT_EQ(std::memcmp(caps_before.data(), caps_after.data(),
                        caps_before.size() * sizeof(double)),
            0);
}

TEST(ScenarioDriver, RollingFailureReplayBitIdenticalAcrossReplicaCounts) {
  auto sc = scenario::build_scenario(scenario::named_scenario("rolling-failure", 60));
  auto scheme = make_teal(sc.pb);

  std::vector<scenario::ScenarioRunResult> runs;
  for (std::size_t replicas : {1u, 2u, 3u}) {
    sim::ServedConfig cfg;
    cfg.n_replicas = replicas;
    cfg.serve.queue_capacity = static_cast<std::size_t>(sc.trace.size());
    runs.push_back(scenario::run_scenario(scheme, sc, cfg));
  }
  for (std::size_t r = 1; r < runs.size(); ++r) {
    ASSERT_EQ(runs[r].allocs.size(), runs[0].allocs.size());
    EXPECT_EQ(runs[r].n_epochs, runs[0].n_epochs);
    for (std::size_t t = 0; t < runs[0].allocs.size(); ++t) {
      ASSERT_TRUE(runs[0].accepted[t]);  // queue sized to the trace: no shed
      ASSERT_TRUE(runs[r].accepted[t]);
      expect_bit_identical(runs[r].allocs[t], runs[0].allocs[t],
                           "replicas=" + std::to_string(r + 1) +
                               " t=" + std::to_string(t));
    }
  }
}

// Regression (end to end): after a failed link repairs, the post-repair
// epochs of a run_scenario replay must be bit-identical to a run with no
// failures at all — the repair restored the pre-failure capacity, not the
// zero that run_scenario wrote into the live graph during the outage.
TEST(ScenarioDriver, PostRepairEpochsMatchNoFailureRun) {
  const auto spec = scenario::named_scenario("baseline", 36);
  auto plain = scenario::build_scenario(spec);
  auto failing = scenario::build_scenario(spec);  // bit-identical twin

  // Fail the highest-capacity physical link: in the calibrated (congested)
  // regime LP-all certainly routes over it, so the outage epochs differ and
  // the post-repair equality below is a real check, not a vacuous one.
  const auto& g = failing.pb.graph();
  topo::EdgeId fwd = topo::kInvalidEdge, rev = topo::kInvalidEdge;
  double best = -1.0;
  for (topo::EdgeId e = 0; e < g.num_edges(); ++e) {
    const auto& ed = g.edge(e);
    if (ed.src >= ed.dst) continue;
    const topo::EdgeId r = g.find_edge(ed.dst, ed.src);
    if (r != topo::kInvalidEdge && ed.capacity > best) {
      best = ed.capacity;
      fwd = e;
      rev = r;
    }
  }
  ASSERT_NE(fwd, topo::kInvalidEdge);
  const int t_fail = 2, t_repair = 6;
  failing.failures = {{t_fail, true, fwd, rev}, {t_repair, false, fwd, rev}};

  sim::ServedConfig cfg;
  cfg.n_replicas = 1;
  cfg.serve.queue_capacity = static_cast<std::size_t>(plain.trace.size());
  auto run = [&](scenario::Scenario& sc) {
    auto scheme = scenario::make_cold_scheme("LP-all", sc.pb);
    return scenario::run_scenario(*scheme, sc, cfg,
                                  scenario::cold_scheme_factory("LP-all", sc.pb));
  };
  const auto r_plain = run(plain);
  const auto r_fail = run(failing);

  EXPECT_EQ(r_plain.n_epochs, 1);
  EXPECT_EQ(r_fail.n_epochs, 3);
  ASSERT_EQ(r_fail.allocs.size(), r_plain.allocs.size());
  bool outage_differs = false;
  for (int t = t_fail; t < t_repair; ++t) {
    const auto i = static_cast<std::size_t>(t);
    ASSERT_TRUE(r_plain.accepted[i] && r_fail.accepted[i]);
    outage_differs |=
        std::memcmp(r_plain.allocs[i].split.data(), r_fail.allocs[i].split.data(),
                    r_plain.allocs[i].split.size() * sizeof(double)) != 0;
  }
  EXPECT_TRUE(outage_differs) << "failed link carried no traffic; test is vacuous";
  for (std::size_t t = static_cast<std::size_t>(t_repair);
       t < r_plain.allocs.size(); ++t) {
    ASSERT_TRUE(r_plain.accepted[t] && r_fail.accepted[t]);
    expect_bit_identical(r_fail.allocs[t], r_plain.allocs[t],
                         "post-repair t=" + std::to_string(t));
    EXPECT_DOUBLE_EQ(r_fail.satisfied_pct[t], r_plain.satisfied_pct[t]);
  }
}

// The acceptance-scale contract: on a generated power-law WAN more than twice
// ASN's 1739 nodes, a served replay is byte-identical for every shard count
// and every replica count — the cost models and fan-out paths hold far
// outside the bundled-topology sizes they were tuned on.
TEST(ScenarioDriver, TwiceAsnScaleShardAndReplicaBitIdentity) {
  scenario::ScenarioSpec spec = scenario::named_scenario("baseline", 3600);
  spec.n_demands = 250;  // demand-capped, full topology (substitution #5)
  spec.traffic.n_intervals = 3;
  auto sc = scenario::build_scenario(spec);
  ASSERT_GE(sc.pb.graph().num_nodes(), 2 * 1739);
  ASSERT_TRUE(sc.pb.graph().is_strongly_connected());

  auto scheme = make_teal(sc.pb);
  auto run = [&](std::size_t replicas, int shards) {
    sim::ServedConfig cfg;
    cfg.n_replicas = replicas;
    cfg.shard_count = shards;
    cfg.serve.queue_capacity = static_cast<std::size_t>(sc.trace.size());
    return scenario::run_scenario(scheme, sc, cfg);
  };

  const auto ref = run(1, 1);  // one replica, sequential solve
  ASSERT_EQ(ref.allocs.size(), static_cast<std::size_t>(sc.trace.size()));
  for (int shards : {2, 4}) {
    const auto got = run(1, shards);
    for (std::size_t t = 0; t < ref.allocs.size(); ++t) {
      expect_bit_identical(got.allocs[t], ref.allocs[t],
                           "shards=" + std::to_string(shards) +
                               " t=" + std::to_string(t));
    }
  }
  for (std::size_t replicas : {2u, 3u}) {
    const auto got = run(replicas, 0);  // auto shards per replica
    for (std::size_t t = 0; t < ref.allocs.size(); ++t) {
      expect_bit_identical(got.allocs[t], ref.allocs[t],
                           "replicas=" + std::to_string(replicas) +
                               " t=" + std::to_string(t));
    }
  }
}

TEST(ScenarioDriver, FleetReplayMatchesSingleTenantRunsBitIdentically) {
  std::vector<scenario::Scenario> scenarios;
  scenarios.push_back(scenario::build_scenario(scenario::named_scenario("baseline", 40)));
  scenarios.push_back(scenario::build_scenario(scenario::named_scenario("diurnal", 50)));

  sim::ServedFleetConfig fcfg;
  fcfg.total_replicas = 3;
  fcfg.serve.queue_capacity = 64;
  const auto fleet = scenario::run_scenario_fleet(scenarios, "Teal", fcfg);
  ASSERT_EQ(fleet.served.tenants.size(), 2u);
  ASSERT_EQ(fleet.mean_satisfied_pct.size(), 2u);

  // Replica/shard counts are latency knobs, so each tenant's fleet allocs
  // must equal a dedicated single-tenant replay bit for bit.
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    auto& sc = scenarios[i];
    auto scheme = make_teal(sc.pb);
    sim::ServedConfig cfg;
    cfg.n_replicas = 1;
    cfg.serve.queue_capacity = static_cast<std::size_t>(sc.trace.size());
    const auto solo = scenario::run_scenario(scheme, sc, cfg);
    const auto& tenant = fleet.served.tenants[i];
    ASSERT_EQ(tenant.allocs.size(), solo.allocs.size());
    for (std::size_t t = 0; t < solo.allocs.size(); ++t) {
      ASSERT_TRUE(tenant.accepted[t] && solo.accepted[t]);
      expect_bit_identical(tenant.allocs[t], solo.allocs[t],
                           sc.name + " t=" + std::to_string(t));
    }
    EXPECT_GT(fleet.mean_satisfied_pct[i], 0.0);
  }

  // Failure schedules have no epoch boundary in the merged fleet clock.
  std::vector<scenario::Scenario> with_failures;
  with_failures.push_back(
      scenario::build_scenario(scenario::named_scenario("rolling-failure", 40)));
  EXPECT_THROW(scenario::run_scenario_fleet(with_failures, "Teal", fcfg),
               std::invalid_argument);
}

// ---- Latent-assumption audit regressions ------------------------------------

TEST(ScenarioAudit, AutoShardCountRejectsOverflowSignatures) {
  // Negative inputs are the int-overflow signature of an uncapped generated
  // problem; the cost model must refuse instead of silently mis-costing.
  EXPECT_THROW(core::auto_shard_count(-1, 100, 4), std::invalid_argument);
  EXPECT_THROW(core::auto_shard_count(100, -5, 4), std::invalid_argument);
  // Legitimate generated-scale inputs still cost sanely.
  EXPECT_GE(core::auto_shard_count(60000, 240000, 8), 1);
  EXPECT_EQ(core::auto_shard_count(0, 0, 8), 1);
}

TEST(ScenarioAudit, ProblemRejectsPathIdOverflow) {
  scenario::PowerLawConfig cfg;
  cfg.n_nodes = 30;
  auto g = scenario::make_power_law(cfg);
  auto demands = traffic::sample_demands(g, 100, /*seed=*/3);
  // 100 demands * 30e6 paths each overflows the int path-id space; the
  // constructor must throw before computing a single path.
  EXPECT_THROW(te::Problem(std::move(g), std::move(demands), 30'000'000),
               std::invalid_argument);
}

TEST(ScenarioAudit, UnknownBundledTopologyThrows) {
  EXPECT_THROW(topo::make_topology("Waxman-100"), std::invalid_argument);
}

}  // namespace
}  // namespace teal
