// Cross-module integration tests: the full pipeline end to end, online
// replay consistency, validation-based model selection, and capacity
// calibration to a satisfied-demand target.
#include <gtest/gtest.h>

#include "baselines/lp_schemes.h"
#include "baselines/ncflow.h"
#include "baselines/pop.h"
#include "core/coma.h"
#include "core/teal_scheme.h"
#include "sim/online.h"
#include "topo/topology.h"
#include "traffic/traffic.h"

namespace teal {
namespace {

struct Setup {
  te::Problem pb;
  traffic::TraceSplit split;
};

Setup swan_setup(int n_demands = 600, int intervals = 30) {
  auto g = topo::make_swan_like();
  te::Problem pb(g, traffic::sample_demands(g, n_demands, 5), 4);
  traffic::TraceConfig cfg;
  cfg.n_intervals = intervals;
  auto trace = traffic::generate_trace(pb, cfg);
  traffic::calibrate_capacities_to_satisfied(pb, trace, 72.0);
  return Setup{std::move(pb), traffic::split_trace(trace)};
}

TEST(Calibration, HitsSatisfiedTarget) {
  auto s = swan_setup();
  // Recompute the mean-matrix SP satisfied demand; should be ~72%.
  te::TrafficMatrix mean_tm;
  const auto& all = s.split.train;
  mean_tm.volume.assign(all.at(0).volume.size(), 0.0);
  int total_n = 0;
  for (const auto& tr : {&s.split.train, &s.split.val, &s.split.test}) {
    for (const auto& tm : tr->matrices) {
      for (std::size_t d = 0; d < mean_tm.volume.size(); ++d) mean_tm.volume[d] += tm.volume[d];
      ++total_n;
    }
  }
  for (double& v : mean_tm.volume) v /= total_n;
  double sp = te::satisfied_demand_pct(s.pb, mean_tm, s.pb.shortest_path_allocation());
  EXPECT_NEAR(sp, 72.0, 1.0);
}

TEST(Calibration, RejectsBadArgs) {
  auto s = swan_setup(100, 5);
  traffic::Trace empty;
  EXPECT_THROW(traffic::calibrate_capacities_to_satisfied(s.pb, empty, 72.0),
               std::invalid_argument);
  EXPECT_THROW(traffic::calibrate_capacities_to_satisfied(s.pb, s.split.train, 0.0),
               std::invalid_argument);
  EXPECT_THROW(traffic::calibrate_capacities_to_satisfied(s.pb, s.split.train, 150.0),
               std::invalid_argument);
}

TEST(ReplayOnline, MatchesLiveRunForDeterministicScheme) {
  auto s = swan_setup(300, 20);
  baselines::LpTopScheme scheme;
  // Live run.
  sim::OnlineConfig cfg;
  cfg.time_scale = 100.0;  // force some staleness
  // Record per-matrix allocs/times first (deterministic scheme).
  std::vector<te::Allocation> allocs;
  std::vector<double> secs;
  for (int t = 0; t < s.split.test.size(); ++t) {
    allocs.push_back(scheme.solve(s.pb, s.split.test.at(t)));
    secs.push_back(0.05);  // fixed fake time for determinism
  }
  auto replay = sim::replay_online(s.pb, s.split.test, allocs, secs, cfg);
  // Replaying the same series twice is identical.
  auto replay2 = sim::replay_online(s.pb, s.split.test, allocs, secs, cfg);
  ASSERT_EQ(replay.intervals.size(), replay2.intervals.size());
  for (std::size_t i = 0; i < replay.intervals.size(); ++i) {
    EXPECT_DOUBLE_EQ(replay.intervals[i].satisfied_pct, replay2.intervals[i].satisfied_pct);
  }
  // Short series rejected.
  EXPECT_THROW(sim::replay_online(s.pb, s.split.test, {}, {}, cfg), std::invalid_argument);
}

TEST(ComaValidation, KeepsBestEpochSnapshot) {
  auto s = swan_setup(300, 20);
  core::TealModel model({}, s.pb.k_paths(), 3);
  core::ComaConfig cfg;
  cfg.epochs = 5;
  cfg.lr = 5e-3;  // deliberately jumpy so epochs differ
  cfg.validation = &s.split.val;
  auto stats = core::train_coma(model, s.pb, s.split.train, te::Objective::kTotalFlow, cfg);
  ASSERT_EQ(stats.epoch_validation.size(), 5u);
  ASSERT_GE(stats.best_epoch, 0);
  // The restored model scores the best epoch's validation value.
  double restored = core::evaluate_model(model, s.pb, s.split.val,
                                         te::Objective::kTotalFlow);
  double best = *std::max_element(stats.epoch_validation.begin(),
                                  stats.epoch_validation.end());
  EXPECT_NEAR(restored, best, 1e-9);
}

TEST(EndToEnd, AllSchemesProduceComparableValidAllocations) {
  auto s = swan_setup(500, 25);
  std::vector<te::SchemePtr> schemes;
  schemes.push_back(std::make_unique<baselines::LpAllScheme>());
  schemes.push_back(std::make_unique<baselines::LpTopScheme>());
  schemes.push_back(std::make_unique<baselines::NcFlowScheme>(s.pb));
  {
    baselines::PopConfig pc;
    pc.k = 4;
    schemes.push_back(std::make_unique<baselines::PopScheme>(pc));
  }
  {
    core::TealSchemeConfig cfg;
    core::TealTrainOptions opts;
    opts.coma.epochs = 3;
    opts.coma.lr = 3e-3;
    opts.coma.validation = &s.split.val;
    schemes.push_back(core::make_teal_scheme(s.pb, s.split.train, cfg, opts));
  }
  const auto& tm = s.split.test.at(0);
  double sp = te::satisfied_demand_pct(s.pb, tm, s.pb.shortest_path_allocation());
  double lp_pct = 0.0;
  for (auto& scheme : schemes) {
    auto a = scheme->solve(s.pb, tm);
    EXPECT_NO_THROW(s.pb.validate_allocation(a, 1e-6)) << scheme->name();
    double pct = te::satisfied_demand_pct(s.pb, tm, a);
    if (scheme->name() == "LP-all") lp_pct = pct;
    EXPECT_GT(pct, 0.3 * sp) << scheme->name();
    EXPECT_LE(pct, 100.0 + 1e-9) << scheme->name();
    EXPECT_GT(scheme->last_solve_seconds(), 0.0) << scheme->name();
  }
  // LP-all dominates (or matches) every other scheme offline.
  for (auto& scheme : schemes) {
    auto a = scheme->solve(s.pb, tm);
    EXPECT_LE(te::satisfied_demand_pct(s.pb, tm, a), lp_pct + 1.0) << scheme->name();
  }
}

TEST(EndToEnd, TealTimeIsValueIndependent) {
  // §5.2: Teal's flop count does not depend on traffic values. Compare solve
  // times for a tiny and a 1000x-scaled matrix; they should be within noise.
  auto s = swan_setup(400, 12);
  core::TealSchemeConfig cfg;
  core::TealTrainOptions opts;
  opts.trainer = core::Trainer::kDirectLoss;
  opts.direct.epochs = 1;
  auto scheme = core::make_teal_scheme(s.pb, s.split.train, cfg, opts);
  auto tm_small = s.split.test.at(0);
  auto tm_large = tm_small;
  for (double& v : tm_large.volume) v *= 1000.0;
  // Warm up, then measure several rounds.
  scheme->solve(s.pb, tm_small);
  double t_small = 1e9, t_large = 1e9;
  for (int i = 0; i < 5; ++i) {
    scheme->solve(s.pb, tm_small);
    t_small = std::min(t_small, scheme->last_solve_seconds());
    scheme->solve(s.pb, tm_large);
    t_large = std::min(t_large, scheme->last_solve_seconds());
  }
  EXPECT_LT(std::abs(t_small - t_large), 0.5 * std::max(t_small, t_large) + 0.01);
}

TEST(EndToEnd, FailureRecomputationWithoutRetraining) {
  auto s = swan_setup(400, 12);
  core::TealSchemeConfig cfg;
  core::TealTrainOptions opts;
  opts.trainer = core::Trainer::kDirectLoss;
  opts.direct.epochs = 2;
  auto scheme = core::make_teal_scheme(s.pb, s.split.train, cfg, opts);
  auto failed = sim::sample_link_failures(s.pb.graph(), 5, 3);
  auto res = sim::eval_failure_reaction(*scheme, s.pb, s.split.test.at(0), failed, {});
  // Recomputed routes on the failed topology should not be worse than stale
  // ones (the model sees the zeroed capacities through FlowGNN's inputs).
  EXPECT_GE(res.recomputed_pct, res.stale_pct - 3.0);
}

}  // namespace
}  // namespace teal
