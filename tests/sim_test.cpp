// Tests for the online control-loop simulator and failure-reaction harness.
#include <gtest/gtest.h>

#include "sim/online.h"
#include "topo/topology.h"
#include "traffic/traffic.h"

namespace teal {
namespace {

// A deterministic scheme with a configurable fake solve time: it allocates
// everything to shortest paths and reports `fake_seconds` as its cost.
class FakeScheme : public te::Scheme {
 public:
  explicit FakeScheme(double fake_seconds) : fake_(fake_seconds) {}
  std::string name() const override { return "Fake"; }
  te::Allocation solve(const te::Problem& pb, const te::TrafficMatrix&) override {
    ++n_solves;
    return pb.shortest_path_allocation();
  }
  double last_solve_seconds() const override { return fake_; }
  int n_solves = 0;

 private:
  double fake_;
};

struct Setup {
  te::Problem pb;
  traffic::Trace trace;
};

Setup b4_setup(double util = 1.5) {
  auto g = topo::make_b4();
  te::Problem pb(std::move(g), te::all_pairs_demands(topo::make_b4()), 4);
  traffic::TraceConfig cfg;
  cfg.n_intervals = 10;
  auto trace = traffic::generate_trace(pb, cfg);
  traffic::calibrate_capacities(pb, trace, util);
  return Setup{std::move(pb), std::move(trace)};
}

TEST(Online, FastSchemeSolvesEveryInterval) {
  auto s = b4_setup();
  FakeScheme fast(1.0);  // 1s << 300s
  auto res = sim::run_online(fast, s.pb, s.trace, {});
  EXPECT_EQ(fast.n_solves, s.trace.size());
  EXPECT_EQ(static_cast<int>(res.solve_times.size()), s.trace.size());
  for (const auto& iv : res.intervals) EXPECT_TRUE(iv.started_solve);
}

TEST(Online, SlowSchemeSkipsIntervals) {
  auto s = b4_setup();
  FakeScheme slow(1.0);
  sim::OnlineConfig cfg;
  cfg.time_scale = 750.0;  // 750 s per solve vs 300 s intervals
  auto res = sim::run_online(slow, s.pb, s.trace, cfg);
  // A sequential scheme keeps the lazy control loop: only the solves that
  // actually start are computed. Figure 18's phenomenon: a new allocation
  // only every third matrix.
  EXPECT_LT(slow.n_solves, s.trace.size());
  EXPECT_GE(slow.n_solves, s.trace.size() / 3);
  EXPECT_EQ(res.solve_times.size(), static_cast<std::size_t>(slow.n_solves));
}

TEST(Online, MeanIsAverageOfIntervals) {
  auto s = b4_setup();
  FakeScheme fast(0.5);
  auto res = sim::run_online(fast, s.pb, s.trace, {});
  double sum = 0.0;
  for (const auto& iv : res.intervals) sum += iv.satisfied_pct;
  EXPECT_NEAR(res.mean_satisfied_pct, sum / res.intervals.size(), 1e-9);
  for (const auto& iv : res.intervals) {
    EXPECT_GE(iv.satisfied_pct, 0.0);
    EXPECT_LE(iv.satisfied_pct, 100.0 + 1e-9);
  }
}

TEST(Online, StaleRoutesBlendInsideInterval) {
  // With solve time = half an interval, the first interval's satisfied
  // demand is a 50/50 blend of the initial routes and the new routes. Here
  // both are shortest-path, so the number must equal the pure evaluation.
  auto s = b4_setup();
  FakeScheme half(150.0);
  sim::OnlineConfig cfg;  // time_scale 1.0
  auto res = sim::run_online(half, s.pb, s.trace, cfg);
  double pure = te::satisfied_demand_pct(s.pb, s.trace.at(0), s.pb.shortest_path_allocation());
  EXPECT_NEAR(res.intervals[0].satisfied_pct, pure, 1e-9);
}

TEST(Failures, SampleFailsBothDirections) {
  auto g = topo::make_b4();
  auto failed = sim::sample_link_failures(g, 3, 5);
  EXPECT_EQ(failed.size(), 6u);  // both directions of 3 physical links
  std::set<topo::EdgeId> set(failed.begin(), failed.end());
  for (topo::EdgeId e : failed) {
    topo::EdgeId rev = g.find_edge(g.edge(e).dst, g.edge(e).src);
    EXPECT_TRUE(set.count(rev));
  }
}

TEST(Failures, ReactionRestoresTopology) {
  auto s = b4_setup();
  FakeScheme fast(1.0);
  auto caps_before = s.pb.capacities();
  auto failed = sim::sample_link_failures(s.pb.graph(), 2, 7);
  auto res = sim::eval_failure_reaction(fast, s.pb, s.trace.at(0), failed, {});
  auto caps_after = s.pb.capacities();
  for (std::size_t e = 0; e < caps_before.size(); ++e) {
    EXPECT_DOUBLE_EQ(caps_before[e], caps_after[e]);
  }
  EXPECT_GE(res.satisfied_pct, 0.0);
  EXPECT_LE(res.satisfied_pct, 100.0);
}

TEST(Failures, SlowRecomputationHurts) {
  // Same allocations, but a slow scheme spends the whole interval on stale
  // routes while a fast one switches immediately: fast >= slow.
  auto s = b4_setup(2.0);
  FakeScheme fast(0.5);
  FakeScheme slow(0.5);
  sim::OnlineConfig fast_cfg;  // 0.5 s
  sim::OnlineConfig slow_cfg;
  slow_cfg.time_scale = 600.0;  // 300 s: entire interval stale
  auto failed = sim::sample_link_failures(s.pb.graph(), 2, 9);
  auto r_fast = sim::eval_failure_reaction(fast, s.pb, s.trace.at(0), failed, fast_cfg);
  auto r_slow = sim::eval_failure_reaction(slow, s.pb, s.trace.at(0), failed, slow_cfg);
  EXPECT_GE(r_fast.satisfied_pct, r_slow.satisfied_pct - 1e-9);
  // Both evaluate stale == recomputed here (same allocation), so the fast
  // one's blend weight is what matters; sanity-check weights.
  EXPECT_NEAR(r_slow.satisfied_pct, r_slow.stale_pct, 1e-9);
}

TEST(Failures, FailedLinksDropTraffic) {
  auto s = b4_setup(1.0);
  FakeScheme fast(0.1);
  // Fail every link out of node 0: all demands from node 0 lose traffic on
  // stale shortest-path routes.
  std::vector<topo::EdgeId> failed;
  for (topo::EdgeId e : s.pb.graph().out_edges(0)) failed.push_back(e);
  auto res = sim::eval_failure_reaction(fast, s.pb, s.trace.at(0), failed, {});
  EXPECT_LT(res.stale_pct, 100.0);
}

}  // namespace
}  // namespace teal
