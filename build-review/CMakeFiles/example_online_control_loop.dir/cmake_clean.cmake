file(REMOVE_RECURSE
  "CMakeFiles/example_online_control_loop.dir/examples/online_control_loop.cpp.o"
  "CMakeFiles/example_online_control_loop.dir/examples/online_control_loop.cpp.o.d"
  "example_online_control_loop"
  "example_online_control_loop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_online_control_loop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
