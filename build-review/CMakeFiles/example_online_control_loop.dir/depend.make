# Empty dependencies file for example_online_control_loop.
# This may be replaced when dependencies are built.
