file(REMOVE_RECURSE
  "CMakeFiles/core_variants_test.dir/tests/core_variants_test.cpp.o"
  "CMakeFiles/core_variants_test.dir/tests/core_variants_test.cpp.o.d"
  "core_variants_test"
  "core_variants_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_variants_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
