file(REMOVE_RECURSE
  "CMakeFiles/bench_serve_scaling.dir/bench/serve_scaling.cpp.o"
  "CMakeFiles/bench_serve_scaling.dir/bench/serve_scaling.cpp.o.d"
  "bench_serve_scaling"
  "bench_serve_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_serve_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
