# Empty compiler generated dependencies file for bench_serve_scaling.
# This may be replaced when dependencies are built.
