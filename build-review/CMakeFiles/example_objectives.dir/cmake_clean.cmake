file(REMOVE_RECURSE
  "CMakeFiles/example_objectives.dir/examples/objectives.cpp.o"
  "CMakeFiles/example_objectives.dir/examples/objectives.cpp.o.d"
  "example_objectives"
  "example_objectives.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_objectives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
