# Empty dependencies file for example_objectives.
# This may be replaced when dependencies are built.
