file(REMOVE_RECURSE
  "CMakeFiles/example_failover.dir/examples/failover.cpp.o"
  "CMakeFiles/example_failover.dir/examples/failover.cpp.o.d"
  "example_failover"
  "example_failover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_failover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
