# Empty dependencies file for example_failover.
# This may be replaced when dependencies are built.
