file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_offline.dir/bench/fig13_offline.cpp.o"
  "CMakeFiles/bench_fig13_offline.dir/bench/fig13_offline.cpp.o.d"
  "bench_fig13_offline"
  "bench_fig13_offline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_offline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
