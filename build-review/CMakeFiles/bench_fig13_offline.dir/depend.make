# Empty dependencies file for bench_fig13_offline.
# This may be replaced when dependencies are built.
