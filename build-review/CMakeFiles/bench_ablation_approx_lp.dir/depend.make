# Empty dependencies file for bench_ablation_approx_lp.
# This may be replaced when dependencies are built.
