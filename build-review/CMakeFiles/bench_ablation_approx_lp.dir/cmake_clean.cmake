file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_approx_lp.dir/bench/ablation_approx_lp.cpp.o"
  "CMakeFiles/bench_ablation_approx_lp.dir/bench/ablation_approx_lp.cpp.o.d"
  "bench_ablation_approx_lp"
  "bench_ablation_approx_lp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_approx_lp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
