# Empty compiler generated dependencies file for core_rl_test.
# This may be replaced when dependencies are built.
