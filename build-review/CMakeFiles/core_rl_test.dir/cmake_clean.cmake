file(REMOVE_RECURSE
  "CMakeFiles/core_rl_test.dir/tests/core_rl_test.cpp.o"
  "CMakeFiles/core_rl_test.dir/tests/core_rl_test.cpp.o.d"
  "core_rl_test"
  "core_rl_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_rl_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
