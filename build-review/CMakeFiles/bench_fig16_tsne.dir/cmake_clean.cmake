file(REMOVE_RECURSE
  "CMakeFiles/bench_fig16_tsne.dir/bench/fig16_tsne.cpp.o"
  "CMakeFiles/bench_fig16_tsne.dir/bench/fig16_tsne.cpp.o.d"
  "bench_fig16_tsne"
  "bench_fig16_tsne.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_tsne.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
