# Empty dependencies file for fleischer_topo_io_test.
# This may be replaced when dependencies are built.
