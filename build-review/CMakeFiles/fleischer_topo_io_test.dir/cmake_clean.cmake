file(REMOVE_RECURSE
  "CMakeFiles/fleischer_topo_io_test.dir/tests/fleischer_topo_io_test.cpp.o"
  "CMakeFiles/fleischer_topo_io_test.dir/tests/fleischer_topo_io_test.cpp.o.d"
  "fleischer_topo_io_test"
  "fleischer_topo_io_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fleischer_topo_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
