file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_robustness.dir/bench/fig10_robustness.cpp.o"
  "CMakeFiles/bench_fig10_robustness.dir/bench/fig10_robustness.cpp.o.d"
  "bench_fig10_robustness"
  "bench_fig10_robustness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_robustness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
