file(REMOVE_RECURSE
  "CMakeFiles/reward_consistency_test.dir/tests/reward_consistency_test.cpp.o"
  "CMakeFiles/reward_consistency_test.dir/tests/reward_consistency_test.cpp.o.d"
  "reward_consistency_test"
  "reward_consistency_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reward_consistency_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
