# Empty dependencies file for reward_consistency_test.
# This may be replaced when dependencies are built.
