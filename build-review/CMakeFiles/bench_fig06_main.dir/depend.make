# Empty dependencies file for bench_fig06_main.
# This may be replaced when dependencies are built.
