file(REMOVE_RECURSE
  "CMakeFiles/bench_fig06_main.dir/bench/fig06_main.cpp.o"
  "CMakeFiles/bench_fig06_main.dir/bench/fig06_main.cpp.o.d"
  "bench_fig06_main"
  "bench_fig06_main.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig06_main.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
