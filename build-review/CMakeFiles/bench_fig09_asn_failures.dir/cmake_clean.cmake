file(REMOVE_RECURSE
  "CMakeFiles/bench_fig09_asn_failures.dir/bench/fig09_asn_failures.cpp.o"
  "CMakeFiles/bench_fig09_asn_failures.dir/bench/fig09_asn_failures.cpp.o.d"
  "bench_fig09_asn_failures"
  "bench_fig09_asn_failures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_asn_failures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
