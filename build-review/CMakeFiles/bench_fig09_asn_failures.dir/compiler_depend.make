# Empty compiler generated dependencies file for bench_fig09_asn_failures.
# This may be replaced when dependencies are built.
