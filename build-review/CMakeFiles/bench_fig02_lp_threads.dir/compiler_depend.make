# Empty compiler generated dependencies file for bench_fig02_lp_threads.
# This may be replaced when dependencies are built.
