file(REMOVE_RECURSE
  "CMakeFiles/bench_fig02_lp_threads.dir/bench/fig02_lp_threads.cpp.o"
  "CMakeFiles/bench_fig02_lp_threads.dir/bench/fig02_lp_threads.cpp.o.d"
  "bench_fig02_lp_threads"
  "bench_fig02_lp_threads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig02_lp_threads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
