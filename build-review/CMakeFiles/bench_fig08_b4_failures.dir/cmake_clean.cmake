file(REMOVE_RECURSE
  "CMakeFiles/bench_fig08_b4_failures.dir/bench/fig08_b4_failures.cpp.o"
  "CMakeFiles/bench_fig08_b4_failures.dir/bench/fig08_b4_failures.cpp.o.d"
  "bench_fig08_b4_failures"
  "bench_fig08_b4_failures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08_b4_failures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
