# Empty dependencies file for bench_fig08_b4_failures.
# This may be replaced when dependencies are built.
