# Empty dependencies file for bench_fig18_timeseries.
# This may be replaced when dependencies are built.
