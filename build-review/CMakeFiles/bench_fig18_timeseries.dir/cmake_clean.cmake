file(REMOVE_RECURSE
  "CMakeFiles/bench_fig18_timeseries.dir/bench/fig18_timeseries.cpp.o"
  "CMakeFiles/bench_fig18_timeseries.dir/bench/fig18_timeseries.cpp.o.d"
  "bench_fig18_timeseries"
  "bench_fig18_timeseries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig18_timeseries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
