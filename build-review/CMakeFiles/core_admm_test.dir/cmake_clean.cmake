file(REMOVE_RECURSE
  "CMakeFiles/core_admm_test.dir/tests/core_admm_test.cpp.o"
  "CMakeFiles/core_admm_test.dir/tests/core_admm_test.cpp.o.d"
  "core_admm_test"
  "core_admm_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_admm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
