# Empty compiler generated dependencies file for core_admm_test.
# This may be replaced when dependencies are built.
