
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/tsne.cpp" "CMakeFiles/teal.dir/src/analysis/tsne.cpp.o" "gcc" "CMakeFiles/teal.dir/src/analysis/tsne.cpp.o.d"
  "/root/repo/src/baselines/lp_schemes.cpp" "CMakeFiles/teal.dir/src/baselines/lp_schemes.cpp.o" "gcc" "CMakeFiles/teal.dir/src/baselines/lp_schemes.cpp.o.d"
  "/root/repo/src/baselines/ncflow.cpp" "CMakeFiles/teal.dir/src/baselines/ncflow.cpp.o" "gcc" "CMakeFiles/teal.dir/src/baselines/ncflow.cpp.o.d"
  "/root/repo/src/baselines/pop.cpp" "CMakeFiles/teal.dir/src/baselines/pop.cpp.o" "gcc" "CMakeFiles/teal.dir/src/baselines/pop.cpp.o.d"
  "/root/repo/src/baselines/teavar.cpp" "CMakeFiles/teal.dir/src/baselines/teavar.cpp.o" "gcc" "CMakeFiles/teal.dir/src/baselines/teavar.cpp.o.d"
  "/root/repo/src/core/admm.cpp" "CMakeFiles/teal.dir/src/core/admm.cpp.o" "gcc" "CMakeFiles/teal.dir/src/core/admm.cpp.o.d"
  "/root/repo/src/core/coma.cpp" "CMakeFiles/teal.dir/src/core/coma.cpp.o" "gcc" "CMakeFiles/teal.dir/src/core/coma.cpp.o.d"
  "/root/repo/src/core/direct_loss.cpp" "CMakeFiles/teal.dir/src/core/direct_loss.cpp.o" "gcc" "CMakeFiles/teal.dir/src/core/direct_loss.cpp.o.d"
  "/root/repo/src/core/flow_gnn.cpp" "CMakeFiles/teal.dir/src/core/flow_gnn.cpp.o" "gcc" "CMakeFiles/teal.dir/src/core/flow_gnn.cpp.o.d"
  "/root/repo/src/core/model.cpp" "CMakeFiles/teal.dir/src/core/model.cpp.o" "gcc" "CMakeFiles/teal.dir/src/core/model.cpp.o.d"
  "/root/repo/src/core/policy_net.cpp" "CMakeFiles/teal.dir/src/core/policy_net.cpp.o" "gcc" "CMakeFiles/teal.dir/src/core/policy_net.cpp.o.d"
  "/root/repo/src/core/reward.cpp" "CMakeFiles/teal.dir/src/core/reward.cpp.o" "gcc" "CMakeFiles/teal.dir/src/core/reward.cpp.o.d"
  "/root/repo/src/core/shard.cpp" "CMakeFiles/teal.dir/src/core/shard.cpp.o" "gcc" "CMakeFiles/teal.dir/src/core/shard.cpp.o.d"
  "/root/repo/src/core/teal_scheme.cpp" "CMakeFiles/teal.dir/src/core/teal_scheme.cpp.o" "gcc" "CMakeFiles/teal.dir/src/core/teal_scheme.cpp.o.d"
  "/root/repo/src/core/variants.cpp" "CMakeFiles/teal.dir/src/core/variants.cpp.o" "gcc" "CMakeFiles/teal.dir/src/core/variants.cpp.o.d"
  "/root/repo/src/lp/fleischer.cpp" "CMakeFiles/teal.dir/src/lp/fleischer.cpp.o" "gcc" "CMakeFiles/teal.dir/src/lp/fleischer.cpp.o.d"
  "/root/repo/src/lp/path_lp.cpp" "CMakeFiles/teal.dir/src/lp/path_lp.cpp.o" "gcc" "CMakeFiles/teal.dir/src/lp/path_lp.cpp.o.d"
  "/root/repo/src/lp/pdhg.cpp" "CMakeFiles/teal.dir/src/lp/pdhg.cpp.o" "gcc" "CMakeFiles/teal.dir/src/lp/pdhg.cpp.o.d"
  "/root/repo/src/lp/simplex.cpp" "CMakeFiles/teal.dir/src/lp/simplex.cpp.o" "gcc" "CMakeFiles/teal.dir/src/lp/simplex.cpp.o.d"
  "/root/repo/src/lp/sparse.cpp" "CMakeFiles/teal.dir/src/lp/sparse.cpp.o" "gcc" "CMakeFiles/teal.dir/src/lp/sparse.cpp.o.d"
  "/root/repo/src/nn/mat.cpp" "CMakeFiles/teal.dir/src/nn/mat.cpp.o" "gcc" "CMakeFiles/teal.dir/src/nn/mat.cpp.o.d"
  "/root/repo/src/nn/module.cpp" "CMakeFiles/teal.dir/src/nn/module.cpp.o" "gcc" "CMakeFiles/teal.dir/src/nn/module.cpp.o.d"
  "/root/repo/src/serve/replica.cpp" "CMakeFiles/teal.dir/src/serve/replica.cpp.o" "gcc" "CMakeFiles/teal.dir/src/serve/replica.cpp.o.d"
  "/root/repo/src/serve/server.cpp" "CMakeFiles/teal.dir/src/serve/server.cpp.o" "gcc" "CMakeFiles/teal.dir/src/serve/server.cpp.o.d"
  "/root/repo/src/sim/online.cpp" "CMakeFiles/teal.dir/src/sim/online.cpp.o" "gcc" "CMakeFiles/teal.dir/src/sim/online.cpp.o.d"
  "/root/repo/src/sim/served.cpp" "CMakeFiles/teal.dir/src/sim/served.cpp.o" "gcc" "CMakeFiles/teal.dir/src/sim/served.cpp.o.d"
  "/root/repo/src/te/objective.cpp" "CMakeFiles/teal.dir/src/te/objective.cpp.o" "gcc" "CMakeFiles/teal.dir/src/te/objective.cpp.o.d"
  "/root/repo/src/te/problem.cpp" "CMakeFiles/teal.dir/src/te/problem.cpp.o" "gcc" "CMakeFiles/teal.dir/src/te/problem.cpp.o.d"
  "/root/repo/src/te/scheme.cpp" "CMakeFiles/teal.dir/src/te/scheme.cpp.o" "gcc" "CMakeFiles/teal.dir/src/te/scheme.cpp.o.d"
  "/root/repo/src/topo/graph.cpp" "CMakeFiles/teal.dir/src/topo/graph.cpp.o" "gcc" "CMakeFiles/teal.dir/src/topo/graph.cpp.o.d"
  "/root/repo/src/topo/shortest_path.cpp" "CMakeFiles/teal.dir/src/topo/shortest_path.cpp.o" "gcc" "CMakeFiles/teal.dir/src/topo/shortest_path.cpp.o.d"
  "/root/repo/src/topo/topo_io.cpp" "CMakeFiles/teal.dir/src/topo/topo_io.cpp.o" "gcc" "CMakeFiles/teal.dir/src/topo/topo_io.cpp.o.d"
  "/root/repo/src/topo/topo_stats.cpp" "CMakeFiles/teal.dir/src/topo/topo_stats.cpp.o" "gcc" "CMakeFiles/teal.dir/src/topo/topo_stats.cpp.o.d"
  "/root/repo/src/topo/topology.cpp" "CMakeFiles/teal.dir/src/topo/topology.cpp.o" "gcc" "CMakeFiles/teal.dir/src/topo/topology.cpp.o.d"
  "/root/repo/src/traffic/traffic.cpp" "CMakeFiles/teal.dir/src/traffic/traffic.cpp.o" "gcc" "CMakeFiles/teal.dir/src/traffic/traffic.cpp.o.d"
  "/root/repo/src/util/alloc_hook.cpp" "CMakeFiles/teal.dir/src/util/alloc_hook.cpp.o" "gcc" "CMakeFiles/teal.dir/src/util/alloc_hook.cpp.o.d"
  "/root/repo/src/util/csv.cpp" "CMakeFiles/teal.dir/src/util/csv.cpp.o" "gcc" "CMakeFiles/teal.dir/src/util/csv.cpp.o.d"
  "/root/repo/src/util/histogram.cpp" "CMakeFiles/teal.dir/src/util/histogram.cpp.o" "gcc" "CMakeFiles/teal.dir/src/util/histogram.cpp.o.d"
  "/root/repo/src/util/rng.cpp" "CMakeFiles/teal.dir/src/util/rng.cpp.o" "gcc" "CMakeFiles/teal.dir/src/util/rng.cpp.o.d"
  "/root/repo/src/util/stats.cpp" "CMakeFiles/teal.dir/src/util/stats.cpp.o" "gcc" "CMakeFiles/teal.dir/src/util/stats.cpp.o.d"
  "/root/repo/src/util/thread_name.cpp" "CMakeFiles/teal.dir/src/util/thread_name.cpp.o" "gcc" "CMakeFiles/teal.dir/src/util/thread_name.cpp.o.d"
  "/root/repo/src/util/thread_pool.cpp" "CMakeFiles/teal.dir/src/util/thread_pool.cpp.o" "gcc" "CMakeFiles/teal.dir/src/util/thread_pool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
