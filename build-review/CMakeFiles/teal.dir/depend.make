# Empty dependencies file for teal.
# This may be replaced when dependencies are built.
