file(REMOVE_RECURSE
  "libteal.a"
)
