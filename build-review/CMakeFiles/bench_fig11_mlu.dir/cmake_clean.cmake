file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_mlu.dir/bench/fig11_mlu.cpp.o"
  "CMakeFiles/bench_fig11_mlu.dir/bench/fig11_mlu.cpp.o.d"
  "bench_fig11_mlu"
  "bench_fig11_mlu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_mlu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
