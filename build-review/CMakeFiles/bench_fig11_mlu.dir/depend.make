# Empty dependencies file for bench_fig11_mlu.
# This may be replaced when dependencies are built.
