# Empty dependencies file for precision_test.
# This may be replaced when dependencies are built.
