file(REMOVE_RECURSE
  "CMakeFiles/precision_test.dir/tests/precision_test.cpp.o"
  "CMakeFiles/precision_test.dir/tests/precision_test.cpp.o.d"
  "precision_test"
  "precision_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/precision_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
