# Empty dependencies file for bench_fig07_cdf_asn.
# This may be replaced when dependencies are built.
