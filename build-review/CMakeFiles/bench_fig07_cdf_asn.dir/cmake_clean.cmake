file(REMOVE_RECURSE
  "CMakeFiles/bench_fig07_cdf_asn.dir/bench/fig07_cdf_asn.cpp.o"
  "CMakeFiles/bench_fig07_cdf_asn.dir/bench/fig07_cdf_asn.cpp.o.d"
  "bench_fig07_cdf_asn"
  "bench_fig07_cdf_asn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig07_cdf_asn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
