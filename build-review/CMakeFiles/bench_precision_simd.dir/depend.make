# Empty dependencies file for bench_precision_simd.
# This may be replaced when dependencies are built.
