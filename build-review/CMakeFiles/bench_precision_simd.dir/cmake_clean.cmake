file(REMOVE_RECURSE
  "CMakeFiles/bench_precision_simd.dir/bench/precision_simd.cpp.o"
  "CMakeFiles/bench_precision_simd.dir/bench/precision_simd.cpp.o.d"
  "bench_precision_simd"
  "bench_precision_simd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_precision_simd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
