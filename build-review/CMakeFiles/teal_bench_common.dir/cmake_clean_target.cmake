file(REMOVE_RECURSE
  "libteal_bench_common.a"
)
