# Empty compiler generated dependencies file for teal_bench_common.
# This may be replaced when dependencies are built.
