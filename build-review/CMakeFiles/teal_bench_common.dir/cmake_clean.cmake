file(REMOVE_RECURSE
  "CMakeFiles/teal_bench_common.dir/bench/common.cpp.o"
  "CMakeFiles/teal_bench_common.dir/bench/common.cpp.o.d"
  "libteal_bench_common.a"
  "libteal_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/teal_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
