// common.h — shared setup for the per-figure bench binaries.
//
// Every bench regenerates one table/figure of the paper. They share:
//  * scaled-down problem instances per topology (DESIGN.md substitution #5:
//    demand-set caps and shorter traces keep the full sweep runnable on one
//    machine; every code path is identical to full scale),
//  * capacity calibration so the optimum satisfies ~90% of demand (§5.1),
//  * Teal model training with on-disk caching (models/<topo>_<objective>.bin)
//    so later figures reuse the models the fig06 bench trains,
//  * the paper-anchored time scaling for the online setting: measured solve
//    times are mapped so that the anchor scheme's median equals the paper's
//    reported time on that topology, placing the LP baselines in the same
//    budget regime as the paper's testbed (documented in the repo-root
//    EXPERIMENTS.md ledger, which also records raw vs. paper-anchored
//    numbers per figure; scripts/check_docs.sh keeps it consistent).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "baselines/lp_schemes.h"
#include "baselines/ncflow.h"
#include "baselines/pop.h"
#include "baselines/teavar.h"
#include "core/teal_scheme.h"
#include "nn/mat.h"
#include "nn/packed.h"
#include "sim/online.h"
#include "te/scheme.h"
#include "topo/topology.h"
#include "traffic/traffic.h"
#include "util/csv.h"
#include "util/rng.h"
#include "util/stats.h"

namespace teal::bench {

struct TopoScale {
  int n_demands;          // demand-set cap (gravity-weighted sample)
  int n_intervals;        // trace length (split 70/10/20)
  double target_sp_sat;   // capacity calibration: shortest-path satisfied %
};

// Default scaled-down sizes per topology (override with env TEAL_BENCH_FAST=1
// for a quick smoke run).
TopoScale default_scale(const std::string& topo);

struct Instance {
  std::string name;
  te::Problem pb;
  traffic::TraceSplit split;
  TopoScale scale;

  Instance(std::string n, te::Problem p, traffic::TraceSplit s, TopoScale sc)
      : name(std::move(n)), pb(std::move(p)), split(std::move(s)), scale(sc) {}
};

// Builds topology + demands + calibrated trace. Deterministic per (topo, seed).
std::unique_ptr<Instance> make_instance(const std::string& topo, std::uint64_t seed = 1);

// Returns a trained Teal scheme for the instance, using the on-disk model
// cache under models/. Training parameters are scaled to the bench budget.
std::unique_ptr<core::TealScheme> make_teal(Instance& inst,
                                            te::Objective obj = te::Objective::kTotalFlow,
                                            bool use_admm = true);

// Baseline factory by name: "LP-all", "LP-top", "NCFlow", "POP", "TEAVAR*".
std::unique_ptr<te::Scheme> make_baseline(const std::string& name, Instance& inst,
                                          te::Objective obj = te::Objective::kTotalFlow);

// Runs `scheme` offline over a trace through the *sequential* batched loop
// (te::solve_batch_sequential), after an untimed warmup for warm-state
// schemes: per-matrix satisfied demand, standalone per-solve seconds
// directly comparable across schemes and to the paper's computation-time
// axis, and the allocations themselves. Benches that want Teal's parallel
// amortization instead (and median-anchor the times, see te/scheme.h) call
// solve_batch() directly, as fig18 does.
struct OfflineSeries {
  std::vector<double> satisfied_pct;
  std::vector<double> solve_seconds;
  std::vector<te::Allocation> allocs;
  double mean_satisfied() const;
  double mean_seconds() const;
};
OfflineSeries run_offline(te::Scheme& scheme, const Instance& inst,
                          const traffic::Trace& trace);

// The paper's reported computation time of `scheme` on `topo` (Figure 6a,
// Figure 7a, §5.2/§5.3 text; LP-all on ASN is its quoted 5.5 h). Returns 0
// when the paper gives no number for the pair.
//
// Why this exists: our instances are scaled down (DESIGN.md #5), and the
// schemes' times shrink by *different* factors (LP-top's subproblem shrinks
// with the demand cap, Teal's forward with the path count), so no single
// time_scale maps our measurements onto the paper's time axis. The online
// staleness simulation therefore uses the paper's full-scale times per
// scheme, while our raw measured times are reported alongside.
double paper_seconds(const std::string& scheme, const std::string& topo);

// time_scale for sim::OnlineConfig: maps this scheme's measured median onto
// the paper's full-scale time (identity when the paper gives no number).
// Median anchoring also neutralizes the uniform per-solve inflation a
// parallel solve_batch introduces (see the BatchSolve note in te/scheme.h):
// scaled replay times depend only on each solve's time *relative to the
// median*, not on the absolute measurement regime.
double scheme_time_scale(const std::string& scheme, const std::string& topo,
                         double measured_median);

// Shared fixture for the Precision/SIMD ledger's batched linear-forward
// kernel: n rows through a (24 -> 24) dense layer at the pipeline's own
// shape class. bench_micro_kernels and bench_precision_simd both report this
// kernel's f64/f32 ratio, so the shape, seed and fill are defined once here
// — retuning it in one binary cannot silently diverge from the other.
template <typename T>
struct LinearKernelFixture {
  static constexpr int kRows = 20000, kIn = 24, kOut = 24;
  nn::BasicMat<T> x{kRows, kIn}, w{kOut, kIn}, y{kRows, kOut};
  std::vector<T> b = std::vector<T>(kOut);

  LinearKernelFixture() {
    util::Rng rng(3);
    for (auto& v : x.data()) v = static_cast<T>(rng.normal());
    for (auto& v : w.data()) v = static_cast<T>(rng.normal());
    for (auto& v : b) v = static_cast<T>(rng.normal());
  }
  void run() { nn::linear_forward_rows(x, w, b, y, 0, kRows); }
};

// Blocked-layout variant of the same kernel: identical shape, seed and fill
// (it packs LinearKernelFixture<float>'s weights), so the blocked-vs-
// unblocked ratio is apples-to-apples. W = float is the blocked f32 kernel,
// W = nn::bf16 the storage-halved variant.
template <typename W>
struct PackedKernelFixture {
  LinearKernelFixture<float> base;
  nn::PackedMat<W> wp;

  PackedKernelFixture() { nn::pack_weights(base.w, wp); }
  void run() { nn::linear_forward_rows_blocked(base.x, wp, base.b, base.y, 0, base.kRows); }
};

// Where bench CSV outputs go (created on demand).
std::string out_dir();

// Model cache path for (topology, objective).
std::string model_cache_path(const std::string& topo, te::Objective obj);

// True when TEAL_BENCH_FAST=1: tiny sizes for smoke-testing the harness.
bool fast_mode();

// Inserts `entry` into EXPERIMENTS.md directly below `marker` (newest run
// first — a blind EOF append would land inside whichever ledger section
// happens to be last). Prints a notice and returns false when EXPERIMENTS.md
// is not in the cwd (run from the repo root) or the marker is missing
// (scripts/check_docs.sh flags that). Shared by every ledger bench so the
// read/find/insert/rewrite logic exists once.
bool insert_ledger_entry(const std::string& marker, const std::string& entry);

// "YYYY-MM-DD HH:MM" local-time stamp for ledger entries.
std::string ledger_stamp();

// Prints a section header so the combined bench log reads like the paper.
void print_header(const std::string& figure, const std::string& caption);

}  // namespace teal::bench
