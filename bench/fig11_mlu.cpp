// fig11_mlu — regenerates Figure 11: the min-MLU objective (§5.5) on Kdl and
// ASN for LP-all, LP-top and Teal (NCFlow/POP codebases do not support other
// objectives; Teal omits ADMM for MLU).
//
// Expected shape (paper): all three schemes attain comparable MLU with no
// statistically significant differences, but Teal answers in a fraction of a
// second while the LP schemes pay for a bisection of LP solves (17-36x in
// the paper).
#include <cstdio>

#include "bench/common.h"

using namespace teal;

int main() {
  bench::print_header("Figure 11", "min-MLU objective: quality vs computation time");
  const int n_test = bench::fast_mode() ? 1 : 3;
  util::Table table({"topology", "scheme", "mean MLU", "mean time (s)"});
  util::Table csv({"topology", "scheme", "mlu", "time_s"});

  for (const std::string topo : {"Kdl", "ASN"}) {
    auto inst = bench::make_instance(topo);
    for (const std::string sname : {"LP-all", "LP-top", "Teal"}) {
      std::unique_ptr<te::Scheme> scheme =
          sname == "Teal"
              ? std::unique_ptr<te::Scheme>(
                    bench::make_teal(*inst, te::Objective::kMinMaxLinkUtil,
                                     /*use_admm=*/false))
              : bench::make_baseline(sname, *inst, te::Objective::kMinMaxLinkUtil);
      std::vector<double> mlus, times;
      for (int t = 0; t < n_test; ++t) {
        const auto& tm = inst->split.test.at(t);
        auto a = scheme->solve(inst->pb, tm);
        // The MLU objective routes all traffic; Teal's softmax does that by
        // construction, the LP schemes by their bisection top-up.
        mlus.push_back(te::max_link_utilization(inst->pb, tm, a));
        times.push_back(scheme->last_solve_seconds());
      }
      table.add_row({topo, sname, util::fmt(util::mean(mlus), 3),
                     util::fmt(util::mean(times), 3)});
      for (std::size_t i = 0; i < mlus.size(); ++i) {
        csv.add_row({topo, sname, util::fmt(mlus[i], 4), util::fmt(times[i], 4)});
      }
      std::printf("  [%s/%s] MLU %.3f in %.3f s\n", topo.c_str(), sname.c_str(),
                  util::mean(mlus), util::mean(times));
    }
  }
  std::printf("\n%s", table.to_string().c_str());
  std::printf("\nPaper reference: comparable MLU across schemes; Teal 17-36x faster.\n");
  csv.write_csv(bench::out_dir() + "/fig11_mlu.csv");
  return 0;
}
