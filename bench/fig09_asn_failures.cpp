// fig09_asn_failures — regenerates Figure 9: satisfied demand on ASN with 0,
// 50, 100 or 200 link failures for NCFlow, POP, LP-top and Teal.
//
// Expected shape (paper): Teal routes substantially more demand than the
// baselines under every failure count, and the ranking follows run times —
// slow schemes keep dropping traffic on failed links while they recompute
// (Teal +6-8% over LP-top, +15-18% over POP, +32-33% over NCFlow).
#include <cstdio>

#include "bench/common.h"

using namespace teal;

int main() {
  bench::print_header("Figure 9", "satisfied demand under mass link failures on ASN");
  auto inst = bench::make_instance("ASN");
  const int n_trials = bench::fast_mode() ? 1 : 3;
  const std::vector<std::string> schemes = {"NCFlow", "POP", "LP-top", "Teal"};

  util::Table table({"scheme", "no failure", "50 failures", "100 failures", "200 failures"});
  util::Table csv({"scheme", "n_failures", "satisfied_pct", "resolve_s_paper_eq"});
  for (const auto& sname : schemes) {
    std::unique_ptr<te::Scheme> scheme =
        sname == "Teal" ? std::unique_ptr<te::Scheme>(bench::make_teal(*inst))
                        : bench::make_baseline(sname, *inst);
    // Per-scheme paper-anchored staleness (see common.h). Calibrate against
    // one probe solve.
    sim::OnlineConfig ocfg;
    {
      scheme->solve(inst->pb, inst->split.test.at(0));
      ocfg.time_scale =
          bench::scheme_time_scale(sname, inst->name, scheme->last_solve_seconds());
    }
    std::vector<std::string> row = {sname};
    for (int n_failures : {0, 50, 100, 200}) {
      std::vector<double> sat;
      double resolve = 0.0;
      for (int trial = 0; trial < n_trials; ++trial) {
        const auto& tm = inst->split.test.at(trial % inst->split.test.size());
        if (n_failures == 0) {
          auto a = scheme->solve(inst->pb, tm);
          sat.push_back(te::satisfied_demand_pct(inst->pb, tm, a));
          resolve = scheme->last_solve_seconds();
        } else {
          auto failed = sim::sample_link_failures(
              inst->pb.graph(), n_failures, 500 + static_cast<std::uint64_t>(trial));
          auto res = sim::eval_failure_reaction(*scheme, inst->pb, tm, failed, ocfg);
          sat.push_back(res.satisfied_pct);
          resolve = res.resolve_seconds;
        }
      }
      row.push_back(util::fmt(util::mean(sat), 1) + "%");
      csv.add_row({sname, std::to_string(n_failures), util::fmt(util::mean(sat), 2),
                   util::fmt(resolve * ocfg.time_scale, 1)});
    }
    table.add_row(row);
    std::printf("  %s done\n", sname.c_str());
  }
  std::printf("\n%s", table.to_string().c_str());
  std::printf("\nNo retraining is performed for any failure count — Teal generalizes "
              "across transient capacity changes (§5.3).\n");
  csv.write_csv(bench::out_dir() + "/fig09_asn_failures.csv");
  return 0;
}
