// fig08_b4_failures — regenerates Figure 8: satisfied demand on B4 with 0, 1
// or 2 link failures for TEAVAR*, NCFlow, Teal, LP-top, POP and LP-all.
//
// Expected shape (paper): all schemes decline as failures increase; Teal
// consistently beats TEAVAR* (which sacrificed utilization for availability
// headroom) while staying statistically indistinguishable from the rest.
#include <cstdio>

#include "bench/common.h"

using namespace teal;

int main() {
  bench::print_header("Figure 8", "satisfied demand under 0/1/2 link failures on B4");
  auto inst = bench::make_instance("B4");
  const int n_trials = bench::fast_mode() ? 2 : 6;

  const std::vector<std::string> schemes = {"TEAVAR*", "NCFlow", "Teal",
                                            "LP-top", "POP", "LP-all"};
  util::Table table({"scheme", "no failure", "1 link failure", "2 link failures"});
  util::Table csv({"scheme", "n_failures", "satisfied_pct"});

  for (const auto& sname : schemes) {
    std::unique_ptr<te::Scheme> scheme =
        sname == "Teal" ? std::unique_ptr<te::Scheme>(bench::make_teal(*inst))
                        : bench::make_baseline(sname, *inst);
    std::vector<std::string> row = {sname};
    for (int n_failures : {0, 1, 2}) {
      std::vector<double> sat;
      for (int trial = 0; trial < n_trials; ++trial) {
        const auto& tm = inst->split.test.at(trial % inst->split.test.size());
        if (n_failures == 0) {
          auto a = scheme->solve(inst->pb, tm);
          sat.push_back(te::satisfied_demand_pct(inst->pb, tm, a));
        } else {
          auto failed = sim::sample_link_failures(
              inst->pb.graph(), n_failures, 100 + static_cast<std::uint64_t>(trial));
          auto res = sim::eval_failure_reaction(*scheme, inst->pb, tm, failed, {});
          sat.push_back(res.satisfied_pct);
        }
      }
      row.push_back(util::fmt(util::mean(sat), 1) + "%");
      csv.add_row({sname, std::to_string(n_failures), util::fmt(util::mean(sat), 2)});
    }
    table.add_row(row);
    std::printf("  %s done\n", sname.c_str());
  }
  std::printf("\n%s", table.to_string().c_str());
  std::printf("\nPaper reference: Teal outperforms TEAVAR* by 2.4-5.1%% and matches the "
              "other schemes.\n");
  csv.write_csv(bench::out_dir() + "/fig08_b4_failures.csv");
  return 0;
}
