// fig18_timeseries — regenerates Figure 18 (Appendix E): per-interval
// satisfied demand over ~100 minutes on ASN for LP-top, NCFlow, POP and Teal
// in the online setting.
//
// Expected shape (paper): LP-top only deploys fresh routes near the end of
// each 5-minute interval (and sometimes overruns); NCFlow/POP recompute only
// every 2nd-3rd matrix and ride stale routes in between; Teal refreshes every
// interval and leads throughout.
#include <cstdio>

#include "bench/common.h"

using namespace teal;

int main() {
  bench::print_header("Figure 18", "satisfied demand over time on ASN (online)");
  auto inst = bench::make_instance("ASN");
  const int n_intervals =
      std::min(bench::fast_mode() ? 4 : 20, inst->split.test.size());
  traffic::Trace test;
  test.matrices.assign(inst->split.test.matrices.begin(),
                       inst->split.test.matrices.begin() + n_intervals);

  const std::vector<std::string> schemes = {"LP-top", "NCFlow", "POP", "Teal"};
  struct Run {
    std::string name;
    std::vector<te::Allocation> allocs;
    std::vector<double> seconds;
  };
  std::vector<Run> runs;
  for (const auto& sname : schemes) {
    std::unique_ptr<te::Scheme> scheme =
        sname == "Teal" ? std::unique_ptr<te::Scheme>(bench::make_teal(*inst))
                        : bench::make_baseline(sname, *inst);
    // Parallel batch is fine here: fig18's deliverable is satisfied demand
    // over time, and the staleness replay anchors each scheme's *median*
    // time to the paper's (scheme_time_scale), cancelling uniform batch
    // contention; the batch wall time below is the amortization win.
    auto batch = scheme->solve_batch(inst->pb, std::span(test.matrices));
    Run run;
    run.name = sname;
    run.allocs = std::move(batch.allocs);
    run.seconds = std::move(batch.solve_seconds);
    std::printf("  %s solved %d matrices (batch wall %.3f s)\n", sname.c_str(),
                test.size(), batch.wall_seconds);
    runs.push_back(std::move(run));
  }

  util::Table table({"minute", "LP-top", "NCFlow", "POP", "Teal"});
  std::vector<sim::OnlineResult> results;
  for (const auto& r : runs) {
    sim::OnlineConfig ocfg;
    ocfg.time_scale =
        bench::scheme_time_scale(r.name, inst->name, util::median(r.seconds));
    results.push_back(sim::replay_online(inst->pb, test, r.allocs, r.seconds, ocfg));
  }
  util::Table csv({"scheme", "minute", "satisfied_pct", "started_solve"});
  for (int t = 0; t < test.size(); ++t) {
    std::vector<std::string> row = {std::to_string(t * 5)};
    for (std::size_t s = 0; s < runs.size(); ++s) {
      const auto& iv = results[s].intervals[static_cast<std::size_t>(t)];
      row.push_back(util::fmt(iv.satisfied_pct, 1) + (iv.started_solve ? "*" : " "));
      csv.add_row({runs[s].name, std::to_string(t * 5), util::fmt(iv.satisfied_pct, 2),
                   iv.started_solve ? "1" : "0"});
    }
    table.add_row(row);
  }
  std::printf("\nPer-interval satisfied demand (%%); '*' marks intervals where the\n"
              "scheme started a new computation (others ride stale routes):\n%s",
              table.to_string().c_str());
  for (std::size_t s = 0; s < runs.size(); ++s) {
    std::printf("  %-8s recomputed %zu/%d intervals, mean %.1f%%\n", runs[s].name.c_str(),
                results[s].solve_times.size(), test.size(),
                results[s].mean_satisfied_pct);
  }
  csv.write_csv(bench::out_dir() + "/fig18_timeseries.csv");
  return 0;
}
