// scenario_matrix — scheme × scenario × scale sweep through the serving path.
//
// Not a paper figure: this bench drives the scenario factory (src/scenario/)
// end to end — generated power-law WANs, gravity traffic with adversarial
// modulators, rolling failure churn — through sim::run_served, and records a
// scenario-matrix ledger in EXPERIMENTS.md ("Scenario matrix ledger"). It is
// the robustness story (fig 8–10) under serving load on inputs the cost
// models were never tuned on: every scenario is deterministic from its seed,
// so any row can be regenerated bit-identically.
//
// The invariant the bench itself enforces (exit nonzero otherwise): every
// run's serving ledger balances — offered == accepted + shed, completed ==
// accepted after drain.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/common.h"
#include "scenario/scenario.h"

using namespace teal;

namespace {

struct Row {
  std::string scheme, scenario;
  int nodes = 0, links = 0, demands = 0, intervals = 0, epochs = 0;
  double mean_satisfied = 0.0;
  std::uint64_t offered = 0, accepted = 0, shed = 0;
  double p50_ms = 0.0, p99_ms = 0.0;
};

void append_experiments_ledger(const std::vector<Row>& rows) {
  std::string entry;
  entry += "\n\n### Run " + bench::ledger_stamp() + " — power-law topologies, 2 replicas";
  entry += bench::fast_mode() ? " (fast mode)" : "";
  entry += "\n\n| scheme | scenario | nodes | links | demands | epochs | satisfied % | offered | shed | p50 (ms) | p99 (ms) |\n";
  entry += "|---|---|---|---|---|---|---|---|---|---|---|\n";
  for (const auto& r : rows) {
    entry += "| " + r.scheme + " | " + r.scenario + " | " + std::to_string(r.nodes) +
             " | " + std::to_string(r.links) + " | " + std::to_string(r.demands) +
             " | " + std::to_string(r.epochs) + " | " + util::fmt(r.mean_satisfied, 1) +
             " | " + std::to_string(r.offered) + " | " + std::to_string(r.shed) +
             " | " + util::fmt(r.p50_ms, 3) + " | " + util::fmt(r.p99_ms, 3) + " |\n";
  }
  bench::insert_ledger_entry(
      "<!-- bench_scenario_matrix inserts runs below this line -->", entry);
}

}  // namespace

int main() {
  bench::print_header("Scenario matrix",
                      "generated topologies x adversarial traffic through run_served");
  const std::vector<std::string> schemes = {"Teal", "LP-top"};
  const std::vector<std::string> scenarios = {"baseline", "diurnal", "flash-crowd",
                                              "rolling-failure"};
  const std::vector<int> scales = bench::fast_mode() ? std::vector<int>{40, 80}
                                                     : std::vector<int>{120, 360};

  util::Table table({"scheme", "scenario", "nodes", "epochs", "satisfied %", "shed",
                     "p50 ms", "p99 ms"});
  util::Table csv({"scheme", "scenario", "nodes", "links", "demands", "epochs",
                   "satisfied_pct", "offered", "shed", "p50_ms", "p99_ms"});
  std::vector<Row> rows;
  bool balanced = true;

  for (int nodes : scales) {
    for (const auto& sname : scenarios) {
      scenario::ScenarioSpec spec = scenario::named_scenario(sname, nodes);
      if (bench::fast_mode()) {
        spec.traffic.n_intervals = 12;
        spec.n_demands = std::min(spec.n_demands, 100);
      }
      scenario::Scenario sc = scenario::build_scenario(spec);

      for (const auto& scheme_name : schemes) {
        auto scheme = scenario::make_cold_scheme(scheme_name, sc.pb);
        sim::ServedConfig cfg;
        cfg.n_replicas = 2;
        cfg.serve.queue_capacity = static_cast<std::size_t>(sc.trace.size());
        auto res = scenario::run_scenario(
            *scheme, sc, cfg, scenario::cold_scheme_factory(scheme_name, sc.pb));

        Row r;
        r.scheme = scheme_name;
        r.scenario = sname;
        r.nodes = sc.pb.graph().num_nodes();
        r.links = sc.pb.graph().num_edges() / 2;
        r.demands = sc.pb.num_demands();
        r.intervals = sc.trace.size();
        r.epochs = res.n_epochs;
        r.mean_satisfied = res.mean_satisfied_pct;
        r.offered = res.stats.offered;
        r.accepted = res.stats.accepted;
        r.shed = res.stats.shed;
        r.p50_ms = res.stats.response.percentile(50.0) * 1e3;
        r.p99_ms = res.stats.response.percentile(99.0) * 1e3;
        rows.push_back(r);

        if (r.accepted + r.shed != r.offered || res.stats.completed != r.accepted) {
          std::fprintf(stderr,
                       "LEDGER IMBALANCE: %s/%s/%d offered=%llu accepted=%llu "
                       "shed=%llu completed=%llu\n",
                       scheme_name.c_str(), sname.c_str(), nodes,
                       static_cast<unsigned long long>(r.offered),
                       static_cast<unsigned long long>(r.accepted),
                       static_cast<unsigned long long>(r.shed),
                       static_cast<unsigned long long>(res.stats.completed));
          balanced = false;
        }

        table.add_row({scheme_name, sname, std::to_string(r.nodes),
                       std::to_string(r.epochs), util::fmt(r.mean_satisfied, 1),
                       std::to_string(r.shed), util::fmt(r.p50_ms, 3),
                       util::fmt(r.p99_ms, 3)});
        csv.add_row({scheme_name, sname, std::to_string(r.nodes),
                     std::to_string(r.links), std::to_string(r.demands),
                     std::to_string(r.epochs), util::fmt(r.mean_satisfied, 2),
                     std::to_string(r.offered), std::to_string(r.shed),
                     util::fmt(r.p50_ms, 4), util::fmt(r.p99_ms, 4)});
      }
      std::printf("  %s @ %d nodes done\n", sname.c_str(), nodes);
    }
  }

  std::printf("\n%s", table.to_string().c_str());
  csv.write_csv(bench::out_dir() + "/scenario_matrix.csv");
  append_experiments_ledger(rows);
  if (!balanced) {
    std::fprintf(stderr, "scenario_matrix: serving ledger imbalance (see above)\n");
    return 1;
  }
  return 0;
}
