// table1_topologies — regenerates Table 1 (nodes/edges), Table 3 (hop-based
// average shortest-path length and network diameter) and the Figure 17
// summary (distribution of the share of demands routable on each edge).
#include <cstdio>

#include "bench/common.h"
#include "topo/topo_stats.h"

using namespace teal;

int main() {
  bench::print_header("Table 1 / Table 3 / Figure 17", "topology inventory and statistics");
  util::Table table({"topology", "nodes", "edges", "avg shortest path", "diameter",
                     "routable-demand share per edge (p25/p50/p75, %)"});

  const std::vector<std::string> topos = {"B4", "SWAN", "UsCarrier", "Kdl", "ASN"};
  for (const auto& name : topos) {
    auto g = topo::make_topology(name);
    auto stats = topo::compute_stats(g);

    // Figure 17: share of demands routable on each edge, using the same
    // demand universe as the benches (all pairs for B4, sampled otherwise).
    int n_demands = bench::fast_mode() ? 200 : 2000;
    if (name == "B4") n_demands = 1 << 20;
    auto demands = traffic::sample_demands(g, n_demands, 1);
    te::Problem pb(g, demands, 4);
    std::vector<std::vector<topo::Path>> paths;
    for (int d = 0; d < pb.num_demands(); ++d) {
      std::vector<topo::Path> ps;
      for (int p = pb.path_begin(d); p < pb.path_end(d); ++p) {
        ps.push_back(pb.path_edges(p));
      }
      paths.push_back(std::move(ps));
    }
    auto share = topo::routable_demand_share(pb.graph(), paths);

    table.add_row({name, std::to_string(stats.n_nodes), std::to_string(stats.n_edges),
                   util::fmt(stats.avg_shortest_path, 1), std::to_string(stats.diameter),
                   util::fmt(util::percentile(share, 25), 1) + " / " +
                       util::fmt(util::percentile(share, 50), 1) + " / " +
                       util::fmt(util::percentile(share, 75), 1)});
  }
  std::printf("%s", table.to_string().c_str());
  std::printf("\nPaper reference (Table 3): B4 2.3/5, UsCarrier 12.1/35, Kdl 22.7/58, "
              "ASN 3.2/8.\nASN's low per-edge routable share (Fig 17) comes from its "
              "star-cluster structure.\n");
  table.write_csv(bench::out_dir() + "/table1_topologies.csv");
  return 0;
}
