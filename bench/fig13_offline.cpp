// fig13_offline — regenerates Figure 13: *offline* satisfied demand on Kdl
// and ASN (schemes assumed to compute instantaneously, isolating allocation
// quality from control delay; §5.1/§5.6).
//
// Expected shape (paper): on Kdl, LP-all is the optimal benchmark; Teal lands
// within a few percent of it, within ~1% of LP-top, and well above NCFlow;
// on ASN Teal and LP-top are comparable, both far above NCFlow/POP.
#include <cstdio>

#include "bench/common.h"

using namespace teal;

int main() {
  bench::print_header("Figure 13", "offline satisfied demand (no control delay)");
  const int n_test = bench::fast_mode() ? 2 : 5;
  util::Table table({"topology", "scheme", "offline satisfied (%)", "mean time (s)"});
  util::Table csv({"topology", "scheme", "satisfied_pct", "time_s"});

  for (const std::string topo : {"Kdl", "ASN"}) {
    auto inst = bench::make_instance(topo);
    traffic::Trace test;
    test.matrices.assign(inst->split.test.matrices.begin(),
                         inst->split.test.matrices.begin() + n_test);
    for (const std::string sname : {"LP-all", "LP-top", "NCFlow", "POP", "Teal"}) {
      if (sname == "LP-all" && topo == "ASN") continue;
      std::unique_ptr<te::Scheme> scheme =
          sname == "Teal" ? std::unique_ptr<te::Scheme>(bench::make_teal(*inst))
                          : bench::make_baseline(sname, *inst);
      auto series = bench::run_offline(*scheme, *inst, test);
      table.add_row({topo, sname, util::fmt(series.mean_satisfied(), 1),
                     util::fmt(series.mean_seconds(), 3)});
      csv.add_row({topo, sname, util::fmt(series.mean_satisfied(), 2),
                   util::fmt(series.mean_seconds(), 4)});
      std::printf("  [%s/%s] offline %.1f%% in %.3f s\n", topo.c_str(), sname.c_str(),
                  series.mean_satisfied(), series.mean_seconds());
    }
  }
  std::printf("\n%s", table.to_string().c_str());
  std::printf("\nPaper reference: Kdl — Teal within 4.8%% of optimal (LP-all), within "
              "0.7%% of LP-top,\n+27%% over NCFlow, +2.8%% over POP; ASN — Teal ~ LP-top, "
              "+30%% over NCFlow, +11%% over POP.\n");
  csv.write_csv(bench::out_dir() + "/fig13_offline.csv");
  return 0;
}
