// precision_simd — precision/layout backend sweep: kernel-level speedup of
// the batched linear forward (f64 scalar reference vs the unblocked f32
// path vs the blocked-panel f32/bf16 kernels the solve path runs),
// end-to-end warm-solve latency at every precision, and the narrowed-vs-f64
// flow-allocation error per topology.
//
// Not a paper figure: this bench quantifies the repo's own precision knob
// (te::Scheme::set_precision), the CPU analogue of the paper's fp32 GPU
// inference. The f64 path is the bit-stable reference under every build
// flag; the narrowed kernels vectorize under TEAL_SIMD, so the f64/f32
// kernel ratio reported here is the honest speedup of narrowing + SIMD on
// this machine (acceptance target >= 1.5x with TEAL_SIMD=ON on a
// >= 4-lane-vector unit; a scalar build records its own number), and the
// f32/blocked-f32 ratio is the layout speedup (CI-asserted >= 1x via
// TEAL_BENCH_ASSERT_BLOCKED=1).
//
// Jitter control: all kernel fixtures are timed with interleaved
// round-robin samples (one timed run of each fixture per sweep, repeated a
// pinned odd number of times, median reported). Back-to-back per-fixture
// loops let slow drift (frequency scaling, cache warm-up, a noisy
// neighbor) land entirely on whichever fixture ran last, which is exactly
// the f64-baseline wobble the earlier ledger entries show; interleaving
// spreads any drift evenly across all fixtures so the *ratios* stay
// comparable run-to-run.
//
// Output: a table on stdout, bench_out/precision_simd.csv, and — when run
// from the repo root — inserted entries in the EXPERIMENTS.md
// "Precision/SIMD ledger" and "Blocked layout ledger".
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/common.h"
#include "nn/mat.h"
#include "nn/packed.h"
#include "te/objective.h"
#include "util/rng.h"
#include "util/timer.h"

using namespace teal;

namespace {

double median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v.empty() ? 0.0 : v[v.size() / 2];
}

// Scientific notation for the error columns: the narrowed-vs-f64 deltas are
// ~1e-6 (f32) / ~1e-3 (bf16), invisible in fixed-point.
std::string sci(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2e", v);
  return buf;
}

std::string kernel_shape() {
  using Fx = bench::LinearKernelFixture<double>;
  return std::to_string(Fx::kRows) + "x" + std::to_string(Fx::kIn) + " -> " +
         std::to_string(Fx::kOut);
}

struct KernelResult {
  double f64_ms = 0.0;
  double f32_ms = 0.0;           // unblocked row-major f32
  double blocked_f32_ms = 0.0;   // lane-panel broadcast-FMA kernel
  double blocked_bf16_ms = 0.0;  // same kernel, bf16-storage weights
  double narrow_speedup = 0.0;   // f64 / f32 (narrowing + SIMD)
  double layout_speedup = 0.0;   // f32 / blocked f32 (layout alone)
};

// Times all four kernel fixtures with interleaved round-robin sampling (see
// header comment) at a pinned sample count.
KernelResult time_kernels(int samples) {
  bench::LinearKernelFixture<double> f64;
  bench::LinearKernelFixture<float> f32;
  bench::PackedKernelFixture<float> bl32;
  bench::PackedKernelFixture<nn::bf16> bl16;
  for (int i = 0; i < 3; ++i) {  // explicit warm-up sweeps, untimed
    f64.run();
    f32.run();
    bl32.run();
    bl16.run();
  }
  std::vector<double> ms64, ms32, msb32, msb16;
  auto sample = [](auto& fx, std::vector<double>& out) {
    util::Timer t;
    fx.run();
    out.push_back(t.seconds() * 1e3);
  };
  for (int i = 0; i < samples; ++i) {
    sample(f64, ms64);
    sample(f32, ms32);
    sample(bl32, msb32);
    sample(bl16, msb16);
  }
  KernelResult k;
  k.f64_ms = median(ms64);
  k.f32_ms = median(ms32);
  k.blocked_f32_ms = median(msb32);
  k.blocked_bf16_ms = median(msb16);
  k.narrow_speedup = k.f32_ms > 0.0 ? k.f64_ms / k.f32_ms : 0.0;
  k.layout_speedup = k.blocked_f32_ms > 0.0 ? k.f32_ms / k.blocked_f32_ms : 0.0;
  return k;
}

struct TopoRow {
  std::string name;
  double f64_ms = 0.0;
  double f32_ms = 0.0;
  double bf16_ms = 0.0;
  double speedup = 0.0;             // f64 / f32
  double max_split_err = 0.0;       // max |split_f64 - split_f32| over all paths
  double obj_rel_err = 0.0;         // |obj_f64 - obj_f32| / obj_f64
  double bf16_max_split_err = 0.0;  // same deltas for the bf16 solve
  double bf16_obj_rel_err = 0.0;
};

void append_experiments_ledger(const KernelResult& kern, const std::vector<TopoRow>& rows) {
  std::string entry;
  entry += "\n\n### Run " + bench::ledger_stamp();
  entry += std::string(" — SIMD ") + (nn::simd_enabled() ? "ON" : "OFF") +
           (bench::fast_mode() ? " (fast mode)" : "") + "\n\n";
  entry += "Batched linear forward (" + kernel_shape() + ", interleaved median): f64 " +
           util::fmt(kern.f64_ms, 3) + " ms, f32 " + util::fmt(kern.f32_ms, 3) +
           " ms, speedup " + util::fmt(kern.narrow_speedup, 2) + "x\n\n";
  entry += "| topology | solve f64 p50 (ms) | solve f32 p50 (ms) | speedup | max split err | objective rel err | bf16 p50 (ms) | bf16 max split err | bf16 obj rel err |\n";
  entry += "|---|---|---|---|---|---|---|---|---|\n";
  for (const auto& r : rows) {
    entry += "| " + r.name + " | " + util::fmt(r.f64_ms, 3) + " | " + util::fmt(r.f32_ms, 3) +
             " | " + util::fmt(r.speedup, 2) + "x | " + sci(r.max_split_err) + " | " +
             sci(r.obj_rel_err) + " | " + util::fmt(r.bf16_ms, 3) + " | " +
             sci(r.bf16_max_split_err) + " | " + sci(r.bf16_obj_rel_err) + " |\n";
  }
  bench::insert_ledger_entry("<!-- bench_precision_simd inserts runs below this line -->",
                             entry);
}

void append_blocked_ledger(const KernelResult& kern) {
  std::string entry;
  entry += "\n\n### Run " + bench::ledger_stamp();
  entry += std::string(" — SIMD ") + (nn::simd_enabled() ? "ON" : "OFF") +
           (bench::fast_mode() ? " (fast mode)" : "") + "\n\n";
  entry += "Kernel " + kernel_shape() + ", interleaved round-robin medians:\n\n";
  entry += "| kernel | median (ms) | vs f64 | vs unblocked f32 |\n";
  entry += "|---|---|---|---|\n";
  auto ratio = [](double base, double v) {
    return v > 0.0 ? util::fmt(base / v, 2) + "x" : std::string("-");
  };
  entry += "| f64 row-major (reference) | " + util::fmt(kern.f64_ms, 3) + " | 1.00x | - |\n";
  entry += "| f32 row-major (unblocked) | " + util::fmt(kern.f32_ms, 3) + " | " +
           ratio(kern.f64_ms, kern.f32_ms) + " | 1.00x |\n";
  entry += "| f32 blocked panels | " + util::fmt(kern.blocked_f32_ms, 3) + " | " +
           ratio(kern.f64_ms, kern.blocked_f32_ms) + " | " +
           ratio(kern.f32_ms, kern.blocked_f32_ms) + " |\n";
  entry += "| bf16-storage blocked panels | " + util::fmt(kern.blocked_bf16_ms, 3) + " | " +
           ratio(kern.f64_ms, kern.blocked_bf16_ms) + " | " +
           ratio(kern.f32_ms, kern.blocked_bf16_ms) + " |\n";
  bench::insert_ledger_entry(
      "<!-- bench_precision_simd inserts blocked-layout runs below this line -->", entry);
}

}  // namespace

int main() {
  bench::print_header("Precision/SIMD",
                      "narrowed forwards (f32, blocked f32, bf16 storage) vs f64 "
                      "reference: kernel speedups and allocation error");
  const int repeats = bench::fast_mode() ? 9 : 31;

  const KernelResult kern = time_kernels(repeats);
  std::printf("  batched linear forward (%s), SIMD %s, interleaved medians:\n"
              "    f64 %.3f ms   f32 %.3f ms   blocked f32 %.3f ms   blocked bf16 %.3f ms\n"
              "    narrowing speedup (f64/f32) %.2fx (target >= 1.5x with TEAL_SIMD=ON\n"
              "    on a >= 4-lane-vector machine)   layout speedup (f32/blocked) %.2fx\n",
              kernel_shape().c_str(), nn::simd_enabled() ? "ON" : "OFF", kern.f64_ms,
              kern.f32_ms, kern.blocked_f32_ms, kern.blocked_bf16_ms, kern.narrow_speedup,
              kern.layout_speedup);

  // End-to-end: untrained Teal (deterministic weights; precision error is a
  // property of the arithmetic, not the training state) at every precision.
  const std::vector<std::string> topos =
      bench::fast_mode() ? std::vector<std::string>{"B4", "SWAN"}
                         : std::vector<std::string>{"B4", "SWAN", "UsCarrier", "Kdl", "ASN"};
  util::Table table({"topology", "f64 p50 ms", "f32 p50 ms", "speedup", "max split err",
                     "obj rel err", "bf16 p50 ms", "bf16 split err", "bf16 obj err"});
  util::Table csv({"topology", "f64_p50_ms", "f32_p50_ms", "speedup", "max_split_err",
                   "obj_rel_err", "bf16_p50_ms", "bf16_max_split_err", "bf16_obj_rel_err",
                   "simd"});
  std::vector<TopoRow> rows;
  for (const auto& name : topos) {
    auto inst = bench::make_instance(name);
    core::TealScheme scheme(inst->pb,
                            std::make_unique<core::TealModel>(core::TealModelConfig{},
                                                              inst->pb.k_paths()),
                            core::TealSchemeConfig{});
    const te::TrafficMatrix& tm = inst->split.test.at(0);
    te::Allocation a64, a32, a16;

    auto time_precision = [&](te::Precision p, te::Allocation& out) {
      scheme.set_precision(p);
      scheme.solve_into(inst->pb, tm, out);  // warm-up
      std::vector<double> ms;
      ms.reserve(static_cast<std::size_t>(repeats));
      for (int i = 0; i < repeats; ++i) {
        scheme.solve_into(inst->pb, tm, out);
        ms.push_back(scheme.last_solve_seconds() * 1e3);
      }
      return median(ms);
    };

    TopoRow row;
    row.name = name;
    row.f64_ms = time_precision(te::Precision::f64, a64);
    row.f32_ms = time_precision(te::Precision::f32, a32);
    row.bf16_ms = time_precision(te::Precision::bf16, a16);
    row.speedup = row.f32_ms > 0.0 ? row.f64_ms / row.f32_ms : 0.0;
    for (std::size_t i = 0; i < a64.split.size(); ++i) {
      row.max_split_err = std::max(row.max_split_err, std::abs(a64.split[i] - a32.split[i]));
      row.bf16_max_split_err =
          std::max(row.bf16_max_split_err, std::abs(a64.split[i] - a16.split[i]));
    }
    const double obj64 = te::total_feasible_flow(inst->pb, tm, a64);
    const double obj32 = te::total_feasible_flow(inst->pb, tm, a32);
    const double obj16 = te::total_feasible_flow(inst->pb, tm, a16);
    row.obj_rel_err = obj64 > 0.0 ? std::abs(obj64 - obj32) / obj64 : 0.0;
    row.bf16_obj_rel_err = obj64 > 0.0 ? std::abs(obj64 - obj16) / obj64 : 0.0;
    rows.push_back(row);
    table.add_row({row.name, util::fmt(row.f64_ms, 3), util::fmt(row.f32_ms, 3),
                   util::fmt(row.speedup, 2), sci(row.max_split_err), sci(row.obj_rel_err),
                   util::fmt(row.bf16_ms, 3), sci(row.bf16_max_split_err),
                   sci(row.bf16_obj_rel_err)});
    csv.add_row({row.name, util::fmt(row.f64_ms, 4), util::fmt(row.f32_ms, 4),
                 util::fmt(row.speedup, 3), sci(row.max_split_err), sci(row.obj_rel_err),
                 util::fmt(row.bf16_ms, 4), sci(row.bf16_max_split_err),
                 sci(row.bf16_obj_rel_err), nn::simd_enabled() ? "1" : "0"});
  }
  std::printf("%s", table.to_string().c_str());

  csv.write_csv(bench::out_dir() + "/precision_simd.csv");
  append_experiments_ledger(kern, rows);
  append_blocked_ledger(kern);

  // CI smoke (TEAL_BENCH_ASSERT_BLOCKED=1): the blocked f32 kernel must not
  // be slower than the unblocked one — the layout exists purely for speed,
  // so a regression here means the panel kernel stopped paying for itself.
  // 5% tolerance absorbs timer noise on a loaded CI runner.
  const char* assert_env = std::getenv("TEAL_BENCH_ASSERT_BLOCKED");
  if (assert_env != nullptr && assert_env[0] == '1') {
    if (kern.blocked_f32_ms > kern.f32_ms * 1.05) {
      std::fprintf(stderr,
                   "FAIL: blocked f32 kernel (%.3f ms) slower than unblocked f32 "
                   "(%.3f ms)\n",
                   kern.blocked_f32_ms, kern.f32_ms);
      return 1;
    }
    std::printf("  TEAL_BENCH_ASSERT_BLOCKED: blocked f32 (%.3f ms) <= unblocked f32 "
                "(%.3f ms) — OK\n",
                kern.blocked_f32_ms, kern.f32_ms);
  }
  return 0;
}
