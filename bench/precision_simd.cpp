// precision_simd — f32/SIMD backend sweep: kernel-level speedup of the
// batched linear forward (f64 scalar reference vs the narrowed f32 path),
// end-to-end warm-solve latency at both precisions, and the f32-vs-f64
// flow-allocation error per topology.
//
// Not a paper figure: this bench quantifies the repo's own precision knob
// (te::Scheme::set_precision), the CPU analogue of the paper's fp32 GPU
// inference. The f64 path is the bit-stable reference under every build
// flag; only the f32 kernels vectorize under TEAL_SIMD, so the f64/f32
// kernel ratio reported here is the honest speedup of narrowing + SIMD on
// this machine (acceptance target >= 1.5x with TEAL_SIMD=ON on a
// >= 4-lane-vector unit; a scalar build records its own number).
//
// Output: a table on stdout, bench_out/precision_simd.csv, and — when run
// from the repo root — an inserted entry in the EXPERIMENTS.md
// "Precision/SIMD ledger".
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/common.h"
#include "nn/mat.h"
#include "te/objective.h"
#include "util/rng.h"
#include "util/timer.h"

using namespace teal;

namespace {

double median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v.empty() ? 0.0 : v[v.size() / 2];
}

// Scientific notation for the error columns: the f32-vs-f64 deltas are
// ~1e-6, invisible in fixed-point.
std::string sci(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2e", v);
  return buf;
}

std::string kernel_shape() {
  using Fx = bench::LinearKernelFixture<double>;
  return std::to_string(Fx::kRows) + "x" + std::to_string(Fx::kIn) + " -> " +
         std::to_string(Fx::kOut);
}

// Batched linear forward micro-kernel (bench::LinearKernelFixture — the
// same shape/seed bench_micro_kernels reports).
template <typename T>
double time_linear_kernel_ms(int repeats) {
  bench::LinearKernelFixture<T> fx;
  fx.run();  // warm-up
  std::vector<double> ms;
  ms.reserve(static_cast<std::size_t>(repeats));
  for (int i = 0; i < repeats; ++i) {
    util::Timer t;
    fx.run();
    ms.push_back(t.seconds() * 1e3);
  }
  return median(ms);
}

struct TopoRow {
  std::string name;
  double f64_ms = 0.0;
  double f32_ms = 0.0;
  double speedup = 0.0;
  double max_split_err = 0.0;  // max |split_f64 - split_f32| over all paths
  double obj_rel_err = 0.0;    // |obj_f64 - obj_f32| / obj_f64
};

struct KernelResult {
  double f64_ms = 0.0;
  double f32_ms = 0.0;
  double speedup = 0.0;
};

void append_experiments_ledger(const KernelResult& kern, const std::vector<TopoRow>& rows) {
  std::string entry;
  entry += "\n\n### Run " + bench::ledger_stamp();
  entry += std::string(" — SIMD ") + (nn::simd_enabled() ? "ON" : "OFF") +
           (bench::fast_mode() ? " (fast mode)" : "") + "\n\n";
  entry += "Batched linear forward (" + kernel_shape() + "): f64 " +
           util::fmt(kern.f64_ms, 3) + " ms, f32 " + util::fmt(kern.f32_ms, 3) +
           " ms, speedup " + util::fmt(kern.speedup, 2) + "x\n\n";
  entry += "| topology | solve f64 p50 (ms) | solve f32 p50 (ms) | speedup | max split err | objective rel err |\n";
  entry += "|---|---|---|---|---|---|\n";
  for (const auto& r : rows) {
    entry += "| " + r.name + " | " + util::fmt(r.f64_ms, 3) + " | " + util::fmt(r.f32_ms, 3) +
             " | " + util::fmt(r.speedup, 2) + "x | " + sci(r.max_split_err) + " | " +
             sci(r.obj_rel_err) + " |\n";
  }
  bench::insert_ledger_entry("<!-- bench_precision_simd inserts runs below this line -->",
                             entry);
}

}  // namespace

int main() {
  bench::print_header("Precision/SIMD",
                      "f32 narrowed forward vs f64 reference: kernel speedup and "
                      "allocation error");
  const int repeats = bench::fast_mode() ? 7 : 31;

  KernelResult kern;
  kern.f64_ms = time_linear_kernel_ms<double>(repeats);
  kern.f32_ms = time_linear_kernel_ms<float>(repeats);
  kern.speedup = kern.f32_ms > 0.0 ? kern.f64_ms / kern.f32_ms : 0.0;
  std::printf("  batched linear forward (%s), SIMD %s:\n"
              "    f64 %.3f ms   f32 %.3f ms   speedup %.2fx (target >= 1.5x with\n"
              "    TEAL_SIMD=ON on a >= 4-lane-vector machine)\n",
              kernel_shape().c_str(), nn::simd_enabled() ? "ON" : "OFF", kern.f64_ms,
              kern.f32_ms, kern.speedup);

  // End-to-end: untrained Teal (deterministic weights; precision error is a
  // property of the arithmetic, not the training state) at both precisions.
  const std::vector<std::string> topos =
      bench::fast_mode() ? std::vector<std::string>{"B4", "SWAN"}
                         : std::vector<std::string>{"B4", "SWAN", "UsCarrier", "Kdl", "ASN"};
  util::Table table({"topology", "f64 p50 ms", "f32 p50 ms", "speedup", "max split err",
                     "obj rel err"});
  util::Table csv({"topology", "f64_p50_ms", "f32_p50_ms", "speedup", "max_split_err",
                   "obj_rel_err", "simd"});
  std::vector<TopoRow> rows;
  for (const auto& name : topos) {
    auto inst = bench::make_instance(name);
    core::TealScheme scheme(inst->pb,
                            std::make_unique<core::TealModel>(core::TealModelConfig{},
                                                              inst->pb.k_paths()),
                            core::TealSchemeConfig{});
    const te::TrafficMatrix& tm = inst->split.test.at(0);
    te::Allocation a64, a32;

    auto time_precision = [&](te::Precision p, te::Allocation& out) {
      scheme.set_precision(p);
      scheme.solve_into(inst->pb, tm, out);  // warm-up
      std::vector<double> ms;
      ms.reserve(static_cast<std::size_t>(repeats));
      for (int i = 0; i < repeats; ++i) {
        scheme.solve_into(inst->pb, tm, out);
        ms.push_back(scheme.last_solve_seconds() * 1e3);
      }
      return median(ms);
    };

    TopoRow row;
    row.name = name;
    row.f64_ms = time_precision(te::Precision::f64, a64);
    row.f32_ms = time_precision(te::Precision::f32, a32);
    row.speedup = row.f32_ms > 0.0 ? row.f64_ms / row.f32_ms : 0.0;
    for (std::size_t i = 0; i < a64.split.size(); ++i) {
      row.max_split_err = std::max(row.max_split_err, std::abs(a64.split[i] - a32.split[i]));
    }
    const double obj64 = te::total_feasible_flow(inst->pb, tm, a64);
    const double obj32 = te::total_feasible_flow(inst->pb, tm, a32);
    row.obj_rel_err = obj64 > 0.0 ? std::abs(obj64 - obj32) / obj64 : 0.0;
    rows.push_back(row);
    table.add_row({row.name, util::fmt(row.f64_ms, 3), util::fmt(row.f32_ms, 3),
                   util::fmt(row.speedup, 2), sci(row.max_split_err),
                   sci(row.obj_rel_err)});
    csv.add_row({row.name, util::fmt(row.f64_ms, 4), util::fmt(row.f32_ms, 4),
                 util::fmt(row.speedup, 3), sci(row.max_split_err), sci(row.obj_rel_err),
                 nn::simd_enabled() ? "1" : "0"});
  }
  std::printf("%s", table.to_string().c_str());

  csv.write_csv(bench::out_dir() + "/precision_simd.csv");
  append_experiments_ledger(kern, rows);
  return 0;
}
