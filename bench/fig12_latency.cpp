// fig12_latency — regenerates Figure 12: maximizing total flow with delay
// penalties (§5.5) on Kdl and ASN for LP-all (Kdl only, infeasible on ASN),
// LP-top and Teal (trained for this objective; ADMM omitted per §5.5).
//
// The reported metric is the latency-penalized flow normalized by the total
// demand ("normalized max flow w/ delay penalties"). Expected shape: Teal's
// quality is comparable to or better than LP-top while being far faster.
#include <cstdio>

#include "bench/common.h"

using namespace teal;

int main() {
  bench::print_header("Figure 12", "latency-penalized total flow: quality vs time");
  const int n_test = bench::fast_mode() ? 1 : 3;
  util::Table table({"topology", "scheme", "normalized flow", "mean time (s)"});
  util::Table csv({"topology", "scheme", "normalized_flow", "time_s"});

  for (const std::string topo : {"Kdl", "ASN"}) {
    auto inst = bench::make_instance(topo);
    for (const std::string sname : {"LP-all", "LP-top", "Teal"}) {
      if (sname == "LP-all" && topo == "ASN") continue;  // infeasible per paper
      std::unique_ptr<te::Scheme> scheme =
          sname == "Teal"
              ? std::unique_ptr<te::Scheme>(
                    bench::make_teal(*inst, te::Objective::kLatencyPenalizedFlow,
                                     /*use_admm=*/false))
              : bench::make_baseline(sname, *inst, te::Objective::kLatencyPenalizedFlow);
      std::vector<double> scores, times;
      for (int t = 0; t < n_test; ++t) {
        const auto& tm = inst->split.test.at(t);
        auto a = scheme->solve(inst->pb, tm);
        scores.push_back(te::latency_penalized_flow(inst->pb, tm, a) /
                         std::max(1e-9, tm.total()));
        times.push_back(scheme->last_solve_seconds());
      }
      table.add_row({topo, sname, util::fmt(util::mean(scores), 3),
                     util::fmt(util::mean(times), 3)});
      for (std::size_t i = 0; i < scores.size(); ++i) {
        csv.add_row({topo, sname, util::fmt(scores[i], 4), util::fmt(times[i], 4)});
      }
      std::printf("  [%s/%s] normalized flow %.3f in %.3f s\n", topo.c_str(),
                  sname.c_str(), util::mean(scores), util::mean(times));
    }
  }
  std::printf("\n%s", table.to_string().c_str());
  std::printf("\nPaper reference: Teal comparable to or above LP-top, 26-718x faster;\n"
              "LP-all infeasible on ASN for this objective.\n");
  csv.write_csv(bench::out_dir() + "/fig12_latency.csv");
  return 0;
}
