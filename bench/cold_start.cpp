// cold_start — replica spin-up and topology-swap latency, heap vs arena.
//
// Not a paper figure: this bench measures the repo's own cold-start path.
// The warm-path story (zero allocations per solve, bench_micro_kernels) left
// spin-up untouched: warming a fresh SolveWorkspace used to malloc every
// buffer individually. With util::Arena behind the workspace substrate, a
// replica bound to an arena warms in O(1) heap allocations, and a respawn or
// topology swap (clear() + Arena::reset()) re-bumps the already-faulted
// chunks with no heap traffic at all — the serving story behind
// serve::make_workspace_replicas.
//
// The first solve's *compute* (forward + ADMM) is identical on every path,
// so the honest headline is the overhead: cold-solve time minus the warm
// p50, alongside the heap-allocation counts (deterministic, the contract
// tests/workspace_test.cpp enforces at <= 5 for the arena paths).
//
// Output: a table on stdout, bench_out/cold_start.csv, and — when run from
// the repo root — an entry in the EXPERIMENTS.md "Cold-start ledger".
#include <algorithm>
#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "bench/common.h"
#include "core/solve_workspace.h"
#include "util/alloc_hook.h"
#include "util/arena.h"
#include "util/thread_pool.h"
#include "util/timer.h"

using namespace teal;

namespace {

struct Row {
  std::string path;
  double cold_ms = 0.0;       // median cold-solve wall time
  double overhead_ms = 0.0;   // cold_ms - warm p50 of the same topology
  std::uint64_t allocs = 0;   // median heap allocations in the cold window
};

double median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v.empty() ? 0.0 : v[v.size() / 2];
}

std::uint64_t median_u64(std::vector<std::uint64_t> v) {
  std::sort(v.begin(), v.end());
  return v.empty() ? 0 : v[v.size() / 2];
}

// One timed cold solve: `setup` cools the workspace, then the measured
// window runs a single solve. Replicas solve sequentially (shard_count 1),
// matching serve::WorkspaceReplica's default shape.
template <typename Setup>
Row measure(const std::string& label, int repeats, double warm_p50_ms,
            core::TealScheme& teal, const te::Problem& pb, const te::TrafficMatrix& tm,
            te::Allocation& out, Setup setup) {
  std::vector<double> ms;
  std::vector<std::uint64_t> allocs;
  for (int i = 0; i < repeats; ++i) {
    core::SolveWorkspace& ws = setup();
    util::AllocCounter counter;
    util::Timer timer;
    teal.solve_replica(ws, pb, tm, out, nullptr, /*shard_count=*/1);
    ms.push_back(timer.seconds() * 1e3);
    allocs.push_back(counter.count());
  }
  Row r;
  r.path = label;
  r.cold_ms = median(ms);
  r.overhead_ms = r.cold_ms - warm_p50_ms;
  r.allocs = median_u64(allocs);
  return r;
}

void append_experiments_ledger(const std::vector<Row>& rows, const std::string& topo_a,
                               const std::string& topo_b, double warm_a_ms,
                               double warm_b_ms, double alloc_ratio,
                               double overhead_ratio) {
  std::string entry;
  entry += "\n\n### Run " + bench::ledger_stamp();
  entry += " — spin-up on " + topo_a + ", swap to " + topo_b +
           (bench::fast_mode() ? " (fast mode)" : "");
  entry += ", warm p50 " + util::fmt(warm_a_ms, 3) + " / " + util::fmt(warm_b_ms, 3) +
           " ms\n\n";
  entry += "| path | cold p50 (ms) | overhead vs warm (ms) | heap allocs |\n";
  entry += "|---|---|---|---|\n";
  for (const auto& r : rows) {
    entry += "| " + r.path + " | " + util::fmt(r.cold_ms, 3) + " | " +
             util::fmt(r.overhead_ms, 3) + " | " + std::to_string(r.allocs) + " |\n";
  }
  entry += "\nRecycled-arena spin-up vs heap: " + util::fmt(alloc_ratio, 1) +
           "x fewer heap allocations, " +
           (overhead_ratio > 0.0
                ? util::fmt(overhead_ratio, 1) + "x lower cold-start overhead.\n"
                : std::string("cold-start overhead below the warm-path timer "
                              "noise on this machine.\n"));
  bench::insert_ledger_entry("<!-- bench_cold_start inserts runs below this line -->",
                             entry);
}

}  // namespace

int main() {
  bench::print_header("Cold start",
                      "replica spin-up + topology swap: heap vs arena workspaces");
  auto inst_a = bench::make_instance("SWAN");
  auto inst_b = bench::make_instance("B4");
  auto teal_a = bench::make_teal(*inst_a);
  auto teal_b = bench::make_teal(*inst_b);
  const te::TrafficMatrix& tm_a = inst_a->split.test.at(0);
  const te::TrafficMatrix& tm_b = inst_b->split.test.at(0);
  const int repeats = bench::fast_mode() ? 9 : 41;

  // Warm references per topology (also sizes the output allocations so the
  // cold windows measure workspace construction, not output growth).
  te::Allocation out_a, out_b;
  double warm_a_ms = 0.0, warm_b_ms = 0.0;
  core::SolveWorkspace warm_ws_a, warm_ws_b;
  {
    teal_a->solve_replica(warm_ws_a, inst_a->pb, tm_a, out_a);
    teal_b->solve_replica(warm_ws_b, inst_b->pb, tm_b, out_b);
    std::vector<double> wa, wb;
    for (int i = 0; i < repeats; ++i) {
      double s = 0.0;
      teal_a->solve_replica(warm_ws_a, inst_a->pb, tm_a, out_a, &s);
      wa.push_back(s * 1e3);
      teal_b->solve_replica(warm_ws_b, inst_b->pb, tm_b, out_b, &s);
      wb.push_back(s * 1e3);
    }
    warm_a_ms = median(wa);
    warm_b_ms = median(wb);
  }

  std::vector<Row> rows;

  // 1. Heap spin-up: a fresh workspace per repeat, no arena bound — the
  //    pre-arena replica cold start (one malloc per buffer).
  {
    std::vector<core::SolveWorkspace> pool(static_cast<std::size_t>(repeats));
    int i = 0;
    rows.push_back(measure("spin-up, heap", repeats, warm_a_ms, *teal_a, inst_a->pb,
                           tm_a, out_a, [&]() -> core::SolveWorkspace& {
                             return pool[static_cast<std::size_t>(i++)];
                           }));
  }

  // 2. First arena spin-up: fresh workspace + fresh (unreserved) arena per
  //    repeat — O(1) allocations, but the chunks are new memory.
  {
    std::vector<util::Arena> arenas(static_cast<std::size_t>(repeats));
    std::vector<core::SolveWorkspace> pool(static_cast<std::size_t>(repeats));
    std::optional<util::ArenaScope> scope;  // re-bound around each measured solve
    int i = 0;
    rows.push_back(measure("spin-up, arena (first)", repeats, warm_a_ms, *teal_a,
                           inst_a->pb, tm_a, out_a, [&]() -> core::SolveWorkspace& {
                             scope.reset();
                             scope.emplace(&arenas[static_cast<std::size_t>(i)]);
                             return pool[static_cast<std::size_t>(i++)];
                           }));
    scope.reset();
  }

  // 3. Recycled arena: one persistent workspace + arena; each repeat is a
  //    respawn — clear() + reset() + cold solve out of retained chunks. The
  //    serving layer's replica-restart shape.
  {
    util::Arena arena;
    util::ArenaScope bind(&arena);
    core::SolveWorkspace ws;
    teal_a->solve_replica(ws, inst_a->pb, tm_a, out_a);  // fault the chunks once
    rows.push_back(measure("respawn, arena (recycled)", repeats, warm_a_ms, *teal_a,
                           inst_a->pb, tm_a, out_a, [&]() -> core::SolveWorkspace& {
                             ws.clear();
                             arena.reset();
                             return ws;
                           }));
  }

  // 4. Topology swap, heap: fresh workspace per repeat against topology B —
  //    what re-pointing a heap replica at a new problem costs.
  {
    std::vector<core::SolveWorkspace> pool(static_cast<std::size_t>(repeats));
    int i = 0;
    rows.push_back(measure("swap, heap", repeats, warm_b_ms, *teal_b, inst_b->pb,
                           tm_b, out_b, [&]() -> core::SolveWorkspace& {
                             return pool[static_cast<std::size_t>(i++)];
                           }));
  }

  // 5. Topology swap, arena: the replica slot warms on A, then clear() +
  //    reset() re-bumps the same chunks for B.
  {
    util::Arena arena;
    util::ArenaScope bind(&arena);
    core::SolveWorkspace ws;
    rows.push_back(measure("swap, arena (recycled)", repeats, warm_b_ms, *teal_b,
                           inst_b->pb, tm_b, out_b, [&]() -> core::SolveWorkspace& {
                             ws.clear();
                             arena.reset();
                             teal_a->solve_replica(ws, inst_a->pb, tm_a, out_a);
                             ws.clear();
                             arena.reset();
                             return ws;
                           }));
  }

  const Row& heap_row = rows[0];
  const Row& recycled_row = rows[2];
  const double alloc_ratio =
      recycled_row.allocs > 0
          ? static_cast<double>(heap_row.allocs) / static_cast<double>(recycled_row.allocs)
          : static_cast<double>(heap_row.allocs);
  // A negative/zero recycled overhead means the respawn solve is already
  // indistinguishable from a warm solve — report that instead of a ratio.
  const double overhead_ratio =
      recycled_row.overhead_ms > 1e-6 && heap_row.overhead_ms > 0.0
          ? heap_row.overhead_ms / recycled_row.overhead_ms
          : 0.0;

  util::Table table({"path", "cold p50 ms", "overhead ms", "heap allocs"});
  util::Table csv({"path", "cold_p50_ms", "overhead_ms", "heap_allocs"});
  for (const auto& r : rows) {
    table.add_row({r.path, util::fmt(r.cold_ms, 3), util::fmt(r.overhead_ms, 3),
                   std::to_string(r.allocs)});
    csv.add_row({r.path, util::fmt(r.cold_ms, 4), util::fmt(r.overhead_ms, 4),
                 std::to_string(r.allocs)});
  }
  std::printf("%s", table.to_string().c_str());
  csv.write_csv(bench::out_dir() + "/cold_start.csv");
  if (overhead_ratio > 0.0) {
    std::printf("\nrecycled-arena vs heap spin-up: %.1fx fewer heap allocations, "
                "%.1fx lower overhead (warm p50 %s: %.3f ms)\n",
                alloc_ratio, overhead_ratio, inst_a->name.c_str(), warm_a_ms);
  } else {
    std::printf("\nrecycled-arena vs heap spin-up: %.1fx fewer heap allocations; "
                "respawn overhead below warm-path timer noise (warm p50 %s: %.3f ms)\n",
                alloc_ratio, inst_a->name.c_str(), warm_a_ms);
  }

  append_experiments_ledger(rows, inst_a->name, inst_b->name, warm_a_ms, warm_b_ms,
                            alloc_ratio, overhead_ratio);
  return 0;
}
