// micro_kernels — google-benchmark microbenchmarks of the computational
// kernels behind Teal's speed claims: FlowGNN forward pass, one ADMM
// iteration, one PDHG sweep, Yen's k-shortest-paths, and feasibility repair.
//
// These quantify the per-iteration asymmetry the paper exploits: the
// NN + ADMM kernels are batched/parallel and take microseconds-to-
// milliseconds, while the LP engine needs thousands of its (cheap) sweeps.
#include <benchmark/benchmark.h>

#include "bench/common.h"
#include "core/admm.h"
#include "core/model.h"
#include "core/teal_scheme.h"
#include "lp/path_lp.h"
#include "nn/mat.h"
#include "util/rng.h"
#include "te/objective.h"
#include "topo/topology.h"
#include "traffic/traffic.h"
#include "util/alloc_hook.h"

using namespace teal;

namespace {

struct Fixture {
  std::unique_ptr<te::Problem> pb;
  traffic::Trace trace;

  explicit Fixture(const std::string& topo, int n_demands) {
    auto g = topo::make_topology(topo);
    auto demands = traffic::sample_demands(g, n_demands, 7);
    pb = std::make_unique<te::Problem>(std::move(g), std::move(demands), 4);
    traffic::TraceConfig cfg;
    cfg.n_intervals = 3;
    trace = traffic::generate_trace(*pb, cfg);
    traffic::calibrate_capacities(*pb, trace, 1.6);
  }
};

Fixture& swan() {
  static Fixture f("SWAN", 2000);
  return f;
}

void BM_FlowGnnForward(benchmark::State& state) {
  auto& f = swan();
  core::TealModel model({}, f.pb->k_paths());
  for (auto _ : state) {
    auto fwd = model.forward(*f.pb, f.trace.at(0));
    benchmark::DoNotOptimize(fwd.logits.data().data());
  }
}
BENCHMARK(BM_FlowGnnForward)->Unit(benchmark::kMillisecond);

// Workspace-reuse microbenchmark: the full TealScheme::solve pipeline with a
// cold workspace every iteration vs. a warm (reused) one. The gap is the
// allocation cost the SolveWorkspace refactor removed from the hot loop, and
// `allocs_per_iter` regression-guards it: warm must report 0.
core::TealScheme make_untrained_teal(const te::Problem& pb) {
  return core::TealScheme(pb, std::make_unique<core::TealModel>(core::TealModelConfig{},
                                                                pb.k_paths()),
                          core::TealSchemeConfig{});
}

void BM_TealSolveColdWorkspace(benchmark::State& state) {
  auto& f = swan();
  auto scheme = make_untrained_teal(*f.pb);
  te::Allocation out;
  scheme.solve_into(*f.pb, f.trace.at(0), out);  // outside the alloc window
  util::AllocCounter allocs;
  for (auto _ : state) {
    scheme.reset_workspace();
    out = te::Allocation{};
    scheme.solve_into(*f.pb, f.trace.at(0), out);
    benchmark::DoNotOptimize(out.split.data());
  }
  state.counters["allocs_per_iter"] = benchmark::Counter(
      static_cast<double>(allocs.count()), benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_TealSolveColdWorkspace)->Unit(benchmark::kMillisecond);

void BM_TealSolveWarmWorkspace(benchmark::State& state) {
  auto& f = swan();
  auto scheme = make_untrained_teal(*f.pb);
  te::Allocation out;
  scheme.solve_into(*f.pb, f.trace.at(0), out);  // warm up workspace + out
  util::AllocCounter allocs;
  for (auto _ : state) {
    scheme.solve_into(*f.pb, f.trace.at(0), out);
    benchmark::DoNotOptimize(out.split.data());
  }
  state.counters["allocs_per_iter"] = benchmark::Counter(
      static_cast<double>(allocs.count()), benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_TealSolveWarmWorkspace)->Unit(benchmark::kMillisecond);

// Batched linear-forward kernels, the hot inner loop of the FlowGNN/policy
// forward (bench::LinearKernelFixture / bench::PackedKernelFixture — the
// same shape/seed bench_precision_simd ledgers). The f64 variant is the
// bit-stable reference; the f32 variant is the unblocked narrowed path; the
// Blocked variants run the lane-panel broadcast-FMA kernel the solve path
// actually uses (f32 panels, and bf16-storage panels widened in the inner
// loop). Ratios of interest: f64/f32 (narrowing + SIMD), f32/blocked-f32
// (layout, CI-asserted >= 1x), blocked-f32/blocked-bf16 (weight streaming).
//
// All four run a pinned iteration count after an explicit warm-up pass so
// run-to-run numbers stay comparable (google-benchmark's adaptive iteration
// search was the source of the ledger's f64-baseline jitter: different
// builds settled on different counts, shifting cache residency).
constexpr int kLinearKernelIters = 200;

template <typename Fx, typename T>
void run_linear_kernel_bench(benchmark::State& state, Fx& fx, nn::BasicMat<T>& y) {
  for (int i = 0; i < 3; ++i) fx.run();  // explicit warm-up, outside timing
  for (auto _ : state) {
    fx.run();
    benchmark::DoNotOptimize(y.data().data());
  }
  state.counters["simd"] = nn::simd_enabled() ? 1 : 0;
}

void BM_LinearForwardBatchedF64(benchmark::State& state) {
  bench::LinearKernelFixture<double> fx;
  run_linear_kernel_bench(state, fx, fx.y);
}
BENCHMARK(BM_LinearForwardBatchedF64)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(kLinearKernelIters);

void BM_LinearForwardBatchedF32(benchmark::State& state) {
  bench::LinearKernelFixture<float> fx;
  run_linear_kernel_bench(state, fx, fx.y);
}
BENCHMARK(BM_LinearForwardBatchedF32)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(kLinearKernelIters);

void BM_LinearForwardBlockedF32(benchmark::State& state) {
  bench::PackedKernelFixture<float> fx;
  run_linear_kernel_bench(state, fx, fx.base.y);
}
BENCHMARK(BM_LinearForwardBlockedF32)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(kLinearKernelIters);

void BM_LinearForwardBlockedBF16(benchmark::State& state) {
  bench::PackedKernelFixture<nn::bf16> fx;
  run_linear_kernel_bench(state, fx, fx.base.y);
}
BENCHMARK(BM_LinearForwardBlockedBF16)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(kLinearKernelIters);

void BM_TealSolveF32WarmWorkspace(benchmark::State& state) {
  // The warm workspace solve with the narrowed forward — directly comparable
  // to BM_TealSolveWarmWorkspace above (same instance, same pipeline, only
  // the NN precision differs).
  auto& f = swan();
  auto scheme = make_untrained_teal(*f.pb);
  scheme.set_precision(te::Precision::f32);
  te::Allocation out;
  scheme.solve_into(*f.pb, f.trace.at(0), out);  // warm up workspace + out
  for (auto _ : state) {
    scheme.solve_into(*f.pb, f.trace.at(0), out);
    benchmark::DoNotOptimize(out.split.data());
  }
  state.counters["simd"] = nn::simd_enabled() ? 1 : 0;
}
BENCHMARK(BM_TealSolveF32WarmWorkspace)->Unit(benchmark::kMillisecond);

void BM_AdmmFineTune5Iters(benchmark::State& state) {
  auto& f = swan();
  core::AdmmConfig cfg;
  cfg.iterations = 5;
  core::Admm admm(*f.pb, cfg);
  auto caps = f.pb->capacities();
  for (auto _ : state) {
    auto a = f.pb->shortest_path_allocation();
    admm.fine_tune(f.trace.at(0), caps, a);
    benchmark::DoNotOptimize(a.split.data());
  }
}
BENCHMARK(BM_AdmmFineTune5Iters)->Unit(benchmark::kMillisecond);

void BM_PdhgHundredSweeps(benchmark::State& state) {
  auto& f = swan();
  for (auto _ : state) {
    lp::PdhgOptions opt;
    opt.max_iterations = 100;
    opt.check_every = 1000;  // no early exit: measure raw sweep cost
    lp::FlowLpInfo info;
    auto a = lp::solve_flow_lp(*f.pb, f.trace.at(0), {}, opt, &info);
    benchmark::DoNotOptimize(a.split.data());
  }
}
BENCHMARK(BM_PdhgHundredSweeps)->Unit(benchmark::kMillisecond);

void BM_YenFourShortestPaths(benchmark::State& state) {
  auto g = topo::make_uscarrier_like();
  for (auto _ : state) {
    auto paths = topo::yen_ksp(g, 0, g.num_nodes() - 1, 4);
    benchmark::DoNotOptimize(paths.data());
  }
}
BENCHMARK(BM_YenFourShortestPaths)->Unit(benchmark::kMillisecond);

void BM_FeasibilityRepair(benchmark::State& state) {
  auto& f = swan();
  auto sp = f.pb->shortest_path_allocation();
  for (auto _ : state) {
    auto a = te::repair_to_feasible(*f.pb, f.trace.at(0), sp);
    benchmark::DoNotOptimize(a.split.data());
  }
}
BENCHMARK(BM_FeasibilityRepair)->Unit(benchmark::kMillisecond);

void BM_TotalFeasibleFlow(benchmark::State& state) {
  auto& f = swan();
  auto sp = f.pb->shortest_path_allocation();
  for (auto _ : state) {
    benchmark::DoNotOptimize(te::total_feasible_flow(*f.pb, f.trace.at(0), sp));
  }
}
BENCHMARK(BM_TotalFeasibleFlow)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
