// fig15_sensitivity — regenerates Figure 15: sensitivity of Teal's satisfied
// demand to (a) the number of FlowGNN layers (4/6/8/10), (b) the final
// embedding dimension (6/12/24), and (c) the number of dense layers in the
// policy network (1/2/4).
//
// Expected shape (paper, on ASN): 4 -> 6 layers helps (+3%), diminishing
// returns beyond 6; larger embeddings and deeper policies change little —
// FlowGNN already carries the capacity-demand structure.
#include <cstdio>

#include "bench/common.h"

using namespace teal;

namespace {

double eval_config(bench::Instance& inst, const core::TealModelConfig& mc,
                   const std::string& tag, int n_test) {
  core::TealSchemeConfig cfg;
  cfg.model = mc;
  core::TealTrainOptions opts;
  opts.coma.epochs = bench::fast_mode() ? 1 : 3;
  opts.coma.lr = 3e-3;
  opts.cache_path = bench::model_cache_path(inst.name + "_sens_" + tag,
                                            te::Objective::kTotalFlow);
  auto scheme = core::make_teal_scheme(inst.pb, inst.split.train, cfg, opts);
  std::vector<double> sat;
  for (int t = 0; t < n_test; ++t) {
    const auto& tm = inst.split.test.at(t);
    auto a = scheme->solve(inst.pb, tm);
    sat.push_back(te::satisfied_demand_pct(inst.pb, tm, a));
  }
  return util::mean(sat);
}

}  // namespace

int main() {
  bench::print_header("Figure 15", "sensitivity to Teal's hyperparameters (ASN)");
  auto inst = bench::make_instance("ASN");
  const int n_test = bench::fast_mode() ? 2 : 3;
  util::Table table({"axis", "setting", "satisfied (%)"});

  // (a) number of FlowGNN blocks.
  for (int layers : {4, 6, 8, 10}) {
    core::TealModelConfig mc;
    mc.gnn.n_blocks = layers;
    double sat = eval_config(*inst, mc, "L" + std::to_string(layers), n_test);
    table.add_row({"FlowGNN layers", std::to_string(layers), util::fmt(sat, 1)});
    std::printf("  layers=%d -> %.1f%%\n", layers, sat);
  }
  // (b) final embedding dimension (6 blocks).
  for (int dim : {6, 12, 24}) {
    core::TealModelConfig mc;
    mc.gnn.n_blocks = 6;
    mc.gnn.final_dim = dim;
    double sat = eval_config(*inst, mc, "E" + std::to_string(dim), n_test);
    table.add_row({"embedding dim", std::to_string(dim), util::fmt(sat, 1)});
    std::printf("  embed=%d -> %.1f%%\n", dim, sat);
  }
  // (c) dense layers in the policy network.
  for (int dense : {1, 2, 4}) {
    core::TealModelConfig mc;
    mc.policy.n_hidden_layers = dense;
    double sat = eval_config(*inst, mc, "D" + std::to_string(dense), n_test);
    table.add_row({"policy dense layers", std::to_string(dense), util::fmt(sat, 1)});
    std::printf("  dense=%d -> %.1f%%\n", dense, sat);
  }

  std::printf("\n%s", table.to_string().c_str());
  std::printf("\nPaper reference: 86.3%% at 4 layers -> 89.4%% at 6, flat beyond;\n"
              "embedding dims 12/24 and extra dense layers change little.\n");
  table.write_csv(bench::out_dir() + "/fig15_sensitivity.csv");
  return 0;
}
