// fig07_cdf_asn — regenerates Figure 7: CDFs of computation time (7a) and
// satisfied demand (7b) on ASN for LP-top, NCFlow, POP and Teal.
//
// The paper's reading: Teal's solve time is tightly clustered (0.89-1.08 s at
// all percentiles — exactly one forward pass + five ADMM iterations, with a
// flop count independent of the matrix values), while the LP-based schemes
// fluctuate with problem conditioning; Teal also dominates satisfied demand
// across percentiles.
#include <cstdio>

#include "bench/common.h"

using namespace teal;

int main() {
  bench::print_header("Figure 7", "CDFs of computation time and satisfied demand on ASN");
  auto inst = bench::make_instance("ASN");
  const int n_test = bench::fast_mode() ? 4 : static_cast<int>(inst->split.test.size());
  traffic::Trace test;
  test.matrices.assign(inst->split.test.matrices.begin(),
                       inst->split.test.matrices.begin() + n_test);

  const std::vector<std::string> schemes = {"LP-top", "NCFlow", "POP", "Teal"};
  struct Series {
    std::string name;
    bench::OfflineSeries offline;
    std::vector<te::Allocation> allocs;
  };
  std::vector<Series> all;
  for (const auto& sname : schemes) {
    std::unique_ptr<te::Scheme> scheme =
        sname == "Teal" ? std::unique_ptr<te::Scheme>(bench::make_teal(*inst))
                        : bench::make_baseline(sname, *inst);
    // run_offline = untimed warmup + sequential batched loop: Figure 7a's
    // claim is the tight clustering of *standalone* per-solve times, which
    // batch fan-out contention would smear (see te/scheme.h).
    Series s;
    s.name = sname;
    s.offline = bench::run_offline(*scheme, *inst, test);
    s.allocs = std::move(s.offline.allocs);
    // The CDF below is over *online* per-interval numbers; drop the offline
    // ones so the replay can fill the vector. (Computing them costs less
    // than one extra solve per scheme — a fair price for sharing
    // run_offline's warmup/timing policy instead of hand-rolling it.)
    s.offline.satisfied_pct.clear();
    all.push_back(std::move(s));
  }

  // Per-scheme paper-anchored budgets (see common.h's paper_seconds).
  for (auto& s : all) {
    sim::OnlineConfig ocfg;
    ocfg.time_scale = bench::scheme_time_scale(s.name, inst->name,
                                               util::median(s.offline.solve_seconds));
    auto online = sim::replay_online(inst->pb, test, s.allocs, s.offline.solve_seconds, ocfg);
    for (const auto& iv : online.intervals) s.offline.satisfied_pct.push_back(iv.satisfied_pct);
  }

  util::Table t7a({"scheme", "p10 (s)", "p50 (s)", "p90 (s)", "max/min spread"});
  util::Table t7b({"scheme", "p10 (%)", "p50 (%)", "p90 (%)"});
  util::Table csv({"scheme", "metric", "value"});
  for (auto& s : all) {
    auto& ts = s.offline.solve_seconds;
    t7a.add_row({s.name, util::fmt(util::percentile(ts, 10), 3),
                 util::fmt(util::percentile(ts, 50), 3),
                 util::fmt(util::percentile(ts, 90), 3),
                 util::fmt(util::max_of(ts) / std::max(1e-9, util::min_of(ts)), 2) + "x"});
    auto& sat = s.offline.satisfied_pct;
    t7b.add_row({s.name, util::fmt(util::percentile(sat, 10), 1),
                 util::fmt(util::percentile(sat, 50), 1),
                 util::fmt(util::percentile(sat, 90), 1)});
    for (double v : ts) csv.add_row({s.name, "time_s", util::fmt(v, 4)});
    for (double v : sat) csv.add_row({s.name, "satisfied_pct", util::fmt(v, 2)});
  }
  std::printf("\n(7a) Computation time percentiles on ASN\n%s", t7a.to_string().c_str());
  std::printf("\n(7b) Online satisfied demand percentiles on ASN\n%s",
              t7b.to_string().c_str());
  std::printf("\nExpected shape: Teal's max/min time spread stays near 1x; the LP-based\n"
              "schemes spread widely and trail in satisfied demand at every percentile.\n");
  csv.write_csv(bench::out_dir() + "/fig07_cdf_asn.csv");
  return 0;
}
