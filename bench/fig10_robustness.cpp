// fig10_robustness — regenerates Figure 10: robustness of the schemes to
// (a) temporal fluctuations (variance of consecutive demand deltas scaled by
// 1/2/5/10/20x) and (b) spatial redistribution (the original top-10% demand
// set re-targeted to carry 88.4/80/60/40/20% of the volume).
//
// Expected shape (paper): all schemes degrade as fluctuation grows; Teal
// leads up to 10x and only trails LP-top slightly at 20x (unseen pattern);
// under spatial redistribution Teal stays ahead while LP-top loses ~10%
// (its demand-pinning heuristic relies on the heavy tail).
#include <cstdio>

#include "bench/common.h"

using namespace teal;

namespace {

double mean_offline_satisfied(te::Scheme& scheme, const bench::Instance& inst,
                              const traffic::Trace& trace, int n) {
  std::vector<double> sat;
  for (int t = 0; t < std::min(n, trace.size()); ++t) {
    auto a = scheme.solve(inst.pb, trace.at(t));
    sat.push_back(te::satisfied_demand_pct(inst.pb, trace.at(t), a));
  }
  return util::mean(sat);
}

}  // namespace

int main() {
  bench::print_header("Figure 10", "robustness to temporal and spatial demand changes (ASN)");
  auto inst = bench::make_instance("ASN");
  const int n_test = bench::fast_mode() ? 2 : 4;
  const std::vector<std::string> schemes = {"LP-top", "NCFlow", "POP", "Teal"};

  // (a) temporal fluctuation
  util::Table ta({"scheme", "1x", "2x", "5x", "10x", "20x"});
  util::Table csv({"scheme", "axis", "x", "satisfied_pct"});
  for (const auto& sname : schemes) {
    std::unique_ptr<te::Scheme> scheme =
        sname == "Teal" ? std::unique_ptr<te::Scheme>(bench::make_teal(*inst))
                        : bench::make_baseline(sname, *inst);
    std::vector<std::string> row = {sname};
    for (double factor : {1.0, 2.0, 5.0, 10.0, 20.0}) {
      traffic::Trace shaken =
          factor == 1.0 ? inst->split.test
                        : traffic::perturb_temporal(inst->split.test, factor, 77);
      double sat = mean_offline_satisfied(*scheme, *inst, shaken, n_test);
      row.push_back(util::fmt(sat, 1) + "%");
      csv.add_row({sname, "temporal", util::fmt(factor, 0), util::fmt(sat, 2)});
    }
    ta.add_row(row);
    std::printf("  temporal %s done\n", sname.c_str());
  }

  // (b) spatial redistribution
  util::Table tb({"scheme", "88.4%", "80%", "60%", "40%", "20%"});
  for (const auto& sname : schemes) {
    std::unique_ptr<te::Scheme> scheme =
        sname == "Teal" ? std::unique_ptr<te::Scheme>(bench::make_teal(*inst))
                        : bench::make_baseline(sname, *inst);
    std::vector<std::string> row = {sname};
    for (double share : {-1.0, 0.8, 0.6, 0.4, 0.2}) {  // -1 = original
      traffic::Trace redist =
          share < 0.0 ? inst->split.test : traffic::perturb_spatial(inst->split.test, share);
      double sat = mean_offline_satisfied(*scheme, *inst, redist, n_test);
      row.push_back(util::fmt(sat, 1) + "%");
      csv.add_row({sname, "spatial", util::fmt(share < 0 ? 0.884 : share, 3),
                   util::fmt(sat, 2)});
    }
    tb.add_row(row);
    std::printf("  spatial %s done\n", sname.c_str());
  }

  std::printf("\n(10a) Satisfied demand under temporal fluctuation\n%s",
              ta.to_string().c_str());
  std::printf("\n(10b) Satisfied demand under spatial redistribution "
              "(top-10%% share)\n%s", tb.to_string().c_str());
  csv.write_csv(bench::out_dir() + "/fig10_robustness.csv");
  return 0;
}
