// fig06_main — regenerates Figure 6: average computation time (6a) and
// average satisfied demand in the online setting (6b) for LP-all, LP-top,
// NCFlow, POP and Teal across SWAN, UsCarrier, Kdl and ASN. LP-all is not
// run on ASN (infeasible in the paper).
//
// Output: two tables (rows = topology, columns = scheme) and CSVs under
// bench_out/. Shape expectations from the paper: on Kdl/ASN Teal's time is
// orders of magnitude below the LP-based schemes while its satisfied demand
// is comparable or higher; NCFlow trades the most quality for speed.
#include <cstdio>

#include "bench/common.h"

using namespace teal;

int main() {
  bench::print_header("Figure 6",
                      "computation time and online satisfied demand across WANs");
  const std::vector<std::string> topos = {"SWAN", "UsCarrier", "Kdl", "ASN"};
  const std::vector<std::string> schemes = {"LP-all", "LP-top", "NCFlow", "POP", "Teal"};
  const int n_test = bench::fast_mode() ? 3 : 8;

  util::Table time_table({"topology", "LP-all", "LP-top", "NCFlow", "POP", "Teal"});
  util::Table demand_table({"topology", "LP-all", "LP-top", "NCFlow", "POP", "Teal"});

  for (const auto& topo : topos) {
    auto inst = bench::make_instance(topo);
    traffic::Trace test;
    test.matrices.assign(inst->split.test.matrices.begin(),
                         inst->split.test.matrices.begin() +
                             std::min<std::size_t>(static_cast<std::size_t>(n_test),
                                                   inst->split.test.matrices.size()));

    // One offline pass per scheme (run_offline: untimed warmup for
    // warm-state schemes, then the sequential batched loop so each solve's
    // time is a standalone latency). Reused for time stats and the replay.
    struct Run {
      std::string name;
      std::vector<te::Allocation> allocs;
      std::vector<double> seconds;
    };
    std::vector<Run> runs;
    for (const auto& sname : schemes) {
      if (sname == "LP-all" && topo == "ASN") continue;  // infeasible per paper
      std::unique_ptr<te::Scheme> scheme;
      if (sname == "Teal") {
        scheme = bench::make_teal(*inst);
      } else {
        scheme = bench::make_baseline(sname, *inst);
      }
      auto series = bench::run_offline(*scheme, *inst, test);
      Run run;
      run.name = sname;
      run.allocs = std::move(series.allocs);
      run.seconds = std::move(series.solve_seconds);
      std::printf("  [%s/%s] mean solve %.3f s\n", topo.c_str(), sname.c_str(),
                  util::mean(run.seconds));
      runs.push_back(std::move(run));
    }

    std::vector<std::string> time_row = {topo}, demand_row = {topo};
    for (const auto& sname : schemes) {
      auto it = std::find_if(runs.begin(), runs.end(),
                             [&](const Run& r) { return r.name == sname; });
      if (it == runs.end()) {
        time_row.push_back("n/a");
        demand_row.push_back("n/a");
        continue;
      }
      // Online staleness uses the paper's full-scale time for this scheme
      // (per-scheme mapping; see common.h's paper_seconds rationale).
      sim::OnlineConfig ocfg;
      ocfg.time_scale =
          bench::scheme_time_scale(sname, topo, util::median(it->seconds));
      auto online = sim::replay_online(inst->pb, test, it->allocs, it->seconds, ocfg);
      time_row.push_back(util::fmt(util::mean(it->seconds), 3) + "s (paper " +
                         util::fmt(bench::paper_seconds(sname, topo), 1) + "s)");
      demand_row.push_back(util::fmt(online.mean_satisfied_pct, 1) + "%");
    }
    time_table.add_row(time_row);
    demand_table.add_row(demand_row);
  }

  std::printf("\n(6a) Average computation time per traffic matrix\n%s",
              time_table.to_string().c_str());
  std::printf("\n(6b) Average satisfied demand, online setting (paper-anchored budget)\n%s",
              demand_table.to_string().c_str());
  time_table.write_csv(bench::out_dir() + "/fig06a_time.csv");
  demand_table.write_csv(bench::out_dir() + "/fig06b_satisfied.csv");
  std::printf("\nCSV written to %s/fig06{a,b}_*.csv\n", bench::out_dir().c_str());
  return 0;
}
