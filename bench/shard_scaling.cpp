// shard_scaling — demand-shard sweep of a single solve on the largest
// bundled topology (ASN).
//
// Not a paper figure: this bench measures the repo's own intra-solve
// sharding (core::ShardPlan), the third parallelism axis after solve_batch
// (PR 1) and serving replicas (PR 2). Batching raises throughput across
// matrices; sharding is the only axis that cuts the *latency* of one huge
// solve — the paper obtains the same effect by running the per-demand
// kernels data-parallel on a GPU. Because every shard count produces a
// bit-identical allocation (verified here against the sequential path on
// every sweep point), the sweep isolates pure scheduling cost: wall-clock
// per solve as shards go 1 → threads.
//
// Output: a table on stdout, bench_out/shard_scaling.csv, and — when run
// from the repo root — an appended entry in the EXPERIMENTS.md "Shard
// scaling ledger". On a single-core machine the sweep degenerates (shards
// inline); set TEAL_POOL_THREADS to exercise the fan-out paths anyway.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench/common.h"
#include "core/shard.h"
#include "util/thread_pool.h"
#include "util/timer.h"

using namespace teal;

namespace {

struct SweepRow {
  int shards = 0;           // requested (0 = auto)
  int plan_shards = 0;      // resolved plan
  double median_ms = 0.0;
  double speedup = 0.0;     // vs 1 shard
  double balance = 0.0;     // min/max per-shard busy time (1.0 = perfect)
  bool identical = false;   // bit-identical to the sequential solve
};

double median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v.empty() ? 0.0 : v[v.size() / 2];
}

// Builds the run entry and inserts it below the section's marker line
// (newest first) via the shared bench::insert_ledger_entry helper.
void append_experiments_ledger(const std::vector<SweepRow>& rows, int n_demands,
                               std::size_t pool_threads, unsigned hw_threads) {
  std::string entry;
  entry += "\n\n### Run " + bench::ledger_stamp();
  entry += " — ASN, " + std::to_string(n_demands) + " demands, pool " +
           std::to_string(pool_threads) + " threads on " + std::to_string(hw_threads) +
           " hardware" + (bench::fast_mode() ? " (fast mode)" : "") + "\n\n" +
           "| shards | solve p50 (ms) | speedup | balance | bit-identical |\n" +
           "|---|---|---|---|---|\n";
  for (const auto& r : rows) {
    entry += "| " + (r.shards == 0 ? std::string("auto→") + std::to_string(r.plan_shards)
                                   : std::to_string(r.plan_shards)) +
             " | " + util::fmt(r.median_ms, 3) + " | " + util::fmt(r.speedup, 2) +
             "x | " + util::fmt(r.balance, 2) + " | " + (r.identical ? "yes" : "NO") +
             " |\n";
  }
  bench::insert_ledger_entry("<!-- bench_shard_scaling inserts runs below this line -->",
                             entry);
}

}  // namespace

int main() {
  bench::print_header("Shard scaling",
                      "intra-solve demand sharding, single-solve latency on ASN");
  auto inst = bench::make_instance("ASN");
  auto teal = bench::make_teal(*inst);
  const te::TrafficMatrix& tm = inst->split.test.at(0);

  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  const std::size_t pool_threads = util::ThreadPool::global().size() + 1;
  const int repeats = bench::fast_mode() ? 5 : 21;

  // Sequential reference (also warms the reference workspace).
  core::SolveWorkspace ref_ws;
  te::Allocation ref;
  teal->solve_replica(ref_ws, inst->pb, tm, ref, nullptr, /*shard_count=*/1);

  // Sweep: 1, 2, 4, 8, ... up to the pool width, the pool width itself, and
  // the auto cost model (requested 0).
  std::vector<int> sweep{1};
  for (int s = 2; s < static_cast<int>(pool_threads); s *= 2) sweep.push_back(s);
  if (pool_threads > 1) sweep.push_back(static_cast<int>(pool_threads));
  sweep.push_back(0);  // auto

  util::Table table({"shards", "plan", "solve p50 ms", "speedup", "balance", "identical"});
  util::Table csv({"requested_shards", "plan_shards", "solve_p50_ms", "speedup",
                   "balance", "identical"});
  std::vector<SweepRow> rows;
  double base_ms = 0.0;
  for (int requested : sweep) {
    core::SolveWorkspace ws;
    te::Allocation out;
    teal->solve_replica(ws, inst->pb, tm, out, nullptr, requested);  // warm-up
    std::vector<double> ms;
    ms.reserve(static_cast<std::size_t>(repeats));
    for (int i = 0; i < repeats; ++i) {
      double s = 0.0;
      teal->solve_replica(ws, inst->pb, tm, out, &s, requested);
      ms.push_back(s * 1e3);
    }
    SweepRow row;
    row.shards = requested;
    row.plan_shards = ws.plan.n_shards;
    row.median_ms = median(ms);
    if (requested == 1) base_ms = row.median_ms;
    row.speedup = row.median_ms > 0.0 && base_ms > 0.0 ? base_ms / row.median_ms : 0.0;
    double busy_min = 1e300, busy_max = 0.0;
    for (int s = 0; s < ws.plan.n_shards; ++s) {
      busy_min = std::min(busy_min, ws.shard_stats[static_cast<std::size_t>(s)].busy_seconds);
      busy_max = std::max(busy_max, ws.shard_stats[static_cast<std::size_t>(s)].busy_seconds);
    }
    row.balance = busy_max > 0.0 ? busy_min / busy_max : 1.0;
    // True byte comparison (not double ==, which conflates +0.0/-0.0).
    row.identical =
        out.split.size() == ref.split.size() &&
        (ref.split.empty() ||
         std::memcmp(out.split.data(), ref.split.data(),
                     ref.split.size() * sizeof(double)) == 0);
    rows.push_back(row);
    const std::string req = requested == 0 ? "auto" : std::to_string(requested);
    table.add_row({req, std::to_string(row.plan_shards), util::fmt(row.median_ms, 3),
                   util::fmt(row.speedup, 2), util::fmt(row.balance, 2),
                   row.identical ? "yes" : "NO"});
    csv.add_row({req, std::to_string(row.plan_shards), util::fmt(row.median_ms, 4),
                 util::fmt(row.speedup, 3), util::fmt(row.balance, 3),
                 row.identical ? "1" : "0"});
  }
  std::printf("%s", table.to_string().c_str());

  bool all_identical = true;
  for (const auto& r : rows) all_identical = all_identical && r.identical;
  std::printf("  bit-identical to the sequential solve at every shard count: %s\n",
              all_identical ? "yes" : "NO");
  double speedup_at_4 = 0.0;
  for (const auto& r : rows) {
    if (r.shards == 4) speedup_at_4 = r.speedup;
  }
  if (speedup_at_4 > 0.0) {
    std::printf("  single-solve speedup at 4 shards: %.2fx (acceptance target > 1.5x on\n"
                "  >= 4 hardware threads)\n", speedup_at_4);
  } else {
    std::printf("  4-shard point not reached (pool %zu threads); run on >= 4 cores for\n"
                "  the acceptance sweep\n", pool_threads);
  }

  csv.write_csv(bench::out_dir() + "/shard_scaling.csv");
  append_experiments_ledger(rows, inst->pb.num_demands(), pool_threads, hw);
  return all_identical ? 0 : 1;
}
