// net_serving — latency under load through the TCP serving front-end.
//
// Not a paper figure: this bench measures the repo's own network layer
// (src/net/), end to end over loopback TCP. A trained Teal scheme serves
// behind net::Server; teal_slap's open-loop harness (net::run_slap) offers
// traffic matrices at a fixed rate across standing connections, which is the
// regime a WAN controller actually lives in — matrices keep arriving on the
// measurement schedule whether or not the last solve finished, so queueing
// delay and shedding become visible instead of being absorbed by a polite
// closed-loop client.
//
// Procedure: first a closed-loop calibration pass (one client, back-to-back
// solves) measures the service capacity of the replica pool through the full
// socket path; then an offered-rate sweep at {0.5, 1.0, 2.0}x that capacity
// runs against deadline admission control. Below capacity the response p99
// should sit near the solve time with ~no shedding; past capacity the
// admission bound holds the p99 down by shedding the excess at the socket.
//
// Output: a table on stdout, bench_out/net_serving.csv, and — when run from
// the repo root — a ledger entry in EXPERIMENTS.md ("Latency under load
// ledger").
#include <chrono>
#include <cstdio>
#include <vector>

#include "bench/common.h"
#include "net/client.h"
#include "net/server.h"
#include "net/slap.h"
#include "serve/replica.h"
#include "serve/server.h"

using namespace teal;

namespace {

struct SweepRow {
  double multiplier = 0.0;
  double target_rps = 0.0;
  double achieved_rps = 0.0;
  std::uint64_t offered = 0;
  std::uint64_t responses = 0;
  double shed_pct = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  std::uint64_t dropped = 0;
};

void append_experiments_ledger(const std::vector<SweepRow>& rows, double base_rps,
                               std::size_t n_replicas, int n_connections) {
  std::string entry;
  entry += "\n\n### Run " + bench::ledger_stamp();
  entry += " — B4, " + std::to_string(n_replicas) + " replicas, " +
           std::to_string(n_connections) + " connections, closed-loop capacity " +
           util::fmt(base_rps, 1) + " solves/s" +
           (bench::fast_mode() ? " (fast mode)" : "");
  entry += "\n\n| offered | target rps | achieved rps | responses | shed % | p50 (ms) | p99 (ms) | dropped |\n";
  entry += "|---|---|---|---|---|---|---|---|\n";
  for (const auto& r : rows) {
    entry += "| " + util::fmt(r.multiplier, 1) + "x | " + util::fmt(r.target_rps, 1) +
             " | " + util::fmt(r.achieved_rps, 1) + " | " + std::to_string(r.responses) +
             " | " + util::fmt(r.shed_pct, 1) + " | " + util::fmt(r.p50_ms, 3) + " | " +
             util::fmt(r.p99_ms, 3) + " | " + std::to_string(r.dropped) + " |\n";
  }
  bench::insert_ledger_entry("<!-- bench_net_serving appends runs below this line -->",
                             entry);
}

}  // namespace

int main() {
  bench::print_header("Latency under load",
                      "open-loop offered-rate sweep through the TCP serving front-end");
  auto inst = bench::make_instance("B4");
  auto teal = bench::make_teal(*inst);

  const std::size_t n_replicas = 2;
  const int n_connections = bench::fast_mode() ? 2 : 4;
  const double duration_s = bench::fast_mode() ? 1.0 : 3.0;

  // Request stream: cycle the test split so every sweep point serves the same
  // workload mix run_slap cycles through.
  std::vector<te::TrafficMatrix> requests;
  for (int i = 0; i < inst->split.test.size(); ++i) {
    requests.push_back(inst->split.test.at(i));
  }

  // --- closed-loop calibration: service capacity through the socket path ---
  double base_rps = 0.0;
  {
    serve::Server backend(inst->pb, serve::make_replicas(*teal, n_replicas), {});
    net::Server server(backend, inst->pb);
    net::Client client("127.0.0.1", server.port());
    const int warmup = 5, measured = bench::fast_mode() ? 40 : 160;
    for (int i = 0; i < warmup; ++i) {
      client.solve(requests[static_cast<std::size_t>(i) % requests.size()]);
    }
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < measured; ++i) {
      client.solve(requests[static_cast<std::size_t>(i) % requests.size()]);
    }
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    base_rps = elapsed > 0.0 ? static_cast<double>(measured) / elapsed : 0.0;
    server.stop();
    backend.stop();
  }
  std::printf("  closed-loop capacity (1 client, %zu replicas): %.1f solves/s\n\n",
              n_replicas, base_rps);

  // --- open-loop sweep against deadline admission -------------------------
  util::Table table({"offered", "target rps", "achieved rps", "responses", "shed %",
                     "p50 ms", "p99 ms", "dropped"});
  util::Table csv({"multiplier", "target_rps", "achieved_rps", "offered", "responses",
                   "shed", "shed_pct", "p50_ms", "p99_ms", "dropped", "wall_seconds"});
  std::vector<SweepRow> rows;
  for (double mult : {0.5, 1.0, 2.0}) {
    serve::ServeConfig scfg;
    scfg.queue_capacity = 256;
    // Deadline worth ~2 mean service times: the depth bound is small, so past
    // capacity the excess is shed at the socket instead of queueing into a
    // latency cliff.
    scfg.expected_solve_seconds =
        base_rps > 0.0 ? static_cast<double>(n_replicas) / base_rps : 0.0;
    scfg.deadline_seconds = 2.0 * scfg.expected_solve_seconds;
    serve::Server backend(inst->pb, serve::make_replicas(*teal, n_replicas), scfg);
    net::Server server(backend, inst->pb);

    net::SlapConfig cfg;
    cfg.port = server.port();
    cfg.connections = n_connections;
    cfg.target_rps = mult * base_rps;
    cfg.duration_seconds = duration_s;
    auto stats = net::run_slap(cfg, requests);
    server.stop();
    backend.stop();

    SweepRow row;
    row.multiplier = mult;
    row.target_rps = cfg.target_rps;
    row.achieved_rps = stats.achieved_rps;
    row.offered = stats.offered;
    row.responses = stats.responses;
    row.shed_pct = stats.shed_pct();
    row.p50_ms = stats.latency.percentile(50.0) * 1e3;
    row.p99_ms = stats.latency.percentile(99.0) * 1e3;
    row.dropped = stats.dropped;
    rows.push_back(row);
    table.add_row({util::fmt(mult, 1) + "x", util::fmt(row.target_rps, 1),
                   util::fmt(row.achieved_rps, 1), std::to_string(row.responses),
                   util::fmt(row.shed_pct, 1), util::fmt(row.p50_ms, 3),
                   util::fmt(row.p99_ms, 3), std::to_string(row.dropped)});
    csv.add_row({util::fmt(mult, 2), util::fmt(row.target_rps, 2),
                 util::fmt(row.achieved_rps, 2), std::to_string(row.offered),
                 std::to_string(row.responses), std::to_string(stats.shed),
                 util::fmt(row.shed_pct, 2), util::fmt(row.p50_ms, 4),
                 util::fmt(row.p99_ms, 4), std::to_string(row.dropped),
                 util::fmt(stats.wall_seconds, 3)});
  }
  std::printf("%s", table.to_string().c_str());
  std::printf("  expectation: sub-capacity rows shed ~0%% with p50 near the solve time;\n"
              "  the 2.0x row sheds the excess instead of letting p99 run away.\n");

  csv.write_csv(bench::out_dir() + "/net_serving.csv");
  append_experiments_ledger(rows, base_rps, n_replicas, n_connections);
  return 0;
}
