// serve_scaling — replica-count sweep of the online serving layer.
//
// Not a paper figure: this bench measures the repo's own serving subsystem
// (serve::Server), the scaling scenario ROADMAP.md names as the successor to
// solve_batch. One shared trained TealScheme, N workspace replicas draining
// a burst of requests (open-loop saturation, sim::run_served with arrival
// interval 0). Because replica solves over independent matrices commute —
// no shared mutable state, the same argument behind solve_batch — solves/sec
// should rise monotonically from 1 replica to the hardware thread count.
//
// A second pass offers requests at ~2× the measured single-replica service
// rate against a one-interval deadline, demonstrating admission control:
// the shed column is work the server refused because it could not start it
// within the deadline.
//
// Output: a table on stdout, bench_out/serve_scaling.csv, and — when run
// from the repo root — a ledger entry in EXPERIMENTS.md ("Serving
// throughput ledger").
#include <algorithm>
#include <cstdio>
#include <thread>

#include "bench/common.h"
#include "sim/served.h"

using namespace teal;

namespace {

struct SweepRow {
  std::size_t replicas = 0;
  double solves_per_sec = 0.0;
  double speedup = 0.0;
  double solve_p50_ms = 0.0;
  double solve_p99_ms = 0.0;
  double response_p99_ms = 0.0;
  std::uint64_t shed = 0;
};

void append_experiments_ledger(const std::vector<SweepRow>& rows, int n_requests,
                               unsigned hw_threads) {
  // Marker-based insert (newest first), like every other ledger bench: a
  // plain end-of-file append would leak entries into whatever section comes
  // after this ledger in EXPERIMENTS.md.
  std::string entry;
  entry += "\n\n### Run " + bench::ledger_stamp();
  entry += " — " + std::to_string(n_requests) + " requests, " +
           std::to_string(hw_threads) + " hardware threads" +
           (bench::fast_mode() ? " (fast mode)" : "");
  entry += "\n\n| replicas | solves/sec | speedup | solve p50 (ms) | solve p99 (ms) | shed |\n";
  entry += "|---|---|---|---|---|---|\n";
  for (const auto& r : rows) {
    entry += "| " + std::to_string(r.replicas) + " | " + util::fmt(r.solves_per_sec, 1) +
             " | " + util::fmt(r.speedup, 2) + "x | " + util::fmt(r.solve_p50_ms, 3) +
             " | " + util::fmt(r.solve_p99_ms, 3) + " | " + std::to_string(r.shed) + " |\n";
  }
  bench::insert_ledger_entry("<!-- bench_serve_scaling appends runs below this line -->",
                             entry);
}

}  // namespace

int main() {
  bench::print_header("Serve scaling",
                      "multi-replica serving throughput, 1..hardware threads");
  auto inst = bench::make_instance("B4");
  auto teal = bench::make_teal(*inst);

  // Request stream: the test split cycled up to a fixed request count, so
  // every sweep point serves the identical workload.
  const int n_requests = bench::fast_mode() ? 64 : 256;
  traffic::Trace requests;
  requests.matrices.reserve(static_cast<std::size_t>(n_requests));
  for (int i = 0; i < n_requests; ++i) {
    requests.matrices.push_back(
        inst->split.test.at(i % std::max(1, inst->split.test.size())));
  }

  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  util::Table table({"replicas", "solves/sec", "speedup", "solve p50 ms", "solve p99 ms",
                     "resp p99 ms", "shed"});
  util::Table csv({"replicas", "solves_per_sec", "speedup", "solve_p50_ms", "solve_p99_ms",
                   "response_p99_ms", "shed", "wall_seconds"});
  std::vector<SweepRow> rows;
  double base_throughput = 0.0;
  bool monotonic = true;
  for (std::size_t r = 1; r <= hw; ++r) {
    sim::ServedConfig cfg;
    cfg.n_replicas = r;
    // This bench measures the *replica* axis in isolation: pin one shard per
    // solve so the auto cost model can't hand the 1-replica baseline extra
    // pool threads (which would contaminate the speedup column and the
    // monotonicity expectation). bench_shard_scaling owns the shard axis.
    cfg.shard_count = 1;
    cfg.serve.queue_capacity = static_cast<std::size_t>(n_requests);
    // Saturation mode: one burst, no deadline — measures pure service capacity.
    auto res = sim::run_served(*teal, inst->pb, requests, cfg);
    const auto& s = res.stats;
    SweepRow row;
    row.replicas = r;
    row.solves_per_sec = s.throughput();
    if (r == 1) base_throughput = row.solves_per_sec;
    if (!rows.empty() && row.solves_per_sec < rows.back().solves_per_sec) monotonic = false;
    row.speedup = base_throughput > 0.0 ? row.solves_per_sec / base_throughput : 0.0;
    row.solve_p50_ms = s.solve.percentile(50.0) * 1e3;
    row.solve_p99_ms = s.solve.percentile(99.0) * 1e3;
    row.response_p99_ms = s.response.percentile(99.0) * 1e3;
    row.shed = s.shed;
    rows.push_back(row);
    table.add_row({std::to_string(r), util::fmt(row.solves_per_sec, 1),
                   util::fmt(row.speedup, 2), util::fmt(row.solve_p50_ms, 3),
                   util::fmt(row.solve_p99_ms, 3), util::fmt(row.response_p99_ms, 3),
                   std::to_string(row.shed)});
    csv.add_row({std::to_string(r), util::fmt(row.solves_per_sec, 2),
                 util::fmt(row.speedup, 3), util::fmt(row.solve_p50_ms, 4),
                 util::fmt(row.solve_p99_ms, 4), util::fmt(row.response_p99_ms, 4),
                 std::to_string(row.shed), util::fmt(s.wall_seconds, 4)});
  }
  std::printf("%s", table.to_string().c_str());
  std::printf("  throughput monotonic over 1..%u replicas: %s\n", hw,
              hw == 1 ? "n/a (1 hardware thread)" : (monotonic ? "yes" : "NO"));

  // Admission-control demonstration: offer ~2x the single-replica service
  // rate against a one-arrival-interval deadline; the server sheds the
  // excess instead of queueing requests it cannot start in time.
  if (base_throughput > 0.0) {
    sim::ServedConfig cfg;
    cfg.n_replicas = 1;
    cfg.shard_count = 1;  // same isolation as the sweep above
    cfg.arrival_interval_seconds = 1.0 / (2.0 * base_throughput);
    cfg.serve.queue_capacity = static_cast<std::size_t>(n_requests);
    cfg.serve.deadline_seconds = cfg.arrival_interval_seconds;
    auto res = sim::run_served(*teal, inst->pb, requests, cfg);
    const auto& s = res.stats;
    std::printf("\n  overload: offered at 2.0x single-replica rate, deadline = one arrival\n"
                "  interval -> accepted %llu, shed %llu (%.0f%%), response p99 %.3f ms\n",
                static_cast<unsigned long long>(s.accepted),
                static_cast<unsigned long long>(s.shed),
                s.offered > 0 ? 100.0 * static_cast<double>(s.shed) /
                                    static_cast<double>(s.offered)
                              : 0.0,
                s.response.percentile(99.0) * 1e3);
  }

  csv.write_csv(bench::out_dir() + "/serve_scaling.csv");
  append_experiments_ledger(rows, n_requests, hw);
  return 0;
}
