// fleet_serving — multi-tenant serving + live model hot-swap, end to end.
//
// Not a paper figure: this bench measures the fleet layer (serve::Fleet +
// the tenant-routed wire protocol) the way an operator would run it — one
// process, two tenants with different topologies (B4 and SWAN), the replica
// budget split by the load-proportional placement policy, and a background
// "trainer" republishing tenant us's model every few hundred milliseconds
// while the open-loop slap mix keeps offering traffic to both tenants.
//
// The claims under measurement:
//  * per-tenant isolation — each tenant's ledger balances on its own
//    (offered == responses + shed + errors + dropped, per tenant, by
//    construction in net::run_slap);
//  * hot-swap is free at the request level — publishes during sustained load
//    cost zero requests (no swap-induced shed, error, or drop; in-flight
//    solves finish on their pinned snapshot — tests/fleet_test.cpp pins the
//    bit-identity half of that claim).
//
// Output: a per-tenant table on stdout, bench_out/fleet_serving.csv, and —
// when run from the repo root — a ledger entry in EXPERIMENTS.md ("Fleet
// serving ledger").
#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "bench/common.h"
#include "core/teal_scheme.h"
#include "net/client.h"
#include "net/server.h"
#include "net/slap.h"
#include "serve/fleet.h"
#include "serve/server.h"

using namespace teal;

namespace {

struct TenantRow {
  std::string tenant;
  std::string topo;
  std::size_t replicas = 0;
  double weight = 0.0;
  net::SlapTenantStats stats;
};

void append_experiments_ledger(const std::vector<TenantRow>& rows, double base_rps,
                               double target_rps, const std::string& policy,
                               std::uint64_t publishes, std::uint64_t final_version) {
  std::string entry;
  entry += "\n\n### Run " + bench::ledger_stamp();
  entry += " — B4 + SWAN, " + policy + " placement, closed-loop capacity " +
           util::fmt(base_rps, 1) + " solves/s, offered " + util::fmt(target_rps, 1) +
           " req/s, " + std::to_string(publishes) + " publishes (final version " +
           std::to_string(final_version) + ")" + (bench::fast_mode() ? " (fast mode)" : "");
  entry += "\n\n| tenant | topology | replicas | weight | offered | responses | shed | errors | dropped | p50 (ms) | p99 (ms) |\n";
  entry += "|---|---|---|---|---|---|---|---|---|---|---|\n";
  for (const auto& r : rows) {
    entry += "| " + r.tenant + " | " + r.topo + " | " + std::to_string(r.replicas) +
             " | " + util::fmt(r.weight, 1) + " | " + std::to_string(r.stats.offered) +
             " | " + std::to_string(r.stats.responses) + " | " +
             std::to_string(r.stats.shed) + " | " + std::to_string(r.stats.errors) +
             " | " + std::to_string(r.stats.dropped) + " | " +
             util::fmt(r.stats.latency.percentile(50.0) * 1e3, 3) + " | " +
             util::fmt(r.stats.latency.percentile(99.0) * 1e3, 3) + " |\n";
  }
  bench::insert_ledger_entry("<!-- bench_fleet_serving appends runs below this line -->",
                             entry);
}

}  // namespace

int main() {
  bench::print_header("Fleet serving",
                      "two tenants, one process: placement split + hot-swap under load");
  auto inst_us = bench::make_instance("B4");
  auto inst_eu = bench::make_instance("SWAN");
  auto teal_us = bench::make_teal(*inst_us);
  auto teal_eu = bench::make_teal(*inst_eu);

  const double weight_us = 2.0, weight_eu = 1.0;
  const std::string policy = "load-proportional";
  serve::FleetConfig fcfg;
  fcfg.total_replicas = 2;
  fcfg.policy = policy;
  serve::Fleet fleet(std::move(fcfg));
  {
    serve::TenantConfig tc;
    tc.name = "us";
    tc.pb = &inst_us->pb;
    tc.scheme = teal_us.get();
    tc.offered_weight = weight_us;
    tc.serve.queue_capacity = 512;  // generous: swaps must not hide behind sheds
    fleet.add_tenant(std::move(tc));
  }
  {
    serve::TenantConfig tc;
    tc.name = "eu";
    tc.pb = &inst_eu->pb;
    tc.scheme = teal_eu.get();
    tc.offered_weight = weight_eu;
    tc.serve.queue_capacity = 512;
    fleet.add_tenant(std::move(tc));
  }
  fleet.start();
  net::Server server(fleet);
  std::printf("  placement (%s, budget %zu): us=%zu replicas, eu=%zu replicas\n", policy.c_str(),
              std::size_t{2}, fleet.replicas("us"), fleet.replicas("eu"));

  // Request streams per tenant (cycled by the slap schedule).
  std::vector<net::SlapWorkload> workloads(2);
  workloads[0].tenant = "us";
  workloads[0].weight = weight_us;
  for (int i = 0; i < inst_us->split.test.size(); ++i) {
    workloads[0].requests.push_back(inst_us->split.test.at(i));
  }
  workloads[1].tenant = "eu";
  workloads[1].weight = weight_eu;
  for (int i = 0; i < inst_eu->split.test.size(); ++i) {
    workloads[1].requests.push_back(inst_eu->split.test.at(i));
  }

  // Closed-loop calibration through the socket, weighted mix: measures the
  // fleet's aggregate service capacity for this 2:1 tenant blend.
  double base_rps = 0.0;
  {
    net::Client client("127.0.0.1", server.port());
    const int warmup = 4, measured = bench::fast_mode() ? 30 : 120;
    auto one = [&](int i) {
      const auto& w = workloads[static_cast<std::size_t>(i % 3) < 2 ? 0 : 1];  // 2:1 mix
      client.solve(w.requests[static_cast<std::size_t>(i) % w.requests.size()], w.tenant);
    };
    for (int i = 0; i < warmup; ++i) one(i);
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < measured; ++i) one(i);
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    base_rps = elapsed > 0.0 ? static_cast<double>(measured) / elapsed : 0.0;
  }
  std::printf("  closed-loop capacity (1 client, 2:1 mix): %.1f solves/s\n", base_rps);

  // Background "trainer": republishes tenant us's weights (cloned through the
  // model save/load path, so the served answers stay the trained ones) for
  // the whole run. Every publish is a full hot-swap: snapshot prepare, atomic
  // install, version bump, workspace cache re-key on the next solve.
  const std::string swap_path = bench::out_dir() + "/fleet_swap_model.bin";
  teal_us->model().save(swap_path);
  std::atomic<bool> stop_publisher{false};
  std::atomic<std::uint64_t> publishes{0};
  std::thread publisher([&] {
    while (!stop_publisher.load(std::memory_order_acquire)) {
      auto clone = std::make_unique<core::TealModel>(core::TealModelConfig{},
                                                     inst_us->pb.k_paths());
      if (!clone->load(swap_path)) break;  // cache gone: stop publishing
      teal_us->publish_model(std::move(clone));
      publishes.fetch_add(1, std::memory_order_relaxed);
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
  });

  // Open-loop run at 0.8x capacity: below saturation, so any shed, error or
  // drop would be swap-induced — the claim is that there are none.
  net::SlapConfig cfg;
  cfg.port = server.port();
  cfg.connections = bench::fast_mode() ? 2 : 4;
  cfg.target_rps = 0.8 * base_rps;
  cfg.duration_seconds = bench::fast_mode() ? 1.5 : 4.0;
  auto stats = net::run_slap(cfg, workloads);
  stop_publisher.store(true, std::memory_order_release);
  publisher.join();

  server.stop();
  const auto fstats = fleet.stop();
  const std::uint64_t final_version = teal_us->model_version();

  util::Table table({"tenant", "topology", "replicas", "weight", "offered", "responses",
                     "shed", "errors", "dropped", "p50 ms", "p99 ms"});
  util::Table csv({"tenant", "topology", "replicas", "weight", "offered", "responses",
                   "shed", "errors", "dropped", "p50_ms", "p99_ms", "publishes"});
  std::vector<TenantRow> rows;
  const char* topos[2] = {"B4", "SWAN"};
  bool balanced = true;
  for (std::size_t t = 0; t < stats.tenants.size(); ++t) {
    TenantRow row;
    row.tenant = stats.tenants[t].tenant;
    row.topo = topos[t];
    row.replicas = fleet.replicas(row.tenant);
    row.weight = workloads[t].weight;
    row.stats = stats.tenants[t];
    const auto& s = row.stats;
    if (s.offered != s.responses + s.shed + s.errors + s.dropped) balanced = false;
    rows.push_back(row);
    table.add_row({row.tenant, row.topo, std::to_string(row.replicas),
                   util::fmt(row.weight, 1), std::to_string(s.offered),
                   std::to_string(s.responses), std::to_string(s.shed),
                   std::to_string(s.errors), std::to_string(s.dropped),
                   util::fmt(s.latency.percentile(50.0) * 1e3, 3),
                   util::fmt(s.latency.percentile(99.0) * 1e3, 3)});
    csv.add_row({row.tenant, row.topo, std::to_string(row.replicas),
                 util::fmt(row.weight, 1), std::to_string(s.offered),
                 std::to_string(s.responses), std::to_string(s.shed),
                 std::to_string(s.errors), std::to_string(s.dropped),
                 util::fmt(s.latency.percentile(50.0) * 1e3, 4),
                 util::fmt(s.latency.percentile(99.0) * 1e3, 4),
                 std::to_string(publishes.load())});
  }
  std::printf("%s", table.to_string().c_str());
  std::printf("  hot-swap: %llu publishes during the run (final model version %llu)\n",
              static_cast<unsigned long long>(publishes.load()),
              static_cast<unsigned long long>(final_version));
  std::printf("  per-tenant ledgers %s; fleet backend completed %llu of %llu accepted\n",
              balanced ? "balance" : "DO NOT BALANCE",
              static_cast<unsigned long long>(fstats.completed()),
              static_cast<unsigned long long>(fstats.accepted()));
  std::printf("  expectation: zero shed/errors/dropped at 0.8x capacity — a publish\n"
              "  must never cost a request.\n");

  csv.write_csv(bench::out_dir() + "/fleet_serving.csv");
  append_experiments_ledger(rows, base_rps, cfg.target_rps, policy, publishes.load(),
                            final_version);
  return balanced ? 0 : 1;
}
