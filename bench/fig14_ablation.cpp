// fig14_ablation — regenerates Figure 14: the ablation study of Teal's key
// features on SWAN and ASN. Variants (§5.7):
//   Teal              — full pipeline (FlowGNN + COMA* + ADMM)
//   Teal w/o ADMM     — skip fine-tuning
//   Teal w/ direct loss — surrogate-loss training instead of COMA*
//   Teal w/ global policy — one gigantic policy net over all paths
//                       (memory error on ASN, like the paper's "X")
//   Teal w/ naive GNN — GNN over WAN sites instead of FlowGNN
//   Teal w/ naive DNN — fully-connected net on the raw traffic matrix
#include <cstdio>

#include "bench/common.h"
#include "core/variants.h"

using namespace teal;

namespace {

double eval_scheme(te::Scheme& scheme, const bench::Instance& inst, int n_test) {
  std::vector<double> sat;
  for (int t = 0; t < n_test; ++t) {
    const auto& tm = inst.split.test.at(t);
    auto a = scheme.solve(inst.pb, tm);
    sat.push_back(te::satisfied_demand_pct(inst.pb, tm, a));
  }
  return util::mean(sat);
}

core::TealTrainOptions train_opts(const std::string& cache_tag,
                                  const bench::Instance& inst, core::Trainer trainer) {
  core::TealTrainOptions opts;
  opts.trainer = trainer;
  opts.coma.epochs = bench::fast_mode() ? 2 : 4;
  opts.coma.lr = 3e-3;
  opts.direct.epochs = bench::fast_mode() ? 2 : 5;
  opts.direct.lr = 3e-3;
  opts.cache_path = bench::model_cache_path(inst.name + "_" + cache_tag,
                                            te::Objective::kTotalFlow);
  return opts;
}

}  // namespace

int main() {
  bench::print_header("Figure 14", "ablation of FlowGNN, multi-agent RL and ADMM");
  const int n_test = bench::fast_mode() ? 2 : 4;
  util::Table table({"variant", "SWAN satisfied (%)", "ASN satisfied (%)"});
  util::Table csv({"variant", "topology", "satisfied_pct"});

  std::vector<std::vector<std::string>> rows = {
      {"Teal"}, {"Teal w/o ADMM"}, {"Teal w/ direct loss"}, {"Teal w/ global policy"},
      {"Teal w/ naive GNN"}, {"Teal w/ naive DNN"}};

  for (const std::string topo : {"SWAN", "ASN"}) {
    auto inst = bench::make_instance(topo);
    core::TealSchemeConfig scfg;

    for (auto& row : rows) {
      const std::string variant = row[0];  // copy: push_back below reallocates row
      double sat = -1.0;
      try {
        std::unique_ptr<te::Scheme> scheme;
        if (variant == "Teal") {
          scheme = bench::make_teal(*inst);
        } else if (variant == "Teal w/o ADMM") {
          scheme = bench::make_teal(*inst, te::Objective::kTotalFlow, /*use_admm=*/false);
        } else if (variant == "Teal w/ direct loss") {
          auto model = std::make_unique<core::TealModel>(scfg.model, inst->pb.k_paths());
          core::train_or_load_model(*model, inst->pb, inst->split.train,
                                    te::Objective::kTotalFlow,
                                    train_opts("direct", *inst, core::Trainer::kDirectLoss));
          scheme = std::make_unique<core::TealScheme>(inst->pb, std::move(model), scfg,
                                                      variant);
        } else if (variant == "Teal w/ global policy") {
          core::GlobalPolicyConfig gcfg;
          gcfg.hidden_dim = 64;
          // Memory budget scaled to this repo's reduced problem sizes so the
          // variant fits on SWAN but — like the paper's full-scale run — hits
          // a memory error on ASN. (At paper scale the ASN layer alone would
          // need ~3M demands * 4 paths * 6 dims * hidden weights.)
          gcfg.max_params = 8'000'000;
          // Construction throws std::length_error on ASN-scale problems.
          auto model = std::make_unique<core::GlobalPolicyModel>(gcfg, inst->pb);
          core::train_or_load_model(*model, inst->pb, inst->split.train,
                                    te::Objective::kTotalFlow,
                                    train_opts("global", *inst, core::Trainer::kComaStar));
          scheme = std::make_unique<core::TealScheme>(inst->pb, std::move(model), scfg,
                                                      variant);
        } else if (variant == "Teal w/ naive GNN") {
          auto model = std::make_unique<core::NaiveGnnModel>(core::NaiveGnnConfig{},
                                                             inst->pb);
          core::train_or_load_model(*model, inst->pb, inst->split.train,
                                    te::Objective::kTotalFlow,
                                    train_opts("naivegnn", *inst, core::Trainer::kComaStar));
          scheme = std::make_unique<core::TealScheme>(inst->pb, std::move(model), scfg,
                                                      variant);
        } else {  // naive DNN
          auto model = std::make_unique<core::NaiveDnnModel>(core::NaiveDnnConfig{},
                                                             inst->pb);
          core::train_or_load_model(*model, inst->pb, inst->split.train,
                                    te::Objective::kTotalFlow,
                                    train_opts("naivednn", *inst, core::Trainer::kComaStar));
          scheme = std::make_unique<core::TealScheme>(inst->pb, std::move(model), scfg,
                                                      variant);
        }
        sat = eval_scheme(*scheme, *inst, n_test);
      } catch (const std::length_error&) {
        sat = -1.0;  // "X" in the paper: memory error on ASN
      }
      row.push_back(sat < 0.0 ? "X (memory)" : util::fmt(sat, 1));
      csv.add_row({variant, topo, sat < 0.0 ? "nan" : util::fmt(sat, 2)});
      std::printf("  [%s/%s] %s\n", topo.c_str(), variant.c_str(),
                  sat < 0.0 ? "memory error" : util::fmt(sat, 1).c_str());
    }
  }
  for (auto& row : rows) table.add_row(row);
  std::printf("\n%s", table.to_string().c_str());
  std::printf("\nPaper reference: naive DNN/GNN lose 4.2-4.3%% (SWAN) and 9.6-12.4%% (ASN);\n"
              "global policy loses 12.9%% on SWAN and OOMs on ASN; direct loss loses\n"
              "2.3-2.5%%; removing ADMM loses 2-2.5%%.\n");
  csv.write_csv(bench::out_dir() + "/fig14_ablation.csv");
  return 0;
}
