// fig02_lp_threads — regenerates Figure 2: the speedup of the LP engine as
// more CPU threads become available is sublinear and marginal.
//
// Like Gurobi (§2.1), our LP engine exploits multiple threads only by
// "concurrently running independent instances of different optimization
// algorithms, where each instance executes serially on a separate thread; the
// solution is yielded by whichever instance completes first". We emulate that
// strategy faithfully: k concurrent PDHG instances with different step-size
// configurations race on the Kdl-like TE LP, and the wall time is the first
// finisher's. The speedup saturates quickly — the paper reads 3.8x at 16
// threads for Gurobi.
#include <cstdio>
#include <future>

#include "bench/common.h"
#include "lp/path_lp.h"
#include "util/timer.h"

using namespace teal;

namespace {

// One racing instance: a PDHG run with its own step-scale "algorithm".
double run_instance(const te::Problem& pb, const te::TrafficMatrix& tm, double step_scale) {
  lp::PdhgOptions opt;
  opt.step_scale = step_scale;
  lp::FlowLpInfo info;
  lp::solve_flow_lp(pb, tm, {}, opt, &info);
  return info.objective;
}

}  // namespace

int main() {
  bench::print_header("Figure 2", "LP engine speedup vs available CPU threads (Kdl-like LP)");
  auto inst = bench::make_instance("Kdl");
  const auto& tm = inst->split.test.at(0);

  // Step-scale variants stand in for "different optimization algorithms".
  const std::vector<double> variants = {1.0, 0.9, 0.75, 0.6, 0.5, 1.0,  0.85, 0.7,
                                        0.95, 0.8, 0.65, 0.55, 0.45, 0.9, 0.6, 1.0};
  util::Table table({"threads", "time (s)", "speedup"});
  double base_time = 0.0;
  for (int threads : {1, 2, 4, 8, 16}) {
    util::Timer timer;
    // Launch `threads` racing instances; wall time = first finisher. All
    // instances run to completion in their own thread, exactly like
    // concurrent LP algorithms; we measure the earliest finish.
    std::vector<std::future<double>> futs;
    std::vector<double> finish(static_cast<std::size_t>(threads), 0.0);
    std::vector<std::thread> workers;
    std::mutex mu;
    double first_done = 1e18;
    for (int i = 0; i < threads; ++i) {
      workers.emplace_back([&, i] {
        util::Timer t;
        run_instance(inst->pb, tm, variants[static_cast<std::size_t>(i)]);
        std::lock_guard lock(mu);
        first_done = std::min(first_done, t.seconds());
      });
    }
    for (auto& w : workers) w.join();
    double elapsed = first_done;
    if (threads == 1) base_time = elapsed;
    table.add_row({std::to_string(threads), util::fmt(elapsed, 2),
                   util::fmt(base_time / std::max(1e-9, elapsed), 2) + "x"});
    std::printf("  threads=%2d first-finisher %.2f s\n", threads, elapsed);
  }
  std::printf("\n%s", table.to_string().c_str());
  std::printf("\nPaper reference: Gurobi reaches only 3.8x speedup at 16 threads on ASN.\n");
  table.write_csv(bench::out_dir() + "/fig02_lp_threads.csv");
  return 0;
}
