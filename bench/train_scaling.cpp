// train_scaling — worker sweep of the workspace-batched training pipeline.
//
// Not a paper figure: this bench measures the repo's own batched training
// (core::TrainContext), the fourth parallelism axis after solve_batch,
// serving replicas and demand shards. The fig06 model-training step is the
// workload: COMA* epochs over a SWAN-scale instance, rollout batches fanned
// over 1 → pool-width workers, with the bit-identity contract (parameters
// byte-equal to the 1-worker run at every sweep point) checked alongside the
// throughput numbers. The paper trains on a GPU for days (§5.1); what this
// sweep demonstrates is that the CPU reproduction's training step scales
// with cores without changing a single trained bit.
//
// Output: a table on stdout, bench_out/train_scaling.csv, and — when run
// from the repo root — an inserted entry in the EXPERIMENTS.md "Training
// scaling ledger". On a single-core machine the sweep degenerates (workers
// inline); set TEAL_POOL_THREADS to exercise the fan-out paths anyway.
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench/common.h"
#include "core/coma.h"
#include "core/model.h"
#include "util/thread_pool.h"
#include "util/timer.h"

using namespace teal;

namespace {

struct SweepRow {
  int workers = 0;          // requested (0 = auto)
  double seconds = 0.0;     // wall time of the training run
  double speedup = 0.0;     // vs 1 worker
  std::uint64_t warm_allocs = 0;
  bool identical = false;   // parameters byte-equal to the 1-worker run
};

std::vector<std::vector<double>> snapshot_params(core::Model& model) {
  std::vector<std::vector<double>> out;
  for (auto* p : model.params()) {
    const auto& w = p->w.data();
    out.emplace_back(w.begin(), w.end());
  }
  return out;
}

bool params_equal(const std::vector<std::vector<double>>& a,
                  const std::vector<std::vector<double>>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].size() != b[i].size() ||
        std::memcmp(a[i].data(), b[i].data(), a[i].size() * sizeof(double)) != 0) {
      return false;
    }
  }
  return true;
}

void append_experiments_ledger(const std::vector<SweepRow>& rows, int n_demands,
                               int rollout_batch, std::size_t pool_threads,
                               unsigned hw_threads) {
  std::string entry;
  entry += "\n\n### Run " + bench::ledger_stamp();
  entry += " — SWAN, " + std::to_string(n_demands) + " demands, rollout batch " +
           std::to_string(rollout_batch) + ", pool " + std::to_string(pool_threads) +
           " threads on " + std::to_string(hw_threads) + " hardware" +
           (bench::fast_mode() ? " (fast mode)" : "") + "\n\n" +
           "| workers | train wall (s) | speedup | warm-step allocs | bit-identical |\n" +
           "|---|---|---|---|---|\n";
  for (const auto& r : rows) {
    entry += "| " + (r.workers == 0 ? std::string("auto") : std::to_string(r.workers)) +
             " | " + util::fmt(r.seconds, 3) + " | " + util::fmt(r.speedup, 2) + "x | " +
             std::to_string(r.warm_allocs) + " | " + (r.identical ? "yes" : "NO") + " |\n";
  }
  bench::insert_ledger_entry("<!-- bench_train_scaling inserts runs below this line -->",
                             entry);
}

}  // namespace

int main() {
  bench::print_header("Training scaling",
                      "workspace-batched COMA* training, worker sweep on SWAN");
  auto inst = bench::make_instance("SWAN");
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  const std::size_t pool_threads = util::ThreadPool::global().size() + 1;

  core::ComaConfig cfg;
  cfg.epochs = bench::fast_mode() ? 1 : 3;
  cfg.lr = 3e-3;
  cfg.rollout_batch = static_cast<int>(pool_threads);

  // Sweep: 1, 2, 4, ... up to the pool width, the pool width itself, auto.
  std::vector<int> sweep{1};
  for (int w = 2; w < static_cast<int>(pool_threads); w *= 2) sweep.push_back(w);
  if (pool_threads > 1) sweep.push_back(static_cast<int>(pool_threads));
  sweep.push_back(0);  // auto

  util::Table table({"workers", "train wall s", "speedup", "warm allocs", "identical"});
  util::Table csv({"workers", "train_wall_s", "speedup", "warm_step_allocs", "identical"});
  std::vector<SweepRow> rows;
  std::vector<std::vector<double>> ref_params;
  double base_s = 0.0;
  for (int requested : sweep) {
    // Fresh deterministic model per point: training itself is the workload.
    core::TealModel model(core::TealModelConfig{}, inst->pb.k_paths(), /*seed=*/3);
    cfg.workers = requested;
    util::Timer timer;
    auto stats =
        core::train_coma(model, inst->pb, inst->split.train, te::Objective::kTotalFlow, cfg);
    SweepRow row;
    row.workers = requested;
    row.seconds = timer.seconds();
    row.warm_allocs = stats.warm_step_allocs;
    if (requested == 1) {
      base_s = row.seconds;
      ref_params = snapshot_params(model);
    }
    row.speedup = row.seconds > 0.0 && base_s > 0.0 ? base_s / row.seconds : 0.0;
    row.identical = params_equal(ref_params, snapshot_params(model));
    rows.push_back(row);
    const std::string req = requested == 0 ? "auto" : std::to_string(requested);
    table.add_row({req, util::fmt(row.seconds, 3), util::fmt(row.speedup, 2),
                   std::to_string(row.warm_allocs), row.identical ? "yes" : "NO"});
    csv.add_row({req, util::fmt(row.seconds, 4), util::fmt(row.speedup, 3),
                 std::to_string(row.warm_allocs), row.identical ? "1" : "0"});
  }
  std::printf("%s", table.to_string().c_str());

  bool all_identical = true, allocs_clean = true;
  for (const auto& r : rows) {
    all_identical = all_identical && r.identical;
    allocs_clean = allocs_clean && r.warm_allocs == 0;
  }
  std::printf("  parameters bit-identical to the 1-worker run at every sweep point: %s\n",
              all_identical ? "yes" : "NO");
  std::printf("  warm training steps allocation-free at every sweep point: %s\n",
              allocs_clean ? "yes" : "NO");
  double speedup_at_4 = 0.0;
  for (const auto& r : rows) {
    if (r.workers == 4) speedup_at_4 = r.speedup;
  }
  if (speedup_at_4 > 0.0) {
    std::printf("  training speedup at 4 workers: %.2fx (meaningful only on >= 4\n"
                "  hardware threads)\n", speedup_at_4);
  } else {
    std::printf("  4-worker point not reached (pool %zu threads); run on >= 4 cores\n"
                "  for the full sweep\n", pool_threads);
  }

  csv.write_csv(bench::out_dir() + "/train_scaling.csv");
  append_experiments_ledger(rows, inst->pb.num_demands(), cfg.rollout_batch, pool_threads,
                            hw);
  return all_identical && allocs_clean ? 0 : 1;
}
