// fig16_tsne — regenerates Figure 16: a t-SNE projection of the flow
// embeddings FlowGNN learns on SWAN, color-coded by whether the path is
// "busy" in LP-all's optimal allocation (i.e. carries the largest split
// ratio among its demand's paths).
//
// The paper's reading: busy paths form a visible cluster — the embeddings
// encode path congestion — with a few outliers caused by the TE problem
// having multiple near-optimal solutions. We quantify the cluster with a
// separation score (mean distance to the busy centroid vs the non-busy
// centroid) and write the 2-D coordinates for plotting.
#include <cstdio>

#include "analysis/tsne.h"
#include "bench/common.h"
#include "util/rng.h"

using namespace teal;

int main() {
  bench::print_header("Figure 16", "t-SNE of FlowGNN flow embeddings on SWAN");
  auto inst = bench::make_instance("SWAN");
  const auto& tm = inst->split.test.at(0);

  // Trained Teal model (reuses the fig06 cache when present).
  core::TealSchemeConfig cfg;
  core::TealTrainOptions opts;
  opts.coma.epochs = bench::fast_mode() ? 1 : 4;
  opts.coma.lr = 3e-3;
  opts.cache_path = bench::model_cache_path(inst->name, te::Objective::kTotalFlow);
  core::TealModel model(cfg.model, inst->pb.k_paths());
  core::train_or_load_model(model, inst->pb, inst->split.train,
                            te::Objective::kTotalFlow, opts);
  auto fwd = model.forward(inst->pb, tm);

  // Busy labels from LP-all's (near-)optimal allocation.
  auto lp_alloc = lp::solve_flow_lp(inst->pb, tm);
  std::vector<char> busy(static_cast<std::size_t>(inst->pb.total_paths()), 0);
  for (int d = 0; d < inst->pb.num_demands(); ++d) {
    int best = inst->pb.path_begin(d);
    for (int p = inst->pb.path_begin(d); p < inst->pb.path_end(d); ++p) {
      if (lp_alloc.split[static_cast<std::size_t>(p)] >
          lp_alloc.split[static_cast<std::size_t>(best)]) {
        best = p;
      }
    }
    busy[static_cast<std::size_t>(best)] = 1;
  }

  // Subsample paths to keep exact t-SNE tractable.
  const int n_points = bench::fast_mode() ? 300 : 1200;
  util::Rng rng(3);
  auto pick = rng.sample_without_replacement(
      static_cast<std::size_t>(inst->pb.total_paths()),
      std::min<std::size_t>(static_cast<std::size_t>(n_points),
                            static_cast<std::size_t>(inst->pb.total_paths())));
  std::vector<std::vector<double>> points;
  std::vector<char> labels;
  const int dim = fwd.gnn.final_paths.cols();
  for (std::size_t idx : pick) {
    const double* row = fwd.gnn.final_paths.row_ptr(static_cast<int>(idx));
    points.emplace_back(row, row + dim);
    labels.push_back(busy[idx]);
  }

  analysis::TsneConfig tcfg;
  tcfg.n_iterations = bench::fast_mode() ? 150 : 400;
  auto y = analysis::tsne_2d(points, tcfg);

  // Separation score: for busy points, distance to busy centroid should be
  // smaller than to the non-busy centroid (and vice versa).
  double cb[2] = {0, 0}, cn[2] = {0, 0};
  int nb = 0, nn = 0;
  for (std::size_t i = 0; i < y.size(); ++i) {
    if (labels[i]) {
      cb[0] += y[i][0];
      cb[1] += y[i][1];
      ++nb;
    } else {
      cn[0] += y[i][0];
      cn[1] += y[i][1];
      ++nn;
    }
  }
  for (double& v : cb) v /= std::max(1, nb);
  for (double& v : cn) v /= std::max(1, nn);
  int correct = 0;
  for (std::size_t i = 0; i < y.size(); ++i) {
    double db = std::hypot(y[i][0] - cb[0], y[i][1] - cb[1]);
    double dn = std::hypot(y[i][0] - cn[0], y[i][1] - cn[1]);
    if ((labels[i] && db < dn) || (!labels[i] && dn < db)) ++correct;
  }
  double purity = 100.0 * correct / std::max<std::size_t>(1, y.size());

  util::Table csv({"x", "y", "busy"});
  for (std::size_t i = 0; i < y.size(); ++i) {
    csv.add_row({util::fmt(y[i][0], 4), util::fmt(y[i][1], 4),
                 labels[i] ? "1" : "0"});
  }
  csv.write_csv(bench::out_dir() + "/fig16_tsne.csv");

  std::printf("  %zu paths projected (%d busy, %d other)\n", y.size(), nb, nn);
  std::printf("  nearest-centroid label purity: %.1f%% (50%% = no structure)\n", purity);
  std::printf("\nExpected shape: purity well above chance — the embeddings separate\n"
              "busy from non-busy paths, with a minority of outliers (multiple\n"
              "near-optimal solutions). Coordinates in bench_out/fig16_tsne.csv.\n");
  return 0;
}
