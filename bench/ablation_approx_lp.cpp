// ablation_approx_lp — measures the §2.1 claim that combinatorial
// approximation algorithms (Fleischer-style multiplicative weights) are
// "hardly faster in practice" than LP engines despite better asymptotics:
// their iteration count explodes as the approximation knob eps tightens,
// while the LP engine's quality/time point dominates. Also shows Teal-style
// inference cost (one untrained forward + ADMM) for scale.
#include <cstdio>

#include "bench/common.h"
#include "core/admm.h"
#include "core/model.h"
#include "lp/fleischer.h"
#include "util/timer.h"

using namespace teal;

int main() {
  bench::print_header("Ablation (§2.1)", "approximation algorithms vs LP engine vs inference");
  auto inst = bench::make_instance("Kdl");
  const auto& tm = inst->split.test.at(0);
  util::Table table({"solver", "satisfied (%)", "time (s)", "iterations"});

  {
    util::Timer t;
    lp::FlowLpInfo info;
    auto a = lp::solve_flow_lp(inst->pb, tm, {}, {}, &info);
    table.add_row({"LP engine (PDHG)",
                   util::fmt(te::satisfied_demand_pct(inst->pb, tm, a), 1),
                   util::fmt(t.seconds(), 3), std::to_string(info.iterations)});
  }
  for (double eps : {0.4, 0.2, 0.1}) {
    util::Timer t;
    lp::FleischerOptions opt;
    opt.eps = eps;
    lp::FleischerResult res;
    auto a = lp::fleischer_max_flow(inst->pb, tm, opt, &res);
    table.add_row({"Fleischer eps=" + util::fmt(eps, 2),
                   util::fmt(te::satisfied_demand_pct(inst->pb, tm, a), 1),
                   util::fmt(t.seconds(), 3), std::to_string(res.iterations)});
  }
  {
    // One NN forward + 5 ADMM iterations (untrained weights: the cost is
    // identical to a trained model's — that is the point).
    core::TealModel model({}, inst->pb.k_paths());
    core::Admm admm(inst->pb, {});
    util::Timer t;
    auto fwd = model.forward(inst->pb, tm);
    auto a = core::allocation_from_splits(
        inst->pb, core::splits_from_logits(fwd.logits, fwd.mask));
    admm.fine_tune(tm, inst->pb.capacities(), a);
    table.add_row({"NN forward + ADMM (cost only)", "-", util::fmt(t.seconds(), 3), "5"});
  }
  std::printf("%s", table.to_string().c_str());
  std::printf("\nShape: Fleischer needs far more iterations as eps tightens and does not\n"
              "beat the LP engine's quality/time point (§2.1); inference cost is flat.\n");
  table.write_csv(bench::out_dir() + "/ablation_approx_lp.csv");
  return 0;
}
