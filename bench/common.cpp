#include "bench/common.h"

#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <filesystem>
#include <fstream>
#include <iterator>

#include "util/thread_pool.h"

namespace teal::bench {

bool fast_mode() {
  const char* env = std::getenv("TEAL_BENCH_FAST");
  return env != nullptr && std::string(env) == "1";
}

TopoScale default_scale(const std::string& topo) {
  // target_sp_sat: shortest-path routing satisfies ~72% of the mean matrix,
  // putting the TE optimum in the high 80s like the paper's figures.
  if (topo == "B4") return {1 << 20, 60, 72.0};
  if (topo == "SWAN") return {4000, 50, 72.0};
  if (topo == "UsCarrier") return {3000, 50, 72.0};
  if (topo == "Kdl") return {3000, 40, 72.0};
  if (topo == "ASN") return {6000, 40, 72.0};
  // Scales are tuned per bundled topology; inventing one for an unknown (or
  // generated) name would silently mis-cost every downstream knob. Generated
  // topologies go through src/scenario/ (bench_scenario_matrix), which sizes
  // its own instances.
  throw std::invalid_argument(
      "default_scale: unknown topology '" + topo +
      "' (bundled: B4, SWAN, UsCarrier, Kdl, ASN; generated topologies are "
      "driven by bench_scenario_matrix, not the figure benches)");
}

std::unique_ptr<Instance> make_instance(const std::string& topo, std::uint64_t seed) {
  TopoScale scale = default_scale(topo);
  if (fast_mode()) {
    scale.n_demands = std::min(scale.n_demands, 300);
    scale.n_intervals = 20;
  }
  auto g = topo::make_topology(topo, seed);
  auto demands = traffic::sample_demands(g, scale.n_demands, seed + 1);
  te::Problem pb(std::move(g), std::move(demands), 4);
  traffic::TraceConfig tcfg;
  tcfg.n_intervals = scale.n_intervals;
  tcfg.seed = seed + 2;
  auto trace = traffic::generate_trace(pb, tcfg);
  traffic::calibrate_capacities_to_satisfied(pb, trace, scale.target_sp_sat);
  auto split = traffic::split_trace(trace);
  return std::make_unique<Instance>(topo, std::move(pb), std::move(split), scale);
}

std::string out_dir() {
  auto dir = std::filesystem::path("bench_out");
  std::filesystem::create_directories(dir);
  return dir.string();
}

std::string model_cache_path(const std::string& topo, te::Objective obj) {
  auto dir = std::filesystem::path("models");
  std::filesystem::create_directories(dir);
  // FlowGNN/policy weights are topology-size independent (shared layers), so
  // a cached model would load for *any* scale — key the cache by the bench
  // scale to keep fast-mode and full-run models apart.
  const std::string scale_tag = fast_mode() ? "fast" : "full";
  // Training-semantics version: bump whenever the trained bits change for
  // the same seed/config (t2 = the PR 5 deterministic noise streams +
  // rollout batching; t3 = counter-based noise RNG + the Rng spare-caching
  // fix, which shift both the traces and the exploration noise), so stale
  // caches re-train instead of silently loading old-semantics weights —
  // load_params checks only shapes, not provenance.
  const std::string train_tag = "t3";
  return (dir / (topo + "_" + te::to_string(obj) + "_" + scale_tag + "_" + train_tag + ".bin"))
      .string();
}

std::unique_ptr<core::TealScheme> make_teal(Instance& inst, te::Objective obj,
                                            bool use_admm) {
  core::TealSchemeConfig cfg;
  cfg.objective = obj;
  cfg.use_admm = use_admm && obj == te::Objective::kTotalFlow;  // §5.5 omits ADMM
  core::TealTrainOptions opts;
  opts.trainer = core::Trainer::kComaStar;
  opts.coma.epochs = fast_mode() ? 2 : 10;
  opts.coma.lr = 3e-3;
  opts.coma.mc_samples = 4;
  opts.coma.validation = &inst.split.val;  // epoch snapshot selection
  // Workspace-batched training (core::TrainContext). The rollout batch is a
  // fixed constant, NOT sized to the machine: batch size changes
  // optimizer-step granularity and therefore the trained bits, and cached
  // models must be identical on every host (the determinism contract). Only
  // the worker count — pure throughput, bit-identical for every value — may
  // vary per machine (TEAL_TRAIN_WORKERS; 0/garbage = auto).
  opts.rollout_batch = 4;
  opts.workers =
      static_cast<int>(util::pool_threads_from_env(std::getenv("TEAL_TRAIN_WORKERS")));
  opts.cache_path = model_cache_path(inst.name, obj);
  return core::make_teal_scheme(inst.pb, inst.split.train, cfg, opts);
}

std::unique_ptr<te::Scheme> make_baseline(const std::string& name, Instance& inst,
                                          te::Objective obj) {
  baselines::LpSchemeConfig lcfg;
  lcfg.objective = obj;
  if (name == "LP-all") return std::make_unique<baselines::LpAllScheme>(lcfg);
  if (name == "LP-top") return std::make_unique<baselines::LpTopScheme>(0.10, lcfg);
  if (name == "NCFlow") return std::make_unique<baselines::NcFlowScheme>(inst.pb);
  if (name == "POP") {
    baselines::PopConfig pcfg;
    pcfg.k = baselines::default_pop_replicas(inst.pb.graph().num_nodes());
    return std::make_unique<baselines::PopScheme>(pcfg);
  }
  if (name == "TEAVAR*") return std::make_unique<baselines::TeavarStarScheme>();
  throw std::invalid_argument("make_baseline: unknown scheme " + name);
}

double OfflineSeries::mean_satisfied() const { return util::mean(satisfied_pct); }
double OfflineSeries::mean_seconds() const { return util::mean(solve_seconds); }

OfflineSeries run_offline(te::Scheme& scheme, const Instance& inst,
                          const traffic::Trace& trace) {
  OfflineSeries out;
  if (scheme.has_warm_state() && trace.size() > 0) {
    // Untimed warmup: one-time workspace construction is excluded from the
    // computation-time metric (§5.1), matching fig06/fig07.
    te::Allocation scratch;
    scheme.solve_into(inst.pb, trace.at(0), scratch);
  }
  te::BatchSolve batch =
      te::solve_batch_sequential(scheme, inst.pb, std::span(trace.matrices));
  out.solve_seconds = std::move(batch.solve_seconds);
  out.allocs = std::move(batch.allocs);
  out.satisfied_pct.reserve(out.allocs.size());
  for (int t = 0; t < trace.size(); ++t) {
    out.satisfied_pct.push_back(
        te::satisfied_demand_pct(inst.pb, trace.at(t), out.allocs[static_cast<std::size_t>(t)]));
  }
  return out;
}

double paper_seconds(const std::string& scheme, const std::string& topo) {
  // Figure 6a/7a readings and quoted numbers. §5.3 gives ASN: LP-top 191 s,
  // POP 382 s, NCFlow 606 s, Teal < 1 s; §5.2 gives Kdl multipliers relative
  // to Teal's 0.95 s and LP-all's 5.5 h on ASN.
  struct Entry {
    const char* scheme;
    const char* topo;
    double seconds;
  };
  static const Entry kTable[] = {
      {"LP-all", "B4", 0.05},     {"LP-top", "B4", 0.1},    {"NCFlow", "B4", 0.2},
      {"POP", "B4", 0.05},        {"Teal", "B4", 0.005},    {"TEAVAR*", "B4", 60.0},
      {"LP-all", "SWAN", 0.8},    {"LP-top", "SWAN", 1.0},  {"NCFlow", "SWAN", 2.0},
      {"POP", "SWAN", 0.8},       {"Teal", "SWAN", 0.01},
      {"LP-all", "UsCarrier", 2.0}, {"LP-top", "UsCarrier", 2.5},
      {"NCFlow", "UsCarrier", 5.0}, {"POP", "UsCarrier", 3.0},
      {"Teal", "UsCarrier", 0.02},
      {"LP-all", "Kdl", 585.0},   {"LP-top", "Kdl", 26.0},  {"NCFlow", "Kdl", 6.7},
      {"POP", "Kdl", 12.0},       {"Teal", "Kdl", 0.95},
      {"LP-all", "ASN", 19800.0}, {"LP-top", "ASN", 191.0}, {"NCFlow", "ASN", 606.0},
      {"POP", "ASN", 382.0},      {"Teal", "ASN", 0.97},
  };
  for (const auto& e : kTable) {
    if (scheme == e.scheme && topo == e.topo) return e.seconds;
  }
  return 0.0;
}

double scheme_time_scale(const std::string& scheme, const std::string& topo,
                         double measured_median) {
  double paper = paper_seconds(scheme, topo);
  if (paper <= 0.0 || measured_median <= 0.0) return 1.0;
  return paper / measured_median;
}

std::string ledger_stamp() {
  char stamp[64] = "unknown";
  const std::time_t now = std::time(nullptr);
  if (std::tm* tm = std::localtime(&now)) {
    std::strftime(stamp, sizeof(stamp), "%Y-%m-%d %H:%M", tm);
  }
  return stamp;
}

bool insert_ledger_entry(const std::string& marker, const std::string& entry) {
  std::ifstream in("EXPERIMENTS.md");
  if (!in.good()) {
    std::printf("  (EXPERIMENTS.md not in cwd; ledger entry skipped — run from the repo root)\n");
    return false;
  }
  std::string text((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  in.close();
  const std::size_t pos = text.find(marker);
  if (pos == std::string::npos) {
    std::printf("  (EXPERIMENTS.md lost the ledger marker '%s'; entry skipped —\n"
                "   scripts/check_docs.sh will flag this)\n", marker.c_str());
    return false;
  }
  std::string body = entry;
  while (!body.empty() && body.back() == '\n') body.pop_back();
  text.insert(pos + marker.size(), body);
  std::ofstream out("EXPERIMENTS.md", std::ios::trunc);
  out << text;
  return true;
}

void print_header(const std::string& figure, const std::string& caption) {
  std::setvbuf(stdout, nullptr, _IOLBF, 0);  // live progress when redirected
  std::printf("\n==================================================================\n");
  std::printf("%s — %s\n", figure.c_str(), caption.c_str());
  std::printf("==================================================================\n");
}

}  // namespace teal::bench
