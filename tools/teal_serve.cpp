// teal_serve — standalone TE serving daemon.
//
// Builds the same scaled-down instance the benches use (bench::make_instance,
// so the demand count is reproducible from the topology name + seed), trains
// or loads the cached Teal model, and serves solve requests over the wire
// protocol in src/net/wire.h until SIGINT/SIGTERM. The load generator half is
// tools/teal_slap.cpp; point it at the same --topo so its matrices match this
// server's demand count.
//
//   ./build/teal_serve --topo B4 --port 7419 --replicas 2 \
//       --deadline 0.05 --expected-solve 0.01
//
// --deadline 0 (default) disables admission control: requests queue up to
// --queue and shed only when it overflows. With a deadline, the server sheds
// at the socket any request it cannot start within the deadline.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "bench/common.h"
#include "net/server.h"
#include "serve/replica.h"
#include "serve/server.h"

namespace {

volatile std::sig_atomic_t g_stop = 0;
void on_signal(int) { g_stop = 1; }

[[noreturn]] void usage() {
  std::fprintf(stderr,
               "usage: teal_serve [--topo B4|SWAN|UsCarrier|Kdl|ASN] [--port N]\n"
               "                  [--replicas N] [--queue N] [--deadline SEC]\n"
               "                  [--expected-solve SEC]\n");
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace teal;
  std::string topo = "B4";
  int port = 7419;
  std::size_t replicas = 2;
  serve::ServeConfig scfg;
  for (int i = 1; i < argc; ++i) {
    auto want = [&](const char* flag) {
      if (std::strcmp(argv[i], flag) != 0) return false;
      if (i + 1 >= argc) usage();
      ++i;
      return true;
    };
    if (want("--topo")) {
      topo = argv[i];
    } else if (want("--port")) {
      port = std::atoi(argv[i]);
    } else if (want("--replicas")) {
      replicas = static_cast<std::size_t>(std::atoi(argv[i]));
    } else if (want("--queue")) {
      scfg.queue_capacity = static_cast<std::size_t>(std::atoi(argv[i]));
    } else if (want("--deadline")) {
      scfg.deadline_seconds = std::atof(argv[i]);
    } else if (want("--expected-solve")) {
      scfg.expected_solve_seconds = std::atof(argv[i]);
    } else {
      usage();
    }
  }
  if (port <= 0 || port > 65535 || replicas == 0) usage();

  auto inst = bench::make_instance(topo);
  auto teal = bench::make_teal(*inst);
  serve::Server backend(inst->pb, serve::make_replicas(*teal, replicas), scfg);
  net::NetServerConfig ncfg;
  ncfg.port = static_cast<std::uint16_t>(port);
  net::Server server(backend, inst->pb, ncfg);
  std::printf("teal_serve: %s (%d demands, k=%d), %zu replicas, port %u\n", topo.c_str(),
              inst->pb.num_demands(), inst->pb.k_paths(), replicas, server.port());
  if (backend.admission_depth_bound() > 0) {
    std::printf("  admission: deadline %.3fs, depth bound %zu\n", scfg.deadline_seconds,
                backend.admission_depth_bound());
  } else {
    std::printf("  admission: none (queue bound %zu only)\n", scfg.queue_capacity);
  }
  std::fflush(stdout);

  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);
  while (!g_stop) std::this_thread::sleep_for(std::chrono::milliseconds(100));

  server.stop();
  auto net_stats = server.stats();
  auto stats = backend.stop();
  std::printf("\nteal_serve: stopped. connections %llu, requests %llu, responses %llu,\n"
              "  shed %llu, dropped responses %llu, protocol errors %llu\n",
              static_cast<unsigned long long>(net_stats.connections_accepted),
              static_cast<unsigned long long>(net_stats.sessions.requests),
              static_cast<unsigned long long>(net_stats.sessions.responses),
              static_cast<unsigned long long>(net_stats.sessions.shed),
              static_cast<unsigned long long>(net_stats.dropped_responses),
              static_cast<unsigned long long>(net_stats.sessions.protocol_errors));
  std::printf("  backend: offered %llu = accepted %llu + shed %llu; solve p50 %.3f ms\n",
              static_cast<unsigned long long>(stats.offered),
              static_cast<unsigned long long>(stats.accepted),
              static_cast<unsigned long long>(stats.shed),
              stats.solve.percentile(50.0) * 1e3);
  return 0;
}
