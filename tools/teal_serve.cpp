// teal_serve — standalone TE serving daemon.
//
// Builds the same scaled-down instance the benches use (bench::make_instance,
// so the demand count is reproducible from the topology name + seed), trains
// or loads the cached Teal model, and serves solve requests over the wire
// protocol in src/net/wire.h until SIGINT/SIGTERM. The load generator half is
// tools/teal_slap.cpp; point it at the same --topo so its matrices match this
// server's demand count.
//
//   ./build/teal_serve --topo B4 --port 7419 --replicas 2 \
//       --deadline 0.05 --expected-solve 0.01
//
// Fleet mode: repeat --tenant name=topo[:weight] to serve several topology
// slices from one process. The replica budget (--replicas, 0 = hardware
// concurrency) is split across tenants by --policy (static | round-robin |
// load-proportional); clients pick a slice with the wire tenant field
// (teal_slap --tenant). The optional :weight is the tenant's relative offered
// rate, the load-proportional policy's demand signal.
//
//   ./build/teal_serve --port 7419 --replicas 4 --policy load-proportional \
//       --tenant us=B4:3 --tenant eu=SWAN:1
//
// --deadline 0 (default) disables admission control: requests queue up to
// --queue and shed only when it overflows. With a deadline, the server sheds
// at the socket any request it cannot start within the deadline.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/common.h"
#include "net/server.h"
#include "serve/fleet.h"
#include "serve/replica.h"
#include "serve/server.h"

namespace {

volatile std::sig_atomic_t g_stop = 0;
void on_signal(int) { g_stop = 1; }

[[noreturn]] void usage() {
  std::fprintf(stderr,
               "usage: teal_serve [--topo B4|SWAN|UsCarrier|Kdl|ASN] [--port N]\n"
               "                  [--replicas N] [--queue N] [--deadline SEC]\n"
               "                  [--expected-solve SEC]\n"
               "                  [--tenant NAME=TOPO[:WEIGHT]]...  (fleet mode)\n"
               "                  [--policy static|round-robin|load-proportional]\n");
  std::exit(2);
}

struct TenantArg {
  std::string name;
  std::string topo;
  double weight = 1.0;
};

// Parses "name=topo" or "name=topo:weight".
TenantArg parse_tenant(const char* arg) {
  TenantArg t;
  const std::string s(arg);
  const auto eq = s.find('=');
  if (eq == std::string::npos || eq == 0) usage();
  t.name = s.substr(0, eq);
  std::string rest = s.substr(eq + 1);
  const auto colon = rest.find(':');
  if (colon != std::string::npos) {
    t.weight = std::atof(rest.substr(colon + 1).c_str());
    if (t.weight <= 0.0) usage();
    rest = rest.substr(0, colon);
  }
  if (rest.empty()) usage();
  t.topo = rest;
  return t;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace teal;
  std::string topo = "B4";
  int port = 7419;
  std::size_t replicas = 2;
  bool replicas_given = false;
  std::string policy = "load-proportional";
  std::vector<TenantArg> tenant_args;
  serve::ServeConfig scfg;
  for (int i = 1; i < argc; ++i) {
    auto want = [&](const char* flag) {
      if (std::strcmp(argv[i], flag) != 0) return false;
      if (i + 1 >= argc) usage();
      ++i;
      return true;
    };
    if (want("--topo")) {
      topo = argv[i];
    } else if (want("--port")) {
      port = std::atoi(argv[i]);
    } else if (want("--replicas")) {
      replicas = static_cast<std::size_t>(std::atoi(argv[i]));
      replicas_given = true;
    } else if (want("--queue")) {
      scfg.queue_capacity = static_cast<std::size_t>(std::atoi(argv[i]));
    } else if (want("--deadline")) {
      scfg.deadline_seconds = std::atof(argv[i]);
    } else if (want("--expected-solve")) {
      scfg.expected_solve_seconds = std::atof(argv[i]);
    } else if (want("--tenant")) {
      tenant_args.push_back(parse_tenant(argv[i]));
    } else if (want("--policy")) {
      policy = argv[i];
    } else {
      usage();
    }
  }
  const bool fleet_mode = !tenant_args.empty();
  if (port <= 0 || port > 65535 || (!fleet_mode && replicas == 0)) usage();

  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);

  if (!fleet_mode) {
    auto inst = bench::make_instance(topo);
    auto teal = bench::make_teal(*inst);
    serve::Server backend(inst->pb, serve::make_replicas(*teal, replicas), scfg);
    net::NetServerConfig ncfg;
    ncfg.port = static_cast<std::uint16_t>(port);
    net::Server server(backend, inst->pb, ncfg);
    std::printf("teal_serve: %s (%d demands, k=%d), %zu replicas, port %u\n", topo.c_str(),
                inst->pb.num_demands(), inst->pb.k_paths(), replicas, server.port());
    if (backend.admission_depth_bound() > 0) {
      std::printf("  admission: deadline %.3fs, depth bound %zu\n", scfg.deadline_seconds,
                  backend.admission_depth_bound());
    } else {
      std::printf("  admission: none (queue bound %zu only)\n", scfg.queue_capacity);
    }
    std::fflush(stdout);

    while (!g_stop) std::this_thread::sleep_for(std::chrono::milliseconds(100));

    server.stop();
    auto net_stats = server.stats();
    auto stats = backend.stop();
    std::printf("\nteal_serve: stopped. connections %llu, requests %llu, responses %llu,\n"
                "  shed %llu, dropped responses %llu, protocol errors %llu\n",
                static_cast<unsigned long long>(net_stats.connections_accepted),
                static_cast<unsigned long long>(net_stats.sessions.requests),
                static_cast<unsigned long long>(net_stats.sessions.responses),
                static_cast<unsigned long long>(net_stats.sessions.shed),
                static_cast<unsigned long long>(net_stats.dropped_responses),
                static_cast<unsigned long long>(net_stats.sessions.protocol_errors));
    std::printf("  backend: offered %llu = accepted %llu + shed %llu; solve p50 %.3f ms\n",
                static_cast<unsigned long long>(stats.offered),
                static_cast<unsigned long long>(stats.accepted),
                static_cast<unsigned long long>(stats.shed),
                stats.solve.percentile(50.0) * 1e3);
    return 0;
  }

  // Fleet mode: one instance + trained scheme per tenant, replicas assigned
  // by the placement policy over the shared budget.
  std::vector<std::unique_ptr<bench::Instance>> instances;
  std::vector<std::unique_ptr<core::TealScheme>> schemes;
  serve::FleetConfig fcfg;
  fcfg.policy = policy;
  fcfg.total_replicas = replicas_given ? replicas : 0;  // 0 = hardware concurrency
  serve::Fleet fleet(std::move(fcfg));
  for (const TenantArg& ta : tenant_args) {
    auto inst = bench::make_instance(ta.topo);
    auto teal = bench::make_teal(*inst);
    serve::TenantConfig tc;
    tc.name = ta.name;
    tc.pb = &inst->pb;
    tc.scheme = teal.get();
    tc.serve = scfg;
    tc.offered_weight = ta.weight;
    fleet.add_tenant(std::move(tc));
    instances.push_back(std::move(inst));
    schemes.push_back(std::move(teal));
  }
  fleet.start();

  net::NetServerConfig ncfg;
  ncfg.port = static_cast<std::uint16_t>(port);
  net::Server server(fleet, ncfg);
  std::printf("teal_serve: fleet of %zu tenants (%s placement), port %u\n",
              fleet.n_tenants(), policy.c_str(), server.port());
  for (std::size_t t = 0; t < tenant_args.size(); ++t) {
    std::printf("  tenant %-12s %s (%d demands, k=%d), %zu replicas, weight %.1f\n",
                tenant_args[t].name.c_str(), tenant_args[t].topo.c_str(),
                instances[t]->pb.num_demands(), instances[t]->pb.k_paths(),
                fleet.replicas(tenant_args[t].name), tenant_args[t].weight);
  }
  std::fflush(stdout);

  while (!g_stop) std::this_thread::sleep_for(std::chrono::milliseconds(100));

  server.stop();
  auto net_stats = server.stats();
  auto fstats = fleet.stop();
  std::printf("\nteal_serve: stopped. connections %llu, requests %llu, responses %llu,\n"
              "  shed %llu, unknown tenants %llu, dropped responses %llu, protocol errors %llu\n",
              static_cast<unsigned long long>(net_stats.connections_accepted),
              static_cast<unsigned long long>(net_stats.sessions.requests),
              static_cast<unsigned long long>(net_stats.sessions.responses),
              static_cast<unsigned long long>(net_stats.sessions.shed),
              static_cast<unsigned long long>(net_stats.sessions.unknown_tenants),
              static_cast<unsigned long long>(net_stats.dropped_responses),
              static_cast<unsigned long long>(net_stats.sessions.protocol_errors));
  for (const auto& ts : fstats.tenants) {
    std::printf("  tenant %-12s offered %llu = accepted %llu + shed %llu; "
                "solve p50 %.3f ms (%zu replicas)\n",
                ts.name.c_str(), static_cast<unsigned long long>(ts.serve.offered),
                static_cast<unsigned long long>(ts.serve.accepted),
                static_cast<unsigned long long>(ts.serve.shed),
                ts.serve.solve.percentile(50.0) * 1e3, ts.replicas);
  }
  return 0;
}
