// teal_slap — open-loop load generator for teal_serve.
//
// Regenerates the serving workload locally (same bench::make_instance the
// server used, so request demand counts match), then offers it at a fixed
// aggregate rate across N standing connections for the configured duration —
// open loop: the send schedule does not wait for responses, so server
// overload shows up as queueing latency and shed frames rather than a
// politely throttled client. Prints latency percentiles, achieved
// throughput, and the shed/error/dropped accounting.
//
//   ./build/teal_serve --topo B4 --port 7419 &
//   ./build/teal_slap --topo B4 --port 7419 --rps 400 --connections 8 --duration 5
//
// Fleet mode: repeat --tenant name=topo[:weight] to split the aggregate rate
// across a teal_serve fleet's tenants (weights are relative shares of --rps;
// the topo regenerates that tenant's matrices so demand counts match). The
// summary then adds a per-tenant breakdown, each line obeying the same
// ledger invariant as the total: offered == responses + shed + errors +
// dropped.
//
//   ./build/teal_slap --port 7419 --rps 400 --tenant us=B4:3 --tenant eu=SWAN:1
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench/common.h"
#include "net/slap.h"

namespace {

[[noreturn]] void usage() {
  std::fprintf(stderr,
               "usage: teal_slap [--host H] [--port N] [--topo B4|SWAN|UsCarrier|Kdl|ASN]\n"
               "                 [--rps R] [--connections N] [--duration SEC] [--grace SEC]\n"
               "                 [--tenant NAME=TOPO[:WEIGHT]]...  (fleet mode)\n");
  std::exit(2);
}

struct TenantArg {
  std::string name;
  std::string topo;
  double weight = 1.0;
};

// Parses "name=topo" or "name=topo:weight" (same syntax as teal_serve).
TenantArg parse_tenant(const char* arg) {
  TenantArg t;
  const std::string s(arg);
  const auto eq = s.find('=');
  if (eq == std::string::npos || eq == 0) usage();
  t.name = s.substr(0, eq);
  std::string rest = s.substr(eq + 1);
  const auto colon = rest.find(':');
  if (colon != std::string::npos) {
    t.weight = std::atof(rest.substr(colon + 1).c_str());
    if (t.weight <= 0.0) usage();
    rest = rest.substr(0, colon);
  }
  if (rest.empty()) usage();
  t.topo = rest;
  return t;
}

std::vector<teal::te::TrafficMatrix> load_requests(const std::string& topo) {
  auto inst = teal::bench::make_instance(topo);
  std::vector<teal::te::TrafficMatrix> requests;
  for (int i = 0; i < inst->split.test.size(); ++i) {
    requests.push_back(inst->split.test.at(i));
  }
  return requests;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace teal;
  std::string topo = "B4";
  std::vector<TenantArg> tenant_args;
  net::SlapConfig cfg;
  cfg.port = 7419;
  for (int i = 1; i < argc; ++i) {
    auto want = [&](const char* flag) {
      if (std::strcmp(argv[i], flag) != 0) return false;
      if (i + 1 >= argc) usage();
      ++i;
      return true;
    };
    if (want("--host")) {
      cfg.host = argv[i];
    } else if (want("--port")) {
      cfg.port = static_cast<std::uint16_t>(std::atoi(argv[i]));
    } else if (want("--topo")) {
      topo = argv[i];
    } else if (want("--rps")) {
      cfg.target_rps = std::atof(argv[i]);
    } else if (want("--connections")) {
      cfg.connections = std::atoi(argv[i]);
    } else if (want("--duration")) {
      cfg.duration_seconds = std::atof(argv[i]);
    } else if (want("--grace")) {
      cfg.drain_grace_seconds = std::atof(argv[i]);
    } else if (want("--tenant")) {
      tenant_args.push_back(parse_tenant(argv[i]));
    } else {
      usage();
    }
  }
  if (cfg.port == 0 || cfg.connections <= 0 || cfg.target_rps <= 0.0) usage();

  std::vector<net::SlapWorkload> workloads;
  if (tenant_args.empty()) {
    net::SlapWorkload w;
    w.requests = load_requests(topo);
    workloads.push_back(std::move(w));
    std::printf("teal_slap: %s -> %s:%u, %.1f req/s over %d connections for %.1fs\n",
                topo.c_str(), cfg.host.c_str(), cfg.port, cfg.target_rps, cfg.connections,
                cfg.duration_seconds);
  } else {
    for (const TenantArg& ta : tenant_args) {
      net::SlapWorkload w;
      w.tenant = ta.name;
      w.weight = ta.weight;
      w.requests = load_requests(ta.topo);
      workloads.push_back(std::move(w));
    }
    std::printf("teal_slap: %zu tenants -> %s:%u, %.1f req/s over %d connections for %.1fs\n",
                workloads.size(), cfg.host.c_str(), cfg.port, cfg.target_rps,
                cfg.connections, cfg.duration_seconds);
    for (const TenantArg& ta : tenant_args) {
      std::printf("  tenant %-12s %s, weight %.1f\n", ta.name.c_str(), ta.topo.c_str(),
                  ta.weight);
    }
  }
  std::fflush(stdout);

  auto stats = net::run_slap(cfg, workloads);
  if (stats.offered == 0) {
    std::fprintf(stderr, "teal_slap: nothing sent (connect failed or zero schedule)\n");
    return 1;
  }
  std::printf("  offered   %llu (achieved %.1f req/s)\n",
              static_cast<unsigned long long>(stats.offered), stats.achieved_rps);
  std::printf("  responses %llu (%.1f/s over the run)\n",
              static_cast<unsigned long long>(stats.responses), stats.response_rate());
  std::printf("  shed      %llu (%.1f%%)   errors %llu   dropped %llu\n",
              static_cast<unsigned long long>(stats.shed), stats.shed_pct(),
              static_cast<unsigned long long>(stats.errors),
              static_cast<unsigned long long>(stats.dropped));
  if (stats.latency.count() > 0) {
    std::printf("  latency   p50 %.3f ms   p90 %.3f ms   p99 %.3f ms   max %.3f ms\n",
                stats.latency.percentile(50.0) * 1e3, stats.latency.percentile(90.0) * 1e3,
                stats.latency.percentile(99.0) * 1e3, stats.latency.max_seconds() * 1e3);
  }
  if (stats.tenants.size() > 1) {
    for (const auto& ts : stats.tenants) {
      std::printf("  tenant %-12s offered %llu = responses %llu + shed %llu + "
                  "errors %llu + dropped %llu",
                  ts.tenant.c_str(), static_cast<unsigned long long>(ts.offered),
                  static_cast<unsigned long long>(ts.responses),
                  static_cast<unsigned long long>(ts.shed),
                  static_cast<unsigned long long>(ts.errors),
                  static_cast<unsigned long long>(ts.dropped));
      if (ts.latency.count() > 0) {
        std::printf("   p50 %.3f ms   p99 %.3f ms", ts.latency.percentile(50.0) * 1e3,
                    ts.latency.percentile(99.0) * 1e3);
      }
      std::printf("\n");
    }
  }
  return stats.errors == 0 ? 0 : 1;
}
