// teal_slap — open-loop load generator for teal_serve.
//
// Regenerates the serving workload locally (same bench::make_instance the
// server used, so request demand counts match), then offers it at a fixed
// aggregate rate across N standing connections for the configured duration —
// open loop: the send schedule does not wait for responses, so server
// overload shows up as queueing latency and shed frames rather than a
// politely throttled client. Prints latency percentiles, achieved
// throughput, and the shed/error/dropped accounting.
//
//   ./build/teal_serve --topo B4 --port 7419 &
//   ./build/teal_slap --topo B4 --port 7419 --rps 400 --connections 8 --duration 5
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench/common.h"
#include "net/slap.h"

namespace {

[[noreturn]] void usage() {
  std::fprintf(stderr,
               "usage: teal_slap [--host H] [--port N] [--topo B4|SWAN|UsCarrier|Kdl|ASN]\n"
               "                 [--rps R] [--connections N] [--duration SEC] [--grace SEC]\n");
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace teal;
  std::string topo = "B4";
  net::SlapConfig cfg;
  cfg.port = 7419;
  for (int i = 1; i < argc; ++i) {
    auto want = [&](const char* flag) {
      if (std::strcmp(argv[i], flag) != 0) return false;
      if (i + 1 >= argc) usage();
      ++i;
      return true;
    };
    if (want("--host")) {
      cfg.host = argv[i];
    } else if (want("--port")) {
      cfg.port = static_cast<std::uint16_t>(std::atoi(argv[i]));
    } else if (want("--topo")) {
      topo = argv[i];
    } else if (want("--rps")) {
      cfg.target_rps = std::atof(argv[i]);
    } else if (want("--connections")) {
      cfg.connections = std::atoi(argv[i]);
    } else if (want("--duration")) {
      cfg.duration_seconds = std::atof(argv[i]);
    } else if (want("--grace")) {
      cfg.drain_grace_seconds = std::atof(argv[i]);
    } else {
      usage();
    }
  }
  if (cfg.port == 0 || cfg.connections <= 0 || cfg.target_rps <= 0.0) usage();

  auto inst = bench::make_instance(topo);
  std::vector<te::TrafficMatrix> requests;
  for (int i = 0; i < inst->split.test.size(); ++i) {
    requests.push_back(inst->split.test.at(i));
  }
  std::printf("teal_slap: %s -> %s:%u, %.1f req/s over %d connections for %.1fs\n",
              topo.c_str(), cfg.host.c_str(), cfg.port, cfg.target_rps, cfg.connections,
              cfg.duration_seconds);
  std::fflush(stdout);

  auto stats = net::run_slap(cfg, requests);
  if (stats.offered == 0) {
    std::fprintf(stderr, "teal_slap: nothing sent (connect failed or zero schedule)\n");
    return 1;
  }
  std::printf("  offered   %llu (achieved %.1f req/s)\n",
              static_cast<unsigned long long>(stats.offered), stats.achieved_rps);
  std::printf("  responses %llu (%.1f/s over the run)\n",
              static_cast<unsigned long long>(stats.responses), stats.response_rate());
  std::printf("  shed      %llu (%.1f%%)   errors %llu   dropped %llu\n",
              static_cast<unsigned long long>(stats.shed), stats.shed_pct(),
              static_cast<unsigned long long>(stats.errors),
              static_cast<unsigned long long>(stats.dropped));
  if (stats.latency.count() > 0) {
    std::printf("  latency   p50 %.3f ms   p90 %.3f ms   p99 %.3f ms   max %.3f ms\n",
                stats.latency.percentile(50.0) * 1e3, stats.latency.percentile(90.0) * 1e3,
                stats.latency.percentile(99.0) * 1e3, stats.latency.max_seconds() * 1e3);
  }
  return stats.errors == 0 ? 0 : 1;
}
