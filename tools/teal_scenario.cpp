// teal_scenario — scenario-factory front door.
//
// Builds any named scenario (src/scenario/) at a chosen node scale, and
// either exports the generated topology to the topo_io edge-list format
// (offline repro: the export survives save -> load -> save byte-identically)
// or replays it through the serving layer with a cold scheme.
//
//   ./build/teal_scenario --list
//   ./build/teal_scenario --scenario diurnal --nodes 200 --export diurnal.topo
//   ./build/teal_scenario --scenario rolling-failure --nodes 120 --run \
//       --scheme Teal --replicas 2
//
// Every output is a pure function of (--scenario, --nodes, --seed): rerunning
// the same command line regenerates the same topology, trace and failure
// schedule bit-for-bit on any host.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "scenario/scenario.h"
#include "topo/topo_io.h"
#include "util/stats.h"

using namespace teal;

namespace {

[[noreturn]] void usage() {
  std::fprintf(stderr,
               "usage: teal_scenario --list\n"
               "       teal_scenario --scenario NAME [--nodes N] [--seed S]\n"
               "                     [--export PATH] [--run] [--scheme NAME]\n"
               "                     [--replicas N]\n"
               "\n"
               "  --list            print the named scenarios and exit\n"
               "  --scenario NAME   scenario preset (see --list)\n"
               "  --nodes N         topology size (default 200)\n"
               "  --seed S          master seed (default 1)\n"
               "  --export PATH     write the generated topology (topo_io format)\n"
               "  --run             replay through the serving layer\n"
               "  --scheme NAME     Teal | LP-all | LP-top (default Teal)\n"
               "  --replicas N      serving replicas for --run (default 2)\n");
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  std::string scenario_name, export_path, scheme_name = "Teal";
  int nodes = 200;
  std::uint64_t seed = 1;
  std::size_t replicas = 2;
  bool do_run = false;

  for (int i = 1; i < argc; ++i) {
    auto need = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "teal_scenario: %s needs a value\n", flag);
        usage();
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--list") == 0) {
      for (const auto& n : scenario::scenario_names()) std::printf("%s\n", n.c_str());
      return 0;
    } else if (std::strcmp(argv[i], "--scenario") == 0) {
      scenario_name = need("--scenario");
    } else if (std::strcmp(argv[i], "--nodes") == 0) {
      nodes = std::atoi(need("--nodes"));
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      seed = std::strtoull(need("--seed"), nullptr, 10);
    } else if (std::strcmp(argv[i], "--export") == 0) {
      export_path = need("--export");
    } else if (std::strcmp(argv[i], "--run") == 0) {
      do_run = true;
    } else if (std::strcmp(argv[i], "--scheme") == 0) {
      scheme_name = need("--scheme");
    } else if (std::strcmp(argv[i], "--replicas") == 0) {
      replicas = static_cast<std::size_t>(std::atoi(need("--replicas")));
    } else {
      std::fprintf(stderr, "teal_scenario: unknown flag %s\n", argv[i]);
      usage();
    }
  }
  if (scenario_name.empty()) usage();
  if (nodes < 3 || replicas < 1) {
    std::fprintf(stderr, "teal_scenario: --nodes must be >= 3, --replicas >= 1\n");
    return 2;
  }

  try {
    scenario::ScenarioSpec spec = scenario::named_scenario(scenario_name, nodes, seed);
    scenario::Scenario sc = scenario::build_scenario(spec);
    std::printf("scenario %s: %d nodes, %d links, %d demands, %d intervals, "
                "%zu failure events (seed %llu)\n",
                sc.name.c_str(), sc.pb.graph().num_nodes(),
                sc.pb.graph().num_edges() / 2, sc.pb.num_demands(),
                sc.trace.size(), sc.failures.size(),
                static_cast<unsigned long long>(seed));

    if (!export_path.empty()) {
      topo::save_topology_file(sc.pb.graph(), export_path);
      std::printf("wrote topology to %s\n", export_path.c_str());
    }

    if (do_run) {
      auto scheme = scenario::make_cold_scheme(scheme_name, sc.pb);
      sim::ServedConfig cfg;
      cfg.n_replicas = replicas;
      cfg.serve.queue_capacity = static_cast<std::size_t>(sc.trace.size());
      auto res = scenario::run_scenario(
          *scheme, sc, cfg, scenario::cold_scheme_factory(scheme_name, sc.pb));
      std::printf("%s x %s: %d epochs, satisfied %s%%, offered %llu, shed %llu, "
                  "p50 %s ms, p99 %s ms\n",
                  scheme_name.c_str(), sc.name.c_str(), res.n_epochs,
                  util::fmt(res.mean_satisfied_pct, 1).c_str(),
                  static_cast<unsigned long long>(res.stats.offered),
                  static_cast<unsigned long long>(res.stats.shed),
                  util::fmt(res.stats.response.percentile(50.0) * 1e3, 3).c_str(),
                  util::fmt(res.stats.response.percentile(99.0) * 1e3, 3).c_str());
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "teal_scenario: %s\n", e.what());
    return 1;
  }
  return 0;
}
