// online_control_loop — the 5-minute TE control loop of Figure 1, simulated.
//
// Demonstrates the systems point of the paper: the *wall-clock* cost of the
// solver feeds back into allocation quality because routes stay stale while
// the solver runs. We simulate a slow solver (an artificially time-scaled
// LP) against Teal on a Kdl-like topology and print the per-interval
// satisfied demand, reproducing Figure 18's dynamics in miniature.
#include <cstdio>

#include "baselines/lp_schemes.h"
#include "core/teal_scheme.h"
#include "sim/online.h"
#include "topo/topology.h"
#include "traffic/traffic.h"

using namespace teal;

int main() {
  topo::Graph g = topo::make_kdl_like();
  te::Problem problem(g, traffic::sample_demands(g, 1500, 11), 4);
  traffic::TraceConfig tcfg;
  tcfg.n_intervals = 40;
  traffic::Trace trace = traffic::generate_trace(problem, tcfg);
  traffic::calibrate_capacities_to_satisfied(problem, trace, 72.0);
  auto split = traffic::split_trace(trace);

  core::TealSchemeConfig cfg;
  core::TealTrainOptions opts;
  opts.coma.epochs = 5;
  opts.coma.lr = 3e-3;
  std::printf("training Teal...\n");
  auto teal_scheme = core::make_teal_scheme(problem, split.train, cfg, opts);
  baselines::LpAllScheme lp;

  // Online config: Teal's measured time counts as-is; the LP's measured time
  // is scaled so its median matches the paper's full-scale 585 s on Kdl.
  sim::OnlineConfig teal_cfg;  // time_scale 1.0
  lp.solve(problem, split.test.at(0));
  sim::OnlineConfig lp_cfg;
  lp_cfg.time_scale = 585.0 / std::max(1e-9, lp.last_solve_seconds());

  auto teal_res = sim::run_online(*teal_scheme, problem, split.test, teal_cfg);
  auto lp_res = sim::run_online(lp, problem, split.test, lp_cfg);

  std::printf("\ninterval |  Teal sat%%  |  LP-all sat%% (585s/solve at paper scale)\n");
  for (int t = 0; t < split.test.size(); ++t) {
    std::printf("   %2d    |   %5.1f%%%s   |   %5.1f%%%s\n", t,
                teal_res.intervals[static_cast<std::size_t>(t)].satisfied_pct,
                teal_res.intervals[static_cast<std::size_t>(t)].started_solve ? "*" : " ",
                lp_res.intervals[static_cast<std::size_t>(t)].satisfied_pct,
                lp_res.intervals[static_cast<std::size_t>(t)].started_solve ? "*" : " ");
  }
  std::printf("\n('*' = a new computation started that interval)\n");
  std::printf("mean satisfied: Teal %.1f%% vs LP-all %.1f%%.\n",
              teal_res.mean_satisfied_pct, lp_res.mean_satisfied_pct);
  std::printf("The LP recomputes only every other interval (585 s > the 5-minute\n"
              "budget) and serves the gaps with stale routes; Teal refreshes every\n"
              "interval — §5.2's argument for fast near-optimal solvers. How much\n"
              "staleness costs depends on how fast demands drift between intervals.\n");
  return 0;
}
