// failover — reacting to link failures with fast recomputation (§5.3).
//
// The scenario the paper's Figure 9 motivates: links fail mid-interval, and
// what matters is how quickly the TE scheme can put a new allocation into
// the network. This example fails links on a SWAN-like topology, recomputes
// with Teal (no retraining!) and with the LP engine, and reports the demand
// satisfied on stale routes versus recomputed routes.
#include <cstdio>

#include "baselines/lp_schemes.h"
#include "core/teal_scheme.h"
#include "sim/online.h"
#include "topo/topology.h"
#include "traffic/traffic.h"

using namespace teal;

int main() {
  topo::Graph g = topo::make_swan_like();
  te::Problem problem(g, traffic::sample_demands(g, 1500, 7), 4);
  traffic::TraceConfig tcfg;
  tcfg.n_intervals = 40;
  traffic::Trace trace = traffic::generate_trace(problem, tcfg);
  traffic::calibrate_capacities_to_satisfied(problem, trace, 72.0);
  auto split = traffic::split_trace(trace);

  core::TealSchemeConfig cfg;
  core::TealTrainOptions opts;
  opts.coma.epochs = 6;
  opts.coma.lr = 3e-3;
  std::printf("training Teal on the healthy topology...\n");
  auto teal_scheme = core::make_teal_scheme(problem, split.train, cfg, opts);
  baselines::LpAllScheme lp;

  const te::TrafficMatrix& tm = split.test.at(0);
  for (int n_failures : {2, 5, 10}) {
    auto failed = sim::sample_link_failures(problem.graph(), n_failures,
                                            40 + static_cast<std::uint64_t>(n_failures));
    std::printf("\n--- %d link failures (%zu directed edges) ---\n", n_failures,
                failed.size());
    for (auto* entry : {static_cast<te::Scheme*>(teal_scheme.get()),
                        static_cast<te::Scheme*>(&lp)}) {
      auto res = sim::eval_failure_reaction(*entry, problem, tm, failed, {});
      std::printf("%-8s stale routes %.1f%% -> recomputed %.1f%% (recompute %.3fs)\n",
                  entry->name().c_str(), res.stale_pct, res.recomputed_pct,
                  res.resolve_seconds);
    }
  }
  std::printf("\nNote: Teal used the model trained on the healthy topology — link\n"
              "failures are just capacity-zero inputs to FlowGNN (§5.3); only\n"
              "permanent topology changes warrant retraining (§4).\n");
  return 0;
}
