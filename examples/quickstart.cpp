// quickstart — the smallest end-to-end tour of the library.
//
//   1. build a WAN topology (Google's B4) and the TE problem on it
//      (all-pairs demands, 4 shortest paths each);
//   2. generate a synthetic traffic trace and calibrate link capacities;
//   3. train a Teal model (FlowGNN + policy network) with COMA* RL;
//   4. allocate a test matrix with Teal (forward pass + ADMM) and with the
//      LP engine, and compare satisfied demand and solve time.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/quickstart
#include <cstdio>

#include "baselines/lp_schemes.h"
#include "core/teal_scheme.h"
#include "topo/topology.h"
#include "traffic/traffic.h"

using namespace teal;

int main() {
  // --- 1. Topology and problem.
  topo::Graph g = topo::make_b4();
  te::Problem problem(g, te::all_pairs_demands(g), /*k_paths=*/4);
  std::printf("B4: %d nodes, %d directed edges, %d demands, %d candidate paths\n",
              problem.graph().num_nodes(), problem.graph().num_edges(),
              problem.num_demands(), problem.total_paths());

  // --- 2. Traffic: a 60-interval trace; capacities scaled so shortest-path
  // routing satisfies ~72% (a congested regime where TE quality matters).
  traffic::TraceConfig tcfg;
  tcfg.n_intervals = 60;
  traffic::Trace trace = traffic::generate_trace(problem, tcfg);
  traffic::calibrate_capacities_to_satisfied(problem, trace, 72.0);
  auto split = traffic::split_trace(trace);  // 70/10/20 like the paper

  // --- 3. Train Teal (a small-budget run; §4 trains for much longer).
  core::TealSchemeConfig cfg;  // defaults: 6 FlowGNN blocks, 24-neuron policy
  core::TealTrainOptions opts;
  opts.coma.epochs = 16;
  opts.coma.lr = 3e-3;
  opts.coma.validation = &split.val;  // keep the best epoch's parameters
  std::printf("training Teal with COMA* on %d matrices...\n", split.train.size());
  auto teal_scheme = core::make_teal_scheme(problem, split.train, cfg, opts);

  // --- 4. Allocate one test matrix with Teal and with the LP engine.
  const te::TrafficMatrix& tm = split.test.at(0);
  te::Allocation teal_alloc = teal_scheme->solve(problem, tm);
  double teal_s = teal_scheme->last_solve_seconds();

  baselines::LpAllScheme lp;
  te::Allocation lp_alloc = lp.solve(problem, tm);
  double lp_s = lp.last_solve_seconds();

  std::printf("\n%-10s %18s %12s\n", "scheme", "satisfied demand", "solve time");
  std::printf("%-10s %17.1f%% %11.4fs\n", "Teal",
              te::satisfied_demand_pct(problem, tm, teal_alloc), teal_s);
  std::printf("%-10s %17.1f%% %11.4fs\n", "LP-all",
              te::satisfied_demand_pct(problem, tm, lp_alloc), lp_s);
  std::printf("%-10s %17.1f%%\n", "shortest",
              te::satisfied_demand_pct(problem, tm, problem.shortest_path_allocation()));

  // Split ratios for one demand, the library's actual output.
  int d = 0;
  std::printf("\ndemand %d (%d -> %d), volume %.1f, splits:", d, problem.demand(d).src,
              problem.demand(d).dst, tm.volume[0]);
  for (int p = problem.path_begin(d); p < problem.path_end(d); ++p) {
    std::printf(" %.3f", teal_alloc.split[static_cast<std::size_t>(p)]);
  }
  std::printf("\n");
  return 0;
}
