// objectives — retargeting Teal to a different TE objective (§5.5).
//
// The RL reward is whatever the operator cares about: this example trains one
// model for max-total-flow and another for min-max-link-utilization on the
// same UsCarrier-like topology, then shows how each model's allocation scores
// under both objectives — the flow-trained model fills links, the MLU-trained
// model balances them.
#include <cstdio>

#include "baselines/lp_schemes.h"
#include "core/teal_scheme.h"
#include "lp/path_lp.h"
#include "topo/topology.h"
#include "traffic/traffic.h"

using namespace teal;

int main() {
  topo::Graph g = topo::make_uscarrier_like();
  te::Problem problem(g, traffic::sample_demands(g, 1200, 9), 4);
  traffic::TraceConfig tcfg;
  tcfg.n_intervals = 40;
  traffic::Trace trace = traffic::generate_trace(problem, tcfg);
  traffic::calibrate_capacities_to_satisfied(problem, trace, 75.0);
  auto split = traffic::split_trace(trace);

  core::TealTrainOptions opts;
  opts.coma.epochs = 6;
  opts.coma.lr = 3e-3;

  std::printf("training Teal for total flow...\n");
  core::TealSchemeConfig flow_cfg;
  flow_cfg.objective = te::Objective::kTotalFlow;
  auto teal_flow = core::make_teal_scheme(problem, split.train, flow_cfg, opts);

  std::printf("training Teal for min max-link-utilization...\n");
  core::TealSchemeConfig mlu_cfg;
  mlu_cfg.objective = te::Objective::kMinMaxLinkUtil;
  mlu_cfg.use_admm = false;  // §5.5 omits ADMM for this objective
  auto teal_mlu = core::make_teal_scheme(problem, split.train, mlu_cfg, opts);

  const te::TrafficMatrix& tm = split.test.at(0);
  auto a_flow = teal_flow->solve(problem, tm);
  auto a_mlu = teal_mlu->solve(problem, tm);

  // LP references for both objectives.
  auto lp_flow = lp::solve_flow_lp(problem, tm);
  te::Allocation lp_mlu;
  double lp_mlu_val = lp::solve_min_mlu(problem, tm, {}, &lp_mlu);

  std::printf("\n%-22s %18s %14s\n", "allocation", "satisfied demand", "max link util");
  auto report = [&](const char* name, const te::Allocation& a) {
    std::printf("%-22s %17.1f%% %14.3f\n", name,
                te::satisfied_demand_pct(problem, tm, a),
                te::max_link_utilization(problem, tm, a));
  };
  report("Teal (flow-trained)", a_flow);
  report("Teal (MLU-trained)", a_mlu);
  report("LP optimal flow", lp_flow);
  report("LP optimal MLU", lp_mlu);
  std::printf("\nLP min-MLU value: %.3f (bisection over %s)\n", lp_mlu_val,
              "packing-LP feasibility probes");
  return 0;
}
