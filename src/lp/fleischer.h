// fleischer.h — Fleischer-style multiplicative-weights approximation for the
// path-formulation maximum multicommodity flow.
//
// §2.1 of the paper discusses combinatorial approximation algorithms as a TE
// acceleration candidate and dismisses them: "despite having a lower time
// complexity than LP solvers in theory, these approximation algorithms are
// found to be hardly faster in practice" because they remain iterative,
// incrementally admitting flow until the (1+eps) guarantee is met. We include
// a faithful implementation so that claim can be measured (see the
// approx_lp ablation bench): it exposes the classic eps-vs-runtime tradeoff.
//
// Algorithm (Fleischer 2000, adapted to fixed path sets): maintain a length
// l_e = delta / c_e per edge; repeatedly pick any demand path whose length is
// below the current phase threshold, push the bottleneck-capacity flow along
// it scaled so no edge receives more than its capacity in one step, and
// multiply the lengths of used edges by (1 + eps * pushed / c_e). The final
// flow, scaled by log_{1+eps}(1/delta), is primal feasible and within
// (1 - O(eps)) of optimal.
#pragma once

#include "te/problem.h"

namespace teal::lp {

struct FleischerOptions {
  double eps = 0.1;          // approximation knob: smaller = better & slower
  int max_phases = 5000000;  // safety cap (iterations grow ~1/eps^2)
};

struct FleischerResult {
  double objective = 0.0;  // total admitted volume (feasible)
  int iterations = 0;      // flow-push steps performed
};

// Approximately maximizes total flow over the problem's path sets. The
// returned allocation is capacity- and demand-feasible.
te::Allocation fleischer_max_flow(const te::Problem& pb, const te::TrafficMatrix& tm,
                                  const FleischerOptions& opt = {},
                                  FleischerResult* result = nullptr);

}  // namespace teal::lp
