#include "lp/path_lp.h"

#include "te/objective.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace teal::lp {

namespace {

// Maps the (possibly restricted) LP variable space: one variable per path of
// every active demand.
struct VarMap {
  std::vector<int> path_ids;  // LP var -> global path id
};

VarMap make_var_map(const te::Problem& pb, const std::vector<int>& subset) {
  VarMap vm;
  auto add_demand = [&](int d) {
    for (int p = pb.path_begin(d); p < pb.path_end(d); ++p) vm.path_ids.push_back(p);
  };
  if (subset.empty()) {
    for (int d = 0; d < pb.num_demands(); ++d) add_demand(d);
  } else {
    for (int d : subset) {
      if (d < 0 || d >= pb.num_demands()) throw std::out_of_range("FlowLpSpec: bad demand");
      add_demand(d);
    }
  }
  return vm;
}

}  // namespace

te::Allocation solve_flow_lp(const te::Problem& pb, const te::TrafficMatrix& tm,
                             const FlowLpSpec& spec, const PdhgOptions& opt,
                             FlowLpInfo* info) {
  VarMap vm = make_var_map(pb, spec.demand_subset);
  const int n_vars = static_cast<int>(vm.path_ids.size());
  std::vector<double> caps = spec.capacities.empty() ? pb.capacities() : spec.capacities;
  if (static_cast<int>(caps.size()) != pb.graph().num_edges()) {
    throw std::invalid_argument("solve_flow_lp: capacity vector size mismatch");
  }

  // Row layout: first one row per active demand, then one row per edge that
  // carries at least one active path.
  std::vector<int> demand_row(static_cast<std::size_t>(pb.num_demands()), -1);
  std::vector<int> edge_row(static_cast<std::size_t>(pb.graph().num_edges()), -1);
  int n_rows = 0;
  for (int v = 0; v < n_vars; ++v) {
    int d = pb.demand_of_path(vm.path_ids[static_cast<std::size_t>(v)]);
    if (demand_row[static_cast<std::size_t>(d)] < 0) demand_row[static_cast<std::size_t>(d)] = n_rows++;
  }
  for (int v = 0; v < n_vars; ++v) {
    for (topo::EdgeId e : pb.path_edges(vm.path_ids[static_cast<std::size_t>(v)])) {
      if (edge_row[static_cast<std::size_t>(e)] < 0) edge_row[static_cast<std::size_t>(e)] = n_rows++;
    }
  }

  std::vector<Triplet> trips;
  std::vector<double> b(static_cast<std::size_t>(n_rows), 0.0);
  std::vector<double> c(static_cast<std::size_t>(n_vars), 0.0);
  std::vector<double> u(static_cast<std::size_t>(n_vars), 1.0);
  for (int d = 0; d < pb.num_demands(); ++d) {
    if (demand_row[static_cast<std::size_t>(d)] >= 0) {
      b[static_cast<std::size_t>(demand_row[static_cast<std::size_t>(d)])] = 1.0;
    }
  }
  for (topo::EdgeId e = 0; e < pb.graph().num_edges(); ++e) {
    if (edge_row[static_cast<std::size_t>(e)] >= 0) {
      b[static_cast<std::size_t>(edge_row[static_cast<std::size_t>(e)])] =
          std::max(0.0, caps[static_cast<std::size_t>(e)]);
    }
  }
  for (int v = 0; v < n_vars; ++v) {
    int p = vm.path_ids[static_cast<std::size_t>(v)];
    int d = pb.demand_of_path(p);
    double vol = tm.volume[static_cast<std::size_t>(d)];
    double w = spec.path_weight.empty() ? 1.0 : spec.path_weight[static_cast<std::size_t>(p)];
    c[static_cast<std::size_t>(v)] = w * vol;
    trips.push_back(Triplet{demand_row[static_cast<std::size_t>(d)], v, 1.0});
    if (vol > 0.0) {
      for (topo::EdgeId e : pb.path_edges(p)) {
        trips.push_back(Triplet{edge_row[static_cast<std::size_t>(e)], v, vol});
      }
    }
  }

  SparseMatrix a(n_rows, n_vars, trips);
  PdhgResult r = pdhg_packing(a, b, c, u, opt);
  if (info) {
    info->objective = r.objective;
    info->dual_bound = r.dual_bound;
    info->iterations = r.iterations;
    info->converged = r.converged;
  }

  te::Allocation alloc = pb.empty_allocation();
  for (int v = 0; v < n_vars; ++v) {
    alloc.split[static_cast<std::size_t>(vm.path_ids[static_cast<std::size_t>(v)])] =
        r.x[static_cast<std::size_t>(v)];
  }
  return alloc;
}

double solve_min_mlu(const te::Problem& pb, const te::TrafficMatrix& tm,
                     const PdhgOptions& opt, te::Allocation* alloc, int bisect_iters) {
  // Total volume of demands that actually have a path (all demands in a
  // Problem do, by construction).
  double total = tm.total();
  if (total <= 0.0) {
    if (alloc) *alloc = pb.shortest_path_allocation();
    return 0.0;
  }
  // Upper bound: shortest-path routing (routes everything).
  te::Allocation sp = pb.shortest_path_allocation();
  double hi = te::max_link_utilization(pb, tm, sp);
  double lo = 0.0;
  te::Allocation best = sp;
  const std::vector<double> caps = pb.capacities();

  for (int it = 0; it < bisect_iters; ++it) {
    double t = 0.5 * (lo + hi);
    if (t <= 0.0) break;
    std::vector<double> scaled(caps.size());
    for (std::size_t e = 0; e < caps.size(); ++e) scaled[e] = caps[e] * t;
    FlowLpSpec spec;
    spec.capacities = scaled;
    FlowLpInfo info;
    te::Allocation a = solve_flow_lp(pb, tm, spec, opt, &info);
    if (info.objective >= total * (1.0 - 1e-3)) {
      hi = t;
      best = std::move(a);
    } else {
      lo = t;
    }
  }
  // The bisection's allocation may slightly under-route; top up by pushing the
  // unrouted remainder onto shortest paths so that all traffic is routed, as
  // the MLU objective requires.
  for (int d = 0; d < pb.num_demands(); ++d) {
    double sum = 0.0;
    for (int p = pb.path_begin(d); p < pb.path_end(d); ++p) {
      sum += best.split[static_cast<std::size_t>(p)];
    }
    if (sum < 1.0) {
      best.split[static_cast<std::size_t>(pb.path_begin(d))] += 1.0 - sum;
    }
  }
  double mlu = te::max_link_utilization(pb, tm, best);
  if (alloc) *alloc = std::move(best);
  return mlu;
}

std::vector<double> latency_penalty_weights(const te::Problem& pb, double penalty) {
  double max_lat = 1e-12;
  for (int p = 0; p < pb.total_paths(); ++p) max_lat = std::max(max_lat, pb.path_latency(p));
  std::vector<double> w(static_cast<std::size_t>(pb.total_paths()));
  for (int p = 0; p < pb.total_paths(); ++p) {
    w[static_cast<std::size_t>(p)] = std::max(0.0, 1.0 - penalty * pb.path_latency(p) / max_lat);
  }
  return w;
}

}  // namespace teal::lp
