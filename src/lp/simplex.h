// simplex.h — dense tableau simplex for packing LPs.
//
//   maximize    cᵀx
//   subject to  A x <= b,  x >= 0        (b >= 0)
//
// The TE path LP is exactly this form, so a phase-1 is never needed (x = 0 is
// feasible). This solver is the repo's *exactness reference*: unit tests
// solve small instances with it and assert that the scalable first-order
// solver (pdhg.h) reaches the same optimum. It is O(rows * cols) memory and
// deliberately sequential — simplex "takes one small step at a time along the
// edges of the feasible region" (§2.1) — so it also stands in for Gurobi's
// scaling behaviour on small/medium instances.
#pragma once

#include <vector>

namespace teal::lp {

struct SimplexResult {
  bool optimal = false;        // false => iteration limit hit (or unbounded)
  double objective = 0.0;
  std::vector<double> x;
  int iterations = 0;
};

struct SimplexOptions {
  int max_iterations = 200000;
  double tol = 1e-9;
};

// Dense A: row-major, rows x cols.
SimplexResult simplex_max(const std::vector<std::vector<double>>& a,
                          const std::vector<double>& b, const std::vector<double>& c,
                          const SimplexOptions& opt = {});

}  // namespace teal::lp
