#include "lp/simplex.h"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace teal::lp {

SimplexResult simplex_max(const std::vector<std::vector<double>>& a,
                          const std::vector<double>& b, const std::vector<double>& c,
                          const SimplexOptions& opt) {
  const int m = static_cast<int>(a.size());
  const int n = static_cast<int>(c.size());
  for (const auto& row : a) {
    if (static_cast<int>(row.size()) != n) throw std::invalid_argument("simplex: ragged A");
  }
  if (static_cast<int>(b.size()) != m) throw std::invalid_argument("simplex: |b| != rows");
  for (double bi : b) {
    if (bi < 0.0) throw std::invalid_argument("simplex: requires b >= 0");
  }

  // Tableau with slack variables: columns [x(n) | s(m) | rhs].
  const int cols = n + m + 1;
  std::vector<std::vector<double>> t(static_cast<std::size_t>(m) + 1,
                                     std::vector<double>(static_cast<std::size_t>(cols), 0.0));
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) t[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] = a[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)];
    t[static_cast<std::size_t>(i)][static_cast<std::size_t>(n + i)] = 1.0;
    t[static_cast<std::size_t>(i)][static_cast<std::size_t>(cols - 1)] = b[static_cast<std::size_t>(i)];
  }
  for (int j = 0; j < n; ++j) {
    t[static_cast<std::size_t>(m)][static_cast<std::size_t>(j)] = -c[static_cast<std::size_t>(j)];
  }
  std::vector<int> basis(static_cast<std::size_t>(m));
  for (int i = 0; i < m; ++i) basis[static_cast<std::size_t>(i)] = n + i;

  SimplexResult res;
  auto& obj_row = t[static_cast<std::size_t>(m)];
  for (res.iterations = 0; res.iterations < opt.max_iterations; ++res.iterations) {
    // Entering variable: most negative reduced cost (Dantzig), with Bland's
    // rule as an anti-cycling fallback when the improvement is tiny.
    int pivot_col = -1;
    double best = -opt.tol;
    for (int j = 0; j < n + m; ++j) {
      if (obj_row[static_cast<std::size_t>(j)] < best) {
        best = obj_row[static_cast<std::size_t>(j)];
        pivot_col = j;
      }
    }
    if (pivot_col < 0) {
      res.optimal = true;
      break;
    }
    // Ratio test.
    int pivot_row = -1;
    double best_ratio = std::numeric_limits<double>::infinity();
    for (int i = 0; i < m; ++i) {
      double aij = t[static_cast<std::size_t>(i)][static_cast<std::size_t>(pivot_col)];
      if (aij > opt.tol) {
        double ratio = t[static_cast<std::size_t>(i)][static_cast<std::size_t>(cols - 1)] / aij;
        if (ratio < best_ratio - opt.tol ||
            (ratio < best_ratio + opt.tol &&
             (pivot_row < 0 || basis[static_cast<std::size_t>(i)] <
                                   basis[static_cast<std::size_t>(pivot_row)]))) {
          best_ratio = ratio;
          pivot_row = i;
        }
      }
    }
    if (pivot_row < 0) {
      // Unbounded — impossible for a packing LP with finite b, but guard.
      res.optimal = false;
      return res;
    }
    // Pivot.
    auto& prow = t[static_cast<std::size_t>(pivot_row)];
    double pivot = prow[static_cast<std::size_t>(pivot_col)];
    for (double& v : prow) v /= pivot;
    for (int i = 0; i <= m; ++i) {
      if (i == pivot_row) continue;
      auto& row = t[static_cast<std::size_t>(i)];
      double factor = row[static_cast<std::size_t>(pivot_col)];
      if (factor == 0.0) continue;
      for (int j = 0; j < cols; ++j) {
        row[static_cast<std::size_t>(j)] -= factor * prow[static_cast<std::size_t>(j)];
      }
    }
    basis[static_cast<std::size_t>(pivot_row)] = pivot_col;
  }

  res.x.assign(static_cast<std::size_t>(n), 0.0);
  for (int i = 0; i < m; ++i) {
    if (basis[static_cast<std::size_t>(i)] < n) {
      res.x[static_cast<std::size_t>(basis[static_cast<std::size_t>(i)])] =
          t[static_cast<std::size_t>(i)][static_cast<std::size_t>(cols - 1)];
    }
  }
  res.objective = 0.0;
  for (int j = 0; j < n; ++j) res.objective += c[static_cast<std::size_t>(j)] * res.x[static_cast<std::size_t>(j)];
  return res;
}

}  // namespace teal::lp
