#include "lp/fleischer.h"

#include <algorithm>
#include <cmath>

#include "te/objective.h"

namespace teal::lp {

te::Allocation fleischer_max_flow(const te::Problem& pb, const te::TrafficMatrix& tm,
                                  const FleischerOptions& opt, FleischerResult* result) {
  const int ne = pb.graph().num_edges();
  const int nd = pb.num_demands();
  const double eps = opt.eps;
  // Virtual "demand edges" with capacity = volume enforce sum_p F <= 1 via
  // the same multiplicative-weights machinery.
  const auto m = static_cast<double>(ne + nd);
  const double delta = (1.0 + eps) * std::pow((1.0 + eps) * m, -1.0 / eps);

  std::vector<double> cap = pb.capacities();
  std::vector<double> len_edge(static_cast<std::size_t>(ne));
  for (int e = 0; e < ne; ++e) {
    len_edge[static_cast<std::size_t>(e)] =
        cap[static_cast<std::size_t>(e)] > 0.0 ? delta / cap[static_cast<std::size_t>(e)] : 1e18;
  }
  std::vector<double> len_dem(static_cast<std::size_t>(nd));
  for (int d = 0; d < nd; ++d) {
    double v = tm.volume[static_cast<std::size_t>(d)];
    len_dem[static_cast<std::size_t>(d)] = v > 0.0 ? delta / v : 1e18;
  }

  std::vector<double> raw_flow(static_cast<std::size_t>(pb.total_paths()), 0.0);
  int iterations = 0;

  // Round-robin over demands: push along any path shorter than 1.
  bool progress = true;
  while (progress && iterations < opt.max_phases) {
    progress = false;
    for (int d = 0; d < nd; ++d) {
      const double vol = tm.volume[static_cast<std::size_t>(d)];
      if (vol <= 0.0) continue;
      // Min-length candidate path (path length = edge lengths + demand edge).
      int best = -1;
      double best_len = 1.0;
      for (int p = pb.path_begin(d); p < pb.path_end(d); ++p) {
        double l = len_dem[static_cast<std::size_t>(d)];
        for (topo::EdgeId e : pb.path_edges(p)) l += len_edge[static_cast<std::size_t>(e)];
        if (l < best_len) {
          best_len = l;
          best = p;
        }
      }
      if (best < 0) continue;
      // Push the bottleneck of (edge capacities, demand volume).
      double push = vol;
      for (topo::EdgeId e : pb.path_edges(best)) {
        push = std::min(push, cap[static_cast<std::size_t>(e)]);
      }
      if (push <= 0.0) continue;
      raw_flow[static_cast<std::size_t>(best)] += push;
      for (topo::EdgeId e : pb.path_edges(best)) {
        auto es = static_cast<std::size_t>(e);
        len_edge[es] *= 1.0 + eps * push / cap[es];
      }
      len_dem[static_cast<std::size_t>(d)] *= 1.0 + eps * push / vol;
      ++iterations;
      progress = true;
    }
  }

  // Scale to feasibility: divide by log_{1+eps}(1/delta).
  const double scale = std::log(1.0 / delta) / std::log(1.0 + eps);
  te::Allocation a = pb.empty_allocation();
  for (int p = 0; p < pb.total_paths(); ++p) {
    double vol = tm.volume[static_cast<std::size_t>(pb.demand_of_path(p))];
    if (vol > 0.0 && scale > 0.0) {
      a.split[static_cast<std::size_t>(p)] =
          raw_flow[static_cast<std::size_t>(p)] / (scale * vol);
    }
  }
  // The guarantee leaves slack; a repair pass removes residual rounding
  // violations so the result is strictly feasible like the LP's.
  a = te::repair_to_feasible(pb, tm, std::move(a));
  if (result) {
    result->iterations = iterations;
    result->objective = te::total_feasible_flow(pb, tm, a);
  }
  return a;
}

}  // namespace teal::lp
