#include "lp/sparse.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace teal::lp {

SparseMatrix::SparseMatrix(int rows, int cols, const std::vector<Triplet>& triplets)
    : rows_(rows), cols_(cols) {
  if (rows < 0 || cols < 0) throw std::invalid_argument("SparseMatrix: negative dims");
  std::vector<std::size_t> row_count(static_cast<std::size_t>(rows) + 1, 0);
  std::vector<std::size_t> col_count(static_cast<std::size_t>(cols) + 1, 0);
  for (const auto& t : triplets) {
    if (t.row < 0 || t.row >= rows || t.col < 0 || t.col >= cols) {
      throw std::out_of_range("SparseMatrix: triplet out of range");
    }
    ++row_count[static_cast<std::size_t>(t.row) + 1];
    ++col_count[static_cast<std::size_t>(t.col) + 1];
  }
  row_ptr_ = std::move(row_count);
  col_ptr_ = std::move(col_count);
  for (std::size_t i = 1; i < row_ptr_.size(); ++i) row_ptr_[i] += row_ptr_[i - 1];
  for (std::size_t i = 1; i < col_ptr_.size(); ++i) col_ptr_[i] += col_ptr_[i - 1];

  row_col_.resize(triplets.size());
  row_val_.resize(triplets.size());
  col_row_.resize(triplets.size());
  col_val_.resize(triplets.size());
  std::vector<std::size_t> rpos(row_ptr_.begin(), row_ptr_.end() - 1);
  std::vector<std::size_t> cpos(col_ptr_.begin(), col_ptr_.end() - 1);
  for (const auto& t : triplets) {
    auto& rp = rpos[static_cast<std::size_t>(t.row)];
    row_col_[rp] = t.col;
    row_val_[rp] = t.value;
    ++rp;
    auto& cp = cpos[static_cast<std::size_t>(t.col)];
    col_row_[cp] = t.row;
    col_val_[cp] = t.value;
    ++cp;
  }
}

void SparseMatrix::multiply(const std::vector<double>& x, std::vector<double>& y) const {
  y.assign(static_cast<std::size_t>(rows_), 0.0);
  for (int i = 0; i < rows_; ++i) {
    double acc = 0.0;
    for (std::size_t k = row_ptr_[static_cast<std::size_t>(i)];
         k < row_ptr_[static_cast<std::size_t>(i) + 1]; ++k) {
      acc += row_val_[k] * x[static_cast<std::size_t>(row_col_[k])];
    }
    y[static_cast<std::size_t>(i)] = acc;
  }
}

void SparseMatrix::multiply_transpose(const std::vector<double>& y,
                                      std::vector<double>& x) const {
  x.assign(static_cast<std::size_t>(cols_), 0.0);
  for (int j = 0; j < cols_; ++j) {
    double acc = 0.0;
    for (std::size_t k = col_ptr_[static_cast<std::size_t>(j)];
         k < col_ptr_[static_cast<std::size_t>(j) + 1]; ++k) {
      acc += col_val_[k] * y[static_cast<std::size_t>(col_row_[k])];
    }
    x[static_cast<std::size_t>(j)] = acc;
  }
}

double SparseMatrix::row_abs_sum(int i) const {
  double s = 0.0;
  for (std::size_t k = row_ptr_[static_cast<std::size_t>(i)];
       k < row_ptr_[static_cast<std::size_t>(i) + 1]; ++k) {
    s += std::abs(row_val_[k]);
  }
  return s;
}

double SparseMatrix::col_abs_sum(int j) const {
  double s = 0.0;
  for (std::size_t k = col_ptr_[static_cast<std::size_t>(j)];
       k < col_ptr_[static_cast<std::size_t>(j) + 1]; ++k) {
    s += std::abs(col_val_[k]);
  }
  return s;
}

SparseMatrix::RowView SparseMatrix::row(int i) const {
  std::size_t begin = row_ptr_[static_cast<std::size_t>(i)];
  std::size_t end = row_ptr_[static_cast<std::size_t>(i) + 1];
  return RowView{row_col_.data() + begin, row_val_.data() + begin, end - begin};
}

}  // namespace teal::lp
