#include "lp/pdhg.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace teal::lp {

namespace {

// Projects x onto the feasible region by scaling every variable through a
// violated row with that row's deficit ratio. A >= 0 makes this sound; a few
// rounds suffice in practice and the loop exits early when feasible.
void repair(const SparseMatrix& a, const std::vector<double>& b, std::vector<double>& x,
            std::vector<double>& scratch_rows, std::vector<double>& scratch_cols) {
  const int m = a.rows();
  const int n = a.cols();
  for (int round = 0; round < 6; ++round) {
    a.multiply(x, scratch_rows);
    bool violated = false;
    for (int i = 0; i < m; ++i) {
      double ax = scratch_rows[static_cast<std::size_t>(i)];
      double cap = b[static_cast<std::size_t>(i)];
      scratch_rows[static_cast<std::size_t>(i)] =
          (ax > cap * (1.0 + 1e-12)) ? (cap > 0.0 ? cap / ax : 0.0) : 1.0;
      if (scratch_rows[static_cast<std::size_t>(i)] < 1.0) violated = true;
    }
    if (!violated) return;
    // Column factor = min over its rows' factors.
    std::fill(scratch_cols.begin(), scratch_cols.end(), 1.0);
    for (int i = 0; i < m; ++i) {
      double f = scratch_rows[static_cast<std::size_t>(i)];
      if (f >= 1.0) continue;
      auto row = a.row(i);
      for (std::size_t k = 0; k < row.size; ++k) {
        auto j = static_cast<std::size_t>(row.cols[k]);
        scratch_cols[j] = std::min(scratch_cols[j], f);
      }
    }
    for (int j = 0; j < n; ++j) {
      x[static_cast<std::size_t>(j)] *= scratch_cols[static_cast<std::size_t>(j)];
    }
  }
}

double dot(const std::vector<double>& a, const std::vector<double>& b) {
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

// Greedy primal polish for packing LPs: after repair, walk the variables in
// decreasing objective order and raise each as far as its rows' remaining
// slack allows. Turns a mid-convergence PDHG iterate into a high-quality
// feasible point, which lets the duality-gap check terminate much earlier.
void greedy_fill(const SparseMatrix& a, const std::vector<double>& b,
                 const std::vector<double>& c, const std::vector<double>& u,
                 std::vector<double>& x, std::vector<double>& slack,
                 const std::vector<int>& order,
                 const std::vector<std::vector<std::pair<int, double>>>& col_entries) {
  a.multiply(x, slack);
  for (std::size_t i = 0; i < slack.size(); ++i) {
    slack[i] = std::max(0.0, b[i] - slack[i]);
  }
  for (int j : order) {
    auto js = static_cast<std::size_t>(j);
    double room = u[js] - x[js];
    if (room <= 0.0 || c[js] <= 0.0) continue;
    for (const auto& [row, coef] : col_entries[js]) {
      if (coef > 0.0) room = std::min(room, slack[static_cast<std::size_t>(row)] / coef);
      if (room <= 0.0) break;
    }
    if (room <= 0.0) continue;
    x[js] += room;
    for (const auto& [row, coef] : col_entries[js]) {
      auto rs = static_cast<std::size_t>(row);
      slack[rs] = std::max(0.0, slack[rs] - coef * room);
    }
  }
}

}  // namespace

PdhgResult pdhg_packing(const SparseMatrix& a, const std::vector<double>& b,
                        const std::vector<double>& c, const std::vector<double>& u,
                        const PdhgOptions& opt, const std::vector<double>* warm_start) {
  const int m = a.rows();
  const int n = a.cols();
  if (static_cast<int>(b.size()) != m || static_cast<int>(c.size()) != n ||
      static_cast<int>(u.size()) != n) {
    throw std::invalid_argument("pdhg_packing: size mismatch");
  }

  // Diagonal preconditioners. Empty rows/cols get harmless unit steps.
  std::vector<double> tau(static_cast<std::size_t>(n), 1.0);
  std::vector<double> sigma(static_cast<std::size_t>(m), 1.0);
  for (int j = 0; j < n; ++j) {
    double s = a.col_abs_sum(j);
    tau[static_cast<std::size_t>(j)] = opt.step_scale / std::max(1e-12, s);
  }
  for (int i = 0; i < m; ++i) {
    double s = a.row_abs_sum(i);
    sigma[static_cast<std::size_t>(i)] = opt.step_scale / std::max(1e-12, s);
  }

  std::vector<double> x(static_cast<std::size_t>(n), 0.0);
  if (warm_start) {
    x = *warm_start;
    for (int j = 0; j < n; ++j) {
      x[static_cast<std::size_t>(j)] =
          std::clamp(x[static_cast<std::size_t>(j)], 0.0, u[static_cast<std::size_t>(j)]);
    }
  }
  std::vector<double> y(static_cast<std::size_t>(m), 0.0);
  std::vector<double> x_prev = x;
  std::vector<double> aty(static_cast<std::size_t>(n), 0.0);
  std::vector<double> ax(static_cast<std::size_t>(m), 0.0);
  std::vector<double> x_bar(static_cast<std::size_t>(n), 0.0);
  std::vector<double> scratch_rows(static_cast<std::size_t>(m), 0.0);
  std::vector<double> scratch_cols(static_cast<std::size_t>(n), 0.0);

  PdhgResult res;
  res.dual_bound = std::numeric_limits<double>::infinity();
  double best_primal = -std::numeric_limits<double>::infinity();
  std::vector<double> best_x = x;
  std::vector<double> primal_history;

  // Structures for the greedy primal polish (objective-descending order and
  // per-column row entries).
  std::vector<int> fill_order(static_cast<std::size_t>(n));
  for (int j = 0; j < n; ++j) fill_order[static_cast<std::size_t>(j)] = j;
  std::sort(fill_order.begin(), fill_order.end(),
            [&](int p, int q) { return c[static_cast<std::size_t>(p)] > c[static_cast<std::size_t>(q)]; });
  std::vector<std::vector<std::pair<int, double>>> col_entries(static_cast<std::size_t>(n));
  for (int i = 0; i < m; ++i) {
    auto row = a.row(i);
    for (std::size_t k2 = 0; k2 < row.size; ++k2) {
      col_entries[static_cast<std::size_t>(row.cols[k2])].emplace_back(i, row.vals[k2]);
    }
  }

  for (int it = 1; it <= opt.max_iterations; ++it) {
    res.iterations = it;
    // Primal ascent step on the Lagrangian (maximization problem).
    a.multiply_transpose(y, aty);
    x_prev.swap(x);
    for (int j = 0; j < n; ++j) {
      auto js = static_cast<std::size_t>(j);
      double g = c[js] - aty[js];
      x[js] = std::clamp(x_prev[js] + tau[js] * g, 0.0, u[js]);
      x_bar[js] = 2.0 * x[js] - x_prev[js];
    }
    // Dual step.
    a.multiply(x_bar, ax);
    for (int i = 0; i < m; ++i) {
      auto is = static_cast<std::size_t>(i);
      y[is] = std::max(0.0, y[is] + sigma[is] * (ax[is] - b[is]));
    }

    if (it % opt.check_every == 0 || it == opt.max_iterations) {
      // Dual bound: for y >= 0, max_{0<=x<=u} L(x,y) = bᵀy + Σ u_j (c - Aᵀy)_j⁺.
      a.multiply_transpose(y, aty);
      double dual = dot(b, y);
      for (int j = 0; j < n; ++j) {
        auto js = static_cast<std::size_t>(j);
        dual += u[js] * std::max(0.0, c[js] - aty[js]);
      }
      res.dual_bound = std::min(res.dual_bound, dual);

      // Feasible primal value via repair + greedy polish.
      std::vector<double> xf = x;
      repair(a, b, xf, scratch_rows, scratch_cols);
      greedy_fill(a, b, c, u, xf, scratch_rows, fill_order, col_entries);
      double primal = dot(c, xf);
      if (primal > best_primal) {
        best_primal = primal;
        best_x = std::move(xf);
      }
      double gap = res.dual_bound - best_primal;
      if (gap <= opt.rel_gap_tol * std::max(1.0, std::abs(res.dual_bound))) {
        res.converged = true;
        break;
      }
      // Primal-stall termination.
      primal_history.push_back(best_primal);
      if (opt.stall_checks > 0 &&
          static_cast<int>(primal_history.size()) > opt.stall_checks) {
        double past = primal_history[primal_history.size() -
                                     static_cast<std::size_t>(opt.stall_checks) - 1];
        if (best_primal - past <= opt.stall_rel * std::max(1.0, std::abs(best_primal))) {
          res.converged = true;
          break;
        }
      }
    }
  }

  res.x = std::move(best_x);
  res.y = std::move(y);
  res.objective = best_primal;
  return res;
}

}  // namespace teal::lp
