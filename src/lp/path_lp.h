// path_lp.h — TE LP construction and solving on the path formulation.
//
// This is the layer every LP-based scheme in the repo calls — the equivalent
// of "hand the model to Gurobi" in the paper. It builds the packing LP of
// Equation (1) (optionally restricted to a demand subset, with overridden
// capacities or per-path objective weights) and solves it with the PDHG
// engine; tiny instances can be solved with the exact simplex for tests.
//
//   max  Σ_d Σ_p w_p · F_d(p) · d
//   s.t. Σ_p F_d(p) <= 1                        (demand rows)
//        Σ_{p∋e} F_d(p) · d <= c(e)             (capacity rows)
//        0 <= F_d(p) <= 1
//
// Min-MLU (§5.5) is solved by bisection on t: "can all traffic be routed with
// every link load <= t·c(e)?", each probe being one packing LP — an honest
// rendition of how iterative solvers pay per probe, and naturally slower than
// Teal's single forward pass.
#pragma once

#include <vector>

#include "lp/pdhg.h"
#include "te/problem.h"

namespace teal::lp {

struct FlowLpSpec {
  std::vector<int> demand_subset;   // empty = all demands
  std::vector<double> capacities;   // empty = problem graph capacities
  std::vector<double> path_weight;  // empty = 1.0; size pb.total_paths()
};

struct FlowLpInfo {
  double objective = 0.0;   // feasible primal objective (weighted flow)
  double dual_bound = 0.0;
  int iterations = 0;
  bool converged = false;
};

// Solves the (restricted) max-weighted-flow LP; splits of demands outside the
// subset are zero. The result is feasible w.r.t. the given capacities.
te::Allocation solve_flow_lp(const te::Problem& pb, const te::TrafficMatrix& tm,
                             const FlowLpSpec& spec = {}, const PdhgOptions& opt = {},
                             FlowLpInfo* info = nullptr);

// Min-MLU by bisection. Returns the achieved MLU and writes the allocation
// (which routes all routable traffic) to *alloc if non-null.
double solve_min_mlu(const te::Problem& pb, const te::TrafficMatrix& tm,
                     const PdhgOptions& opt = {}, te::Allocation* alloc = nullptr,
                     int bisect_iters = 14);

// Per-path latency-penalty weights: w_p = max(0, 1 - penalty * lat_p / max lat)
// (the §5.5 latency-penalized objective as an LP objective vector).
std::vector<double> latency_penalty_weights(const te::Problem& pb, double penalty = 0.5);

}  // namespace teal::lp
