// sparse.h — compressed sparse matrix with row and column access.
//
// The TE LPs are extremely sparse: a path variable appears in exactly one
// demand row and in one capacity row per edge it traverses. The first-order
// solver needs fast A·x (row-major) and Aᵀ·y (column-major), so we store both
// layouts, built once from triplets.
#pragma once

#include <cstddef>
#include <vector>

namespace teal::lp {

struct Triplet {
  int row;
  int col;
  double value;
};

class SparseMatrix {
 public:
  SparseMatrix() = default;
  SparseMatrix(int rows, int cols, const std::vector<Triplet>& triplets);

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  std::size_t nnz() const { return row_val_.size(); }

  // y = A x  (y sized rows()).
  void multiply(const std::vector<double>& x, std::vector<double>& y) const;
  // x = Aᵀ y  (x sized cols()).
  void multiply_transpose(const std::vector<double>& y, std::vector<double>& x) const;

  // L1 norm of row i / column j (used for diagonal preconditioning).
  double row_abs_sum(int i) const;
  double col_abs_sum(int j) const;

  // Row access for the repair / evaluation passes.
  struct RowView {
    const int* cols;
    const double* vals;
    std::size_t size;
  };
  RowView row(int i) const;

 private:
  int rows_ = 0, cols_ = 0;
  // CSR
  std::vector<std::size_t> row_ptr_;
  std::vector<int> row_col_;
  std::vector<double> row_val_;
  // CSC
  std::vector<std::size_t> col_ptr_;
  std::vector<int> col_row_;
  std::vector<double> col_val_;
};

}  // namespace teal::lp
