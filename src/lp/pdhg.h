// pdhg.h — diagonally preconditioned primal-dual hybrid gradient solver for
// box-constrained packing LPs:
//
//   maximize    cᵀx
//   subject to  A x <= b,   0 <= x <= u        (A >= 0, b >= 0)
//
// This is the repository's stand-in for a commercial LP engine (Gurobi in the
// paper). Like Gurobi it is *iterative*: thousands of cheap sweeps whose count
// grows with problem size and conditioning, executed on a single thread —
// which is precisely the scaling bottleneck Teal attacks (§2.1, Figure 2).
// Its per-iteration cost is O(nnz); it terminates when a feasibility-repaired
// primal iterate and the running dual bound close to within `rel_gap_tol`.
//
// The updates follow Pock & Chambolle (2011) diagonal preconditioning:
//   x <- clamp(x + T (c - Aᵀ y), 0, u)
//   y <- max(0, y + S (A (2x' - x) - b))
// with T_j = 1/colsum_j, S_i = 1/rowsum_i (entrywise absolute sums).
#pragma once

#include <vector>

#include "lp/sparse.h"

namespace teal::lp {

struct PdhgOptions {
  int max_iterations = 50000;
  int check_every = 50;        // gap check cadence
  double rel_gap_tol = 2e-3;   // |primal - dual| / max(1, |dual|)
  double step_scale = 1.0;     // multiplies both step sizes (keep <= 1)
  // Primal-stall termination (how commercial engines stop in practice): quit
  // when the best feasible primal value improved by less than stall_rel
  // (relative) over the last stall_checks gap checks. 0 checks disables.
  double stall_rel = 3e-4;
  int stall_checks = 8;
};

struct PdhgResult {
  bool converged = false;
  double objective = 0.0;          // of the repaired (feasible) primal point
  double dual_bound = 0.0;         // best dual upper bound observed
  std::vector<double> x;           // feasible primal solution
  std::vector<double> y;           // final dual iterate
  int iterations = 0;
};

PdhgResult pdhg_packing(const SparseMatrix& a, const std::vector<double>& b,
                        const std::vector<double>& c, const std::vector<double>& u,
                        const PdhgOptions& opt = {},
                        const std::vector<double>* warm_start = nullptr);

}  // namespace teal::lp
