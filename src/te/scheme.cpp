#include "te/scheme.h"

#include "util/timer.h"

namespace teal::te {

const char* precision_name(Precision p) {
  switch (p) {
    case Precision::f32: return "f32";
    case Precision::bf16: return "bf16";
    default: return "f64";
  }
}

void Scheme::solve_into(const Problem& pb, const TrafficMatrix& tm, Allocation& out) {
  out = solve(pb, tm);
}

BatchSolve Scheme::solve_batch(const Problem& pb, std::span<const TrafficMatrix> tms) {
  util::Timer wall;
  BatchSolve out;
  out.allocs.resize(tms.size());
  out.solve_seconds.resize(tms.size());
  for (std::size_t t = 0; t < tms.size(); ++t) {
    solve_into(pb, tms[t], out.allocs[t]);
    out.solve_seconds[t] = last_solve_seconds();
  }
  out.wall_seconds = wall.seconds();
  return out;
}

BatchSolve solve_batch_sequential(Scheme& scheme, const Problem& pb,
                                  std::span<const TrafficMatrix> tms) {
  return scheme.Scheme::solve_batch(pb, tms);
}

}  // namespace teal::te
