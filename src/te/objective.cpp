#include "te/objective.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace teal::te {

std::string to_string(Objective obj) {
  switch (obj) {
    case Objective::kTotalFlow: return "total_flow";
    case Objective::kMinMaxLinkUtil: return "min_max_link_util";
    case Objective::kLatencyPenalizedFlow: return "latency_penalized_flow";
  }
  return "unknown";
}

std::vector<double> edge_loads(const Problem& pb, const TrafficMatrix& tm,
                               const Allocation& a) {
  std::vector<double> load;
  edge_loads_into(pb, tm, a, load);
  return load;
}

void edge_loads_into(const Problem& pb, const TrafficMatrix& tm, const Allocation& a,
                     std::vector<double>& load) {
  load.assign(static_cast<std::size_t>(pb.graph().num_edges()), 0.0);
  for (int p = 0; p < pb.total_paths(); ++p) {
    double f = a.split[static_cast<std::size_t>(p)] *
               tm.volume[static_cast<std::size_t>(pb.demand_of_path(p))];
    if (f <= 0.0) continue;
    for (topo::EdgeId e : pb.path_edges(p)) load[static_cast<std::size_t>(e)] += f;
  }
}

namespace {

// Per-edge survival factor min(1, c/load); 0 for failed (capacity 0) links.
void survival_factors(const std::vector<double>& caps, const std::vector<double>& load,
                      std::vector<double>& factor) {
  factor.assign(load.size(), 1.0);
  for (std::size_t e = 0; e < load.size(); ++e) {
    if (load[e] > caps[e]) {
      factor[e] = load[e] > 0.0 ? caps[e] / load[e] : 1.0;
    }
  }
}

// Delivered volume of path p under `factor` (0 contribution for f <= 0,
// mirroring delivered_per_path's zero entries).
double delivered_path(const Problem& pb, const TrafficMatrix& tm, const Allocation& a,
                      const std::vector<double>& factor, int p) {
  double f = a.split[static_cast<std::size_t>(p)] *
             tm.volume[static_cast<std::size_t>(pb.demand_of_path(p))];
  if (f <= 0.0) return 0.0;
  double surv = 1.0;
  for (topo::EdgeId e : pb.path_edges(p)) {
    surv = std::min(surv, factor[static_cast<std::size_t>(e)]);
  }
  return f * surv;
}

}  // namespace

std::vector<double> delivered_per_path(const Problem& pb, const TrafficMatrix& tm,
                                       const Allocation& a,
                                       const std::vector<double>* capacities) {
  std::vector<double> caps = capacities ? *capacities : pb.capacities();
  std::vector<double> load = edge_loads(pb, tm, a);
  std::vector<double> factor;
  survival_factors(caps, load, factor);
  std::vector<double> delivered(static_cast<std::size_t>(pb.total_paths()), 0.0);
  for (int p = 0; p < pb.total_paths(); ++p) {
    delivered[static_cast<std::size_t>(p)] = delivered_path(pb, tm, a, factor, p);
  }
  return delivered;
}

double total_feasible_flow_from_loads(const Problem& pb, const TrafficMatrix& tm,
                                      const Allocation& a, const std::vector<double>& caps,
                                      const std::vector<double>& load,
                                      std::vector<double>& factor_scratch) {
  survival_factors(caps, load, factor_scratch);
  double total = 0.0;
  for (int p = 0; p < pb.total_paths(); ++p) {
    total += delivered_path(pb, tm, a, factor_scratch, p);
  }
  return total;
}

double total_feasible_flow(const Problem& pb, const TrafficMatrix& tm, const Allocation& a,
                           const std::vector<double>* capacities) {
  std::vector<double> caps = capacities ? *capacities : pb.capacities();
  std::vector<double> load = edge_loads(pb, tm, a);
  std::vector<double> factor;
  return total_feasible_flow_from_loads(pb, tm, a, caps, load, factor);
}

double satisfied_demand_pct(const Problem& pb, const TrafficMatrix& tm, const Allocation& a,
                            const std::vector<double>* capacities) {
  double td = tm.total();
  if (td <= 0.0) return 100.0;
  return 100.0 * total_feasible_flow(pb, tm, a, capacities) / td;
}

double max_link_utilization_from_loads(const std::vector<double>& caps,
                                       const std::vector<double>& load) {
  double mlu = 0.0;
  for (std::size_t e = 0; e < load.size(); ++e) {
    if (caps[e] > 0.0) {
      mlu = std::max(mlu, load[e] / caps[e]);
    } else if (load[e] > 0.0) {
      mlu = std::max(mlu, 1e9);  // traffic on a failed link
    }
  }
  return mlu;
}

double max_link_utilization(const Problem& pb, const TrafficMatrix& tm, const Allocation& a,
                            const std::vector<double>* capacities) {
  std::vector<double> caps = capacities ? *capacities : pb.capacities();
  auto load = edge_loads(pb, tm, a);
  return max_link_utilization_from_loads(caps, load);
}

double latency_penalized_flow_from_loads(const Problem& pb, const TrafficMatrix& tm,
                                         const Allocation& a, double penalty,
                                         const std::vector<double>& caps,
                                         const std::vector<double>& load,
                                         std::vector<double>& factor_scratch) {
  double max_lat = 1e-12;
  for (int p = 0; p < pb.total_paths(); ++p) max_lat = std::max(max_lat, pb.path_latency(p));
  survival_factors(caps, load, factor_scratch);
  double total = 0.0;
  for (int p = 0; p < pb.total_paths(); ++p) {
    double w = std::max(0.0, 1.0 - penalty * pb.path_latency(p) / max_lat);
    total += delivered_path(pb, tm, a, factor_scratch, p) * w;
  }
  return total;
}

double latency_penalized_flow(const Problem& pb, const TrafficMatrix& tm, const Allocation& a,
                              double penalty, const std::vector<double>* capacities) {
  std::vector<double> caps = capacities ? *capacities : pb.capacities();
  std::vector<double> load = edge_loads(pb, tm, a);
  std::vector<double> factor;
  return latency_penalized_flow_from_loads(pb, tm, a, penalty, caps, load, factor);
}

double surrogate_loss_value_from_loads(const Problem& pb, const TrafficMatrix& tm,
                                       const Allocation& a, const std::vector<double>& caps,
                                       const std::vector<double>& load) {
  double intended = 0.0;
  for (int p = 0; p < pb.total_paths(); ++p) {
    intended += a.split[static_cast<std::size_t>(p)] *
                tm.volume[static_cast<std::size_t>(pb.demand_of_path(p))];
  }
  double overuse = 0.0;
  for (std::size_t e = 0; e < load.size(); ++e) {
    overuse += std::max(0.0, load[e] - caps[e]);
  }
  return intended - overuse;
}

double surrogate_loss_value(const Problem& pb, const TrafficMatrix& tm, const Allocation& a,
                            const std::vector<double>* capacities) {
  std::vector<double> caps = capacities ? *capacities : pb.capacities();
  auto load = edge_loads(pb, tm, a);
  return surrogate_loss_value_from_loads(pb, tm, a, caps, load);
}

double objective_score(const Problem& pb, const TrafficMatrix& tm, const Allocation& a,
                       Objective obj, const std::vector<double>* capacities) {
  switch (obj) {
    case Objective::kTotalFlow:
      return total_feasible_flow(pb, tm, a, capacities);
    case Objective::kMinMaxLinkUtil:
      return -max_link_utilization(pb, tm, a, capacities);
    case Objective::kLatencyPenalizedFlow:
      return latency_penalized_flow(pb, tm, a, 0.5, capacities);
  }
  throw std::invalid_argument("objective_score: unknown objective");
}

Allocation repair_to_feasible(const Problem& pb, const TrafficMatrix& tm, Allocation a,
                              const std::vector<double>* capacities, int max_rounds) {
  std::vector<double> caps = capacities ? *capacities : pb.capacities();
  for (double& s : a.split) s = std::max(0.0, s);
  // Clamp per-demand split sums to 1.
  for (int d = 0; d < pb.num_demands(); ++d) {
    double sum = 0.0;
    for (int p = pb.path_begin(d); p < pb.path_end(d); ++p) {
      sum += a.split[static_cast<std::size_t>(p)];
    }
    if (sum > 1.0) {
      for (int p = pb.path_begin(d); p < pb.path_end(d); ++p) {
        a.split[static_cast<std::size_t>(p)] /= sum;
      }
    }
  }
  // Iteratively scale down every path crossing an overloaded edge. Each round
  // strictly reduces violation; a final exact pass guarantees feasibility.
  for (int round = 0; round < max_rounds; ++round) {
    auto load = edge_loads(pb, tm, a);
    bool violated = false;
    std::vector<double> factor(load.size(), 1.0);
    for (std::size_t e = 0; e < load.size(); ++e) {
      if (load[e] > caps[e] * (1.0 + 1e-12)) {
        violated = true;
        factor[e] = load[e] > 0.0 ? caps[e] / load[e] : 1.0;
      }
    }
    if (!violated) break;
    for (int p = 0; p < pb.total_paths(); ++p) {
      double f = 1.0;
      for (topo::EdgeId e : pb.path_edges(p)) {
        f = std::min(f, factor[static_cast<std::size_t>(e)]);
      }
      a.split[static_cast<std::size_t>(p)] *= f;
    }
  }
  return a;
}

}  // namespace teal::te
