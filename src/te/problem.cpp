#include "te/problem.h"

#include <limits>
#include <mutex>
#include <numeric>
#include <stdexcept>

#include "util/thread_pool.h"

namespace teal::te {

double TrafficMatrix::total() const {
  return std::accumulate(volume.begin(), volume.end(), 0.0);
}

Problem::Problem(topo::Graph g, std::vector<Demand> demands, int k_paths)
    : graph_(std::move(g)), k_paths_(k_paths) {
  if (k_paths <= 0) throw std::invalid_argument("Problem: k_paths must be positive");
  // The global path id space is int-indexed (path_begin/path_end and every
  // solver's flattened arrays). A generated graph at 10x-ASN scale with an
  // unbounded demand set could overflow it; fail loudly up front instead of
  // silently wrapping ids after the expensive path precomputation.
  const long long max_paths =
      static_cast<long long>(demands.size()) * static_cast<long long>(k_paths);
  if (max_paths > static_cast<long long>(std::numeric_limits<int>::max())) {
    throw std::invalid_argument(
        "Problem: demands * k_paths = " + std::to_string(max_paths) +
        " exceeds the int path-id space; cap the demand sample "
        "(traffic::sample_demands) or lower k_paths");
  }

  // Yen's algorithm per demand, parallelized (path precomputation is a
  // one-time cost excluded from the computation-time metric, §5.1).
  std::vector<std::vector<topo::Path>> per_demand(demands.size());
  util::ThreadPool::global().parallel_for(demands.size(), [&](std::size_t i) {
    per_demand[i] = topo::yen_ksp(graph_, demands[i].src, demands[i].dst, k_paths);
  });

  path_offset_.push_back(0);
  for (std::size_t i = 0; i < demands.size(); ++i) {
    if (per_demand[i].empty()) continue;  // unreachable pair: drop
    demands_.push_back(demands[i]);
    for (auto& p : per_demand[i]) {
      path_demand_.push_back(static_cast<int>(demands_.size()) - 1);
      path_latency_.push_back(topo::path_latency(graph_, p));
      path_edges_.push_back(std::move(p));
    }
    path_offset_.push_back(static_cast<int>(path_edges_.size()));
  }

  edge_paths_.assign(static_cast<std::size_t>(graph_.num_edges()), {});
  for (std::size_t p = 0; p < path_edges_.size(); ++p) {
    for (topo::EdgeId e : path_edges_[p]) {
      edge_paths_[static_cast<std::size_t>(e)].push_back(static_cast<int>(p));
    }
  }
}

Allocation Problem::shortest_path_allocation() const {
  Allocation a = empty_allocation();
  for (int d = 0; d < num_demands(); ++d) {
    a.split[static_cast<std::size_t>(path_begin(d))] = 1.0;  // Yen returns shortest first
  }
  return a;
}

void Problem::validate_allocation(const Allocation& a, double tol) const {
  if (static_cast<int>(a.split.size()) != total_paths()) {
    throw std::invalid_argument("validate_allocation: size mismatch");
  }
  for (double s : a.split) {
    if (s < -tol) throw std::invalid_argument("validate_allocation: negative split");
  }
  for (int d = 0; d < num_demands(); ++d) {
    double sum = 0.0;
    for (int p = path_begin(d); p < path_end(d); ++p) {
      sum += a.split[static_cast<std::size_t>(p)];
    }
    if (sum > 1.0 + tol) {
      throw std::invalid_argument("validate_allocation: demand oversubscribed");
    }
  }
}

std::vector<double> Problem::capacities() const {
  std::vector<double> c;
  capacities_into(c);
  return c;
}

void Problem::capacities_into(std::vector<double>& out) const {
  out.resize(static_cast<std::size_t>(graph_.num_edges()));
  for (topo::EdgeId e = 0; e < graph_.num_edges(); ++e) {
    out[static_cast<std::size_t>(e)] = graph_.edge(e).capacity;
  }
}

std::vector<Demand> all_pairs_demands(const topo::Graph& g) {
  std::vector<Demand> ds;
  ds.reserve(static_cast<std::size_t>(g.num_nodes()) *
             static_cast<std::size_t>(g.num_nodes() - 1));
  for (topo::NodeId s = 0; s < g.num_nodes(); ++s) {
    for (topo::NodeId t = 0; t < g.num_nodes(); ++t) {
      if (s != t) ds.push_back(Demand{s, t});
    }
  }
  return ds;
}

}  // namespace teal::te
