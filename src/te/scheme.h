// scheme.h — the interface every TE scheme implements.
//
// The benchmark harness, the online simulator and the figures are all
// scheme-agnostic: a Scheme maps a (Problem, TrafficMatrix) to an Allocation
// and reports how long the solve took (the paper's computation-time metric,
// Table 2). Schemes may carry per-topology state (trained models, partition
// structures, solver workspaces); constructing that state is a one-time cost
// excluded from the timing, matching §5.1.
#pragma once

#include <memory>
#include <string>

#include "te/objective.h"
#include "te/problem.h"

namespace teal::te {

class Scheme {
 public:
  virtual ~Scheme() = default;

  virtual std::string name() const = 0;

  // Computes an allocation for the given traffic matrix. Implementations must
  // time their own solve path and report it via last_solve_seconds().
  virtual Allocation solve(const Problem& pb, const TrafficMatrix& tm) = 0;

  // Wall-clock duration of the most recent solve() call, per Table 2's
  // breakdown (e.g. LP-top includes its model rebuilding time).
  virtual double last_solve_seconds() const = 0;

  // Called when link capacities change (failures §5.3). Default: nothing —
  // most schemes read capacities from the Problem on each solve.
  virtual void on_topology_change(const Problem& /*pb*/) {}
};

using SchemePtr = std::unique_ptr<Scheme>;

}  // namespace teal::te
