// scheme.h — the interface every TE scheme implements.
//
// The benchmark harness, the online simulator and the figures are all
// scheme-agnostic: a Scheme maps a (Problem, TrafficMatrix) to an Allocation
// and reports how long the solve took (the paper's computation-time metric,
// Table 2). Schemes may carry per-topology state (trained models, partition
// structures, solver workspaces); constructing that state is a one-time cost
// excluded from the timing, matching §5.1.
//
// Two solve surfaces:
//  * solve()/solve_into() — one traffic matrix. solve_into() writes into a
//    caller-owned Allocation so warm callers avoid the result allocation;
//    schemes with internal workspaces (TealScheme) make it allocation-free
//    outright.
//  * solve_batch() — many traffic matrices at once. The default loops
//    solve() sequentially, which is exactly right for the LP baselines: their
//    solvers are inherently sequential (Figure 2), so batching buys them
//    nothing. Teal overrides it with per-worker workspaces fanned out over
//    the thread pool — the paper's traffic-independent, massively parallel
//    compute shape (Figure 7). Because independent matrices share no mutable
//    state, the batch scales with the worker count (the scalable
//    commutativity argument of Tsai et al. applied at interface level).
#pragma once

#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "te/objective.h"
#include "te/problem.h"

namespace teal::te {

// Result of a batched solve: one Allocation per input matrix, per-matrix
// solve seconds, and the end-to-end wall time of the batch (what amortized
// serving cares about).
//
// Timing semantics: `solve_seconds[t]` is matrix t's wall time *as executed
// within the batch*. For the default sequential implementation that is
// identical to a solve() loop's last_solve_seconds(). A parallel override
// (TealScheme) runs solves concurrently with per-worker-sequential kernels,
// so its per-solve times carry the fan-out's contention — a throughput
// breakdown, not standalone deployment latencies. Consumers comparing
// against a latency budget should anchor on the median (as
// bench::scheme_time_scale does, which cancels uniform inflation) or measure
// a standalone solve() separately; batch latency is `wall_seconds`.
struct BatchSolve {
  std::vector<Allocation> allocs;
  std::vector<double> solve_seconds;
  double wall_seconds = 0.0;
};

// Numeric precision of a scheme's NN forward pass (the set_precision knob).
// f64 is the reference everywhere; f32 mirrors the paper's fp32 GPU
// inference — only the neural forward narrows, the ADMM fine-tune and every
// reduction stay double, so the flow-allocation error is bounded by logit
// rounding alone (tests/precision_test.cpp measures the bound per topology).
// bf16 narrows only the *stored weights* one step further (f32 -> bf16 with
// round-to-nearest-even at snapshot time, widened back to f32 in the kernel
// inner loop): activations, bias and every accumulation stay f32, so it is
// f32 inference with 8-bit-mantissa weights — halved weight streaming at a
// larger, still-ledgered allocation error.
enum class Precision { f64, f32, bf16 };

const char* precision_name(Precision p);

class Scheme {
 public:
  virtual ~Scheme() = default;

  virtual std::string name() const = 0;

  // Computes an allocation for the given traffic matrix. Implementations must
  // time their own solve path and report it via last_solve_seconds().
  virtual Allocation solve(const Problem& pb, const TrafficMatrix& tm) = 0;

  // Same solve, writing into a caller-owned Allocation (capacity reused on
  // warm calls). Default delegates to solve(); workspace-based schemes
  // override it as their primary, allocation-free path.
  virtual void solve_into(const Problem& pb, const TrafficMatrix& tm, Allocation& out);

  // Solves every matrix in `tms`. Default: sequential solve() loop (the right
  // shape for the LP baselines). Overrides may compute the allocations in
  // parallel but must return results identical to the sequential loop.
  virtual BatchSolve solve_batch(const Problem& pb, std::span<const TrafficMatrix> tms);

  // Wall-clock duration of the most recent solve() call, per Table 2's
  // breakdown (e.g. LP-top includes its model rebuilding time). After a
  // solve_batch() this is the batch's final solve.
  virtual double last_solve_seconds() const = 0;

  // True when the scheme keeps reusable per-solve state (workspaces), so its
  // first solve pays one-time construction cost. Timing-focused benches give
  // such schemes one untimed warmup solve (§5.1 excludes one-time costs);
  // stateless schemes would just burn a full solve.
  virtual bool has_warm_state() const { return false; }

  // True when solve_batch() actually fans out in parallel. The online
  // simulator batches the whole trace for such schemes; for sequential
  // schemes it keeps the lazy control loop and only computes the solves
  // that would really start (no wasted work).
  virtual bool supports_parallel_batch() const { return false; }

  // True when the scheme can parallelize a *single* solve across demand
  // shards (core::ShardPlan). Orthogonal to supports_parallel_batch:
  // batching raises throughput across matrices, sharding cuts the latency
  // of one solve on one huge matrix. Sharded results must be bit-identical
  // to the sequential solve for every shard count.
  virtual bool supports_demand_sharding() const { return false; }

  // Shard-count knob for demand-sharding schemes: 0 = auto (the
  // core::auto_shard_count cost model against the threads available to the
  // calling context), 1 = sequential, n = exactly n shards (clamped to the
  // demand count). A pure latency knob — results never change. Default:
  // ignored by schemes without sharding support.
  virtual void set_shard_count(int /*n*/) {}
  virtual int shard_count() const { return 1; }

  // True when the scheme can run its solve at precision `p`. LP baselines
  // are f64-only; TealScheme also supports f32 and bf16 (narrowed NN
  // forward).
  virtual bool supports_precision(Precision p) const { return p == Precision::f64; }

  // Precision knob, mirroring the shard knob's conventions: callers check
  // supports_precision() first; schemes without f32 support ignore the call.
  // Unlike the shard knob this is NOT a pure latency knob — f32 perturbs the
  // allocation within the tested error bound — and switching precision may
  // do one-time work (weight snapshots), so it must not race with concurrent
  // solves: set it before serving/batching starts.
  virtual void set_precision(Precision /*p*/) {}
  virtual Precision precision() const { return Precision::f64; }

  // Scoped apply/restore of the precision knob, shared by the run drivers
  // (sim::run_online, sim::run_served): engages only when `p` is set,
  // differs from the scheme's current setting and is supported; restores the
  // previous setting on destruction. The scheme must outlive the scope and
  // must not solve concurrently at the moments of apply/restore.
  class ScopedPrecision {
   public:
    ScopedPrecision(Scheme& scheme, std::optional<Precision> p) {
      if (p.has_value() && *p != scheme.precision() && scheme.supports_precision(*p)) {
        scheme_ = &scheme;
        prev_ = scheme.precision();
        scheme.set_precision(*p);
      }
    }
    ~ScopedPrecision() {
      if (scheme_ != nullptr) scheme_->set_precision(prev_);
    }
    ScopedPrecision(const ScopedPrecision&) = delete;
    ScopedPrecision& operator=(const ScopedPrecision&) = delete;

   private:
    Scheme* scheme_ = nullptr;
    Precision prev_ = Precision::f64;
  };

  // Called when link capacities change (failures §5.3). Default: nothing —
  // most schemes read capacities from the Problem on each solve.
  virtual void on_topology_change(const Problem& /*pb*/) {}
};

// Sequential batched solve through the base-class loop regardless of the
// scheme's solve_batch override: each solve runs standalone (free to use the
// whole thread pool internally), so per-solve seconds are deployment-faithful
// latencies. The latency-focused figure benches (computation-time tables and
// CDFs) use this; throughput consumers use solve_batch().
BatchSolve solve_batch_sequential(Scheme& scheme, const Problem& pb,
                                  std::span<const TrafficMatrix> tms);

using SchemePtr = std::unique_ptr<Scheme>;

}  // namespace teal::te
