// objective.h — TE objectives and allocation evaluation (§5.1, §5.5).
//
// Three operator objectives from the paper:
//   * TotalFlow            — maximize total feasible flow (default, §5.2);
//   * MinMaxLinkUtil       — minimize the max link utilization (§5.5);
//   * LatencyPenalizedFlow — maximize total flow with delay penalties (§5.5).
//
// Evaluation mirrors the paper's semantics: an allocation may *intend* to put
// more traffic on a link than its capacity (neural networks cannot enforce
// constraints, §3.4); the network then drops the excess proportionally from
// every flow crossing the overloaded link. `total_feasible_flow` implements
// that reconciliation and is deliberately non-differentiable — it is the RL
// reward. The `surrogate_loss` below is the differentiable approximation used
// by the direct-loss ablation (Appendix A).
#pragma once

#include <string>
#include <vector>

#include "te/problem.h"

namespace teal::te {

enum class Objective {
  kTotalFlow,
  kMinMaxLinkUtil,
  kLatencyPenalizedFlow,
};

std::string to_string(Objective obj);

// Intended load per edge: sum over paths through the edge of split * volume.
std::vector<double> edge_loads(const Problem& pb, const TrafficMatrix& tm,
                               const Allocation& a);

// Same, into a caller-owned buffer (capacity reused on warm calls) — the
// per-step form the workspace-batched trainers drive. Accumulation order is
// identical to edge_loads(), so the two are bit-equal.
void edge_loads_into(const Problem& pb, const TrafficMatrix& tm, const Allocation& a,
                     std::vector<double>& load);

// Allocation-free evaluation forms over precomputed intended loads
// (edge_loads_into). These are the single source of truth for the objective
// arithmetic: the allocating functions below delegate to them, and warm-path
// consumers (RewardSimulator::set_state, the direct-loss training step) call
// them directly with reused buffers — so trainer-side values are bit-equal
// to objective_score by construction, not by parallel implementation.
// `factor_scratch` holds the per-edge survival factors (resized/overwritten
// per call; capacity reused when warm).
double total_feasible_flow_from_loads(const Problem& pb, const TrafficMatrix& tm,
                                      const Allocation& a, const std::vector<double>& caps,
                                      const std::vector<double>& load,
                                      std::vector<double>& factor_scratch);
double max_link_utilization_from_loads(const std::vector<double>& caps,
                                       const std::vector<double>& load);
double latency_penalized_flow_from_loads(const Problem& pb, const TrafficMatrix& tm,
                                         const Allocation& a, double penalty,
                                         const std::vector<double>& caps,
                                         const std::vector<double>& load,
                                         std::vector<double>& factor_scratch);
double surrogate_loss_value_from_loads(const Problem& pb, const TrafficMatrix& tm,
                                       const Allocation& a, const std::vector<double>& caps,
                                       const std::vector<double>& load);

// Per-path delivered volume after proportional dropping: each path delivers
// split * volume * min over its edges of min(1, capacity/load). `capacities`
// defaults to the problem graph's (pass a modified copy for failures; failed
// links have capacity 0 and deliver nothing).
std::vector<double> delivered_per_path(const Problem& pb, const TrafficMatrix& tm,
                                       const Allocation& a,
                                       const std::vector<double>* capacities = nullptr);

// Total feasible flow (the default TE objective and the RL reward).
double total_feasible_flow(const Problem& pb, const TrafficMatrix& tm, const Allocation& a,
                           const std::vector<double>* capacities = nullptr);

// Satisfied demand in percent: 100 * total feasible flow / total demand.
double satisfied_demand_pct(const Problem& pb, const TrafficMatrix& tm, const Allocation& a,
                            const std::vector<double>* capacities = nullptr);

// Max link utilization of the *intended* loads (the min-MLU objective routes
// all traffic; utilization may exceed 1 for a bad allocation).
double max_link_utilization(const Problem& pb, const TrafficMatrix& tm, const Allocation& a,
                            const std::vector<double>* capacities = nullptr);

// Latency-penalized total flow: each path's delivered volume is weighted by
// (1 - penalty * path_latency / max_path_latency), clamped at >= 0. Linear in
// the allocation for LP solvers when evaluated on intended flow.
double latency_penalized_flow(const Problem& pb, const TrafficMatrix& tm, const Allocation& a,
                              double penalty = 0.5,
                              const std::vector<double>* capacities = nullptr);

// The differentiable surrogate for total feasible flow (Appendix A):
// total intended flow minus total link overutilization.
double surrogate_loss_value(const Problem& pb, const TrafficMatrix& tm, const Allocation& a,
                            const std::vector<double>* capacities = nullptr);

// Scores an allocation under `obj` with "higher is better" semantics (MLU is
// negated), so schemes and tests can compare uniformly.
double objective_score(const Problem& pb, const TrafficMatrix& tm, const Allocation& a,
                       Objective obj, const std::vector<double>* capacities = nullptr);

// Scales splits down per-demand so that no link's intended load exceeds its
// capacity (a conservative feasibility repair; used by tests and by schemes
// that must output strictly feasible allocations).
Allocation repair_to_feasible(const Problem& pb, const TrafficMatrix& tm, Allocation a,
                              const std::vector<double>* capacities = nullptr,
                              int max_rounds = 8);

}  // namespace teal::te
