// objective.h — TE objectives and allocation evaluation (§5.1, §5.5).
//
// Three operator objectives from the paper:
//   * TotalFlow            — maximize total feasible flow (default, §5.2);
//   * MinMaxLinkUtil       — minimize the max link utilization (§5.5);
//   * LatencyPenalizedFlow — maximize total flow with delay penalties (§5.5).
//
// Evaluation mirrors the paper's semantics: an allocation may *intend* to put
// more traffic on a link than its capacity (neural networks cannot enforce
// constraints, §3.4); the network then drops the excess proportionally from
// every flow crossing the overloaded link. `total_feasible_flow` implements
// that reconciliation and is deliberately non-differentiable — it is the RL
// reward. The `surrogate_loss` below is the differentiable approximation used
// by the direct-loss ablation (Appendix A).
#pragma once

#include <string>
#include <vector>

#include "te/problem.h"

namespace teal::te {

enum class Objective {
  kTotalFlow,
  kMinMaxLinkUtil,
  kLatencyPenalizedFlow,
};

std::string to_string(Objective obj);

// Intended load per edge: sum over paths through the edge of split * volume.
std::vector<double> edge_loads(const Problem& pb, const TrafficMatrix& tm,
                               const Allocation& a);

// Per-path delivered volume after proportional dropping: each path delivers
// split * volume * min over its edges of min(1, capacity/load). `capacities`
// defaults to the problem graph's (pass a modified copy for failures; failed
// links have capacity 0 and deliver nothing).
std::vector<double> delivered_per_path(const Problem& pb, const TrafficMatrix& tm,
                                       const Allocation& a,
                                       const std::vector<double>* capacities = nullptr);

// Total feasible flow (the default TE objective and the RL reward).
double total_feasible_flow(const Problem& pb, const TrafficMatrix& tm, const Allocation& a,
                           const std::vector<double>* capacities = nullptr);

// Satisfied demand in percent: 100 * total feasible flow / total demand.
double satisfied_demand_pct(const Problem& pb, const TrafficMatrix& tm, const Allocation& a,
                            const std::vector<double>* capacities = nullptr);

// Max link utilization of the *intended* loads (the min-MLU objective routes
// all traffic; utilization may exceed 1 for a bad allocation).
double max_link_utilization(const Problem& pb, const TrafficMatrix& tm, const Allocation& a,
                            const std::vector<double>* capacities = nullptr);

// Latency-penalized total flow: each path's delivered volume is weighted by
// (1 - penalty * path_latency / max_path_latency), clamped at >= 0. Linear in
// the allocation for LP solvers when evaluated on intended flow.
double latency_penalized_flow(const Problem& pb, const TrafficMatrix& tm, const Allocation& a,
                              double penalty = 0.5,
                              const std::vector<double>* capacities = nullptr);

// The differentiable surrogate for total feasible flow (Appendix A):
// total intended flow minus total link overutilization.
double surrogate_loss_value(const Problem& pb, const TrafficMatrix& tm, const Allocation& a,
                            const std::vector<double>* capacities = nullptr);

// Scores an allocation under `obj` with "higher is better" semantics (MLU is
// negated), so schemes and tests can compare uniformly.
double objective_score(const Problem& pb, const TrafficMatrix& tm, const Allocation& a,
                       Objective obj, const std::vector<double>* capacities = nullptr);

// Scales splits down per-demand so that no link's intended load exceeds its
// capacity (a conservative feasibility repair; used by tests and by schemes
// that must output strictly feasible allocations).
Allocation repair_to_feasible(const Problem& pb, const TrafficMatrix& tm, Allocation a,
                              const std::vector<double>* capacities = nullptr,
                              int max_rounds = 8);

}  // namespace teal::te
