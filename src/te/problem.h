// problem.h — the path formulation of WAN traffic engineering (Appendix A).
//
// A Problem fixes everything that changes rarely: the topology G = (V, E, c),
// the demand set D (source-destination pairs), and each demand's preconfigured
// path set P_d (by default its 4 shortest paths). The per-interval inputs are
// a TrafficMatrix (one volume per demand) and, for failure experiments, a
// capacity vector override. The decision variable is an Allocation: a split
// ratio F_d(p) in [0,1] per (demand, path), with sum_p F_d(p) <= 1.
//
// Problem precomputes the flattened index structures every solver in this
// repo shares: a global path id space, per-demand offsets, path->edge lists
// and edge->path inverted lists.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "topo/graph.h"
#include "topo/shortest_path.h"

namespace teal::te {

struct Demand {
  topo::NodeId src = 0;
  topo::NodeId dst = 0;
};

// Per-interval demand volumes, one per Problem demand (aligned indices).
struct TrafficMatrix {
  std::vector<double> volume;

  double total() const;
};

// Split ratios per global path id, in demand order (paths of demand d occupy
// the contiguous id range [path_offset[d], path_offset[d+1])).
struct Allocation {
  std::vector<double> split;
};

class Problem {
 public:
  // Builds the path formulation for `demands` on `g`, precomputing up to
  // `k_paths` shortest paths per demand (demands with no path are dropped).
  Problem(topo::Graph g, std::vector<Demand> demands, int k_paths = 4);

  const topo::Graph& graph() const { return graph_; }
  topo::Graph& mutable_graph() { return graph_; }

  int num_demands() const { return static_cast<int>(demands_.size()); }
  const Demand& demand(int d) const { return demands_[static_cast<std::size_t>(d)]; }
  const std::vector<Demand>& demands() const { return demands_; }

  int k_paths() const { return k_paths_; }

  // Global path id range of demand d: [path_begin(d), path_end(d)).
  int path_begin(int d) const { return path_offset_[static_cast<std::size_t>(d)]; }
  int path_end(int d) const { return path_offset_[static_cast<std::size_t>(d) + 1]; }
  int num_paths(int d) const { return path_end(d) - path_begin(d); }
  int total_paths() const { return path_offset_.back(); }

  // Demand that owns global path id p.
  int demand_of_path(int p) const { return path_demand_[static_cast<std::size_t>(p)]; }

  // Edges of global path p.
  const topo::Path& path_edges(int p) const { return path_edges_[static_cast<std::size_t>(p)]; }

  // Latency of global path p (sum of edge latencies; cached).
  double path_latency(int p) const { return path_latency_[static_cast<std::size_t>(p)]; }

  // Global path ids traversing edge e.
  const std::vector<int>& paths_on_edge(topo::EdgeId e) const {
    return edge_paths_[static_cast<std::size_t>(e)];
  }

  // Zero-filled allocation of the right size.
  Allocation empty_allocation() const { return Allocation{std::vector<double>(total_paths(), 0.0)}; }

  // Allocation that pins every demand fully onto its shortest path.
  Allocation shortest_path_allocation() const;

  // Throws if `a` has the wrong size, negative splits, or per-demand split
  // sums exceeding 1 + tol.
  void validate_allocation(const Allocation& a, double tol = 1e-6) const;

  // Capacity vector snapshot (index = edge id). Failure experiments pass a
  // modified copy to the evaluation functions instead of mutating the graph.
  std::vector<double> capacities() const;

  // Same snapshot written into a caller-owned vector; reuses its capacity so
  // the workspace-based solve path stays allocation-free.
  void capacities_into(std::vector<double>& out) const;

 private:
  topo::Graph graph_;
  std::vector<Demand> demands_;
  int k_paths_;
  std::vector<int> path_offset_;             // size num_demands()+1
  std::vector<int> path_demand_;             // size total_paths()
  std::vector<topo::Path> path_edges_;       // size total_paths()
  std::vector<double> path_latency_;         // size total_paths()
  std::vector<std::vector<int>> edge_paths_; // size num_edges()
};

// All (src, dst) ordered pairs of g.
std::vector<Demand> all_pairs_demands(const topo::Graph& g);

}  // namespace teal::te
