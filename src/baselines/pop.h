// pop.h — POP: Partitioned Optimization Problems (Narayanan et al., SOSP'21).
//
// POP replicates the whole topology k times, gives each replica 1/k of every
// link capacity, randomly assigns each demand to one replica, and solves the
// k subproblems concurrently with the LP engine; the union of the per-replica
// allocations is feasible by construction (capacities partition). "Client
// splitting" breaks demands larger than a threshold into equal sub-demands
// spread over several replicas so no single replica is overwhelmed by an
// elephant flow (threshold 0.25 per §5.1).
#pragma once

#include "baselines/lp_schemes.h"
#include "te/scheme.h"

namespace teal::baselines {

struct PopConfig {
  int k = 0;                       // 0 = paper defaults by size (1/4/128)
  double split_threshold = 0.25;   // of (max link capacity / k), per §5.1
  // Client splitting divides an oversized demand across a bounded number of
  // replicas (unbounded splitting would degenerate into re-solving the whole
  // LP and erase POP's speed/quality tradeoff).
  int max_split_pieces = 32;
  lp::PdhgOptions pdhg;
  std::uint64_t seed = 17;
};

// Paper §5.1: k = 1 for B4/SWAN, 4 for UsCarrier, 128 for Kdl/ASN.
int default_pop_replicas(int n_nodes);

class PopScheme : public te::Scheme {
 public:
  explicit PopScheme(PopConfig cfg = {}) : cfg_(std::move(cfg)) {}

  std::string name() const override { return "POP"; }
  te::Allocation solve(const te::Problem& pb, const te::TrafficMatrix& tm) override;
  double last_solve_seconds() const override { return last_seconds_; }

 private:
  PopConfig cfg_;
  double last_seconds_ = 0.0;
};

}  // namespace teal::baselines
