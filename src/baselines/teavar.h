// teavar.h — TEAVAR* (Bogle et al., SIGCOMM'19; the total-flow variant
// adapted by NCFlow, §5.1).
//
// TEAVAR balances utilization against an operator availability target by
// penalizing allocations that would lose traffic under probable link-failure
// scenarios. We implement the total-flow variant as a weighted LP: each
// path's objective coefficient is discounted by the probability that one of
// its links fails (single-link failure scenarios, independent probabilities),
// scaled by an availability weight theta, and the LP additionally reserves
// `headroom` capacity for post-failure restoration. Both knobs make TEAVAR*
// deliberately sacrifice utilization for availability — the behaviour
// Figure 8 shows on B4 (it trails the other schemes by a few percent whether
// or not failures occur). Like in the paper it is only practical on small
// topologies.
#pragma once

#include "baselines/lp_schemes.h"
#include "te/scheme.h"

namespace teal::baselines {

struct TeavarConfig {
  double link_failure_prob = 0.01;  // per-link scenario probability
  double theta = 4.0;               // availability weight on expected loss
  double headroom = 0.12;           // capacity fraction reserved for restoration
  lp::PdhgOptions pdhg;
};

class TeavarStarScheme : public te::Scheme {
 public:
  explicit TeavarStarScheme(TeavarConfig cfg = {}) : cfg_(std::move(cfg)) {}

  std::string name() const override { return "TEAVAR*"; }
  te::Allocation solve(const te::Problem& pb, const te::TrafficMatrix& tm) override;
  double last_solve_seconds() const override { return last_seconds_; }

 private:
  TeavarConfig cfg_;
  double last_seconds_ = 0.0;
};

}  // namespace teal::baselines
