#include "baselines/ncflow.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <queue>

#include "te/objective.h"
#include "util/rng.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace teal::baselines {

std::vector<int> partition_nodes(const topo::Graph& g, int k, std::uint64_t seed) {
  const int n = g.num_nodes();
  k = std::clamp(k, 1, n);
  std::vector<int> cluster(static_cast<std::size_t>(n), -1);
  util::Rng rng(seed);

  // Pick k seeds spread out by repeated farthest-first traversal, then grow
  // clusters with synchronized BFS (keeps them connected and balanced-ish).
  std::vector<topo::NodeId> seeds;
  seeds.push_back(static_cast<topo::NodeId>(rng.uniform_int(0, n - 1)));
  std::vector<int> dist(static_cast<std::size_t>(n), 1 << 30);
  auto relax_from = [&](topo::NodeId s) {
    std::queue<topo::NodeId> q;
    q.push(s);
    dist[static_cast<std::size_t>(s)] = 0;
    std::vector<int> local(static_cast<std::size_t>(n), -1);
    local[static_cast<std::size_t>(s)] = 0;
    while (!q.empty()) {
      auto v = q.front();
      q.pop();
      for (topo::EdgeId e : g.out_edges(v)) {
        auto u = g.edge(e).dst;
        if (local[static_cast<std::size_t>(u)] < 0) {
          local[static_cast<std::size_t>(u)] = local[static_cast<std::size_t>(v)] + 1;
          dist[static_cast<std::size_t>(u)] =
              std::min(dist[static_cast<std::size_t>(u)], local[static_cast<std::size_t>(u)]);
          q.push(u);
        }
      }
    }
  };
  relax_from(seeds[0]);
  while (static_cast<int>(seeds.size()) < k) {
    int best = -1, bd = -1;
    for (int v = 0; v < n; ++v) {
      if (dist[static_cast<std::size_t>(v)] > bd) {
        bd = dist[static_cast<std::size_t>(v)];
        best = v;
      }
    }
    seeds.push_back(static_cast<topo::NodeId>(best));
    relax_from(seeds.back());
  }

  // Multi-source BFS, one queue per seed, round-robin growth.
  std::vector<std::queue<topo::NodeId>> frontier(seeds.size());
  for (std::size_t c = 0; c < seeds.size(); ++c) {
    if (cluster[static_cast<std::size_t>(seeds[c])] < 0) {
      cluster[static_cast<std::size_t>(seeds[c])] = static_cast<int>(c);
      frontier[c].push(seeds[c]);
    }
  }
  bool progress = true;
  while (progress) {
    progress = false;
    for (std::size_t c = 0; c < frontier.size(); ++c) {
      if (frontier[c].empty()) continue;
      auto v = frontier[c].front();
      frontier[c].pop();
      progress = true;
      for (topo::EdgeId e : g.out_edges(v)) {
        auto u = g.edge(e).dst;
        if (cluster[static_cast<std::size_t>(u)] < 0) {
          cluster[static_cast<std::size_t>(u)] = static_cast<int>(c);
          frontier[c].push(u);
        }
      }
    }
  }
  // Isolated leftovers (disconnected graphs) join cluster 0.
  for (auto& cl : cluster) {
    if (cl < 0) cl = 0;
  }
  return cluster;
}

NcFlowScheme::NcFlowScheme(const te::Problem& pb, NcFlowConfig cfg) : cfg_(std::move(cfg)) {
  const auto& g = pb.graph();
  const int n = g.num_nodes();
  n_clusters_ = cfg_.n_clusters > 0
                    ? cfg_.n_clusters
                    : std::clamp(static_cast<int>(std::lround(3.0 * std::sqrt(n))), 2,
                                 std::max(2, n / 4));
  cluster_of_ = partition_nodes(g, n_clusters_, cfg_.seed);

  // Contracted graph: one node per cluster; parallel inter-cluster links are
  // merged with summed capacity and min latency.
  topo::Graph cg("NCFlow-contracted");
  cg.add_nodes(n_clusters_);
  std::map<std::pair<int, int>, std::pair<double, double>> agg;  // (cap, lat)
  for (topo::EdgeId e = 0; e < g.num_edges(); ++e) {
    const auto& ed = g.edge(e);
    int cs = cluster_of_[static_cast<std::size_t>(ed.src)];
    int ct = cluster_of_[static_cast<std::size_t>(ed.dst)];
    if (cs == ct) continue;
    auto& entry = agg[{cs, ct}];
    if (entry.first == 0.0) entry.second = ed.latency;
    entry.first += ed.capacity;
    entry.second = std::min(entry.second, ed.latency);
  }
  for (const auto& [key, val] : agg) {
    cg.add_edge(key.first, key.second, val.first, val.second);
  }

  // Demand bundles per ordered cluster pair.
  std::map<std::pair<int, int>, int> bundle_index;
  std::vector<te::Demand> bundles;
  bundle_of_demand_.assign(static_cast<std::size_t>(pb.num_demands()), -1);
  cluster_demands_.assign(static_cast<std::size_t>(n_clusters_), {});
  for (int d = 0; d < pb.num_demands(); ++d) {
    int cs = cluster_of_[static_cast<std::size_t>(pb.demand(d).src)];
    int ct = cluster_of_[static_cast<std::size_t>(pb.demand(d).dst)];
    if (cs == ct) {
      cluster_demands_[static_cast<std::size_t>(cs)].push_back(d);
      continue;
    }
    auto [it, inserted] = bundle_index.try_emplace({cs, ct}, static_cast<int>(bundles.size()));
    if (inserted) {
      bundles.push_back(te::Demand{static_cast<topo::NodeId>(cs),
                                   static_cast<topo::NodeId>(ct)});
    }
    bundle_of_demand_[static_cast<std::size_t>(d)] = it->second;
  }
  contracted_ = std::make_unique<te::Problem>(std::move(cg), std::move(bundles),
                                              pb.k_paths());
  // Problem construction may drop unreachable bundles; remap.
  {
    std::map<std::pair<int, int>, int> kept;
    for (int b = 0; b < contracted_->num_demands(); ++b) {
      kept[{contracted_->demand(b).src, contracted_->demand(b).dst}] = b;
    }
    for (int d = 0; d < pb.num_demands(); ++d) {
      int& bd = bundle_of_demand_[static_cast<std::size_t>(d)];
      if (bd < 0) continue;
      int cs = cluster_of_[static_cast<std::size_t>(pb.demand(d).src)];
      int ct = cluster_of_[static_cast<std::size_t>(pb.demand(d).dst)];
      auto it = kept.find({cs, ct});
      bd = it == kept.end() ? -1 : it->second;
    }
  }

  // Intra paths per demand: paths that never leave the demand's cluster.
  cluster_intra_paths_.assign(static_cast<std::size_t>(pb.num_demands()), {});
  for (int c = 0; c < n_clusters_; ++c) {
    for (int d : cluster_demands_[static_cast<std::size_t>(c)]) {
      for (int p = pb.path_begin(d); p < pb.path_end(d); ++p) {
        bool inside = true;
        for (topo::EdgeId e : pb.path_edges(p)) {
          if (cluster_of_[static_cast<std::size_t>(pb.graph().edge(e).src)] != c ||
              cluster_of_[static_cast<std::size_t>(pb.graph().edge(e).dst)] != c) {
            inside = false;
            break;
          }
        }
        if (inside) cluster_intra_paths_[static_cast<std::size_t>(d)].push_back(p);
      }
    }
  }
}

te::Allocation NcFlowScheme::solve(const te::Problem& pb, const te::TrafficMatrix& tm) {
  util::Timer timer;
  te::Allocation a = pb.empty_allocation();

  // --- 1. Contracted inter-cluster LP on aggregated bundles.
  te::TrafficMatrix bundle_tm;
  bundle_tm.volume.assign(static_cast<std::size_t>(contracted_->num_demands()), 0.0);
  for (int d = 0; d < pb.num_demands(); ++d) {
    int b = bundle_of_demand_[static_cast<std::size_t>(d)];
    if (b >= 0) bundle_tm.volume[static_cast<std::size_t>(b)] += tm.volume[static_cast<std::size_t>(d)];
  }
  lp::FlowLpSpec cspec;
  te::Allocation bundle_alloc = lp::solve_flow_lp(*contracted_, bundle_tm, cspec, cfg_.pdhg);
  // Routed fraction per bundle.
  std::vector<double> bundle_frac(static_cast<std::size_t>(contracted_->num_demands()), 0.0);
  for (int b = 0; b < contracted_->num_demands(); ++b) {
    double s = 0.0;
    for (int p = contracted_->path_begin(b); p < contracted_->path_end(b); ++p) {
      s += bundle_alloc.split[static_cast<std::size_t>(p)];
    }
    bundle_frac[static_cast<std::size_t>(b)] = std::min(1.0, s);
  }

  // --- 2. Map bundle fractions back: each inter-cluster demand routes its
  // bundle's admitted fraction on its shortest preconfigured path. This is
  // the lossy step of the decomposition — NCFlow routes each demand bundle
  // over one cluster-level path and does not re-split per-demand inside the
  // bundle, which is exactly where the paper finds it loses allocation
  // quality (72.6% on UsCarrier vs 96.2% optimal, 63.8% on Kdl).
  for (int d = 0; d < pb.num_demands(); ++d) {
    int b = bundle_of_demand_[static_cast<std::size_t>(d)];
    if (b < 0) continue;
    a.split[static_cast<std::size_t>(pb.path_begin(d))] =
        bundle_frac[static_cast<std::size_t>(b)];
  }

  // --- 3. Residual capacities after inter-cluster traffic.
  std::vector<double> residual = pb.capacities();
  {
    auto load = te::edge_loads(pb, tm, a);
    for (std::size_t e = 0; e < residual.size(); ++e) {
      residual[e] = std::max(0.0, residual[e] - load[e]);
    }
  }

  // --- 4. Per-cluster intra LPs, concurrently (restricted to paths that stay
  // inside the cluster).
  std::vector<te::Allocation> cluster_alloc(static_cast<std::size_t>(n_clusters_));
  util::ThreadPool::global().parallel_for(
      static_cast<std::size_t>(n_clusters_), [&](std::size_t c) {
        const auto& ds = cluster_demands_[c];
        if (ds.empty()) return;
        lp::FlowLpSpec spec;
        spec.demand_subset = ds;
        spec.capacities = residual;
        cluster_alloc[c] = lp::solve_flow_lp(pb, tm, spec, cfg_.pdhg);
      });
  for (int c = 0; c < n_clusters_; ++c) {
    const auto& ca = cluster_alloc[static_cast<std::size_t>(c)];
    if (ca.split.empty()) continue;
    for (int d : cluster_demands_[static_cast<std::size_t>(c)]) {
      // Keep only splits on intra-cluster paths.
      for (int p : cluster_intra_paths_[static_cast<std::size_t>(d)]) {
        a.split[static_cast<std::size_t>(p)] = ca.split[static_cast<std::size_t>(p)];
      }
    }
  }

  // --- 5. Coalescing pass: make the merged allocation feasible.
  a = te::repair_to_feasible(pb, tm, std::move(a));
  last_seconds_ = timer.seconds();
  return a;
}

}  // namespace teal::baselines
