#include "baselines/lp_schemes.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/timer.h"

namespace teal::baselines {

te::Allocation solve_objective_lp(const te::Problem& pb, const te::TrafficMatrix& tm,
                                  const LpSchemeConfig& cfg,
                                  const std::vector<int>& subset,
                                  const std::vector<double>& capacities) {
  lp::FlowLpSpec spec;
  spec.demand_subset = subset;
  spec.capacities = capacities;
  switch (cfg.objective) {
    case te::Objective::kTotalFlow:
      return lp::solve_flow_lp(pb, tm, spec, cfg.pdhg);
    case te::Objective::kLatencyPenalizedFlow:
      spec.path_weight = lp::latency_penalty_weights(pb, cfg.latency_penalty);
      return lp::solve_flow_lp(pb, tm, spec, cfg.pdhg);
    case te::Objective::kMinMaxLinkUtil: {
      // MLU is solved on the full problem (subset/capacity overrides are a
      // flow-scheme concept); ignore them here.
      te::Allocation a;
      lp::solve_min_mlu(pb, tm, cfg.pdhg, &a);
      return a;
    }
  }
  return pb.empty_allocation();
}

te::Allocation LpAllScheme::solve(const te::Problem& pb, const te::TrafficMatrix& tm) {
  util::Timer timer;
  te::Allocation a = solve_objective_lp(pb, tm, cfg_, {}, pb.capacities());
  last_seconds_ = timer.seconds();
  return a;
}

te::Allocation LpTopScheme::solve(const te::Problem& pb, const te::TrafficMatrix& tm) {
  util::Timer timer;  // includes "model rebuilding" — the subset selection and
                      // pinned-load pre-pass are redone per matrix (Table 2)
  const int nd = pb.num_demands();
  const auto top_k = static_cast<std::size_t>(
      std::max(1.0, std::ceil(alpha_ * static_cast<double>(nd))));

  // Top demands by volume in this matrix.
  std::vector<int> order(static_cast<std::size_t>(nd));
  std::iota(order.begin(), order.end(), 0);
  std::nth_element(order.begin(), order.begin() + static_cast<long>(top_k) - 1, order.end(),
                   [&](int a, int b) {
                     return tm.volume[static_cast<std::size_t>(a)] >
                            tm.volume[static_cast<std::size_t>(b)];
                   });
  std::vector<int> top(order.begin(), order.begin() + static_cast<long>(top_k));
  std::vector<char> in_top(static_cast<std::size_t>(nd), 0);
  for (int d : top) in_top[static_cast<std::size_t>(d)] = 1;

  // Pin the tail to shortest paths; give the LP the residual capacities.
  te::Allocation a = pb.empty_allocation();
  std::vector<double> residual = pb.capacities();
  for (int d = 0; d < nd; ++d) {
    if (in_top[static_cast<std::size_t>(d)]) continue;
    int sp = pb.path_begin(d);
    a.split[static_cast<std::size_t>(sp)] = 1.0;
    for (topo::EdgeId e : pb.path_edges(sp)) {
      residual[static_cast<std::size_t>(e)] = std::max(
          0.0, residual[static_cast<std::size_t>(e)] - tm.volume[static_cast<std::size_t>(d)]);
    }
  }

  te::Allocation top_alloc = solve_objective_lp(pb, tm, cfg_, top, residual);
  for (int d : top) {
    for (int p = pb.path_begin(d); p < pb.path_end(d); ++p) {
      a.split[static_cast<std::size_t>(p)] = top_alloc.split[static_cast<std::size_t>(p)];
    }
  }
  last_seconds_ = timer.seconds();
  return a;
}

}  // namespace teal::baselines
