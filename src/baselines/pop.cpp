#include "baselines/pop.h"

#include <algorithm>
#include <cmath>

#include "util/rng.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace teal::baselines {

int default_pop_replicas(int n_nodes) {
  if (n_nodes < 150) return 1;   // B4, SWAN
  if (n_nodes < 300) return 4;   // UsCarrier
  return 128;                    // Kdl, ASN
}

te::Allocation PopScheme::solve(const te::Problem& pb, const te::TrafficMatrix& tm) {
  util::Timer timer;
  const int nd = pb.num_demands();
  const int k = cfg_.k > 0 ? cfg_.k : default_pop_replicas(pb.graph().num_nodes());
  util::Rng rng(cfg_.seed);

  if (k <= 1) {
    lp::FlowLpSpec spec;
    te::Allocation a = lp::solve_flow_lp(pb, tm, spec, cfg_.pdhg);
    last_seconds_ = timer.seconds();
    return a;
  }

  // Replica capacities: 1/k of every link.
  std::vector<double> caps = pb.capacities();
  double max_cap = 0.0;
  for (double& c : caps) {
    max_cap = std::max(max_cap, c);
    c /= static_cast<double>(k);
  }
  const double split_above = cfg_.split_threshold * max_cap / static_cast<double>(k);

  // Random assignment with client splitting: each demand contributes volume
  // shares to one or more replicas.
  // share[r][d] = fraction of demand d's volume handled by replica r.
  std::vector<std::vector<std::pair<int, double>>> replica_demands(
      static_cast<std::size_t>(k));  // per replica: (demand, volume share)
  for (int d = 0; d < nd; ++d) {
    double vol = tm.volume[static_cast<std::size_t>(d)];
    int pieces = 1;
    if (split_above > 0.0 && vol > split_above) {
      pieces = std::min<int>(std::min(k, cfg_.max_split_pieces),
                             static_cast<int>(std::ceil(vol / split_above)));
    }
    // Distinct replicas for the pieces.
    auto rs = rng.sample_without_replacement(static_cast<std::size_t>(k),
                                             static_cast<std::size_t>(pieces));
    for (std::size_t i = 0; i < rs.size(); ++i) {
      replica_demands[rs[i]].emplace_back(d, 1.0 / static_cast<double>(pieces));
    }
  }

  // Solve the k subproblems in parallel; each sees its demands' partial
  // volumes against the 1/k capacities.
  std::vector<te::Allocation> sub(static_cast<std::size_t>(k));
  util::ThreadPool::global().parallel_for(static_cast<std::size_t>(k), [&](std::size_t r) {
    if (replica_demands[r].empty()) return;
    te::TrafficMatrix sub_tm;
    sub_tm.volume.assign(static_cast<std::size_t>(nd), 0.0);
    std::vector<int> subset;
    subset.reserve(replica_demands[r].size());
    for (auto [d, share] : replica_demands[r]) {
      subset.push_back(d);
      sub_tm.volume[static_cast<std::size_t>(d)] =
          tm.volume[static_cast<std::size_t>(d)] * share;
    }
    lp::FlowLpSpec spec;
    spec.demand_subset = subset;
    spec.capacities = caps;
    sub[r] = lp::solve_flow_lp(pb, sub_tm, spec, cfg_.pdhg);
  });

  // Merge: the demand's total split on path p is the share-weighted sum of
  // its sub-allocations (splits are fractions of the *full* volume).
  te::Allocation a = pb.empty_allocation();
  for (int r = 0; r < k; ++r) {
    const auto& sa = sub[static_cast<std::size_t>(r)];
    if (sa.split.empty()) continue;
    for (auto [d, share] : replica_demands[static_cast<std::size_t>(r)]) {
      for (int p = pb.path_begin(d); p < pb.path_end(d); ++p) {
        a.split[static_cast<std::size_t>(p)] +=
            sa.split[static_cast<std::size_t>(p)] * share;
      }
    }
  }
  last_seconds_ = timer.seconds();
  return a;
}

}  // namespace teal::baselines
