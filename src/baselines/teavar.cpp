#include "baselines/teavar.h"

#include <algorithm>

#include "util/timer.h"

namespace teal::baselines {

te::Allocation TeavarStarScheme::solve(const te::Problem& pb, const te::TrafficMatrix& tm) {
  util::Timer timer;
  // Availability-discounted path weights: a path crossing f links survives a
  // single-link-failure scenario set with probability ~ 1 - f*q, so its
  // expected-loss penalty is theta * q * (#links).
  lp::FlowLpSpec spec;
  spec.path_weight.assign(static_cast<std::size_t>(pb.total_paths()), 1.0);
  for (int p = 0; p < pb.total_paths(); ++p) {
    double fail = cfg_.link_failure_prob * static_cast<double>(pb.path_edges(p).size());
    spec.path_weight[static_cast<std::size_t>(p)] =
        std::max(0.05, 1.0 - cfg_.theta * fail);
  }
  // Restoration headroom.
  spec.capacities = pb.capacities();
  for (double& c : spec.capacities) c *= (1.0 - cfg_.headroom);

  te::Allocation a = lp::solve_flow_lp(pb, tm, spec, cfg_.pdhg);
  last_seconds_ = timer.seconds();
  return a;
}

}  // namespace teal::baselines
