// ncflow.h — NCFlow-style spatial decomposition (Abuzaid et al., NSDI 2021).
//
// NCFlow partitions the WAN into k clusters, solves TE subproblems per
// cluster and on a *contracted* graph (clusters as super-nodes, aggregated
// inter-cluster capacities and demand bundles), then merges the results into
// a valid global allocation — the merge being the nontrivial, iterative part
// the paper charges to its run time (Table 2). The decomposition buys
// parallelism but loses allocation quality, which is exactly the tradeoff
// Figure 6 shows (NCFlow is the fastest LP-based scheme on Kdl yet satisfies
// by far the least demand).
//
// Our rendition keeps that structure: BFS-grown balanced partitioning (a
// stand-in for FMPartitioning), a contracted path-LP for inter-cluster
// bundles, per-cluster LPs (solved concurrently on the thread pool) for
// intra-cluster demands on residual capacities, and a final feasibility
// repair representing the coalescing pass.
#pragma once

#include <vector>

#include "baselines/lp_schemes.h"
#include "te/scheme.h"
#include "topo/graph.h"

namespace teal::baselines {

// Balanced BFS-grown node partition into k clusters.
std::vector<int> partition_nodes(const topo::Graph& g, int k, std::uint64_t seed = 11);

struct NcFlowConfig {
  int n_clusters = 0;  // 0 = heuristic ~3*sqrt(n), the paper's 64-81 regime on Kdl
  lp::PdhgOptions pdhg;
  std::uint64_t seed = 11;
};

class NcFlowScheme : public te::Scheme {
 public:
  // Builds the partition and the contracted problem once (one-time setup).
  NcFlowScheme(const te::Problem& pb, NcFlowConfig cfg = {});

  std::string name() const override { return "NCFlow"; }
  te::Allocation solve(const te::Problem& pb, const te::TrafficMatrix& tm) override;
  double last_solve_seconds() const override { return last_seconds_; }

  int n_clusters() const { return n_clusters_; }

 private:
  NcFlowConfig cfg_;
  int n_clusters_ = 0;
  std::vector<int> cluster_of_;                  // node -> cluster
  std::unique_ptr<te::Problem> contracted_;      // cluster-level problem
  std::vector<int> bundle_of_demand_;            // demand -> contracted demand (-1 intra)
  std::vector<std::vector<int>> cluster_demands_;  // cluster -> intra demand ids
  std::vector<std::vector<int>> cluster_intra_paths_;  // per demand: paths fully inside
  double last_seconds_ = 0.0;
};

}  // namespace teal::baselines
