// lp_schemes.h — LP-all and LP-top (§5.1 baselines).
//
// LP-all hands the full TE LP of Equation (1) to the LP engine — the paper's
// production reference (Gurobi there, our PDHG path-LP solver here). LP-top
// is the "demand pinning" heuristic (Namyar et al. 2022): solve the LP for
// only the top alpha% of demands by volume and pin every remaining demand to
// its shortest path. Because the top set changes with every traffic matrix,
// LP-top must rebuild its model per interval; per Table 2 that rebuilding
// time is charged to its computation time.
#pragma once

#include <vector>

#include "lp/path_lp.h"
#include "te/scheme.h"

namespace teal::baselines {

struct LpSchemeConfig {
  lp::PdhgOptions pdhg;
  te::Objective objective = te::Objective::kTotalFlow;
  double latency_penalty = 0.5;
};

class LpAllScheme : public te::Scheme {
 public:
  explicit LpAllScheme(LpSchemeConfig cfg = {}) : cfg_(std::move(cfg)) {}

  std::string name() const override { return "LP-all"; }
  te::Allocation solve(const te::Problem& pb, const te::TrafficMatrix& tm) override;
  double last_solve_seconds() const override { return last_seconds_; }

 private:
  LpSchemeConfig cfg_;
  double last_seconds_ = 0.0;
};

class LpTopScheme : public te::Scheme {
 public:
  // alpha: fraction of demands solved by LP (0.10 per §5.1 — "the top 10% of
  // demands account for 88.4% of the total volume").
  explicit LpTopScheme(double alpha = 0.10, LpSchemeConfig cfg = {})
      : alpha_(alpha), cfg_(std::move(cfg)) {}

  std::string name() const override { return "LP-top"; }
  te::Allocation solve(const te::Problem& pb, const te::TrafficMatrix& tm) override;
  double last_solve_seconds() const override { return last_seconds_; }

 private:
  double alpha_;
  LpSchemeConfig cfg_;
  double last_seconds_ = 0.0;
};

// Shared helper: solve the chosen objective on a demand subset against the
// given capacities (empty subset = all demands). Used by LP-all/LP-top and
// by NCFlow/POP's subproblems.
te::Allocation solve_objective_lp(const te::Problem& pb, const te::TrafficMatrix& tm,
                                  const LpSchemeConfig& cfg,
                                  const std::vector<int>& subset,
                                  const std::vector<double>& capacities);

}  // namespace teal::baselines
