// placement.h — pluggable replica-placement policies for the serving fleet.
//
// A fleet has one replica budget (usually the machine's core count) and many
// tenants; the placement policy decides how many replicas each tenant's
// server gets. The seam is deliberately narrow — a pure function from
// per-tenant demand descriptors to per-tenant counts — so policies stay
// stateless, trivially testable, and swappable at fleet construction without
// touching the registry or the routing path (the scheduler-plugin shape:
// policy code never sees a socket or a queue).
//
// Three policies to start:
//  * static        — honor each tenant's requested_replicas verbatim
//                    (0 = one), ignoring the budget; capacity planning done
//                    by the operator.
//  * round-robin   — deal the budget one replica at a time across tenants;
//                    equal shares regardless of tenant size.
//  * load-proportional — split the budget by expected load, weight =
//                    offered_weight x per-solve cost, where cost reuses the
//                    shard cost model's unit (total paths — what the hot
//                    loops iterate per solve): a tenant with twice the paths
//                    and equal request rate needs twice the replicas to hold
//                    the same queue depth.
//
// Every policy guarantees at least one replica per tenant — a tenant with
// zero replicas would silently blackhole its requests, which is an operator
// error no weighting scheme should be able to express.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

namespace teal::serve {

// What a policy knows about one tenant. Demand/path counts come from the
// tenant's Problem; offered_weight is the operator's estimate of relative
// request rate (teal_serve --tenant weight field, slap mix weight).
struct TenantDemand {
  std::string name;
  int n_demands = 0;
  int total_paths = 0;
  double offered_weight = 1.0;
  std::size_t requested_replicas = 0;  // static policy input; 0 = one replica
};

class PlacementPolicy {
 public:
  virtual ~PlacementPolicy() = default;
  virtual std::string name() const = 0;
  // One replica count per tenant, same order as `tenants`; every entry >= 1.
  // Budget-driven policies sum to max(total, n_tenants); the static policy
  // ignores `total` (the operator's explicit counts are the budget).
  virtual std::vector<std::size_t> assign(const std::vector<TenantDemand>& tenants,
                                          std::size_t total) const = 0;
};

using PlacementPolicyPtr = std::unique_ptr<PlacementPolicy>;

class StaticPolicy final : public PlacementPolicy {
 public:
  std::string name() const override { return "static"; }
  std::vector<std::size_t> assign(const std::vector<TenantDemand>& tenants,
                                  std::size_t total) const override;
};

class RoundRobinPolicy final : public PlacementPolicy {
 public:
  std::string name() const override { return "round-robin"; }
  std::vector<std::size_t> assign(const std::vector<TenantDemand>& tenants,
                                  std::size_t total) const override;
};

class LoadProportionalPolicy final : public PlacementPolicy {
 public:
  std::string name() const override { return "load-proportional"; }
  std::vector<std::size_t> assign(const std::vector<TenantDemand>& tenants,
                                  std::size_t total) const override;
};

// By name ("static", "round-robin", "load-proportional"); throws
// std::invalid_argument on anything else (listing the valid names).
PlacementPolicyPtr make_placement_policy(const std::string& name);

}  // namespace teal::serve
