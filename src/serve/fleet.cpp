#include "serve/fleet.h"

#include <stdexcept>
#include <thread>
#include <utility>

namespace teal::serve {

namespace {
constexpr std::size_t kNpos = static_cast<std::size_t>(-1);
}

std::uint64_t FleetStats::offered() const {
  std::uint64_t n = 0;
  for (const auto& t : tenants) n += t.serve.offered;
  return n;
}
std::uint64_t FleetStats::accepted() const {
  std::uint64_t n = 0;
  for (const auto& t : tenants) n += t.serve.accepted;
  return n;
}
std::uint64_t FleetStats::shed() const {
  std::uint64_t n = 0;
  for (const auto& t : tenants) n += t.serve.shed;
  return n;
}
std::uint64_t FleetStats::completed() const {
  std::uint64_t n = 0;
  for (const auto& t : tenants) n += t.serve.completed;
  return n;
}

Fleet::Fleet(FleetConfig cfg) : cfg_(std::move(cfg)) {}

Fleet::~Fleet() { stop(); }

void Fleet::add_tenant(TenantConfig t) {
  if (started_) throw std::logic_error("Fleet::add_tenant: fleet already started");
  if (t.pb == nullptr) {
    throw std::invalid_argument("Fleet::add_tenant: tenant '" + t.name + "' has no problem");
  }
  if (t.scheme == nullptr && !t.make_replicas_fn) {
    throw std::invalid_argument("Fleet::add_tenant: tenant '" + t.name +
                                "' has neither scheme nor replica builder");
  }
  if (by_name_.count(t.name) != 0) {
    throw std::invalid_argument("Fleet::add_tenant: duplicate tenant '" + t.name + "'");
  }
  by_name_.emplace(t.name, tenants_.size());
  tenants_.push_back(Tenant{std::move(t), 0, nullptr});
}

void Fleet::start() {
  if (started_) throw std::logic_error("Fleet::start: already started");
  if (tenants_.empty()) throw std::logic_error("Fleet::start: no tenants registered");

  const PlacementPolicy* policy = cfg_.policy_obj.get();
  PlacementPolicyPtr named;
  if (policy == nullptr) {
    named = make_placement_policy(cfg_.policy);
    policy = named.get();
  }

  std::size_t budget = cfg_.total_replicas;
  if (budget == 0) budget = std::max(1u, std::thread::hardware_concurrency());

  std::vector<TenantDemand> demand;
  demand.reserve(tenants_.size());
  for (const auto& t : tenants_) {
    demand.push_back(TenantDemand{t.cfg.name, t.cfg.pb->num_demands(),
                                  t.cfg.pb->total_paths(), t.cfg.offered_weight,
                                  t.cfg.requested_replicas});
  }
  const std::vector<std::size_t> counts = policy->assign(demand, budget);
  if (counts.size() != tenants_.size()) {
    throw std::logic_error("placement policy '" + policy->name() +
                           "' returned wrong tenant count");
  }

  for (std::size_t i = 0; i < tenants_.size(); ++i) {
    Tenant& t = tenants_[i];
    t.assigned = std::max<std::size_t>(1, counts[i]);
    std::vector<ReplicaPtr> replicas =
        t.cfg.make_replicas_fn
            ? t.cfg.make_replicas_fn(t.assigned)
            : make_replicas(*t.cfg.scheme, t.assigned, t.cfg.factory, t.cfg.shard_count);
    t.server = std::make_unique<Server>(*t.cfg.pb, std::move(replicas), t.cfg.serve);
  }
  started_ = true;
}

std::size_t Fleet::index_of(std::string_view tenant) const {
  if (tenant.empty()) return tenants_.empty() ? kNpos : 0;
  const auto it = by_name_.find(std::string(tenant));
  return it == by_name_.end() ? kNpos : it->second;
}

Fleet::Route Fleet::route(std::string_view tenant) {
  const std::size_t i = index_of(tenant);
  if (i == kNpos || !started_) return {};
  return Route{tenants_[i].server.get(), tenants_[i].cfg.pb};
}

std::size_t Fleet::replicas(std::string_view tenant) const {
  const std::size_t i = index_of(tenant);
  return i == kNpos ? 0 : tenants_[i].assigned;
}

void Fleet::drain() {
  for (auto& t : tenants_) {
    if (t.server) t.server->drain();
  }
}

FleetStats Fleet::stop() {
  std::lock_guard lk(stop_mu_);
  if (stopped_.load()) return final_stats_;
  final_stats_.policy = cfg_.policy_obj ? cfg_.policy_obj->name() : cfg_.policy;
  for (auto& t : tenants_) {
    TenantStats ts;
    ts.name = t.cfg.name;
    ts.replicas = t.assigned;
    if (t.server) ts.serve = t.server->stop();
    final_stats_.tenants.push_back(std::move(ts));
  }
  stopped_.store(true);
  return final_stats_;
}

}  // namespace teal::serve
