// server.h — multi-replica online serving of TE solves.
//
// The batch path (te::Scheme::solve_batch) is closed-loop: a driver hands
// the whole trace over and waits. A WAN controller is open-loop: traffic
// matrices *arrive* — every 5 minutes per topology slice, or far faster when
// one controller serves many slices — and a late allocation is a stale
// allocation (sim/online.h). The Server models that deployment shape:
//
//   submit(tm, out) ──► admission ──► bounded MPMC queue ──► N replicas
//                        │ shed                                │ solve
//                        ▼                                     ▼
//                    ServeStats ◄── per-replica latency/throughput merge
//
// Admission control: a request that cannot start within `deadline_seconds`
// is useless by the time it finishes (its interval is over — the next
// matrix has already arrived), so the server sheds it immediately instead
// of queueing doomed work. The bound is derived from the deadline and the
// observed per-solve time: depth_bound = deadline · n_replicas / est_solve,
// i.e. how many queued requests the replica set can clear within one
// deadline. est_solve is cfg.expected_solve_seconds when given, else an
// EWMA of completed solves (first request always admitted).
//
// Concurrency: each replica owns its solver state (serve/replica.h) and its
// own stats block, so the only shared mutable structures are the queue and
// the completion counter. Thread composition is decided per replica
// (serve/replica.h): sequential replicas hold a ThreadPool::ScopedInline for
// each solve — outer parallelism across replicas, inner kernels
// per-thread-sequential, like solve_batch's fan-out — while a lone replica
// may instead fan demand shards out to the pool (serve::pick_replica_shards)
// to cut single-request latency.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "serve/replica.h"
#include "te/problem.h"
#include "util/histogram.h"
#include "util/mpmc_queue.h"

namespace teal::serve {

struct ServeConfig {
  std::size_t queue_capacity = 256;
  // Admission deadline: a request is shed when the queue already holds more
  // work than the replicas can start within this budget. 0 disables
  // admission control (only the queue bound sheds).
  double deadline_seconds = 0.0;
  // Per-solve time estimate for the admission bound. 0 = adapt: EWMA of
  // completed solve times.
  double expected_solve_seconds = 0.0;
  // Best-effort: pin replica i to CPU i (for reproducible scaling runs).
  bool pin_replicas = false;
};

struct ReplicaStats {
  std::uint64_t solved = 0;
  double busy_seconds = 0.0;  // sum of per-solve times
};

// Why submit() accepted or refused a request. The network layer forwards the
// refusal cause to the client as a ShedReason frame, so the server must name
// it rather than let callers infer it from configuration.
enum class SubmitResult : std::uint8_t {
  kAccepted,       // entered the queue; response arrives via out/done
  kShedAdmission,  // deadline admission control refused it
  kShedQueueFull,  // bounded MPMC queue was full
  kShedStopping,   // server stopped (queue closed)
};

struct ServeStats {
  std::uint64_t offered = 0;    // submit() calls
  std::uint64_t accepted = 0;   // entered the queue
  std::uint64_t shed = 0;       // rejected by admission or queue bound
  std::uint64_t completed = 0;  // retired: solved, or failed (see below)
  double wall_seconds = 0.0;    // first submit → stop()

  // Failover ledger. A replica whose solve throws is dead (its thread exits);
  // its in-flight request is requeued for the surviving replicas rather than
  // lost. Only when *no* replica survives (or the server is stopping) is a
  // request failed: its done-hook runs with solve_seconds = -1 so the caller
  // can surface an error instead of waiting forever. failed requests count
  // toward `completed` — drain() means every request was retired, not that
  // every request succeeded. Invariant: accepted == completed after stop(),
  // and completed == Σ replicas[i].solved + failed.
  std::uint64_t replica_deaths = 0;
  std::uint64_t requeued = 0;
  std::uint64_t failed = 0;

  std::vector<ReplicaStats> replicas;
  util::LatencyHistogram queue_wait;  // enqueue → dequeue
  util::LatencyHistogram solve;       // solve alone
  util::LatencyHistogram response;    // enqueue → result written

  double throughput() const {
    return wall_seconds > 0.0 ? static_cast<double>(completed) / wall_seconds : 0.0;
  }
};

class Server {
 public:
  // Starts one serving thread per replica. `pb` must outlive the server and
  // stay capacity-stable while requests are in flight (the same contract as
  // solve_batch).
  Server(const te::Problem& pb, std::vector<ReplicaPtr> replicas, ServeConfig cfg = {});
  // Stops and joins if the caller never called stop().
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  std::size_t n_replicas() const { return replicas_.size(); }

  // Submits one request. `tm` and `out` are caller-owned and must stay valid
  // until drain()/stop() — the accepted request writes its allocation into
  // `out` from a replica thread. Returns false when the request was shed
  // (admission bound exceeded, queue full, or server stopped); `out` is then
  // left untouched.
  bool submit(const te::TrafficMatrix& tm, te::Allocation& out);

  // Same, with a completion hook: `done(solve_seconds)` runs on the replica
  // thread right after the allocation is written to `out` and before the
  // request counts as completed (so drain() returning implies every callback
  // finished). This is the network layer's seam — the session's response is
  // written back from here, and the captured state (not the caller's stack)
  // keeps `tm`/`out` alive, which is what makes an abrupt client disconnect
  // safe. `done` must not throw and must not call back into
  // submit()/drain()/stop(). Returns the refusal cause, not just a bool, so
  // the shed frame the session sends names what actually happened.
  SubmitResult submit(const te::TrafficMatrix& tm, te::Allocation& out,
                      std::function<void(double solve_seconds)> done);

  // Blocks until every accepted request has completed.
  void drain();

  // Drains, joins the replica threads and returns the final stats.
  // Idempotent and safe to call from any number of threads concurrently —
  // every caller returns the same stats, and concurrent submit()s are either
  // counted completely in those stats or shed (never half-counted). The
  // session layer relies on this: connections shut down from the I/O thread
  // while the owning server object stops from another.
  ServeStats stop();

  // Queue depth right now (admission diagnostics; racy by nature).
  std::size_t queue_depth() const { return queue_.size(); }

  // The admission bound currently in force (for tests/benches; 0 = none).
  std::size_t admission_depth_bound() const;

 private:
  using Clock = std::chrono::steady_clock;

  struct Request {
    const te::TrafficMatrix* tm = nullptr;
    te::Allocation* out = nullptr;
    std::function<void(double)> done;  // optional completion hook (net sessions)
    Clock::time_point enqueued{};
  };

  // Per-replica accounting, written only by that replica's thread until the
  // stop()-time merge.
  struct ReplicaLocal {
    std::uint64_t solved = 0;
    double busy_seconds = 0.0;
    util::LatencyHistogram queue_wait;
    util::LatencyHistogram solve;
    util::LatencyHistogram response;
  };

  void replica_loop(std::size_t index);
  // Failover path: called by a replica thread whose solve threw, with the
  // victim request. Requeues it for the survivors, or fails it (and every
  // queued request) when this was the last replica standing.
  void handle_replica_death(Request req);
  // Retires a request without a solve: done(-1), counts toward completed_.
  void fail_request(Request& req);
  double solve_estimate() const;

  const te::Problem& pb_;
  std::vector<ReplicaPtr> replicas_;
  ServeConfig cfg_;
  util::MpmcQueue<Request> queue_;
  std::vector<ReplicaLocal> locals_;
  std::vector<std::thread> threads_;

  // Ledger counters are seq_cst: submit() bumps offered_ first and
  // accepted_/shed_ second, and stop() spins until a snapshot balances — the
  // single total order is what guarantees a visible accepted_/shed_ implies
  // a visible offered_, so the spin can never publish an undercounted but
  // self-consistent ledger (relaxed stores could reorder on weak hardware).
  std::atomic<std::uint64_t> offered_{0};
  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> shed_{0};
  std::atomic<double> solve_ewma_{0.0};

  // Failover state: live_replicas_ counts replica threads still in their
  // loop; the thread that decrements it to zero owns failing the backlog.
  std::atomic<std::size_t> live_replicas_{0};
  std::atomic<std::uint64_t> replica_deaths_{0};
  std::atomic<std::uint64_t> requeued_{0};
  std::atomic<std::uint64_t> failed_{0};

  mutable std::mutex done_mu_;
  std::condition_variable done_cv_;
  std::uint64_t completed_ = 0;  // guarded by done_mu_

  Clock::time_point first_submit_{};  // set once by the first submit()
  std::atomic<bool> started_{false};
  // stop() serializes on stop_mu_: the first caller closes/joins/merges, any
  // concurrent caller blocks until that finishes and returns the same stats.
  // stopped_ is additionally atomic so the destructor's stop() composes with
  // a racing explicit stop() without a data race on the flag itself.
  std::mutex stop_mu_;
  std::atomic<bool> stopped_{false};
  ServeStats final_stats_;
};

}  // namespace teal::serve
