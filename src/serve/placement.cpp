#include "serve/placement.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace teal::serve {

namespace {

// Per-solve cost in the shard cost model's unit: paths iterated per solve.
// Falls back to demands (then 1) so degenerate descriptors still weigh
// something instead of starving the tenant.
double solve_cost(const TenantDemand& t) {
  if (t.total_paths > 0) return static_cast<double>(t.total_paths);
  if (t.n_demands > 0) return static_cast<double>(t.n_demands);
  return 1.0;
}

}  // namespace

std::vector<std::size_t> StaticPolicy::assign(const std::vector<TenantDemand>& tenants,
                                              std::size_t /*total*/) const {
  std::vector<std::size_t> out(tenants.size());
  for (std::size_t i = 0; i < tenants.size(); ++i) {
    out[i] = std::max<std::size_t>(1, tenants[i].requested_replicas);
  }
  return out;
}

std::vector<std::size_t> RoundRobinPolicy::assign(const std::vector<TenantDemand>& tenants,
                                                  std::size_t total) const {
  if (tenants.empty()) return {};
  const std::size_t budget = std::max(total, tenants.size());
  std::vector<std::size_t> out(tenants.size(), 0);
  for (std::size_t dealt = 0; dealt < budget; ++dealt) {
    ++out[dealt % tenants.size()];
  }
  return out;
}

std::vector<std::size_t> LoadProportionalPolicy::assign(
    const std::vector<TenantDemand>& tenants, std::size_t total) const {
  if (tenants.empty()) return {};
  const std::size_t budget = std::max(total, tenants.size());
  const std::size_t n = tenants.size();
  std::vector<double> weight(n);
  double wsum = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double w = std::max(0.0, tenants[i].offered_weight) * solve_cost(tenants[i]);
    weight[i] = w;
    wsum += w;
  }
  if (wsum <= 0.0) {
    // All-zero weights degrade to round-robin over the whole budget.
    std::vector<std::size_t> out(n, 0);
    for (std::size_t dealt = 0; dealt < budget; ++dealt) ++out[dealt % n];
    return out;
  }
  // Largest-remainder apportionment of the full budget: shares are
  // real-valued ideals; integer floors first, then the leftover replicas go
  // to the largest fractional remainders (ties to the lower index, so the
  // result is deterministic in registration order). Apportioning the whole
  // budget — rather than one-each plus a proportional spare — keeps the
  // counts proportional to cost: a tenant with twice the weighted paths gets
  // (about) twice the replicas, which a flat head-start would flatten out.
  std::vector<std::size_t> out(n, 0);
  std::vector<double> frac(n);
  std::size_t given = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double ideal = static_cast<double>(budget) * weight[i] / wsum;
    const auto whole = static_cast<std::size_t>(ideal);
    out[i] = whole;
    given += whole;
    frac[i] = ideal - static_cast<double>(whole);
  }
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) { return frac[a] > frac[b]; });
  for (std::size_t k = 0; given < budget; ++k, ++given) {
    ++out[order[k % n]];
  }
  // Never-starve floor: a zero-count tenant takes a replica from the largest
  // holder (budget >= n guarantees a donor with >= 2 exists while any tenant
  // still sits at zero).
  for (std::size_t i = 0; i < n; ++i) {
    while (out[i] == 0) {
      const std::size_t donor = static_cast<std::size_t>(
          std::max_element(out.begin(), out.end()) - out.begin());
      if (out[donor] <= 1) break;  // unreachable given budget >= n
      --out[donor];
      ++out[i];
    }
  }
  return out;
}

PlacementPolicyPtr make_placement_policy(const std::string& name) {
  if (name == "static") return std::make_unique<StaticPolicy>();
  if (name == "round-robin") return std::make_unique<RoundRobinPolicy>();
  if (name == "load-proportional") return std::make_unique<LoadProportionalPolicy>();
  throw std::invalid_argument("unknown placement policy '" + name +
                              "' (valid: static, round-robin, load-proportional)");
}

}  // namespace teal::serve
