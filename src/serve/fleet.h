// fleet.h — multi-tenant serving: one process, many topologies, one budget.
//
// PR 7's net front-end put one serve::Server (= one topology, one model)
// behind a socket. A WAN controller realistically serves *many* topology
// slices at once — the paper's per-topology model means each slice brings its
// own Problem + trained scheme — so the Fleet refactors serving into:
//
//   add_tenant(name, pb, scheme, ...) xN      (registry: before start())
//        │
//      start() ──► placement policy assigns the replica budget
//        │         (serve/placement.h: static / round-robin /
//        │          load-proportional)
//        ▼
//   tenant registry ──► route(name) ──► that tenant's serve::Server
//                                        (own replicas, queue, stats)
//
// Scalability follows the commutativity discipline: all mutable serving
// state (queues, replica workspaces, counters) lives *per tenant* inside
// that tenant's Server, so requests to different tenants commute completely.
// The shared registry is immutable after start() — routing is a read of a
// never-again-written map, no lock, no scaling bottleneck. The one
// cross-tenant decision (who gets how many replicas) happens exactly once,
// at start(), through the placement seam.
//
// Model hot-swap composes orthogonally: a tenant's scheme is a
// core::TealScheme holding a ModelHub (core/snapshot.h), so a background
// trainer calls scheme->publish_model(...) with the fleet live — the Fleet
// itself never touches model state.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "serve/placement.h"
#include "serve/server.h"

namespace teal::serve {

// One tenant's registration. `pb` must outlive the fleet and stay
// capacity-stable while requests are in flight; `scheme` (when used) must
// outlive the fleet — the fleet does not own either, matching the Server
// contract. Exactly one of {scheme, make_replicas_fn} drives replica
// construction (factory supplements scheme for non-warm schemes, as in
// serve::make_replicas).
struct TenantConfig {
  std::string name;
  const te::Problem* pb = nullptr;
  te::Scheme* scheme = nullptr;
  SchemeFactory factory;  // required by make_replicas for non-warm schemes
  ServeConfig serve;
  int shard_count = 0;           // per-replica inner shard knob (0 = auto)
  double offered_weight = 1.0;   // relative request rate (placement input)
  std::size_t requested_replicas = 0;  // static-policy count (0 = one)
  // Test seam: when set, builds this tenant's replicas directly and
  // scheme/factory are ignored.
  std::function<std::vector<ReplicaPtr>(std::size_t n)> make_replicas_fn;
};

struct FleetConfig {
  // Replica budget across all tenants; 0 = hardware concurrency. Policies
  // other than static spend exactly max(budget, n_tenants).
  std::size_t total_replicas = 0;
  // Placement policy by name (serve/placement.h). `policy_obj` takes
  // precedence when set (custom policies plug in here).
  std::string policy = "load-proportional";
  PlacementPolicyPtr policy_obj;
};

struct TenantStats {
  std::string name;
  std::size_t replicas = 0;
  ServeStats serve;
};

struct FleetStats {
  std::string policy;
  std::vector<TenantStats> tenants;  // registration order

  std::uint64_t offered() const;
  std::uint64_t accepted() const;
  std::uint64_t shed() const;
  std::uint64_t completed() const;
};

class Fleet {
 public:
  explicit Fleet(FleetConfig cfg = {});
  // Stops and joins every tenant's server if the caller never called stop().
  ~Fleet();

  Fleet(const Fleet&) = delete;
  Fleet& operator=(const Fleet&) = delete;

  // Registry construction: before start() only (throws std::logic_error
  // after). Throws std::invalid_argument on a null problem, a duplicate
  // name, or a config with neither scheme nor make_replicas_fn.
  void add_tenant(TenantConfig t);

  // Runs the placement policy over the registered tenants and starts one
  // serve::Server per tenant. Throws std::logic_error when empty or called
  // twice.
  void start();

  std::size_t n_tenants() const { return tenants_.size(); }
  bool started() const { return started_; }

  // Routing: resolves a tenant name to its server + problem. The empty name
  // is the default tenant (first registered) — single-tenant clients need no
  // name. Unknown names resolve to {nullptr, nullptr}. Lock-free: the
  // registry is immutable after start().
  struct Route {
    Server* server = nullptr;
    const te::Problem* pb = nullptr;
  };
  Route route(std::string_view tenant);

  // Replicas assigned to `tenant` by the placement run (post-start); 0 for
  // unknown tenants.
  std::size_t replicas(std::string_view tenant) const;

  // Blocks until every accepted request on every tenant completed.
  void drain();

  // Drains, stops every tenant's server and returns the merged stats.
  // Idempotent, safe from multiple threads (same contract as Server::stop).
  FleetStats stop();

 private:
  struct Tenant {
    TenantConfig cfg;
    std::size_t assigned = 0;
    std::unique_ptr<Server> server;
  };

  std::size_t index_of(std::string_view tenant) const;  // npos when unknown

  FleetConfig cfg_;
  std::vector<Tenant> tenants_;                          // registration order
  std::unordered_map<std::string, std::size_t> by_name_;
  bool started_ = false;

  std::mutex stop_mu_;
  std::atomic<bool> stopped_{false};
  FleetStats final_stats_;
};

}  // namespace teal::serve
