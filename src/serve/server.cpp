#include "serve/server.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/thread_name.h"
#include "util/thread_pool.h"

namespace teal::serve {

Server::Server(const te::Problem& pb, std::vector<ReplicaPtr> replicas, ServeConfig cfg)
    : pb_(pb),
      replicas_(std::move(replicas)),
      cfg_(cfg),
      queue_(cfg.queue_capacity),
      locals_(replicas_.size()) {
  if (replicas_.empty()) {
    throw std::invalid_argument(
        "serve::Server: at least one replica required (accepted requests "
        "could otherwise never complete and drain() would block forever)");
  }
  live_replicas_.store(replicas_.size(), std::memory_order_relaxed);
  threads_.reserve(replicas_.size());
  for (std::size_t i = 0; i < replicas_.size(); ++i) {
    threads_.emplace_back([this, i] { replica_loop(i); });
  }
}

Server::~Server() { stop(); }

double Server::solve_estimate() const {
  if (cfg_.expected_solve_seconds > 0.0) return cfg_.expected_solve_seconds;
  return solve_ewma_.load(std::memory_order_relaxed);
}

std::size_t Server::admission_depth_bound() const {
  if (cfg_.deadline_seconds <= 0.0) return 0;
  const double est = solve_estimate();
  if (est <= 0.0) return 0;  // nothing observed yet: admit
  const double bound =
      cfg_.deadline_seconds * static_cast<double>(replicas_.size()) / est;
  // At least 1 so an idle server always accepts; never beyond the queue.
  return std::clamp<std::size_t>(static_cast<std::size_t>(bound), 1,
                                 queue_.capacity());
}

bool Server::submit(const te::TrafficMatrix& tm, te::Allocation& out) {
  return submit(tm, out, nullptr) == SubmitResult::kAccepted;
}

SubmitResult Server::submit(const te::TrafficMatrix& tm, te::Allocation& out,
                            std::function<void(double)> done) {
  // Ledger counters are seq_cst so stop()'s balance-spin cannot observe an
  // accepted_/shed_ increment whose offered_ increment is still invisible
  // (see the member comment in server.h).
  offered_.fetch_add(1, std::memory_order_seq_cst);
  if (!started_.exchange(true)) {
    // done_mu_ guards first_submit_ against a concurrent stop() reading it.
    std::lock_guard lk(done_mu_);
    first_submit_ = Clock::now();
  }
  if (queue_.closed()) {  // stopped before the admission check ran
    shed_.fetch_add(1, std::memory_order_seq_cst);
    return SubmitResult::kShedStopping;
  }
  const std::size_t bound = admission_depth_bound();
  if (bound > 0 && queue_.size() >= bound) {
    shed_.fetch_add(1, std::memory_order_seq_cst);
    return SubmitResult::kShedAdmission;
  }
  Request req;
  req.tm = &tm;
  req.out = &out;
  req.done = std::move(done);
  req.enqueued = Clock::now();
  if (!queue_.try_push(req)) {  // full, or closed by a racing stop()
    shed_.fetch_add(1, std::memory_order_seq_cst);
    return queue_.closed() ? SubmitResult::kShedStopping
                           : SubmitResult::kShedQueueFull;
  }
  accepted_.fetch_add(1, std::memory_order_seq_cst);
  return SubmitResult::kAccepted;
}

void Server::replica_loop(std::size_t index) {
  util::set_current_thread_name("teal-serve", index);
  if (cfg_.pin_replicas) util::pin_current_thread(index);
  // Thread composition is the replica's own business (Replica::solve holds
  // ThreadPool::ScopedInline for sequential solves, or fans demand shards
  // out to the pool when the serving cost model granted it threads) — the
  // loop itself imposes nothing.
  ReplicaLocal& self = locals_[index];
  Request req;
  while (queue_.pop(req)) {
    const auto dequeued = Clock::now();
    self.queue_wait.record(std::chrono::duration<double>(dequeued - req.enqueued).count());
    double solve_s = 0.0;
    try {
      replicas_[index]->solve(pb_, *req.tm, *req.out, &solve_s);
    } catch (...) {
      // This replica is dead (whatever state its solver left behind is
      // suspect), but the *request* is not: hand it to the survivors.
      handle_replica_death(std::move(req));
      return;  // thread exits; stop() still joins it normally
    }
    self.solve.record(solve_s);
    self.busy_seconds += solve_s;
    ++self.solved;
    self.response.record(
        std::chrono::duration<double>(Clock::now() - req.enqueued).count());
    // Completion hook before the request counts as completed, so drain()
    // returning means every response has been handed back (the net session
    // layer writes its response frame from here).
    if (req.done) req.done(solve_s);
    // EWMA of completed solve times for the admission bound. Plain
    // store-after-load: concurrent updates may drop an observation, which
    // only perturbs an estimate.
    const double prev = solve_ewma_.load(std::memory_order_relaxed);
    const double next = prev <= 0.0 ? solve_s : 0.8 * prev + 0.2 * solve_s;
    solve_ewma_.store(next, std::memory_order_relaxed);
    {
      std::lock_guard lk(done_mu_);
      ++completed_;
    }
    done_cv_.notify_all();
  }
}

void Server::fail_request(Request& req) {
  failed_.fetch_add(1, std::memory_order_relaxed);
  // -1 is the error sentinel: real solves report nonnegative seconds, so the
  // done-hook (the net session's response seam) can distinguish "no replica
  // could run this" and answer with an error frame instead of a result.
  if (req.done) req.done(-1.0);
  {
    std::lock_guard lk(done_mu_);
    ++completed_;
  }
  done_cv_.notify_all();
}

void Server::handle_replica_death(Request req) {
  replica_deaths_.fetch_add(1, std::memory_order_relaxed);
  const std::size_t live = live_replicas_.fetch_sub(1, std::memory_order_acq_rel) - 1;
  if (live > 0) {
    // Survivors exist: requeue the victim's request. The queue may be
    // momentarily full — survivors are draining it, so spin-push; a close()
    // (server stopping, or the last survivor dying meanwhile) breaks the
    // spin and the request is failed instead of lost in limbo.
    for (;;) {
      if (queue_.try_push(req)) {
        requeued_.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      if (queue_.closed()) break;
      std::this_thread::yield();
    }
    fail_request(req);
    return;
  }
  // Last replica standing just died: nobody is left to solve anything.
  // Close the queue (new submits shed as kShedStopping), then retire the
  // in-flight request and the whole backlog as failed so drain()/stop()
  // terminate instead of waiting on solves that can never happen.
  queue_.close();
  fail_request(req);
  while (queue_.pop(req)) fail_request(req);
}

void Server::drain() {
  const std::uint64_t target = accepted_.load(std::memory_order_relaxed);
  std::unique_lock lk(done_mu_);
  done_cv_.wait(lk, [&] { return completed_ >= target; });
}

ServeStats Server::stop() {
  // Serialize every stopper: the first caller does the shutdown, later and
  // concurrent callers block here until it finishes, then return the same
  // final stats. (The pre-PR7 unguarded `stopped_` bool let two concurrent
  // stop()s both reach the join loop — a double-join aborts the process —
  // exactly the shape the net layer produces when a session teardown and the
  // owning server's destructor race.)
  std::lock_guard stop_lk(stop_mu_);
  if (stopped_.load(std::memory_order_acquire)) return final_stats_;
  queue_.close();  // queued requests still drain; new submits shed
  for (auto& t : threads_) t.join();

  ServeStats s;
  // A concurrent submit() bumps offered_ first and accepted_/shed_ second,
  // as separate atomics. Snapshot until the ledger balances so a stop()
  // racing the last submitters never publishes a half-counted request; the
  // queue is already closed, so each straggler sheds within a few
  // instructions and the loop terminates. seq_cst loads to match the seq_cst
  // increments: the single total order makes "accepted_/shed_ visible but
  // its offered_ not" impossible, so a balanced, re-read-stable snapshot is
  // a complete one — acquire alone would not rule out that interleaving on
  // weakly-ordered hardware.
  for (;;) {
    s.offered = offered_.load(std::memory_order_seq_cst);
    s.accepted = accepted_.load(std::memory_order_seq_cst);
    s.shed = shed_.load(std::memory_order_seq_cst);
    if (s.accepted + s.shed == s.offered &&
        s.offered == offered_.load(std::memory_order_seq_cst)) {
      break;
    }
    std::this_thread::yield();
  }
  s.replica_deaths = replica_deaths_.load(std::memory_order_relaxed);
  s.requeued = requeued_.load(std::memory_order_relaxed);
  s.failed = failed_.load(std::memory_order_relaxed);
  Clock::time_point first{};
  {
    std::lock_guard lk(done_mu_);
    s.completed = completed_;
    first = first_submit_;
  }
  s.wall_seconds = first == Clock::time_point{}
                       ? 0.0
                       : std::chrono::duration<double>(Clock::now() - first).count();
  s.replicas.reserve(locals_.size());
  for (const auto& l : locals_) {
    s.replicas.push_back(ReplicaStats{l.solved, l.busy_seconds});
    s.queue_wait.merge(l.queue_wait);
    s.solve.merge(l.solve);
    s.response.merge(l.response);
  }
  final_stats_ = s;
  stopped_.store(true, std::memory_order_release);
  return final_stats_;
}

}  // namespace teal::serve
