// replica.h — the unit of parallelism in the serving layer.
//
// A Replica is one independent solver: it handles one request at a time and
// owns every piece of mutable state its solves touch, so N replicas run
// concurrently without synchronization. Two concrete shapes, chosen by the
// scheme's traits (te::Scheme::has_warm_state / supports_parallel_batch):
//
//  * WorkspaceReplica — a persistent core::SolveWorkspace over one *shared*
//    TealScheme. The model is read-only at inference and workspaces share no
//    mutable state (the commutativity argument behind solve_batch, DESIGN.md
//    "Serving layer"), so replicas need no locks on the shared model and the
//    trained weights exist once regardless of replica count.
//  * SchemeReplica — one whole scheme instance per replica, for the LP
//    baselines whose solvers carry per-solve mutable state (simplex
//    tableaus, partitions) with no workspace separation.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "core/teal_scheme.h"
#include "te/scheme.h"

namespace teal::serve {

class Replica {
 public:
  virtual ~Replica() = default;

  // Solves one request. Called from exactly one serving thread at a time per
  // replica object; different replicas run concurrently. `seconds` (if
  // non-null) receives the solve's own wall time, excluding queue wait.
  //
  // Thread-composition contract: the replica owns the decision whether its
  // inner kernels run inline (ThreadPool::ScopedInline held for the solve)
  // or fan out demand shards to the global pool. Sequential replicas must
  // hold the inline scope so N replicas never oversubscribe the machine;
  // sharded replicas deliberately leave it off so the shard fan-out can
  // reach the pool workers.
  virtual void solve(const te::Problem& pb, const te::TrafficMatrix& tm,
                     te::Allocation& out, double* seconds) = 0;
};

using ReplicaPtr = std::unique_ptr<Replica>;

// Builds a fresh scheme instance; called once per replica by
// make_scheme_replicas. Must produce independently usable schemes (they run
// on different threads).
using SchemeFactory = std::function<te::SchemePtr()>;

// Serving-side shard cost model: how many demand shards one of `n_replicas`
// replicas should fan a solve across. Replica parallelism and shard
// parallelism share the machine, and every shard fan-out runs through the
// single global pool (whose fork-join regions serialize), so sharding pays
// only when replicas would otherwise leave threads idle: with more than one
// replica the answer is 1 (throughput axis already saturates), with a single
// replica it is the core::auto_shard_count work/threads trade-off — the way
// a lone replica serving one huge matrix (ASN-scale) cuts its latency.
int pick_replica_shards(std::size_t n_replicas, int n_demands, int total_paths);

// N workspace replicas over one shared TealScheme. `scheme` must outlive the
// replicas; its own solve()/solve_batch() state is untouched. `shard_count`
// follows the te::Scheme knob convention: 0 = auto (pick_replica_shards,
// resolved against the problem on first solve), 1 = sequential inner solve,
// n = exactly n demand shards per solve. Results are bit-identical for
// every value.
std::vector<ReplicaPtr> make_workspace_replicas(const core::TealScheme& scheme, std::size_t n,
                                                int shard_count = 0);

// N single-scheme replicas from a factory (LP baselines).
std::vector<ReplicaPtr> make_scheme_replicas(const SchemeFactory& factory, std::size_t n);

// Trait-dispatched builder: workspace replicas over the shared scheme when it
// keeps warm per-solve state and supports parallel batching (TealScheme),
// otherwise one instance per replica via `factory`. Throws
// std::invalid_argument when the scheme needs a factory and none was given.
// `shard_count` applies to workspace replicas only (see above; 0 = auto).
std::vector<ReplicaPtr> make_replicas(te::Scheme& scheme, std::size_t n,
                                      const SchemeFactory& factory = nullptr,
                                      int shard_count = 0);

}  // namespace teal::serve
