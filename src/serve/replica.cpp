#include "serve/replica.h"

#include <stdexcept>

namespace teal::serve {

namespace {

class WorkspaceReplica final : public Replica {
 public:
  explicit WorkspaceReplica(const core::TealScheme& scheme) : scheme_(scheme) {}

  void solve(const te::Problem& pb, const te::TrafficMatrix& tm, te::Allocation& out,
             double* seconds) override {
    scheme_.solve_replica(ws_, pb, tm, out, seconds);
  }

 private:
  const core::TealScheme& scheme_;
  core::SolveWorkspace ws_;  // warm after the first request
};

class SchemeReplica final : public Replica {
 public:
  explicit SchemeReplica(te::SchemePtr scheme) : scheme_(std::move(scheme)) {}

  void solve(const te::Problem& pb, const te::TrafficMatrix& tm, te::Allocation& out,
             double* seconds) override {
    scheme_->solve_into(pb, tm, out);
    if (seconds != nullptr) *seconds = scheme_->last_solve_seconds();
  }

 private:
  te::SchemePtr scheme_;
};

}  // namespace

std::vector<ReplicaPtr> make_workspace_replicas(const core::TealScheme& scheme,
                                                std::size_t n) {
  std::vector<ReplicaPtr> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(std::make_unique<WorkspaceReplica>(scheme));
  }
  return out;
}

std::vector<ReplicaPtr> make_scheme_replicas(const SchemeFactory& factory, std::size_t n) {
  if (!factory) throw std::invalid_argument("make_scheme_replicas: null factory");
  std::vector<ReplicaPtr> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(std::make_unique<SchemeReplica>(factory()));
  }
  return out;
}

std::vector<ReplicaPtr> make_replicas(te::Scheme& scheme, std::size_t n,
                                      const SchemeFactory& factory) {
  if (scheme.has_warm_state() && scheme.supports_parallel_batch()) {
    if (auto* teal = dynamic_cast<core::TealScheme*>(&scheme)) {
      return make_workspace_replicas(*teal, n);
    }
  }
  if (!factory) {
    throw std::invalid_argument(
        "make_replicas: scheme '" + scheme.name() +
        "' has no shareable workspace path; pass a SchemeFactory");
  }
  return make_scheme_replicas(factory, n);
}

}  // namespace teal::serve
