#include "serve/replica.h"

#include <stdexcept>

#include "util/arena.h"
#include "util/thread_pool.h"

namespace teal::serve {

namespace {

class WorkspaceReplica final : public Replica {
 public:
  WorkspaceReplica(const core::TealScheme& scheme, std::size_t n_replicas, int shard_count)
      : scheme_(scheme), n_replicas_(n_replicas), shards_(shard_count) {}

  void solve(const te::Problem& pb, const te::TrafficMatrix& tm, te::Allocation& out,
             double* seconds) override {
    // Auto mode resolves against the problem on first use (the cost model
    // needs the demand/path counts, which make_replicas never sees).
    if (shards_ == 0) {
      shards_ = pick_replica_shards(n_replicas_, pb.num_demands(), pb.total_paths());
    }
    // Replica spin-up is the cold-start path this arena exists for: the
    // first solve grows the whole workspace out of arena_ in O(1) heap
    // allocations (bench_cold_start measures the win). Warm solves allocate
    // nothing, so holding the binding afterwards costs two TLS writes.
    // Sharded inner solves are safe too: every resize runs on this thread
    // before the per-demand fan-out.
    util::ArenaScope bind(&arena_);
    if (shards_ == 1) {
      // Sequential inner solve: hold the inline scope so N replicas' kernels
      // never fan out on top of each other (the pre-sharding serving shape).
      util::ThreadPool::ScopedInline inline_kernels;
      scheme_.solve_replica(ws_, pb, tm, out, seconds, /*shard_count=*/1);
    } else {
      scheme_.solve_replica(ws_, pb, tm, out, seconds, shards_);
    }
  }

 private:
  const core::TealScheme& scheme_;
  std::size_t n_replicas_;
  int shards_;               // 0 until resolved, then the fixed per-solve count
  util::Arena arena_;        // backs ws_; declared first so it outlives it
  core::SolveWorkspace ws_;  // warm after the first request
};

class SchemeReplica final : public Replica {
 public:
  explicit SchemeReplica(te::SchemePtr scheme) : scheme_(std::move(scheme)) {}

  void solve(const te::Problem& pb, const te::TrafficMatrix& tm, te::Allocation& out,
             double* seconds) override {
    // One whole scheme per replica; outer parallelism is across replicas, so
    // its kernels stay on this thread.
    util::ThreadPool::ScopedInline inline_kernels;
    scheme_->solve_into(pb, tm, out);
    if (seconds != nullptr) *seconds = scheme_->last_solve_seconds();
  }

 private:
  te::SchemePtr scheme_;
};

}  // namespace

int pick_replica_shards(std::size_t n_replicas, int n_demands, int total_paths) {
  if (n_replicas > 1) return 1;
  return core::auto_shard_count(n_demands, total_paths,
                                util::ThreadPool::available_parallelism());
}

std::vector<ReplicaPtr> make_workspace_replicas(const core::TealScheme& scheme,
                                                std::size_t n, int shard_count) {
  std::vector<ReplicaPtr> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(std::make_unique<WorkspaceReplica>(scheme, n, shard_count));
  }
  return out;
}

std::vector<ReplicaPtr> make_scheme_replicas(const SchemeFactory& factory, std::size_t n) {
  if (!factory) throw std::invalid_argument("make_scheme_replicas: null factory");
  std::vector<ReplicaPtr> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(std::make_unique<SchemeReplica>(factory()));
  }
  return out;
}

std::vector<ReplicaPtr> make_replicas(te::Scheme& scheme, std::size_t n,
                                      const SchemeFactory& factory, int shard_count) {
  if (scheme.has_warm_state() && scheme.supports_parallel_batch()) {
    if (auto* teal = dynamic_cast<core::TealScheme*>(&scheme)) {
      return make_workspace_replicas(*teal, n, shard_count);
    }
  }
  if (!factory) {
    throw std::invalid_argument(
        "make_replicas: scheme '" + scheme.name() +
        "' has no shareable workspace path; pass a SchemeFactory");
  }
  return make_scheme_replicas(factory, n);
}

}  // namespace teal::serve
