#include "analysis/tsne.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <stdexcept>

#include "util/rng.h"
#include "util/thread_pool.h"

namespace teal::analysis {

std::vector<std::array<double, 2>> tsne_2d(const std::vector<std::vector<double>>& points,
                                           const TsneConfig& cfg) {
  const std::size_t n = points.size();
  if (n == 0) return {};
  const std::size_t dim = points[0].size();
  for (const auto& p : points) {
    if (p.size() != dim) throw std::invalid_argument("tsne_2d: ragged input");
  }

  // Pairwise squared distances.
  std::vector<double> d2(n * n, 0.0);
  util::ThreadPool::global().parallel_for(n, [&](std::size_t i) {
    for (std::size_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::size_t c = 0; c < dim; ++c) {
        double d = points[i][c] - points[j][c];
        acc += d * d;
      }
      d2[i * n + j] = acc;
    }
  });

  // Per-point precision via binary search on the perplexity.
  std::vector<double> p(n * n, 0.0);
  const double log_perp = std::log(std::max(2.0, cfg.perplexity));
  util::ThreadPool::global().parallel_for(n, [&](std::size_t i) {
    double beta_lo = 1e-20, beta_hi = 1e20, beta = 1.0;
    for (int iter = 0; iter < 50; ++iter) {
      double sum = 0.0, h = 0.0;
      for (std::size_t j = 0; j < n; ++j) {
        if (j == i) continue;
        double pij = std::exp(-beta * d2[i * n + j]);
        sum += pij;
        h += beta * d2[i * n + j] * pij;
      }
      if (sum <= 1e-300) {
        beta_hi = beta;
        beta = 0.5 * (beta_lo + beta_hi);
        continue;
      }
      double entropy = std::log(sum) + h / sum;  // Shannon entropy in nats
      if (std::abs(entropy - log_perp) < 1e-5) break;
      if (entropy > log_perp) {
        beta_lo = beta;
        beta = beta_hi >= 1e19 ? beta * 2.0 : 0.5 * (beta_lo + beta_hi);
      } else {
        beta_hi = beta;
        beta = beta_lo <= 1e-19 ? beta / 2.0 : 0.5 * (beta_lo + beta_hi);
      }
    }
    double sum = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      if (j != i) sum += std::exp(-beta * d2[i * n + j]);
    }
    sum = std::max(sum, 1e-300);
    for (std::size_t j = 0; j < n; ++j) {
      p[i * n + j] = j == i ? 0.0 : std::exp(-beta * d2[i * n + j]) / sum;
    }
  });

  // Symmetrize.
  std::vector<double> pij(n * n, 0.0);
  double psum = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      pij[i * n + j] = (p[i * n + j] + p[j * n + i]) / (2.0 * static_cast<double>(n));
      psum += pij[i * n + j];
    }
  }
  for (double& v : pij) v = std::max(v / std::max(psum, 1e-300), 1e-12);

  // Gradient descent on 2-D embedding.
  util::Rng rng(cfg.seed);
  std::vector<std::array<double, 2>> y(n), vel(n, {0.0, 0.0}), grad(n);
  for (auto& yi : y) yi = {rng.normal(0.0, 1e-4), rng.normal(0.0, 1e-4)};

  std::vector<double> qnum(n * n, 0.0);
  const int exag_until = cfg.n_iterations / 4;
  for (int it = 0; it < cfg.n_iterations; ++it) {
    const double exag = it < exag_until ? cfg.early_exaggeration : 1.0;
    double qsum = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        if (i == j) {
          qnum[i * n + j] = 0.0;
          continue;
        }
        double dx = y[i][0] - y[j][0], dy = y[i][1] - y[j][1];
        qnum[i * n + j] = 1.0 / (1.0 + dx * dx + dy * dy);
        qsum += qnum[i * n + j];
      }
    }
    qsum = std::max(qsum, 1e-300);
    util::ThreadPool::global().parallel_for(n, [&](std::size_t i) {
      grad[i] = {0.0, 0.0};
      for (std::size_t j = 0; j < n; ++j) {
        if (i == j) continue;
        double q = std::max(qnum[i * n + j] / qsum, 1e-12);
        double mult = (exag * pij[i * n + j] - q) * qnum[i * n + j];
        grad[i][0] += 4.0 * mult * (y[i][0] - y[j][0]);
        grad[i][1] += 4.0 * mult * (y[i][1] - y[j][1]);
      }
    });
    for (std::size_t i = 0; i < n; ++i) {
      for (int c = 0; c < 2; ++c) {
        vel[i][static_cast<std::size_t>(c)] =
            cfg.momentum * vel[i][static_cast<std::size_t>(c)] -
            cfg.learning_rate * grad[i][static_cast<std::size_t>(c)];
        y[i][static_cast<std::size_t>(c)] += vel[i][static_cast<std::size_t>(c)];
      }
    }
  }
  return y;
}

}  // namespace teal::analysis
