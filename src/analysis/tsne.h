// tsne.h — exact t-SNE (van der Maaten & Hinton), used to visualize Teal's
// learned flow embeddings (Figure 16, §5.8).
//
// The figure projects FlowGNN's final PathNode embeddings to 2-D and colors
// each point by whether its path is "busy" in LP-all's optimal allocation
// (largest split ratio among the demand's paths). We implement the exact
// O(n^2) algorithm — the bench subsamples paths to keep n in the low
// thousands — with the standard ingredients: perplexity calibration by
// per-point binary search, symmetrized affinities, early exaggeration, and
// momentum gradient descent.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace teal::analysis {

struct TsneConfig {
  double perplexity = 30.0;
  int n_iterations = 400;
  double learning_rate = 100.0;
  double early_exaggeration = 4.0;  // applied for the first quarter of iters
  double momentum = 0.8;
  std::uint64_t seed = 5;
};

// `points` is row-major (n x dim). Returns n rows of 2-D coordinates.
std::vector<std::array<double, 2>> tsne_2d(const std::vector<std::vector<double>>& points,
                                           const TsneConfig& cfg = {});

}  // namespace teal::analysis
