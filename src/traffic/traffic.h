// traffic.h — synthetic WAN traffic traces (substitute for the proprietary
// 20-day Microsoft SWAN dataset, §5.1).
//
// The paper reveals these aggregate properties of its traces, all of which
// the generator reproduces:
//   * 5-minute intervals; 700 consecutive training matrices, 100 validation,
//     200 test (we keep the same split proportions at configurable length);
//   * a heavy-tailed spatial distribution: the top 10% of demands carry 88.4%
//     of the total volume (we calibrate a lognormal so the share matches);
//   * organic temporal behaviour: diurnal modulation plus autocorrelated
//     per-demand noise (multiplicative AR(1)).
//
// It also implements the §5.4 robustness perturbations: temporal fluctuation
// scaling (variance of consecutive deltas multiplied by 2/5/10/20) and
// spatial redistribution (re-targeting the top-10% share to 80/60/40/20%).
#pragma once

#include <cstdint>
#include <vector>

#include "te/problem.h"
#include "util/rng.h"

namespace teal::traffic {

struct TraceConfig {
  std::uint64_t seed = 7;
  int n_intervals = 100;       // total matrices in the trace
  double mean_volume = 10.0;   // mean demand volume before calibration
  double heavy_tail_sigma = 2.48;  // lognormal sigma; 2.48 gives ~88.4% top-10% share
  double diurnal_amplitude = 0.3;  // +-30% day/night swing
  int intervals_per_day = 288;     // 5-minute intervals
  double ar1_rho = 0.9;            // temporal autocorrelation of demand noise
  double ar1_sigma = 0.08;         // per-step lognormal noise scale
};

// A trace is a sequence of TrafficMatrices over the same Problem demand set.
struct Trace {
  std::vector<te::TrafficMatrix> matrices;

  int size() const { return static_cast<int>(matrices.size()); }
  const te::TrafficMatrix& at(int t) const { return matrices[static_cast<std::size_t>(t)]; }
};

// Train/validation/test views into one trace (700/100/200 proportions).
struct TraceSplit {
  Trace train, val, test;
};

// Samples `n_demands` demand pairs from g, gravity-weighted by lognormal node
// masses (hubs attract more traffic). If n_demands >= all pairs, returns all
// pairs. Used to cap problem scale on Kdl/ASN (DESIGN.md substitution #5).
std::vector<te::Demand> sample_demands(const topo::Graph& g, int n_demands,
                                       std::uint64_t seed);

// Generates a trace for the problem's demand set.
Trace generate_trace(const te::Problem& pb, const TraceConfig& cfg);

// Splits a trace 70/10/20 in order (consecutive intervals, like the paper).
TraceSplit split_trace(const Trace& trace);

// Fraction (0..1) of total volume carried by the top `top_frac` of demands,
// averaged across the trace. Used by tests to verify the 88.4% calibration.
double top_share(const Trace& trace, double top_frac = 0.10);

// Indices of the top `top_frac` demands by mean volume over the trace.
std::vector<std::size_t> top_demand_indices(const Trace& trace, double top_frac = 0.10);

// Fraction of total volume carried by a *fixed* demand set — §5.4's spatial
// redistribution re-targets the share of the original top-10% set, which may
// no longer be the top set after redistribution.
double share_of(const Trace& trace, const std::vector<std::size_t>& demands);

// §5.4 temporal fluctuation: for each demand, computes the variance of its
// consecutive-interval changes, multiplies it by `factor`, and adds zero-mean
// normal noise with that variance to every interval (clamped at >= 0).
Trace perturb_temporal(const Trace& trace, double factor, std::uint64_t seed);

// §5.4 spatial redistribution: rescales the current top-10% demands so they
// carry `target_share` (0..1) of the total volume, redistributing the
// remainder to the other demands proportionally; total volume is preserved.
Trace perturb_spatial(const Trace& trace, double target_share);

// Scales every edge capacity so that routing the trace's mean matrix fully
// over shortest paths would load the busiest link to `target_util` (>1 means
// deliberate oversubscription). This is the paper's "set the capacities to
// ensure that the best-performing TE scheme satisfies a majority of traffic
// demand": with target_util ~1.5 the optimum lands near 90%.
void calibrate_capacities(te::Problem& pb, const Trace& trace, double target_util = 1.5);

// Stronger calibration knob: bisects a global capacity scale until routing
// the mean matrix entirely over shortest paths satisfies `target_pct` of the
// demand. Setting ~70-75% creates the congested regime where TE quality
// differentiates the schemes (the optimum then lands in the high 80s, as in
// the paper's figures).
void calibrate_capacities_to_satisfied(te::Problem& pb, const Trace& trace,
                                       double target_pct = 72.0, int bisect_iters = 30);

}  // namespace teal::traffic
