#include "traffic/traffic.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>
#include <stdexcept>

#include "te/objective.h"
#include "util/stats.h"

namespace teal::traffic {

std::vector<te::Demand> sample_demands(const topo::Graph& g, int n_demands,
                                       std::uint64_t seed) {
  const auto n = g.num_nodes();
  const std::int64_t all_pairs = static_cast<std::int64_t>(n) * (n - 1);
  if (n_demands >= all_pairs) return te::all_pairs_demands(g);

  util::Rng rng(seed);
  // Lognormal node masses: a few sites source/sink most traffic.
  std::vector<double> mass(static_cast<std::size_t>(n));
  for (auto& m : mass) m = rng.lognormal(0.0, 1.0);

  std::set<std::pair<topo::NodeId, topo::NodeId>> chosen;
  std::vector<te::Demand> out;
  int guard = 0;
  while (static_cast<int>(out.size()) < n_demands) {
    auto s = static_cast<topo::NodeId>(rng.categorical(mass));
    auto t = static_cast<topo::NodeId>(rng.categorical(mass));
    if (s == t) continue;
    if (chosen.insert({s, t}).second) out.push_back(te::Demand{s, t});
    if (++guard > 200 * n_demands) {
      throw std::runtime_error("sample_demands: cannot reach target count");
    }
  }
  return out;
}

Trace generate_trace(const te::Problem& pb, const TraceConfig& cfg) {
  util::Rng rng(cfg.seed);
  const auto nd = static_cast<std::size_t>(pb.num_demands());

  // Base (time-invariant) volumes: gravity product of node masses times a
  // heavy-tailed lognormal. The sigma controls the top-10% share.
  util::Rng mass_rng = rng.fork(1);
  std::vector<double> mass(static_cast<std::size_t>(pb.graph().num_nodes()));
  for (auto& m : mass) m = mass_rng.lognormal(0.0, 0.5);
  std::vector<double> base(nd);
  util::Rng base_rng = rng.fork(2);
  for (std::size_t d = 0; d < nd; ++d) {
    const auto& dem = pb.demand(static_cast<int>(d));
    double gravity = mass[static_cast<std::size_t>(dem.src)] *
                     mass[static_cast<std::size_t>(dem.dst)];
    base[d] = cfg.mean_volume * gravity *
              base_rng.lognormal(-0.5 * cfg.heavy_tail_sigma * cfg.heavy_tail_sigma,
                                 cfg.heavy_tail_sigma);
  }

  // Multiplicative AR(1) state per demand, in log space.
  std::vector<double> log_state(nd, 0.0);
  util::Rng noise_rng = rng.fork(3);
  util::Rng phase_rng = rng.fork(4);
  const double phase = phase_rng.uniform(0.0, 2.0 * M_PI);

  Trace trace;
  trace.matrices.resize(static_cast<std::size_t>(cfg.n_intervals));
  for (int t = 0; t < cfg.n_intervals; ++t) {
    double day_pos = 2.0 * M_PI * static_cast<double>(t) /
                     static_cast<double>(cfg.intervals_per_day);
    double diurnal = 1.0 + cfg.diurnal_amplitude * std::sin(day_pos + phase);
    auto& tm = trace.matrices[static_cast<std::size_t>(t)];
    tm.volume.resize(nd);
    for (std::size_t d = 0; d < nd; ++d) {
      log_state[d] = cfg.ar1_rho * log_state[d] + noise_rng.normal(0.0, cfg.ar1_sigma);
      tm.volume[d] = base[d] * diurnal * std::exp(log_state[d]);
    }
  }
  return trace;
}

TraceSplit split_trace(const Trace& trace) {
  const int n = trace.size();
  const int n_train = n * 7 / 10;
  const int n_val = n / 10;
  TraceSplit s;
  s.train.matrices.assign(trace.matrices.begin(), trace.matrices.begin() + n_train);
  s.val.matrices.assign(trace.matrices.begin() + n_train,
                        trace.matrices.begin() + n_train + n_val);
  s.test.matrices.assign(trace.matrices.begin() + n_train + n_val, trace.matrices.end());
  return s;
}

double top_share(const Trace& trace, double top_frac) {
  if (trace.size() == 0) throw std::invalid_argument("top_share: empty trace");
  // Rank demands by mean volume, then compute the share of the top fraction.
  const std::size_t nd = trace.matrices[0].volume.size();
  std::vector<double> mean_vol(nd, 0.0);
  for (const auto& tm : trace.matrices) {
    for (std::size_t d = 0; d < nd; ++d) mean_vol[d] += tm.volume[d];
  }
  std::vector<std::size_t> order(nd);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return mean_vol[a] > mean_vol[b]; });
  auto top_k = static_cast<std::size_t>(std::ceil(top_frac * static_cast<double>(nd)));
  double top = 0.0, total = 0.0;
  for (std::size_t i = 0; i < nd; ++i) {
    total += mean_vol[order[i]];
    if (i < top_k) top += mean_vol[order[i]];
  }
  return total > 0.0 ? top / total : 0.0;
}

std::vector<std::size_t> top_demand_indices(const Trace& trace, double top_frac) {
  if (trace.size() == 0) throw std::invalid_argument("top_demand_indices: empty trace");
  const std::size_t nd = trace.matrices[0].volume.size();
  std::vector<double> mean_vol(nd, 0.0);
  for (const auto& tm : trace.matrices) {
    for (std::size_t d = 0; d < nd; ++d) mean_vol[d] += tm.volume[d];
  }
  std::vector<std::size_t> order(nd);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return mean_vol[a] > mean_vol[b]; });
  auto top_k = static_cast<std::size_t>(std::ceil(top_frac * static_cast<double>(nd)));
  order.resize(std::min(top_k, nd));
  return order;
}

double share_of(const Trace& trace, const std::vector<std::size_t>& demands) {
  if (trace.size() == 0) throw std::invalid_argument("share_of: empty trace");
  const std::size_t nd = trace.matrices[0].volume.size();
  std::vector<char> in_set(nd, 0);
  for (std::size_t d : demands) in_set.at(d) = 1;
  double top = 0.0, total = 0.0;
  for (const auto& tm : trace.matrices) {
    for (std::size_t d = 0; d < nd; ++d) {
      total += tm.volume[d];
      if (in_set[d]) top += tm.volume[d];
    }
  }
  return total > 0.0 ? top / total : 0.0;
}

Trace perturb_temporal(const Trace& trace, double factor, std::uint64_t seed) {
  if (trace.size() < 2) throw std::invalid_argument("perturb_temporal: trace too short");
  util::Rng rng(seed);
  const std::size_t nd = trace.matrices[0].volume.size();
  // Variance of consecutive changes per demand (the paper's recipe, §5.4).
  std::vector<double> var(nd, 0.0);
  for (std::size_t d = 0; d < nd; ++d) {
    std::vector<double> deltas;
    deltas.reserve(static_cast<std::size_t>(trace.size()) - 1);
    for (int t = 1; t < trace.size(); ++t) {
      deltas.push_back(trace.matrices[static_cast<std::size_t>(t)].volume[d] -
                       trace.matrices[static_cast<std::size_t>(t - 1)].volume[d]);
    }
    var[d] = util::variance(deltas);
  }
  Trace out = trace;
  for (auto& tm : out.matrices) {
    for (std::size_t d = 0; d < nd; ++d) {
      double sigma = std::sqrt(std::max(0.0, factor * var[d]));
      tm.volume[d] = std::max(0.0, tm.volume[d] + rng.normal(0.0, sigma));
    }
  }
  return out;
}

Trace perturb_spatial(const Trace& trace, double target_share) {
  if (target_share <= 0.0 || target_share >= 1.0) {
    throw std::invalid_argument("perturb_spatial: target_share must be in (0,1)");
  }
  const std::size_t nd = trace.matrices[0].volume.size();
  // Identify the current top 10% of demands by mean volume.
  std::vector<double> mean_vol(nd, 0.0);
  for (const auto& tm : trace.matrices) {
    for (std::size_t d = 0; d < nd; ++d) mean_vol[d] += tm.volume[d];
  }
  std::vector<std::size_t> order(nd);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return mean_vol[a] > mean_vol[b]; });
  auto top_k = static_cast<std::size_t>(std::ceil(0.10 * static_cast<double>(nd)));
  std::vector<char> is_top(nd, 0);
  for (std::size_t i = 0; i < top_k && i < nd; ++i) is_top[order[i]] = 1;

  Trace out = trace;
  for (auto& tm : out.matrices) {
    double top = 0.0, rest = 0.0;
    for (std::size_t d = 0; d < nd; ++d) (is_top[d] ? top : rest) += tm.volume[d];
    double total = top + rest;
    if (total <= 0.0 || top <= 0.0 || rest <= 0.0) continue;
    double top_scale = target_share * total / top;
    double rest_scale = (1.0 - target_share) * total / rest;
    for (std::size_t d = 0; d < nd; ++d) {
      tm.volume[d] *= is_top[d] ? top_scale : rest_scale;
    }
  }
  return out;
}

namespace {
te::TrafficMatrix mean_matrix(const Trace& trace) {
  te::TrafficMatrix mean_tm;
  mean_tm.volume.assign(trace.matrices[0].volume.size(), 0.0);
  for (const auto& tm : trace.matrices) {
    for (std::size_t d = 0; d < mean_tm.volume.size(); ++d) {
      mean_tm.volume[d] += tm.volume[d] / static_cast<double>(trace.size());
    }
  }
  return mean_tm;
}
}  // namespace

void calibrate_capacities_to_satisfied(te::Problem& pb, const Trace& trace,
                                       double target_pct, int bisect_iters) {
  if (trace.size() == 0) {
    throw std::invalid_argument("calibrate_capacities_to_satisfied: empty trace");
  }
  if (target_pct <= 0.0 || target_pct > 100.0) {
    throw std::invalid_argument("calibrate_capacities_to_satisfied: bad target");
  }
  te::TrafficMatrix mean_tm = mean_matrix(trace);
  te::Allocation sp = pb.shortest_path_allocation();
  const std::vector<double> base = pb.capacities();
  auto sat_at = [&](double scale) {
    std::vector<double> caps(base.size());
    for (std::size_t e = 0; e < base.size(); ++e) caps[e] = base[e] * scale;
    return te::satisfied_demand_pct(pb, mean_tm, sp, &caps);
  };
  // Satisfied demand is nondecreasing in the scale; bracket then bisect.
  double lo = 1e-6, hi = 1.0;
  while (sat_at(hi) < target_pct && hi < 1e9) hi *= 4.0;
  for (int it = 0; it < bisect_iters; ++it) {
    double mid = 0.5 * (lo + hi);
    if (sat_at(mid) < target_pct) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  pb.mutable_graph().scale_capacities(hi);
}

void calibrate_capacities(te::Problem& pb, const Trace& trace, double target_util) {
  if (trace.size() == 0) throw std::invalid_argument("calibrate_capacities: empty trace");
  if (target_util <= 0.0) throw std::invalid_argument("calibrate_capacities: bad target");
  // Mean matrix over the trace.
  te::TrafficMatrix mean_tm;
  mean_tm.volume.assign(trace.matrices[0].volume.size(), 0.0);
  for (const auto& tm : trace.matrices) {
    for (std::size_t d = 0; d < mean_tm.volume.size(); ++d) {
      mean_tm.volume[d] += tm.volume[d] / static_cast<double>(trace.size());
    }
  }
  te::Allocation sp = pb.shortest_path_allocation();
  auto load = te::edge_loads(pb, mean_tm, sp);
  double worst = 0.0;
  for (std::size_t e = 0; e < load.size(); ++e) {
    double c = pb.graph().edge(static_cast<topo::EdgeId>(e)).capacity;
    if (c > 0.0) worst = std::max(worst, load[e] / c);
  }
  if (worst <= 0.0) return;
  // After scaling, the busiest shortest-path link sits at target_util.
  pb.mutable_graph().scale_capacities(worst / target_util);
}

}  // namespace teal::traffic
