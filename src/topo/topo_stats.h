// topo_stats.h — topology statistics for Table 1, Table 3 and Figure 17.
#pragma once

#include <vector>

#include "topo/graph.h"
#include "topo/shortest_path.h"

namespace teal::topo {

struct TopoStats {
  int n_nodes = 0;
  int n_edges = 0;             // directed edges, as in Table 1
  double avg_shortest_path = 0;  // hop-based, over connected ordered pairs
  int diameter = 0;              // hop-based
};

// Computes hop-based average shortest-path length and diameter (Table 3).
// Runs one BFS per node; parallelized across sources.
TopoStats compute_stats(const Graph& g);

// Figure 17: for each directed edge, the percentage of demands whose
// preconfigured path set traverses that edge. `paths[d]` is demand d's path
// set. Returns one value in [0, 100] per edge.
std::vector<double> routable_demand_share(const Graph& g,
                                          const std::vector<std::vector<Path>>& paths);

}  // namespace teal::topo
