#include "topo/graph.h"

#include <queue>

namespace teal::topo {

NodeId Graph::add_node() {
  out_.emplace_back();
  in_.emplace_back();
  return n_++;
}

void Graph::add_nodes(NodeId count) {
  for (NodeId i = 0; i < count; ++i) add_node();
}

EdgeId Graph::add_edge(NodeId src, NodeId dst, double capacity, double latency) {
  check_node(src);
  check_node(dst);
  if (src == dst) throw std::invalid_argument("Graph::add_edge: self loop");
  if (capacity < 0.0) throw std::invalid_argument("Graph::add_edge: negative capacity");
  if (latency < 0.0) throw std::invalid_argument("Graph::add_edge: negative latency");
  EdgeId id = static_cast<EdgeId>(edges_.size());
  edges_.push_back(Edge{src, dst, capacity, latency});
  out_[static_cast<std::size_t>(src)].push_back(id);
  in_[static_cast<std::size_t>(dst)].push_back(id);
  return id;
}

EdgeId Graph::add_link(NodeId a, NodeId b, double capacity, double latency) {
  EdgeId fwd = add_edge(a, b, capacity, latency);
  add_edge(b, a, capacity, latency);
  return fwd;
}

EdgeId Graph::find_edge(NodeId src, NodeId dst) const {
  check_node(src);
  check_node(dst);
  for (EdgeId e : out_[static_cast<std::size_t>(src)]) {
    if (edges_[static_cast<std::size_t>(e)].dst == dst) return e;
  }
  return kInvalidEdge;
}

void Graph::set_capacity(EdgeId e, double capacity) {
  if (capacity < 0.0) throw std::invalid_argument("Graph::set_capacity: negative");
  edges_.at(static_cast<std::size_t>(e)).capacity = capacity;
}

void Graph::scale_capacities(double factor) {
  if (factor < 0.0) throw std::invalid_argument("Graph::scale_capacities: negative");
  for (auto& e : edges_) e.capacity *= factor;
}

bool Graph::is_strongly_connected() const {
  if (n_ == 0) return true;
  auto bfs = [&](bool forward) {
    std::vector<char> seen(static_cast<std::size_t>(n_), 0);
    std::queue<NodeId> q;
    q.push(0);
    seen[0] = 1;
    NodeId count = 1;
    while (!q.empty()) {
      NodeId v = q.front();
      q.pop();
      const auto& adj = forward ? out_[static_cast<std::size_t>(v)]
                                : in_[static_cast<std::size_t>(v)];
      for (EdgeId e : adj) {
        NodeId u = forward ? edges_[static_cast<std::size_t>(e)].dst
                           : edges_[static_cast<std::size_t>(e)].src;
        if (!seen[static_cast<std::size_t>(u)]) {
          seen[static_cast<std::size_t>(u)] = 1;
          ++count;
          q.push(u);
        }
      }
    }
    return count == n_;
  };
  return bfs(true) && bfs(false);
}

}  // namespace teal::topo
