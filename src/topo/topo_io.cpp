#include "topo/topo_io.h"

#include <fstream>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace teal::topo {

void save_topology(const Graph& g, std::ostream& out) {
  out << "# topology " << g.name() << "\n";
  out << "nodes " << g.num_nodes() << "\n";
  out << std::setprecision(17);
  for (const Edge& e : g.edges()) {
    out << "edge " << e.src << " " << e.dst << " " << e.capacity << " " << e.latency
        << "\n";
  }
}

void save_topology_file(const Graph& g, const std::string& path) {
  std::ofstream f(path);
  if (!f) throw std::runtime_error("save_topology_file: cannot open " + path);
  save_topology(g, f);
}

Graph load_topology(std::istream& in, const std::string& name) {
  Graph g(name);
  std::string line;
  int line_no = 0;
  bool have_nodes = false;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') {
      // The writer records the graph name as the "# topology <name>" header;
      // honor it unless the caller supplied an explicit name, so that
      // save -> load -> save is a byte-identical fixpoint (scenario export:
      // generated topologies must survive the round trip for offline repro).
      constexpr const char* kHeader = "# topology ";
      if (name == "loaded" && line.rfind(kHeader, 0) == 0) {
        g.set_name(line.substr(std::string(kHeader).size()));
      }
      continue;
    }
    std::istringstream ss(line);
    std::string kind;
    ss >> kind;
    if (kind == "nodes") {
      int n = -1;
      ss >> n;
      if (!ss || n < 0) {
        throw std::runtime_error("load_topology: bad node count at line " +
                                 std::to_string(line_no));
      }
      g.add_nodes(n);
      have_nodes = true;
    } else if (kind == "edge") {
      if (!have_nodes) {
        throw std::runtime_error("load_topology: 'edge' before 'nodes' at line " +
                                 std::to_string(line_no));
      }
      NodeId src = -1, dst = -1;
      double cap = -1, lat = -1;
      ss >> src >> dst >> cap >> lat;
      if (!ss) {
        throw std::runtime_error("load_topology: malformed edge at line " +
                                 std::to_string(line_no));
      }
      g.add_edge(src, dst, cap, lat);
    } else {
      throw std::runtime_error("load_topology: unknown directive '" + kind +
                               "' at line " + std::to_string(line_no));
    }
  }
  return g;
}

Graph load_topology_file(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw std::runtime_error("load_topology_file: cannot open " + path);
  // Prefer the file's own "# topology" header; fall back to the filename for
  // hand-written files without one.
  Graph g = load_topology(f, "loaded");
  if (g.name() == "loaded") {
    auto slash = path.find_last_of('/');
    g.set_name(slash == std::string::npos ? path : path.substr(slash + 1));
  }
  return g;
}

}  // namespace teal::topo
