#include "topo/topo_io.h"

#include <fstream>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace teal::topo {

void save_topology(const Graph& g, std::ostream& out) {
  out << "# topology " << g.name() << "\n";
  out << "nodes " << g.num_nodes() << "\n";
  out << std::setprecision(17);
  for (const Edge& e : g.edges()) {
    out << "edge " << e.src << " " << e.dst << " " << e.capacity << " " << e.latency
        << "\n";
  }
}

void save_topology_file(const Graph& g, const std::string& path) {
  std::ofstream f(path);
  if (!f) throw std::runtime_error("save_topology_file: cannot open " + path);
  save_topology(g, f);
}

namespace {

// Core loader. With a null `explicit_name` the "# topology <name>" header
// written by save_topology names the graph (so save -> load -> save is a
// byte-identical fixpoint — scenario export for offline repro); otherwise
// the explicit name wins and the header is ignored. `used_header`, when
// non-null, reports whether a header was seen.
Graph load_topology_impl(std::istream& in, const std::string* explicit_name,
                         bool* used_header) {
  Graph g(explicit_name ? *explicit_name : "topology");
  if (used_header) *used_header = false;
  std::string line;
  int line_no = 0;
  bool have_nodes = false;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') {
      const std::string kHeader = "# topology ";
      if (explicit_name == nullptr && line.rfind(kHeader, 0) == 0) {
        g.set_name(line.substr(kHeader.size()));
        if (used_header) *used_header = true;
      }
      continue;
    }
    std::istringstream ss(line);
    std::string kind;
    ss >> kind;
    if (kind == "nodes") {
      int n = -1;
      ss >> n;
      if (!ss || n < 0) {
        throw std::runtime_error("load_topology: bad node count at line " +
                                 std::to_string(line_no));
      }
      g.add_nodes(n);
      have_nodes = true;
    } else if (kind == "edge") {
      if (!have_nodes) {
        throw std::runtime_error("load_topology: 'edge' before 'nodes' at line " +
                                 std::to_string(line_no));
      }
      NodeId src = -1, dst = -1;
      double cap = -1, lat = -1;
      ss >> src >> dst >> cap >> lat;
      if (!ss) {
        throw std::runtime_error("load_topology: malformed edge at line " +
                                 std::to_string(line_no));
      }
      g.add_edge(src, dst, cap, lat);
    } else {
      throw std::runtime_error("load_topology: unknown directive '" + kind +
                               "' at line " + std::to_string(line_no));
    }
  }
  return g;
}

}  // namespace

Graph load_topology(std::istream& in) {
  return load_topology_impl(in, nullptr, nullptr);
}

Graph load_topology(std::istream& in, const std::string& name) {
  return load_topology_impl(in, &name, nullptr);
}

Graph load_topology_file(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw std::runtime_error("load_topology_file: cannot open " + path);
  bool used_header = false;
  Graph g = load_topology_impl(f, nullptr, &used_header);
  if (!used_header) {
    auto slash = path.find_last_of('/');
    g.set_name(slash == std::string::npos ? path : path.substr(slash + 1));
  }
  return g;
}

}  // namespace teal::topo
