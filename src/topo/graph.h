// graph.h — directed WAN topology graph (Appendix A: G = (V, E, c)).
//
// Nodes are network sites (datacenters / aggregated routers); directed edges
// are long-haul links with a capacity c(e) and a propagation latency used
// both as the shortest-path weight and by the latency-penalized TE objective
// (§5.5). Table 1 of the paper counts directed edges, and so do we.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace teal::topo {

using NodeId = std::int32_t;
using EdgeId = std::int32_t;

inline constexpr EdgeId kInvalidEdge = -1;

struct Edge {
  NodeId src = 0;
  NodeId dst = 0;
  double capacity = 0.0;  // in traffic units per interval (e.g. Gbps)
  double latency = 1.0;   // shortest-path weight; >= 0
};

class Graph {
 public:
  Graph() = default;
  explicit Graph(std::string name) : name_(std::move(name)) {}

  NodeId add_node();
  void add_nodes(NodeId count);

  // Adds a single directed edge and returns its id.
  EdgeId add_edge(NodeId src, NodeId dst, double capacity, double latency = 1.0);

  // Adds both directions with identical capacity/latency; returns the id of
  // the forward edge (the reverse edge is the next id).
  EdgeId add_link(NodeId a, NodeId b, double capacity, double latency = 1.0);

  NodeId num_nodes() const { return n_; }
  EdgeId num_edges() const { return static_cast<EdgeId>(edges_.size()); }

  const Edge& edge(EdgeId e) const { return edges_.at(static_cast<std::size_t>(e)); }
  const std::vector<Edge>& edges() const { return edges_; }

  // Outgoing/incoming edge ids of a node.
  const std::vector<EdgeId>& out_edges(NodeId v) const {
    return out_.at(static_cast<std::size_t>(v));
  }
  const std::vector<EdgeId>& in_edges(NodeId v) const {
    return in_.at(static_cast<std::size_t>(v));
  }

  // Returns the edge id from src to dst, or kInvalidEdge if absent.
  EdgeId find_edge(NodeId src, NodeId dst) const;

  void set_capacity(EdgeId e, double capacity);
  double capacity(EdgeId e) const { return edge(e).capacity; }

  // Scales every edge capacity by `factor` (used by POP's 1/k replicas and by
  // capacity calibration).
  void scale_capacities(double factor);

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  // True if every node can reach every other node (strong connectivity).
  bool is_strongly_connected() const;

 private:
  void check_node(NodeId v) const {
    if (v < 0 || v >= n_) throw std::out_of_range("Graph: bad node id");
  }

  std::string name_;
  NodeId n_ = 0;
  std::vector<Edge> edges_;
  std::vector<std::vector<EdgeId>> out_;
  std::vector<std::vector<EdgeId>> in_;
};

}  // namespace teal::topo
