// topo_io.h — plain-text topology serialization.
//
// The paper's UsCarrier/Kdl come from the Internet Topology Zoo and ASN from
// CAIDA; those datasets are not vendored here (DESIGN.md substitution #4),
// but users who have them can convert to this edge-list format and run every
// scheme on the real graphs. The format is line-oriented:
//
//   # comment
//   nodes <N>
//   edge <src> <dst> <capacity> <latency>
//
// Edges are directed; use two lines for a bidirectional link. save/load
// round-trips byte-identically: 17 significant digits reproduce every double
// bit-exactly, and the "# topology <name>" header carries the graph name, so
// save -> load -> save is a fixpoint (tests/scenario_test.cpp pins this for
// generated topologies — the offline-repro export path).
#pragma once

#include <iosfwd>
#include <string>

#include "topo/graph.h"

namespace teal::topo {

void save_topology(const Graph& g, std::ostream& out);
void save_topology_file(const Graph& g, const std::string& path);

// One-argument overload: the graph is named by the file's "# topology"
// header, falling back to "topology" if no header is present. Two-argument
// overload: `name` names the graph and any header is ignored — an explicit
// name always wins, whatever it is.
Graph load_topology(std::istream& in);
Graph load_topology(std::istream& in, const std::string& name);
// Names the graph from the header; falls back to the file's basename for
// hand-written files without one.
Graph load_topology_file(const std::string& path);

}  // namespace teal::topo
