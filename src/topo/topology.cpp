#include "topo/topology.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <stdexcept>
#include <tuple>
#include <vector>

namespace teal::topo {

namespace {

struct Point {
  double x, y;
};

double dist(const Point& a, const Point& b) {
  return std::hypot(a.x - b.x, a.y - b.y);
}

// Prim's algorithm over the complete Euclidean graph: O(n^2).
std::vector<std::pair<int, int>> euclidean_mst(const std::vector<Point>& pts) {
  const int n = static_cast<int>(pts.size());
  std::vector<std::pair<int, int>> tree;
  if (n <= 1) return tree;
  std::vector<char> in_tree(static_cast<std::size_t>(n), 0);
  std::vector<double> best(static_cast<std::size_t>(n), 1e18);
  std::vector<int> best_from(static_cast<std::size_t>(n), 0);
  in_tree[0] = 1;
  for (int v = 1; v < n; ++v) {
    best[static_cast<std::size_t>(v)] = dist(pts[0], pts[static_cast<std::size_t>(v)]);
  }
  for (int it = 1; it < n; ++it) {
    int pick = -1;
    double bd = 1e18;
    for (int v = 0; v < n; ++v) {
      if (!in_tree[static_cast<std::size_t>(v)] && best[static_cast<std::size_t>(v)] < bd) {
        bd = best[static_cast<std::size_t>(v)];
        pick = v;
      }
    }
    in_tree[static_cast<std::size_t>(pick)] = 1;
    tree.emplace_back(best_from[static_cast<std::size_t>(pick)], pick);
    for (int v = 0; v < n; ++v) {
      if (in_tree[static_cast<std::size_t>(v)]) continue;
      double d = dist(pts[static_cast<std::size_t>(pick)], pts[static_cast<std::size_t>(v)]);
      if (d < best[static_cast<std::size_t>(v)]) {
        best[static_cast<std::size_t>(v)] = d;
        best_from[static_cast<std::size_t>(v)] = pick;
      }
    }
  }
  return tree;
}

}  // namespace

Graph make_fiber_like(int n_nodes, int n_links, double aspect, std::uint64_t seed,
                      const std::string& name, double base_capacity) {
  if (n_links < n_nodes - 1) {
    throw std::invalid_argument("make_fiber_like: n_links must allow a spanning tree");
  }
  util::Rng rng(seed);
  std::vector<Point> pts(static_cast<std::size_t>(n_nodes));
  for (auto& p : pts) {
    p.x = rng.uniform(0.0, aspect);
    p.y = rng.uniform(0.0, 1.0);
  }
  Graph g(name);
  g.add_nodes(n_nodes);

  std::set<std::pair<int, int>> used;  // normalized (a<b)
  auto norm = [](int a, int b) { return a < b ? std::make_pair(a, b) : std::make_pair(b, a); };
  auto add = [&](int a, int b) {
    double len = std::max(1e-3, dist(pts[static_cast<std::size_t>(a)],
                                     pts[static_cast<std::size_t>(b)]));
    // Mild capacity heterogeneity (+-25%) so that min-MLU is nontrivial.
    double cap = base_capacity * (0.75 + 0.5 * rng.uniform());
    g.add_link(a, b, cap, len);
    used.insert(norm(a, b));
  };

  for (auto [a, b] : euclidean_mst(pts)) add(a, b);

  // Chords: candidate pairs sorted by Euclidean distance; add nearest first,
  // matching how carriers lay redundant fiber between nearby cities.
  std::vector<std::tuple<double, int, int>> cands;
  for (int a = 0; a < n_nodes; ++a) {
    for (int b = a + 1; b < n_nodes; ++b) {
      if (!used.count({a, b})) {
        cands.emplace_back(dist(pts[static_cast<std::size_t>(a)],
                                pts[static_cast<std::size_t>(b)]),
                           a, b);
      }
    }
  }
  std::sort(cands.begin(), cands.end());
  std::size_t next = 0;
  while (static_cast<int>(used.size()) < n_links && next < cands.size()) {
    auto [d, a, b] = cands[next++];
    (void)d;
    add(a, b);
  }
  if (static_cast<int>(used.size()) != n_links) {
    throw std::runtime_error("make_fiber_like: could not reach target link count");
  }
  return g;
}

Graph make_hub_spoke(int n_nodes, int n_links, int n_hubs, std::uint64_t seed,
                     const std::string& name, double base_capacity,
                     double core_capacity_mult, double leaf_capacity_mult) {
  if (n_hubs < 2 || n_hubs > n_nodes) throw std::invalid_argument("make_hub_spoke: bad n_hubs");
  const int n_leaves = n_nodes - n_hubs;
  if (n_links < n_nodes - 1) throw std::invalid_argument("make_hub_spoke: too few links");

  util::Rng rng(seed);
  Graph g(name);
  g.add_nodes(n_nodes);  // nodes [0, n_hubs) are hubs, the rest are leaves

  std::set<std::pair<int, int>> used;
  auto norm = [](int a, int b) { return a < b ? std::make_pair(a, b) : std::make_pair(b, a); };
  auto add = [&](int a, int b, double cap_mult) {
    double lat = 0.5 + rng.uniform();  // AS-level hops have less geographic meaning
    g.add_link(a, b, base_capacity * cap_mult * (0.75 + 0.5 * rng.uniform()), lat);
    used.insert(norm(a, b));
  };

  // Hub ring first so the core is connected even before random core links.
  for (int h = 0; h < n_hubs; ++h) add(h, (h + 1) % n_hubs, core_capacity_mult);

  // Each leaf homes to one random hub (star-shaped clusters).
  for (int l = 0; l < n_leaves; ++l) {
    int leaf = n_hubs + l;
    int hub = static_cast<int>(rng.uniform_int(0, n_hubs - 1));
    add(leaf, hub, leaf_capacity_mult);
  }

  // Spend the remaining link budget: mostly dense hub-hub core links, with a
  // fraction of leaves getting a second home (multi-homing).
  int remaining = n_links - static_cast<int>(used.size());
  int multi_home = std::min(remaining / 5, n_leaves / 4);
  for (int i = 0; i < multi_home; ++i) {
    int leaf = n_hubs + static_cast<int>(rng.uniform_int(0, n_leaves - 1));
    int hub = static_cast<int>(rng.uniform_int(0, n_hubs - 1));
    if (!used.count(norm(leaf, hub))) add(leaf, hub, leaf_capacity_mult);
  }
  int guard = 0;
  while (static_cast<int>(used.size()) < n_links) {
    int a = static_cast<int>(rng.uniform_int(0, n_hubs - 1));
    int b = static_cast<int>(rng.uniform_int(0, n_hubs - 1));
    if (a != b && !used.count(norm(a, b))) add(a, b, core_capacity_mult);
    if (++guard > 100 * n_links) {
      // Hub core saturated; fall back to random leaf-hub links.
      int leaf = n_hubs + static_cast<int>(rng.uniform_int(0, n_leaves - 1));
      int hub = static_cast<int>(rng.uniform_int(0, n_hubs - 1));
      if (!used.count(norm(leaf, hub))) add(leaf, hub, leaf_capacity_mult);
    }
  }
  return g;
}

Graph make_b4(double base_capacity) {
  // 12 sites: 0-5 North America, 6-7 Europe, 8-11 Asia. 19 bidirectional
  // links arranged as in the published B4 map: meshy US core, transatlantic
  // and transpacific pairs, regional rings.
  Graph g("B4");
  g.add_nodes(12);
  struct L {
    int a, b;
    double lat;
  };
  const L links[] = {
      {0, 1, 1.0},  {0, 2, 1.5},  {1, 2, 1.0},  {1, 3, 2.0},  {2, 4, 2.2},
      {3, 4, 1.0},  {3, 5, 1.2},  {4, 5, 1.0},  {4, 6, 6.0},  {5, 7, 6.5},
      {6, 7, 1.0},  {6, 8, 7.5},  {7, 9, 8.0},  {8, 9, 1.2},  {8, 10, 1.5},
      {9, 11, 1.4}, {10, 11, 1.0}, {0, 10, 9.0}, {2, 11, 9.5},
  };
  static_assert(sizeof(links) / sizeof(links[0]) == 19);
  for (const auto& l : links) g.add_link(l.a, l.b, base_capacity, l.lat);
  return g;
}

Graph make_swan_like(std::uint64_t seed, double base_capacity) {
  // O(100) nodes/edges per the paper: 110 nodes, 195 bidirectional links,
  // moderately meshy (inter-datacenter WANs are denser than carrier fiber).
  return make_fiber_like(110, 195, 2.0, seed, "SWAN", base_capacity);
}

Graph make_uscarrier_like(std::uint64_t seed, double base_capacity) {
  // 158 nodes / 378 directed edges; elongated to reproduce the hop-count
  // statistics in Table 3 (avg 12.1, diameter 35).
  return make_fiber_like(158, 189, 16.0, seed, "UsCarrier", base_capacity);
}

Graph make_kdl_like(std::uint64_t seed, double base_capacity) {
  // 754 nodes / 1790 directed edges (avg 22.7, diameter 58).
  return make_fiber_like(754, 895, 24.0, seed, "Kdl", base_capacity);
}

Graph make_asn_like(std::uint64_t seed, double base_capacity) {
  // 1739 nodes / 8558 directed edges; 80 hub ASes with a dense core and
  // star-shaped customer clusters (avg path 3.2, diameter 8 per Table 3).
  return make_hub_spoke(1739, 4279, 80, seed, "ASN", base_capacity);
}

Graph make_topology(const std::string& name, std::uint64_t seed, double base_capacity) {
  if (name == "B4") return make_b4(base_capacity);
  if (name == "SWAN") return make_swan_like(seed, base_capacity);
  if (name == "UsCarrier") return make_uscarrier_like(seed, base_capacity);
  if (name == "Kdl") return make_kdl_like(seed, base_capacity);
  if (name == "ASN") return make_asn_like(seed, base_capacity);
  throw std::invalid_argument("make_topology: unknown topology " + name);
}

}  // namespace teal::topo
