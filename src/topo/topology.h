// topology.h — generators for the five evaluation WANs (Table 1).
//
// The paper evaluates on B4, SWAN, UsCarrier, Kdl (Internet Topology Zoo) and
// an AS-level "ASN" graph (CAIDA). SWAN is proprietary and the Zoo/CAIDA
// datasets are not vendored here, so we generate *structure-matched*
// synthetic topologies: node and directed-edge counts match Table 1 exactly,
// and the generators reproduce the structural traits the paper calls out in
// Appendix D — UsCarrier/Kdl are sparse fiber maps with long shortest paths
// and large diameters, while ASN consists of interconnected star-shaped
// clusters with a dense core, giving it anomalously short paths (avg 3.2,
// diameter 8) and a low per-edge routable-demand share (Fig 17).
//
// Two reusable generators underlie them:
//  * make_fiber_like  — Euclidean MST over points in an elongated rectangle
//                       plus nearest-neighbor chords (carrier fiber maps).
//  * make_hub_spoke   — star clusters around hub nodes plus a dense hub core
//                       (AS-level connectivity).
#pragma once

#include <cstdint>

#include "topo/graph.h"
#include "util/rng.h"

namespace teal::topo {

// Google's B4 inter-datacenter WAN: 12 sites, 19 bidirectional long-haul
// links (38 directed edges). The site layout follows the published topology
// (2013 SIGCOMM paper): two US coasts, Europe, and Asia.
Graph make_b4(double base_capacity = 1000.0);

// SWAN-like topology. The paper anonymizes Microsoft's WAN as O(100) nodes
// and O(100) edges; we use 110 nodes / 195 bidirectional links.
Graph make_swan_like(std::uint64_t seed = 1, double base_capacity = 1000.0);

// UsCarrier-like: 158 nodes / 189 bidirectional links (378 directed edges).
Graph make_uscarrier_like(std::uint64_t seed = 2, double base_capacity = 1000.0);

// Kdl-like: 754 nodes / 895 bidirectional links (1790 directed edges).
Graph make_kdl_like(std::uint64_t seed = 3, double base_capacity = 1000.0);

// ASN-like: 1739 nodes / 4279 bidirectional links (8558 directed edges),
// star-shaped clusters with a dense core.
Graph make_asn_like(std::uint64_t seed = 4, double base_capacity = 1000.0);

// Dispatch by canonical name ("B4", "SWAN", "UsCarrier", "Kdl", "ASN").
Graph make_topology(const std::string& name, std::uint64_t seed = 1,
                    double base_capacity = 1000.0);

// Generic fiber-map generator: `n_nodes` points in a rectangle with the given
// aspect ratio, connected by their Euclidean MST plus nearest-neighbor chords
// until `n_links` bidirectional links exist. Guarantees connectivity; link
// latencies are the Euclidean lengths.
Graph make_fiber_like(int n_nodes, int n_links, double aspect, std::uint64_t seed,
                      const std::string& name, double base_capacity);

// Generic hub-and-spoke generator: `n_hubs` hubs with a dense random core;
// the remaining nodes are leaves attached to 1–2 hubs. Produces exactly
// `n_links` bidirectional links. Hub-hub links get `core_capacity_mult`× and
// leaf-access links `leaf_capacity_mult`× the base capacity. Generous access
// capacity keeps congestion in the core, where path diversity exists and TE
// quality matters (as in real AS-level graphs, where the contended links are
// inter-AS).
Graph make_hub_spoke(int n_nodes, int n_links, int n_hubs, std::uint64_t seed,
                     const std::string& name, double base_capacity,
                     double core_capacity_mult = 1.0, double leaf_capacity_mult = 8.0);

}  // namespace teal::topo
