#include "topo/topo_stats.h"

#include <atomic>
#include <cstdint>

#include "util/thread_pool.h"

namespace teal::topo {

TopoStats compute_stats(const Graph& g) {
  TopoStats s;
  s.n_nodes = g.num_nodes();
  s.n_edges = g.num_edges();
  const auto n = static_cast<std::size_t>(g.num_nodes());
  if (n == 0) return s;

  std::atomic<std::int64_t> total_hops{0};
  std::atomic<std::int64_t> total_pairs{0};
  std::atomic<int> diameter{0};
  util::ThreadPool::global().parallel_for(n, [&](std::size_t src) {
    auto hops = bfs_hops(g, static_cast<NodeId>(src));
    std::int64_t local_hops = 0, local_pairs = 0;
    int local_diam = 0;
    for (std::size_t v = 0; v < n; ++v) {
      if (v == src || hops[v] < 0) continue;
      local_hops += hops[v];
      ++local_pairs;
      local_diam = std::max(local_diam, hops[v]);
    }
    total_hops += local_hops;
    total_pairs += local_pairs;
    int cur = diameter.load();
    while (local_diam > cur && !diameter.compare_exchange_weak(cur, local_diam)) {
    }
  });
  s.avg_shortest_path =
      total_pairs > 0 ? static_cast<double>(total_hops) / static_cast<double>(total_pairs) : 0.0;
  s.diameter = diameter.load();
  return s;
}

std::vector<double> routable_demand_share(const Graph& g,
                                          const std::vector<std::vector<Path>>& paths) {
  std::vector<std::int64_t> count(static_cast<std::size_t>(g.num_edges()), 0);
  for (const auto& pset : paths) {
    // An edge counts once per demand even if several of the demand's paths
    // traverse it.
    std::vector<char> seen(static_cast<std::size_t>(g.num_edges()), 0);
    for (const auto& p : pset) {
      for (EdgeId e : p) {
        if (!seen[static_cast<std::size_t>(e)]) {
          seen[static_cast<std::size_t>(e)] = 1;
          ++count[static_cast<std::size_t>(e)];
        }
      }
    }
  }
  std::vector<double> share(count.size(), 0.0);
  const double denom = paths.empty() ? 1.0 : static_cast<double>(paths.size());
  for (std::size_t e = 0; e < count.size(); ++e) {
    share[e] = 100.0 * static_cast<double>(count[e]) / denom;
  }
  return share;
}

}  // namespace teal::topo
