// shortest_path.h — Dijkstra and Yen's k-shortest simple paths.
//
// The path formulation of TE (Appendix A) routes each demand over a handful
// of *preconfigured* paths; the paper (and NCFlow/POP before it) uses the 4
// shortest paths between every node pair. We implement Yen's algorithm on
// top of a latency-weighted Dijkstra. A Path is a sequence of edge ids from
// source to destination.
#pragma once

#include <limits>
#include <optional>
#include <vector>

#include "topo/graph.h"

namespace teal::topo {

using Path = std::vector<EdgeId>;

inline constexpr double kInf = std::numeric_limits<double>::infinity();

// Single-source Dijkstra over edge latencies. Returns per-node distance and
// the incoming edge on the shortest-path tree (kInvalidEdge for unreachable
// nodes and the source).
struct SsspResult {
  std::vector<double> dist;
  std::vector<EdgeId> parent_edge;
};
SsspResult dijkstra(const Graph& g, NodeId src);

// Dijkstra with masked nodes/edges — the spur computation in Yen's algorithm
// removes root-path nodes and previously used deviation edges.
SsspResult dijkstra_masked(const Graph& g, NodeId src,
                           const std::vector<char>& node_banned,
                           const std::vector<char>& edge_banned);

// Shortest path src -> dst, or nullopt if unreachable.
std::optional<Path> shortest_path(const Graph& g, NodeId src, NodeId dst);

// Yen's algorithm: up to k loop-free shortest paths in nondecreasing latency
// order. Returns fewer than k paths when the graph does not contain k
// distinct simple paths.
std::vector<Path> yen_ksp(const Graph& g, NodeId src, NodeId dst, int k);

// Hop-count single-source BFS distances (used for Table 3 statistics, which
// report hop-based shortest-path length and diameter).
std::vector<int> bfs_hops(const Graph& g, NodeId src);

// Total latency of a path.
double path_latency(const Graph& g, const Path& p);

// Validates that p is a contiguous src->dst simple path; throws otherwise.
void validate_path(const Graph& g, const Path& p, NodeId src, NodeId dst);

}  // namespace teal::topo
