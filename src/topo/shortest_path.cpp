#include "topo/shortest_path.h"

#include <algorithm>
#include <queue>
#include <set>
#include <unordered_set>

namespace teal::topo {

namespace {

SsspResult dijkstra_impl(const Graph& g, NodeId src,
                         const std::vector<char>* node_banned,
                         const std::vector<char>* edge_banned) {
  const auto n = static_cast<std::size_t>(g.num_nodes());
  SsspResult res;
  res.dist.assign(n, kInf);
  res.parent_edge.assign(n, kInvalidEdge);
  if (node_banned && (*node_banned)[static_cast<std::size_t>(src)]) return res;

  using Item = std::pair<double, NodeId>;  // (dist, node)
  std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
  res.dist[static_cast<std::size_t>(src)] = 0.0;
  pq.emplace(0.0, src);
  while (!pq.empty()) {
    auto [d, v] = pq.top();
    pq.pop();
    if (d > res.dist[static_cast<std::size_t>(v)]) continue;  // stale entry
    for (EdgeId e : g.out_edges(v)) {
      if (edge_banned && (*edge_banned)[static_cast<std::size_t>(e)]) continue;
      const Edge& ed = g.edge(e);
      if (node_banned && (*node_banned)[static_cast<std::size_t>(ed.dst)]) continue;
      double nd = d + ed.latency;
      if (nd < res.dist[static_cast<std::size_t>(ed.dst)]) {
        res.dist[static_cast<std::size_t>(ed.dst)] = nd;
        res.parent_edge[static_cast<std::size_t>(ed.dst)] = e;
        pq.emplace(nd, ed.dst);
      }
    }
  }
  return res;
}

std::optional<Path> extract_path(const Graph& g, const SsspResult& sssp, NodeId src,
                                 NodeId dst) {
  if (sssp.dist[static_cast<std::size_t>(dst)] == kInf) return std::nullopt;
  Path p;
  NodeId v = dst;
  while (v != src) {
    EdgeId e = sssp.parent_edge[static_cast<std::size_t>(v)];
    if (e == kInvalidEdge) return std::nullopt;
    p.push_back(e);
    v = g.edge(e).src;
  }
  std::reverse(p.begin(), p.end());
  return p;
}

}  // namespace

SsspResult dijkstra(const Graph& g, NodeId src) {
  return dijkstra_impl(g, src, nullptr, nullptr);
}

SsspResult dijkstra_masked(const Graph& g, NodeId src,
                           const std::vector<char>& node_banned,
                           const std::vector<char>& edge_banned) {
  return dijkstra_impl(g, src, &node_banned, &edge_banned);
}

std::optional<Path> shortest_path(const Graph& g, NodeId src, NodeId dst) {
  if (src == dst) return Path{};
  auto sssp = dijkstra(g, src);
  return extract_path(g, sssp, src, dst);
}

double path_latency(const Graph& g, const Path& p) {
  double total = 0.0;
  for (EdgeId e : p) total += g.edge(e).latency;
  return total;
}

void validate_path(const Graph& g, const Path& p, NodeId src, NodeId dst) {
  if (p.empty()) {
    if (src != dst) throw std::invalid_argument("validate_path: empty path, src != dst");
    return;
  }
  if (g.edge(p.front()).src != src) throw std::invalid_argument("validate_path: bad source");
  if (g.edge(p.back()).dst != dst) throw std::invalid_argument("validate_path: bad destination");
  std::unordered_set<NodeId> visited{src};
  NodeId cur = src;
  for (EdgeId e : p) {
    const Edge& ed = g.edge(e);
    if (ed.src != cur) throw std::invalid_argument("validate_path: discontinuous path");
    cur = ed.dst;
    if (!visited.insert(cur).second) {
      throw std::invalid_argument("validate_path: path revisits a node");
    }
  }
}

std::vector<Path> yen_ksp(const Graph& g, NodeId src, NodeId dst, int k) {
  std::vector<Path> result;
  if (k <= 0 || src == dst) return result;
  auto first = shortest_path(g, src, dst);
  if (!first) return result;
  result.push_back(std::move(*first));

  struct Candidate {
    double cost;
    Path path;
    bool operator>(const Candidate& o) const {
      if (cost != o.cost) return cost > o.cost;
      return path > o.path;  // deterministic tiebreak
    }
  };
  std::priority_queue<Candidate, std::vector<Candidate>, std::greater<>> candidates;
  std::set<Path> seen;  // paths already produced or enqueued
  seen.insert(result[0]);

  std::vector<char> node_banned(static_cast<std::size_t>(g.num_nodes()), 0);
  std::vector<char> edge_banned(static_cast<std::size_t>(g.num_edges()), 0);

  while (static_cast<int>(result.size()) < k) {
    const Path& prev = result.back();
    // Node sequence of the previous path: spur nodes are prev[0..len-1].src.
    std::vector<NodeId> prev_nodes;
    prev_nodes.push_back(src);
    for (EdgeId e : prev) prev_nodes.push_back(g.edge(e).dst);

    for (std::size_t i = 0; i < prev.size(); ++i) {
      NodeId spur = prev_nodes[i];
      // Root path: prev[0..i)
      std::fill(node_banned.begin(), node_banned.end(), 0);
      std::fill(edge_banned.begin(), edge_banned.end(), 0);
      // Ban edges that would duplicate an already-known path sharing this root.
      for (const Path& p : result) {
        if (p.size() >= i && std::equal(p.begin(), p.begin() + static_cast<long>(i),
                                        prev.begin())) {
          if (p.size() > i) edge_banned[static_cast<std::size_t>(p[i])] = 1;
        }
      }
      // Ban root-path nodes (except the spur node) to keep paths simple.
      for (std::size_t j = 0; j < i; ++j) {
        node_banned[static_cast<std::size_t>(prev_nodes[j])] = 1;
      }

      auto sssp = dijkstra_masked(g, spur, node_banned, edge_banned);
      auto spur_path = extract_path(g, sssp, spur, dst);
      if (!spur_path) continue;

      Path total(prev.begin(), prev.begin() + static_cast<long>(i));
      total.insert(total.end(), spur_path->begin(), spur_path->end());
      if (seen.insert(total).second) {
        candidates.push(Candidate{path_latency(g, total), std::move(total)});
      }
    }

    if (candidates.empty()) break;
    result.push_back(candidates.top().path);
    candidates.pop();
  }
  return result;
}

std::vector<int> bfs_hops(const Graph& g, NodeId src) {
  std::vector<int> hops(static_cast<std::size_t>(g.num_nodes()), -1);
  std::queue<NodeId> q;
  hops[static_cast<std::size_t>(src)] = 0;
  q.push(src);
  while (!q.empty()) {
    NodeId v = q.front();
    q.pop();
    for (EdgeId e : g.out_edges(v)) {
      NodeId u = g.edge(e).dst;
      if (hops[static_cast<std::size_t>(u)] < 0) {
        hops[static_cast<std::size_t>(u)] = hops[static_cast<std::size_t>(v)] + 1;
        q.push(u);
      }
    }
  }
  return hops;
}

}  // namespace teal::topo
