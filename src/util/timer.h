// timer.h — wall-clock timing for the computation-time metric (§5.1).
//
// The paper measures "total time required by each scheme to compute flow
// allocation amortized over each traffic matrix, carefully excluding one-time
// costs". Schemes wrap their solve path in a Timer; one-time setup (path
// precomputation, model loading, Gurobi-style model *construction* where the
// paper excludes it) happens outside the timed region.
#pragma once

#include <chrono>

namespace teal::util {

class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  // Seconds elapsed since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

// Accumulates time across multiple disjoint timed sections (e.g. LP-top's
// "Gurobi run time + model rebuilding time" breakdown in Table 2).
class StopWatch {
 public:
  void start() { running_ = true; t_.reset(); }
  void stop() {
    if (running_) total_ += t_.seconds();
    running_ = false;
  }
  double total_seconds() const { return total_; }
  void clear() { total_ = 0.0; running_ = false; }

 private:
  Timer t_;
  double total_ = 0.0;
  bool running_ = false;
};

}  // namespace teal::util
