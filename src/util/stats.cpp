#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>
#include <stdexcept>

namespace teal::util {

double mean(const std::vector<double>& xs) {
  if (xs.empty()) throw std::invalid_argument("mean: empty");
  return std::accumulate(xs.begin(), xs.end(), 0.0) / static_cast<double>(xs.size());
}

double variance(const std::vector<double>& xs) {
  if (xs.empty()) throw std::invalid_argument("variance: empty");
  double m = mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return acc / static_cast<double>(xs.size());
}

double stddev(const std::vector<double>& xs) { return std::sqrt(variance(xs)); }

double min_of(const std::vector<double>& xs) {
  if (xs.empty()) throw std::invalid_argument("min_of: empty");
  return *std::min_element(xs.begin(), xs.end());
}

double max_of(const std::vector<double>& xs) {
  if (xs.empty()) throw std::invalid_argument("max_of: empty");
  return *std::max_element(xs.begin(), xs.end());
}

double percentile(std::vector<double> xs, double q) {
  if (xs.empty()) throw std::invalid_argument("percentile: empty");
  if (q < 0.0 || q > 100.0) throw std::invalid_argument("percentile: q out of range");
  std::sort(xs.begin(), xs.end());
  if (xs.size() == 1) return xs[0];
  double pos = q / 100.0 * static_cast<double>(xs.size() - 1);
  auto lo = static_cast<std::size_t>(pos);
  auto hi = std::min(lo + 1, xs.size() - 1);
  double frac = pos - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

double median(const std::vector<double>& xs) { return percentile(xs, 50.0); }

double Cdf::prob_at(double v) const {
  auto it = std::upper_bound(values.begin(), values.end(), v);
  if (it == values.begin()) return 0.0;
  return probs[static_cast<std::size_t>(it - values.begin()) - 1];
}

Cdf make_cdf(std::vector<double> xs) {
  if (xs.empty()) throw std::invalid_argument("make_cdf: empty");
  std::sort(xs.begin(), xs.end());
  Cdf cdf;
  cdf.values = std::move(xs);
  cdf.probs.resize(cdf.values.size());
  for (std::size_t i = 0; i < cdf.probs.size(); ++i) {
    cdf.probs[i] = static_cast<double>(i + 1) / static_cast<double>(cdf.probs.size());
  }
  return cdf;
}

std::string fmt(double v, int precision) {
  std::ostringstream oss;
  oss.setf(std::ios::fixed);
  oss.precision(precision);
  oss << v;
  return oss.str();
}

}  // namespace teal::util
