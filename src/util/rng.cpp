#include "util/rng.h"

#include <numeric>
#include <stdexcept>

namespace teal::util {

std::size_t Rng::categorical(const std::vector<double>& weights) {
  if (weights.empty()) throw std::invalid_argument("categorical: empty weights");
  double total = std::accumulate(weights.begin(), weights.end(), 0.0);
  if (total <= 0.0) throw std::invalid_argument("categorical: non-positive total weight");
  double r = uniform(0.0, total);
  double acc = 0.0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (r <= acc) return i;
  }
  return weights.size() - 1;  // guard against rounding at the top end
}

std::vector<std::size_t> Rng::sample_without_replacement(std::size_t n, std::size_t k) {
  if (k > n) throw std::invalid_argument("sample_without_replacement: k > n");
  // Partial Fisher–Yates over an index vector: O(n) memory, O(n + k) time.
  std::vector<std::size_t> idx(n);
  std::iota(idx.begin(), idx.end(), 0);
  for (std::size_t i = 0; i < k; ++i) {
    std::size_t j = static_cast<std::size_t>(
        uniform_int(static_cast<std::int64_t>(i), static_cast<std::int64_t>(n) - 1));
    std::swap(idx[i], idx[j]);
  }
  idx.resize(k);
  return idx;
}

}  // namespace teal::util
