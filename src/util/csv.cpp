#include "util/csv.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace teal::util {

void Table::add_row(std::vector<std::string> row) {
  if (row.size() != header_.size()) {
    throw std::invalid_argument("Table::add_row: column count mismatch");
  }
  rows_.push_back(std::move(row));
}

std::string Table::to_string() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& r : rows_) {
    for (std::size_t c = 0; c < r.size(); ++c) width[c] = std::max(width[c], r[c].size());
  }
  std::ostringstream oss;
  auto emit = [&](const std::vector<std::string>& row) {
    oss << "|";
    for (std::size_t c = 0; c < row.size(); ++c) {
      oss << " " << row[c] << std::string(width[c] - row[c].size(), ' ') << " |";
    }
    oss << "\n";
  };
  emit(header_);
  oss << "|";
  for (std::size_t c = 0; c < header_.size(); ++c) {
    oss << std::string(width[c] + 2, '-') << "|";
  }
  oss << "\n";
  for (const auto& r : rows_) emit(r);
  return oss.str();
}

namespace {
std::string csv_escape(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (char ch : s) {
    if (ch == '"') out += "\"\"";
    else out += ch;
  }
  out += "\"";
  return out;
}
}  // namespace

void Table::write_csv(const std::string& path) const {
  std::ofstream f(path);
  if (!f) throw std::runtime_error("Table::write_csv: cannot open " + path);
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) f << ",";
      f << csv_escape(row[c]);
    }
    f << "\n";
  };
  emit(header_);
  for (const auto& r : rows_) emit(r);
}

}  // namespace teal::util
