// arena.h — monotonic bump allocator behind the workspace substrate.
//
// The warm-path story (alloc_hook-verified zero allocations per solve /
// training step) left the *cold* path untouched: spinning up a replica
// workspace or a TrainContext performed hundreds of individually-malloc'd
// vector buffers — one per Mat — and tearing one down freed them one by one.
// An Arena collapses both ends: allocation is a pointer bump inside a few
// large chunks (mem-root style, after drizzle's memory::Root), teardown is
// one free per chunk, and reset() rewinds the bump pointer while *retaining*
// the chunks so the next cold start (a topology swap, a replica respawn)
// reuses the already-faulted memory with zero heap traffic.
//
// Three layers:
//   * Arena           — the chunked bump allocator itself. Not thread-safe;
//                       one arena belongs to one logical owner at a time.
//   * ArenaScope      — RAII thread-local binding. While a scope is alive on
//                       a thread, ArenaAlloc allocations on that thread come
//                       from the bound arena; everything else falls back to
//                       the heap. Scopes nest (inner scope wins).
//   * ArenaAlloc<T>   — std::allocator drop-in used by nn::BasicMat and the
//                       workspace structs. Every block carries a provenance
//                       header, so deallocate() works no matter where the
//                       container is destroyed: arena blocks are no-ops
//                       (the arena reclaims them wholesale), heap blocks are
//                       freed normally. A container may therefore outlive
//                       the binding under which it grew — the one rule is
//                       that the *arena* must outlive (and not be reset
//                       under) any container still holding its memory.
//
// Why the warm path is bit-identical: the arena changes where bytes live,
// never what arithmetic runs — kernels see the same values at different
// addresses, and all reductions keep their existing ordering.
#pragma once

#include <cstddef>
#include <cstdint>
#include <new>
#include <vector>

namespace teal::util {

class Arena {
 public:
  // First chunk size when the arena has to grow lazily. Sized so one chunk
  // covers a small-topology SolveWorkspace or a B4-scale TrainContext: the
  // cold-path alloc-count contract (<= 5) then spends one count on the chunk.
  static constexpr std::size_t kDefaultChunkBytes = 256u * 1024u;

  explicit Arena(std::size_t first_chunk_bytes = kDefaultChunkBytes) noexcept
      : next_chunk_bytes_(first_chunk_bytes < kMinChunkBytes ? kMinChunkBytes
                                                             : first_chunk_bytes) {}
  ~Arena() { release(); }

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;
  Arena(Arena&& o) noexcept { move_from(o); }
  Arena& operator=(Arena&& o) noexcept {
    if (this != &o) {
      release();
      move_from(o);
    }
    return *this;
  }

  // Bump-allocates `bytes` aligned to `align` (any power of two). Grows by
  // appending a chunk (geometric doubling) when the current one is full.
  void* allocate(std::size_t bytes, std::size_t align);

  // Ensures total capacity of at least `bytes` without disturbing existing
  // allocations. Benches/tests use this to take chunk growth out of a
  // measured window.
  void reserve(std::size_t bytes);

  // Rewinds to empty while retaining every chunk — the O(1)-allocation
  // topology swap. The caller must have destroyed (or abandoned) every
  // container whose memory came from this arena first.
  void reset() noexcept;

  // Frees all chunks (the destructor's body). After release() the arena is
  // empty and usable again.
  void release() noexcept;

  std::size_t capacity() const noexcept { return capacity_; }
  std::size_t used() const noexcept;
  std::size_t chunk_count() const noexcept { return n_chunks_; }

 private:
  static constexpr std::size_t kMinChunkBytes = 1024;

  struct Chunk {
    Chunk* next;
    std::size_t size;  // payload bytes following this header
  };
  static char* payload(Chunk* c) noexcept {
    return reinterpret_cast<char*>(c) + kChunkHeaderBytes;
  }
  // Header padded so the payload keeps new's fundamental alignment; larger
  // alignments are handled by the bump arithmetic in allocate().
  static constexpr std::size_t kChunkHeaderBytes =
      (sizeof(Chunk) + alignof(std::max_align_t) - 1) / alignof(std::max_align_t) *
      alignof(std::max_align_t);

  void move_from(Arena& o) noexcept;
  // Appends a chunk able to serve (bytes, align) and makes it current.
  void grow(std::size_t bytes, std::size_t align);

  Chunk* head_ = nullptr;  // chunk list in creation order
  Chunk* tail_ = nullptr;
  Chunk* cur_ = nullptr;   // chunk the bump pointer lives in
  char* ptr_ = nullptr;    // next free byte in cur_
  char* end_ = nullptr;    // one past cur_'s payload
  std::size_t next_chunk_bytes_;
  std::size_t capacity_ = 0;
  std::size_t n_chunks_ = 0;
};

// The calling thread's bound arena (nullptr when none).
Arena* current_arena() noexcept;

// RAII binding of an arena to the current thread. Nested scopes shadow and
// restore; binding nullptr explicitly shields a region from an outer scope.
class ArenaScope {
 public:
  explicit ArenaScope(Arena* a) noexcept;
  ~ArenaScope();
  ArenaScope(const ArenaScope&) = delete;
  ArenaScope& operator=(const ArenaScope&) = delete;

 private:
  Arena* prev_;
};

namespace detail {
// Allocates header + `bytes`, from the bound arena when one is present and
// the heap otherwise, recording the provenance in the header so
// tagged_deallocate dispatches correctly without consulting any binding.
void* tagged_allocate(std::size_t bytes, std::size_t header);
void tagged_deallocate(void* p, std::size_t header) noexcept;
}  // namespace detail

// std-compatible allocator with arena-or-heap provenance per block. All
// instances are interchangeable (the binding is thread state, not allocator
// state), so containers move across allocator instances freely.
template <typename T>
class ArenaAlloc {
 public:
  using value_type = T;
  using propagate_on_container_move_assignment = std::true_type;
  using propagate_on_container_swap = std::true_type;
  using is_always_equal = std::true_type;

  ArenaAlloc() = default;
  template <typename U>
  ArenaAlloc(const ArenaAlloc<U>&) noexcept {}

  T* allocate(std::size_t n) {
    return static_cast<T*>(detail::tagged_allocate(n * sizeof(T), header_bytes()));
  }
  void deallocate(T* p, std::size_t) noexcept {
    detail::tagged_deallocate(p, header_bytes());
  }

  friend bool operator==(const ArenaAlloc&, const ArenaAlloc&) { return true; }

 private:
  // Provenance header size: big enough for the tag, aligned for T, and at
  // least the fundamental alignment so base pointers suit every path.
  static constexpr std::size_t header_bytes() {
    return alignof(T) > alignof(std::max_align_t) ? alignof(T)
                                                  : alignof(std::max_align_t);
  }
};

// Arena-aware vector: owned std::vector semantics, storage from the bound
// arena when one is live at (re)allocation time. The workspace substrate's
// storage type (nn::BasicMat, Admm::Workspace, TrainContext slots).
template <typename T>
using AVec = std::vector<T, ArenaAlloc<T>>;

}  // namespace teal::util
