// csv.h — small CSV/markdown table writers for bench output.
//
// Every bench binary prints the paper's table/figure as (a) a human-readable
// aligned table on stdout and (b) optionally a CSV file so the series can be
// re-plotted. Keeping this in one place guarantees uniform formatting across
// the 14 bench targets.
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace teal::util {

class Table {
 public:
  explicit Table(std::vector<std::string> header) : header_(std::move(header)) {}

  void add_row(std::vector<std::string> row);

  // Renders an aligned, pipe-separated table (markdown-compatible).
  std::string to_string() const;

  // Writes RFC-4180-ish CSV (fields containing commas/quotes are quoted).
  void write_csv(const std::string& path) const;

  std::size_t n_rows() const { return rows_.size(); }
  const std::vector<std::string>& header() const { return header_; }
  const std::vector<std::vector<std::string>>& rows() const { return rows_; }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace teal::util
