// alloc_hook.h — process-wide heap allocation counter.
//
// The workspace refactor's contract is that TealScheme::solve_into() performs
// zero heap allocations once its workspace is warm. That claim is verified,
// not assumed: the library overrides global operator new/delete (see
// alloc_hook.cpp) to bump a relaxed atomic counter — one add per allocation,
// negligible next to the allocation itself — and tests/benches read it
// through this header.
#pragma once

#include <cstdint>

namespace teal::util {

// Number of global operator new / new[] calls since process start.
std::uint64_t total_allocations();

// RAII window: how many allocations happened since construction.
class AllocCounter {
 public:
  AllocCounter() : start_(total_allocations()) {}
  std::uint64_t count() const { return total_allocations() - start_; }
  void reset() { start_ = total_allocations(); }

 private:
  std::uint64_t start_;
};

}  // namespace teal::util
