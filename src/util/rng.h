// rng.h — deterministic random number generation.
//
// Every stochastic component in this repo (topology generation, traffic
// traces, RL exploration, POP's random demand assignment, failure sampling)
// draws from an explicitly seeded Rng so that experiments are reproducible
// run-to-run and comparable across schemes: each bench derives per-purpose
// child seeds from one root seed via `fork`.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

namespace teal::util {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) : engine_(seed) {}

  // Derives an independent child generator. Children with different tags are
  // decorrelated even when forked from the same parent.
  Rng fork(std::uint64_t tag) {
    std::uint64_t s = engine_();
    return Rng(s ^ (tag * 0xBF58476D1CE4E5B9ull + 0x94D049BB133111EBull));
  }

  // Stateless seed derivation: a splitmix64 round on `seed` combined with
  // fork()'s tag mixer. Unlike fork() it mutates nothing, so parallel workers
  // can construct per-item generators — Rng(mix_seed(base, item)) — in any
  // order, on any thread, and draw identical streams. The batched trainers
  // key their per-demand exploration noise this way, which is what makes the
  // trained parameters bit-identical for every worker count.
  static std::uint64_t mix_seed(std::uint64_t seed, std::uint64_t tag) {
    std::uint64_t z = seed + 0x9E3779B97F4A7C15ull;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    z ^= z >> 31;
    return z ^ (tag * 0xBF58476D1CE4E5B9ull + 0x94D049BB133111EBull);
  }

  double uniform(double lo = 0.0, double hi = 1.0) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  // Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  double normal(double mean = 0.0, double stddev = 1.0) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  double lognormal(double mu, double sigma) {
    return std::lognormal_distribution<double>(mu, sigma)(engine_);
  }

  double exponential(double rate) {
    return std::exponential_distribution<double>(rate)(engine_);
  }

  // Samples an index in [0, weights.size()) proportionally to `weights`.
  std::size_t categorical(const std::vector<double>& weights);

  // Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(i) - 1));
      std::swap(v[i - 1], v[j]);
    }
  }

  // Samples `k` distinct indices from [0, n) uniformly (k <= n).
  std::vector<std::size_t> sample_without_replacement(std::size_t n, std::size_t k);

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace teal::util
