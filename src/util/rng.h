// rng.h — deterministic random number generation.
//
// Every stochastic component in this repo (topology generation, traffic
// traces, RL exploration, POP's random demand assignment, failure sampling)
// draws from an explicitly seeded Rng so that experiments are reproducible
// run-to-run and comparable across schemes: each bench derives per-purpose
// child seeds from one root seed via `fork`.
#pragma once

#include <cmath>
#include <cstdint>
#include <random>
#include <vector>

namespace teal::util {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) : engine_(seed) {}

  // Derives an independent child generator. Children with different tags are
  // decorrelated even when forked from the same parent.
  Rng fork(std::uint64_t tag) {
    std::uint64_t s = engine_();
    return Rng(s ^ (tag * 0xBF58476D1CE4E5B9ull + 0x94D049BB133111EBull));
  }

  // Stateless seed derivation: a splitmix64 round on `seed` combined with
  // fork()'s tag mixer. Unlike fork() it mutates nothing, so parallel workers
  // can construct per-item generators — Rng(mix_seed(base, item)) — in any
  // order, on any thread, and draw identical streams. The batched trainers
  // key their per-demand exploration noise this way, which is what makes the
  // trained parameters bit-identical for every worker count.
  static std::uint64_t mix_seed(std::uint64_t seed, std::uint64_t tag) {
    std::uint64_t z = seed + 0x9E3779B97F4A7C15ull;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    z ^= z >> 31;
    return z ^ (tag * 0xBF58476D1CE4E5B9ull + 0x94D049BB133111EBull);
  }

  double uniform(double lo = 0.0, double hi = 1.0) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  // Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  // Gaussian draws share one member distribution instead of constructing a
  // fresh std::normal_distribution per call: the distribution's saved
  // Box–Muller spare is an *unscaled* unit deviate (scaled by the param at
  // use), so consecutive calls — even with different (mean, stddev) — consume
  // the engine half as often instead of discarding every second variate.
  double normal(double mean = 0.0, double stddev = 1.0) {
    return normal_(engine_, std::normal_distribution<double>::param_type(mean, stddev));
  }

  // exp(N(mu, sigma)) by definition; routed through normal() so lognormal
  // callers (traffic generation's heavy tails) share the same spare cache.
  double lognormal(double mu, double sigma) {
    return std::exp(normal(mu, sigma));
  }

  double exponential(double rate) {
    return std::exponential_distribution<double>(rate)(engine_);
  }

  // Samples an index in [0, weights.size()) proportionally to `weights`.
  std::size_t categorical(const std::vector<double>& weights);

  // Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(i) - 1));
      std::swap(v[i - 1], v[j]);
    }
  }

  // Samples `k` distinct indices from [0, n) uniformly (k <= n).
  std::vector<std::size_t> sample_without_replacement(std::size_t n, std::size_t k);

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
  std::normal_distribution<double> normal_;
};

// Counter-based Gaussian/uniform generator for keyed noise streams.
//
// The COMA trainers key exploration noise per (epoch, rollout, demand, phase)
// — coma_noise_seed() — so that streams are independent of worker count and
// schedule. Seeding a full std::mt19937_64 (2.5 KB of state, 312 init mixes)
// per draw site just to pull a handful of Gaussians is the cold-path analogue
// of per-Mat mallocs. A CounterRng is 32 bytes: output i is splitmix64 of
// key + (i+1)*golden — a pure function of (key, i), making every stream
// O(1) to construct, trivially deterministic, and jump-free.
//
// Statistical contract: splitmix64 passes BigCrush at this use scale, and
// adjacent keys/counters are decorrelated by the finalizer (util_test checks
// moments and adjacent-counter correlation). Not cryptographic.
class CounterRng {
 public:
  explicit CounterRng(std::uint64_t key) : state_(key) {}

  // splitmix64: state advances by the golden-ratio increment, output is the
  // finalized state — same finalizer as Rng::mix_seed, different stepping.
  std::uint64_t next_u64() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

  // Uniform in [0, 1) on the 53-bit grid.
  double uniform() { return static_cast<double>(next_u64() >> 11) * 0x1.0p-53; }

  // Standard normal via Box–Muller, caching the spare variate (one uniform
  // pair yields two Gaussians, so consecutive draws cost one next_u64 each
  // on average).
  double normal() {
    if (has_spare_) {
      has_spare_ = false;
      return spare_;
    }
    // u1 in (0, 1] keeps the log finite; u2 in [0, 1).
    const double u1 =
        (static_cast<double>(next_u64() >> 11) + 1.0) * 0x1.0p-53;
    const double u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double a = 2.0 * 3.141592653589793238462643383279502884 * u2;
    spare_ = r * std::sin(a);
    has_spare_ = true;
    return r * std::cos(a);
  }

  double normal(double mean, double stddev) { return mean + stddev * normal(); }

 private:
  std::uint64_t state_;
  double spare_ = 0.0;
  bool has_spare_ = false;
};

}  // namespace teal::util
