// stats.h — descriptive statistics and CDF helpers used by the benchmark
// harness (Figures 6, 7, 13 report means, percentiles and CDF curves).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace teal::util {

double mean(const std::vector<double>& xs);
double variance(const std::vector<double>& xs);  // population variance
double stddev(const std::vector<double>& xs);
double min_of(const std::vector<double>& xs);
double max_of(const std::vector<double>& xs);

// Linear-interpolation percentile, q in [0, 100].
double percentile(std::vector<double> xs, double q);
double median(const std::vector<double>& xs);

// An empirical CDF: sorted sample values paired with cumulative probability,
// suitable for printing the CDF figures (7a, 7b) as two-column series.
struct Cdf {
  std::vector<double> values;  // ascending
  std::vector<double> probs;   // in (0, 1], same length

  // P(X <= v) under the empirical distribution.
  double prob_at(double v) const;
};

Cdf make_cdf(std::vector<double> xs);

// Formats "12.3" / "0.97" style numbers for table output.
std::string fmt(double v, int precision = 2);

}  // namespace teal::util
