#include "util/arena.h"

#include <cstring>

namespace teal::util {

namespace {

inline char* align_up(char* p, std::size_t align) {
  const auto v = reinterpret_cast<std::uintptr_t>(p);
  return reinterpret_cast<char*>((v + align - 1) & ~(static_cast<std::uintptr_t>(align) - 1));
}

// Provenance tags, written at the start of every ArenaAlloc block's header.
constexpr std::uint64_t kTagArena = 0xA7E2A000A7E2A001ull;
constexpr std::uint64_t kTagHeap = 0xA7E2A000A7E2A002ull;
constexpr std::uint64_t kTagHeapAligned = 0xA7E2A000A7E2A003ull;

thread_local Arena* t_current_arena = nullptr;

}  // namespace

void* Arena::allocate(std::size_t bytes, std::size_t align) {
  if (align == 0) align = 1;
  char* p = align_up(ptr_, align);
  if (p + bytes <= end_) {
    ptr_ = p + bytes;
    return p;
  }
  // Try chunks retained by an earlier reset() before growing. Remaining slack
  // in the current chunk is abandoned — monotonic allocators trade that waste
  // for O(1) everything else.
  while (cur_ != nullptr && cur_->next != nullptr) {
    cur_ = cur_->next;
    ptr_ = payload(cur_);
    end_ = ptr_ + cur_->size;
    p = align_up(ptr_, align);
    if (p + bytes <= end_) {
      ptr_ = p + bytes;
      return p;
    }
  }
  grow(bytes, align);
  p = align_up(ptr_, align);
  ptr_ = p + bytes;
  return p;
}

void Arena::grow(std::size_t bytes, std::size_t align) {
  // Geometric growth, but never a chunk too small for the request (+ align
  // slack so align_up inside the fresh chunk cannot overflow it).
  std::size_t payload_bytes = next_chunk_bytes_;
  if (payload_bytes < bytes + align) payload_bytes = bytes + align;
  next_chunk_bytes_ = payload_bytes * 2;

  void* mem = ::operator new(kChunkHeaderBytes + payload_bytes);
  auto* c = static_cast<Chunk*>(mem);
  c->next = nullptr;
  c->size = payload_bytes;
  if (tail_ != nullptr) {
    tail_->next = c;
  } else {
    head_ = c;
  }
  tail_ = c;
  cur_ = c;
  ptr_ = payload(c);
  end_ = ptr_ + payload_bytes;
  capacity_ += payload_bytes;
  ++n_chunks_;
}

void Arena::reserve(std::size_t bytes) {
  if (capacity_ >= bytes) return;
  const std::size_t missing = bytes - capacity_;
  // Append one chunk covering the shortfall; keep the bump position so the
  // reserve never disturbs live allocations.
  Chunk* keep_cur = cur_;
  char* keep_ptr = ptr_;
  char* keep_end = end_;
  grow(missing < next_chunk_bytes_ ? next_chunk_bytes_ : missing, alignof(std::max_align_t));
  if (keep_cur != nullptr) {
    cur_ = keep_cur;
    ptr_ = keep_ptr;
    end_ = keep_end;
  } else {
    // The arena was empty: start bumping at the new chunk from byte 0.
    ptr_ = payload(cur_);
    end_ = ptr_ + cur_->size;
  }
}

void Arena::reset() noexcept {
  cur_ = head_;
  if (cur_ != nullptr) {
    ptr_ = payload(cur_);
    end_ = ptr_ + cur_->size;
  } else {
    ptr_ = end_ = nullptr;
  }
}

void Arena::release() noexcept {
  Chunk* c = head_;
  while (c != nullptr) {
    Chunk* next = c->next;
    ::operator delete(static_cast<void*>(c));
    c = next;
  }
  head_ = tail_ = cur_ = nullptr;
  ptr_ = end_ = nullptr;
  capacity_ = 0;
  n_chunks_ = 0;
}

std::size_t Arena::used() const noexcept {
  std::size_t total = 0;
  for (Chunk* c = head_; c != nullptr; c = c->next) {
    if (c == cur_) {
      total += static_cast<std::size_t>(ptr_ - (payload(cur_) + 0));
      break;
    }
    total += c->size;
  }
  return total;
}

void Arena::move_from(Arena& o) noexcept {
  head_ = o.head_;
  tail_ = o.tail_;
  cur_ = o.cur_;
  ptr_ = o.ptr_;
  end_ = o.end_;
  next_chunk_bytes_ = o.next_chunk_bytes_;
  capacity_ = o.capacity_;
  n_chunks_ = o.n_chunks_;
  o.head_ = o.tail_ = o.cur_ = nullptr;
  o.ptr_ = o.end_ = nullptr;
  o.capacity_ = 0;
  o.n_chunks_ = 0;
}

Arena* current_arena() noexcept { return t_current_arena; }

ArenaScope::ArenaScope(Arena* a) noexcept : prev_(t_current_arena) { t_current_arena = a; }

ArenaScope::~ArenaScope() { t_current_arena = prev_; }

namespace detail {

void* tagged_allocate(std::size_t bytes, std::size_t header) {
  const std::size_t total = header + bytes;
  char* base;
  std::uint64_t tag;
  if (Arena* a = t_current_arena; a != nullptr) {
    base = static_cast<char*>(a->allocate(total, header));
    tag = kTagArena;
  } else if (header > __STDCPP_DEFAULT_NEW_ALIGNMENT__) {
    base = static_cast<char*>(::operator new(total, std::align_val_t{header}));
    tag = kTagHeapAligned;
  } else {
    base = static_cast<char*>(::operator new(total));
    tag = kTagHeap;
  }
  std::memcpy(base, &tag, sizeof(tag));
  return base + header;
}

void tagged_deallocate(void* p, std::size_t header) noexcept {
  if (p == nullptr) return;
  char* base = static_cast<char*>(p) - header;
  std::uint64_t tag;
  std::memcpy(&tag, base, sizeof(tag));
  if (tag == kTagArena) return;  // reclaimed wholesale by Arena reset/release
  if (tag == kTagHeapAligned) {
    ::operator delete(static_cast<void*>(base), std::align_val_t{header});
  } else {
    ::operator delete(static_cast<void*>(base));
  }
}

}  // namespace detail

}  // namespace teal::util
