#include "util/socket.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <system_error>
#include <utility>

namespace teal::util {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::system_error(errno, std::generic_category(), what);
}

void set_tcp_nodelay(int fd) {
  // Best-effort: request/response framing wants every response on the wire
  // immediately; a socket that rejects the option still works, just slower.
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

sockaddr_in make_addr(const std::string& host, std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    throw std::system_error(EINVAL, std::generic_category(),
                            "socket: not an IPv4 address: " + host);
  }
  return addr;
}

}  // namespace

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Socket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Socket listen_tcp(const std::string& host, std::uint16_t port,
                  std::uint16_t* bound_port, int backlog) {
  Socket s(::socket(AF_INET, SOCK_STREAM, 0));
  if (!s.valid()) throw_errno("socket: socket()");
  int one = 1;
  ::setsockopt(s.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr = make_addr(host, port);
  if (::bind(s.fd(), reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    throw_errno("socket: bind(" + host + ":" + std::to_string(port) + ")");
  }
  if (::listen(s.fd(), backlog) != 0) throw_errno("socket: listen()");
  if (bound_port != nullptr) {
    sockaddr_in actual{};
    socklen_t len = sizeof(actual);
    if (::getsockname(s.fd(), reinterpret_cast<sockaddr*>(&actual), &len) != 0) {
      throw_errno("socket: getsockname()");
    }
    *bound_port = ntohs(actual.sin_port);
  }
  return s;
}

Socket accept_tcp(const Socket& listener) {
  int fd = ::accept(listener.fd(), nullptr, nullptr);
  if (fd < 0) return Socket{};  // EAGAIN/EINTR/ECONNABORTED: nothing usable
  set_tcp_nodelay(fd);
  return Socket(fd);
}

Socket connect_tcp(const std::string& host, std::uint16_t port) {
  Socket s(::socket(AF_INET, SOCK_STREAM, 0));
  if (!s.valid()) throw_errno("socket: socket()");
  sockaddr_in addr = make_addr(host, port);
  int rc;
  do {
    rc = ::connect(s.fd(), reinterpret_cast<const sockaddr*>(&addr), sizeof(addr));
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) {
    throw_errno("socket: connect(" + host + ":" + std::to_string(port) + ")");
  }
  set_tcp_nodelay(s.fd());
  return s;
}

void set_nonblocking(const Socket& s, bool on) {
  int flags = ::fcntl(s.fd(), F_GETFL, 0);
  if (flags < 0) throw_errno("socket: fcntl(F_GETFL)");
  flags = on ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  if (::fcntl(s.fd(), F_SETFL, flags) < 0) throw_errno("socket: fcntl(F_SETFL)");
}

bool write_all(const Socket& s, const void* data, std::size_t n) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  while (n > 0) {
    const ssize_t w = ::send(s.fd(), p, n, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;  // peer gone (EPIPE/ECONNRESET) or socket unusable
    }
    p += w;
    n -= static_cast<std::size_t>(w);
  }
  return true;
}

int read_some(const Socket& s, void* buf, std::size_t n) {
  const ssize_t r = ::recv(s.fd(), buf, n, 0);
  if (r > 0) return static_cast<int>(r);
  if (r == 0) return 0;  // orderly close
  if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) return -1;
  return 0;  // hard error: treat like a close, the caller drops the session
}

int write_some(const Socket& s, const void* data, std::size_t n) {
  const ssize_t w = ::send(s.fd(), data, n, MSG_NOSIGNAL);
  if (w > 0) return static_cast<int>(w);
  if (w < 0 && (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR)) return -1;
  return 0;  // peer gone or socket unusable
}

void set_recv_timeout(const Socket& s, double seconds) {
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(seconds);
  tv.tv_usec = static_cast<suseconds_t>((seconds - static_cast<double>(tv.tv_sec)) * 1e6);
  ::setsockopt(s.fd(), SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
}

WakePipe::WakePipe() {
  int fds[2];
  if (::pipe(fds) != 0) throw_errno("socket: pipe()");
  read_end_ = Socket(fds[0]);
  write_end_ = Socket(fds[1]);
  set_nonblocking(read_end_, true);
  set_nonblocking(write_end_, true);
}

void WakePipe::wake() {
  const char b = 1;
  // A full pipe means a wakeup is already pending; any other failure only
  // delays the poll loop until its next natural wakeup.
  [[maybe_unused]] ssize_t rc = ::write(write_end_.fd(), &b, 1);
}

void WakePipe::drain() {
  char buf[64];
  while (::read(read_end_.fd(), buf, sizeof(buf)) > 0) {
  }
}

}  // namespace teal::util
