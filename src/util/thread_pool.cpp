#include "util/thread_pool.h"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstdlib>

#include "util/thread_name.h"

namespace teal::util {

namespace {
thread_local bool t_in_pool_worker = false;
// True while this thread — worker *or* region caller — is executing a region
// chunk; nested parallel calls from inside a chunk must run inline.
thread_local bool t_in_region_chunk = false;
// True inside a ScopedInline scope (serving replica threads).
thread_local bool t_inline_scope = false;
}  // namespace

bool ThreadPool::in_pool_worker() {
  return t_in_pool_worker || t_in_region_chunk || t_inline_scope;
}

std::size_t ThreadPool::available_parallelism() {
  if (in_pool_worker()) return 1;
  const std::size_t hw = std::max(1u, std::thread::hardware_concurrency());
  return std::min(global().size() + 1, hw);  // workers + caller, capped by hw
}

ThreadPool::ScopedInline::ScopedInline() : prev_(t_inline_scope) { t_inline_scope = true; }

ThreadPool::ScopedInline::~ScopedInline() { t_inline_scope = prev_; }

ThreadPool::ThreadPool(std::size_t n_threads) {
  if (n_threads == 0) {
    n_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(n_threads);
  for (std::size_t i = 0; i < n_threads; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop(std::size_t index) {
  set_current_thread_name("teal-pool", index);
  t_in_pool_worker = true;
  for (;;) {
    std::function<void()> task;
    bool region = false;
    {
      std::unique_lock lock(mu_);
      cv_.wait(lock, [this] {
        return stop_ || !tasks_.empty() ||
               (region_thunk_ != nullptr && region_next_ < region_n_chunks_);
      });
      if (stop_ && tasks_.empty()) return;
      if (!tasks_.empty()) {
        task = std::move(tasks_.front());
        tasks_.pop();
      } else {
        region = true;
      }
    }
    if (region) {
      work_on_region();
    } else {
      task();
    }
  }
}

void ThreadPool::work_on_region() {
  for (;;) {
    RegionThunk thunk;
    void* ctx;
    std::size_t begin, end;
    {
      std::lock_guard lock(mu_);
      if (region_thunk_ == nullptr || region_next_ >= region_n_chunks_) return;
      const std::size_t idx = region_next_++;
      thunk = region_thunk_;
      ctx = region_ctx_;
      begin = idx * region_chunk_;
      end = std::min(region_n_, begin + region_chunk_);
    }
    t_in_region_chunk = true;
    std::exception_ptr error;
    try {
      thunk(ctx, begin, end);
    } catch (...) {
      // Record the first chunk exception for run_region to rethrow at the
      // calling thread (matching the old futures-based propagation); the
      // erroring thread stops claiming, remaining chunks run normally.
      error = std::current_exception();
    }
    t_in_region_chunk = false;
    {
      std::lock_guard lock(mu_);
      if (error && region_error_ == nullptr) region_error_ = error;
      if (++region_done_ == region_n_chunks_) region_done_cv_.notify_all();
    }
    if (error) return;
  }
}

void ThreadPool::run_region(std::size_t n, RegionThunk thunk, void* ctx) {
  // One region at a time; concurrent external callers queue up here. (Calls
  // from pool workers never reach this point — parallel_chunks runs them
  // inline.)
  std::lock_guard entry(region_entry_mu_);
  const ChunkPlan plan = chunk_plan(n, workers_.size() + 1);  // workers + caller
  {
    std::lock_guard lock(mu_);
    region_thunk_ = thunk;
    region_ctx_ = ctx;
    region_n_ = n;
    region_n_chunks_ = plan.n_chunks;
    region_chunk_ = plan.chunk;
    region_next_ = 0;
    region_done_ = 0;
    region_error_ = nullptr;
  }
  cv_.notify_all();
  work_on_region();  // the caller claims chunks too (never throws)
  std::exception_ptr error;
  {
    std::unique_lock lock(mu_);
    region_done_cv_.wait(lock, [this] { return region_done_ == region_n_chunks_; });
    region_thunk_ = nullptr;
    region_ctx_ = nullptr;
    error = region_error_;
    region_error_ = nullptr;
  }
  if (error) std::rethrow_exception(error);
}

std::size_t pool_threads_from_env(const char* value) {
  if (value == nullptr) return 0;
  errno = 0;
  char* end = nullptr;
  const long long n = std::strtoll(value, &end, 10);
  if (end == value) return 0;  // no digits at all ("", "abc")
  // Trailing garbage ("8x", "4 workers") invalidates the whole value —
  // accepting the prefix would silently honor a typo. Trailing whitespace
  // (e.g. from a shell export) is fine.
  for (const char* p = end; *p != '\0'; ++p) {
    if (!std::isspace(static_cast<unsigned char>(*p))) return 0;
  }
  if (errno == ERANGE) return 0;  // overflowed the parse
  if (n <= 0) return 0;           // "0", negatives: no meaningful pool size
  if (static_cast<unsigned long long>(n) > kMaxPoolThreads) return 0;
  return static_cast<std::size_t>(n);
}

ThreadPool& ThreadPool::global() {
  // TEAL_POOL_THREADS overrides the hardware-sized default. Raising it above
  // the core count buys no speedup, but it lets single-core machines (and
  // race detectors there) exercise the real cross-thread fan-out paths.
  // Garbage, zero, negative or overflowing values fall back to the hardware
  // default (pool_threads_from_env returns the constructor's 0 sentinel —
  // the same count available_parallelism() reports) instead of reaching the
  // thread-spawn loop.
  static ThreadPool pool(pool_threads_from_env(std::getenv("TEAL_POOL_THREADS")));
  return pool;
}

}  // namespace teal::util
