// socket.h — thin POSIX TCP and poll helpers for the network serving layer.
//
// Scope is deliberately small: RAII fd ownership, listen/connect/accept with
// the options a latency-sensitive request/response service wants (TCP_NODELAY
// so a full response frame leaves immediately, SO_REUSEADDR so test servers
// rebind, MSG_NOSIGNAL so a dead peer is a return code, not a SIGPIPE), a
// full-buffer blocking write, and a self-pipe for waking a poll() loop from
// other threads (the replica threads that complete solves). Everything that
// interprets bytes lives in net/wire.h — these helpers never look inside a
// payload.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace teal::util {

// Move-only owner of a file descriptor; closes on destruction. A
// default-constructed Socket is invalid (fd() < 0).
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { close(); }

  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;
  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;

  int fd() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  void close();

 private:
  int fd_ = -1;
};

// Listening TCP socket bound to host:port (port 0 = kernel-chosen ephemeral
// port — the hermetic-test mode). `bound_port`, when non-null, receives the
// actual port. Throws std::system_error on failure.
Socket listen_tcp(const std::string& host, std::uint16_t port,
                  std::uint16_t* bound_port = nullptr, int backlog = 128);

// Accepts one pending connection with TCP_NODELAY set; returns an invalid
// Socket when nothing is pending (EAGAIN/EINTR/peer-aborted).
Socket accept_tcp(const Socket& listener);

// Blocking connect to host:port with TCP_NODELAY. Throws std::system_error on
// failure (including refused — callers treat a dead server as fatal).
Socket connect_tcp(const std::string& host, std::uint16_t port);

void set_nonblocking(const Socket& s, bool on);

// Writes the whole buffer on a blocking socket, looping over partial writes
// and EINTR. Returns false when the peer is gone (EPIPE/ECONNRESET/...);
// never raises SIGPIPE.
bool write_all(const Socket& s, const void* data, std::size_t n);

// One recv(): returns the byte count (> 0), 0 on orderly close or hard error
// (either way the connection is finished), or -1 when a non-blocking socket
// has nothing to read right now (EAGAIN/EINTR).
int read_some(const Socket& s, void* buf, std::size_t n);

// One send() on a non-blocking socket: returns the byte count written (>= 1),
// -1 when the kernel buffer is full right now (EAGAIN/EINTR — retry on the
// next POLLOUT), or 0 when the peer is gone. Never raises SIGPIPE.
int write_some(const Socket& s, const void* data, std::size_t n);

// Blocking-receive timeout (SO_RCVTIMEO); 0 restores blocking forever. The
// slap client's reader threads use this to notice end-of-run without an extra
// poll loop.
void set_recv_timeout(const Socket& s, double seconds);

// Self-pipe for waking a poll() loop from another thread. wake() is
// async-signal-cheap (one non-blocking write; a full pipe already guarantees
// a pending wakeup); the poll side watches read_fd() and calls drain().
class WakePipe {
 public:
  WakePipe();  // throws std::system_error on failure

  int read_fd() const { return read_end_.fd(); }
  void wake();
  void drain();

 private:
  Socket read_end_;
  Socket write_end_;
};

}  // namespace teal::util
