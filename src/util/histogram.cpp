#include "util/histogram.h"

#include <algorithm>
#include <cmath>

namespace teal::util {

int LatencyHistogram::bucket_of(double seconds) {
  if (!(seconds > kMinSeconds)) return 0;  // also catches NaN
  const double octaves = std::log2(seconds / kMinSeconds);
  const int b = static_cast<int>(octaves * kBucketsPerOctave);
  return std::clamp(b, 0, kBuckets - 1);
}

double LatencyHistogram::bucket_lower(int b) {
  return kMinSeconds * std::exp2(static_cast<double>(b) / kBucketsPerOctave);
}

void LatencyHistogram::record(double seconds) {
  if (std::isnan(seconds)) return;
  seconds = std::max(seconds, 0.0);
  if (count_ == 0) {
    min_ = max_ = seconds;
  } else {
    min_ = std::min(min_, seconds);
    max_ = std::max(max_, seconds);
  }
  ++count_;
  sum_ += seconds;
  ++buckets_[static_cast<std::size_t>(bucket_of(seconds))];
}

double LatencyHistogram::percentile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 100.0);
  // Rank of the target observation, 1-based, linear in q like util::percentile.
  const double rank = 1.0 + q / 100.0 * static_cast<double>(count_ - 1);
  std::uint64_t seen = 0;
  for (int b = 0; b < kBuckets; ++b) {
    const std::uint64_t in_bucket = buckets_[static_cast<std::size_t>(b)];
    if (in_bucket == 0) continue;
    if (static_cast<double>(seen + in_bucket) >= rank) {
      // Geometric interpolation across the bucket span by the rank's
      // position within the bucket.
      const double frac =
          (rank - static_cast<double>(seen)) / static_cast<double>(in_bucket);
      const double lo = bucket_lower(b);
      const double hi = bucket_lower(b + 1);
      const double v = lo * std::pow(hi / lo, std::clamp(frac, 0.0, 1.0));
      return std::clamp(v, min_, max_);
    }
    seen += in_bucket;
  }
  return max_;
}

void LatencyHistogram::merge(const LatencyHistogram& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
  for (int b = 0; b < kBuckets; ++b) {
    buckets_[static_cast<std::size_t>(b)] += other.buckets_[static_cast<std::size_t>(b)];
  }
}

}  // namespace teal::util
