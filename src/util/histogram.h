// histogram.h — fixed-footprint latency histogram for the serving layer's
// per-replica accounting (p50/p99 queue wait, solve time, response time).
//
// util::percentile (stats.h) sorts a full sample vector — fine for a bench
// that post-processes a few hundred solve times, wrong for a serving loop
// that must record one observation per request with O(1) cost, no
// allocation, and no lock (each replica records into its own histogram;
// Server::stop() merges them). Geometric buckets from 1 µs to ~17 min at
// ~19% resolution bound the percentile error well below the run-to-run
// noise of any latency measurement on shared hardware.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace teal::util {

class LatencyHistogram {
 public:
  // Records one observation (seconds). Values outside the bucket range clamp
  // into the first/last bucket; exact min/max are tracked separately so the
  // extremes stay truthful.
  void record(double seconds);

  std::uint64_t count() const { return count_; }
  double sum_seconds() const { return sum_; }
  double mean_seconds() const { return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_); }
  double min_seconds() const { return count_ == 0 ? 0.0 : min_; }
  double max_seconds() const { return count_ == 0 ? 0.0 : max_; }

  // Percentile estimate (q in [0, 100]) by geometric interpolation within
  // the covering bucket, clamped to the observed [min, max].
  double percentile(double q) const;

  // Adds another histogram's observations into this one (the stop()-time
  // per-replica merge).
  void merge(const LatencyHistogram& other);

  void clear() { *this = LatencyHistogram{}; }

 private:
  // 4 buckets per octave over [1 µs, 2^30 µs ≈ 17.9 min): ratio 2^(1/4).
  static constexpr int kBucketsPerOctave = 4;
  static constexpr int kOctaves = 30;
  static constexpr int kBuckets = kBucketsPerOctave * kOctaves;
  static constexpr double kMinSeconds = 1e-6;

  static int bucket_of(double seconds);
  static double bucket_lower(int b);

  std::array<std::uint64_t, kBuckets> buckets_{};
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace teal::util
