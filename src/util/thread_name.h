// thread_name.h — thread naming/affinity helpers shared by every component
// that owns threads (util::ThreadPool workers, serve::Server replicas).
//
// Naming shows up in debuggers, `top -H` and perf profiles, which is how the
// serving benches attribute time between pool workers ("teal-pool/N") and
// serving replicas ("teal-serve/N"). Pinning is optional and best-effort:
// the serving layer offers it for reproducible scaling runs, but correctness
// never depends on it.
#pragma once

#include <cstddef>
#include <string>

namespace teal::util {

// Names the calling thread "<prefix>/<index>" (truncated to the platform
// limit — 15 visible chars on Linux). No-op on platforms without
// pthread_setname_np. The untruncated name is kept thread-locally and
// returned by current_thread_name() so callers (and tests) can read it back
// without a platform API.
void set_current_thread_name(const char* prefix, std::size_t index);

// Full (untruncated) name set via set_current_thread_name for this thread;
// empty string if it was never named.
const std::string& current_thread_name();

// Best-effort pin of the calling thread to `cpu` (mod the hardware CPU
// count). Returns true when the affinity call succeeded, false where
// unsupported or rejected; callers must treat pinning as a hint.
bool pin_current_thread(std::size_t cpu);

}  // namespace teal::util
