// mpmc_queue.h — bounded multi-producer/multi-consumer queue, the request
// channel of the serving layer (serve::Server).
//
// Design choices follow the serving workload, not generality:
//  * bounded with a non-blocking try_push: the server's admission control
//    decides whether a request enters at all; a full queue is a shed, never
//    back-pressure on the submitter (open-loop arrivals keep arriving
//    whether or not we block).
//  * blocking pop with close() semantics: replicas park on the condition
//    variable when idle and drain the remaining items after close() before
//    pop() returns false — shutdown never drops accepted requests.
//  * mutex + condvar, not lock-free: a queue operation costs ~100 ns while
//    the cheapest solve behind it costs ~1 ms; the lock is invisible at this
//    ratio and keeps the semantics (bound, close, size) trivially right.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <utility>

namespace teal::util {

template <typename T>
class MpmcQueue {
 public:
  explicit MpmcQueue(std::size_t capacity) : capacity_(capacity == 0 ? 1 : capacity) {}

  MpmcQueue(const MpmcQueue&) = delete;
  MpmcQueue& operator=(const MpmcQueue&) = delete;

  // Enqueues `v` unless the queue is full or closed; returns whether it was
  // accepted. Never blocks.
  bool try_push(T v) {
    {
      std::lock_guard lock(mu_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(v));
    }
    not_empty_.notify_one();
    return true;
  }

  // Dequeues into `out`, blocking while the queue is empty and open. Returns
  // false only when the queue is closed *and* fully drained.
  bool pop(T& out) {
    std::unique_lock lock(mu_);
    not_empty_.wait(lock, [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) return false;
    out = std::move(items_.front());
    items_.pop_front();
    return true;
  }

  // Rejects future pushes and wakes every blocked consumer; items already
  // queued are still delivered.
  void close() {
    {
      std::lock_guard lock(mu_);
      closed_ = true;
    }
    not_empty_.notify_all();
  }

  std::size_t size() const {
    std::lock_guard lock(mu_);
    return items_.size();
  }

  std::size_t capacity() const { return capacity_; }

  bool closed() const {
    std::lock_guard lock(mu_);
    return closed_;
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  const std::size_t capacity_;
  bool closed_ = false;
};

}  // namespace teal::util
