// thread_pool.h — fixed-size worker pool used to emulate the data-parallel
// execution that the paper obtains from GPUs.
//
// Teal's thesis is architectural: its inference pass and ADMM iterations are
// embarrassingly parallel, whereas LP solvers are inherently sequential. We
// reproduce that asymmetry on CPU: every parallelizable kernel in this repo
// (message passing, per-demand policy evaluation, per-edge/per-path ADMM
// updates, feasibility repair) goes through this pool, while the simplex
// solver runs single-threaded, exactly like the paper's Gurobi baseline
// (which gains only marginal speedup from extra threads, Figure 2).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace teal::util {

class ThreadPool {
 public:
  // Creates a pool with `n_threads` workers. `n_threads == 0` selects the
  // hardware concurrency (minimum 1).
  explicit ThreadPool(std::size_t n_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  // Enqueues an arbitrary task; returns a future for its result.
  template <typename F>
  auto submit(F&& f) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> fut = task->get_future();
    {
      std::lock_guard lock(mu_);
      tasks_.emplace([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  // Runs `fn(i)` for i in [0, n) across the pool and blocks until all
  // iterations complete. Work is divided into contiguous chunks, one per
  // worker, which is the right granularity for the dense numeric loops here.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

  // Chunked variant: `fn(begin, end)` is invoked once per chunk. Lower
  // overhead when the per-index work is tiny.
  void parallel_chunks(std::size_t n,
                       const std::function<void(std::size_t, std::size_t)>& fn);

  // Process-wide pool sized to the hardware. Most callers should use this
  // instead of constructing their own.
  static ThreadPool& global();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace teal::util
