// thread_pool.h — fixed-size worker pool used to emulate the data-parallel
// execution that the paper obtains from GPUs.
//
// Teal's thesis is architectural: its inference pass and ADMM iterations are
// embarrassingly parallel, whereas LP solvers are inherently sequential. We
// reproduce that asymmetry on CPU: every parallelizable kernel in this repo
// (message passing, per-demand policy evaluation, per-edge/per-path ADMM
// updates, feasibility repair) goes through this pool, while the simplex
// solver runs single-threaded, exactly like the paper's Gurobi baseline
// (which gains only marginal speedup from extra threads, Figure 2).
//
// Two execution paths:
//  * submit() — queue an arbitrary task, get a future. Used for coarse work
//    like fanning a solve_batch() out across per-worker workspaces.
//  * parallel_for()/parallel_chunks() — a fork-join region. The calling
//    thread and the workers claim contiguous chunks off a shared counter; no
//    std::function conversion, no futures, no per-call heap allocation, so
//    the workspace-based solve path stays allocation-free end to end.
//
// Nesting: a parallel region entered from inside a pool worker runs inline
// (sequentially) on that worker. That is exactly the shape solve_batch()
// wants — outer parallelism across traffic matrices, inner kernels
// sequential per worker — and it makes nested use deadlock-free.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <type_traits>
#include <vector>

namespace teal::util {

// Contiguous-chunk division of n items over at most n_threads threads:
// ceil-div chunk size, chunk count recomputed so no chunk is empty. Shared
// by the pool's fork-join region and by callers (TealScheme::solve_batch)
// that must size per-chunk state consistently with the pool's policy.
struct ChunkPlan {
  std::size_t chunk = 0;     // items per chunk
  std::size_t n_chunks = 0;  // number of non-empty chunks
};
inline ChunkPlan chunk_plan(std::size_t n, std::size_t n_threads) {
  if (n == 0 || n_threads == 0) return {0, 0};
  const std::size_t target = n < n_threads ? n : n_threads;
  const std::size_t chunk = (n + target - 1) / target;
  return {chunk, (n + chunk - 1) / chunk};
}

// Hard ceiling for the TEAL_POOL_THREADS override. Far above any real
// machine; it exists so an overflowing or absurd value degrades to the
// hardware default instead of asking the OS for millions of threads.
inline constexpr std::size_t kMaxPoolThreads = 1024;

// Parses a TEAL_POOL_THREADS value. Returns the requested worker count, or
// 0 — the ThreadPool constructor's "size to the hardware" sentinel, i.e.
// what available_parallelism() resolves to — when the value is null, empty,
// not a fully-numeric decimal, non-positive, or above kMaxPoolThreads
// (including values that overflow the parse). Exposed for unit testing; the
// global pool feeds getenv("TEAL_POOL_THREADS") through it exactly once at
// construction.
std::size_t pool_threads_from_env(const char* value);

class ThreadPool {
 public:
  // Creates a pool with `n_threads` workers. `n_threads == 0` selects the
  // hardware concurrency (minimum 1).
  explicit ThreadPool(std::size_t n_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  // True when the calling thread is one of this process's pool workers, is
  // currently executing a fork-join region chunk (the region caller
  // participates in its own region), or is inside a ScopedInline scope.
  // solve_batch() and parallel_chunks() use it to fall back to inline
  // execution instead of deadlocking on nested fan-out.
  static bool in_pool_worker();

  // Threads a *new* fork-join region started from the calling thread can
  // actually use: 1 when the caller already holds a pool slot (a nested
  // region runs inline), else the hardware thread count (capped by the
  // global pool's worker count + the participating caller). Shard-count
  // cost models (core::auto_shard_count) size against this so composed
  // parallelism — batch workers, serving replicas, intra-solve shards —
  // never oversubscribes the machine.
  static std::size_t available_parallelism();

  // Marks the calling thread so every parallel region it enters runs inline
  // (sequentially, on this thread) instead of fanning out to the pool.
  // Sequential serving replicas hold one per solve (serve/replica.h; a
  // sharded replica deliberately leaves it off so its demand shards can
  // reach the pool), and solve_batch's caller chunk holds one while the
  // workers own the other matrices: wherever the outer parallelism already
  // covers the machine, inner kernels must stay per-thread-sequential — the
  // same shape pool workers get implicitly. Nests; restores the previous
  // state on exit.
  class ScopedInline {
   public:
    ScopedInline();
    ~ScopedInline();
    ScopedInline(const ScopedInline&) = delete;
    ScopedInline& operator=(const ScopedInline&) = delete;

   private:
    bool prev_;
  };

  // Enqueues an arbitrary task; returns a future for its result. Must be
  // called from a thread that does not already hold a pool slot: a worker
  // (or inline-scoped thread) that submits and waits can deadlock on
  // itself, and fire-and-forget submits from inside a fan-out silently
  // oversubscribe the pool. Throws std::logic_error instead — callers that
  // might run on a worker check in_pool_worker() first and fall back to
  // inline execution (TealScheme::solve_batch does exactly this).
  template <typename F>
  auto submit(F&& f) -> std::future<std::invoke_result_t<F>> {
    if (in_pool_worker()) {
      throw std::logic_error(
          "ThreadPool::submit: calling thread already holds a pool slot "
          "(worker, region chunk, or ScopedInline scope); run the work "
          "inline instead of nesting fan-out");
    }
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> fut = task->get_future();
    {
      std::lock_guard lock(mu_);
      tasks_.emplace([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  // Runs `fn(i)` for i in [0, n) across the pool and blocks until all
  // iterations complete. Work is divided into contiguous chunks, one per
  // thread, which is the right granularity for the dense numeric loops here.
  template <typename F>
  void parallel_for(std::size_t n, F&& fn) {
    parallel_chunks(n, [&fn](std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) fn(i);
    });
  }

  // Chunked variant: `fn(begin, end)` is invoked once per chunk. Lower
  // overhead when the per-index work is tiny. Allocation-free: the callable
  // is passed to the workers as a raw (thunk, context) pair.
  template <typename F>
  void parallel_chunks(std::size_t n, F&& fn) {
    if (n == 0) return;
    if (n == 1 || workers_.size() <= 1 || in_pool_worker()) {
      fn(0, n);
      return;
    }
    using Fn = std::remove_reference_t<F>;
    run_region(
        n,
        [](void* ctx, std::size_t begin, std::size_t end) {
          (*static_cast<Fn*>(ctx))(begin, end);
        },
        &fn);
  }

  // Process-wide pool sized to the hardware (override with env
  // TEAL_POOL_THREADS, e.g. to exercise the cross-thread fan-out paths on a
  // single-core machine). Most callers should use this instead of
  // constructing their own.
  static ThreadPool& global();

 private:
  using RegionThunk = void (*)(void* ctx, std::size_t begin, std::size_t end);

  void worker_loop(std::size_t index);
  // Fork-join core behind parallel_chunks: publishes (thunk, ctx) to the
  // workers, participates in chunk claiming, and blocks until every chunk ran.
  void run_region(std::size_t n, RegionThunk thunk, void* ctx);
  // Claims and runs region chunks until none are left.
  void work_on_region();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;

  // Active fork-join region (all fields guarded by mu_; one region at a time,
  // serialized by region_entry_mu_).
  std::mutex region_entry_mu_;
  RegionThunk region_thunk_ = nullptr;
  void* region_ctx_ = nullptr;
  std::size_t region_n_ = 0;        // total iterations
  std::size_t region_chunk_ = 0;    // iterations per chunk
  std::size_t region_n_chunks_ = 0;
  std::size_t region_next_ = 0;     // next unclaimed chunk index
  std::size_t region_done_ = 0;     // completed chunks
  std::exception_ptr region_error_; // first chunk exception, rethrown at caller
  std::condition_variable region_done_cv_;
};

}  // namespace teal::util
