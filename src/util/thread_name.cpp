#include "util/thread_name.h"

#include <algorithm>
#include <thread>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace teal::util {

namespace {
thread_local std::string t_thread_name;
}  // namespace

void set_current_thread_name(const char* prefix, std::size_t index) {
  t_thread_name = std::string(prefix) + "/" + std::to_string(index);
#if defined(__linux__)
  // Linux caps thread names at 16 bytes including the terminator; keep the
  // index visible by truncating the prefix, not the suffix.
  const std::string suffix = "/" + std::to_string(index);
  std::string short_name(prefix);
  const std::size_t limit = 15;
  if (short_name.size() + suffix.size() > limit) {
    short_name.resize(limit > suffix.size() ? limit - suffix.size() : 0);
  }
  short_name += suffix;
  pthread_setname_np(pthread_self(), short_name.c_str());
#endif
}

const std::string& current_thread_name() { return t_thread_name; }

bool pin_current_thread(std::size_t cpu) {
#if defined(__linux__)
  const unsigned n_cpus = std::max(1u, std::thread::hardware_concurrency());
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(static_cast<int>(cpu % n_cpus), &set);
  return pthread_setaffinity_np(pthread_self(), sizeof(set), &set) == 0;
#else
  (void)cpu;
  return false;
#endif
}

}  // namespace teal::util
