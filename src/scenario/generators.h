// generators.h — synthetic WAN topology generators (scenario factory, part a).
//
// The five bundled topologies (topo/topology.h) are structure-matched to
// Table 1; everything beyond them comes from here. Two classic random-WAN
// families, parameterized by node/edge count up to ~10× ASN's size:
//
//  * make_waxman    — Waxman (1988) geometric random graph: nodes placed
//                     uniformly in an elongated rectangle, links sampled with
//                     probability alpha * exp(-d / (beta * L)) so short links
//                     dominate (fiber-map locality). A coordinate-sorted
//                     chain backbone guarantees connectivity without the
//                     O(n^2) MST the bundled fiber generator pays, which is
//                     what lets this one reach 10x-ASN node counts.
//  * make_power_law — Barabási–Albert preferential attachment: each new node
//                     links to m existing nodes sampled proportionally to
//                     degree, yielding the heavy-tailed degree distribution
//                     of AS-level graphs (hubs + leaves, short paths).
//
// Determinism contract: both generators draw every random value from
// util::CounterRng streams keyed off the config seed via util::Rng::mix_seed
// — a pure function of (seed, purpose, item) — so regeneration from the same
// config is byte-identical across runs, platforms and call sites
// (tests/scenario_test.cpp pins this with memcmp over the edge arrays).
// Generated graphs are always strongly connected; infeasible configs throw
// std::invalid_argument / std::runtime_error with a named reason instead of
// silently emitting a smaller graph.
#pragma once

#include <cstdint>
#include <string>

#include "topo/graph.h"
#include "util/rng.h"

namespace teal::scenario {

// Per-link capacity distribution. Every kind clamps into [lo, hi], so
// downstream cost models can rely on hard bounds (tests verify them).
struct CapacityDist {
  enum class Kind { kUniform, kLognormal, kBimodal };
  Kind kind = Kind::kUniform;
  double lo = 500.0;   // hard lower bound (> 0)
  double hi = 2000.0;  // hard upper bound (>= lo)
  // kLognormal: median sqrt(lo*hi), log-space spread `sigma`, clamped.
  double sigma = 0.6;
  // kBimodal: fraction of links at `hi` (backbone), remainder at `lo`.
  double hi_fraction = 0.2;

  // Throws std::invalid_argument on lo <= 0, hi < lo, sigma < 0, or
  // hi_fraction outside [0, 1].
  void validate() const;
  double sample(util::CounterRng& rng) const;
};

struct WaxmanConfig {
  int n_nodes = 100;
  // Total bidirectional links to emit (>= n_nodes - 1; the chain backbone
  // uses n_nodes - 1 of them). 0 = 2 * n_nodes.
  int n_links = 0;
  double alpha = 0.4;   // acceptance scale, in (0, 1]
  double beta = 0.15;   // locality scale, in (0, 1]: smaller = shorter links
  double aspect = 2.0;  // placement-rectangle width/height (WAN elongation)
  CapacityDist capacity;
  std::uint64_t seed = 1;
};

// Waxman geometric random WAN. Link latency is the Euclidean length (times a
// fixed scale so latencies land in the bundled topologies' range). Throws
// std::runtime_error when the acceptance sampling cannot reach `n_links`
// (alpha/beta too small for the requested density) — loudly, never a
// silently sparser graph.
topo::Graph make_waxman(const WaxmanConfig& cfg);

struct PowerLawConfig {
  int n_nodes = 200;
  // Links each arriving node attaches with (BA's m), >= 1. The seed clique
  // has m + 1 nodes; total links = C(m+1, 2) + (n_nodes - m - 1) * m.
  int m = 2;
  CapacityDist capacity;
  // Latency of each link, drawn uniformly from [latency_lo, latency_hi]
  // (AS-level graphs carry no geometry).
  double latency_lo = 1.0;
  double latency_hi = 10.0;
  std::uint64_t seed = 1;
};

// Barabási–Albert preferential-attachment WAN (connected by construction).
topo::Graph make_power_law(const PowerLawConfig& cfg);

// Expected bidirectional link count of make_power_law for a given config.
int power_law_links(const PowerLawConfig& cfg);

// Byte-level graph equality: same node count and bit-identical edge arrays
// (src, dst, capacity, latency). The regeneration-determinism contract.
bool graphs_bit_identical(const topo::Graph& a, const topo::Graph& b);

}  // namespace teal::scenario
