#include "scenario/failures.h"

#include <algorithm>
#include <stdexcept>

#include "util/rng.h"

namespace teal::scenario {

void RollingFailureConfig::validate() const {
  if (!(hazard >= 0.0 && hazard <= 1.0)) {
    throw std::invalid_argument("RollingFailureConfig: hazard must be in [0, 1]");
  }
  if (repair_after < 1) {
    throw std::invalid_argument("RollingFailureConfig: repair_after must be >= 1");
  }
  if (max_concurrent < 1) {
    throw std::invalid_argument("RollingFailureConfig: max_concurrent must be >= 1");
  }
}

std::vector<FailureEvent> make_rolling_failures(const topo::Graph& g, int n_intervals,
                                                const RollingFailureConfig& cfg) {
  cfg.validate();
  if (n_intervals < 0) {
    throw std::invalid_argument("make_rolling_failures: n_intervals must be >= 0");
  }

  // Physical links: (fwd, rev) pairs keyed by the src < dst direction, in
  // ascending fwd-edge order (the iteration order below — part of the
  // determinism contract).
  struct Link {
    topo::EdgeId fwd, rev;
  };
  std::vector<Link> links;
  for (topo::EdgeId e = 0; e < g.num_edges(); ++e) {
    const auto& ed = g.edge(e);
    if (ed.src >= ed.dst) continue;
    const topo::EdgeId rev = g.find_edge(ed.dst, ed.src);
    if (rev != topo::kInvalidEdge) links.push_back({e, rev});
  }

  std::vector<FailureEvent> events;
  std::vector<char> down(links.size(), 0);
  // repairs_due[t] = link indices repairing at interval t, in failure order.
  std::vector<std::vector<std::size_t>> repairs_due(
      static_cast<std::size_t>(n_intervals) + 1);
  int failed = 0;

  for (int t = 0; t < n_intervals; ++t) {
    // Repairs first: a link repaired at t is eligible to fail again at t+1
    // (not at t — one transition per link per interval keeps the schedule
    // unambiguous).
    std::vector<char> repaired_now(links.size(), 0);
    for (std::size_t li : repairs_due[static_cast<std::size_t>(t)]) {
      events.push_back({t, /*fail=*/false, links[li].fwd, links[li].rev});
      down[li] = 0;
      repaired_now[li] = 1;
      --failed;
    }
    for (std::size_t li = 0; li < links.size(); ++li) {
      if (down[li] || repaired_now[li] || failed >= cfg.max_concurrent) continue;
      util::CounterRng rng(util::Rng::mix_seed(
          util::Rng::mix_seed(cfg.seed, static_cast<std::uint64_t>(t)),
          static_cast<std::uint64_t>(links[li].fwd)));
      if (rng.uniform() >= cfg.hazard) continue;
      events.push_back({t, /*fail=*/true, links[li].fwd, links[li].rev});
      down[li] = 1;
      ++failed;
      const int due = t + cfg.repair_after;
      if (due < n_intervals) {
        repairs_due[static_cast<std::size_t>(due)].push_back(li);
      }
    }
  }
  return events;
}

FailureState::FailureState(const topo::Graph& g, std::vector<FailureEvent> events)
    : events_(std::move(events)) {
  if (!std::is_sorted(events_.begin(), events_.end(),
                      [](const FailureEvent& a, const FailureEvent& b) {
                        return a.interval < b.interval;
                      })) {
    throw std::invalid_argument("FailureState: events must be sorted by interval");
  }
  // Snapshot the capacities now: the caller is free to mutate the graph
  // between queries (run_scenario writes each epoch's capacities — zeros for
  // failed links included — back into the live graph), and a repair must
  // restore the pre-failure value, not whatever the graph holds by then.
  orig_.resize(static_cast<std::size_t>(g.num_edges()));
  for (topo::EdgeId e = 0; e < g.num_edges(); ++e) {
    orig_[static_cast<std::size_t>(e)] = g.edge(e).capacity;
  }
  reset();
}

void FailureState::reset() {
  caps_ = orig_;
  next_ = 0;
  cursor_ = -1;
  failed_ = 0;
}

const std::vector<double>& FailureState::capacities_at(int t) {
  if (t < cursor_) reset();
  while (next_ < events_.size() && events_[next_].interval <= t) {
    const FailureEvent& ev = events_[next_];
    caps_[static_cast<std::size_t>(ev.fwd)] =
        ev.fail ? 0.0 : orig_[static_cast<std::size_t>(ev.fwd)];
    caps_[static_cast<std::size_t>(ev.rev)] =
        ev.fail ? 0.0 : orig_[static_cast<std::size_t>(ev.rev)];
    failed_ += ev.fail ? 1 : -1;
    ++next_;
  }
  cursor_ = t;
  return caps_;
}

std::vector<int> failure_epoch_starts(const std::vector<FailureEvent>& events) {
  std::vector<int> starts;
  for (const FailureEvent& ev : events) {
    if (starts.empty() || starts.back() != ev.interval) starts.push_back(ev.interval);
  }
  return starts;
}

}  // namespace teal::scenario
