#include "scenario/scenario.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "baselines/lp_schemes.h"
#include "core/teal_scheme.h"
#include "te/objective.h"

namespace teal::scenario {

namespace {

constexpr std::uint64_t kTagDemands = 21;
constexpr std::uint64_t kTagTraffic = 22;

// Restores the problem graph's capacities on scope exit, so a scenario run
// (which applies failure-epoch capacities between solves) leaves the
// scenario reusable even when a run throws.
class CapacityRestore {
 public:
  explicit CapacityRestore(te::Problem& pb) : pb_(&pb), orig_(pb.capacities()) {}
  ~CapacityRestore() {
    for (topo::EdgeId e = 0; e < pb_->graph().num_edges(); ++e) {
      pb_->mutable_graph().set_capacity(e, orig_[static_cast<std::size_t>(e)]);
    }
  }
  CapacityRestore(const CapacityRestore&) = delete;
  CapacityRestore& operator=(const CapacityRestore&) = delete;

 private:
  te::Problem* pb_;
  std::vector<double> orig_;
};

void apply_capacities(te::Problem& pb, const std::vector<double>& caps) {
  for (topo::EdgeId e = 0; e < pb.graph().num_edges(); ++e) {
    pb.mutable_graph().set_capacity(e, caps[static_cast<std::size_t>(e)]);
  }
}

void merge_stats(serve::ServeStats& into, const serve::ServeStats& s) {
  into.offered += s.offered;
  into.accepted += s.accepted;
  into.shed += s.shed;
  into.completed += s.completed;
  into.wall_seconds += s.wall_seconds;
  into.replica_deaths += s.replica_deaths;
  into.requeued += s.requeued;
  into.failed += s.failed;
  into.queue_wait.merge(s.queue_wait);
  into.solve.merge(s.solve);
  into.response.merge(s.response);
  if (into.replicas.size() < s.replicas.size()) into.replicas.resize(s.replicas.size());
  for (std::size_t i = 0; i < s.replicas.size(); ++i) {
    into.replicas[i].solved += s.replicas[i].solved;
    into.replicas[i].busy_seconds += s.replicas[i].busy_seconds;
  }
}

}  // namespace

Scenario build_scenario(const ScenarioSpec& spec) {
  if (spec.n_demands < 1) {
    throw std::invalid_argument("build_scenario: n_demands must be >= 1");
  }
  topo::Graph g = spec.topo_kind == TopoKind::kWaxman
                      ? make_waxman(WaxmanConfig{spec.n_nodes, spec.waxman_links, 0.4,
                                                 0.15, 2.0, spec.capacity, spec.seed})
                      : make_power_law(PowerLawConfig{spec.n_nodes, spec.powerlaw_m,
                                                      spec.capacity, 1.0, 10.0,
                                                      spec.seed});
  auto demands = traffic::sample_demands(g, spec.n_demands,
                                         util::Rng::mix_seed(spec.seed, kTagDemands));
  te::Problem pb(std::move(g), std::move(demands), 4);

  GravityTrafficConfig tcfg = spec.traffic;
  if (tcfg.seed == 0) tcfg.seed = util::Rng::mix_seed(spec.seed, kTagTraffic);
  traffic::Trace trace = generate_gravity_trace(pb, tcfg);
  if (spec.calibrate_util > 0.0) {
    traffic::calibrate_capacities(pb, trace, spec.calibrate_util);
  }

  // The schedule only encodes link identities and timing; capacities come
  // from the FailureState snapshot, which run_scenario takes from the
  // (calibrated) graph before the first epoch, so repairs restore the
  // calibrated values.
  std::vector<FailureEvent> failures;
  if (spec.failures.has_value()) {
    failures = make_rolling_failures(pb.graph(), trace.size(), *spec.failures);
  }
  return Scenario{spec.name, std::move(pb), std::move(trace), std::move(failures)};
}

std::vector<std::string> scenario_names() {
  return {"baseline", "diurnal", "flash-crowd", "shift", "rolling-failure"};
}

ScenarioSpec named_scenario(const std::string& name, int n_nodes, std::uint64_t seed) {
  ScenarioSpec spec;
  spec.name = name + "-" + std::to_string(n_nodes);
  spec.topo_kind = TopoKind::kPowerLaw;
  spec.n_nodes = n_nodes;
  spec.powerlaw_m = 2;
  spec.n_demands = std::clamp(2 * n_nodes, 50, 2000);
  spec.seed = seed;
  spec.traffic.n_intervals = 24;
  spec.traffic.mean_volume = 10.0;
  spec.traffic.mass_sigma = 1.0;
  spec.traffic.noise_sigma = 0.05;

  if (name == "baseline") {
    // Steady gravity load, light jitter only.
  } else if (name == "diurnal") {
    spec.traffic.diurnal_amplitude = 0.3;
    spec.traffic.diurnal_period = 12;  // two full cycles inside the trace
  } else if (name == "flash-crowd") {
    spec.traffic.flash = FlashCrowd{/*t_start=*/8, /*duration=*/6,
                                    /*magnitude=*/4.0, /*hot_fraction=*/0.05};
  } else if (name == "shift") {
    spec.traffic.shift = DemandShift{/*t_start=*/12, /*factor=*/2.5,
                                     /*shifted_fraction=*/0.3};
  } else if (name == "rolling-failure") {
    RollingFailureConfig fcfg;
    fcfg.seed = util::Rng::mix_seed(seed, 31);
    fcfg.hazard = 0.05;
    fcfg.repair_after = 4;
    fcfg.max_concurrent = 3;
    spec.failures = fcfg;
  } else {
    throw std::invalid_argument("named_scenario: unknown scenario '" + name +
                                "' (known: baseline, diurnal, flash-crowd, shift, "
                                "rolling-failure)");
  }
  return spec;
}

std::unique_ptr<te::Scheme> make_cold_scheme(const std::string& scheme,
                                             const te::Problem& pb,
                                             std::uint64_t seed) {
  if (scheme == "Teal") {
    return std::make_unique<core::TealScheme>(
        pb, std::make_unique<core::TealModel>(core::TealModelConfig{}, pb.k_paths(), seed),
        core::TealSchemeConfig{});
  }
  if (scheme == "LP-all") return std::make_unique<baselines::LpAllScheme>();
  if (scheme == "LP-top") return std::make_unique<baselines::LpTopScheme>(0.10);
  throw std::invalid_argument("make_cold_scheme: unknown scheme '" + scheme +
                              "' (known: Teal, LP-all, LP-top)");
}

serve::SchemeFactory cold_scheme_factory(const std::string& scheme,
                                         const te::Problem& /*pb*/,
                                         std::uint64_t /*seed*/) {
  if (scheme == "Teal") return nullptr;  // shared-workspace replicas
  if (scheme == "LP-all") {
    return [] { return std::make_unique<baselines::LpAllScheme>(); };
  }
  if (scheme == "LP-top") {
    return [] { return std::make_unique<baselines::LpTopScheme>(0.10); };
  }
  throw std::invalid_argument("cold_scheme_factory: unknown scheme '" + scheme + "'");
}

ScenarioRunResult run_scenario(te::Scheme& scheme, Scenario& sc,
                               const sim::ServedConfig& cfg,
                               const serve::SchemeFactory& factory) {
  ScenarioRunResult res;
  const int n = sc.trace.size();
  res.allocs.reserve(static_cast<std::size_t>(n));
  res.accepted.reserve(static_cast<std::size_t>(n));
  res.satisfied_pct.reserve(static_cast<std::size_t>(n));

  // Epoch boundaries: interval 0 plus every failure-event interval inside
  // the trace. Within one epoch the capacity vector is constant, so the
  // serving replicas never observe a capacity change mid-run.
  std::vector<int> starts{0};
  for (int s : failure_epoch_starts(sc.failures)) {
    if (s > 0 && s < n && s != starts.back()) starts.push_back(s);
  }
  res.n_epochs = static_cast<int>(starts.size());

  CapacityRestore restore(sc.pb);
  FailureState state(sc.pb.graph(), sc.failures);
  for (std::size_t ep = 0; ep < starts.size(); ++ep) {
    const int b = starts[ep];
    const int e = ep + 1 < starts.size() ? starts[ep + 1] : n;
    apply_capacities(sc.pb, state.capacities_at(b));

    traffic::Trace segment;
    segment.matrices.assign(sc.trace.matrices.begin() + b,
                            sc.trace.matrices.begin() + e);
    sim::ServedResult sr = sim::run_served(scheme, sc.pb, segment, cfg, factory);

    for (int t = 0; t < segment.size(); ++t) {
      const auto i = static_cast<std::size_t>(t);
      res.accepted.push_back(sr.accepted[i]);
      res.satisfied_pct.push_back(
          sr.accepted[i] ? te::satisfied_demand_pct(sc.pb, segment.at(t), sr.allocs[i])
                         : 0.0);
      res.allocs.push_back(std::move(sr.allocs[i]));
    }
    merge_stats(res.stats, sr.stats);
  }

  double sum = 0.0;
  std::size_t n_ok = 0;
  for (std::size_t i = 0; i < res.satisfied_pct.size(); ++i) {
    if (res.accepted[i]) {
      sum += res.satisfied_pct[i];
      ++n_ok;
    }
  }
  res.mean_satisfied_pct = n_ok > 0 ? sum / static_cast<double>(n_ok) : 0.0;
  return res;
}

FleetScenarioResult run_scenario_fleet(std::vector<Scenario>& scenarios,
                                       const std::string& scheme_name,
                                       const sim::ServedFleetConfig& cfg) {
  for (const Scenario& sc : scenarios) {
    if (!sc.failures.empty()) {
      throw std::invalid_argument(
          "run_scenario_fleet: failure schedules are not supported in fleet "
          "replay (scenario '" + sc.name + "'); run it through run_scenario");
    }
  }
  std::vector<std::unique_ptr<te::Scheme>> schemes;
  std::vector<sim::ServedTenant> tenants;
  schemes.reserve(scenarios.size());
  tenants.reserve(scenarios.size());
  for (Scenario& sc : scenarios) {
    schemes.push_back(make_cold_scheme(scheme_name, sc.pb));
    sim::ServedTenant t;
    t.name = sc.name;
    t.pb = &sc.pb;
    t.trace = &sc.trace;
    t.scheme = schemes.back().get();
    t.factory = cold_scheme_factory(scheme_name, sc.pb);
    t.offered_weight = 1.0;
    tenants.push_back(std::move(t));
  }

  FleetScenarioResult res;
  res.served = sim::run_served_fleet(tenants, cfg);
  res.mean_satisfied_pct.resize(scenarios.size(), 0.0);
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    const auto& sc = scenarios[i];
    const auto& tr = res.served.tenants[i];
    double sum = 0.0;
    std::size_t n_ok = 0;
    for (int t = 0; t < sc.trace.size(); ++t) {
      const auto k = static_cast<std::size_t>(t);
      if (!tr.accepted[k]) continue;
      sum += te::satisfied_demand_pct(sc.pb, sc.trace.at(t), tr.allocs[k]);
      ++n_ok;
    }
    res.mean_satisfied_pct[i] = n_ok > 0 ? sum / static_cast<double>(n_ok) : 0.0;
  }
  return res;
}

}  // namespace teal::scenario
