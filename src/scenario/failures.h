// failures.h — rolling failure schedules (scenario factory, part c).
//
// fig08/fig09 fail a sampled link set once and measure the reaction. A
// rolling schedule generalizes that into continuous churn: every interval,
// each healthy physical link fails with a per-interval hazard (both
// directions together — a fiber cut), stays down for a deterministic
// repair time, and the number of concurrently failed links is capped so the
// graph never loses so much capacity the scenario degenerates.
//
// Determinism: the hazard draw is keyed per (seed, interval, link), so the
// schedule is a pure function of (graph, n_intervals, config). Events are
// emitted already sorted by (interval, repairs-before-failures, edge id),
// and FailureState applies them in exactly that order — application between
// solves is order-deterministic by construction (tests verify step == jump).
#pragma once

#include <cstdint>
#include <vector>

#include "topo/graph.h"

namespace teal::scenario {

struct FailureEvent {
  int interval = 0;   // takes effect at the start of this interval
  bool fail = true;   // false = repair
  topo::EdgeId fwd = topo::kInvalidEdge;  // forward direction of the link
  topo::EdgeId rev = topo::kInvalidEdge;  // reverse direction (fails together)
};

struct RollingFailureConfig {
  std::uint64_t seed = 13;
  double hazard = 0.02;    // per-link per-interval failure probability, [0, 1]
  int repair_after = 5;    // intervals a failed link stays down, >= 1
  int max_concurrent = 3;  // cap on simultaneously failed links, >= 1

  void validate() const;  // throws std::invalid_argument on out-of-range values
};

// Builds the churn schedule for `g` over `n_intervals`. Physical links are
// the edge pairs (e, reverse(e)) with e.src < e.dst; a repair is always
// emitted when it lands within the horizon, so a schedule replayed to its
// end leaves only the still-down tail failed.
std::vector<FailureEvent> make_rolling_failures(const topo::Graph& g, int n_intervals,
                                                const RollingFailureConfig& cfg);

// Applies a schedule to a capacity vector between solves. capacities_at(t)
// returns the vector with every event of interval <= t applied; calling with
// decreasing t replays from scratch (the schedule is cheap), so the state is
// usable for both forward sweeps and random access. Capacities are
// snapshotted at construction: repairs restore the construction-time value
// even when the caller writes epoch capacities (zeros included) back into
// the live graph between queries, as run_scenario does.
class FailureState {
 public:
  FailureState(const topo::Graph& g, std::vector<FailureEvent> events);

  const std::vector<double>& capacities_at(int t);
  int failed_links() const { return failed_; }

 private:
  void reset();

  std::vector<FailureEvent> events_;
  std::vector<double> orig_;  // capacities at construction time
  std::vector<double> caps_;
  std::size_t next_ = 0;
  int cursor_ = -1;  // last interval applied
  int failed_ = 0;
};

// Distinct event intervals of a schedule, ascending — the epoch boundaries a
// served replay must re-apply capacities at.
std::vector<int> failure_epoch_starts(const std::vector<FailureEvent>& events);

}  // namespace teal::scenario
