#include "scenario/traffic_model.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "util/rng.h"

namespace teal::scenario {

namespace {

constexpr std::uint64_t kTagMasses = 11;
constexpr std::uint64_t kTagShiftSet = 12;
constexpr std::uint64_t kTagNoise = 13;

constexpr double kPi = 3.141592653589793238462643383279502884;

}  // namespace

void GravityTrafficConfig::validate() const {
  if (n_intervals < 1) {
    throw std::invalid_argument("GravityTrafficConfig: n_intervals must be >= 1");
  }
  if (!(mean_volume > 0.0)) {
    throw std::invalid_argument("GravityTrafficConfig: mean_volume must be > 0");
  }
  if (!(mass_sigma >= 0.0)) {
    throw std::invalid_argument("GravityTrafficConfig: mass_sigma must be >= 0");
  }
  if (!(noise_sigma >= 0.0)) {
    throw std::invalid_argument("GravityTrafficConfig: noise_sigma must be >= 0");
  }
  if (!(diurnal_amplitude >= 0.0 && diurnal_amplitude < 1.0)) {
    throw std::invalid_argument(
        "GravityTrafficConfig: diurnal_amplitude must be in [0, 1)");
  }
  if (diurnal_period < 2) {
    throw std::invalid_argument("GravityTrafficConfig: diurnal_period must be >= 2");
  }
  if (flash.active()) {
    if (!(flash.magnitude >= 0.0)) {
      throw std::invalid_argument("FlashCrowd: magnitude must be >= 0");
    }
    if (!(flash.hot_fraction > 0.0 && flash.hot_fraction <= 1.0)) {
      throw std::invalid_argument("FlashCrowd: hot_fraction must be in (0, 1]");
    }
  }
  if (shift.active()) {
    if (!(shift.factor > 0.0)) {
      throw std::invalid_argument("DemandShift: factor must be > 0");
    }
    if (!(shift.shifted_fraction >= 0.0 && shift.shifted_fraction <= 1.0)) {
      throw std::invalid_argument("DemandShift: shifted_fraction must be in [0, 1]");
    }
  }
}

std::vector<double> gravity_node_masses(int n_nodes, const GravityTrafficConfig& cfg) {
  std::vector<double> mass(static_cast<std::size_t>(std::max(0, n_nodes)));
  util::CounterRng rng(util::Rng::mix_seed(cfg.seed, kTagMasses));
  for (auto& m : mass) m = std::exp(cfg.mass_sigma * rng.normal());
  return mass;
}

std::vector<double> gravity_base_volumes(const te::Problem& pb,
                                         const GravityTrafficConfig& cfg) {
  const auto mass = gravity_node_masses(pb.graph().num_nodes(), cfg);
  double mean_mass = 0.0;
  for (double m : mass) mean_mass += m;
  mean_mass /= std::max<std::size_t>(1, mass.size());

  const auto nd = static_cast<std::size_t>(pb.num_demands());
  std::vector<double> base(nd);
  for (std::size_t d = 0; d < nd; ++d) {
    const auto& dem = pb.demand(static_cast<int>(d));
    base[d] = cfg.mean_volume * mass[static_cast<std::size_t>(dem.src)] *
              mass[static_cast<std::size_t>(dem.dst)] / (mean_mass * mean_mass);
  }
  return base;
}

std::vector<std::size_t> flash_hot_demands(const te::Problem& pb,
                                           const GravityTrafficConfig& cfg) {
  if (!cfg.flash.active()) return {};
  const auto base = gravity_base_volumes(pb, cfg);
  std::vector<std::size_t> order(base.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (base[a] != base[b]) return base[a] > base[b];
    return a < b;
  });
  const auto k = static_cast<std::size_t>(std::min<double>(
      static_cast<double>(base.size()),
      std::ceil(cfg.flash.hot_fraction * static_cast<double>(base.size()))));
  order.resize(k);
  std::sort(order.begin(), order.end());
  return order;
}

std::vector<std::size_t> shift_demand_set(const te::Problem& pb,
                                          const GravityTrafficConfig& cfg) {
  if (!cfg.shift.active()) return {};
  std::vector<std::size_t> out;
  const auto nd = static_cast<std::size_t>(pb.num_demands());
  const std::uint64_t key = util::Rng::mix_seed(cfg.seed, kTagShiftSet);
  for (std::size_t d = 0; d < nd; ++d) {
    util::CounterRng rng(util::Rng::mix_seed(key, d));
    if (rng.uniform() < cfg.shift.shifted_fraction) out.push_back(d);
  }
  return out;
}

traffic::Trace generate_gravity_trace(const te::Problem& pb,
                                      const GravityTrafficConfig& cfg) {
  cfg.validate();
  const auto nd = static_cast<std::size_t>(pb.num_demands());
  const auto base = gravity_base_volumes(pb, cfg);

  // Per-demand multiplier masks for the two localized modulators.
  std::vector<char> hot(nd, 0), shifted(nd, 0);
  for (std::size_t d : flash_hot_demands(pb, cfg)) hot[d] = 1;
  for (std::size_t d : shift_demand_set(pb, cfg)) shifted[d] = 1;
  const double flash_mult = 1.0 + cfg.flash.magnitude;
  const std::uint64_t noise_key = util::Rng::mix_seed(cfg.seed, kTagNoise);

  traffic::Trace trace;
  trace.matrices.resize(static_cast<std::size_t>(cfg.n_intervals));
  for (int t = 0; t < cfg.n_intervals; ++t) {
    // Computed from t mod P so intervals one period apart share the exact
    // same double — the trace is bitwise periodic when noise is off.
    const int phase = t % cfg.diurnal_period;
    const double diurnal =
        1.0 + cfg.diurnal_amplitude *
                  std::sin(2.0 * kPi * static_cast<double>(phase) /
                           static_cast<double>(cfg.diurnal_period));
    const bool in_flash = cfg.flash.active() && t >= cfg.flash.t_start &&
                          t < cfg.flash.t_start + cfg.flash.duration;
    const bool in_shift = cfg.shift.active() && t >= cfg.shift.t_start;

    auto& tm = trace.matrices[static_cast<std::size_t>(t)];
    tm.volume.resize(nd);
    for (std::size_t d = 0; d < nd; ++d) {
      double v = base[d] * diurnal;
      if (in_flash && hot[d]) v *= flash_mult;
      if (in_shift && shifted[d]) v *= cfg.shift.factor;
      if (cfg.noise_sigma > 0.0) {
        util::CounterRng rng(util::Rng::mix_seed(
            noise_key, static_cast<std::uint64_t>(t) * nd + d));
        v *= std::exp(cfg.noise_sigma * rng.normal());
      }
      tm.volume[d] = v;
    }
  }
  return trace;
}

}  // namespace teal::scenario
