// traffic_model.h — composable adversarial traffic (scenario factory, part b).
//
// traffic::generate_trace reproduces the *paper's* trace statistics (88.4%
// top-10% share, AR(1) jitter) and is deliberately organic. This generator
// is the complementary adversarial one: a gravity-model baseline with
// explicitly composable multiplicative modulators —
//
//   volume(t, d) = base(d) · diurnal(t) · flash(t, d) · shift(t, d) · noise(t, d)
//
//   * base      — gravity product of lognormal node masses (exposed via
//                 gravity_node_masses so tests can verify the marginals
//                 exactly),
//   * diurnal   — 1 + A·sin(2π·(t mod P)/P): computed from t mod P, so the
//                 trace is bitwise periodic when noise is off,
//   * flash     — a flash crowd: the top hot_fraction of demands by base
//                 volume scale by (1 + magnitude) inside [t_start,
//                 t_start + duration) and are untouched outside it,
//   * shift     — a sustained demand shift: a seed-keyed subset of demands
//                 scales by `factor` from t_start onward,
//   * noise     — optional lognormal jitter keyed per (t, d).
//
// Every factor is strictly positive, so demands are nonnegative by
// construction. All draws are util::CounterRng streams keyed by (seed,
// purpose, item): the trace is a pure function of (Problem, config) —
// byte-identical regeneration, order- and thread-independent.
#pragma once

#include <cstdint>
#include <vector>

#include "te/problem.h"
#include "traffic/traffic.h"

namespace teal::scenario {

struct FlashCrowd {
  int t_start = -1;           // first spiked interval (< 0 = off)
  int duration = 0;           // spiked intervals (spike covers [t_start, t_start+duration))
  double magnitude = 0.0;     // hot demands scale by (1 + magnitude); >= 0
  double hot_fraction = 0.05; // fraction of demands spiked (top by base volume)

  bool active() const { return t_start >= 0 && duration > 0 && magnitude > 0.0; }
};

struct DemandShift {
  int t_start = -1;               // first shifted interval (< 0 = off)
  double factor = 1.0;            // shifted demands scale by this; > 0
  double shifted_fraction = 0.3;  // seed-keyed fraction of demands shifted

  bool active() const { return t_start >= 0 && factor != 1.0; }
};

struct GravityTrafficConfig {
  std::uint64_t seed = 7;
  int n_intervals = 64;
  double mean_volume = 10.0;  // mean of the gravity base volumes
  double mass_sigma = 1.0;    // lognormal node-mass spread (0 = uniform masses)
  double noise_sigma = 0.0;   // per-(t,d) lognormal jitter (0 = none)
  double diurnal_amplitude = 0.0;  // in [0, 1)
  int diurnal_period = 288;        // intervals per cycle (5-min intervals/day)
  FlashCrowd flash;
  DemandShift shift;

  // Throws std::invalid_argument on out-of-range values (amplitude outside
  // [0, 1), nonpositive volumes/periods, bad fractions, ...).
  void validate() const;
};

// The lognormal node masses the gravity base uses (pure function of seed).
std::vector<double> gravity_node_masses(int n_nodes, const GravityTrafficConfig& cfg);

// Gravity base volume per demand: mean_volume * mass[src] * mass[dst],
// normalized by the squared mean mass so the configured mean is the actual
// scale. Exact — tests compare trace entries against these products.
std::vector<double> gravity_base_volumes(const te::Problem& pb,
                                         const GravityTrafficConfig& cfg);

// Indices of the flash crowd's hot demands: top ceil(hot_fraction * n) by
// base volume, ties broken by index (deterministic).
std::vector<std::size_t> flash_hot_demands(const te::Problem& pb,
                                           const GravityTrafficConfig& cfg);

// Seed-keyed shifted-demand subset of the sustained shift.
std::vector<std::size_t> shift_demand_set(const te::Problem& pb,
                                          const GravityTrafficConfig& cfg);

// Generates the composed trace (validates cfg first).
traffic::Trace generate_gravity_trace(const te::Problem& pb,
                                      const GravityTrafficConfig& cfg);

}  // namespace teal::scenario
