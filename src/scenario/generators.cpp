#include "scenario/generators.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <numeric>
#include <set>
#include <stdexcept>
#include <utility>
#include <vector>

namespace teal::scenario {

namespace {

// Purpose tags for the keyed CounterRng streams (util::Rng::mix_seed). Fixed
// constants: renumbering them changes every generated graph.
constexpr std::uint64_t kTagPositions = 1;
constexpr std::uint64_t kTagCapacity = 2;
constexpr std::uint64_t kTagWaxmanPairs = 3;
constexpr std::uint64_t kTagAttachment = 4;
constexpr std::uint64_t kTagLatency = 5;

// Latency scale for Waxman's Euclidean lengths: the bundled fiber maps carry
// latencies in single-digit milliseconds-as-units, so a unit rectangle
// diagonal maps to ~10.
constexpr double kWaxmanLatencyScale = 10.0;

}  // namespace

void CapacityDist::validate() const {
  if (!(lo > 0.0)) throw std::invalid_argument("CapacityDist: lo must be > 0");
  if (!(hi >= lo)) throw std::invalid_argument("CapacityDist: hi must be >= lo");
  if (!(sigma >= 0.0)) throw std::invalid_argument("CapacityDist: sigma must be >= 0");
  if (!(hi_fraction >= 0.0 && hi_fraction <= 1.0)) {
    throw std::invalid_argument("CapacityDist: hi_fraction must be in [0, 1]");
  }
}

double CapacityDist::sample(util::CounterRng& rng) const {
  switch (kind) {
    case Kind::kUniform:
      return lo + rng.uniform() * (hi - lo);
    case Kind::kLognormal: {
      const double median = std::sqrt(lo * hi);
      return std::clamp(median * std::exp(sigma * rng.normal()), lo, hi);
    }
    case Kind::kBimodal:
      return rng.uniform() < hi_fraction ? hi : lo;
  }
  throw std::logic_error("CapacityDist: unknown kind");
}

topo::Graph make_waxman(const WaxmanConfig& cfg) {
  if (cfg.n_nodes < 2) throw std::invalid_argument("make_waxman: n_nodes must be >= 2");
  const int n_links = cfg.n_links > 0 ? cfg.n_links : 2 * cfg.n_nodes;
  if (n_links < cfg.n_nodes - 1) {
    throw std::invalid_argument(
        "make_waxman: n_links must be >= n_nodes - 1 (connectivity backbone)");
  }
  if (!(cfg.alpha > 0.0 && cfg.alpha <= 1.0)) {
    throw std::invalid_argument("make_waxman: alpha must be in (0, 1]");
  }
  if (!(cfg.beta > 0.0 && cfg.beta <= 1.0)) {
    throw std::invalid_argument("make_waxman: beta must be in (0, 1]");
  }
  if (!(cfg.aspect >= 1.0)) {
    throw std::invalid_argument("make_waxman: aspect must be >= 1");
  }
  cfg.capacity.validate();

  const auto n = static_cast<std::size_t>(cfg.n_nodes);
  std::vector<double> px(n), py(n);
  {
    util::CounterRng pos(util::Rng::mix_seed(cfg.seed, kTagPositions));
    for (std::size_t i = 0; i < n; ++i) {
      px[i] = pos.uniform() * cfg.aspect;
      py[i] = pos.uniform();
    }
  }
  const double diag = std::hypot(cfg.aspect, 1.0);

  topo::Graph g("Waxman-" + std::to_string(cfg.n_nodes));
  g.add_nodes(cfg.n_nodes);
  util::CounterRng cap(util::Rng::mix_seed(cfg.seed, kTagCapacity));

  const auto dist = [&](std::size_t a, std::size_t b) {
    return std::hypot(px[a] - px[b], py[a] - py[b]);
  };
  std::set<std::pair<topo::NodeId, topo::NodeId>> links;
  const auto add = [&](std::size_t a, std::size_t b) {
    const auto lo_id = static_cast<topo::NodeId>(std::min(a, b));
    const auto hi_id = static_cast<topo::NodeId>(std::max(a, b));
    if (!links.insert({lo_id, hi_id}).second) return false;
    g.add_link(lo_id, hi_id, cfg.capacity.sample(cap),
               kWaxmanLatencyScale * std::max(1e-3, dist(a, b)));
    return true;
  };

  // Connectivity backbone: chain the nodes in coordinate order. Consecutive
  // nodes in that order are spatially close, so the backbone respects the
  // locality the Waxman links also have — and it is O(n log n), unlike the
  // bundled fiber generator's all-pairs MST.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (px[a] != px[b]) return px[a] < px[b];
    if (py[a] != py[b]) return py[a] < py[b];
    return a < b;
  });
  for (std::size_t i = 0; i + 1 < n; ++i) add(order[i], order[i + 1]);

  // Waxman acceptance sampling until the target link count is reached. The
  // attempt cap turns an infeasible density (alpha/beta too small, or
  // n_links close to all pairs) into a loud error instead of a hang.
  util::CounterRng pairs(util::Rng::mix_seed(cfg.seed, kTagWaxmanPairs));
  int have = static_cast<int>(links.size());
  const std::int64_t max_attempts =
      1000ll * std::max<std::int64_t>(1, n_links - have) + 1000000ll;
  std::int64_t attempts = 0;
  while (have < n_links) {
    if (++attempts > max_attempts) {
      throw std::runtime_error(
          "make_waxman: could not place " + std::to_string(n_links) +
          " links after " + std::to_string(attempts - 1) +
          " attempts (alpha/beta too small or graph too dense); have " +
          std::to_string(have));
    }
    const auto a = static_cast<std::size_t>(pairs.next_u64() % n);
    const auto b = static_cast<std::size_t>(pairs.next_u64() % n);
    if (a == b) continue;
    const double p = cfg.alpha * std::exp(-dist(a, b) / (cfg.beta * diag));
    if (pairs.uniform() >= p) continue;
    if (add(a, b)) ++have;
  }
  return g;
}

int power_law_links(const PowerLawConfig& cfg) {
  const int m0 = cfg.m + 1;
  return m0 * (m0 - 1) / 2 + (cfg.n_nodes - m0) * cfg.m;
}

topo::Graph make_power_law(const PowerLawConfig& cfg) {
  if (cfg.m < 1) throw std::invalid_argument("make_power_law: m must be >= 1");
  if (cfg.n_nodes < cfg.m + 2) {
    throw std::invalid_argument("make_power_law: n_nodes must be >= m + 2");
  }
  if (!(cfg.latency_lo > 0.0 && cfg.latency_hi >= cfg.latency_lo)) {
    throw std::invalid_argument("make_power_law: need 0 < latency_lo <= latency_hi");
  }
  cfg.capacity.validate();

  topo::Graph g("PowerLaw-" + std::to_string(cfg.n_nodes));
  g.add_nodes(cfg.n_nodes);
  util::CounterRng cap(util::Rng::mix_seed(cfg.seed, kTagCapacity));
  util::CounterRng lat(util::Rng::mix_seed(cfg.seed, kTagLatency));
  util::CounterRng attach(util::Rng::mix_seed(cfg.seed, kTagAttachment));

  // Every link pushes both endpoints; sampling a uniform slot is then
  // degree-proportional attachment (the standard BA trick).
  std::vector<topo::NodeId> endpoints;
  const auto link = [&](topo::NodeId a, topo::NodeId b) {
    g.add_link(a, b, cfg.capacity.sample(cap),
               cfg.latency_lo + lat.uniform() * (cfg.latency_hi - cfg.latency_lo));
    endpoints.push_back(a);
    endpoints.push_back(b);
  };

  // Seed clique on m + 1 nodes: every new node can find m distinct targets.
  const int m0 = cfg.m + 1;
  for (topo::NodeId a = 0; a < m0; ++a) {
    for (topo::NodeId b = a + 1; b < m0; ++b) link(a, b);
  }

  std::vector<topo::NodeId> targets;
  targets.reserve(static_cast<std::size_t>(cfg.m));
  for (topo::NodeId v = m0; v < cfg.n_nodes; ++v) {
    targets.clear();
    // Rejection-sample distinct targets; the deterministic fallback scan
    // guarantees termination even in degenerate degree configurations.
    int guard = 0;
    while (static_cast<int>(targets.size()) < cfg.m) {
      topo::NodeId t =
          endpoints[static_cast<std::size_t>(attach.next_u64() % endpoints.size())];
      if (++guard > 64 * cfg.m) {
        for (topo::NodeId u = 0; u < v && static_cast<int>(targets.size()) < cfg.m; ++u) {
          if (std::find(targets.begin(), targets.end(), u) == targets.end()) {
            targets.push_back(u);
          }
        }
        break;
      }
      if (t == v || std::find(targets.begin(), targets.end(), t) != targets.end()) {
        continue;
      }
      targets.push_back(t);
    }
    for (topo::NodeId t : targets) link(v, t);
  }
  return g;
}

bool graphs_bit_identical(const topo::Graph& a, const topo::Graph& b) {
  if (a.num_nodes() != b.num_nodes() || a.num_edges() != b.num_edges()) return false;
  const auto& ea = a.edges();
  const auto& eb = b.edges();
  for (std::size_t i = 0; i < ea.size(); ++i) {
    if (ea[i].src != eb[i].src || ea[i].dst != eb[i].dst) return false;
    if (std::memcmp(&ea[i].capacity, &eb[i].capacity, sizeof(double)) != 0) return false;
    if (std::memcmp(&ea[i].latency, &eb[i].latency, sizeof(double)) != 0) return false;
  }
  return true;
}

}  // namespace teal::scenario
