// scenario.h — the scenario driver (scenario factory, part d).
//
// Composes a generated topology (generators.h), a gravity-model traffic
// trace with adversarial modulators (traffic_model.h) and an optional
// rolling failure schedule (failures.h) into one named, fully deterministic
// Scenario, then replays it through the serving layer (sim::run_served) —
// the robustness axis (fig 8–10) exercised under serving load instead of
// offline. bench_scenario_matrix sweeps scheme × scenario × scale into the
// EXPERIMENTS.md "Scenario matrix ledger".
//
// Generated topologies have no trained model; make_cold_scheme builds the
// *untrained* Teal pipeline (deterministic seed init — the serving, sharding
// and replica contracts are training-independent, the same convention the
// test suites use) or an LP baseline by name. The bit-identity contracts
// extend unchanged to generated inputs: a scenario replay is byte-identical
// across replica counts and shard counts, and across failure-epoch replays
// (tests/scenario_test.cpp).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "scenario/failures.h"
#include "scenario/generators.h"
#include "scenario/traffic_model.h"
#include "serve/replica.h"
#include "sim/served.h"
#include "te/problem.h"
#include "te/scheme.h"
#include "traffic/traffic.h"

namespace teal::scenario {

enum class TopoKind { kWaxman, kPowerLaw };

struct ScenarioSpec {
  std::string name = "scenario";
  TopoKind topo_kind = TopoKind::kPowerLaw;
  int n_nodes = 200;
  int waxman_links = 0;  // kWaxman: bidirectional links (0 = 2 * n_nodes)
  int powerlaw_m = 2;    // kPowerLaw: attachment links per node
  CapacityDist capacity;
  int n_demands = 200;               // gravity-weighted demand sample cap
  GravityTrafficConfig traffic;      // seed is derived from `seed` if 0
  std::optional<RollingFailureConfig> failures;
  // Post-generation capacity calibration (traffic::calibrate_capacities):
  // scales capacities so shortest-path routing of the mean matrix loads the
  // busiest link to this utilization (> 1 = congested regime). 0 = off.
  double calibrate_util = 1.5;
  std::uint64_t seed = 1;
};

// A built scenario: the problem (generated graph + sampled demands + path
// sets), the composed trace, and the failure schedule (empty when off).
// Building is a pure function of the spec — byte-identical regeneration.
struct Scenario {
  std::string name;
  te::Problem pb;
  traffic::Trace trace;
  std::vector<FailureEvent> failures;
};

Scenario build_scenario(const ScenarioSpec& spec);

// Named presets at a given node scale: "baseline" (gravity + diurnal-free
// steady load), "diurnal", "flash-crowd", "shift", "rolling-failure".
// Throws std::invalid_argument for unknown names.
ScenarioSpec named_scenario(const std::string& name, int n_nodes,
                            std::uint64_t seed = 1);
std::vector<std::string> scenario_names();

// Cold schemes for generated topologies: "Teal" (untrained pipeline over
// `pb`), "LP-all", "LP-top". Throws std::invalid_argument for unknown names.
std::unique_ptr<te::Scheme> make_cold_scheme(const std::string& scheme,
                                             const te::Problem& pb,
                                             std::uint64_t seed = 42);

// Replica factory for the non-warm cold schemes (serve::make_replicas
// contract); returns nullptr for "Teal", which serves via shared-workspace
// replicas and needs no factory.
serve::SchemeFactory cold_scheme_factory(const std::string& scheme,
                                         const te::Problem& pb,
                                         std::uint64_t seed = 42);

struct ScenarioRunResult {
  // Index-aligned with the scenario trace, concatenated over failure epochs
  // (same contract as sim::ServedResult).
  std::vector<te::Allocation> allocs;
  std::vector<char> accepted;
  // Satisfied demand per interval under the capacities active at that
  // interval (0 for shed intervals), and its mean over accepted intervals.
  std::vector<double> satisfied_pct;
  double mean_satisfied_pct = 0.0;
  // Serving counters summed over epochs; histograms merged.
  serve::ServeStats stats;
  int n_epochs = 1;
};

// Replays the scenario through sim::run_served, re-applying the failure
// schedule's capacities between epochs (solves never see a capacity change
// mid-flight). The scenario's graph capacities are restored before
// returning, even on error. `factory` follows the run_served contract.
ScenarioRunResult run_scenario(te::Scheme& scheme, Scenario& sc,
                               const sim::ServedConfig& cfg,
                               const serve::SchemeFactory& factory = nullptr);

// Multi-tenant counterpart: each scenario becomes one fleet tenant (scheme
// built via make_cold_scheme), replicas split by `policy`. Failure schedules
// are not supported here (the merged arrival clock has no epoch boundary);
// throws if any scenario carries one.
struct FleetScenarioResult {
  sim::ServedFleetResult served;                   // per-tenant allocs/stats
  std::vector<double> mean_satisfied_pct;          // per tenant
};
FleetScenarioResult run_scenario_fleet(std::vector<Scenario>& scenarios,
                                       const std::string& scheme_name,
                                       const sim::ServedFleetConfig& cfg);

}  // namespace teal::scenario
