// session.h — one object per standing TCP connection.
//
// A Session owns everything a single client connection needs: the socket,
// the incremental FrameDecoder, the outgoing byte queue (outbox), and the
// per-connection accounting. It implements the server side of the protocol
// state machine — ping answered with pong, solve requests parsed and handed
// to the submit hook (which routes the tenant and validates the demand count
// against that tenant's Problem), anything else answered with an error
// frame — while staying transport-driven: the I/O thread calls
// on_readable()/flush() when poll() says so, and replica threads deliver
// completed solves through queue_response().
//
// Threading: the socket, decoder and inbound statistics belong to the I/O
// thread alone. The outbox (and the outbound statistics counted when frames
// enter it) is the one structure shared with replica threads, guarded by the
// session's own mutex — lock order is always Server registry lock → session
// outbox lock, never the reverse, so completions can look a session up and
// append without deadlocking against a concurrent flush.
//
// Shedding happens *here*, at the socket: when the backend refuses a request
// (deadline admission or queue bound — the serve::Server behaviour), the
// client gets an explicit kShed frame naming the reason instead of a
// silently missing response. DESIGN.md "Network layer" contrasts the two
// shed points.
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "net/wire.h"
#include "te/problem.h"
#include "util/socket.h"

namespace teal::net {

// Default slow-reader bound: a client that outruns its own reads gets
// disconnected once this many bytes sit undelivered in its outbox, rather
// than letting one slow connection grow an unbounded response backlog in
// server memory. Tests shrink it (NetServerConfig::max_outbox_bytes) to
// exercise the disconnect without buffering 64 MiB.
inline constexpr std::size_t kDefaultMaxOutboxBytes = std::size_t{64} << 20;

struct SessionStats {
  std::uint64_t frames_in = 0;
  std::uint64_t frames_out = 0;
  std::uint64_t requests = 0;         // validated solve requests submitted
  std::uint64_t responses = 0;        // solve responses queued to the wire
  std::uint64_t shed = 0;             // shed frames queued
  std::uint64_t pings = 0;
  std::uint64_t protocol_errors = 0;  // malformed frames / streams
  std::uint64_t bad_requests = 0;     // well-formed but wrong demand count
  std::uint64_t unknown_tenants = 0;  // well-formed, no such tenant

  void accumulate(const SessionStats& other);
};

// What the backend did with a routed solve request. The session turns each
// refusal shape into the right frame: kShed carries the ShedReason, the two
// validation outcomes carry typed error frames, and all of them leave the
// connection usable (only malformed streams close it).
enum class SubmitOutcome : std::uint8_t {
  kAccepted,        // queued; response arrives later via queue_response
  kShed,            // backend refused (reason names why)
  kUnknownTenant,   // no tenant by that name in the fleet
  kBadDemandCount,  // demand count does not match the tenant's problem
};

class Session {
 public:
  // Backend hook: route `tenant` ("" = default) and enqueue a validated
  // solve. On kShed the hook sets `reason`; on kBadDemandCount it sets
  // `expected_demands` (the tenant's demand count, for the error message).
  // The callee owns routing the completion back to this session by id — the
  // session itself is tenant-agnostic, which is what keeps multi-tenant
  // routing out of the protocol state machine. Demand-count validation lives
  // behind the hook too (not here): only the routed tenant's Problem knows
  // the right count.
  using SubmitFn = std::function<SubmitOutcome(
      Session& session, std::uint32_t request_id, const std::string& tenant,
      te::TrafficMatrix&& tm, ShedReason& reason, int& expected_demands)>;

  // `max_outbox` bounds undelivered response bytes (0 = the default cap).
  Session(std::uint64_t id, util::Socket sock, std::size_t max_payload,
          std::size_t max_outbox = kDefaultMaxOutboxBytes);

  std::uint64_t id() const { return id_; }
  int fd() const { return sock_.fd(); }

  // I/O thread: drain the readable socket and react to every complete frame.
  // Returns false when the connection is finished (peer closed or hard
  // error); a protocol violation instead queues an error frame and arranges
  // close-after-flush so the client learns why it is being dropped.
  bool on_readable(const SubmitFn& submit);

  // Any thread: append reply frames to the outbox (self-locking).
  void queue_response(std::uint32_t request_id, const te::Allocation& alloc,
                      double solve_seconds);
  void queue_shed(std::uint32_t request_id, ShedReason reason);
  void queue_error(std::uint32_t request_id, ErrorCode code, const std::string& message);

  // I/O thread: write as much outbox as the non-blocking socket accepts.
  // Returns false when the peer is gone.
  bool flush();

  bool wants_write() const;
  // True once the session should be retired: either it queued its goodbye
  // (protocol error) and the outbox fully drained, or the outbox overflowed
  // the slow-reader cap — then the close is immediate, because waiting for a
  // peer that is not reading to drain the outbox would wait forever.
  bool done() const;

  SessionStats stats() const;

 private:
  void handle_frame(Frame&& f, const SubmitFn& submit);
  void append_locked(const std::vector<std::uint8_t>& bytes);
  bool closing() const;

  const std::uint64_t id_;
  util::Socket sock_;
  FrameDecoder decoder_;
  const std::size_t max_outbox_;

  mutable std::mutex out_mu_;           // guards outbox_/out-side stats
  std::vector<std::uint8_t> outbox_;
  std::size_t outbox_pos_ = 0;
  bool close_after_flush_ = false;
  // Outbox overflowed the slow-reader cap: done() without waiting for a
  // drain the non-reading peer would never provide. Implies
  // close_after_flush_.
  bool hard_close_ = false;

  SessionStats stats_;  // in-side fields I/O-thread-only; out-side under out_mu_
};

}  // namespace teal::net
