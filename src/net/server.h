// server.h — the TCP front door of the serving layer.
//
// net::Server turns a serving backend into a network service: it accepts
// standing TCP connections, runs one Session per connection, and plumbs
// validated solve requests into the backend's queue. The backend is either a
// single serve::Server (one tenant, the PR 7 shape — the legacy constructor)
// or a serve::Fleet, where each request's tenant field routes it to that
// tenant's server and problem. The division of labour:
//
//   client ── TCP ──► Session (wire.h decode)
//                        │ submit(tenant, tm)      ▲ outbox
//                        ▼                         │
//                  route tenant ──► serve queue ──► replica solves ──► completion
//                        │ refuse /                (callback re-routes the
//                        ▼ unknown tenant           response to the session
//                  kShed / kError frame             by id, or drops it if
//                  back on the socket               the client is gone)
//
// Threading: ONE I/O thread owns the listener, every socket read, and every
// socket write (a poll() loop — sessions are level-triggered on POLLIN and
// on POLLOUT while their outbox is non-empty). Replica threads never touch a
// socket: a completed solve is encoded into the session's outbox and the I/O
// thread is woken through a self-pipe. This keeps replicas immune to slow
// clients — a stalled connection fills its own outbox (and is eventually
// dropped), never a replica thread's time.
//
// Lifetime: an in-flight request owns its buffers (a shared_ptr slot
// captured by the completion callback), so a client that disconnects
// mid-request costs nothing but a dropped response — the replica finishes
// into memory the slot keeps alive, the completion finds the session gone,
// and the server keeps serving (tests/net_serve_test.cpp pins this).
// Callbacks hold a weak_ptr to the server's shared core, so they also
// outlive the net::Server itself being destroyed while the backend drains.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "net/session.h"
#include "net/wire.h"
#include "serve/fleet.h"
#include "serve/server.h"
#include "te/problem.h"

namespace teal::net {

struct NetServerConfig {
  std::string host = "127.0.0.1";
  // 0 = kernel-chosen ephemeral port (read it back via port()) — the
  // hermetic mode every test uses, so parallel ctest runs never collide.
  std::uint16_t port = 0;
  std::size_t max_payload = kDefaultMaxPayload;
  std::size_t max_connections = 1024;
  // Slow-reader bound: a session whose undelivered outbox exceeds this is
  // hard-closed immediately (0 = default cap). Tests shrink it to exercise
  // the disconnect cheaply.
  std::size_t max_outbox_bytes = kDefaultMaxOutboxBytes;
};

// Aggregated over every session, live and closed, plus server-level events.
struct NetStats {
  std::uint64_t connections_accepted = 0;
  std::uint64_t connections_closed = 0;
  // Responses that completed after their client disconnected (dropped, not
  // written — the "no replica leaked" accounting of abrupt disconnects).
  std::uint64_t dropped_responses = 0;
  SessionStats sessions;
};

class Server {
 public:
  // Single-tenant form: binds and starts the I/O thread immediately.
  // `backend` and `pb` must outlive the server; `pb` must be the same
  // problem the backend's replicas solve (its demand count validates every
  // request). Only the default tenant ("") routes here — a named tenant in a
  // request gets kUnknownTenant. Throws std::system_error when the address
  // cannot be bound.
  Server(serve::Server& backend, const te::Problem& pb, NetServerConfig cfg = {});
  // Fleet form: requests route by their tenant field through fleet.route()
  // ("" = the fleet's default tenant). The fleet must be started before the
  // first request arrives and must outlive the server.
  Server(serve::Fleet& fleet, NetServerConfig cfg = {});
  ~Server();  // stop()

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // The bound port (the ephemeral one when cfg.port was 0).
  std::uint16_t port() const { return port_; }

  // Closes the listener and every session, then joins the I/O thread.
  // Idempotent. Requests already handed to the backend still complete there;
  // their responses are dropped (counted in NetStats::dropped_responses).
  void stop();

  NetStats stats() const;

 private:
  struct Core;  // shared with in-flight completion callbacks (weakly)

  // Tenant resolution: the fleet's route() in fleet mode, the fixed
  // backend/problem pair (default tenant only) in single-tenant mode.
  struct Route {
    serve::Server* server = nullptr;
    const te::Problem* pb = nullptr;
  };
  Route resolve(const std::string& tenant);

  void io_loop();
  SubmitOutcome submit_solve(Session& session, std::uint32_t request_id,
                             const std::string& tenant, te::TrafficMatrix&& tm,
                             ShedReason& reason, int& expected_demands);

  // Exactly one of {fleet_, backend_} is set; pb_ pairs with backend_.
  serve::Fleet* fleet_ = nullptr;
  serve::Server* backend_ = nullptr;
  const te::Problem* pb_ = nullptr;
  NetServerConfig cfg_;
  util::Socket listener_;
  std::uint16_t port_ = 0;
  std::shared_ptr<Core> core_;
  std::mutex stop_mu_;  // serializes stop() (destructor vs explicit callers)
  std::thread io_thread_;
};

}  // namespace teal::net
