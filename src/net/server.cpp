#include "net/server.h"

#include <poll.h>

#include <atomic>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "util/thread_name.h"

namespace teal::net {

// One in-flight solve. The completion callback owns this slot (shared_ptr),
// so the traffic matrix the replica reads and the allocation it writes stay
// alive however the client connection fares — serve::Server's "tm/out valid
// until completion" contract is carried by the slot, not by any session.
struct PendingSolve {
  te::TrafficMatrix tm;
  te::Allocation out;
  std::uint32_t request_id = 0;
  std::uint64_t session_id = 0;
};

// State shared between the I/O thread, replica-thread completions, and
// stats() readers. Held by shared_ptr so a completion that outlives the
// net::Server object (backend still draining) degrades into a counted drop
// instead of a use-after-free.
struct Server::Core {
  std::mutex mu;  // guards sessions map + totals (lock order: mu → session outbox)
  std::unordered_map<std::uint64_t, std::unique_ptr<Session>> sessions;
  NetStats totals;  // closed sessions + server-level counters
  util::WakePipe wake;
  std::atomic<bool> stopping{false};
  std::uint64_t next_session_id = 1;

  // Routes a completed solve to its session's outbox, or drops it when the
  // client already disconnected. Called from replica threads. A negative
  // solve_seconds is the serve layer's failure sentinel (every replica died
  // before this request could run — serve::Server::fail_request): the client
  // gets a typed error instead of an allocation that was never computed.
  void complete(const PendingSolve& slot, double solve_seconds) {
    bool delivered = false;
    {
      std::lock_guard lk(mu);
      auto it = sessions.find(slot.session_id);
      if (it != sessions.end()) {
        if (solve_seconds < 0.0) {
          it->second->queue_error(slot.request_id, ErrorCode::kInternal,
                                  "request failed: no replica available");
        } else {
          it->second->queue_response(slot.request_id, slot.out, solve_seconds);
        }
        delivered = true;
      } else {
        ++totals.dropped_responses;
      }
    }
    if (delivered) wake.wake();
  }

  // I/O thread: retire a session, folding its accounting into the totals.
  void close_session(std::uint64_t id) {
    std::lock_guard lk(mu);
    auto it = sessions.find(id);
    if (it == sessions.end()) return;
    totals.sessions.accumulate(it->second->stats());
    ++totals.connections_closed;
    sessions.erase(it);
  }
};

Server::Server(serve::Server& backend, const te::Problem& pb, NetServerConfig cfg)
    : backend_(&backend), pb_(&pb), cfg_(cfg), core_(std::make_shared<Core>()) {
  listener_ = util::listen_tcp(cfg_.host, cfg_.port, &port_);
  util::set_nonblocking(listener_, true);
  io_thread_ = std::thread([this] { io_loop(); });
}

Server::Server(serve::Fleet& fleet, NetServerConfig cfg)
    : fleet_(&fleet), cfg_(cfg), core_(std::make_shared<Core>()) {
  listener_ = util::listen_tcp(cfg_.host, cfg_.port, &port_);
  util::set_nonblocking(listener_, true);
  io_thread_ = std::thread([this] { io_loop(); });
}

Server::Route Server::resolve(const std::string& tenant) {
  if (fleet_ != nullptr) {
    const serve::Fleet::Route r = fleet_->route(tenant);
    return Route{r.server, r.pb};
  }
  // Single-tenant mode serves exactly one (default) tenant; any name is a
  // routing miss, not a silent fallthrough to the only backend — a client
  // that asked for "wan-eu" must not get "wan-us" allocations.
  if (!tenant.empty()) return {};
  return Route{backend_, pb_};
}

Server::~Server() { stop(); }

void Server::stop() {
  // Serialized like serve::Server::stop(): concurrent stoppers block until
  // the first finishes, so the join happens exactly once.
  std::lock_guard lk(stop_mu_);
  core_->stopping.store(true, std::memory_order_relaxed);
  core_->wake.wake();
  if (io_thread_.joinable()) io_thread_.join();
  listener_.close();
}

NetStats Server::stats() const {
  std::lock_guard lk(core_->mu);
  NetStats s = core_->totals;
  for (const auto& [id, sess] : core_->sessions) s.sessions.accumulate(sess->stats());
  return s;
}

SubmitOutcome Server::submit_solve(Session& session, std::uint32_t request_id,
                                   const std::string& tenant, te::TrafficMatrix&& tm,
                                   ShedReason& reason, int& expected_demands) {
  if (core_->stopping.load(std::memory_order_relaxed)) {
    reason = ShedReason::kStopping;
    return SubmitOutcome::kShed;
  }
  const Route route = resolve(tenant);
  if (route.server == nullptr) return SubmitOutcome::kUnknownTenant;
  if (static_cast<int>(tm.volume.size()) != route.pb->num_demands()) {
    expected_demands = route.pb->num_demands();
    return SubmitOutcome::kBadDemandCount;
  }
  auto slot = std::make_shared<PendingSolve>();
  slot->tm = std::move(tm);
  slot->request_id = request_id;
  slot->session_id = session.id();
  std::weak_ptr<Core> weak_core = core_;
  const serve::SubmitResult res = route.server->submit(
      slot->tm, slot->out, [weak_core, slot](double solve_seconds) {
        if (auto core = weak_core.lock()) core->complete(*slot, solve_seconds);
        // else: net server destroyed while the backend drained; the slot
        // kept the buffers alive, nothing to deliver to.
      });
  switch (res) {
    case serve::SubmitResult::kAccepted:
      return SubmitOutcome::kAccepted;
    case serve::SubmitResult::kShedAdmission:
      reason = ShedReason::kAdmission;
      return SubmitOutcome::kShed;
    case serve::SubmitResult::kShedQueueFull:
      reason = ShedReason::kQueueFull;
      return SubmitOutcome::kShed;
    case serve::SubmitResult::kShedStopping:
      // The backend stopped independently of this net server (its queue is
      // closed); clients see the true cause, not a guessed admission shed.
      reason = ShedReason::kStopping;
      return SubmitOutcome::kShed;
  }
  reason = ShedReason::kQueueFull;  // unreachable; keeps -Wreturn-type quiet
  return SubmitOutcome::kShed;
}

void Server::io_loop() {
  util::set_current_thread_name("teal-net", 0);
  Core& core = *core_;
  const Session::SubmitFn submit =
      [this](Session& s, std::uint32_t id, const std::string& tenant,
             te::TrafficMatrix&& tm, ShedReason& reason, int& expected_demands) {
        return submit_solve(s, id, tenant, std::move(tm), reason, expected_demands);
      };

  std::vector<pollfd> pfds;
  std::vector<Session*> polled;  // parallel to pfds[2..]
  std::vector<std::uint64_t> finished;
  while (!core.stopping.load(std::memory_order_relaxed)) {
    pfds.clear();
    polled.clear();
    pfds.push_back(pollfd{core.wake.read_fd(), POLLIN, 0});
    bool room;
    {
      std::lock_guard lk(core.mu);
      room = core.sessions.size() < cfg_.max_connections;
      pfds.push_back(pollfd{listener_.fd(), static_cast<short>(room ? POLLIN : 0), 0});
      for (auto& [id, sess] : core.sessions) {
        const short events =
            static_cast<short>(POLLIN | (sess->wants_write() ? POLLOUT : 0));
        pfds.push_back(pollfd{sess->fd(), events, 0});
        polled.push_back(sess.get());
      }
    }
    // Finite timeout so a wake lost to a race (wake() between drain and
    // poll) only delays work, never wedges the loop.
    ::poll(pfds.data(), static_cast<nfds_t>(pfds.size()), 100);
    core.wake.drain();
    if (core.stopping.load(std::memory_order_relaxed)) break;

    if (pfds[1].revents & POLLIN) {
      for (;;) {
        util::Socket conn = util::accept_tcp(listener_);
        if (!conn.valid()) break;
        std::lock_guard lk(core.mu);
        if (core.sessions.size() >= cfg_.max_connections) break;  // raced past cap
        const std::uint64_t id = core.next_session_id++;
        core.sessions.emplace(
            id, std::make_unique<Session>(id, std::move(conn), cfg_.max_payload,
                                          cfg_.max_outbox_bytes));
        ++core.totals.connections_accepted;
      }
    }

    finished.clear();
    for (std::size_t i = 0; i < polled.size(); ++i) {
      Session* sess = polled[i];
      const short re = pfds[i + 2].revents;
      bool alive = true;
      if (re & (POLLOUT | POLLERR | POLLHUP)) alive = sess->flush();
      // Read even on POLLHUP: the peer may have half-closed after sending
      // requests whose responses it still reads... and if not, read_some
      // reports the close and we drop the session.
      if (alive && (re & (POLLIN | POLLHUP | POLLERR))) alive = sess->on_readable(submit);
      if (alive && sess->wants_write()) alive = sess->flush();
      if (!alive || sess->done()) finished.push_back(sess->id());
    }
    for (std::uint64_t id : finished) core.close_session(id);
  }

  // Teardown: retire every remaining session (their in-flight solves finish
  // in the backend; completions find the map empty and count as drops).
  std::vector<std::uint64_t> ids;
  {
    std::lock_guard lk(core.mu);
    ids.reserve(core.sessions.size());
    for (const auto& [id, sess] : core.sessions) ids.push_back(id);
  }
  for (std::uint64_t id : ids) core.close_session(id);
}

}  // namespace teal::net
