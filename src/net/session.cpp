#include "net/session.h"

namespace teal::net {

void SessionStats::accumulate(const SessionStats& other) {
  frames_in += other.frames_in;
  frames_out += other.frames_out;
  requests += other.requests;
  responses += other.responses;
  shed += other.shed;
  pings += other.pings;
  protocol_errors += other.protocol_errors;
  bad_requests += other.bad_requests;
  unknown_tenants += other.unknown_tenants;
}

Session::Session(std::uint64_t id, util::Socket sock, std::size_t max_payload,
                 std::size_t max_outbox)
    : id_(id),
      sock_(std::move(sock)),
      decoder_(max_payload),
      max_outbox_(max_outbox == 0 ? kDefaultMaxOutboxBytes : max_outbox) {
  util::set_nonblocking(sock_, true);
}

bool Session::closing() const {
  std::lock_guard lk(out_mu_);
  return close_after_flush_;
}

bool Session::on_readable(const SubmitFn& submit) {
  std::uint8_t buf[32 * 1024];
  if (closing()) {
    // The goodbye is already queued and nothing further will be answered.
    // Drain and discard whatever the peer keeps sending — decoding nothing —
    // so a level-triggered POLLIN cannot spin the I/O loop while the error
    // frame flushes, and an EOF still retires the session.
    for (;;) {
      const int n = util::read_some(sock_, buf, sizeof(buf));
      if (n == 0) return false;
      if (n < 0) return true;
    }
  }
  for (;;) {
    const int n = util::read_some(sock_, buf, sizeof(buf));
    if (n == 0) return false;  // peer closed (or hard error): drop session
    if (n < 0) break;          // drained for now
    decoder_.feed(buf, static_cast<std::size_t>(n));
    Frame f;
    for (;;) {
      const DecodeStatus st = decoder_.next(f);
      if (st == DecodeStatus::kNeedMore) break;
      if (st == DecodeStatus::kMalformed) {
        // One protocol violation ends the connection (a length-prefixed
        // stream cannot resynchronize) — but the client is told why before
        // the close, which is what makes fuzzing the server debuggable.
        std::lock_guard lk(out_mu_);
        ++stats_.protocol_errors;
        if (!close_after_flush_) {
          std::vector<std::uint8_t> bytes;
          encode_error(bytes, 0, ErrorCode::kMalformed, decoder_.error());
          append_locked(bytes);
          close_after_flush_ = true;
        }
        return true;  // keep the session until the error frame flushed
      }
      handle_frame(std::move(f), submit);
      // A violation (malformed payload) or an overflowed outbox during the
      // frame just handled ends the connection: leave the rest of the
      // stream undecoded so nothing is answered after the goodbye.
      if (closing()) return true;
    }
  }
  return true;
}

void Session::handle_frame(Frame&& f, const SubmitFn& submit) {
  std::vector<std::uint8_t> bytes;
  switch (f.type) {
    case FrameType::kPing: {
      std::lock_guard lk(out_mu_);
      ++stats_.frames_in;
      ++stats_.pings;
      encode_pong(bytes, f.request_id);
      append_locked(bytes);
      return;
    }
    case FrameType::kSolveRequest: {
      te::TrafficMatrix tm;
      std::string tenant;
      if (!parse_solve_request(f.payload, tm, tenant)) {
        std::lock_guard lk(out_mu_);
        ++stats_.frames_in;
        ++stats_.protocol_errors;
        encode_error(bytes, f.request_id, ErrorCode::kMalformed,
                     "solve request payload inconsistent with declared counts");
        append_locked(bytes);
        close_after_flush_ = true;
        return;
      }
      const std::size_t got_demands = tm.volume.size();
      ShedReason reason = ShedReason::kAdmission;
      int expected_demands = -1;
      const SubmitOutcome oc =
          submit(*this, f.request_id, tenant, std::move(tm), reason, expected_demands);
      std::lock_guard lk(out_mu_);
      ++stats_.frames_in;
      switch (oc) {
        case SubmitOutcome::kAccepted:
          ++stats_.requests;  // response arrives via queue_response later
          return;
        case SubmitOutcome::kShed:
          ++stats_.shed;
          encode_shed(bytes, f.request_id, reason);
          break;
        case SubmitOutcome::kUnknownTenant:
          // Typed error, connection stays usable — the client may serve many
          // tenants and only misrouted this one request.
          ++stats_.unknown_tenants;
          encode_error(bytes, f.request_id, ErrorCode::kUnknownTenant,
                       "unknown tenant '" + tenant + "'");
          break;
        case SubmitOutcome::kBadDemandCount:
          // Well-framed but wrong-shaped for the routed tenant; stays usable.
          ++stats_.bad_requests;
          encode_error(bytes, f.request_id, ErrorCode::kBadDemandCount,
                       "expected " + std::to_string(expected_demands) + " demands, got " +
                           std::to_string(got_demands));
          break;
      }
      append_locked(bytes);
      return;
    }
    default: {
      // Valid header, but a type only servers send (pong/response/shed/
      // error). Tell the client and stay open.
      std::lock_guard lk(out_mu_);
      ++stats_.frames_in;
      ++stats_.protocol_errors;
      encode_error(bytes, f.request_id, ErrorCode::kUnsupportedType,
                   std::string("server does not accept ") + frame_type_name(f.type) +
                       " frames");
      append_locked(bytes);
      return;
    }
  }
}

void Session::append_locked(const std::vector<std::uint8_t>& bytes) {
  outbox_.insert(outbox_.end(), bytes.begin(), bytes.end());
  ++stats_.frames_out;
  if (outbox_.size() - outbox_pos_ > max_outbox_) {
    // Slow reader: the peer is not consuming its responses. Waiting for the
    // outbox to drain before closing would wait on that same non-reading
    // peer, so the close must be immediate (hard), not after-flush.
    close_after_flush_ = true;
    hard_close_ = true;
  }
}

void Session::queue_response(std::uint32_t request_id, const te::Allocation& alloc,
                             double solve_seconds) {
  std::vector<std::uint8_t> bytes;
  encode_solve_response(bytes, request_id, alloc, solve_seconds);
  std::lock_guard lk(out_mu_);
  ++stats_.responses;
  append_locked(bytes);
}

void Session::queue_shed(std::uint32_t request_id, ShedReason reason) {
  std::vector<std::uint8_t> bytes;
  encode_shed(bytes, request_id, reason);
  std::lock_guard lk(out_mu_);
  ++stats_.shed;
  append_locked(bytes);
}

void Session::queue_error(std::uint32_t request_id, ErrorCode code,
                          const std::string& message) {
  std::vector<std::uint8_t> bytes;
  encode_error(bytes, request_id, code, message);
  std::lock_guard lk(out_mu_);
  append_locked(bytes);
}

bool Session::flush() {
  std::lock_guard lk(out_mu_);
  while (outbox_pos_ < outbox_.size()) {
    const int w = util::write_some(sock_, outbox_.data() + outbox_pos_,
                                   outbox_.size() - outbox_pos_);
    if (w == 0) return false;  // peer gone
    if (w < 0) break;          // kernel buffer full; wait for POLLOUT
    outbox_pos_ += static_cast<std::size_t>(w);
  }
  if (outbox_pos_ == outbox_.size()) {
    outbox_.clear();
    outbox_pos_ = 0;
  } else if (outbox_pos_ >= 4096) {
    outbox_.erase(outbox_.begin(), outbox_.begin() + static_cast<std::ptrdiff_t>(outbox_pos_));
    outbox_pos_ = 0;
  }
  return true;
}

bool Session::wants_write() const {
  std::lock_guard lk(out_mu_);
  return outbox_pos_ < outbox_.size();
}

bool Session::done() const {
  std::lock_guard lk(out_mu_);
  if (hard_close_) return true;  // overflow: never wait for a drain
  return close_after_flush_ && outbox_pos_ == outbox_.size();
}

SessionStats Session::stats() const {
  std::lock_guard lk(out_mu_);
  return stats_;
}

}  // namespace teal::net
