#include "net/client.h"

#include <stdexcept>
#include <vector>

namespace teal::net {

Client::Client(const std::string& host, std::uint16_t port, std::size_t max_payload)
    : sock_(util::connect_tcp(host, port)), decoder_(max_payload) {}

std::uint32_t Client::send_solve(const te::TrafficMatrix& tm) {
  const std::uint32_t id = next_id_++;
  std::vector<std::uint8_t> bytes;
  encode_solve_request(bytes, id, tm);
  if (!util::write_all(sock_, bytes.data(), bytes.size())) {
    throw std::runtime_error("net::Client: server closed the connection on send");
  }
  return id;
}

Client::Reply Client::wait_reply() {
  Frame f;
  for (;;) {
    const DecodeStatus st = decoder_.next(f);
    if (st == DecodeStatus::kMalformed) {
      throw std::runtime_error("net::Client: malformed server frame: " + decoder_.error());
    }
    if (st == DecodeStatus::kFrame) break;
    std::uint8_t buf[32 * 1024];
    const int n = util::read_some(sock_, buf, sizeof(buf));
    if (n == 0) throw std::runtime_error("net::Client: server closed the connection");
    if (n > 0) decoder_.feed(buf, static_cast<std::size_t>(n));
    // n < 0 (EINTR on a blocking socket): retry
  }

  Reply r;
  r.request_id = f.request_id;
  switch (f.type) {
    case FrameType::kSolveResponse:
      r.kind = Reply::Kind::kResponse;
      if (!parse_solve_response(f.payload, r.alloc, r.solve_seconds)) {
        throw std::runtime_error("net::Client: bad solve response payload");
      }
      return r;
    case FrameType::kShed:
      r.kind = Reply::Kind::kShed;
      if (!parse_shed(f.payload, r.shed_reason)) {
        throw std::runtime_error("net::Client: bad shed payload");
      }
      return r;
    case FrameType::kError:
      r.kind = Reply::Kind::kError;
      if (!parse_error(f.payload, r.error_code, r.error_message)) {
        throw std::runtime_error("net::Client: bad error payload");
      }
      return r;
    default:
      throw std::runtime_error(std::string("net::Client: unexpected ") +
                               frame_type_name(f.type) + " frame");
  }
}

Client::Reply Client::solve(const te::TrafficMatrix& tm) {
  send_solve(tm);
  return wait_reply();
}

bool Client::ping() {
  const std::uint32_t id = next_id_++;
  std::vector<std::uint8_t> bytes;
  encode_ping(bytes, id);
  if (!util::write_all(sock_, bytes.data(), bytes.size())) return false;
  Frame f;
  for (;;) {
    const DecodeStatus st = decoder_.next(f);
    if (st == DecodeStatus::kMalformed) return false;
    if (st == DecodeStatus::kFrame) break;
    std::uint8_t buf[4096];
    const int n = util::read_some(sock_, buf, sizeof(buf));
    if (n == 0) return false;
    if (n > 0) decoder_.feed(buf, static_cast<std::size_t>(n));
  }
  return f.type == FrameType::kPong && f.request_id == id;
}

void Client::close() { sock_.close(); }

}  // namespace teal::net
