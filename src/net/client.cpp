#include "net/client.h"

#include <chrono>
#include <stdexcept>
#include <vector>

namespace teal::net {

Client::Client(const std::string& host, std::uint16_t port, std::size_t max_payload)
    : sock_(util::connect_tcp(host, port)), decoder_(max_payload) {}

void Client::set_read_timeout(double seconds) {
  read_timeout_ = seconds > 0.0 ? seconds : 0.0;
  // SO_RCVTIMEO bounds each kernel read so the deadline checks in
  // wait_reply()/ping() actually get to run (0 restores fully blocking).
  util::set_recv_timeout(sock_, read_timeout_);
}

std::uint32_t Client::send_solve(const te::TrafficMatrix& tm, const std::string& tenant) {
  const std::uint32_t id = next_id_++;
  std::vector<std::uint8_t> bytes;
  encode_solve_request(bytes, id, tm, tenant);
  if (!util::write_all(sock_, bytes.data(), bytes.size())) {
    throw std::runtime_error("net::Client: server closed the connection on send");
  }
  return id;
}

Client::Reply Client::wait_reply() {
  using Clock = std::chrono::steady_clock;
  const Clock::time_point deadline =
      read_timeout_ > 0.0 ? Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                               std::chrono::duration<double>(read_timeout_))
                          : Clock::time_point::max();
  Frame f;
  for (;;) {
    const DecodeStatus st = decoder_.next(f);
    if (st == DecodeStatus::kMalformed) {
      throw std::runtime_error("net::Client: malformed server frame: " + decoder_.error());
    }
    if (st == DecodeStatus::kFrame) break;
    std::uint8_t buf[32 * 1024];
    const int n = util::read_some(sock_, buf, sizeof(buf));
    if (n == 0) throw std::runtime_error("net::Client: server closed the connection");
    if (n > 0) {
      decoder_.feed(buf, static_cast<std::size_t>(n));
      continue;
    }
    // n < 0: EINTR, or SO_RCVTIMEO expired — bounded waits must give up
    // rather than retry forever against a wedged server.
    if (Clock::now() >= deadline) {
      throw std::runtime_error("net::Client: timed out waiting for a reply");
    }
  }

  Reply r;
  r.request_id = f.request_id;
  switch (f.type) {
    case FrameType::kSolveResponse:
      r.kind = Reply::Kind::kResponse;
      if (!parse_solve_response(f.payload, r.alloc, r.solve_seconds)) {
        throw std::runtime_error("net::Client: bad solve response payload");
      }
      return r;
    case FrameType::kShed:
      r.kind = Reply::Kind::kShed;
      if (!parse_shed(f.payload, r.shed_reason)) {
        throw std::runtime_error("net::Client: bad shed payload");
      }
      return r;
    case FrameType::kError:
      r.kind = Reply::Kind::kError;
      if (!parse_error(f.payload, r.error_code, r.error_message)) {
        throw std::runtime_error("net::Client: bad error payload");
      }
      return r;
    default:
      throw std::runtime_error(std::string("net::Client: unexpected ") +
                               frame_type_name(f.type) + " frame");
  }
}

Client::Reply Client::solve(const te::TrafficMatrix& tm, const std::string& tenant) {
  send_solve(tm, tenant);
  return wait_reply();
}

bool Client::ping() {
  using Clock = std::chrono::steady_clock;
  const std::uint32_t id = next_id_++;
  std::vector<std::uint8_t> bytes;
  encode_ping(bytes, id);
  if (!util::write_all(sock_, bytes.data(), bytes.size())) return false;
  const Clock::time_point deadline =
      read_timeout_ > 0.0 ? Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                               std::chrono::duration<double>(read_timeout_))
                          : Clock::time_point::max();
  Frame f;
  for (;;) {
    const DecodeStatus st = decoder_.next(f);
    if (st == DecodeStatus::kMalformed) return false;
    if (st == DecodeStatus::kFrame) break;
    std::uint8_t buf[4096];
    const int n = util::read_some(sock_, buf, sizeof(buf));
    if (n == 0) return false;
    if (n > 0) {
      decoder_.feed(buf, static_cast<std::size_t>(n));
      continue;
    }
    if (Clock::now() >= deadline) return false;  // timed out: server is wedged
  }
  return f.type == FrameType::kPong && f.request_id == id;
}

void Client::close() { sock_.close(); }

}  // namespace teal::net
