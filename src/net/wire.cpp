#include "net/wire.h"

#include <bit>
#include <cstring>

namespace teal::net {

namespace {

// Explicit little-endian packing: the wire format must not depend on host
// byte order or struct layout, and shift-based packing is branch-free and
// optimizes to a plain store on LE hosts.
void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_f64(std::vector<std::uint8_t>& out, double v) {
  const auto bits = std::bit_cast<std::uint64_t>(v);
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(bits >> (8 * i)));
}

std::uint16_t get_u16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>(p[0] | (std::uint16_t{p[1]} << 8));
}

std::uint32_t get_u32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= std::uint32_t{p[i]} << (8 * i);
  return v;
}

double get_f64(const std::uint8_t* p) {
  std::uint64_t bits = 0;
  for (int i = 0; i < 8; ++i) bits |= std::uint64_t{p[i]} << (8 * i);
  return std::bit_cast<double>(bits);
}

void put_header(std::vector<std::uint8_t>& out, FrameType type, std::uint32_t request_id,
                std::uint32_t payload_len) {
  put_u16(out, kWireMagic);
  out.push_back(kWireVersion);
  out.push_back(static_cast<std::uint8_t>(type));
  put_u32(out, request_id);
  put_u32(out, payload_len);
}

bool known_type(std::uint8_t t) {
  return t >= static_cast<std::uint8_t>(FrameType::kPing) &&
         t <= static_cast<std::uint8_t>(FrameType::kError);
}

}  // namespace

void encode_ping(std::vector<std::uint8_t>& out, std::uint32_t request_id) {
  put_header(out, FrameType::kPing, request_id, 0);
}

void encode_pong(std::vector<std::uint8_t>& out, std::uint32_t request_id) {
  put_header(out, FrameType::kPong, request_id, 0);
}

void encode_solve_request(std::vector<std::uint8_t>& out, std::uint32_t request_id,
                          const te::TrafficMatrix& tm, const std::string& tenant) {
  const auto tlen = static_cast<std::uint32_t>(tenant.size());
  const auto n = static_cast<std::uint32_t>(tm.volume.size());
  put_header(out, FrameType::kSolveRequest, request_id, 4 + tlen + 4 + 8 * n);
  put_u32(out, tlen);
  out.insert(out.end(), tenant.begin(), tenant.end());
  put_u32(out, n);
  for (double v : tm.volume) put_f64(out, v);
}

void encode_solve_response(std::vector<std::uint8_t>& out, std::uint32_t request_id,
                           const te::Allocation& alloc, double solve_seconds) {
  const auto n = static_cast<std::uint32_t>(alloc.split.size());
  put_header(out, FrameType::kSolveResponse, request_id, 8 + 4 + 8 * n);
  put_f64(out, solve_seconds);
  put_u32(out, n);
  for (double v : alloc.split) put_f64(out, v);
}

void encode_shed(std::vector<std::uint8_t>& out, std::uint32_t request_id,
                 ShedReason reason) {
  put_header(out, FrameType::kShed, request_id, 4);
  put_u32(out, static_cast<std::uint32_t>(reason));
}

void encode_error(std::vector<std::uint8_t>& out, std::uint32_t request_id,
                  ErrorCode code, const std::string& message) {
  const auto len = static_cast<std::uint32_t>(message.size());
  put_header(out, FrameType::kError, request_id, 4 + 4 + len);
  put_u32(out, static_cast<std::uint32_t>(code));
  put_u32(out, len);
  out.insert(out.end(), message.begin(), message.end());
}

bool parse_solve_request(const std::vector<std::uint8_t>& payload, te::TrafficMatrix& tm,
                         std::string& tenant) {
  if (payload.size() < 4) return false;
  const std::uint32_t tlen = get_u32(payload.data());
  // Bound-check the tenant length against the payload before touching the
  // demand count that follows it (a garbage tlen must not read out of range).
  if (payload.size() < 4 + std::size_t{tlen} + 4) return false;
  const std::size_t noff = 4 + std::size_t{tlen};
  const std::uint32_t n = get_u32(payload.data() + noff);
  if (payload.size() != noff + 4 + std::size_t{8} * n) return false;
  tenant.assign(reinterpret_cast<const char*>(payload.data() + 4), tlen);
  tm.volume.resize(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    tm.volume[i] = get_f64(payload.data() + noff + 4 + 8 * i);
  }
  return true;
}

bool parse_solve_response(const std::vector<std::uint8_t>& payload, te::Allocation& alloc,
                          double& solve_seconds) {
  if (payload.size() < 12) return false;
  const std::uint32_t n = get_u32(payload.data() + 8);
  if (payload.size() != 12 + std::size_t{8} * n) return false;
  solve_seconds = get_f64(payload.data());
  alloc.split.resize(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    alloc.split[i] = get_f64(payload.data() + 12 + 8 * i);
  }
  return true;
}

bool parse_shed(const std::vector<std::uint8_t>& payload, ShedReason& reason) {
  if (payload.size() != 4) return false;
  const std::uint32_t r = get_u32(payload.data());
  if (r < static_cast<std::uint32_t>(ShedReason::kAdmission) ||
      r > static_cast<std::uint32_t>(ShedReason::kStopping)) {
    return false;
  }
  reason = static_cast<ShedReason>(r);
  return true;
}

bool parse_error(const std::vector<std::uint8_t>& payload, ErrorCode& code,
                 std::string& message) {
  if (payload.size() < 8) return false;
  const std::uint32_t len = get_u32(payload.data() + 4);
  if (payload.size() != 8 + std::size_t{len}) return false;
  code = static_cast<ErrorCode>(get_u32(payload.data()));
  message.assign(reinterpret_cast<const char*>(payload.data() + 8), len);
  return true;
}

void FrameDecoder::feed(const void* data, std::size_t n) {
  // Compact the consumed prefix before growing: a standing connection
  // streaming millions of requests must not accrete its history.
  if (pos_ > 0 && (pos_ == buf_.size() || pos_ >= 4096)) {
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(pos_));
    pos_ = 0;
  }
  const auto* p = static_cast<const std::uint8_t*>(data);
  buf_.insert(buf_.end(), p, p + n);
}

DecodeStatus FrameDecoder::next(Frame& out) {
  if (poisoned_) return DecodeStatus::kMalformed;
  if (buffered() < kHeaderSize) return DecodeStatus::kNeedMore;
  const std::uint8_t* h = buf_.data() + pos_;

  // Header-only validation first: a bad prefix or an absurd length must be
  // rejected now, not after the decoder buffered max_payload bytes of junk.
  if (get_u16(h) != kWireMagic) {
    poisoned_ = true;
    error_ = "bad magic";
    return DecodeStatus::kMalformed;
  }
  if (h[2] != kWireVersion) {
    poisoned_ = true;
    error_ = "unsupported version " + std::to_string(int{h[2]});
    return DecodeStatus::kMalformed;
  }
  if (!known_type(h[3])) {
    poisoned_ = true;
    error_ = "unknown frame type " + std::to_string(int{h[3]});
    return DecodeStatus::kMalformed;
  }
  const std::uint32_t payload_len = get_u32(h + 8);
  if (payload_len > max_payload_) {
    poisoned_ = true;
    error_ = "payload length " + std::to_string(payload_len) + " exceeds limit " +
             std::to_string(max_payload_);
    return DecodeStatus::kMalformed;
  }
  if (buffered() < kHeaderSize + payload_len) return DecodeStatus::kNeedMore;

  out.type = static_cast<FrameType>(h[3]);
  out.request_id = get_u32(h + 4);
  out.payload.assign(h + kHeaderSize, h + kHeaderSize + payload_len);
  pos_ += kHeaderSize + payload_len;
  return DecodeStatus::kFrame;
}

const char* frame_type_name(FrameType t) {
  switch (t) {
    case FrameType::kPing: return "ping";
    case FrameType::kPong: return "pong";
    case FrameType::kSolveRequest: return "solve_request";
    case FrameType::kSolveResponse: return "solve_response";
    case FrameType::kShed: return "shed";
    case FrameType::kError: return "error";
  }
  return "unknown";
}

}  // namespace teal::net
