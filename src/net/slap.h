// slap.h — teal_slap, the open-loop multi-connection load generator.
//
// Open-loop is the discipline that makes overload visible: requests are sent
// on a fixed global schedule (offered rate × duration), whether or not
// earlier responses came back — the way five-minute traffic matrices keep
// arriving at a WAN controller no matter how the last solve went, and the
// regime a closed-loop client (which politely waits, so never overloads)
// cannot reach. The schedule is interleaved round-robin across N standing
// connections; each connection runs a paced writer thread and a reader
// thread that matches responses to send timestamps by request id.
//
// Multi-tenant: the offered schedule is split across workloads (one per
// fleet tenant) by weight — a deterministic smooth weighted round-robin, so
// the same config always offers the same per-tenant sequence — and every
// counter is kept per tenant as well as in aggregate. The per-tenant ledger
// obeys the same invariant as the total:
// offered == responses + shed + errors + dropped, per tenant, by
// construction on every exit path.
//
// What comes back is the serving story end to end: response latency
// percentiles (send → response, i.e. including queue wait and the wire),
// achieved throughput, and the server's explicit shed frames counted
// separately from errors. bench/net_serving.cpp sweeps the offered rate
// through this harness into the EXPERIMENTS.md "Latency under load" ledger;
// tools/teal_slap.cpp is the standalone CLI.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "te/problem.h"
#include "util/histogram.h"

namespace teal::net {

struct SlapConfig {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  int connections = 4;
  double target_rps = 200.0;       // aggregate offered rate over all tenants
  double duration_seconds = 2.0;   // sending window; offered ≈ rate × duration
  // How long readers linger for stragglers after the last send; replies
  // still missing then are counted as dropped.
  double drain_grace_seconds = 2.0;
  std::size_t max_payload = 0;     // 0 = wire.h default
};

// One tenant's slice of the offered load. `requests` is cycled within the
// tenant's own schedule slots; `weight` is its share of the aggregate rate
// (weights are relative, not percentages).
struct SlapWorkload {
  std::string tenant;  // "" = the server's default tenant
  std::vector<te::TrafficMatrix> requests;
  double weight = 1.0;
};

// Per-tenant ledger: same fields and invariant as the aggregate.
struct SlapTenantStats {
  std::string tenant;
  std::uint64_t offered = 0;
  std::uint64_t responses = 0;
  std::uint64_t shed = 0;
  std::uint64_t errors = 0;
  std::uint64_t dropped = 0;
  util::LatencyHistogram latency;
};

struct SlapStats {
  std::uint64_t offered = 0;    // requests actually written to a socket
  std::uint64_t responses = 0;  // solve responses received
  std::uint64_t shed = 0;       // explicit shed frames received
  std::uint64_t errors = 0;     // error frames, send failures, dead connections
  std::uint64_t dropped = 0;    // no reply within the drain grace
  double wall_seconds = 0.0;    // first send → last reply (or end of grace)
  double achieved_rps = 0.0;    // offered / sending-window wall time
  util::LatencyHistogram latency;  // send → response, responses only

  std::vector<SlapTenantStats> tenants;  // workload order; sums to the above

  double response_rate() const {
    return wall_seconds > 0.0 ? static_cast<double>(responses) / wall_seconds : 0.0;
  }
  double shed_pct() const {
    return offered > 0 ? 100.0 * static_cast<double>(shed) / static_cast<double>(offered)
                       : 0.0;
  }
};

// Fires cfg.target_rps × cfg.duration_seconds requests at host:port, the
// schedule split across `workloads` by weight (each must have non-empty
// requests matching its tenant's demand count). Blocks until the run and its
// drain grace finish.
SlapStats run_slap(const SlapConfig& cfg, const std::vector<SlapWorkload>& workloads);

// Single-tenant convenience (the PR 7 shape): one anonymous workload against
// the server's default tenant.
SlapStats run_slap(const SlapConfig& cfg, const std::vector<te::TrafficMatrix>& requests);

}  // namespace teal::net
