#include "net/slap.h"

#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/wire.h"
#include "util/socket.h"
#include "util/thread_name.h"

namespace teal::net {

namespace {

using Clock = std::chrono::steady_clock;

// One outstanding request: when it was sent and which workload (tenant) it
// belongs to, so the reply — or its absence — books against the right ledger.
struct InFlight {
  Clock::time_point sent;
  std::uint32_t workload = 0;
};

// Per-workload counters local to one connection; merged per tenant at the end.
struct TenantLocal {
  std::uint64_t offered = 0;
  std::uint64_t responses = 0;
  std::uint64_t shed = 0;
  std::uint64_t errors = 0;
  util::LatencyHistogram latency;
};

// Per-connection state shared between its writer and reader thread. The
// in-flight map is the only contended structure: the writer records the send
// timestamp *before* the bytes hit the socket, so the reader can never see a
// response whose send time is missing.
struct Conn {
  util::Socket sock;
  std::mutex mu;
  std::unordered_map<std::uint32_t, InFlight> in_flight;

  std::vector<TenantLocal> tenants;  // one per workload, guarded by mu
  util::LatencyHistogram latency;
  Clock::time_point last_reply{};
  Clock::time_point writer_end{};
  std::atomic<bool> writer_done{false};
  std::atomic<bool> dead{false};
};

// Deterministic smooth weighted round-robin: slot i of the global schedule
// goes to the workload with the highest accumulated credit (weight added
// every slot, total subtracted on selection). The same weights always
// produce the same interleaving — per-tenant offered counts are exactly
// reproducible, which the per-tenant invariant tests rely on.
std::vector<std::uint32_t> build_schedule(const std::vector<SlapWorkload>& workloads,
                                          std::uint64_t total) {
  std::vector<std::uint32_t> schedule(total, 0);
  if (workloads.size() <= 1) return schedule;
  double wsum = 0.0;
  for (const auto& w : workloads) wsum += w.weight > 0.0 ? w.weight : 0.0;
  if (wsum <= 0.0) {  // all-zero weights: plain round-robin
    for (std::uint64_t i = 0; i < total; ++i) {
      schedule[i] = static_cast<std::uint32_t>(i % workloads.size());
    }
    return schedule;
  }
  std::vector<double> credit(workloads.size(), 0.0);
  for (std::uint64_t i = 0; i < total; ++i) {
    std::size_t best = 0;
    for (std::size_t w = 0; w < workloads.size(); ++w) {
      credit[w] += workloads[w].weight > 0.0 ? workloads[w].weight : 0.0;
      if (credit[w] > credit[best]) best = w;
    }
    credit[best] -= wsum;
    schedule[i] = static_cast<std::uint32_t>(best);
  }
  return schedule;
}

void writer_loop(Conn& conn, int index, int stride, std::uint64_t total,
                 double target_rps, Clock::time_point start,
                 const std::vector<SlapWorkload>& workloads,
                 const std::vector<std::uint32_t>& schedule) {
  util::set_current_thread_name("slap-send", static_cast<std::size_t>(index));
  std::vector<std::uint8_t> bytes;
  for (std::uint64_t i = static_cast<std::uint64_t>(index); i < total;
       i += static_cast<std::uint64_t>(stride)) {
    // Open-loop pacing: request i is due at start + i/rate regardless of how
    // the server is doing. sleep_until of a past deadline returns at once,
    // so a lagging client degrades to as-fast-as-possible (and achieved_rps
    // reports the truth).
    const auto due = start + std::chrono::duration_cast<Clock::duration>(
                                 std::chrono::duration<double>(
                                     static_cast<double>(i) / target_rps));
    std::this_thread::sleep_until(due);
    if (conn.dead.load(std::memory_order_relaxed)) break;

    const auto id = static_cast<std::uint32_t>(i);  // globally unique per run
    const std::uint32_t w = schedule[i];
    const SlapWorkload& load = workloads[w];
    bytes.clear();
    encode_solve_request(bytes, id,
                         load.requests[static_cast<std::size_t>(
                             i % load.requests.size())],
                         load.tenant);
    {
      // Counted as offered at the send *attempt*, not after a successful
      // write: a failed send then books as an error against an offered
      // request, so `offered == responses + shed + errors + dropped` holds
      // by construction on every exit path — per tenant, since both sides
      // book against the same workload index.
      std::lock_guard lk(conn.mu);
      conn.in_flight.emplace(id, InFlight{Clock::now(), w});
      ++conn.tenants[w].offered;
    }
    if (!util::write_all(conn.sock, bytes.data(), bytes.size())) {
      // The frame never fully reached the server (write_all only fails with
      // a suffix unsent), so no reply can be racing us: erasing the
      // in-flight entry and booking the error cannot double-count.
      std::lock_guard lk(conn.mu);
      conn.in_flight.erase(id);
      ++conn.tenants[w].errors;
      conn.dead.store(true, std::memory_order_relaxed);
      break;
    }
  }
  conn.writer_end = Clock::now();
  conn.writer_done.store(true, std::memory_order_release);
}

void reader_loop(Conn& conn, int index, std::size_t max_payload,
                 Clock::time_point* grace_deadline,
                 const std::atomic<bool>& sending_finished) {
  util::set_current_thread_name("slap-recv", static_cast<std::size_t>(index));
  FrameDecoder decoder(max_payload);
  std::uint8_t buf[32 * 1024];
  for (;;) {
    Frame f;
    DecodeStatus st = decoder.next(f);
    while (st == DecodeStatus::kNeedMore) {
      const int n = util::read_some(conn.sock, buf, sizeof(buf));
      if (n == 0) {  // server hung up: every outstanding request is lost
        conn.dead.store(true, std::memory_order_relaxed);
        return;
      }
      if (n < 0) {  // SO_RCVTIMEO tick: time to check for end-of-run
        if (conn.writer_done.load(std::memory_order_acquire)) {
          std::unique_lock lk(conn.mu);
          const bool idle = conn.in_flight.empty();
          lk.unlock();
          if (idle) return;
          if (sending_finished.load(std::memory_order_acquire) &&
              Clock::now() > *grace_deadline) {
            return;  // stragglers become `dropped`
          }
        }
        continue;
      }
      decoder.feed(buf, static_cast<std::size_t>(n));
      st = decoder.next(f);
    }
    if (st == DecodeStatus::kMalformed) {
      conn.dead.store(true, std::memory_order_relaxed);
      return;
    }

    const auto now = Clock::now();
    std::lock_guard lk(conn.mu);
    auto it = conn.in_flight.find(f.request_id);
    if (it == conn.in_flight.end()) continue;  // duplicate/unknown id: ignore
    const InFlight sent = it->second;
    conn.in_flight.erase(it);
    conn.last_reply = now;
    TenantLocal& tl = conn.tenants[sent.workload];
    switch (f.type) {
      case FrameType::kSolveResponse: {
        ++tl.responses;
        const double s = std::chrono::duration<double>(now - sent.sent).count();
        tl.latency.record(s);
        conn.latency.record(s);
        break;
      }
      case FrameType::kShed:
        ++tl.shed;
        break;
      default:
        ++tl.errors;
        break;
    }
  }
}

}  // namespace

SlapStats run_slap(const SlapConfig& cfg, const std::vector<SlapWorkload>& workloads) {
  SlapStats out;
  if (workloads.empty() || cfg.connections <= 0 || cfg.target_rps <= 0.0) return out;
  for (const auto& w : workloads) {
    if (w.requests.empty()) return out;
  }
  const std::size_t max_payload =
      cfg.max_payload > 0 ? cfg.max_payload : kDefaultMaxPayload;
  const auto total = static_cast<std::uint64_t>(cfg.target_rps * cfg.duration_seconds);
  if (total == 0) return out;
  const std::vector<std::uint32_t> schedule = build_schedule(workloads, total);

  std::vector<std::unique_ptr<Conn>> conns;
  conns.reserve(static_cast<std::size_t>(cfg.connections));
  for (int c = 0; c < cfg.connections; ++c) {
    auto conn = std::make_unique<Conn>();
    conn->sock = util::connect_tcp(cfg.host, cfg.port);
    // Reader wake-up granularity: bounds how stale the end-of-run check gets.
    util::set_recv_timeout(conn->sock, 0.05);
    conn->tenants.resize(workloads.size());
    conns.push_back(std::move(conn));
  }

  const auto start = Clock::now();
  Clock::time_point grace_deadline{};  // written before sending_finished is set
  std::atomic<bool> sending_finished{false};
  std::vector<std::thread> writers, readers;
  for (int c = 0; c < cfg.connections; ++c) {
    readers.emplace_back(reader_loop, std::ref(*conns[static_cast<std::size_t>(c)]), c,
                         max_payload, &grace_deadline, std::cref(sending_finished));
    writers.emplace_back(writer_loop, std::ref(*conns[static_cast<std::size_t>(c)]), c,
                         cfg.connections, total, cfg.target_rps, start,
                         std::cref(workloads), std::cref(schedule));
  }
  for (auto& t : writers) t.join();
  grace_deadline = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                      std::chrono::duration<double>(
                                          cfg.drain_grace_seconds));
  sending_finished.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();

  out.tenants.resize(workloads.size());
  for (std::size_t w = 0; w < workloads.size(); ++w) {
    out.tenants[w].tenant = workloads[w].tenant;
  }
  Clock::time_point last_activity = start;
  Clock::time_point send_end = start;
  for (auto& conn : conns) {
    std::lock_guard lk(conn->mu);
    for (std::size_t w = 0; w < workloads.size(); ++w) {
      SlapTenantStats& ts = out.tenants[w];
      const TenantLocal& tl = conn->tenants[w];
      ts.offered += tl.offered;
      ts.responses += tl.responses;
      ts.shed += tl.shed;
      ts.errors += tl.errors;
      ts.latency.merge(tl.latency);
    }
    // Requests still in flight after the grace are dropped — booked against
    // their own tenant, which keeps the per-tenant ledger balanced too.
    for (const auto& [id, fl] : conn->in_flight) ++out.tenants[fl.workload].dropped;
    out.latency.merge(conn->latency);
    if (conn->last_reply > last_activity) last_activity = conn->last_reply;
    if (conn->writer_end > send_end) send_end = conn->writer_end;
  }
  for (const SlapTenantStats& ts : out.tenants) {
    out.offered += ts.offered;
    out.responses += ts.responses;
    out.shed += ts.shed;
    out.errors += ts.errors;
    out.dropped += ts.dropped;
  }
  out.wall_seconds = std::chrono::duration<double>(
                         (last_activity > send_end ? last_activity : send_end) - start)
                         .count();
  const double send_window = std::chrono::duration<double>(send_end - start).count();
  out.achieved_rps = send_window > 0.0 ? static_cast<double>(out.offered) / send_window
                                       : 0.0;
  return out;
}

SlapStats run_slap(const SlapConfig& cfg, const std::vector<te::TrafficMatrix>& requests) {
  std::vector<SlapWorkload> workloads(1);
  workloads[0].requests = requests;
  return run_slap(cfg, workloads);
}

}  // namespace teal::net
