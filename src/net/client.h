// client.h — blocking client for the teal wire protocol.
//
// One standing TCP connection, synchronous by default (solve() = one round
// trip) but with the send/wait primitives split out so callers can pipeline:
// several send_solve() calls back-to-back, then collect replies in
// completion order and match them by request id. The tests use the split to
// provoke overload (a burst the admission control must shed) and the slap
// load generator uses its own threads instead (net/slap.h) — this class is
// deliberately single-threaded.
#pragma once

#include <cstdint>
#include <string>

#include "net/wire.h"
#include "te/problem.h"
#include "util/socket.h"

namespace teal::net {

class Client {
 public:
  // What came back for a request: exactly one of the three server reply
  // kinds (response / shed / error), tagged.
  struct Reply {
    enum class Kind { kResponse, kShed, kError };
    Kind kind = Kind::kError;
    std::uint32_t request_id = 0;
    te::Allocation alloc;       // kResponse
    double solve_seconds = 0.0; // kResponse: the replica's own solve time
    ShedReason shed_reason = ShedReason::kAdmission;  // kShed
    ErrorCode error_code = ErrorCode::kMalformed;     // kError
    std::string error_message;                        // kError
  };

  // Connects immediately; throws std::system_error on failure.
  Client(const std::string& host, std::uint16_t port,
         std::size_t max_payload = kDefaultMaxPayload);

  // Pipelined primitives. send_solve returns the request id its reply will
  // echo; wait_reply blocks for the next reply frame in arrival order and
  // throws std::runtime_error when the server hangs up, talks garbage, or
  // the read timeout (set_read_timeout) expires. `tenant` names the fleet
  // tenant the request routes to ("" = the server's default tenant).
  std::uint32_t send_solve(const te::TrafficMatrix& tm, const std::string& tenant = "");
  Reply wait_reply();

  // One request, one reply (ids matched by the caller being synchronous).
  Reply solve(const te::TrafficMatrix& tm, const std::string& tenant = "");

  // Ping round trip; false when the server is gone (or the timeout expired).
  bool ping();

  // Bounds every blocking read in wait_reply()/ping(): a server that
  // accepted the connection but never answers can no longer wedge the caller
  // forever (the satellite failure mode of a hung serve backend). 0 restores
  // the default — block indefinitely. The bound is per wait_reply() call,
  // enforced with SO_RCVTIMEO underneath so each kernel read wakes up in
  // time to check the deadline.
  void set_read_timeout(double seconds);
  double read_timeout() const { return read_timeout_; }

  // Abrupt teardown (RST-ish: just closes the fd, flushing nothing). The
  // disconnect-mid-request test uses this to walk away from an in-flight
  // solve.
  void close();

  bool connected() const { return sock_.valid(); }

 private:
  util::Socket sock_;
  FrameDecoder decoder_;
  std::uint32_t next_id_ = 1;
  double read_timeout_ = 0.0;  // 0 = block forever
};

}  // namespace teal::net
