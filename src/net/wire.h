// wire.h — the length-prefixed binary protocol of the network serving layer.
//
// Encode/decode is fully separated from I/O: encoders append bytes to a
// caller-owned buffer, the FrameDecoder consumes bytes fed to it from *any*
// transport, and neither ever touches a socket — so the whole protocol is
// unit-testable byte-for-byte (tests/net_proto_test.cpp) and the server and
// client share one implementation.
//
// Frame layout (all integers little-endian on the wire, explicitly packed —
// never a struct memcpy, so the format is independent of host ABI):
//
//   offset  size  field
//   0       2     magic 0x4C54 ("TL")
//   2       1     version (kWireVersion)
//   3       1     frame type (FrameType)
//   4       4     request id (client-chosen, echoed in every reply)
//   8       4     payload length in bytes
//   12      n     payload
//
// Payloads (wire version 2):
//   kPing / kPong          empty
//   kSolveRequest          u32 tenant length, tenant bytes (UTF-8; empty =
//                          the server's default tenant), u32 n_demands, then
//                          n_demands f64 volumes
//   kSolveResponse         f64 solve_seconds, u32 n_splits, then n_splits f64
//   kShed                  u32 ShedReason
//   kError                 u32 ErrorCode, u32 text length, then text bytes
//
// Version history: v1 (PR 7) had no tenant field in kSolveRequest. The
// version byte sits in the header, so a v1 peer talking to a v2 peer (either
// direction) is rejected from the first header with "unsupported version" —
// backward-compat by explicit refusal, never by silently misparsing the
// tenant length as a demand count.
//
// f64 values travel as the IEEE-754 bit pattern (bit_cast through u64), so a
// served allocation is byte-identical to the solver's output — the loopback
// equality contract in tests/net_serve_test.cpp depends on this.
//
// The decoder validates the header *before* waiting for the payload: bad
// magic/version/type and an oversized declared length are rejected from the
// 12 header bytes alone, and a malformed stream poisons the decoder (one
// protocol error ends the connection; there is no resynchronization in a
// length-prefixed stream).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "te/problem.h"

namespace teal::net {

inline constexpr std::uint16_t kWireMagic = 0x4C54;  // "TL"
inline constexpr std::uint8_t kWireVersion = 2;  // v2: tenant id in solve requests
inline constexpr std::size_t kHeaderSize = 12;
// Default payload bound: an ASN-scale allocation is ~1 MB; 16 MiB leaves an
// order of magnitude of headroom while still rejecting a garbage length
// field (which would otherwise make the decoder buffer gigabytes).
inline constexpr std::size_t kDefaultMaxPayload = std::size_t{1} << 24;

enum class FrameType : std::uint8_t {
  kPing = 1,
  kPong = 2,
  kSolveRequest = 3,
  kSolveResponse = 4,
  kShed = 5,
  kError = 6,
};

// Why a request was refused. Mirrors the serving layer's two shed points
// plus shutdown: the admission bound and the queue bound both surface here
// as an explicit frame instead of a silently missing response.
enum class ShedReason : std::uint32_t {
  kAdmission = 1,  // deadline admission control refused it
  kQueueFull = 2,  // bounded MPMC queue was full
  kStopping = 3,   // server is shutting down
};

enum class ErrorCode : std::uint32_t {
  kMalformed = 1,       // frame failed to decode; connection is closing
  kBadDemandCount = 2,  // well-formed request, wrong demand count for the
                        // served problem; connection stays usable
  kUnsupportedType = 3, // valid header, but a type this peer never handles
  kUnknownTenant = 4,   // no such tenant in the fleet; connection stays usable
  kInternal = 5,        // server-side failure (e.g. every replica died before
                        // the request could be solved); connection stays usable
};

struct Frame {
  FrameType type = FrameType::kPing;
  std::uint32_t request_id = 0;
  std::vector<std::uint8_t> payload;
};

// --- encoders (append to `out`, never clear it) ------------------------------

void encode_ping(std::vector<std::uint8_t>& out, std::uint32_t request_id);
void encode_pong(std::vector<std::uint8_t>& out, std::uint32_t request_id);
// `tenant` selects the fleet tenant ("" = the server's default tenant).
void encode_solve_request(std::vector<std::uint8_t>& out, std::uint32_t request_id,
                          const te::TrafficMatrix& tm, const std::string& tenant = "");
void encode_solve_response(std::vector<std::uint8_t>& out, std::uint32_t request_id,
                           const te::Allocation& alloc, double solve_seconds);
void encode_shed(std::vector<std::uint8_t>& out, std::uint32_t request_id,
                 ShedReason reason);
void encode_error(std::vector<std::uint8_t>& out, std::uint32_t request_id,
                  ErrorCode code, const std::string& message);

// --- payload parsers ---------------------------------------------------------
// Each returns false unless the payload is exactly the advertised shape
// (declared counts consistent with the byte length — no trailing junk, no
// reading past the end). Outputs are only valid on true.

bool parse_solve_request(const std::vector<std::uint8_t>& payload, te::TrafficMatrix& tm,
                         std::string& tenant);
bool parse_solve_response(const std::vector<std::uint8_t>& payload, te::Allocation& alloc,
                          double& solve_seconds);
bool parse_shed(const std::vector<std::uint8_t>& payload, ShedReason& reason);
bool parse_error(const std::vector<std::uint8_t>& payload, ErrorCode& code,
                 std::string& message);

// --- incremental decoder -----------------------------------------------------

enum class DecodeStatus {
  kFrame,     // `out` holds one complete frame
  kNeedMore,  // not enough bytes buffered yet
  kMalformed, // protocol violation; decoder is poisoned, see error()
};

// Reassembles frames from an arbitrary byte stream: feed() whatever the
// transport produced (any split, including one byte at a time), then call
// next() until it stops returning kFrame. Malformed input is detected as
// early as the buffered bytes allow and is sticky.
class FrameDecoder {
 public:
  explicit FrameDecoder(std::size_t max_payload = kDefaultMaxPayload)
      : max_payload_(max_payload) {}

  void feed(const void* data, std::size_t n);
  DecodeStatus next(Frame& out);

  bool poisoned() const { return poisoned_; }
  const std::string& error() const { return error_; }
  std::size_t buffered() const { return buf_.size() - pos_; }

 private:
  std::vector<std::uint8_t> buf_;
  std::size_t pos_ = 0;  // consumed prefix, compacted in feed()
  std::size_t max_payload_;
  bool poisoned_ = false;
  std::string error_;
};

const char* frame_type_name(FrameType t);

}  // namespace teal::net
