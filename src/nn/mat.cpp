// Kernel implementations for both element types. Precision discipline:
//  * T = double — strictly ordered arithmetic, identical to the seed
//    implementation under every build flag. TEAL_SIMD may vectorize the
//    *elementwise* loops (order-independent per element, so still
//    bit-identical) but never the reductions.
//  * T = float  — the f32 inference path. Under TEAL_SIMD its dot-product
//    reduction reassociates across 8 partial accumulators (vector lanes),
//    which is what buys the batched linear-forward speedup recorded in the
//    EXPERIMENTS.md Precision/SIMD ledger.
#include "nn/mat.h"

#include <algorithm>
#include <cmath>

#include "util/thread_pool.h"

#if defined(TEAL_SIMD)
#define TEAL_PRAGMA(x) _Pragma(#x)
#define TEAL_SIMD_LOOP TEAL_PRAGMA(omp simd)
#define TEAL_SIMD_REDUCE(var) TEAL_PRAGMA(omp simd reduction(+ : var))
#else
#define TEAL_SIMD_LOOP
#define TEAL_SIMD_REDUCE(var)
#endif

namespace teal::nn {

bool simd_enabled() {
#if defined(TEAL_SIMD)
  return true;
#else
  return false;
#endif
}

bool debug_mat_enabled() {
#ifdef TEAL_DEBUG_MAT
  return true;
#else
  return false;
#endif
}

namespace {
// Rows below this threshold are processed inline; above it, through the pool.
constexpr int kParallelRows = 512;

template <typename F>
void for_rows(int n, F&& body) {
  if (n >= kParallelRows) {
    util::ThreadPool::global().parallel_chunks(
        static_cast<std::size_t>(n), [&](std::size_t b, std::size_t e) {
          for (std::size_t r = b; r < e; ++r) body(static_cast<int>(r));
        });
  } else {
    for (int r = 0; r < n; ++r) body(r);
  }
}

// Dot product with the bias as the accumulation seed. The double overload is
// the strictly ordered reference (seed-identical bits); the float overload
// may reassociate into vector lanes under TEAL_SIMD — the narrowed path
// trades bit-stability for throughput, which is exactly the paper's fp32
// inference contract.
inline double row_dot(const double* a, const double* b, int n, double seed) {
  double acc = seed;
  for (int i = 0; i < n; ++i) acc += a[i] * b[i];
  return acc;
}

inline float row_dot(const float* a, const float* b, int n, float seed) {
#if defined(TEAL_SIMD)
  constexpr int kLanes = 8;  // partial accumulators, 4-8 wide per the vector unit
  if (n >= 2 * kLanes) {
    float lanes[kLanes] = {};
    int i = 0;
    for (; i + kLanes <= n; i += kLanes) {
      TEAL_SIMD_LOOP
      for (int l = 0; l < kLanes; ++l) lanes[l] += a[i + l] * b[i + l];
    }
    float acc = seed;
    for (; i < n; ++i) acc += a[i] * b[i];
    for (int l = 0; l < kLanes; ++l) acc += lanes[l];
    return acc;
  }
  float acc = seed;
  TEAL_SIMD_REDUCE(acc)
  for (int i = 0; i < n; ++i) acc += a[i] * b[i];
  return acc;
#else
  float acc = seed;
  for (int i = 0; i < n; ++i) acc += a[i] * b[i];
  return acc;
#endif
}

// Shared row body of linear_forward / linear_forward_rows: identical
// arithmetic keeps full and row-range calls bit-identical.
template <typename T>
inline void linear_row(const BasicMat<T>& x, const BasicMat<T>& w, std::span<const std::type_identity_t<T>> b,
                       BasicMat<T>& y, int r) {
  const int in = x.cols(), out = w.rows();
  const T* xr = x.row_ptr(r);
  T* yr = y.row_ptr(r);
  for (int o = 0; o < out; ++o) {
    yr[o] = row_dot(xr, w.row_ptr(o), in, b[static_cast<std::size_t>(o)]);
  }
}
}  // namespace

template <typename T>
void linear_forward(const BasicMat<T>& x, const BasicMat<T>& w, std::span<const std::type_identity_t<T>> b,
                    BasicMat<T>& y) {
  const int n = x.rows(), in = x.cols(), out = w.rows();
  if (w.cols() != in) throw std::invalid_argument("linear_forward: shape mismatch");
  if (static_cast<int>(b.size()) != out) throw std::invalid_argument("linear_forward: bias");
  y.resize(n, out);
  for_rows(n, [&](int r) { linear_row(x, w, b, y, r); });
}

template <typename T>
void linear_forward_rows(const BasicMat<T>& x, const BasicMat<T>& w, std::span<const std::type_identity_t<T>> b,
                         BasicMat<T>& y, int row_begin, int row_end) {
  if (w.cols() != x.cols()) throw std::invalid_argument("linear_forward_rows: shape");
  if (y.rows() != x.rows() || y.cols() != w.rows()) {
    throw std::invalid_argument("linear_forward_rows: y must be pre-sized");
  }
  for (int r = row_begin; r < row_end; ++r) linear_row(x, w, b, y, r);
}

void linear_backward(const Mat& x, const Mat& w, const Mat& gy, Mat& gx, Mat& gw,
                     std::span<double> gb) {
  const int n = x.rows(), in = x.cols(), out = w.rows();
  if (gy.rows() != n || gy.cols() != out) {
    throw std::invalid_argument("linear_backward: gy shape");
  }
  gx.resize(n, in);
  gx.zero();
  for_rows(n, [&](int r) {
    const double* gyr = gy.row_ptr(r);
    double* gxr = gx.row_ptr(r);
    for (int o = 0; o < out; ++o) {
      const double* wr = w.row_ptr(o);
      const double g = gyr[o];
      if (g == 0.0) continue;
      for (int i = 0; i < in; ++i) gxr[i] += g * wr[i];
    }
  });
  // Parameter grads accumulate sequentially (they are small: out x in).
  for (int r = 0; r < n; ++r) {
    const double* xr = x.row_ptr(r);
    const double* gyr = gy.row_ptr(r);
    for (int o = 0; o < out; ++o) {
      const double g = gyr[o];
      if (g == 0.0) continue;
      double* gwr = gw.row_ptr(o);
      for (int i = 0; i < in; ++i) gwr[i] += g * xr[i];
      gb[static_cast<std::size_t>(o)] += g;
    }
  }
}

template <typename T>
void leaky_relu_forward(const BasicMat<T>& x, BasicMat<T>& y, double alpha) {
  y.resize(x.rows(), x.cols());
  const T a = static_cast<T>(alpha);
  const T* xs = x.data().data();
  T* ys = y.data().data();
  const std::size_t sz = x.size();
  // Elementwise: vector lanes never reassociate anything, so the pragma is
  // bit-safe for both element types.
  TEAL_SIMD_LOOP
  for (std::size_t i = 0; i < sz; ++i) {
    ys[i] = xs[i] >= T(0) ? xs[i] : a * xs[i];
  }
}

template <typename T>
void leaky_relu_forward_rows(const BasicMat<T>& x, BasicMat<T>& y, int row_begin,
                             int row_end, double alpha) {
  if (!y.same_shape(x)) throw std::invalid_argument("leaky_relu_forward_rows: y shape");
  const int c = x.cols();
  const T a = static_cast<T>(alpha);
  for (int r = row_begin; r < row_end; ++r) {
    const T* xr = x.row_ptr(r);
    T* yr = y.row_ptr(r);
    TEAL_SIMD_LOOP
    for (int i = 0; i < c; ++i) yr[i] = xr[i] >= T(0) ? xr[i] : a * xr[i];
  }
}

void leaky_relu_backward(const Mat& x_pre, const Mat& gy, Mat& gx, double alpha) {
  gx.resize(x_pre.rows(), x_pre.cols());
  const auto& xs = x_pre.data();
  const auto& gs = gy.data();
  auto& os = gx.data();
  for (std::size_t i = 0; i < xs.size(); ++i) {
    os[i] = xs[i] >= 0.0 ? gs[i] : alpha * gs[i];
  }
}

namespace {
template <typename T>
inline void softmax_row(const BasicMat<T>& logits, const BasicMat<T>& mask,
                        BasicMat<T>& probs, bool has_mask, int r) {
  const int k = logits.cols();
  const T* lr = logits.row_ptr(r);
  T* pr = probs.row_ptr(r);
  T mx = std::numeric_limits<T>::lowest();
  for (int c = 0; c < k; ++c) {
    if (!has_mask || mask.at(r, c) != T(0)) mx = std::max(mx, lr[c]);
  }
  T denom = T(0);
  for (int c = 0; c < k; ++c) {
    if (!has_mask || mask.at(r, c) != T(0)) {
      pr[c] = std::exp(lr[c] - mx);
      denom += pr[c];
    } else {
      pr[c] = T(0);
    }
  }
  if (denom > T(0)) {
    // Elementwise normalization: per-element division is correctly rounded
    // regardless of vector width, so the pragma is bit-safe for both types.
    TEAL_SIMD_LOOP
    for (int c = 0; c < k; ++c) pr[c] /= denom;
  }
}
}  // namespace

template <typename T>
void softmax_rows(const BasicMat<T>& logits, const BasicMat<T>& mask, BasicMat<T>& probs) {
  const int n = logits.rows(), k = logits.cols();
  const bool has_mask = !mask.empty();
  probs.resize(n, k);
  for_rows(n, [&](int r) { softmax_row(logits, mask, probs, has_mask, r); });
}

template <typename T>
void softmax_rows_range(const BasicMat<T>& logits, const BasicMat<T>& mask,
                        BasicMat<T>& probs, int row_begin, int row_end) {
  if (!probs.same_shape(logits)) {
    throw std::invalid_argument("softmax_rows_range: probs must be pre-sized");
  }
  const bool has_mask = !mask.empty();
  for (int r = row_begin; r < row_end; ++r) softmax_row(logits, mask, probs, has_mask, r);
}

void softmax_rows_backward(const Mat& probs, const Mat& gy, Mat& gx) {
  const int n = probs.rows(), k = probs.cols();
  gx.resize(n, k);
  for_rows(n, [&](int r) {
    const double* pr = probs.row_ptr(r);
    const double* gr = gy.row_ptr(r);
    double* xr = gx.row_ptr(r);
    double dotpg = 0.0;
    for (int c = 0; c < k; ++c) dotpg += pr[c] * gr[c];
    for (int c = 0; c < k; ++c) xr[c] = pr[c] * (gr[c] - dotpg);
  });
}

// Explicit instantiations: the reference f64 kernels and the f32 inference
// mirrors. Declarations in mat.h resolve against these.
template void linear_forward<double>(const Mat&, const Mat&, std::span<const double>, Mat&);
template void linear_forward<float>(const MatF&, const MatF&, std::span<const float>, MatF&);
template void linear_forward_rows<double>(const Mat&, const Mat&, std::span<const double>,
                                          Mat&, int, int);
template void linear_forward_rows<float>(const MatF&, const MatF&, std::span<const float>,
                                         MatF&, int, int);
template void leaky_relu_forward<double>(const Mat&, Mat&, double);
template void leaky_relu_forward<float>(const MatF&, MatF&, double);
template void leaky_relu_forward_rows<double>(const Mat&, Mat&, int, int, double);
template void leaky_relu_forward_rows<float>(const MatF&, MatF&, int, int, double);
template void softmax_rows<double>(const Mat&, const Mat&, Mat&);
template void softmax_rows<float>(const MatF&, const MatF&, MatF&);
template void softmax_rows_range<double>(const Mat&, const Mat&, Mat&, int, int);
template void softmax_rows_range<float>(const MatF&, const MatF&, MatF&, int, int);

}  // namespace teal::nn
