#include "nn/mat.h"

#include <algorithm>
#include <cmath>

#include "util/thread_pool.h"

namespace teal::nn {

namespace {
// Rows below this threshold are processed inline; above it, through the pool.
constexpr int kParallelRows = 512;

template <typename F>
void for_rows(int n, F&& body) {
  if (n >= kParallelRows) {
    util::ThreadPool::global().parallel_chunks(
        static_cast<std::size_t>(n), [&](std::size_t b, std::size_t e) {
          for (std::size_t r = b; r < e; ++r) body(static_cast<int>(r));
        });
  } else {
    for (int r = 0; r < n; ++r) body(r);
  }
}
}  // namespace

namespace {
// Shared row body of linear_forward / linear_forward_rows: identical
// arithmetic keeps full and row-range calls bit-identical.
inline void linear_row(const Mat& x, const Mat& w, const std::vector<double>& b, Mat& y,
                       int r) {
  const int in = x.cols(), out = w.rows();
  const double* xr = x.row_ptr(r);
  double* yr = y.row_ptr(r);
  for (int o = 0; o < out; ++o) {
    const double* wr = w.row_ptr(o);
    double acc = b[static_cast<std::size_t>(o)];
    for (int i = 0; i < in; ++i) acc += xr[i] * wr[i];
    yr[o] = acc;
  }
}
}  // namespace

void linear_forward(const Mat& x, const Mat& w, const std::vector<double>& b, Mat& y) {
  const int n = x.rows(), in = x.cols(), out = w.rows();
  if (w.cols() != in) throw std::invalid_argument("linear_forward: shape mismatch");
  if (static_cast<int>(b.size()) != out) throw std::invalid_argument("linear_forward: bias");
  y.resize(n, out);
  for_rows(n, [&](int r) { linear_row(x, w, b, y, r); });
}

void linear_forward_rows(const Mat& x, const Mat& w, const std::vector<double>& b, Mat& y,
                         int row_begin, int row_end) {
  if (w.cols() != x.cols()) throw std::invalid_argument("linear_forward_rows: shape");
  if (y.rows() != x.rows() || y.cols() != w.rows()) {
    throw std::invalid_argument("linear_forward_rows: y must be pre-sized");
  }
  for (int r = row_begin; r < row_end; ++r) linear_row(x, w, b, y, r);
}

void linear_backward(const Mat& x, const Mat& w, const Mat& gy, Mat& gx, Mat& gw,
                     std::vector<double>& gb) {
  const int n = x.rows(), in = x.cols(), out = w.rows();
  if (gy.rows() != n || gy.cols() != out) {
    throw std::invalid_argument("linear_backward: gy shape");
  }
  gx.resize(n, in);
  gx.zero();
  for_rows(n, [&](int r) {
    const double* gyr = gy.row_ptr(r);
    double* gxr = gx.row_ptr(r);
    for (int o = 0; o < out; ++o) {
      const double* wr = w.row_ptr(o);
      const double g = gyr[o];
      if (g == 0.0) continue;
      for (int i = 0; i < in; ++i) gxr[i] += g * wr[i];
    }
  });
  // Parameter grads accumulate sequentially (they are small: out x in).
  for (int r = 0; r < n; ++r) {
    const double* xr = x.row_ptr(r);
    const double* gyr = gy.row_ptr(r);
    for (int o = 0; o < out; ++o) {
      const double g = gyr[o];
      if (g == 0.0) continue;
      double* gwr = gw.row_ptr(o);
      for (int i = 0; i < in; ++i) gwr[i] += g * xr[i];
      gb[static_cast<std::size_t>(o)] += g;
    }
  }
}

void leaky_relu_forward(const Mat& x, Mat& y, double alpha) {
  y.resize(x.rows(), x.cols());
  const auto& xs = x.data();
  auto& ys = y.data();
  for (std::size_t i = 0; i < xs.size(); ++i) {
    ys[i] = xs[i] >= 0.0 ? xs[i] : alpha * xs[i];
  }
}

void leaky_relu_forward_rows(const Mat& x, Mat& y, int row_begin, int row_end,
                             double alpha) {
  if (!y.same_shape(x)) throw std::invalid_argument("leaky_relu_forward_rows: y shape");
  const int c = x.cols();
  for (int r = row_begin; r < row_end; ++r) {
    const double* xr = x.row_ptr(r);
    double* yr = y.row_ptr(r);
    for (int i = 0; i < c; ++i) yr[i] = xr[i] >= 0.0 ? xr[i] : alpha * xr[i];
  }
}

void leaky_relu_backward(const Mat& x_pre, const Mat& gy, Mat& gx, double alpha) {
  gx.resize(x_pre.rows(), x_pre.cols());
  const auto& xs = x_pre.data();
  const auto& gs = gy.data();
  auto& os = gx.data();
  for (std::size_t i = 0; i < xs.size(); ++i) {
    os[i] = xs[i] >= 0.0 ? gs[i] : alpha * gs[i];
  }
}

namespace {
inline void softmax_row(const Mat& logits, const Mat& mask, Mat& probs, bool has_mask,
                        int r) {
  const int k = logits.cols();
  const double* lr = logits.row_ptr(r);
  double* pr = probs.row_ptr(r);
  double mx = -1e300;
  for (int c = 0; c < k; ++c) {
    if (!has_mask || mask.at(r, c) != 0.0) mx = std::max(mx, lr[c]);
  }
  double denom = 0.0;
  for (int c = 0; c < k; ++c) {
    if (!has_mask || mask.at(r, c) != 0.0) {
      pr[c] = std::exp(lr[c] - mx);
      denom += pr[c];
    } else {
      pr[c] = 0.0;
    }
  }
  if (denom > 0.0) {
    for (int c = 0; c < k; ++c) pr[c] /= denom;
  }
}
}  // namespace

void softmax_rows(const Mat& logits, const Mat& mask, Mat& probs) {
  const int n = logits.rows(), k = logits.cols();
  const bool has_mask = !mask.empty();
  probs.resize(n, k);
  for_rows(n, [&](int r) { softmax_row(logits, mask, probs, has_mask, r); });
}

void softmax_rows_range(const Mat& logits, const Mat& mask, Mat& probs, int row_begin,
                        int row_end) {
  if (!probs.same_shape(logits)) {
    throw std::invalid_argument("softmax_rows_range: probs must be pre-sized");
  }
  const bool has_mask = !mask.empty();
  for (int r = row_begin; r < row_end; ++r) softmax_row(logits, mask, probs, has_mask, r);
}

void softmax_rows_backward(const Mat& probs, const Mat& gy, Mat& gx) {
  const int n = probs.rows(), k = probs.cols();
  gx.resize(n, k);
  for_rows(n, [&](int r) {
    const double* pr = probs.row_ptr(r);
    const double* gr = gy.row_ptr(r);
    double* xr = gx.row_ptr(r);
    double dotpg = 0.0;
    for (int c = 0; c < k; ++c) dotpg += pr[c] * gr[c];
    for (int c = 0; c < k; ++c) xr[c] = pr[c] * (gr[c] - dotpg);
  });
}

}  // namespace teal::nn
