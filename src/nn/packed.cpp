// Blocked-panel kernels for the narrowed forward (see packed.h for the
// layout and the precision discipline). The inner loop broadcasts one input
// value across a kLanes-wide output vector — unit-stride loads and stores,
// no horizontal reductions — which is what lets the f32 path vectorize past
// the dot-product kernels on the GNN's short input spans. Accumulation per
// output neuron stays single-accumulator, ascending-input-order, so the
// result is row-partition invariant and matches the strictly ordered scalar
// f32 arithmetic.
#include "nn/packed.h"

#include <algorithm>
#include <stdexcept>

#if defined(TEAL_SIMD)
#define TEAL_PACKED_PRAGMA(x) _Pragma(#x)
#define TEAL_PACKED_SIMD TEAL_PACKED_PRAGMA(omp simd)
#else
#define TEAL_PACKED_SIMD
#endif

// Runtime ISA dispatch for the blocked drivers (SIMD builds only): the
// translation unit is compiled for the portable baseline, and target_clones
// re-specializes the driver — with the panel kernel inlined into each clone
// — for wider vector units, picked via ifunc at first call. The blocked
// layout is what makes the width usable (a full lane vector of independent
// outputs, no horizontal reductions), so unlike the dot-product kernels it
// actually scales with the clone's lane count. f32/bf16 only: the clones may
// contract mul+add to FMA, which changes rounding but not the ascending-i
// accumulation order, so the shard bit-identity contract is untouched —
// results stay identical across shard counts and repeat runs on one machine,
// and may differ across ISAs exactly like any narrowed result under a
// different build flag. The f64 path never enters this file. Scalar
// (TEAL_SIMD=OFF) builds keep the single portable body.
#if defined(TEAL_SIMD) && defined(__x86_64__) && defined(__GNUC__) && !defined(__clang__)
#define TEAL_PACKED_CLONES \
  __attribute__((target_clones("default", "avx2", "arch=x86-64-v4")))
#else
#define TEAL_PACKED_CLONES
#endif

namespace teal::nn {

namespace {

inline float widen(float v) { return v; }
inline float widen(bf16 v) { return f32_from_bf16(v); }

template <typename W>
void pack_weights_impl(const MatF& w, PackedMat<W>& dst) {
  const int out = w.rows(), in = w.cols();
  dst.resize(out, in);
  constexpr int L = PackedMat<W>::kLanes;
  for (int p = 0; p < dst.panels(); ++p) {
    W* panel = dst.panel_ptr(p);
    for (int i = 0; i < in; ++i) {
      for (int l = 0; l < L; ++l) {
        const int o = p * L + l;
        const float v = o < out ? w.at(o, i) : 0.0f;  // zero the padding lanes
        if constexpr (std::is_same_v<W, bf16>) {
          panel[static_cast<std::size_t>(i) * L + l] = bf16_from_f32(v);
        } else {
          panel[static_cast<std::size_t>(i) * L + l] = v;
        }
      }
    }
  }
}

#if defined(__GNUC__)
#define TEAL_PACKED_VECEXT 1
// One panel lane-vector as a compiler vector type: lane count fixed at
// PackedMat::kLanes (8). The vector extension guarantees the RB accumulator
// vectors live in registers across the inner loop (the plain-array kernel
// below spills them to the stack every iteration), and each target_clones
// clone lowers the same ops at its own ISA width — SSE2 splits a vf8 into
// two XMM ops, AVX2/v4 use one YMM with FMA.
typedef float vf8 __attribute__((vector_size(32)));
typedef std::uint16_t vu16x8 __attribute__((vector_size(16)));
typedef std::uint32_t vu32x8 __attribute__((vector_size(32)));

inline vf8 load_lanes(const float* p) {
  vf8 v;
  __builtin_memcpy(&v, p, sizeof(v));
  return v;
}
// bf16 widening: zero-extend the 8 stored half-words to 32 bits and shift
// into the high half — exactly bf16_from_f32's inverse, vectorized.
inline vf8 load_lanes(const bf16* p) {
  vu16x8 h;
  __builtin_memcpy(&h, p, sizeof(h));
  vu32x8 u = __builtin_convertvector(h, vu32x8) << 16;
  vf8 v;
  __builtin_memcpy(&v, &u, sizeof(v));
  return v;
}
#endif

// One block of up to four rows across every panel. The row block is the
// outer tile: its RB input rows (a few hundred bytes) and the whole panel
// set (a few KB for this repo's layer shapes) stay L1-resident while the
// block runs, so `x` streams through the kernel exactly once — panels-outer
// ordering would re-read all of `x` once per panel. Register-blocking the
// rows amortizes the panel loads (and, for bf16, the widening) across RB
// accumulator sets.
template <typename W, int RB>
inline void panel_rows(const MatF& x, const PackedMat<W>& w, std::span<const float> b,
                       MatF& y, int in, int out, int r) {
  constexpr int L = PackedMat<W>::kLanes;
  const float* xr[RB];
  for (int j = 0; j < RB; ++j) xr[j] = x.row_ptr(r + j);
  for (int p = 0; p < w.panels(); ++p) {
    const W* panel = w.panel_ptr(p);
    const int o0 = p * L;
    const int o_count = std::min(L, out - o0);
#if defined(TEAL_PACKED_VECEXT)
    static_assert(L == 8, "vector kernel is written for 8-lane panels");
    vf8 binit;
    for (int l = 0; l < L; ++l) binit[l] = l < o_count ? b[static_cast<std::size_t>(o0 + l)] : 0.0f;
    vf8 acc[RB];
    for (int j = 0; j < RB; ++j) acc[j] = binit;
    for (int i = 0; i < in; ++i) {
      const vf8 wv = load_lanes(panel + static_cast<std::size_t>(i) * L);
      for (int j = 0; j < RB; ++j) acc[j] += xr[j][i] * wv;
    }
    for (int j = 0; j < RB; ++j) {
      float* yr = y.row_ptr(r + j) + o0;
      if (o_count == L) {
        __builtin_memcpy(yr, &acc[j], sizeof(vf8));
      } else {
        for (int l = 0; l < o_count; ++l) yr[l] = acc[j][l];
      }
    }
#else
    float acc[RB][L];
    for (int j = 0; j < RB; ++j) {
      for (int l = 0; l < L; ++l) acc[j][l] = l < o_count ? b[static_cast<std::size_t>(o0 + l)] : 0.0f;
    }
    for (int i = 0; i < in; ++i) {
      const W* wv = panel + static_cast<std::size_t>(i) * L;
      float wf[L];
      TEAL_PACKED_SIMD
      for (int l = 0; l < L; ++l) wf[l] = widen(wv[l]);
      for (int j = 0; j < RB; ++j) {
        const float v = xr[j][i];
        TEAL_PACKED_SIMD
        for (int l = 0; l < L; ++l) acc[j][l] += v * wf[l];
      }
    }
    for (int j = 0; j < RB; ++j) {
      float* yr = y.row_ptr(r + j) + o0;
      for (int l = 0; l < o_count; ++l) yr[l] = acc[j][l];
    }
#endif
  }
}

// Non-template clone targets (target_clones cannot attach to templates):
// the templated body inlines into each clone, so every loop recompiles at
// the clone's vector width.
template <typename W>
inline void forward_rows_body(const MatF& x, const PackedMat<W>& w, std::span<const float> b,
                              MatF& y, int row_begin, int row_end) {
  const int in = x.cols(), out = w.rows();
  int r = row_begin;
  for (; r + 4 <= row_end; r += 4) panel_rows<W, 4>(x, w, b, y, in, out, r);
  for (; r < row_end; ++r) panel_rows<W, 1>(x, w, b, y, in, out, r);
}

TEAL_PACKED_CLONES
void forward_rows_f32(const MatF& x, const PackedMatF& w, std::span<const float> b, MatF& y,
                      int row_begin, int row_end) {
  forward_rows_body<float>(x, w, b, y, row_begin, row_end);
}

TEAL_PACKED_CLONES
void forward_rows_bf16(const MatF& x, const PackedMatBf16& w, std::span<const float> b,
                       MatF& y, int row_begin, int row_end) {
  forward_rows_body<bf16>(x, w, b, y, row_begin, row_end);
}

}  // namespace

void pack_weights(const MatF& w, PackedMatF& dst) { pack_weights_impl(w, dst); }
void pack_weights(const MatF& w, PackedMatBf16& dst) { pack_weights_impl(w, dst); }

template <typename W>
void linear_forward_rows_blocked(const MatF& x, const PackedMat<W>& w,
                                 std::span<const float> b, MatF& y, int row_begin,
                                 int row_end) {
  const int in = x.cols(), out = w.rows();
  if (w.cols() != in) {
    throw std::invalid_argument("linear_forward_rows_blocked: shape mismatch");
  }
  if (static_cast<int>(b.size()) != out) {
    throw std::invalid_argument("linear_forward_rows_blocked: bias");
  }
  if (y.rows() != x.rows() || y.cols() != out) {
    throw std::invalid_argument("linear_forward_rows_blocked: y must be pre-sized");
  }
  if constexpr (std::is_same_v<W, bf16>) {
    forward_rows_bf16(x, w, b, y, row_begin, row_end);
  } else {
    forward_rows_f32(x, w, b, y, row_begin, row_end);
  }
}

template <typename W>
void linear_forward_blocked(const MatF& x, const PackedMat<W>& w, std::span<const float> b,
                            MatF& y) {
  y.resize(x.rows(), w.rows());
  linear_forward_rows_blocked(x, w, b, y, 0, x.rows());
}

template void linear_forward_rows_blocked<float>(const MatF&, const PackedMatF&,
                                                 std::span<const float>, MatF&, int, int);
template void linear_forward_rows_blocked<bf16>(const MatF&, const PackedMatBf16&,
                                                std::span<const float>, MatF&, int, int);
template void linear_forward_blocked<float>(const MatF&, const PackedMatF&,
                                            std::span<const float>, MatF&);
template void linear_forward_blocked<bf16>(const MatF&, const PackedMatBf16&,
                                           std::span<const float>, MatF&);

}  // namespace teal::nn
