// packed.h — blocked, lane-aligned weight panels for the narrowed forward.
//
// The row-major kernels in mat.h compute each output neuron as a dot product
// along the *input* dimension. For this repo's layer shapes (in <= 24) that
// wastes the vector unit: every dot ends in a horizontal reduction, and the
// 8-accumulator trick (mat.cpp row_dot) only pays off when the input span is
// long. The blocked layout turns the problem sideways: weights are stored as
// column-blocked panels of kPanelLanes consecutive *outputs* per input
// column, so the inner loop broadcasts one input value and FMAs it into a
// unit-stride lane vector — no gathers, no horizontal sums, and every store
// is contiguous. This is the standard GEMM micro-kernel layout (panel-packed
// B), scaled down to the GNN's tiny dense layers.
//
// Precision discipline (DESIGN.md "Blocked layouts & reduced precision"):
// the blocked kernels exist only for the narrowed inference paths. Per
// output neuron the accumulation still runs in ascending input order with a
// single f32 accumulator, so any row partition of a blocked kernel is
// bit-identical to any other (the shard contract), and the result matches
// the strictly ordered scalar f32 kernel — the reassociation freedom f32 is
// allowed is *not* exercised along the reduction, only across independent
// outputs. The f64 reference path never touches this file.
//
// bf16 is a *storage* format here, not a compute format: weights are
// narrowed f32 -> bf16 with round-to-nearest-even at snapshot time and
// widened back to f32 (an exact operation — bf16 is f32 with the low 16
// mantissa bits dropped) inside the kernel, so activations, bias and every
// accumulation stay f32. This halves the weight working set the inner loop
// streams; the rounding cost is bounded by the per-topology error ledger
// (tests/precision_test.cpp, EXPERIMENTS.md).
#pragma once

#include <bit>
#include <cstdint>
#include <span>
#include <type_traits>

#include "nn/mat.h"
#include "util/arena.h"

namespace teal::nn {

// Storage-only bfloat16: the top 16 bits of an IEEE-754 binary32.
struct bf16 {
  std::uint16_t bits = 0;
};

// A signaling-NaN bf16 pattern (exponent all ones, quiet bit clear, payload
// nonzero): widened to f32 it is a signaling NaN, so the TEAL_DEBUG_MAT
// poison contract carries through the storage narrowing.
inline constexpr bf16 kBf16SignalingNaN{0x7F81};

// f32 -> bf16 with round-to-nearest-even on the dropped 16 mantissa bits.
// NaNs map to a canonical quiet NaN (the integer rounding add would
// otherwise carry a NaN payload into the exponent, turning NaN into inf).
inline bf16 bf16_from_f32(float f) {
  std::uint32_t u = std::bit_cast<std::uint32_t>(f);
  if ((u & 0x7FFFFFFFu) > 0x7F800000u) {
    return bf16{static_cast<std::uint16_t>((u >> 16) | 0x7FC0u)};
  }
  u += 0x7FFFu + ((u >> 16) & 1u);
  return bf16{static_cast<std::uint16_t>(u >> 16)};
}

// bf16 -> f32 widening (exact).
inline float f32_from_bf16(bf16 h) {
  return std::bit_cast<float>(static_cast<std::uint32_t>(h.bits) << 16);
}

// Lane-width-padded, column-blocked weight panels for a logical (out, in)
// weight matrix. Panel p holds outputs [p*kLanes, (p+1)*kLanes): for each
// input column i, data[(p*in + i)*kLanes + l] is w(p*kLanes + l, i), with
// padding lanes (out..panels*kLanes) zero-filled by pack_weights so they
// contribute nothing and never read uninitialized memory. Storage is
// arena-aware (util::AVec) like BasicMat, so workspace-side panels honor the
// cold-start allocation contract; model-side weight snapshots simply land on
// the heap when no arena is bound.
template <typename W>
class PackedMat {
 public:
  static constexpr int kLanes = 8;  // panel width; matches mat.cpp's f32 lane count

  PackedMat() = default;

  int rows() const { return out_; }   // logical output count
  int cols() const { return in_; }    // logical input count
  int panels() const { return panels_; }
  bool empty() const { return v_.empty(); }

  // Reshapes for an (out, in) logical matrix. Element values are unspecified
  // afterwards (pack_weights overwrites everything, padding included); under
  // TEAL_DEBUG_MAT the buffer is poison-filled exactly like BasicMat::resize,
  // so a kernel run against an unpacked panel fails the suite loudly.
  void resize(int out, int in) {
    if (out < 0 || in < 0) throw std::invalid_argument("PackedMat: negative shape");
    out_ = out;
    in_ = in;
    panels_ = (out + kLanes - 1) / kLanes;
    v_.resize(static_cast<std::size_t>(panels_) * static_cast<std::size_t>(in) * kLanes);
#ifdef TEAL_DEBUG_MAT
    poison();
#endif
  }

  // Debug poison-fill (what resize() applies under TEAL_DEBUG_MAT).
  void poison() {
    for (W& w : v_) w = poison_value();
  }

  const W* panel_ptr(int p) const {
    return v_.data() + static_cast<std::size_t>(p) * static_cast<std::size_t>(in_) * kLanes;
  }
  W* panel_ptr(int p) {
    return v_.data() + static_cast<std::size_t>(p) * static_cast<std::size_t>(in_) * kLanes;
  }

  util::AVec<W>& data() { return v_; }
  const util::AVec<W>& data() const { return v_; }

 private:
  static W poison_value() {
    if constexpr (std::is_same_v<W, bf16>) {
      return kBf16SignalingNaN;
    } else {
      return std::numeric_limits<W>::signaling_NaN();
    }
  }

  int out_ = 0, in_ = 0, panels_ = 0;
  util::AVec<W> v_;
};

using PackedMatF = PackedMat<float>;
using PackedMatBf16 = PackedMat<bf16>;

// Packs a row-major (out, in) f32 weight matrix into panels, resizing `dst`
// and zero-filling the padding lanes. The bf16 overload narrows each weight
// with round-to-nearest-even (bf16_from_f32) as it packs.
void pack_weights(const MatF& w, PackedMatF& dst);
void pack_weights(const MatF& w, PackedMatBf16& dst);

// Blocked batched linear forward over rows [row_begin, row_end):
// y(r, .) = x(r, .) * Wᵀ + b, with W read from lane-blocked panels. `y` must
// be pre-sized to (x.rows(), w.rows()) by the caller (same contract as
// linear_forward_rows — resize must never run under a shard fan-out). Per
// row and output the arithmetic is identical regardless of the row range, so
// any row partition produces bit-identical results.
template <typename W>
void linear_forward_rows_blocked(const MatF& x, const PackedMat<W>& w,
                                 std::span<const float> b, MatF& y, int row_begin,
                                 int row_end);

// Convenience full-matrix variant: resizes `y` and runs every row (single
// caller thread — the solve path always enters through the rows variant
// under its own shard plan).
template <typename W>
void linear_forward_blocked(const MatF& x, const PackedMat<W>& w, std::span<const float> b,
                            MatF& y);

}  // namespace teal::nn
