// mat.h — dense row-major matrix, the tensor type of the NN substrate.
//
// The paper implements Teal in PyTorch on a GPU. The models involved are
// tiny (FlowGNN embeddings of <= 6 elements, a 24-neuron policy hidden
// layer); what the GPU buys is *batch* parallelism across tens of thousands
// of paths/demands. We reproduce that with plain matrices whose batched
// products are parallelized over rows via the global thread pool.
//
// The matrix is precision-parameterized: BasicMat<double> (alias Mat) is the
// reference type used everywhere results must be bit-stable — training, the
// ADMM fine-tune, the default solve path — while BasicMat<float> (alias
// MatF) carries the narrowed f32 inference forward, mirroring the paper's
// fp32 GPU inference. Every kernel below is instantiated for both element
// types; the f64 instantiation keeps strictly ordered arithmetic (so results
// are bit-identical whether or not TEAL_SIMD is enabled), whereas the f32
// instantiation may use reassociating vectorized reductions under TEAL_SIMD.
#pragma once

#include <cstddef>
#include <limits>
#include <span>
#include <stdexcept>
#include <vector>

#include "util/arena.h"

namespace teal::nn {

template <typename T>
class BasicMat {
 public:
  using value_type = T;
  // Arena-aware storage: an owned vector whose buffer comes from the
  // thread-bound util::Arena when one is live at (re)allocation time and from
  // the heap otherwise. The Mat's semantics are unchanged either way — the
  // arena only swaps *where* the bytes live, which is how the workspace
  // structs get O(1)-allocation cold starts without perturbing a single bit
  // of warm-path results.
  using storage_type = util::AVec<T>;

  BasicMat() = default;
  BasicMat(int rows, int cols, T fill = T(0))
      : rows_(rows), cols_(cols), v_(checked_size(rows, cols), fill) {}

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  std::size_t size() const { return v_.size(); }
  bool empty() const { return v_.empty(); }

  T& at(int r, int c) {
    return v_[static_cast<std::size_t>(r) * static_cast<std::size_t>(cols_) +
              static_cast<std::size_t>(c)];
  }
  T at(int r, int c) const {
    return v_[static_cast<std::size_t>(r) * static_cast<std::size_t>(cols_) +
              static_cast<std::size_t>(c)];
  }
  T* row_ptr(int r) {
    return v_.data() + static_cast<std::size_t>(r) * static_cast<std::size_t>(cols_);
  }
  const T* row_ptr(int r) const {
    return v_.data() + static_cast<std::size_t>(r) * static_cast<std::size_t>(cols_);
  }

  storage_type& data() { return v_; }
  const storage_type& data() const { return v_; }

  // Reshapes to (rows, cols), reusing the existing heap buffer whenever its
  // capacity suffices. Element values are unspecified afterwards — callers
  // either overwrite every entry or follow up with zero(). The workspace-based
  // solve path relies on this to keep repeated forward passes allocation-free.
  //
  // Under TEAL_DEBUG_MAT the "unspecified" contract is enforced: every resize
  // (including a warm same-shape one) poison-fills the buffer with signaling
  // NaNs, so any caller that reads an entry it did not write propagates NaN
  // into its outputs and fails the test suite instead of silently reusing
  // stale values.
  void resize(int rows, int cols) {
    const std::size_t n = checked_size(rows, cols);
    rows_ = rows;
    cols_ = cols;
    v_.resize(n);
#ifdef TEAL_DEBUG_MAT
    poison();
#endif
  }

  void zero() { std::fill(v_.begin(), v_.end(), T(0)); }

  // Debug poison-fill (what resize() applies under TEAL_DEBUG_MAT).
  void poison() {
    std::fill(v_.begin(), v_.end(), std::numeric_limits<T>::signaling_NaN());
  }

  bool same_shape(const BasicMat& o) const {
    return rows_ == o.rows_ && cols_ == o.cols_;
  }

 private:
  // Validates before any size arithmetic: a negative dimension must surface
  // as the documented invalid_argument, not as whatever std::vector throws
  // for the size_t-wrapped product.
  static std::size_t checked_size(int rows, int cols) {
    if (rows < 0 || cols < 0) throw std::invalid_argument("Mat: negative shape");
    return static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols);
  }

  int rows_ = 0, cols_ = 0;
  storage_type v_;
};

using Mat = BasicMat<double>;   // reference precision (training, ADMM, default solve)
using MatF = BasicMat<float>;   // narrowed f32 inference forward

// All kernels below write into caller-owned outputs via resize, so a warm
// output (same shape as the previous call) incurs no heap allocation.
// Outputs must not alias inputs. Each kernel is instantiated for double and
// float (mat.cpp); the double instantiation keeps seed-identical ordered
// arithmetic under every build flag.

// y = x * wT + b_broadcast : x is (n, in), w is (out, in), b is (out), y is (n, out).
// Parallelized over rows of x when n is large. Bias/grad-bias parameters are
// spans so both plain std::vectors and arena-backed Mat storage bind.
template <typename T>
void linear_forward(const BasicMat<T>& x, const BasicMat<T>& w, std::span<const std::type_identity_t<T>> b,
                    BasicMat<T>& y);

// Backward of the same: gx = gy * w ; gw += gyᵀ x ; gb += column sums of gy.
void linear_backward(const Mat& x, const Mat& w, const Mat& gy, Mat& gx, Mat& gw,
                     std::span<double> gb);

// LeakyReLU with slope alpha on negatives, elementwise; backward uses the
// *pre-activation* values.
template <typename T>
void leaky_relu_forward(const BasicMat<T>& x, BasicMat<T>& y, double alpha = 0.01);
void leaky_relu_backward(const Mat& x_pre, const Mat& gy, Mat& gx, double alpha = 0.01);

// Row-wise masked softmax: columns where mask(r, c) == 0 get probability 0.
// mask may be empty (= all valid). A fully-masked row yields an all-zero
// probability row — callers that feed the result to downstream consumers
// (ADMM) must guard that case at their boundary (core::check_policy_mask_rows).
template <typename T>
void softmax_rows(const BasicMat<T>& logits, const BasicMat<T>& mask, BasicMat<T>& probs);

// Row-range variants for demand-sharded callers (core::ShardPlan): compute
// only rows [row_begin, row_end) and require the output pre-sized by the
// caller — resize must never run concurrently. The per-row arithmetic is
// byte-for-byte the full kernel's, so any row partition produces
// bit-identical results (the shard-count invariance tests/shard_test.cpp
// verifies end to end).
template <typename T>
void linear_forward_rows(const BasicMat<T>& x, const BasicMat<T>& w, std::span<const std::type_identity_t<T>> b,
                         BasicMat<T>& y, int row_begin, int row_end);
template <typename T>
void leaky_relu_forward_rows(const BasicMat<T>& x, BasicMat<T>& y, int row_begin,
                             int row_end, double alpha = 0.01);
template <typename T>
void softmax_rows_range(const BasicMat<T>& logits, const BasicMat<T>& mask,
                        BasicMat<T>& probs, int row_begin, int row_end);

// Backward of row-wise softmax: gx(r,.) = (diag(p) - p pᵀ) gy(r,.).
void softmax_rows_backward(const Mat& probs, const Mat& gy, Mat& gx);

// True when this build vectorizes the f32 inner loops (TEAL_SIMD=ON).
// The f64 kernels stay strictly ordered either way.
bool simd_enabled();

// True when this build poison-fills BasicMat::resize (TEAL_DEBUG_MAT=ON).
bool debug_mat_enabled();

}  // namespace teal::nn
