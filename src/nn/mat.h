// mat.h — dense row-major matrix, the tensor type of the NN substrate.
//
// The paper implements Teal in PyTorch on a GPU. The models involved are
// tiny (FlowGNN embeddings of <= 6 elements, a 24-neuron policy hidden
// layer); what the GPU buys is *batch* parallelism across tens of thousands
// of paths/demands. We reproduce that with plain double matrices whose
// batched products are parallelized over rows via the global thread pool.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <vector>

namespace teal::nn {

class Mat {
 public:
  Mat() = default;
  Mat(int rows, int cols, double fill = 0.0)
      : rows_(rows), cols_(cols),
        v_(static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols), fill) {
    if (rows < 0 || cols < 0) throw std::invalid_argument("Mat: negative shape");
  }

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  std::size_t size() const { return v_.size(); }
  bool empty() const { return v_.empty(); }

  double& at(int r, int c) {
    return v_[static_cast<std::size_t>(r) * static_cast<std::size_t>(cols_) +
              static_cast<std::size_t>(c)];
  }
  double at(int r, int c) const {
    return v_[static_cast<std::size_t>(r) * static_cast<std::size_t>(cols_) +
              static_cast<std::size_t>(c)];
  }
  double* row_ptr(int r) {
    return v_.data() + static_cast<std::size_t>(r) * static_cast<std::size_t>(cols_);
  }
  const double* row_ptr(int r) const {
    return v_.data() + static_cast<std::size_t>(r) * static_cast<std::size_t>(cols_);
  }

  std::vector<double>& data() { return v_; }
  const std::vector<double>& data() const { return v_; }

  // Reshapes to (rows, cols), reusing the existing heap buffer whenever its
  // capacity suffices. Element values are unspecified afterwards — callers
  // either overwrite every entry or follow up with zero(). The workspace-based
  // solve path relies on this to keep repeated forward passes allocation-free.
  void resize(int rows, int cols) {
    if (rows < 0 || cols < 0) throw std::invalid_argument("Mat: negative shape");
    rows_ = rows;
    cols_ = cols;
    v_.resize(static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols));
  }

  void zero() { std::fill(v_.begin(), v_.end(), 0.0); }

  bool same_shape(const Mat& o) const { return rows_ == o.rows_ && cols_ == o.cols_; }

 private:
  int rows_ = 0, cols_ = 0;
  std::vector<double> v_;
};

// All kernels below write into caller-owned outputs via Mat::resize, so a
// warm output (same shape as the previous call) incurs no heap allocation.
// Outputs must not alias inputs.

// y = x * wT + b_broadcast : x is (n, in), w is (out, in), b is (out), y is (n, out).
// Parallelized over rows of x when n is large.
void linear_forward(const Mat& x, const Mat& w, const std::vector<double>& b, Mat& y);

// Backward of the same: gx = gy * w ; gw += gyᵀ x ; gb += column sums of gy.
void linear_backward(const Mat& x, const Mat& w, const Mat& gy, Mat& gx, Mat& gw,
                     std::vector<double>& gb);

// LeakyReLU with slope alpha on negatives, elementwise; backward uses the
// *pre-activation* values.
void leaky_relu_forward(const Mat& x, Mat& y, double alpha = 0.01);
void leaky_relu_backward(const Mat& x_pre, const Mat& gy, Mat& gx, double alpha = 0.01);

// Row-wise masked softmax: columns where mask(r, c) == 0 get probability 0.
// mask may be empty (= all valid).
void softmax_rows(const Mat& logits, const Mat& mask, Mat& probs);

// Row-range variants for demand-sharded callers (core::ShardPlan): compute
// only rows [row_begin, row_end) and require the output pre-sized by the
// caller — Mat::resize must never run concurrently. The per-row arithmetic
// is byte-for-byte the full kernel's, so any row partition produces
// bit-identical results (the shard-count invariance tests/shard_test.cpp
// verifies end to end).
void linear_forward_rows(const Mat& x, const Mat& w, const std::vector<double>& b, Mat& y,
                         int row_begin, int row_end);
void leaky_relu_forward_rows(const Mat& x, Mat& y, int row_begin, int row_end,
                             double alpha = 0.01);
void softmax_rows_range(const Mat& logits, const Mat& mask, Mat& probs, int row_begin,
                        int row_end);

// Backward of row-wise softmax: gx(r,.) = (diag(p) - p pᵀ) gy(r,.).
void softmax_rows_backward(const Mat& probs, const Mat& gy, Mat& gx);

}  // namespace teal::nn
