#include "nn/module.h"

#include <cmath>
#include <fstream>
#include <stdexcept>

namespace teal::nn {

void xavier_init(Mat& w, util::Rng& rng) {
  const double bound = std::sqrt(6.0 / static_cast<double>(w.rows() + w.cols()));
  for (double& x : w.data()) x = rng.uniform(-bound, bound);
}

Linear::Linear(int in, int out, util::Rng& rng) : weight_(out, in), bias_(1, out) {
  xavier_init(weight_.w, rng);
}

void Linear::forward(const Mat& x, Mat& y) const {
  linear_forward(x, weight_.w, bias_.w.data(), y);
}

void Linear::forward_rows(const Mat& x, Mat& y, int row_begin, int row_end) const {
  linear_forward_rows(x, weight_.w, bias_.w.data(), y, row_begin, row_end);
}

void Linear::backward(const Mat& x, const Mat& gy, Mat& gx) {
  linear_backward(x, weight_.w, gy, gx, weight_.g, bias_.g.data());
}

void Linear::backward_acc(const Mat& x, const Mat& gy, Mat& gx, Mat& gw, Mat& gb) const {
  linear_backward(x, weight_.w, gy, gx, gw, gb.data());
}

void GradAccum::prepare(const std::vector<Param*>& params) {
  if (g_.size() == params.size()) {
    bool match = true;
    for (std::size_t i = 0; i < g_.size(); ++i) {
      match = match && g_[i].same_shape(params[i]->g);
    }
    if (match) return;
  }
  g_.resize(params.size());
  refs_.resize(params.size());
  for (std::size_t i = 0; i < params.size(); ++i) {
    g_[i].resize(params[i]->g.rows(), params[i]->g.cols());
    g_[i].zero();
    refs_[i] = &g_[i];
  }
}

void GradAccum::zero() {
  for (Mat& m : g_) m.zero();
}

void GradAccum::reduce_into(const std::vector<Param*>& params) const {
  for (std::size_t i = 0; i < params.size(); ++i) {
    auto& dst = params[i]->g.data();
    const auto& src = g_[i].data();
    for (std::size_t j = 0; j < dst.size(); ++j) dst[j] += src[j];
  }
}

LinearF32 Linear::snapshot_f32() const {
  LinearF32 s;
  s.w.resize(weight_.w.rows(), weight_.w.cols());
  for (std::size_t i = 0; i < weight_.w.size(); ++i) {
    s.w.data()[i] = static_cast<float>(weight_.w.data()[i]);
  }
  s.b.resize(bias_.w.data().size());
  for (std::size_t i = 0; i < s.b.size(); ++i) {
    s.b[i] = static_cast<float>(bias_.w.data()[i]);
  }
  return s;
}

LinearPackedF32 Linear::snapshot_packed_f32() const {
  // Pack via the row-major f32 snapshot so both narrowed layouts are built
  // from identical float weights.
  LinearF32 flat = snapshot_f32();
  LinearPackedF32 s;
  pack_weights(flat.w, s.w);
  s.b = std::move(flat.b);
  return s;
}

LinearBf16 Linear::snapshot_bf16() const {
  LinearF32 flat = snapshot_f32();
  LinearBf16 s;
  pack_weights(flat.w, s.w);  // bf16 overload rounds-to-nearest-even per weight
  s.b = std::move(flat.b);
  return s;
}

Adam::Adam(std::vector<Param*> params, double lr_in, double beta1, double beta2, double eps)
    : lr(lr_in), params_(std::move(params)), beta1_(beta1), beta2_(beta2), eps_(eps) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (Param* p : params_) {
    m_.emplace_back(p->w.rows(), p->w.cols());
    v_.emplace_back(p->w.rows(), p->w.cols());
  }
}

void Adam::zero_grad() {
  for (Param* p : params_) p->zero_grad();
}

void Adam::clip_grad_norm(double max_norm) {
  if (max_norm <= 0.0) return;
  double sq = 0.0;
  for (Param* p : params_) {
    for (double g : p->g.data()) sq += g * g;
  }
  double norm = std::sqrt(sq);
  if (norm <= max_norm) return;
  double scale = max_norm / norm;
  for (Param* p : params_) {
    for (double& g : p->g.data()) g *= scale;
  }
}

void Adam::step() {
  ++t_;
  const double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
  for (std::size_t i = 0; i < params_.size(); ++i) {
    auto& w = params_[i]->w.data();
    auto& g = params_[i]->g.data();
    auto& m = m_[i].data();
    auto& v = v_[i].data();
    for (std::size_t j = 0; j < w.size(); ++j) {
      m[j] = beta1_ * m[j] + (1.0 - beta1_) * g[j];
      v[j] = beta2_ * v[j] + (1.0 - beta2_) * g[j] * g[j];
      double mh = m[j] / bc1;
      double vh = v[j] / bc2;
      w[j] -= lr * mh / (std::sqrt(vh) + eps_);
    }
  }
}

namespace {
constexpr std::uint64_t kMagic = 0x5445414C4D444Cull;  // "TEALMDL"
}

void save_params(const std::string& path, const std::vector<Param*>& params) {
  std::ofstream f(path, std::ios::binary);
  if (!f) throw std::runtime_error("save_params: cannot open " + path);
  auto w64 = [&](std::uint64_t v) { f.write(reinterpret_cast<const char*>(&v), sizeof(v)); };
  w64(kMagic);
  w64(static_cast<std::uint64_t>(params.size()));
  for (const Param* p : params) {
    w64(static_cast<std::uint64_t>(p->w.rows()));
    w64(static_cast<std::uint64_t>(p->w.cols()));
    f.write(reinterpret_cast<const char*>(p->w.data().data()),
            static_cast<std::streamsize>(p->w.size() * sizeof(double)));
  }
}

bool load_params(const std::string& path, const std::vector<Param*>& params) {
  std::ifstream f(path, std::ios::binary);
  if (!f) return false;
  auto r64 = [&]() {
    std::uint64_t v = 0;
    f.read(reinterpret_cast<char*>(&v), sizeof(v));
    return v;
  };
  if (r64() != kMagic) return false;
  if (r64() != params.size()) return false;
  for (Param* p : params) {
    auto rows = static_cast<int>(r64());
    auto cols = static_cast<int>(r64());
    if (rows != p->w.rows() || cols != p->w.cols()) return false;
    f.read(reinterpret_cast<char*>(p->w.data().data()),
           static_cast<std::streamsize>(p->w.size() * sizeof(double)));
    if (!f) return false;
  }
  return true;
}

}  // namespace teal::nn
