// module.h — trainable parameters, Linear layer, Adam, serialization.
//
// A deliberately small substrate: parameters register themselves with their
// owning module, the Adam optimizer (the paper trains Teal with Adam at
// lr 1e-4, §4) walks the registry, and save/load streams raw doubles with a
// shape header so trained Teal models can be cached between bench runs.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "nn/mat.h"
#include "nn/packed.h"
#include "util/arena.h"
#include "util/rng.h"

namespace teal::nn {

struct Param {
  Mat w;  // value
  Mat g;  // gradient accumulator, same shape

  explicit Param(int rows = 0, int cols = 0) : w(rows, cols), g(rows, cols) {}
  void zero_grad() { g.zero(); }
};

// View of per-parameter gradient targets in params() order. The workspace
// backward passes (Linear::backward_acc and the model backward_ws chains)
// accumulate into these instead of the layers' own Param::g — the explicit
// accumulator seam that lets batched training give every rollout its own
// gradient set and reduce them in a fixed order afterwards.
using GradRefs = std::span<Mat* const>;

// One gradient accumulator per parameter, shaped like `params` and addressed
// through refs(). Rollout workers accumulate into disjoint GradAccums
// (commuting writes), then reduce_into() folds them into Param::g strictly
// in call order — so the summed gradient is bit-identical for every worker
// count (same contract as core::ShardPlan, but for parameter space).
class GradAccum {
 public:
  // Sizes the set to match `params` (no-op when already matching, so warm
  // training steps pay nothing).
  void prepare(const std::vector<Param*>& params);
  void zero();
  GradRefs refs() const { return {refs_.data(), refs_.size()}; }

  // Param::g += this set, elementwise, sequentially. Callers reduce the
  // per-rollout sets in rollout order to keep bit-identity.
  void reduce_into(const std::vector<Param*>& params) const;

 private:
  // Arena-aware storage: a TrainContext prepares its per-slot GradAccums
  // under its own arena binding, so the B x num_params gradient matrices —
  // the bulk of a training context's cold-start allocations — land in a few
  // arena chunks instead of hundreds of heap blocks.
  util::AVec<Mat> g_;
  util::AVec<Mat*> refs_;
};

// Xavier-uniform init, the default for the small dense layers here.
void xavier_init(Mat& w, util::Rng& rng);

// f32 inference snapshot of a Linear: weights and bias narrowed once, read-only
// afterwards. The narrowed solve path (TealScheme::set_precision(f32)) runs its
// forward through these snapshots while training and the f64 path keep using
// the double parameters — re-snapshot (Linear::snapshot_f32) after any further
// parameter update.
struct LinearF32 {
  MatF w;               // (out, in)
  std::vector<float> b; // (out)

  void forward_rows(const MatF& x, MatF& y, int row_begin, int row_end) const {
    linear_forward_rows(x, w, b, y, row_begin, row_end);
  }
  int in_features() const { return w.cols(); }
  int out_features() const { return w.rows(); }
};

// Blocked-layout inference snapshot: weights live in lane-blocked panels
// (nn::PackedMat) so forward_rows runs the broadcast-FMA kernel instead of
// the strided dot products. W = float is the default narrowed (f32) path;
// W = bf16 stores the weights rounded to bfloat16 (round-to-nearest-even at
// snapshot time, widened back to f32 in the kernel inner loop) — activations
// and bias stay f32 either way. Same read-only/re-snapshot contract as
// LinearF32.
template <typename W>
struct PackedLinear {
  PackedMat<W> w;       // (out, in) lane-blocked panels
  std::vector<float> b; // (out), always f32 (the accumulation seed)

  void forward_rows(const MatF& x, MatF& y, int row_begin, int row_end) const {
    linear_forward_rows_blocked(x, w, b, y, row_begin, row_end);
  }
  int in_features() const { return w.cols(); }
  int out_features() const { return w.rows(); }
};
using LinearPackedF32 = PackedLinear<float>;
using LinearBf16 = PackedLinear<bf16>;

class Linear {
 public:
  Linear() = default;
  Linear(int in, int out, util::Rng& rng);

  // y = x Wᵀ + b; caches nothing (callers keep x for backward).
  void forward(const Mat& x, Mat& y) const;
  // Row-range forward for demand-sharded callers; `y` must be pre-sized to
  // (x.rows(), out_features()). Bit-identical to forward() per row.
  void forward_rows(const Mat& x, Mat& y, int row_begin, int row_end) const;
  // Accumulates parameter grads and writes input grad.
  void backward(const Mat& x, const Mat& gy, Mat& gx);
  // Accumulator-seam backward: same arithmetic as backward(), but the
  // parameter grads land in caller-owned buffers (gw shaped (out, in), gb
  // shaped (1, out)) instead of this layer's Param::g. const because the
  // layer itself stays read-only — concurrent calls with distinct targets
  // are safe, which is what fans batched training out across workers.
  void backward_acc(const Mat& x, const Mat& gy, Mat& gx, Mat& gw, Mat& gb) const;

  // Narrows the current parameters into an f32 inference snapshot (row-major;
  // kept for kernel-comparison tests/benches — the solve path snapshots the
  // blocked variants below).
  LinearF32 snapshot_f32() const;
  // Blocked-panel snapshots for the narrowed solve paths: f64 -> f32 (round
  // to nearest) packed into panels, and f64 -> f32 -> bf16 (round-to-nearest-
  // even on the second narrowing) for the storage-halved variant.
  LinearPackedF32 snapshot_packed_f32() const;
  LinearBf16 snapshot_bf16() const;

  int in_features() const { return weight_.w.cols(); }
  int out_features() const { return weight_.w.rows(); }

  std::vector<Param*> params() { return {&weight_, &bias_}; }
  // Allocation-free variant for module-level params() builders: appending
  // into one reserved vector keeps a whole model's parameter walk at a
  // single heap allocation (the cold-path TrainContext contract counts it).
  void append_params(std::vector<Param*>& out) {
    out.push_back(&weight_);
    out.push_back(&bias_);
  }

 private:
  Param weight_;  // (out, in)
  Param bias_;    // (1, out)
};

// Adam over an explicit parameter list (decoupled from module structure).
class Adam {
 public:
  explicit Adam(std::vector<Param*> params, double lr = 1e-4, double beta1 = 0.9,
                double beta2 = 0.999, double eps = 1e-8);

  void zero_grad();
  // One descent step using the accumulated gradients (minimization).
  void step();
  // Clips the global gradient L2 norm to `max_norm` (0 disables).
  void clip_grad_norm(double max_norm);

  double lr = 1e-4;

 private:
  std::vector<Param*> params_;
  std::vector<Mat> m_, v_;
  double beta1_, beta2_, eps_;
  std::int64_t t_ = 0;
};

// Binary serialization of a parameter list (shape-checked on load).
void save_params(const std::string& path, const std::vector<Param*>& params);
bool load_params(const std::string& path, const std::vector<Param*>& params);

}  // namespace teal::nn
