#include "core/policy_net.h"

#include <algorithm>
#include <stdexcept>

namespace teal::core {

PolicyNet::PolicyNet(const PolicyConfig& cfg, int in_dim, int k_paths, util::Rng& rng)
    : cfg_(cfg), in_dim_(in_dim), k_paths_(k_paths) {
  if (cfg.n_hidden_layers < 0) throw std::invalid_argument("PolicyNet: bad layer count");
  int cur = in_dim;
  for (int i = 0; i < cfg.n_hidden_layers; ++i) {
    hidden_.emplace_back(cur, cfg.hidden_dim, rng);
    cur = cfg.hidden_dim;
  }
  out_ = nn::Linear(cur, k_paths, rng);
}

void PolicyNet::forward(Forward& fwd) const {
  const nn::Mat* cur = &fwd.input;
  fwd.pre.resize(hidden_.size());
  fwd.act.resize(hidden_.size());
  for (std::size_t i = 0; i < hidden_.size(); ++i) {
    hidden_[i].forward(*cur, fwd.pre[i]);
    nn::leaky_relu_forward(fwd.pre[i], fwd.act[i], cfg_.leaky_alpha);
    cur = &fwd.act[i];
  }
  out_.forward(*cur, fwd.logits);
}

template <typename T, typename Lin, typename Out>
void PolicyNet::prepare_forward_impl(ForwardT<T>& fwd, const std::vector<Lin>& hidden,
                                     const Out& out) const {
  const int n = fwd.input.rows();
  fwd.pre.resize(hidden.size());
  fwd.act.resize(hidden.size());
  for (std::size_t i = 0; i < hidden.size(); ++i) {
    fwd.pre[i].resize(n, hidden[i].out_features());
    fwd.act[i].resize(n, hidden[i].out_features());
  }
  fwd.logits.resize(n, out.out_features());
}

template <typename T, typename Lin, typename Out>
void PolicyNet::forward_rows_impl(ForwardT<T>& fwd, const std::vector<Lin>& hidden,
                                  const Out& out, int row_begin, int row_end) const {
  const nn::BasicMat<T>* cur = &fwd.input;
  for (std::size_t i = 0; i < hidden.size(); ++i) {
    hidden[i].forward_rows(*cur, fwd.pre[i], row_begin, row_end);
    nn::leaky_relu_forward_rows(fwd.pre[i], fwd.act[i], row_begin, row_end,
                                cfg_.leaky_alpha);
    cur = &fwd.act[i];
  }
  out.forward_rows(*cur, fwd.logits, row_begin, row_end);
}

void PolicyNet::prepare_forward(Forward& fwd) const {
  prepare_forward_impl(fwd, hidden_, out_);
}

void PolicyNet::forward_rows(Forward& fwd, int row_begin, int row_end) const {
  forward_rows_impl(fwd, hidden_, out_, row_begin, row_end);
}

void PolicyNet::prepare_f32() {
  hidden_f32_.clear();
  hidden_f32_.reserve(hidden_.size());
  for (const auto& l : hidden_) hidden_f32_.push_back(l.snapshot_packed_f32());
  out_f32_ = out_.snapshot_packed_f32();
}

void PolicyNet::prepare_bf16() {
  hidden_bf16_.clear();
  hidden_bf16_.reserve(hidden_.size());
  for (const auto& l : hidden_) hidden_bf16_.push_back(l.snapshot_bf16());
  out_bf16_ = out_.snapshot_bf16();
}

void PolicyNet::prepare_forward(ForwardF& fwd) const {
  if (!f32_ready()) {
    throw std::logic_error(
        "PolicyNet: prepare_f32() has not been called (use "
        "te::Scheme::set_precision, which snapshots the weights)");
  }
  prepare_forward_impl(fwd, hidden_f32_, *out_f32_);
}

void PolicyNet::forward_rows(ForwardF& fwd, int row_begin, int row_end) const {
  if (!f32_ready()) {
    throw std::logic_error(
        "PolicyNet: prepare_f32() has not been called (use "
        "te::Scheme::set_precision, which snapshots the weights)");
  }
  forward_rows_impl(fwd, hidden_f32_, *out_f32_, row_begin, row_end);
}

void PolicyNet::prepare_forward_bf16(ForwardF& fwd) const {
  if (!bf16_ready()) {
    throw std::logic_error(
        "PolicyNet: prepare_bf16() has not been called (use "
        "te::Scheme::set_precision, which snapshots the weights)");
  }
  prepare_forward_impl(fwd, hidden_bf16_, *out_bf16_);
}

void PolicyNet::forward_rows_bf16(ForwardF& fwd, int row_begin, int row_end) const {
  if (!bf16_ready()) {
    throw std::logic_error(
        "PolicyNet: prepare_bf16() has not been called (use "
        "te::Scheme::set_precision, which snapshots the weights)");
  }
  forward_rows_impl(fwd, hidden_bf16_, *out_bf16_, row_begin, row_end);
}

PolicyNet::Forward PolicyNet::forward(const nn::Mat& input) const {
  Forward fwd;
  fwd.input = input;
  forward(fwd);
  return fwd;
}

void PolicyNet::backward(const Forward& fwd, const nn::Mat& grad_logits, nn::Mat& grad_input) {
  const nn::Mat* last = fwd.act.empty() ? &fwd.input : &fwd.act.back();
  nn::Mat g_cur;
  out_.backward(*last, grad_logits, g_cur);
  for (int i = static_cast<int>(hidden_.size()) - 1; i >= 0; --i) {
    nn::Mat g_pre;
    nn::leaky_relu_backward(fwd.pre[static_cast<std::size_t>(i)], g_cur, g_pre,
                            cfg_.leaky_alpha);
    const nn::Mat* input = i == 0 ? &fwd.input : &fwd.act[static_cast<std::size_t>(i) - 1];
    hidden_[static_cast<std::size_t>(i)].backward(*input, g_pre, g_cur);
  }
  grad_input = std::move(g_cur);
}

void PolicyNet::backward_ws(const Forward& fwd, const nn::Mat& grad_logits, BackwardWs& ws,
                            nn::Mat& grad_input, nn::GradRefs grads) const {
  const std::size_t n_hidden = hidden_.size();
  if (grads.size() != num_params()) {
    throw std::invalid_argument("PolicyNet::backward_ws: grads size mismatch");
  }
  const nn::Mat* last = fwd.act.empty() ? &fwd.input : &fwd.act.back();
  // The last layer whose input-grad is produced writes straight into
  // grad_input, so no final copy is needed.
  nn::Mat& g_first = n_hidden == 0 ? grad_input : ws.g_cur;
  out_.backward_acc(*last, grad_logits, g_first, *grads[2 * n_hidden],
                    *grads[2 * n_hidden + 1]);
  for (int i = static_cast<int>(n_hidden) - 1; i >= 0; --i) {
    nn::leaky_relu_backward(fwd.pre[static_cast<std::size_t>(i)], ws.g_cur, ws.g_pre,
                            cfg_.leaky_alpha);
    const nn::Mat* input = i == 0 ? &fwd.input : &fwd.act[static_cast<std::size_t>(i) - 1];
    nn::Mat& gx = i == 0 ? grad_input : ws.g_cur;
    hidden_[static_cast<std::size_t>(i)].backward_acc(
        *input, ws.g_pre, gx, *grads[static_cast<std::size_t>(2 * i)],
        *grads[static_cast<std::size_t>(2 * i) + 1]);
  }
}

std::vector<nn::Param*> PolicyNet::params() {
  std::vector<nn::Param*> ps;
  ps.reserve(num_params());
  append_params(ps);
  return ps;
}

void PolicyNet::append_params(std::vector<nn::Param*>& out) {
  for (auto& l : hidden_) l.append_params(out);
  out_.append_params(out);
}

void build_policy_input(const te::Problem& pb, const nn::Mat& path_embeddings, int k,
                        nn::Mat& input, nn::Mat& mask) {
  const int nd = pb.num_demands();
  const int dim = path_embeddings.cols();
  input.resize(nd, k * dim);
  mask.resize(nd, k);
  build_policy_input_rows(pb, path_embeddings, k, input, mask, 0, nd);
}

namespace {
// Shared body of the f64/f32 input assembly: the embedding/input element
// type narrows, the mask stays double (it feeds the f64 masked softmax).
template <typename T>
void build_policy_input_rows_impl(const te::Problem& pb,
                                  const nn::BasicMat<T>& path_embeddings, int k,
                                  nn::BasicMat<T>& input, nn::Mat& mask, int d_begin,
                                  int d_end) {
  const int dim = path_embeddings.cols();
  for (int d = d_begin; d < d_end; ++d) {
    T* row = input.row_ptr(d);
    std::fill(row, row + static_cast<std::size_t>(k) * dim, T(0));
    double* mrow = mask.row_ptr(d);
    std::fill(mrow, mrow + k, 0.0);
    int slot = 0;
    for (int p = pb.path_begin(d); p < pb.path_end(d) && slot < k; ++p, ++slot) {
      std::copy(path_embeddings.row_ptr(p), path_embeddings.row_ptr(p) + dim,
                row + slot * dim);
      mrow[slot] = 1.0;
    }
  }
}
}  // namespace

void build_policy_input_rows(const te::Problem& pb, const nn::Mat& path_embeddings, int k,
                             nn::Mat& input, nn::Mat& mask, int d_begin, int d_end) {
  build_policy_input_rows_impl(pb, path_embeddings, k, input, mask, d_begin, d_end);
}

void build_policy_input_rows(const te::Problem& pb, const nn::MatF& path_embeddings, int k,
                             nn::MatF& input, nn::Mat& mask, int d_begin, int d_end) {
  build_policy_input_rows_impl(pb, path_embeddings, k, input, mask, d_begin, d_end);
}

void check_policy_mask_rows(const te::Problem& pb, const nn::Mat& mask, int d_begin,
                            int d_end) {
  const int k = mask.cols();
  for (int d = d_begin; d < d_end; ++d) {
    if (pb.path_begin(d) >= pb.path_end(d)) continue;  // no paths: all-zero is legal
    const double* mrow = mask.row_ptr(d);
    bool any = false;
    for (int c = 0; c < k; ++c) any = any || mrow[c] != 0.0;
    if (!any) {
      throw std::logic_error(
          "check_policy_mask_rows: demand " + std::to_string(d) + " has " +
          std::to_string(pb.path_end(d) - pb.path_begin(d)) +
          " path(s) but a fully-zero policy mask row — the masked softmax would "
          "silently emit an all-zero split row for it");
    }
  }
}

void scatter_policy_input_grad(const te::Problem& pb, const nn::Mat& grad_input, int k,
                               int dim, nn::Mat& grad_paths) {
  const int nd = pb.num_demands();
  for (int d = 0; d < nd; ++d) {
    const double* row = grad_input.row_ptr(d);
    int slot = 0;
    for (int p = pb.path_begin(d); p < pb.path_end(d) && slot < k; ++p, ++slot) {
      double* dst = grad_paths.row_ptr(p);
      for (int c = 0; c < dim; ++c) dst[c] += row[slot * dim + c];
    }
  }
}

}  // namespace teal::core
