// direct_loss.h — the "Teal w/ direct loss" ablation (§3.3, §5.7).
//
// Instead of RL, train the model by gradient ascent on a differentiable
// *surrogate* of the total feasible flow (Appendix A):
//
//   S = sum_p F_p * d  -  sum_e max(0, load_e - c_e)
//
// (total intended flow minus total link overutilization). The surrogate is
// piecewise linear in the splits, so dS/dF_p = d * (w_p - #violated edges on
// p), which backpropagates through the softmax and the model. The paper finds
// this 2.3-2.5% worse than COMA* because of the surrogate's approximation
// error — our Figure 14 bench reproduces that comparison.
#pragma once

#include "core/model.h"
#include "te/objective.h"
#include "traffic/traffic.h"

namespace teal::core {

struct DirectLossConfig {
  int epochs = 6;
  double lr = 1e-3;
  double grad_clip = 10.0;
  double latency_penalty = 0.5;  // only used for kLatencyPenalizedFlow
  bool verbose = false;
  // Rollouts per Adam step and concurrent rollout workers — identical
  // semantics to the ComaConfig knobs (core::TrainContext): rollout_batch=1
  // keeps the seed per-matrix semantics, workers is a pure throughput knob
  // (bit-identical parameters for every value; the trainer is fully
  // deterministic — it draws no random numbers at all).
  int rollout_batch = 1;
  int workers = 0;  // 0 = auto
};

struct DirectLossStats {
  std::vector<double> epoch_surrogate;  // mean normalized surrogate per epoch
  // Heap allocations during optimizer steps after the first (0 on the
  // workspace path once warm — tests/train_test.cpp asserts it).
  std::uint64_t warm_step_allocs = 0;
};

DirectLossStats train_direct_loss(Model& model, const te::Problem& pb,
                                  const traffic::Trace& train, te::Objective obj,
                                  const DirectLossConfig& cfg = {});

}  // namespace teal::core
