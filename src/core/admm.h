// admm.h — ADMM solution fine-tuning (§3.4, Appendix C).
//
// Teal's neural networks output split ratios that may violate link
// capacities. A handful of ADMM iterations, warm-started from the network
// output, pushes the solution toward the feasible region while improving the
// TE objective. Following Appendix C, the TE LP is decoupled by introducing
//   * per-(path, edge) auxiliary variables z_pe with F_p * d - z_pe = 0,
//   * slack s1_d for the demand constraints and s3_e for capacity, and
//   * multipliers lambda1_d, lambda3_e, lambda4_pe with penalty rho.
// Each ADMM iteration alternates exact minimizations of the augmented
// Lagrangian: the F-update decomposes per *demand* (a tiny nonnegative QP
// solved by coordinate descent), the z-update per *edge*, and the slack/dual
// updates are elementwise — all three embarrassingly parallel, which is why
// the paper runs ADMM on the GPU. Per §4 the iteration count is 2 for
// topologies with < 100 nodes and 5 otherwise.
//
// Used alone from a cold start, ADMM needs far too many iterations to reach
// a good solution (§3.4) — the fig14 ablation bench demonstrates exactly
// that by comparing cold- and warm-started runs.
#pragma once

#include <vector>

#include "core/shard.h"
#include "te/problem.h"
#include "util/arena.h"

namespace teal::core {

struct AdmmConfig {
  int iterations = 5;        // 2 for < 100 nodes, 5 otherwise (§4)
  double rho = 5.0;          // penalty coefficient (volumes are normalized)
  int coord_sweeps = 4;      // coordinate-descent sweeps inside F/z updates
  std::vector<double> path_weight;  // optional per-path objective weights
};

// Returns the paper's per-topology default iteration count.
int default_admm_iterations(int n_nodes);

class Admm {
 public:
  // Precomputes the per-edge (path, slot) index lists; reusable across solves
  // on the same Problem.
  explicit Admm(const te::Problem& pb, AdmmConfig cfg = {});

  // Fine-tunes `a` in place for the given matrix/capacities. Returns the
  // total constraint violation (demand + capacity + coupling residuals)
  // before and after, letting callers and tests check monotone improvement.
  struct Residuals {
    double before = 0.0;
    double after = 0.0;
  };

  // Per-solve primal/dual state. Passing the same Workspace to repeated
  // fine_tune() calls reuses every buffer (allocation-free once warm); every
  // entry is fully re-initialized per call, so reuse never changes results.
  // Distinct Workspaces make concurrent fine_tune() calls on one Admm safe.
  // Buffers are arena-aware (util::AVec): a workspace sized under a bound
  // util::Arena draws all thirteen from the arena in one cold pass.
  struct Workspace {
    util::AVec<double> vol, cap;           // normalized volumes/capacities
    util::AVec<double> x, x_sum;           // split ratios and per-demand sums
    util::AVec<double> z, z_sum, l4;       // per-(path,edge) auxiliaries
    util::AVec<double> s1, l1, s3, l3;     // slacks and multipliers
    util::AVec<double> load;               // per-edge load (violation check)
  };

  // Auto demand-shard plan (core::auto_shard_count).
  Residuals fine_tune(const te::TrafficMatrix& tm, const std::vector<double>& capacities,
                      te::Allocation& a, Workspace& ws) const;

  // Demand-sharded fine-tune. The per-demand stages — the F-update
  // (coordinate descent over [demand_begin, demand_end)), the s1/l1 updates
  // and the l4 dual ascent over the demands' path ranges — fan out over
  // `shards`; the coupled link-level stages (per-edge s3/z/l3, which read
  // paths of *other* demands through the edge incidence lists) run as
  // per-edge pool passes, and the residual reductions run sequentially on
  // the calling thread. The resulting allocation is bit-identical for every
  // shard plan (tests/shard_test.cpp).
  Residuals fine_tune(const te::TrafficMatrix& tm, const std::vector<double>& capacities,
                      te::Allocation& a, Workspace& ws, const ShardPlan& shards,
                      ShardStat* stats = nullptr) const;

  // Convenience overload allocating a throwaway workspace.
  Residuals fine_tune(const te::TrafficMatrix& tm, const std::vector<double>& capacities,
                      te::Allocation& a) const;

  const AdmmConfig& config() const { return cfg_; }

 private:
  const te::Problem& pb_;
  AdmmConfig cfg_;
  // Flattened z layout: z index range of path p is [z_offset_[p], z_offset_[p+1]).
  std::vector<int> z_offset_;
  // Per edge: list of (z index, global path id) incidences.
  struct Incidence {
    int z_index;
    int path;
  };
  std::vector<std::vector<Incidence>> edge_incidence_;
};

}  // namespace teal::core
