#include "core/model.h"

namespace teal::core {

TealModel::TealModel(const TealModelConfig& cfg, int k_paths, std::uint64_t seed)
    : cfg_(cfg), k_(k_paths), init_rng_(seed),
      gnn_(cfg.gnn, k_paths, init_rng_),
      policy_(cfg.policy, k_paths * effective_final_dim(cfg.gnn), k_paths, init_rng_) {}

TealModel::Forward TealModel::forward(const te::Problem& pb, const te::TrafficMatrix& tm,
                                      const std::vector<double>* capacities) const {
  Forward fwd;
  fwd.gnn = gnn_.forward(pb, tm, capacities);
  nn::Mat input;
  build_policy_input(pb, fwd.gnn.final_paths, k_, input, fwd.mask);
  fwd.policy = policy_.forward(input);
  fwd.logits = fwd.policy.logits;
  return fwd;
}

void TealModel::backward(const te::Problem& pb, const Forward& fwd,
                         const nn::Mat& grad_logits) {
  nn::Mat grad_input;
  policy_.backward(fwd.policy, grad_logits, grad_input);
  nn::Mat grad_paths(pb.total_paths(), gnn_.final_dim());
  scatter_policy_input_grad(pb, grad_input, k_, gnn_.final_dim(), grad_paths);
  gnn_.backward(pb, fwd.gnn, grad_paths);
}

std::vector<nn::Param*> TealModel::params() {
  auto ps = gnn_.params();
  for (auto* p : policy_.params()) ps.push_back(p);
  return ps;
}

ModelForward TealModel::forward_m(const te::Problem& pb, const te::TrafficMatrix& tm,
                                  const std::vector<double>* capacities) const {
  auto typed = std::make_shared<Forward>(forward(pb, tm, capacities));
  ModelForward out;
  out.logits = typed->logits;
  out.mask = typed->mask;
  out.cache = typed;
  return out;
}

void TealModel::backward_m(const te::Problem& pb, const ModelForward& fwd,
                           const nn::Mat& grad_logits) {
  backward(pb, *std::static_pointer_cast<Forward>(fwd.cache), grad_logits);
}

nn::Mat splits_from_logits(const nn::Mat& logits, const nn::Mat& mask) {
  nn::Mat splits;
  nn::softmax_rows(logits, mask, splits);
  return splits;
}

te::Allocation allocation_from_splits(const te::Problem& pb, const nn::Mat& splits) {
  te::Allocation a = pb.empty_allocation();
  for (int d = 0; d < pb.num_demands(); ++d) {
    int slot = 0;
    for (int p = pb.path_begin(d); p < pb.path_end(d) && slot < splits.cols(); ++p, ++slot) {
      a.split[static_cast<std::size_t>(p)] = splits.at(d, slot);
    }
  }
  return a;
}

}  // namespace teal::core
