#include "core/model.h"

namespace teal::core {

TealModel::TealModel(const TealModelConfig& cfg, int k_paths, std::uint64_t seed)
    : cfg_(cfg), k_(k_paths), init_rng_(seed),
      gnn_(cfg.gnn, k_paths, init_rng_),
      policy_(cfg.policy, k_paths * effective_final_dim(cfg.gnn), k_paths, init_rng_) {}

void TealModel::run_pipeline(const te::Problem& pb, const te::TrafficMatrix& tm,
                             const std::vector<double>* capacities, Forward& fwd) const {
  gnn_.forward(pb, tm, capacities, fwd.gnn);
  build_policy_input(pb, fwd.gnn.final_paths, k_, fwd.policy.input, fwd.mask);
  policy_.forward(fwd.policy);
}

void TealModel::forward(const te::Problem& pb, const te::TrafficMatrix& tm,
                        const std::vector<double>* capacities, Forward& fwd) const {
  run_pipeline(pb, tm, capacities, fwd);
  fwd.logits = fwd.policy.logits;
}

TealModel::Forward TealModel::forward(const te::Problem& pb, const te::TrafficMatrix& tm,
                                      const std::vector<double>* capacities) const {
  Forward fwd;
  forward(pb, tm, capacities, fwd);
  return fwd;
}

void TealModel::backward(const te::Problem& pb, const Forward& fwd,
                         const nn::Mat& grad_logits) {
  nn::Mat grad_input;
  policy_.backward(fwd.policy, grad_logits, grad_input);
  nn::Mat grad_paths(pb.total_paths(), gnn_.final_dim());
  scatter_policy_input_grad(pb, grad_input, k_, gnn_.final_dim(), grad_paths);
  gnn_.backward(pb, fwd.gnn, grad_paths);
}

std::vector<nn::Param*> TealModel::params() {
  auto ps = gnn_.params();
  for (auto* p : policy_.params()) ps.push_back(p);
  return ps;
}

ModelForward TealModel::forward_m(const te::Problem& pb, const te::TrafficMatrix& tm,
                                  const std::vector<double>* capacities) const {
  auto typed = std::make_shared<Forward>(forward(pb, tm, capacities));
  ModelForward out;
  out.logits = typed->logits;
  out.mask = typed->mask;
  out.cache = typed;
  out.owner = this;
  return out;
}

void TealModel::forward_ws(const te::Problem& pb, const te::TrafficMatrix& tm,
                           const std::vector<double>* capacities, ModelForward& out) const {
  // A shared cache (use_count > 1) must not be overwritten in place — another
  // ModelForward may still need it for backward_m. Start fresh instead.
  if (out.owner != this || out.cache == nullptr || out.cache.use_count() != 1) {
    out.cache = std::make_shared<Forward>();
    out.owner = this;
  }
  auto* typed = static_cast<Forward*>(out.cache.get());
  // run_pipeline (not forward) to skip the typed-API Forward::logits copy:
  // the solve path reads logits from the ModelForward only.
  run_pipeline(pb, tm, capacities, *typed);
  out.logits = typed->policy.logits;  // capacity-reusing copies
  out.mask = typed->mask;
}

void TealModel::backward_m(const te::Problem& pb, const ModelForward& fwd,
                           const nn::Mat& grad_logits) {
  backward(pb, *std::static_pointer_cast<Forward>(fwd.cache), grad_logits);
}

nn::Mat splits_from_logits(const nn::Mat& logits, const nn::Mat& mask) {
  nn::Mat splits;
  nn::softmax_rows(logits, mask, splits);
  return splits;
}

te::Allocation allocation_from_splits(const te::Problem& pb, const nn::Mat& splits) {
  te::Allocation a;
  allocation_from_splits_into(pb, splits, a);
  return a;
}

void allocation_from_splits_into(const te::Problem& pb, const nn::Mat& splits,
                                 te::Allocation& a) {
  a.split.assign(static_cast<std::size_t>(pb.total_paths()), 0.0);
  for (int d = 0; d < pb.num_demands(); ++d) {
    int slot = 0;
    for (int p = pb.path_begin(d); p < pb.path_end(d) && slot < splits.cols(); ++p, ++slot) {
      a.split[static_cast<std::size_t>(p)] = splits.at(d, slot);
    }
  }
}

}  // namespace teal::core
