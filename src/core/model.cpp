#include "core/model.h"

namespace teal::core {

TealModel::TealModel(const TealModelConfig& cfg, int k_paths, std::uint64_t seed)
    : cfg_(cfg), k_(k_paths), init_rng_(seed),
      gnn_(cfg.gnn, k_paths, init_rng_),
      policy_(cfg.policy, k_paths * effective_final_dim(cfg.gnn), k_paths, init_rng_) {}

void TealModel::run_pipeline(const te::Problem& pb, const te::TrafficMatrix& tm,
                             const std::vector<double>* capacities, Forward& fwd,
                             const ShardPlan& shards, ShardStat* stats) const {
  gnn_.forward(pb, tm, capacities, fwd.gnn, shards, stats);
  // Size the policy buffers on this thread, then run policy-input assembly
  // and the policy network as one fused per-demand pass.
  const int nd = pb.num_demands();
  fwd.policy.input.resize(nd, k_ * fwd.gnn.final_paths.cols());
  fwd.mask.resize(nd, k_);
  policy_.prepare_forward(fwd.policy);
  run_sharded(shards, stats, [&](int /*shard*/, int d0, int d1) {
    build_policy_input_rows(pb, fwd.gnn.final_paths, k_, fwd.policy.input, fwd.mask, d0, d1);
    policy_.forward_rows(fwd.policy, d0, d1);
  });
}

void TealModel::prepare_f32() {
  gnn_.prepare_f32();
  policy_.prepare_f32();
}

void TealModel::prepare_bf16() {
  gnn_.prepare_bf16();
  policy_.prepare_bf16();
}

void TealModel::forward_ws_narrowed(const te::Problem& pb, const te::TrafficMatrix& tm,
                                    const std::vector<double>* capacities, ModelForward& out,
                                    const ShardPlan& shards, ShardStat* stats,
                                    bool use_bf16) const {
  // Same cache-reuse contract as forward_ws, under the narrowed owner tag (a
  // narrowed cache is a ForwardF32; the f64 path must never reinterpret it).
  // f32 and bf16 share the cache: same type, every activation fully
  // rewritten per forward.
  if (out.owner != &f32_owner_tag_ || out.cache == nullptr || out.cache.use_count() != 1) {
    out.cache = std::make_shared<ForwardF32>();
    out.owner = &f32_owner_tag_;
  }
  auto* typed = static_cast<ForwardF32*>(out.cache.get());
  if (use_bf16) {
    gnn_.forward_bf16(pb, tm, capacities, typed->gnn, shards, stats);
  } else {
    gnn_.forward_f32(pb, tm, capacities, typed->gnn, shards, stats);
  }
  // Fused per-demand tail: input assembly (float), policy forward (float),
  // and the logit widening back to the caller's f64 matrices — each shard
  // touches only its own demand rows, so the fan-out stays race-free.
  const int nd = pb.num_demands();
  typed->policy.input.resize(nd, k_ * typed->gnn.final_paths.cols());
  out.mask.resize(nd, k_);
  if (use_bf16) {
    policy_.prepare_forward_bf16(typed->policy);
  } else {
    policy_.prepare_forward(typed->policy);
  }
  out.logits.resize(nd, k_);
  run_sharded(shards, stats, [&](int /*shard*/, int d0, int d1) {
    build_policy_input_rows(pb, typed->gnn.final_paths, k_, typed->policy.input, out.mask,
                            d0, d1);
    if (use_bf16) {
      policy_.forward_rows_bf16(typed->policy, d0, d1);
    } else {
      policy_.forward_rows(typed->policy, d0, d1);
    }
    for (int d = d0; d < d1; ++d) {
      const float* lr = typed->policy.logits.row_ptr(d);
      double* outr = out.logits.row_ptr(d);
      for (int c = 0; c < k_; ++c) outr[c] = static_cast<double>(lr[c]);
    }
  });
}

void TealModel::forward_ws_f32(const te::Problem& pb, const te::TrafficMatrix& tm,
                               const std::vector<double>* capacities, ModelForward& out,
                               const ShardPlan& shards, ShardStat* stats) const {
  forward_ws_narrowed(pb, tm, capacities, out, shards, stats, /*use_bf16=*/false);
}

void TealModel::forward_ws_bf16(const te::Problem& pb, const te::TrafficMatrix& tm,
                                const std::vector<double>* capacities, ModelForward& out,
                                const ShardPlan& shards, ShardStat* stats) const {
  forward_ws_narrowed(pb, tm, capacities, out, shards, stats, /*use_bf16=*/true);
}

void TealModel::forward(const te::Problem& pb, const te::TrafficMatrix& tm,
                        const std::vector<double>* capacities, Forward& fwd) const {
  const int nd = pb.num_demands();
  run_pipeline(pb, tm, capacities, fwd,
               ShardPlan::make(nd, auto_shard_count(nd, pb.total_paths())));
  fwd.logits = fwd.policy.logits;
}

TealModel::Forward TealModel::forward(const te::Problem& pb, const te::TrafficMatrix& tm,
                                      const std::vector<double>* capacities) const {
  Forward fwd;
  forward(pb, tm, capacities, fwd);
  return fwd;
}

void TealModel::backward(const te::Problem& pb, const Forward& fwd,
                         const nn::Mat& grad_logits) {
  nn::Mat grad_input;
  policy_.backward(fwd.policy, grad_logits, grad_input);
  nn::Mat grad_paths(pb.total_paths(), gnn_.final_dim());
  scatter_policy_input_grad(pb, grad_input, k_, gnn_.final_dim(), grad_paths);
  gnn_.backward(pb, fwd.gnn, grad_paths);
}

std::vector<nn::Param*> TealModel::params() {
  std::vector<nn::Param*> ps;
  ps.reserve(gnn_.num_params() + policy_.num_params());
  gnn_.append_params(ps);
  policy_.append_params(ps);
  return ps;
}

ModelForward TealModel::forward_m(const te::Problem& pb, const te::TrafficMatrix& tm,
                                  const std::vector<double>* capacities) const {
  auto typed = std::make_shared<Forward>(forward(pb, tm, capacities));
  ModelForward out;
  out.logits = typed->logits;
  out.mask = typed->mask;
  out.cache = typed;
  out.owner = this;
  return out;
}

void TealModel::forward_ws(const te::Problem& pb, const te::TrafficMatrix& tm,
                           const std::vector<double>* capacities, ModelForward& out) const {
  const int nd = pb.num_demands();
  forward_ws(pb, tm, capacities, out,
             ShardPlan::make(nd, auto_shard_count(nd, pb.total_paths())));
}

void TealModel::forward_ws(const te::Problem& pb, const te::TrafficMatrix& tm,
                           const std::vector<double>* capacities, ModelForward& out,
                           const ShardPlan& shards, ShardStat* stats) const {
  // A shared cache (use_count > 1) must not be overwritten in place — another
  // ModelForward may still need it for backward_m. Start fresh instead.
  if (out.owner != this || out.cache == nullptr || out.cache.use_count() != 1) {
    out.cache = std::make_shared<Forward>();
    out.owner = this;
  }
  auto* typed = static_cast<Forward*>(out.cache.get());
  // run_pipeline (not forward) to skip the typed-API Forward::logits copy:
  // the solve path reads logits from the ModelForward only.
  run_pipeline(pb, tm, capacities, *typed, shards, stats);
  out.logits = typed->policy.logits;  // capacity-reusing copies
  out.mask = typed->mask;
}

void TealModel::backward_ws(const te::Problem& pb, const ModelForward& fwd,
                            const nn::Mat& grad_logits, TrainBackward& bws,
                            nn::GradRefs grads) const {
  // Same cache-provenance contract as backward_m: only this model's f64
  // forward cache can back-propagate.
  if (fwd.owner != this || fwd.cache == nullptr) {
    throw std::logic_error(
        "TealModel::backward_ws: forward cache was not produced by this model's "
        "f64 forward path (narrowed f32/bf16 inference caches cannot back-propagate)");
  }
  if (grads.size() != gnn_.num_params() + policy_.num_params()) {
    throw std::invalid_argument("TealModel::backward_ws: grads size mismatch");
  }
  if (bws.owner != this || bws.cache == nullptr || bws.cache.use_count() != 1) {
    bws.cache = std::make_shared<BackwardCache>();
    bws.owner = this;
  }
  auto* ws = static_cast<BackwardCache*>(bws.cache.get());
  const auto* typed = static_cast<const Forward*>(fwd.cache.get());
  policy_.backward_ws(typed->policy, grad_logits, ws->policy, ws->grad_input,
                      grads.subspan(gnn_.num_params()));
  ws->grad_paths.resize(pb.total_paths(), gnn_.final_dim());
  ws->grad_paths.zero();  // scatter accumulates per path slot
  scatter_policy_input_grad(pb, ws->grad_input, k_, gnn_.final_dim(), ws->grad_paths);
  gnn_.backward_ws(pb, typed->gnn, ws->grad_paths, ws->gnn,
                   grads.subspan(0, gnn_.num_params()));
}

void TealModel::backward_m(const te::Problem& pb, const ModelForward& fwd,
                           const nn::Mat& grad_logits) {
  // Only an f64 cache produced by this model can back-propagate: an f32
  // cache (owner == &f32_owner_tag_) has no double activations, and a cache
  // from another model would be reinterpreted garbage.
  if (fwd.owner != this || fwd.cache == nullptr) {
    throw std::logic_error(
        "TealModel::backward_m: forward cache was not produced by this model's "
        "f64 forward path (narrowed f32/bf16 inference caches cannot back-propagate)");
  }
  backward(pb, *std::static_pointer_cast<Forward>(fwd.cache), grad_logits);
}

nn::Mat splits_from_logits(const nn::Mat& logits, const nn::Mat& mask) {
  nn::Mat splits;
  nn::softmax_rows(logits, mask, splits);
  return splits;
}

te::Allocation allocation_from_splits(const te::Problem& pb, const nn::Mat& splits) {
  te::Allocation a;
  allocation_from_splits_into(pb, splits, a);
  return a;
}

void allocation_from_splits_into(const te::Problem& pb, const nn::Mat& splits,
                                 te::Allocation& a) {
  a.split.resize(static_cast<std::size_t>(pb.total_paths()));
  allocation_from_splits_rows(pb, splits, a, 0, pb.num_demands());
}

void allocation_from_splits_rows(const te::Problem& pb, const nn::Mat& splits,
                                 te::Allocation& a, int d_begin, int d_end) {
  for (int d = d_begin; d < d_end; ++d) {
    int slot = 0;
    for (int p = pb.path_begin(d); p < pb.path_end(d); ++p, ++slot) {
      a.split[static_cast<std::size_t>(p)] =
          slot < splits.cols() ? splits.at(d, slot) : 0.0;
    }
  }
}

}  // namespace teal::core
